// Figure 1 reproduction: builds the paper's experimental setup
// (coupled aggressor/victim lines with INVX1 drivers, 4INV receivers
// and the 16INV/64INV fanout chain), prints the netlist inventory, and
// dumps the golden noiseless + one noisy waveform set to CSV so the
// figure can be plotted.

#include <iostream>

#include "noise/scenario.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"
#include "wave/metrics.hpp"

namespace no = waveletic::noise;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

void append_wave(wu::CsvWriter& csv, const std::string& prefix,
                 const wv::Waveform& w) {
  csv.add_column(prefix + "_t",
                 {w.times().begin(), w.times().end()});
  csv.add_column(prefix + "_v",
                 {w.values().begin(), w.values().end()});
}

}  // namespace

int main() {
  const waveletic::charlib::Pdk pdk;
  const auto spec = no::TestbenchSpec::config1();

  std::cout << "== Figure 1: experimental setup ==\n";
  std::cout << "victim + " << spec.aggressors << " aggressor line(s), "
            << spec.segments << " RC pi-segments each, R="
            << wu::format_eng(spec.r_per_segment, "Ohm") << "/seg, C="
            << wu::format_eng(spec.c_per_segment, "F") << "/seg, sum(Cm)="
            << wu::format_eng(spec.cm_per_aggressor, "F")
            << " per aggressor\n"
            << "drivers INVX1, receivers INVX4 -> INVX16 -> INVX64, "
            << "input slew " << wu::format_eng(spec.input_slew, "s")
            << "\n\n";

  const auto tb = no::build_testbench(pdk, spec);
  std::cout << tb.circuit.describe() << "\n";

  no::RunnerOptions opt;
  opt.dt = 1e-12;
  no::NoiseRunner runner(pdk, spec, opt);
  const auto cw = runner.run_case(0.0);

  wu::CsvWriter csv;
  append_wave(csv, "in_u_noiseless", runner.noiseless_in());
  append_wave(csv, "out_u_noiseless", runner.noiseless_out());
  append_wave(csv, "in_u_noisy", cw.noisy_in);
  append_wave(csv, "out_u_noisy", cw.noisy_out);
  csv.write_file("fig1_waveforms.csv");

  const auto clean_arr =
      wv::arrival_50(runner.noiseless_in(), cw.in_polarity, pdk.vdd);
  const auto noisy_arr =
      wv::arrival_50(cw.noisy_in, cw.in_polarity, pdk.vdd);
  std::cout << "victim arrival at in_u: noiseless "
            << wu::format_ps(*clean_arr) << " ps, aligned aggressor "
            << wu::format_ps(*noisy_arr) << " ps (crosstalk pushout "
            << wu::format_ps(*noisy_arr - *clean_arr) << " ps)\n";
  std::cout << "waveforms written to fig1_waveforms.csv\n";
  return 0;
}
