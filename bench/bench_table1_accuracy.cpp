// Table 1 reproduction: accuracy comparison among all six equivalent-
// waveform techniques on Configuration I (one aggressor, 1000 um lines)
// and Configuration II (two aggressors, 500 um lines), 200 noise
// injection timing cases over a 1 ns window.
//
// Environment:
//   WAVELETIC_FAST=1   25 cases at 2 ps step (smoke run)
//   WAVELETIC_CASES=n  override the case count

#include <cstdlib>
#include <iostream>

#include "experiments/accuracy.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ex = waveletic::experiments;
namespace no = waveletic::noise;
namespace wu = waveletic::util;

namespace {

/// Paper Table 1 (ps), for side-by-side comparison.
struct PaperRow {
  const char* method;
  double max1, avg1, max2, avg2;
};
constexpr PaperRow kPaper[] = {
    {"P1", 81.3, 29.3, 134.2, 48.5},   {"P2", 82.7, 24.5, 144.5, 51.3},
    {"LSF3", 75.1, 30.9, 110.8, 45.4}, {"E4", 82.3, 14.5, 145.3, 33.4},
    {"WLS5", 42.4, 10.3, 49.3, 17.4},  {"SGDP", 38.3, 9.2, 44.5, 14.8},
};

int env_cases() {
  if (const char* fast = std::getenv("WAVELETIC_FAST");
      fast && fast[0] == '1') {
    return 25;
  }
  if (const char* cases = std::getenv("WAVELETIC_CASES")) {
    return std::max(2, std::atoi(cases));
  }
  return 200;
}

}  // namespace

int main() {
  const int cases = env_cases();
  const bool fast = cases < 200;

  ex::AccuracyOptions cfg1;
  cfg1.bench = no::TestbenchSpec::config1();
  cfg1.cases = cases;
  cfg1.runner.dt = fast ? 2e-12 : 1e-12;

  ex::AccuracyOptions cfg2 = cfg1;
  cfg2.bench = no::TestbenchSpec::config2();

  std::cout << "== Table 1: gate delay error vs golden simulation ==\n"
            << "cases per configuration: " << cases
            << ", P = " << cfg1.samples
            << ", dt = " << wu::format_eng(cfg1.runner.dt, "s") << "\n\n";

  std::cout << "running Configuration I (1 aggressor, 1000um lines, "
               "sum(Cm)=100fF)...\n";
  const auto r1 = ex::run_accuracy(cfg1);
  std::cout << "running Configuration II (2 aggressors, 500um lines, "
               "100fF each)...\n\n";
  const auto r2 = ex::run_accuracy(cfg2);

  ex::print_accuracy_table(std::cout, {"Cfg I", "Cfg II"}, {&r1, &r2});

  wu::Table paper({"Method", "Cfg I Max", "Cfg I Avg", "Cfg II Max",
                   "Cfg II Avg"});
  paper.set_title("\nPaper's Table 1 (DATE'05, Hspice golden, ps):");
  for (const auto& row : kPaper) {
    paper.add_row({row.method, wu::format_ps(row.max1 * 1e-12),
                   wu::format_ps(row.avg1 * 1e-12),
                   wu::format_ps(row.max2 * 1e-12),
                   wu::format_ps(row.avg2 * 1e-12)});
  }
  paper.print(std::cout);

  // Shape checks the reproduction is expected to preserve.
  const auto& s1 = r1.stat("SGDP");
  const auto& w1 = r1.stat("WLS5");
  const auto& s2 = r2.stat("SGDP");
  const auto& w2 = r2.stat("WLS5");
  std::cout << "\nshape checks:\n"
            << "  SGDP avg <= WLS5 avg (Cfg I):  "
            << (s1.avg_error <= w1.avg_error ? "yes" : "NO") << " ("
            << wu::format_ps(s1.avg_error) << " vs "
            << wu::format_ps(w1.avg_error) << " ps)\n"
            << "  SGDP avg <= WLS5 avg (Cfg II): "
            << (s2.avg_error <= w2.avg_error ? "yes" : "NO") << " ("
            << wu::format_ps(s2.avg_error) << " vs "
            << wu::format_ps(w2.avg_error) << " ps)\n"
            << "  Cfg II errors exceed Cfg I (SGDP avg): "
            << (s2.avg_error >= s1.avg_error ? "yes" : "NO") << "\n"
            << "  SGDP has best avg overall (Cfg II): ";
  bool best = true;
  for (const auto& st : r2.stats) {
    if (st.method != "SGDP" && st.avg_error < s2.avg_error) best = false;
  }
  std::cout << (best ? "yes" : "NO") << "\n";

  ex::write_cases_csv("table1_config1_cases.csv", r1);
  ex::write_cases_csv("table1_config2_cases.csv", r2);
  std::cout << "\nper-case errors written to table1_config{1,2}_cases.csv\n";
  return 0;
}
