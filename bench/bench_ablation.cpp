// Ablation bench for the design choices DESIGN.md calls out:
//   1. SGDP variants — second-order Taylor term, anchor guard, literal
//      delta shift (the paper's ambiguous non-overlap step).
//   2. Golden-simulator integrator — trapezoidal vs backward Euler.
//   3. Interconnect discretization — segments per line.
//
// WAVELETIC_FAST=1 reduces the case count for a smoke run.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/sgdp.hpp"
#include "experiments/accuracy.hpp"
#include "noise/receiver_eval.hpp"
#include "noise/scenario.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "wave/metrics.hpp"

namespace co = waveletic::core;
namespace ex = waveletic::experiments;
namespace no = waveletic::noise;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

bool fast_mode() {
  const char* f = std::getenv("WAVELETIC_FAST");
  return f && f[0] == '1';
}

/// Accuracy of one SGDP variant, reusing the shared experiment driver
/// via the pluggable method list (variant is injected by name lookup).
ex::MethodStats run_variant(const char* label, co::SgdpMethod::Options opt,
                            int cases) {
  // The accuracy driver builds methods by name; run it with only SGDP
  // and then rerun the fits manually for the variant.  Cheaper: run
  // the driver once per variant with a custom method injected through
  // the registry name "SGDP" is not configurable, so evaluate directly.
  const waveletic::charlib::Pdk pdk;
  auto spec = no::TestbenchSpec::config1();
  spec.victim_t50 = 1.5e-9;
  no::RunnerOptions ropt;
  ropt.dt = 2e-12;
  no::NoiseRunner runner(pdk, spec, ropt);
  no::ReceiverEval::Options eopt;
  eopt.dt = 2e-12;
  no::ReceiverEval eval(pdk, eopt);
  const co::SgdpMethod method(opt);

  ex::MethodStats stats;
  stats.method = label;
  const auto offsets = no::NoiseRunner::offsets(cases, 1e-9);
  for (double offset : offsets) {
    const auto cw = runner.run_case(offset);
    co::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner.noiseless_in();
    mi.noiseless_out = &runner.noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;
    const auto fit = method.fit(mi);
    const double est = eval.ramp_arrival(fit.ramp, cw.in_polarity);
    const double err = std::abs(est - cw.golden_output_arrival);
    stats.max_error = std::max(stats.max_error, err);
    stats.avg_error += err / offsets.size();
    stats.fallbacks += fit.degenerate_fallback ? 1 : 0;
  }
  return stats;
}

}  // namespace

int main() {
  const int cases = fast_mode() ? 7 : 30;
  std::cout << "== Ablation studies (Cfg I, " << cases << " cases) ==\n\n";

  // 1. SGDP variants.
  wu::Table sgdp_table({"SGDP variant", "Max (ps)", "Avg (ps)"});
  {
    co::SgdpMethod::Options full;
    co::SgdpMethod::Options first_order = full;
    first_order.second_order = false;
    co::SgdpMethod::Options no_guard = full;
    no_guard.anchor_guard = false;
    co::SgdpMethod::Options literal = full;
    literal.shift_gamma_by_delta = true;

    for (const auto& [label, opt] :
         {std::pair{"full (default)", full},
          std::pair{"first-order only", first_order},
          std::pair{"no anchor guard", no_guard},
          std::pair{"literal delta shift", literal}}) {
      const auto stats = run_variant(label, opt, cases);
      sgdp_table.add_row({label, wu::format_ps(stats.max_error),
                          wu::format_ps(stats.avg_error)});
    }
  }
  sgdp_table.print(std::cout);

  // 2. Integrator: golden arrival difference trapezoidal vs BE.
  {
    const waveletic::charlib::Pdk pdk;
    auto spec = no::TestbenchSpec::config1();
    spec.victim_t50 = 1.5e-9;
    no::RunnerOptions trap;
    trap.dt = 2e-12;
    no::RunnerOptions be = trap;
    be.method = waveletic::spice::Integration::kBackwardEuler;
    no::NoiseRunner r_trap(pdk, spec, trap);
    no::NoiseRunner r_be(pdk, spec, be);
    double worst = 0.0;
    for (double offset : no::NoiseRunner::offsets(fast_mode() ? 3 : 8, 1e-9)) {
      const auto a = r_trap.run_case(offset);
      const auto b = r_be.run_case(offset);
      worst = std::max(
          worst, std::abs(a.golden_output_arrival - b.golden_output_arrival));
    }
    std::cout << "\nintegrator ablation: max golden-arrival difference "
                 "trapezoidal vs backward-Euler at dt=2ps: "
              << wu::format_ps(worst) << " ps\n";
  }

  // 3. Interconnect discretization.
  {
    const waveletic::charlib::Pdk pdk;
    std::cout << "\nsegmentation ablation (noiseless victim arrival at "
                 "in_u):\n";
    double reference = 0.0;
    for (int segments : {2, 6, 12}) {
      auto spec = no::TestbenchSpec::config1();
      spec.victim_t50 = 1.5e-9;
      // Keep per-length totals constant while refining the ladder.
      spec.r_per_segment = 8.5 * 6.0 / segments;
      spec.c_per_segment = 4.8e-15 * 6.0 / segments;
      spec.segments = segments;
      no::RunnerOptions ropt;
      ropt.dt = 2e-12;
      no::NoiseRunner runner(pdk, spec, ropt);
      const auto arr = wv::arrival_50(runner.noiseless_in(),
                                      runner.in_polarity(), pdk.vdd);
      if (segments == 12) reference = *arr;
      std::cout << "  " << segments << " segments: "
                << wu::format_ps(*arr) << " ps\n";
    }
    (void)reference;
  }
  return 0;
}
