// Figure 2 reproduction: (a) the noiseless input/output pair with
// 0.2*rho_noiseless, and (b) the noisy case with rho_eff, Gamma_eff and
// v_out_eff.  Emits fig2a.csv / fig2b.csv and prints the crossing
// summary that makes the figure's point: v_out_eff tracks the golden
// noisy output.

#include <iostream>

#include "experiments/figures.hpp"
#include "util/units.hpp"

namespace ex = waveletic::experiments;
namespace wu = waveletic::util;

int main() {
  ex::Figure2Options opt;
  opt.runner.dt = 1e-12;
  opt.aggressor_offset = 40e-12;

  std::cout << "== Figure 2: sensitivity and equivalent waveforms ==\n"
            << "configuration I, aggressor offset "
            << wu::format_eng(opt.aggressor_offset, "s") << ", P = "
            << opt.samples << "\n";

  const auto data = ex::figure2_data(opt);
  ex::write_figure2_csv(".", data);

  const double vdd = 1.2;
  std::cout << "fig2a: rho_noiseless peak " << data.rho_noiseless.max_value()
            << " inside the noiseless critical region\n";
  const auto golden = data.noisy_out.first_crossing(0.5 * vdd);
  const auto eff = data.v_out_eff.first_crossing(0.5 * vdd);
  std::cout << "fig2b: golden noisy output 50% at "
            << wu::format_ps(*golden) << " ps, v_out_eff (SGDP) at "
            << wu::format_ps(*eff) << " ps (|error| "
            << wu::format_ps(std::abs(*eff - *golden)) << " ps)\n";
  std::cout << "gamma_eff: " << data.gamma_eff.size()
            << " samples, curves written to fig2a.csv / fig2b.csv\n";
  return 0;
}
