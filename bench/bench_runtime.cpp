// §4.2 run-time comparison: per-gate cost of computing Γeff for each
// technique on a representative noisy waveform (P = 35), plus the
// P-dependence of SGDP.  The paper reports ~40 us for P1/P2/LSF3/E4 and
// ~65 us for WLS5/SGDP on a Sun Blade 1000; on modern hardware the
// absolute numbers shrink by orders of magnitude but the *ratios*
// (sensitivity-based methods cost more, roughly linearly in P) are the
// reproducible shape.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/method.hpp"
#include "core/sgdp.hpp"
#include "noise/scenario.hpp"

namespace co = waveletic::core;
namespace no = waveletic::noise;

namespace {

/// One representative noise case, simulated once and shared by all
/// benchmarks (the fits are what we time, not the golden simulator).
struct Fixture {
  waveletic::charlib::Pdk pdk;
  std::unique_ptr<no::NoiseRunner> runner;
  no::CaseWaveforms cw;

  Fixture() {
    auto spec = no::TestbenchSpec::config1();
    spec.victim_t50 = 1.5e-9;
    no::RunnerOptions opt;
    opt.dt = 2e-12;
    runner = std::make_unique<no::NoiseRunner>(pdk, spec, opt);
    cw = runner->run_case(40e-12);
  }

  [[nodiscard]] co::MethodInput input(int samples) const {
    co::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner->noiseless_in();
    mi.noiseless_out = &runner->noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;
    mi.samples = samples;
    return mi;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void run_method(benchmark::State& state, const char* name) {
  const auto method = co::make_method(name);
  const auto mi = fixture().input(35);
  for (auto _ : state) {
    auto fit = method->fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}

}  // namespace

BENCHMARK_CAPTURE(run_method, P1, "P1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, P2, "P2")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, LSF3, "LSF3")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, E4, "E4")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, WLS5, "WLS5")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, SGDP, "SGDP")->Unit(benchmark::kMicrosecond);

/// SGDP cost scaling with the number of sampling points P (§4.2: "the
/// SGDP run-time can be reduced by using smaller P values").
static void sgdp_p_scaling(benchmark::State& state) {
  const co::SgdpMethod method;
  const auto mi = fixture().input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fit = method.fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(sgdp_p_scaling)
    ->Arg(5)
    ->Arg(15)
    ->Arg(35)
    ->Arg(75)
    ->Arg(155)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
