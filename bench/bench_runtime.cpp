// §4.2 run-time comparison: per-gate cost of computing Γeff for each
// technique on a representative noisy waveform (P = 35), plus the
// P-dependence of SGDP.  The paper reports ~40 us for P1/P2/LSF3/E4 and
// ~65 us for WLS5/SGDP on a Sun Blade 1000; on modern hardware the
// absolute numbers shrink by orders of magnitude but the *ratios*
// (sensitivity-based methods cost more, roughly linearly in P) are the
// reproducible shape.
//
// Production-scale additions: full-netlist propagation cost at 1..N
// threads (level-parallel engine), and a 64-noise-scenario sweep run
// the naive way (sequential loop of engine runs) vs. batched
// (ScenarioBatch: one levelized pass, scenario×vertex fan-out, shared
// Γeff memo).  After the google-benchmark tables, a summary section
// prints the measured speedups and verifies looped and batched sweeps
// produce identical timing results.

#include <benchmark/benchmark.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <vector>

#include "charlib/characterize.hpp"
#include "core/method.hpp"
#include "core/point_based.hpp"
#include "core/sgdp.hpp"
#include "interconnect/coupled.hpp"
#include "netlist/generators.hpp"
#include "noise/scenario.hpp"
#include "sta/batch.hpp"
#include "sta/edits.hpp"
#include "sta/engine.hpp"
#include "sta/hiergraph.hpp"
#include "sta/macromodel.hpp"
#include "sta/scengen.hpp"
#include "sta/service.hpp"
#include "sta/sweep.hpp"
#include "util/thread_pool.hpp"
#include "wave/kernels.hpp"
#include "wave/lanes.hpp"

// ---------------------------------------------------------------------------
// Global allocation counting hook (this binary only): makes "zero
// hot-path allocations" an asserted number instead of a claim.  Every
// operator-new in the process bumps the counter; sections snapshot it
// around the code under test.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocations{0};

uint64_t heap_allocations() noexcept {
  return g_heap_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cl = waveletic::charlib;
namespace co = waveletic::core;
namespace ic = waveletic::interconnect;
namespace nl = waveletic::netlist;
namespace no = waveletic::noise;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

/// One representative noise case, simulated once and shared by all
/// benchmarks (the fits are what we time, not the golden simulator).
struct Fixture {
  waveletic::charlib::Pdk pdk;
  std::unique_ptr<no::NoiseRunner> runner;
  no::CaseWaveforms cw;

  Fixture() {
    auto spec = no::TestbenchSpec::config1();
    spec.victim_t50 = 1.5e-9;
    no::RunnerOptions opt;
    opt.dt = 2e-12;
    runner = std::make_unique<no::NoiseRunner>(pdk, spec, opt);
    cw = runner->run_case(40e-12);
  }

  [[nodiscard]] co::MethodInput input(int samples) const {
    co::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner->noiseless_in();
    mi.noiseless_out = &runner->noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;
    mi.samples = samples;
    return mi;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void run_method(benchmark::State& state, const char* name) {
  const auto method = co::make_method(name);
  const auto mi = fixture().input(35);
  for (auto _ : state) {
    auto fit = method->fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}

}  // namespace

BENCHMARK_CAPTURE(run_method, P1, "P1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, P2, "P2")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, LSF3, "LSF3")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, E4, "E4")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, WLS5, "WLS5")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, SGDP, "SGDP")->Unit(benchmark::kMicrosecond);

/// SGDP cost scaling with the number of sampling points P (§4.2: "the
/// SGDP run-time can be reduced by using smaller P values").
static void sgdp_p_scaling(benchmark::State& state) {
  const co::SgdpMethod method;
  const auto mi = fixture().input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fit = method.fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(sgdp_p_scaling)
    ->Arg(5)
    ->Arg(15)
    ->Arg(35)
    ->Arg(75)
    ->Arg(155)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Waveform-kernel microbenchmarks: batched merge-scan sampling vs the
// per-point binary-search pattern it replaced (the acceptance shape:
// a 64-point grid over a 512-sample waveform).
// ---------------------------------------------------------------------------

namespace {

struct KernelFixture {
  static constexpr size_t kWaveSamples = 512;
  static constexpr size_t kGridPoints = 64;
  /// Different fits sample different arrival windows, so the benchmark
  /// cycles through many grids — a single fixed grid would let the
  /// branch predictor memorize the binary-search paths and flatter the
  /// scalar baseline.
  static constexpr size_t kNumGrids = 128;
  wv::Waveform wave;
  std::vector<std::vector<double>> grids;

  KernelFixture() {
    // A noisy transition: saturated ramp plus a glitch and ripple.
    std::vector<double> t(kWaveSamples), v(kWaveSamples);
    for (size_t i = 0; i < kWaveSamples; ++i) {
      const double x = static_cast<double>(i) / (kWaveSamples - 1);
      t[i] = x * 1e-9;
      const double ramp = std::clamp((x - 0.3) / 0.3, 0.0, 1.0) * 1.2;
      const double dip =
          -0.4 * std::exp(-std::pow((x - 0.55) / 0.04, 2.0));
      v[i] = ramp + dip + 0.02 * std::sin(60.0 * x);
    }
    wave = wv::Waveform(std::move(t), std::move(v));
    // Uniform grids over varying sub-windows (the sample_times shape),
    // deterministic LCG placement.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    auto next = [&seed] {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<double>(seed >> 11) /
             static_cast<double>(1ull << 53);
    };
    grids.resize(kNumGrids);
    for (auto& grid : grids) {
      const double lo = next() * 0.5e-9;
      const double hi = lo + 0.2e-9 + next() * (1.0e-9 - lo - 0.2e-9);
      grid.resize(kGridPoints);
      for (size_t i = 0; i < kGridPoints; ++i) {
        grid[i] = lo + (hi - lo) * static_cast<double>(i) /
                           (kGridPoints - 1);
      }
    }
  }
};

const KernelFixture& kernel_fixture() {
  static const KernelFixture f;
  return f;
}

void kernel_sample_scalar(benchmark::State& state) {
  const auto& f = kernel_fixture();
  std::vector<double> out(KernelFixture::kGridPoints);
  size_t g = 0;
  for (auto _ : state) {
    const auto& grid = f.grids[g];
    g = (g + 1) % f.grids.size();
    for (size_t i = 0; i < grid.size(); ++i) {
      out[i] = f.wave.at(grid[i]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(KernelFixture::kGridPoints));
}

void kernel_sample_batched(benchmark::State& state) {
  const auto& f = kernel_fixture();
  std::vector<double> out(KernelFixture::kGridPoints);
  size_t g = 0;
  for (auto _ : state) {
    const auto& grid = f.grids[g];
    g = (g + 1) % f.grids.size();
    wv::sample_into(f.wave, grid, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(KernelFixture::kGridPoints));
}

void kernel_combine_scalar(benchmark::State& state) {
  const auto& f = kernel_fixture();
  const auto other = f.wave.shifted(13e-12);
  for (auto _ : state) {
    auto c = wv::combine(f.wave, 0.7, other, 0.3);
    benchmark::DoNotOptimize(c);
  }
}

void kernel_combine_batched(benchmark::State& state) {
  const auto& f = kernel_fixture();
  const auto other = f.wave.shifted(13e-12);
  wv::Workspace ws;
  for (auto _ : state) {
    const auto scope = ws.scope();
    auto c = wv::combine_into(f.wave, 0.7, other, 0.3, ws);
    benchmark::DoNotOptimize(c);
  }
}

}  // namespace

BENCHMARK(kernel_sample_scalar)->Unit(benchmark::kNanosecond);
BENCHMARK(kernel_sample_batched)->Unit(benchmark::kNanosecond);
BENCHMARK(kernel_combine_scalar)->Unit(benchmark::kMicrosecond);
BENCHMARK(kernel_combine_batched)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Full-netlist propagation: level-parallel engine + batched scenarios
// ---------------------------------------------------------------------------

namespace {

struct StaFixture {
  static constexpr int kWidth = 48;
  waveletic::liberty::Library lib;
  nl::Netlist netlist;

  StaFixture() : lib(cl::build_vcl013_library_fast()),
                 netlist(nl::make_chain_tree(kWidth)) {}

  void constrain(st::StaEngine& sta) const {
    for (int i = 0; i < kWidth; ++i) {
      sta.set_input("a" + std::to_string(i), 0.005e-9 * i,
                    (80 + 5 * (i % 11)) * 1e-12);
    }
    sta.set_output_load("y", 6e-15);
    sta.set_required("y", 3e-9);
  }

  /// Scenario grid: aggressor alignment × strength on several victim
  /// nets, built from the clean victim ramps (same parameterization as
  /// the golden noise::NoiseRunner sweep).
  [[nodiscard]] std::vector<st::NoiseScenario> scenarios(int count) const {
    st::StaEngine clean(netlist, lib);
    constrain(clean);
    clean.run();
    std::vector<st::NoiseScenario> out;
    int i = 0;
    while (static_cast<int>(out.size()) < count) {
      const int chain = i % 8;
      const int align_step = (i / 8) % 4;
      const int strength_step = (i / 32) % 4;
      const auto& t = clean.timing("inv" + std::to_string(chain) + "_2/A",
                                   st::RiseFall::kFall);
      out.push_back(st::make_aggressor_scenario(
          "c" + std::to_string(chain) + "_1", t.arrival, t.slew,
          lib.nom_voltage, wv::Polarity::kFalling,
          (align_step - 2) * 15e-12, 0.2 + 0.15 * strength_step));
      ++i;
    }
    return out;
  }
};

const StaFixture& sta_fixture() {
  static const StaFixture f;
  return f;
}

/// Full engine run (forward + backward) at `threads` worker threads.
void sta_run(benchmark::State& state) {
  const auto& f = sta_fixture();
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  sta.set_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sta.run();
    benchmark::DoNotOptimize(sta.worst_slack());
  }
}

/// Naive scenario sweep: sequential loop of single-threaded runs.
/// Annotations are cleared between scenarios so every looped run
/// evaluates exactly one scenario — the same workload the batch does.
void sta_sweep_looped(benchmark::State& state) {
  const auto& f = sta_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& sc : scenarios) {
      sta.clear_noisy_nets();
      for (const auto& e : sc.entries) {
        sta.annotate_noisy_net(e.net, e.annotation.waveform,
                               e.annotation.polarity);
      }
      sta.run();
      acc += sta.worst_slack();
    }
    benchmark::DoNotOptimize(acc);
  }
}

/// Batched sweep: ScenarioBatch, one pass, shared Γeff memo (default
/// partition-sharded scheduling).  Construction and scenario loading
/// happen outside the timed loop; run() itself clears the memo, so
/// every iteration is a cold sweep.
void sta_sweep_batched(benchmark::State& state) {
  const auto& f = sta_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  st::BatchOptions opt;
  opt.threads = static_cast<int>(state.range(1));
  st::ScenarioBatch batch(sta, opt);
  for (const auto& sc : scenarios) batch.add(sc);
  for (auto _ : state) {
    batch.run();
    double acc = 0.0;
    for (size_t i = 0; i < batch.size(); ++i) acc += batch.worst_slack(i);
    benchmark::DoNotOptimize(acc);
  }
}

/// Scheduling A/B: the same sweep under (point × partition) coarse
/// tasks (sharded) vs the legacy per-level (point × vertex) fan-out.
/// Runs with delta OFF — this benchmark measures full-propagation
/// scheduling, which baseline+delta would mask.
void sta_sweep_scheduled(benchmark::State& state, bool shard) {
  const auto& f = sta_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = static_cast<int>(state.range(1));
  spec.shard = shard;
  spec.delta = false;
  for (auto _ : state) {
    auto result = sta.sweep(spec);
    double acc = 0.0;
    for (size_t i = 0; i < result.size(); ++i) acc += result.worst_slack(i);
    benchmark::DoNotOptimize(acc);
  }
}

void sta_sweep_sharded(benchmark::State& state) {
  sta_sweep_scheduled(state, true);
}

void sta_sweep_levels(benchmark::State& state) {
  sta_sweep_scheduled(state, false);
}

// ---------------------------------------------------------------------------
// Sparse-scenario sweep on a ~10k-vertex netlist: the baseline+delta
// workload — 64 scenarios, each annotating ≤ 2 nets, so every cone
// covers a tiny slice of the graph and full re-propagation wastes
// almost the whole walk.
// ---------------------------------------------------------------------------

struct SparseFixture {
  waveletic::liberty::Library lib;
  nl::Netlist netlist;

  SparseFixture()
      : lib(cl::build_vcl013_library_fast()),
        netlist(nl::make_random_dag(2026, 24, 50, 80)) {}

  void constrain(st::StaEngine& sta) const {
    int i = 0;
    int o = 0;
    for (const auto& port : netlist.ports()) {
      if (port.direction == nl::PortDirection::kInput) {
        sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
        ++i;
      } else {
        sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
        sta.set_required(port.name, 4e-9);
        ++o;
      }
    }
  }

  /// `count` scenarios, alternating one and two annotated victim nets,
  /// aggressor alignment cycling from dead-on to far-late.
  [[nodiscard]] std::vector<st::NoiseScenario> scenarios(int count) const {
    st::StaEngine clean(netlist, lib);
    constrain(clean);
    clean.set_threads(
        static_cast<int>(wu::ThreadPool::hardware_threads()));
    clean.run();
    struct Victim {
      std::string net;
      double arrival;
      double slew;
    };
    // Walk instances from the END: the generator appends layer by
    // layer, so late instances sit near the outputs and their fanout
    // cones are small — the realistic crosstalk-victim shape (an early-
    // layer victim's cone covers most of a deep DAG, which is full
    // re-propagation territory, not the sparse workload).
    std::vector<Victim> victims;
    const auto& instances = netlist.instances();
    for (size_t i = instances.size(); i > 0; --i) {
      const auto& inst = instances[i - 1];
      const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
      if (!t.valid || t.slew <= 0.0) continue;
      victims.push_back({inst.pins.at("A"), t.arrival, t.slew});
      if (victims.size() >= 4 * static_cast<size_t>(count)) break;
    }
    // A few aggressors sit right on the clean critical path (dead-on
    // alignment: these decide the worst slack), the rest are the
    // long tail of far-offset / off-path bumps a sign-off sweep grinds
    // through — prune=safe's prey.
    std::vector<Victim> critical;
    for (const auto& step : clean.worst_path()) {
      const auto slash = step.pin.find('/');
      if (slash == std::string::npos) continue;
      const auto* inst = netlist.find_instance(step.pin.substr(0, slash));
      const auto& t = clean.timing(step.pin, st::RiseFall::kFall);
      if (!t.valid || t.slew <= 0.0) continue;
      critical.push_back(
          {inst->pins.at(step.pin.substr(slash + 1)), t.arrival, t.slew});
    }
    std::vector<st::NoiseScenario> out;
    size_t v = 0;
    for (int i = 0; i < count; ++i) {
      const bool on_path = i < 4 && !critical.empty();
      const int nets = on_path ? 1 : 1 + (i % 2);  // ≤ 2 nets each
      st::NoiseScenario sc;
      for (int n = 0; n < nets; ++n) {
        const auto& vic = on_path
                              ? critical[static_cast<size_t>(i) %
                                         critical.size()]
                              : victims[v++ % victims.size()];
        auto one = st::make_aggressor_scenario(
            vic.net, vic.arrival, vic.slew, lib.nom_voltage,
            wv::Polarity::kFalling, on_path ? 0.0 : (i % 8) * 120e-12,
            on_path ? 0.45 : 0.25 + 0.05 * (i % 4));
        if (sc.name.empty()) sc.name = one.name;
        sc.annotate(vic.net, one.entries[0].annotation.waveform,
                    one.entries[0].annotation.polarity);
      }
      out.push_back(std::move(sc));
    }
    return out;
  }
};

const SparseFixture& sparse_fixture() {
  static const SparseFixture f;
  return f;
}

// ---------------------------------------------------------------------------
// Dense-cone lane workload: a deep ~900-vertex random DAG where each
// chosen victim drives a cone covering ≥ 10% of the graph.  64
// scenarios = the 4 largest-cone victims × 16 alignment/strength
// variants, so plan dedup collapses the sweep onto 4 cones and the
// lane grouper packs 16 full 4-wide blocks — the workload the SoA
// walker exists for.  (Sparse tiny-cone sweeps are baseline-copy
// dominated and gain little from lanes; that regime is measured by the
// sparse A/B above.)
// ---------------------------------------------------------------------------

struct DenseLaneFixture {
  waveletic::liberty::Library lib;
  nl::Netlist netlist;

  DenseLaneFixture()
      : lib(cl::build_vcl013_library_fast()),
        netlist(nl::make_random_dag(2026, 14, 14, 22)) {}

  void constrain(st::StaEngine& sta) const {
    int i = 0;
    int o = 0;
    for (const auto& port : netlist.ports()) {
      if (port.direction == nl::PortDirection::kInput) {
        sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
        ++i;
      } else {
        sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
        sta.set_required(port.name, 4e-9);
        ++o;
      }
    }
  }

  /// `count` scenarios cycling over the 4 largest-cone victims, each
  /// with 16 distinct (alignment × strength) aggressor variants.
  [[nodiscard]] std::vector<st::NoiseScenario> scenarios(int count) const {
    st::StaEngine clean(netlist, lib);
    constrain(clean);
    clean.run();
    struct Victim {
      std::string net;
      double arrival;
      double slew;
      size_t cone;
    };
    std::vector<Victim> victims;
    for (const auto& inst : netlist.instances()) {
      const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
      if (!t.valid || t.slew <= 0.0) continue;
      auto sc = st::make_aggressor_scenario(
          inst.pins.at("A"), t.arrival, t.slew, lib.nom_voltage,
          wv::Polarity::kFalling, 0.0, 0.3);
      const size_t cone = clean.delta_plan(sc).forward.size();
      if (cone * 10 < clean.vertex_count()) continue;  // dense cones only
      victims.push_back({inst.pins.at("A"), t.arrival, t.slew, cone});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) { return a.cone > b.cone; });
    if (victims.size() > 4) victims.resize(4);
    std::vector<st::NoiseScenario> out;
    out.reserve(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k) {
      const auto& v = victims[static_cast<size_t>(k) % victims.size()];
      const int variant =
          (k / static_cast<int>(victims.size())) % 16;
      out.push_back(st::make_aggressor_scenario(
          v.net, v.arrival, v.slew, lib.nom_voltage, wv::Polarity::kFalling,
          ((variant % 4) - 2) * 15e-12, 0.15 + 0.05 * (variant / 4)));
    }
    return out;
  }
};

const DenseLaneFixture& dense_lane_fixture() {
  static const DenseLaneFixture f;
  return f;
}

/// One sparse sweep per iteration, delta on/off.
void sta_sweep_sparse(benchmark::State& state, bool delta) {
  const auto& f = sparse_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = static_cast<int>(state.range(1));
  spec.delta = delta;
  for (auto _ : state) {
    auto result = sta.sweep(spec);
    double acc = 0.0;
    for (size_t i = 0; i < result.size(); ++i) acc += result.worst_slack(i);
    benchmark::DoNotOptimize(acc);
  }
}

void sta_sweep_sparse_delta(benchmark::State& state) {
  sta_sweep_sparse(state, true);
}

void sta_sweep_sparse_full(benchmark::State& state) {
  sta_sweep_sparse(state, false);
}

// ---------------------------------------------------------------------------
// Generated sweep: a lazy ScenarioSpace (coupling pairs × alignment ×
// strength grid) streamed through the baseline+delta+prune pipeline in
// bounded chunks.  The alignment grid is deliberately wide so the
// window filter, not propagation, absorbs most of the candidate volume
// — the sign-off shape, where points/sec is dominated by how cheaply
// infeasible candidates die.
// ---------------------------------------------------------------------------

struct GenFixture {
  waveletic::liberty::Library lib;
  nl::Netlist netlist;

  GenFixture()
      : lib(cl::build_vcl013_library_fast()),
        netlist(nl::make_random_dag(2026, 12, 8, 12)) {}

  void constrain(st::StaEngine& sta) const {
    int i = 0;
    int o = 0;
    for (const auto& port : netlist.ports()) {
      if (port.direction == nl::PortDirection::kInput) {
        sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
        ++i;
      } else {
        sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
        sta.set_required(port.name, 2.5e-9);
        ++o;
      }
    }
  }

  /// Space seeded from the clean engine's corner-baseline windows:
  /// ordinal-adjacency coupling candidates × 81 alignments × 8
  /// strengths (the generated_sweep example's grid).
  [[nodiscard]] st::ScenarioSpace space(
      const st::StaEngine& sta, const st::DrivesPredicate& drives) const {
    const auto candidates = ic::infer_coupling_candidates(netlist);
    auto sp = st::make_scenario_space(sta, netlist, candidates, drives,
                                      /*alignments=*/{}, /*strengths=*/{});
    for (int a = -40; a <= 40; ++a) sp.alignments.push_back(a * 50e-12);
    for (int s = 1; s <= 8; ++s) sp.strengths.push_back(0.05 * s);
    return sp;
  }
};

const GenFixture& gen_fixture() {
  static const GenFixture f;
  return f;
}

/// One full generated sweep per iteration: lazy generation, window +
/// correlation feasibility filtering, chunked baseline+delta+prune
/// evaluation.  items/sec is candidates (generated points) per second.
void sta_sweep_generated(benchmark::State& state) {
  const auto& f = gen_fixture();
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  sta.run();
  const auto drives = st::make_drives_predicate(f.lib);
  const auto space = f.space(sta, drives);
  const st::StructuralCorrelationRule correlation(f.netlist, drives);
  for (auto _ : state) {
    st::GeneratedSweepSpec spec;
    spec.space = space;
    spec.correlation = &correlation;
    spec.prune = st::PruneMode::kSafe;
    spec.gen_chunk = static_cast<size_t>(state.range(0));
    spec.keep_point_records = false;
    auto result = sta.sweep(spec);
    benchmark::DoNotOptimize(result.worst_slack());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(space.size()));
}

}  // namespace

BENCHMARK(sta_run)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_looped)
    ->Arg(64)
    ->ArgName("scenarios")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_batched)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_sharded)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_levels)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_sparse_delta)
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_sparse_full)
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_generated)
    ->Arg(512)
    ->Arg(2048)
    ->ArgName("gen_chunk")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Summary: measured speedups + result-identity check
// ---------------------------------------------------------------------------

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct SweepFigures {
  double scenarios_per_sec = 0.0;
  double speedup_vs_looped = 0.0;
  double sharded_scenarios_per_sec = 0.0;
  double levels_scenarios_per_sec = 0.0;
  double lane_scenarios_per_sec = 0.0;
  double lane_speedup_vs_scalar = 0.0;
  bool bitwise = false;
};

SweepFigures report_sweep_speedups() {
  const auto& f = sta_fixture();
  const int kScenarios = 64;
  const auto scenarios = f.scenarios(kScenarios);
  const size_t hw = wu::ThreadPool::hardware_threads();

  // Sequential loop baseline (also collects reference results).
  std::vector<double> looped_slack;
  st::StaEngine looped(f.netlist, f.lib);
  f.constrain(looped);
  const double t_looped = wall_seconds([&] {
    for (const auto& sc : scenarios) {
      looped.clear_noisy_nets();
      for (const auto& e : sc.entries) {
        looped.annotate_noisy_net(e.net, e.annotation.waveform,
                                  e.annotation.polarity);
      }
      looped.run();
      looped_slack.push_back(looped.worst_slack());
    }
  });

  // Batched at 1 thread (cache + single-pass effect) and at the
  // hardware thread count (adds the parallel fan-out).
  waveletic::sta::GammaCache::Stats statsN{};
  auto run_batched = [&](int threads, std::vector<double>& slack,
                         waveletic::sta::GammaCache::Stats& stats) {
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    st::BatchOptions opt;
    opt.threads = threads;
    st::ScenarioBatch batch(sta, opt);
    for (const auto& sc : scenarios) batch.add(sc);
    const double t = wall_seconds([&] { batch.run(); });
    for (size_t i = 0; i < batch.size(); ++i) {
      slack.push_back(batch.worst_slack(i));
    }
    stats = batch.cache_stats();
    return t;
  };
  std::vector<double> batched1_slack, batchedN_slack;
  waveletic::sta::GammaCache::Stats stats1{};
  const double t_batched1 = run_batched(1, batched1_slack, stats1);
  const double t_batchedN =
      run_batched(static_cast<int>(hw), batchedN_slack, statsN);

  // Scheduling A/B on the same workload: (point × partition) coarse
  // tasks vs the legacy per-level fan-out.  Run with ≥ 4 workers — at
  // 1 thread both schedules degenerate to the same serial loop, the
  // difference being measured is barrier overhead vs dependency-
  // ordered tasks, which only exists with workers.  Best-of-5
  // interleaved — single wall samples of a ~3 ms sweep are noisier
  // than the few-percent difference being measured.
  const size_t ab_threads = std::max<size_t>(hw, 4);
  std::vector<double> sharded_slack, levels_slack;
  double t_sharded = std::numeric_limits<double>::infinity();
  double t_levels = std::numeric_limits<double>::infinity();
  {
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    st::SweepSpec spec;
    spec.scenarios = scenarios;
    spec.threads = static_cast<int>(ab_threads);
    spec.delta = false;  // the A/B measures full-propagation scheduling
    auto one = [&](bool shard, std::vector<double>& slack) {
      spec.shard = shard;
      st::SweepResult result;
      const double t = wall_seconds([&] { result = sta.sweep(spec); });
      if (slack.empty()) {
        for (size_t i = 0; i < result.size(); ++i) {
          slack.push_back(result.worst_slack(i));
        }
      }
      return t;
    };
    // Interleaved reps so clock/cache drift hits both variants equally.
    for (int rep = 0; rep < 5; ++rep) {
      t_levels = std::min(t_levels, one(false, levels_slack));
      t_sharded = std::min(t_sharded, one(true, sharded_slack));
    }
  }

  // Endpoint-only result storage at sweep scale: 10k points (50
  // distinct bumps cycled — the Γeff memo absorbs the repeats), chunked
  // evaluation, per-point memory vs full mode.
  const int kEndpointPoints = 10000;
  double t_endpoint = 0.0;
  size_t endpoint_bytes = 0;
  size_t full_bytes = 0;
  double endpoint_worst = 0.0;
  bool endpoint_matches_full = true;
  {
    const auto distinct = f.scenarios(50);
    st::SweepSpec spec;
    spec.scenarios.reserve(kEndpointPoints);
    for (int i = 0; i < kEndpointPoints; ++i) {
      spec.scenarios.push_back(distinct[static_cast<size_t>(i) % 50]);
    }
    spec.threads = static_cast<int>(hw);
    spec.endpoint_only = true;
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    st::SweepResult result;
    t_endpoint = wall_seconds([&] { result = sta.sweep(spec); });
    endpoint_bytes = result.result_bytes_per_point();
    endpoint_worst = result.worst_point().slack;
    // Full-mode bytes/point are per-point constant; measure on a small
    // full-state sweep of the same engine.
    st::SweepSpec small;
    small.scenarios.assign(spec.scenarios.begin(),
                           spec.scenarios.begin() + 8);
    small.threads = static_cast<int>(hw);
    const auto full = sta.sweep(small);
    full_bytes = full.result_bytes_per_point();
    // Cross-check: the stored endpoint summaries match full mode
    // bitwise (folded into the reported bitwise_identical flag).
    for (size_t i = 0; i < full.size(); ++i) {
      endpoint_matches_full = endpoint_matches_full &&
                              result.worst_slack(i) == full.worst_slack(i);
    }
    if (!endpoint_matches_full) {
      std::printf("ENDPOINT-ONLY MISMATCH — BUG\n");
    }
  }

  // Sparse-scenario baseline+delta A/B on the ~10k-vertex random DAG:
  // 64 scenarios, ≤ 2 annotated nets each, so full re-propagation
  // walks the whole graph per point while delta touches only the tiny
  // cones.  Best-of-3 interleaved; per-point worst slacks must match
  // bitwise and prune=safe must keep the exact worst point.
  const int kSparse = 64;
  double t_sparse_full = std::numeric_limits<double>::infinity();
  double t_sparse_delta = std::numeric_limits<double>::infinity();
  double t_sparse_pruned = std::numeric_limits<double>::infinity();
  size_t sparse_vertices = 0;
  waveletic::sta::PruneStats sparse_stats{};
  bool sparse_identical = true;
  {
    const auto& sf = sparse_fixture();
    const auto sparse_scens = sf.scenarios(kSparse);
    st::StaEngine sta(sf.netlist, sf.lib);
    sf.constrain(sta);
    sparse_vertices = sta.vertex_count();
    st::SweepSpec spec;
    spec.scenarios = sparse_scens;
    spec.threads = static_cast<int>(hw);
    st::SweepResult r_full, r_delta, r_pruned;
    for (int rep = 0; rep < 3; ++rep) {
      spec.delta = false;
      spec.prune = st::PruneMode::kOff;
      t_sparse_full = std::min(
          t_sparse_full, wall_seconds([&] { r_full = sta.sweep(spec); }));
      spec.delta = true;
      t_sparse_delta = std::min(
          t_sparse_delta, wall_seconds([&] { r_delta = sta.sweep(spec); }));
      spec.prune = st::PruneMode::kSafe;
      t_sparse_pruned = std::min(
          t_sparse_pruned, wall_seconds([&] { r_pruned = sta.sweep(spec); }));
      spec.prune = st::PruneMode::kOff;
    }
    for (size_t p = 0; p < r_full.size(); ++p) {
      sparse_identical =
          sparse_identical && r_full.worst_slack(p) == r_delta.worst_slack(p);
    }
    const auto wp_full = r_full.worst_point();
    const auto wp_pruned = r_pruned.worst_point();
    sparse_identical = sparse_identical && wp_full.point == wp_pruned.point &&
                       wp_full.slack == wp_pruned.slack;
    sparse_stats = r_pruned.prune_stats();
    if (!sparse_identical) std::printf("SPARSE DELTA MISMATCH — BUG\n");
  }
  const double sparse_delta_speedup = t_sparse_full / t_sparse_delta;
  const double sparse_pruned_fraction =
      static_cast<double>(sparse_stats.pruned) /
      static_cast<double>(std::max<size_t>(sparse_stats.points, 1));

  // Generated sweep: lazy ScenarioSpace → window/correlation funnel →
  // chunked baseline+delta+prune.  Cross-checked bitwise against eager
  // enumeration: drain the same generator up front, push every
  // feasibility survivor through sweep(SweepSpec), compare worst points.
  double t_generated = std::numeric_limits<double>::infinity();
  st::GenStats gen_funnel{};
  uint64_t gen_space_size = 0;
  bool gen_identical = true;
  {
    const auto& gf = gen_fixture();
    st::StaEngine sta(gf.netlist, gf.lib);
    gf.constrain(sta);
    sta.run();
    const auto drives = st::make_drives_predicate(gf.lib);
    const auto space = gf.space(sta, drives);
    gen_space_size = space.size();
    const st::StructuralCorrelationRule correlation(gf.netlist, drives);
    st::GeneratedSweepSpec spec;
    spec.space = space;
    spec.correlation = &correlation;
    spec.threads = static_cast<int>(hw);
    spec.prune = st::PruneMode::kSafe;
    spec.gen_chunk = 1024;
    spec.keep_point_records = false;
    st::GeneratedSweepResult generated;
    for (int rep = 0; rep < 3; ++rep) {
      t_generated = std::min(
          t_generated, wall_seconds([&] { generated = sta.sweep(spec); }));
    }
    gen_funnel = generated.gen_stats();

    st::SweepSpec eager;
    eager.threads = static_cast<int>(hw);
    eager.endpoint_only = true;
    eager.prune = st::PruneMode::kSafe;
    st::ScenarioGenerator drain(space, &correlation);
    while (const auto c = drain.next()) {
      eager.scenarios.push_back(drain.materialize(*c));
    }
    const auto reference = sta.sweep(eager);
    const auto& wp_gen = generated.worst_point();
    const auto wp_ref = reference.worst_point();
    gen_identical = generated.worst_slack() == wp_ref.slack &&
                    wp_gen.corner == wp_ref.corner &&
                    wp_gen.scenario_name ==
                        reference.scenario_name(wp_ref.scenario);
    if (!gen_identical) std::printf("GENERATED SWEEP MISMATCH — BUG\n");
  }
  const auto gen_fraction = [&](uint64_t n) {
    return static_cast<double>(n) /
           static_cast<double>(std::max<uint64_t>(gen_funnel.generated, 1));
  };
  const double gen_points_per_sec =
      static_cast<double>(gen_funnel.generated) / t_generated;

  // Compound-aggressor generated sweep: the same fixture with
  // max_aggressors = 2 and coupled-line bump shapes.  Pair events
  // multiply the candidate volume, so nearly all of the extra space
  // must die in the index-level filters (window + correlation lift +
  // set veto) before any waveform exists — the warn gate holds the
  // pre-waveform kill fraction above 50%.  Cross-checked bitwise
  // against eager enumeration like the single-aggressor run.
  double t_compound = std::numeric_limits<double>::infinity();
  st::GenStats compound_funnel{};
  uint64_t compound_space_size = 0;
  uint64_t compound_events = 0;
  bool compound_identical = true;
  {
    const auto& gf = gen_fixture();
    st::StaEngine sta(gf.netlist, gf.lib);
    gf.constrain(sta);
    sta.run();
    const auto drives = st::make_drives_predicate(gf.lib);
    auto space = gf.space(sta, drives);
    space.max_aggressors = 2;
    space.bump_shape = st::BumpShape::kCoupledLine;
    compound_space_size = space.size();
    compound_events = space.num_events();
    const st::StructuralCorrelationRule correlation(gf.netlist, drives);
    st::GeneratedSweepSpec spec;
    spec.space = space;
    spec.correlation = &correlation;
    spec.threads = static_cast<int>(hw);
    spec.prune = st::PruneMode::kSafe;
    spec.gen_chunk = 1024;
    spec.keep_point_records = false;
    st::GeneratedSweepResult compound;
    for (int rep = 0; rep < 2; ++rep) {
      t_compound = std::min(t_compound,
                            wall_seconds([&] { compound = sta.sweep(spec); }));
    }
    compound_funnel = compound.gen_stats();

    st::SweepSpec eager;
    eager.threads = static_cast<int>(hw);
    eager.endpoint_only = true;
    eager.prune = st::PruneMode::kSafe;
    st::ScenarioGenerator drain(space, &correlation);
    while (const auto c = drain.next()) {
      eager.scenarios.push_back(drain.materialize(*c));
    }
    const auto reference = sta.sweep(eager);
    const auto& wp_gen = compound.worst_point();
    const auto wp_ref = reference.worst_point();
    compound_identical = compound.worst_slack() == wp_ref.slack &&
                         wp_gen.corner == wp_ref.corner &&
                         wp_gen.scenario_name ==
                             reference.scenario_name(wp_ref.scenario);
    if (!compound_identical) std::printf("COMPOUND SWEEP MISMATCH — BUG\n");
  }
  const auto compound_fraction = [&](uint64_t n) {
    return static_cast<double>(n) / static_cast<double>(std::max<uint64_t>(
                                        compound_funnel.generated, 1));
  };
  const double compound_points_per_sec =
      static_cast<double>(compound_funnel.generated) / t_compound;
  const double compound_prewave_killed = compound_fraction(
      compound_funnel.window_killed + compound_funnel.correlation_killed +
      compound_funnel.set_killed);

  // SIMD lane A/B on the dense 64-scenario delta sweep (the dense-cone
  // random-DAG fixture: 4 victims × 16 variants, every cone ≥ 10% of
  // the ~900-vertex graph).  lanes=1 pins the scalar per-point path,
  // lanes=0 auto-selects the widest compiled width (4 on AVX2 builds,
  // where the two runs must match bitwise per point — the lane
  // determinism contract).  Best-of-5 interleaved.  Measured under two
  // noise methods: P1 (propagation-bound — the graph walk the lane
  // layer vectorizes) is the headline; SGDP (the default) also runs
  // its scalar per-lane Newton Γeff fits, which bound its lane gain
  // near ~1.3× by Amdahl, and is reported alongside.  On scalar-only
  // builds/CPUs both runs take the same path and the speedup is ~1.0.
  const int lane_width = wv::active_lane_width();
  const int kLaneScenarios = 64;
  size_t lane_vertices = 0;
  double t_lane_scalar = std::numeric_limits<double>::infinity();
  double t_lane_wide = std::numeric_limits<double>::infinity();
  double t_lane_sgdp_scalar = std::numeric_limits<double>::infinity();
  double t_lane_sgdp_wide = std::numeric_limits<double>::infinity();
  bool lane_identical = true;
  {
    static waveletic::core::P1Method p1;
    const auto& df = dense_lane_fixture();
    const auto dense_scenarios = df.scenarios(kLaneScenarios);
    st::StaEngine sta(df.netlist, df.lib);
    df.constrain(sta);
    lane_vertices = sta.vertex_count();
    st::SweepSpec spec;
    spec.scenarios = dense_scenarios;
    spec.threads = static_cast<int>(hw);
    spec.delta = true;
    st::SweepResult r_scalar, r_wide, r_sgdp_scalar, r_sgdp_wide;
    for (int rep = 0; rep < 5; ++rep) {
      spec.method = &p1;
      spec.lanes = 1;
      t_lane_scalar = std::min(
          t_lane_scalar, wall_seconds([&] { r_scalar = sta.sweep(spec); }));
      spec.lanes = 0;
      t_lane_wide = std::min(
          t_lane_wide, wall_seconds([&] { r_wide = sta.sweep(spec); }));
      spec.method = nullptr;  // engine default (SGDP)
      spec.lanes = 1;
      t_lane_sgdp_scalar =
          std::min(t_lane_sgdp_scalar,
                   wall_seconds([&] { r_sgdp_scalar = sta.sweep(spec); }));
      spec.lanes = 0;
      t_lane_sgdp_wide =
          std::min(t_lane_sgdp_wide,
                   wall_seconds([&] { r_sgdp_wide = sta.sweep(spec); }));
    }
    // Delta cross-check on this fixture: full re-propagation must agree
    // exactly with the baseline+delta path the lane A/B runs on.
    spec.method = &p1;
    spec.delta = false;
    spec.lanes = 1;
    const auto r_full = sta.sweep(spec);
    for (size_t p = 0; p < r_scalar.size(); ++p) {
      lane_identical = lane_identical &&
                       std::bit_cast<uint64_t>(r_scalar.worst_slack(p)) ==
                           std::bit_cast<uint64_t>(r_wide.worst_slack(p)) &&
                       std::bit_cast<uint64_t>(r_sgdp_scalar.worst_slack(p)) ==
                           std::bit_cast<uint64_t>(r_sgdp_wide.worst_slack(p)) &&
                       r_scalar.worst_slack(p) == r_full.worst_slack(p);
    }
    if (!lane_identical) std::printf("LANE SWEEP MISMATCH — BUG\n");
  }
  const double lane_speedup = t_lane_scalar / t_lane_wide;
  const double lane_sgdp_speedup = t_lane_sgdp_scalar / t_lane_sgdp_wide;

  bool identical = endpoint_matches_full && sparse_identical &&
                   gen_identical && compound_identical && lane_identical;
  for (int i = 0; i < kScenarios; ++i) {
    identical = identical && looped_slack[i] == batched1_slack[i] &&
                looped_slack[i] == batchedN_slack[i] &&
                looped_slack[i] == sharded_slack[i] &&
                looped_slack[i] == levels_slack[i];
  }

  // Single-run thread scaling.
  auto run_once = [&](int threads) {
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    sta.set_threads(threads);
    return wall_seconds([&] { sta.run(); });
  };
  const double t_run1 = run_once(1);
  const double t_runN = run_once(static_cast<int>(hw));

  std::printf("\n-- scenario-sweep speedup summary (%d scenarios, %zu "
              "hardware threads) --\n",
              kScenarios, hw);
  std::printf("looped sweep, 1 thread:          %8.1f ms\n", t_looped * 1e3);
  std::printf("batched sweep, 1 thread:         %8.1f ms  (%.2fx vs looped)\n",
              t_batched1 * 1e3, t_looped / t_batched1);
  std::printf("batched sweep, %2zu threads:       %8.1f ms  (%.2fx vs "
              "looped)\n",
              hw, t_batchedN * 1e3, t_looped / t_batchedN);
  std::printf("per-level fan-out, %2zu threads:   %8.1f ms  (%.1f "
              "scenarios/sec)\n",
              ab_threads, t_levels * 1e3, kScenarios / t_levels);
  std::printf("partition-sharded, %2zu threads:   %8.1f ms  (%.1f "
              "scenarios/sec, %.2fx vs per-level)%s\n",
              ab_threads, t_sharded * 1e3, kScenarios / t_sharded,
              t_levels / t_sharded,
              t_sharded <= t_levels ? "" : "  [slower than per-level]");
  std::printf("single run 1 thread -> %zu threads: %.2f ms -> %.2f ms "
              "(%.2fx)\n",
              hw, t_run1 * 1e3, t_runN * 1e3, t_run1 / t_runN);
  std::printf("endpoint-only 10k-point sweep:   %8.1f ms  (%.1f points/sec)\n",
              t_endpoint * 1e3, kEndpointPoints / t_endpoint);
  std::printf("sparse sweep (%zu vertices, %d scenarios, <=2 nets each):\n",
              sparse_vertices, kSparse);
  std::printf("  full re-propagation:           %8.1f ms  (%.1f "
              "scenarios/sec)\n",
              t_sparse_full * 1e3, kSparse / t_sparse_full);
  std::printf("  baseline + delta:              %8.1f ms  (%.1f "
              "scenarios/sec, %.2fx vs full)%s\n",
              t_sparse_delta * 1e3, kSparse / t_sparse_delta,
              sparse_delta_speedup,
              sparse_delta_speedup >= 2.0 ? "" : "  [below 2x target]");
  std::printf("  delta + prune=safe:            %8.1f ms  (%.1f "
              "scenarios/sec, %.0f%% pruned, dirty cone %.1f%%)\n",
              t_sparse_pruned * 1e3, kSparse / t_sparse_pruned,
              sparse_pruned_fraction * 100.0,
              sparse_stats.dirty_vertex_fraction * 100.0);
  std::printf("generated sweep (%llu-candidate lazy space, chunk 1024):\n",
              static_cast<unsigned long long>(gen_space_size));
  std::printf("  %8.1f ms  (%.0f points/sec; window_killed %.1f%%, "
              "correlation_killed %.1f%%, prune_killed %.1f%%, reused "
              "%.1f%%, evaluated %.1f%%)\n",
              t_generated * 1e3, gen_points_per_sec,
              gen_fraction(gen_funnel.window_killed) * 100.0,
              gen_fraction(gen_funnel.correlation_killed) * 100.0,
              gen_fraction(gen_funnel.prune_killed) * 100.0,
              gen_fraction(gen_funnel.reused) * 100.0,
              gen_fraction(gen_funnel.evaluated) * 100.0);
  std::printf("compound generated sweep (k<=2, coupled-line bumps, %llu "
              "events, %llu candidates, chunk 1024):\n",
              static_cast<unsigned long long>(compound_events),
              static_cast<unsigned long long>(compound_space_size));
  std::printf("  %8.1f ms  (%.0f points/sec; window_killed %.1f%%, "
              "correlation_killed %.1f%%, set_killed %.1f%%, prune_killed "
              "%.1f%%, reused %.1f%%, evaluated %.1f%%)%s\n",
              t_compound * 1e3, compound_points_per_sec,
              compound_fraction(compound_funnel.window_killed) * 100.0,
              compound_fraction(compound_funnel.correlation_killed) * 100.0,
              compound_fraction(compound_funnel.set_killed) * 100.0,
              compound_fraction(compound_funnel.prune_killed) * 100.0,
              compound_fraction(compound_funnel.reused) * 100.0,
              compound_fraction(compound_funnel.evaluated) * 100.0,
              compound_prewave_killed >= 0.5
                  ? ""
                  : "  [pre-waveform kills below 50% target]");
  std::printf("lane-parallel delta sweep (dense-cone fixture: %zu vertices, "
              "%d scenarios on 4 cones, width %d):\n",
              lane_vertices, kLaneScenarios, lane_width);
  std::printf("  P1    lanes=1 (scalar oracle): %8.1f ms  (%.1f "
              "scenarios/sec)\n",
              t_lane_scalar * 1e3, kLaneScenarios / t_lane_scalar);
  std::printf("  P1    lanes=auto:              %8.1f ms  (%.1f "
              "scenarios/sec, %.2fx vs scalar)%s\n",
              t_lane_wide * 1e3, kLaneScenarios / t_lane_wide, lane_speedup,
              lane_width < 4 || lane_speedup >= 1.5
                  ? ""
                  : "  [below 1.5x target]");
  std::printf("  SGDP  lanes=1 -> lanes=auto:   %8.1f ms -> %.1f ms  (%.2fx; "
              "scalar Geff fits bound this near ~1.3x)\n",
              t_lane_sgdp_scalar * 1e3, t_lane_sgdp_wide * 1e3,
              lane_sgdp_speedup);
  std::printf("result memory per point: full %zu B -> endpoint-only %zu B "
              "(%.1fx reduction)%s  [worst slack %.4g]\n",
              full_bytes, endpoint_bytes,
              static_cast<double>(full_bytes) /
                  static_cast<double>(endpoint_bytes),
              full_bytes >= 10 * endpoint_bytes ? "" : "  [below 10x target]",
              endpoint_worst);
  std::printf("timing results identical across looped/batched/sharded/"
              "per-level: %s\n",
              identical ? "yes" : "NO — BUG");

  // Machine-readable summary for CI trend tracking.
  const char* json_path = "BENCH_sweep.json";
  if (FILE* f_json = std::fopen(json_path, "w")) {
    const uint64_t lookups = statsN.hits + statsN.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(statsN.hits) /
                           static_cast<double>(lookups);
    std::fprintf(f_json,
                 "{\n"
                 "  \"scenarios\": %d,\n"
                 "  \"threads\": %zu,\n"
                 "  \"looped_ms\": %.3f,\n"
                 "  \"batched_1t_ms\": %.3f,\n"
                 "  \"batched_ms\": %.3f,\n"
                 "  \"scenarios_per_sec\": %.1f,\n"
                 "  \"speedup_vs_looped\": %.2f,\n"
                 "  \"sharded_scenarios_per_sec\": %.1f,\n"
                 "  \"levelfanout_scenarios_per_sec\": %.1f,\n"
                 "  \"sharding_speedup_vs_levels\": %.3f,\n"
                 "  \"endpoint_points\": %d,\n"
                 "  \"endpoint_points_per_sec\": %.1f,\n"
                 "  \"endpoint_bytes_per_point\": %zu,\n"
                 "  \"full_bytes_per_point\": %zu,\n"
                 "  \"endpoint_memory_reduction\": %.1f,\n"
                 "  \"sparse_vertices\": %zu,\n"
                 "  \"sparse_scenarios\": %d,\n"
                 "  \"sparse_full_scenarios_per_sec\": %.1f,\n"
                 "  \"sparse_delta_scenarios_per_sec\": %.1f,\n"
                 "  \"sparse_delta_speedup\": %.2f,\n"
                 "  \"sparse_pruned_scenarios_per_sec\": %.1f,\n"
                 "  \"sparse_prune_evaluated\": %zu,\n"
                 "  \"sparse_prune_pruned\": %zu,\n"
                 "  \"sparse_pruned_fraction\": %.4f,\n"
                 "  \"sparse_dirty_vertex_fraction\": %.4f,\n"
                 "  \"sparse_dirty_partition_fraction\": %.4f,\n"
                 "  \"sparse_bound_mean_gap_ps\": %.2f,\n"
                 "  \"sparse_bitwise_identical\": %s,\n"
                 "  \"gen_candidates\": %llu,\n"
                 "  \"gen_points\": %llu,\n"
                 "  \"gen_points_per_sec\": %.1f,\n"
                 "  \"gen_window_killed_fraction\": %.4f,\n"
                 "  \"gen_correlation_killed_fraction\": %.4f,\n"
                 "  \"gen_prune_killed_fraction\": %.4f,\n"
                 "  \"gen_reused_fraction\": %.4f,\n"
                 "  \"gen_evaluated_fraction\": %.4f,\n"
                 "  \"gen_chunks\": %llu,\n"
                 "  \"gen_peak_resident_scenarios\": %llu,\n"
                 "  \"gen_bitwise_identical\": %s,\n"
                 "  \"gen_compound_bump_shape\": \"%s\",\n"
                 "  \"gen_compound_events\": %llu,\n"
                 "  \"gen_compound_candidates\": %llu,\n"
                 "  \"gen_compound_points\": %llu,\n"
                 "  \"gen_compound_points_per_sec\": %.1f,\n"
                 "  \"gen_compound_window_killed_fraction\": %.4f,\n"
                 "  \"gen_compound_correlation_killed_fraction\": %.4f,\n"
                 "  \"gen_compound_set_killed_fraction\": %.4f,\n"
                 "  \"gen_compound_prewaveform_killed_fraction\": %.4f,\n"
                 "  \"gen_compound_prune_killed_fraction\": %.4f,\n"
                 "  \"gen_compound_reused_fraction\": %.4f,\n"
                 "  \"gen_compound_evaluated_fraction\": %.4f,\n"
                 "  \"gen_compound_chunks\": %llu,\n"
                 "  \"gen_compound_peak_resident_scenarios\": %llu,\n"
                 "  \"gen_compound_bitwise_identical\": %s,\n"
                 "  \"lane_width\": %d,\n"
                 "  \"lane_dense_vertices\": %zu,\n"
                 "  \"lane_scalar_scenarios_per_sec\": %.1f,\n"
                 "  \"lane_scenarios_per_sec\": %.1f,\n"
                 "  \"lane_speedup_vs_scalar\": %.2f,\n"
                 "  \"lane_sgdp_speedup_vs_scalar\": %.2f,\n"
                 "  \"lane_bitwise_identical\": %s,\n"
                 "  \"cache_hits\": %llu,\n"
                 "  \"cache_misses\": %llu,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 kScenarios, hw, t_looped * 1e3, t_batched1 * 1e3,
                 t_batchedN * 1e3, kScenarios / t_batchedN,
                 t_looped / t_batchedN, kScenarios / t_sharded,
                 kScenarios / t_levels, t_levels / t_sharded,
                 kEndpointPoints, kEndpointPoints / t_endpoint,
                 endpoint_bytes, full_bytes,
                 static_cast<double>(full_bytes) /
                     static_cast<double>(endpoint_bytes),
                 sparse_vertices, kSparse, kSparse / t_sparse_full,
                 kSparse / t_sparse_delta, sparse_delta_speedup,
                 kSparse / t_sparse_pruned, sparse_stats.evaluated,
                 sparse_stats.pruned, sparse_pruned_fraction,
                 sparse_stats.dirty_vertex_fraction,
                 sparse_stats.dirty_partition_fraction,
                 sparse_stats.mean_bound_gap * 1e12,
                 sparse_identical ? "true" : "false",
                 static_cast<unsigned long long>(gen_space_size),
                 static_cast<unsigned long long>(gen_funnel.generated),
                 gen_points_per_sec, gen_fraction(gen_funnel.window_killed),
                 gen_fraction(gen_funnel.correlation_killed),
                 gen_fraction(gen_funnel.prune_killed),
                 gen_fraction(gen_funnel.reused),
                 gen_fraction(gen_funnel.evaluated),
                 static_cast<unsigned long long>(gen_funnel.chunks),
                 static_cast<unsigned long long>(
                     gen_funnel.peak_resident_scenarios),
                 gen_identical ? "true" : "false",
                 st::to_string(st::BumpShape::kCoupledLine),
                 static_cast<unsigned long long>(compound_events),
                 static_cast<unsigned long long>(compound_space_size),
                 static_cast<unsigned long long>(compound_funnel.generated),
                 compound_points_per_sec,
                 compound_fraction(compound_funnel.window_killed),
                 compound_fraction(compound_funnel.correlation_killed),
                 compound_fraction(compound_funnel.set_killed),
                 compound_prewave_killed,
                 compound_fraction(compound_funnel.prune_killed),
                 compound_fraction(compound_funnel.reused),
                 compound_fraction(compound_funnel.evaluated),
                 static_cast<unsigned long long>(compound_funnel.chunks),
                 static_cast<unsigned long long>(
                     compound_funnel.peak_resident_scenarios),
                 compound_identical ? "true" : "false", lane_width,
                 lane_vertices,
                 kLaneScenarios / t_lane_scalar, kLaneScenarios / t_lane_wide,
                 lane_speedup, lane_sgdp_speedup,
                 lane_identical ? "true" : "false",
                 static_cast<unsigned long long>(statsN.hits),
                 static_cast<unsigned long long>(statsN.misses), hit_rate,
                 identical ? "true" : "false");
    std::fclose(f_json);
    std::printf("wrote %s\n", json_path);
  }
  SweepFigures figures;
  figures.scenarios_per_sec = kScenarios / t_batchedN;
  figures.speedup_vs_looped = t_looped / t_batchedN;
  figures.sharded_scenarios_per_sec = kScenarios / t_sharded;
  figures.levels_scenarios_per_sec = kScenarios / t_levels;
  figures.lane_scenarios_per_sec = kLaneScenarios / t_lane_wide;
  figures.lane_speedup_vs_scalar = lane_speedup;
  figures.bitwise = identical;
  return figures;
}

// ---------------------------------------------------------------------------
// Kernel summary: measured ns/sample of batched vs scalar sampling,
// heap allocations per Γeff fit and per full propagation (legacy vs
// workspace paths), emitted as BENCH_kernels.json for CI tracking.
// ---------------------------------------------------------------------------

void report_kernel_summary(const SweepFigures& sweep) {
  const auto& kf = kernel_fixture();
  const size_t grid_n = KernelFixture::kGridPoints;
  std::vector<double> out(grid_n);
  double sink = 0.0;
  const int kReps = 200000;
  const double t_scalar = wall_seconds([&] {
    for (int r = 0; r < kReps; ++r) {
      const auto& grid = kf.grids[static_cast<size_t>(r) % kf.grids.size()];
      for (size_t i = 0; i < grid_n; ++i) out[i] = kf.wave.at(grid[i]);
      sink += out[grid_n / 2];
    }
  });
  const double t_batched = wall_seconds([&] {
    for (int r = 0; r < kReps; ++r) {
      const auto& grid = kf.grids[static_cast<size_t>(r) % kf.grids.size()];
      wv::sample_into(kf.wave, grid, out);
      sink += out[grid_n / 2];
    }
  });
  const double scalar_ns =
      t_scalar * 1e9 / (static_cast<double>(kReps) * grid_n);
  const double batched_ns =
      t_batched * 1e9 / (static_cast<double>(kReps) * grid_n);
  const double sample_speedup = scalar_ns / batched_ns;

  // Lane-layer A/B: each batched kernel pinned to the W=1 scalar oracle
  // vs the widest compiled width via LaneWidthGuard, preceded by an
  // untimed pass that cross-checks the two outputs bitwise.  On
  // scalar-only builds/CPUs the "w4" column re-runs W=1, so the JSON
  // keys stay comparable and the speedups report ~1.0.
  const bool lane_avx2 = wv::lane_width_available(4);
  const int lane_width = lane_avx2 ? 4 : 1;
  bool lane_bitwise = true;
  auto bits_equal = [](std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::bit_cast<uint64_t>(a[i]) != std::bit_cast<uint64_t>(b[i])) {
        return false;
      }
    }
    return true;
  };
  const int kLaneReps = 100000;

  // sample_into: the 64-point grids over the 512-sample noisy wave.
  std::vector<double> lane_a(grid_n), lane_b(grid_n);
  for (const auto& grid : kf.grids) {
    {
      wv::LaneWidthGuard g(1);
      wv::sample_into(kf.wave, grid, lane_a);
    }
    {
      wv::LaneWidthGuard g(lane_width);
      wv::sample_into(kf.wave, grid, lane_b);
    }
    lane_bitwise = lane_bitwise && bits_equal(lane_a, lane_b);
  }
  auto time_sample = [&](int w) {
    wv::LaneWidthGuard guard(w);
    return wall_seconds([&] {
      for (int r = 0; r < kLaneReps; ++r) {
        const auto& grid =
            kf.grids[static_cast<size_t>(r) % kf.grids.size()];
        wv::sample_into(kf.wave, grid, lane_a);
        sink += lane_a[grid_n / 2];
      }
    });
  };
  const double lane_sample_w1_ns =
      time_sample(1) * 1e9 / (static_cast<double>(kLaneReps) * grid_n);
  const double lane_sample_w4_ns =
      time_sample(lane_width) * 1e9 /
      (static_cast<double>(kLaneReps) * grid_n);

  // resample_into: uniform 64-point windows cycled over the grid spans.
  std::vector<double> rs_t(grid_n), rs_v(grid_n);
  std::vector<double> rs_t2(grid_n), rs_v2(grid_n);
  for (const auto& grid : kf.grids) {
    {
      wv::LaneWidthGuard g(1);
      wv::resample_into(kf.wave, grid.front(), grid.back(), rs_t, rs_v);
    }
    {
      wv::LaneWidthGuard g(lane_width);
      wv::resample_into(kf.wave, grid.front(), grid.back(), rs_t2, rs_v2);
    }
    lane_bitwise = lane_bitwise && bits_equal(rs_t, rs_t2) &&
                   bits_equal(rs_v, rs_v2);
  }
  auto time_resample = [&](int w) {
    wv::LaneWidthGuard guard(w);
    return wall_seconds([&] {
      for (int r = 0; r < kLaneReps; ++r) {
        const auto& grid =
            kf.grids[static_cast<size_t>(r) % kf.grids.size()];
        wv::resample_into(kf.wave, grid.front(), grid.back(), rs_t, rs_v);
        sink += rs_v[grid_n / 2];
      }
    });
  };
  const double lane_resample_w1_ns =
      time_resample(1) * 1e9 / (static_cast<double>(kLaneReps) * grid_n);
  const double lane_resample_w4_ns =
      time_resample(lane_width) * 1e9 /
      (static_cast<double>(kLaneReps) * grid_n);

  // combine_into: union-grid pointwise combination (the Γeff inner
  // loop's shape); ns per merged output sample.
  const auto lane_other = kf.wave.shifted(13e-12);
  wv::Workspace lane_ws;
  size_t combine_n = 0;
  {
    const auto scope = lane_ws.scope();
    std::vector<double> c_t, c_v;
    {
      wv::LaneWidthGuard g(1);
      const auto c = wv::combine_into(kf.wave, 0.7, lane_other, 0.3, lane_ws);
      combine_n = c.size();
      c_t.assign(c.time.begin(), c.time.end());
      c_v.assign(c.value.begin(), c.value.end());
    }
    {
      wv::LaneWidthGuard g(lane_width);
      const auto c = wv::combine_into(kf.wave, 0.7, lane_other, 0.3, lane_ws);
      lane_bitwise = lane_bitwise && bits_equal(c_t, c.time) &&
                     bits_equal(c_v, c.value);
    }
  }
  const int kCombineReps = 20000;
  auto time_combine = [&](int w) {
    wv::LaneWidthGuard guard(w);
    return wall_seconds([&] {
      for (int r = 0; r < kCombineReps; ++r) {
        const auto scope = lane_ws.scope();
        const auto c =
            wv::combine_into(kf.wave, 0.7, lane_other, 0.3, lane_ws);
        sink += c.value[c.size() / 2];
      }
    });
  };
  const double lane_combine_w1_ns =
      time_combine(1) * 1e9 /
      (static_cast<double>(kCombineReps) * combine_n);
  const double lane_combine_w4_ns =
      time_combine(lane_width) * 1e9 /
      (static_cast<double>(kCombineReps) * combine_n);

  // Crossing scans: first/last/count over a ladder of levels, several
  // of them planted exactly on sample values; ns per wave sample
  // scanned per level.
  std::vector<double> lane_levels;
  for (int i = 0; i <= 15; ++i) {
    lane_levels.push_back(-0.3 + 1.5 * i / 15.0);
  }
  for (size_t i = 0; i < 4; ++i) {
    lane_levels.push_back(kf.wave.values()[37 * (i + 1)]);
  }
  for (const double level : lane_levels) {
    std::optional<double> f1, l1, f2, l2;
    size_t n1 = 0, n2 = 0;
    {
      wv::LaneWidthGuard g(1);
      f1 = wv::first_crossing(kf.wave, level);
      l1 = wv::last_crossing(kf.wave, level);
      n1 = wv::crossing_count(kf.wave, level);
    }
    {
      wv::LaneWidthGuard g(lane_width);
      f2 = wv::first_crossing(kf.wave, level);
      l2 = wv::last_crossing(kf.wave, level);
      n2 = wv::crossing_count(kf.wave, level);
    }
    lane_bitwise =
        lane_bitwise && n1 == n2 && f1.has_value() == f2.has_value() &&
        l1.has_value() == l2.has_value() &&
        (!f1 || std::bit_cast<uint64_t>(*f1) == std::bit_cast<uint64_t>(*f2)) &&
        (!l1 || std::bit_cast<uint64_t>(*l1) == std::bit_cast<uint64_t>(*l2));
  }
  const int kCrossReps = 4000;
  auto time_crossings = [&](int w) {
    wv::LaneWidthGuard guard(w);
    return wall_seconds([&] {
      for (int r = 0; r < kCrossReps; ++r) {
        for (const double level : lane_levels) {
          const auto first = wv::first_crossing(kf.wave, level);
          sink += first.value_or(0.0) +
                  static_cast<double>(wv::crossing_count(kf.wave, level));
        }
      }
    });
  };
  const double cross_points = static_cast<double>(kCrossReps) *
                              static_cast<double>(lane_levels.size()) *
                              static_cast<double>(kf.wave.size());
  const double lane_crossings_w1_ns = time_crossings(1) * 1e9 / cross_points;
  const double lane_crossings_w4_ns =
      time_crossings(lane_width) * 1e9 / cross_points;
  if (!lane_bitwise) std::printf("LANE KERNEL MISMATCH — BUG\n");

  // Heap allocations per Γeff fit: the legacy allocating path vs a
  // warmed per-worker workspace (the paper's P = 35, SGDP).
  const auto method = co::make_method("SGDP");
  auto allocs_per_fit = [&](wv::Workspace* ws, int n) {
    auto mi = fixture().input(35);
    mi.workspace = ws;
    auto warm = method->fit(mi);  // warm slabs + one-time lazies
    benchmark::DoNotOptimize(warm);
    const uint64_t before = heap_allocations();
    for (int i = 0; i < n; ++i) {
      auto fit = method->fit(mi);
      benchmark::DoNotOptimize(fit);
    }
    return static_cast<double>(heap_allocations() - before) / n;
  };
  wv::Workspace fit_ws;
  const double fit_allocs_legacy = allocs_per_fit(nullptr, 50);
  const double fit_allocs_ws = allocs_per_fit(&fit_ws, 50);

  // Heap allocations per full propagation (prepared engine, one noisy
  // net, serial reentrant evaluate — the sweep inner loop).  With a
  // warmed workspace this must be exactly zero.
  const auto& f = sta_fixture();
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  const auto scenarios = f.scenarios(1);
  for (const auto& e : scenarios[0].entries) {
    sta.annotate_noisy_net(e.net, e.annotation.waveform,
                           e.annotation.polarity);
  }
  sta.prepare();
  const auto table = sta.compile_edge_annotations();
  st::StaEngine::EvalContext ctx;
  ctx.edge_noise = table.data();
  ctx.method = &sta.noise_method();
  st::TimingState state;
  auto allocs_per_propagate = [&](wv::Workspace* ws, int n) {
    ctx.workspace = ws;
    sta.evaluate(state, ctx);  // warm slabs + state capacity
    const uint64_t before = heap_allocations();
    for (int i = 0; i < n; ++i) sta.evaluate(state, ctx);
    return static_cast<double>(heap_allocations() - before) / n;
  };
  wv::Workspace prop_ws;
  const double prop_allocs_legacy = allocs_per_propagate(nullptr, 20);
  const double prop_allocs_ws = allocs_per_propagate(&prop_ws, 20);

  std::printf("\n-- waveform-kernel summary (%zu-point grid over %zu-sample "
              "waveform) --\n",
              grid_n, kf.wave.size());
  std::printf("sample scalar at():    %7.2f ns/point\n", scalar_ns);
  std::printf("sample_into (batched): %7.2f ns/point  (%.2fx)%s\n",
              batched_ns, sample_speedup,
              sample_speedup >= 3.0 ? "" : "  [below 3x target]");
  std::printf("lane kernels, W=1 vs W=%d (ns/point, bitwise %s):\n",
              lane_width, lane_bitwise ? "identical" : "MISMATCH — BUG");
  std::printf("  sample_into:    %6.2f -> %6.2f  (%.2fx)\n",
              lane_sample_w1_ns, lane_sample_w4_ns,
              lane_sample_w1_ns / lane_sample_w4_ns);
  std::printf("  resample_into:  %6.2f -> %6.2f  (%.2fx)\n",
              lane_resample_w1_ns, lane_resample_w4_ns,
              lane_resample_w1_ns / lane_resample_w4_ns);
  std::printf("  combine_into:   %6.2f -> %6.2f  (%.2fx)\n",
              lane_combine_w1_ns, lane_combine_w4_ns,
              lane_combine_w1_ns / lane_combine_w4_ns);
  std::printf("  crossing scans: %6.2f -> %6.2f  (%.2fx)\n",
              lane_crossings_w1_ns, lane_crossings_w4_ns,
              lane_crossings_w1_ns / lane_crossings_w4_ns);
  std::printf("allocations per SGDP fit:   legacy %6.1f  workspace %6.1f\n",
              fit_allocs_legacy, fit_allocs_ws);
  std::printf("allocations per propagate:  legacy %6.1f  workspace %6.1f%s\n",
              prop_allocs_legacy, prop_allocs_ws,
              prop_allocs_ws == 0.0 ? "  (zero hot-path allocations)"
                                    : "  [expected 0 — BUG]");
  if (sink == 12345.6789) std::printf("%f\n", sink);  // defeat DCE

  const char* json_path = "BENCH_kernels.json";
  if (FILE* f_json = std::fopen(json_path, "w")) {
    std::fprintf(f_json,
                 "{\n"
                 "  \"grid_points\": %zu,\n"
                 "  \"wave_samples\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"sample_scalar_ns_per_point\": %.3f,\n"
                 "  \"sample_batched_ns_per_point\": %.3f,\n"
                 "  \"sample_into_speedup\": %.2f,\n"
                 "  \"lane_width\": %d,\n"
                 "  \"lane_sample_w1_ns_per_point\": %.3f,\n"
                 "  \"lane_sample_w4_ns_per_point\": %.3f,\n"
                 "  \"lane_sample_speedup\": %.2f,\n"
                 "  \"lane_resample_w1_ns_per_point\": %.3f,\n"
                 "  \"lane_resample_w4_ns_per_point\": %.3f,\n"
                 "  \"lane_resample_speedup\": %.2f,\n"
                 "  \"lane_combine_w1_ns_per_point\": %.3f,\n"
                 "  \"lane_combine_w4_ns_per_point\": %.3f,\n"
                 "  \"lane_combine_speedup\": %.2f,\n"
                 "  \"lane_crossings_w1_ns_per_point\": %.3f,\n"
                 "  \"lane_crossings_w4_ns_per_point\": %.3f,\n"
                 "  \"lane_crossings_speedup\": %.2f,\n"
                 "  \"lane_kernels_bitwise_identical\": %s,\n"
                 "  \"fit_allocs_legacy\": %.1f,\n"
                 "  \"fit_allocs_workspace\": %.1f,\n"
                 "  \"propagate_allocs_legacy\": %.1f,\n"
                 "  \"propagate_allocs_workspace\": %.1f,\n"
                 "  \"sweep_scenarios_per_sec\": %.1f,\n"
                 "  \"sweep_speedup_vs_looped\": %.2f,\n"
                 "  \"sweep_sharded_scenarios_per_sec\": %.1f,\n"
                 "  \"sweep_levelfanout_scenarios_per_sec\": %.1f,\n"
                 "  \"sweep_lane_scenarios_per_sec\": %.1f,\n"
                 "  \"sweep_lane_speedup_vs_scalar\": %.2f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 grid_n, kf.wave.size(),
                 wu::ThreadPool::hardware_threads(), scalar_ns, batched_ns,
                 sample_speedup, lane_width, lane_sample_w1_ns,
                 lane_sample_w4_ns, lane_sample_w1_ns / lane_sample_w4_ns,
                 lane_resample_w1_ns, lane_resample_w4_ns,
                 lane_resample_w1_ns / lane_resample_w4_ns,
                 lane_combine_w1_ns, lane_combine_w4_ns,
                 lane_combine_w1_ns / lane_combine_w4_ns,
                 lane_crossings_w1_ns, lane_crossings_w4_ns,
                 lane_crossings_w1_ns / lane_crossings_w4_ns,
                 lane_bitwise ? "true" : "false", fit_allocs_legacy,
                 fit_allocs_ws, prop_allocs_legacy, prop_allocs_ws,
                 sweep.scenarios_per_sec, sweep.speedup_vs_looped,
                 sweep.sharded_scenarios_per_sec,
                 sweep.levels_scenarios_per_sec,
                 sweep.lane_scenarios_per_sec,
                 sweep.lane_speedup_vs_scalar,
                 (sweep.bitwise && lane_bitwise) ? "true" : "false");
    std::fclose(f_json);
    std::printf("wrote %s\n", json_path);
  }
}

// ---------------------------------------------------------------------------
// Incremental STA service: the ECO loop on the ~10k-vertex random DAG —
// 256 single-net parasitic edits (the fork path: no structural rebuild)
// with interleaved worst-slack queries, against the from-scratch
// re-prepare each edit would otherwise cost.  The final snapshot is
// cross-checked bitwise against a clean engine that replays every edit.
// ---------------------------------------------------------------------------

void report_service_summary() {
  const auto& sf = sparse_fixture();
  const size_t hw = wu::ThreadPool::hardware_threads();
  const int kEdits = 256;
  const int kQueriesPerEdit = 8;

  st::Corner slow;
  slow.name = "slow";
  slow.cell_delay_scale = 1.12;
  slow.cell_slew_scale = 1.08;
  slow.wire_delay_scale = 1.25;
  const std::vector<st::Corner> corners = {st::Corner{}, slow};

  // The SparseFixture constraints expressed as the service's first
  // EditBatch (services start from an unconstrained netlist).
  st::EditBatch constraints;
  {
    int i = 0;
    int o = 0;
    for (const auto& port : sf.netlist.ports()) {
      if (port.direction == nl::PortDirection::kInput) {
        constraints.set_input_arrival(port.name, 0.008e-9 * i,
                                      (75 + 9 * (i % 13)) * 1e-12);
        ++i;
      } else {
        constraints.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
        constraints.set_required(port.name, 4e-9);
        ++o;
      }
    }
  }

  // ECO edit k: bump the parasitics of one late-layer net (small dirty
  // cone — the realistic single-net ECO shape).
  const auto& instances = sf.netlist.instances();
  const size_t window = std::min<size_t>(instances.size(), 2000);
  auto eco_edit = [&](int k) {
    const auto& inst =
        instances[instances.size() - 1 -
                  static_cast<size_t>((7 * k) % static_cast<int>(window))];
    st::EditBatch b;
    b.set_net_parasitics(inst.pins.at("Y"), (1.0 + k % 5) * 1e-15,
                         (k % 3) * 2e-12);
    return b;
  };

  st::ServiceConfig cfg;
  cfg.corners = corners;
  cfg.threads = static_cast<int>(hw);
  st::StaService service(sf.netlist, sf.lib, cfg);
  service.apply(constraints);

  // The timed ECO loop: each edit publishes a snapshot, then a burst of
  // worst-slack queries lands on the new head (the read side is a
  // snapshot pin + precomputed lookup — it must be orders of magnitude
  // cheaper than an edit).
  double t_edits = 0.0;
  double t_queries = 0.0;
  double slack_acc = 0.0;
  for (int k = 0; k < kEdits; ++k) {
    t_edits += wall_seconds([&] { service.apply(eco_edit(k)); });
    t_queries += wall_seconds([&] {
      for (int q = 0; q < kQueriesPerEdit; ++q) {
        slack_acc += service.worst_slack(static_cast<size_t>(q) %
                                         corners.size());
      }
    });
  }
  benchmark::DoNotOptimize(slack_acc);
  const auto stats = service.stats();
  const double edits_per_sec = kEdits / t_edits;
  const double queries_per_sec = (kEdits * kQueriesPerEdit) / t_queries;

  // From-scratch baseline: what one edit costs without the service —
  // fresh engine, all constraints + edits so far, prepare(), full
  // evaluation of both corners (the same work evaluate_snapshot does,
  // minus the delta).
  const int kReprep = 8;
  double t_reprep = 0.0;
  for (int j = 0; j < kReprep; ++j) {
    t_reprep += wall_seconds([&] {
      st::StaEngine eng(sf.netlist, sf.lib);
      sf.constrain(eng);
      for (int k = 0; k <= j; ++k) {
        const auto e = std::get<st::SetNetParasitics>(eco_edit(k).edits()[0]);
        eng.set_net_parasitics(e.net, e.cap, e.delay);
      }
      eng.prepare();
      const auto table = eng.compile_edge_annotations();
      st::TimingState state;
      double acc = 0.0;
      for (const auto& corner : corners) {
        st::StaEngine::EvalContext ctx;
        ctx.edge_noise = table.data();
        ctx.corner = &corner;
        ctx.corner_key = corner.key();
        ctx.method = &eng.noise_method();
        eng.evaluate(state, ctx);
        acc += eng.worst_slack_in(state);
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  const double reprep_per_edit = t_reprep / kReprep;
  const double edit_speedup = reprep_per_edit / (t_edits / kEdits);

  // Bitwise check: the final published snapshot vs a clean engine that
  // replays the whole edit history (last-write-wins) from scratch.
  bool bitwise = true;
  {
    st::StaEngine eng(sf.netlist, sf.lib);
    sf.constrain(eng);
    for (int k = 0; k < kEdits; ++k) {
      const auto e = std::get<st::SetNetParasitics>(eco_edit(k).edits()[0]);
      eng.set_net_parasitics(e.net, e.cap, e.delay);
    }
    eng.prepare();
    const auto table = eng.compile_edge_annotations();
    const auto snap = service.snapshot();
    for (size_t c = 0; c < corners.size(); ++c) {
      st::StaEngine::EvalContext ctx;
      ctx.edge_noise = table.data();
      ctx.corner = &corners[c];
      ctx.corner_key = corners[c].key();
      ctx.method = &eng.noise_method();
      st::TimingState state;
      eng.evaluate(state, ctx);
      const auto& got = snap->baseline(c);
      if (state.size() != got.size()) {
        bitwise = false;
        break;
      }
      for (size_t v = 0; v < state.size(); ++v) {
        for (int rf = 0; rf < 2; ++rf) {
          const auto& a = state[v].timing[rf];
          const auto& b = got[v].timing[rf];
          bitwise = bitwise && a.valid == b.valid &&
                    std::bit_cast<uint64_t>(a.arrival) ==
                        std::bit_cast<uint64_t>(b.arrival) &&
                    std::bit_cast<uint64_t>(a.slew) ==
                        std::bit_cast<uint64_t>(b.slew) &&
                    std::bit_cast<uint64_t>(a.required) ==
                        std::bit_cast<uint64_t>(b.required);
        }
      }
    }
    if (!bitwise) std::printf("SERVICE SNAPSHOT MISMATCH — BUG\n");
  }

  std::printf("\n-- incremental service summary (%zu-vertex DAG, %d edits, "
              "%d corners, %zu threads) --\n",
              service.snapshot()->engine().vertex_count(), kEdits,
              static_cast<int>(corners.size()), hw);
  std::printf("edit -> publish:        %8.2f ms/edit  (%.1f edits/sec)\n",
              (t_edits / kEdits) * 1e3, edits_per_sec);
  std::printf("worst-slack query:      %8.3f us/query (%.0f queries/sec)\n",
              (t_queries / (kEdits * kQueriesPerEdit)) * 1e6,
              queries_per_sec);
  std::printf("from-scratch re-prepare: %7.2f ms/edit  (%.2fx speedup via "
              "service)%s\n",
              reprep_per_edit * 1e3, edit_speedup,
              edit_speedup >= 5.0 ? "" : "  [below 5x target]");
  std::printf("%s", st::format_service_stats(stats).c_str());
  std::printf("final snapshot bitwise identical to full re-prepare: %s\n",
              bitwise ? "yes" : "NO — BUG");

  const char* json_path = "BENCH_service.json";
  if (FILE* f_json = std::fopen(json_path, "w")) {
    std::fprintf(f_json,
                 "{\n"
                 "  \"vertices\": %zu,\n"
                 "  \"edits\": %d,\n"
                 "  \"corners\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"edits_per_sec\": %.1f,\n"
                 "  \"queries_per_sec\": %.0f,\n"
                 "  \"edit_ms\": %.3f,\n"
                 "  \"query_us\": %.3f,\n"
                 "  \"reprepare_ms\": %.3f,\n"
                 "  \"edit_vs_reprepare_speedup\": %.2f,\n"
                 "  \"mean_dirty_cone_fraction\": %.4f,\n"
                 "  \"mean_publish_latency_ms\": %.3f,\n"
                 "  \"snapshots_published\": %llu,\n"
                 "  \"structural_rebuilds\": %llu,\n"
                 "  \"queries_served\": %llu,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 service.snapshot()->engine().vertex_count(), kEdits,
                 corners.size(), hw, edits_per_sec, queries_per_sec,
                 (t_edits / kEdits) * 1e3,
                 (t_queries / (kEdits * kQueriesPerEdit)) * 1e6,
                 reprep_per_edit * 1e3, edit_speedup,
                 stats.mean_dirty_cone_fraction,
                 stats.mean_publish_latency * 1e3,
                 static_cast<unsigned long long>(stats.snapshots_published),
                 static_cast<unsigned long long>(stats.structural_rebuilds),
                 static_cast<unsigned long long>(stats.queries_served),
                 bitwise ? "true" : "false");
    std::fclose(f_json);
    std::printf("wrote %s\n", json_path);
  }
}

// ---------------------------------------------------------------------------
// Hierarchical macro-model summary: characterize one block, stitch a
// >= 1M flat-equivalent-vertex design and sweep it end-to-end on this
// machine, measure the hier-vs-flat prepare+sweep speedup at a copy
// count where the flat oracle is still feasible, and verify the
// expanded copy stays bitwise identical to flat.  Writes BENCH_hier.json
// (diffed warn-only against bench/BENCH_hier.baseline.json in CI).
// ---------------------------------------------------------------------------

/// Peak resident set (VmHWM) of this process, in bytes; 0 when
/// /proc/self/status is unavailable.
size_t peak_rss_bytes() {
  size_t kb = 0;
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu", &kb) == 1) break;
    }
    std::fclose(f);
  }
  return kb * 1024;
}

/// SparseFixture::constrain's pattern applied to a stitched top: both
/// stitchers emit ports in identical order, so the counter-derived
/// constraints land on the same port names in the flat and hierarchical
/// designs.
void constrain_stitched(st::StaEngine& sta, const nl::Netlist& top) {
  int i = 0;
  int o = 0;
  for (const auto& port : top.ports()) {
    if (port.direction == nl::PortDirection::kInput) {
      sta.set_input(port.name, 0.008e-9 * i, (75 + 9 * (i % 13)) * 1e-12);
      ++i;
    } else {
      sta.set_output_load(port.name, (4 + (o % 3)) * 1e-15);
      sta.set_required(port.name, 4e-9);
      ++o;
    }
  }
}

/// Deterministic grid block: `width` parallel chains of `layers` gates
/// with nearest-neighbour reconvergence, every interior net consumed —
/// the interface stays `width` inputs + `width` outputs however deep
/// the block grows.  (make_random_dag leaves ~40% of its nets
/// unconsumed and each becomes a port, which ruins the
/// interior-to-interface ratio abstraction trades on.)
nl::Netlist make_grid_block(int width, int layers) {
  nl::Netlist block;
  block.name = "grid";
  std::vector<std::string> prev;
  for (int i = 0; i < width; ++i) {
    const std::string name = "a" + std::to_string(i);
    block.add_port(name, nl::PortDirection::kInput);
    prev.push_back(name);
  }
  int gate_id = 0;
  for (int l = 0; l < layers; ++l) {
    std::vector<std::string> next;
    for (int g = 0; g < width; ++g) {
      const std::string out =
          "n" + std::to_string(l) + "_" + std::to_string(g);
      nl::Instance inst;
      inst.name = "g" + std::to_string(gate_id++);
      switch ((l + g) % 3) {
        case 0:
          inst.cell = "INVX1";
          inst.pins = {{"A", prev[static_cast<size_t>(g)]}, {"Y", out}};
          break;
        case 1:
          inst.cell = "INVX4";
          inst.pins = {{"A", prev[static_cast<size_t>(g)]}, {"Y", out}};
          break;
        default:
          inst.cell = "NAND2X1";
          inst.pins = {{"A", prev[static_cast<size_t>(g)]},
                       {"B", prev[static_cast<size_t>((g + 1) % width)]},
                       {"Y", out}};
          break;
      }
      block.add_instance(std::move(inst));
      next.push_back(out);
    }
    prev = std::move(next);
  }
  for (const auto& net : prev)
    block.add_port(net, nl::PortDirection::kOutput);
  block.validate();
  return block;
}

/// `count` single-net aggressor scenarios on nets inside the expanded
/// copy ("u0/...") — the same nets exist in the flat oracle, so one
/// scenario set drives both sides of the comparison.
std::vector<st::NoiseScenario> stitched_scenarios(const st::StaEngine& clean,
                                                  const nl::Netlist& top,
                                                  double vdd, int count) {
  struct Victim {
    std::string net;
    double arrival;
    double slew;
  };
  std::vector<Victim> victims;
  const auto& instances = top.instances();
  for (size_t i = instances.size(); i > 0; --i) {
    const auto& inst = instances[i - 1];
    if (inst.name.rfind("u0/", 0) != 0) continue;
    const auto pin = inst.pins.find("A");
    if (pin == inst.pins.end()) continue;
    const auto& t = clean.timing(inst.name + "/A", st::RiseFall::kFall);
    if (!t.valid || t.slew <= 0.0) continue;
    victims.push_back({pin->second, t.arrival, t.slew});
    if (victims.size() >= static_cast<size_t>(count)) break;
  }
  std::vector<st::NoiseScenario> out;
  for (int i = 0; i < count && !victims.empty(); ++i) {
    const auto& vic = victims[static_cast<size_t>(i) % victims.size()];
    out.push_back(st::make_aggressor_scenario(
        vic.net, vic.arrival, vic.slew, vdd, wv::Polarity::kFalling,
        (i % 8) * 120e-12, 0.25 + 0.05 * (i % 4)));
  }
  return out;
}

void report_hier_summary() {
  const auto& lib = sparse_fixture().lib;
  const size_t hw = wu::ThreadPool::hardware_threads();

  // Deep, narrow block: 960 gates behind a 16-port interface, so
  // abstracting a copy erases ~2.2k interior vertices per 16 kept.
  const nl::Netlist block = make_grid_block(8, 120);

  st::BlockModel model;
  const double t_extract = wall_seconds([&] {
    st::BlockModelOptions mopt;
    mopt.threads = static_cast<int>(hw);
    model = st::extract_block_model(block, lib, mopt);
  });

  // -- flat-feasible comparison point: the flat oracle still fits. ----
  nl::StitchOptions small;
  small.copies = 32;
  small.expanded = 0;

  auto hier_ref = st::HierDesign::build(block, lib, model, small);
  constrain_stitched(hier_ref.engine(), hier_ref.netlist());
  hier_ref.engine().set_threads(static_cast<int>(hw));
  hier_ref.engine().run();

  const nl::Netlist flat_top = nl::stitch_blocks_flat(block, small);
  size_t compare_flat_vertices = 0;
  bool bitwise = true;
  size_t compared = 0;
  {
    st::StaEngine flat_ref(flat_top, lib);
    constrain_stitched(flat_ref, flat_top);
    flat_ref.set_threads(static_cast<int>(hw));
    flat_ref.run();
    compare_flat_vertices = flat_ref.vertex_count();
    const auto& heng = hier_ref.engine();
    for (size_t v = 0; v < heng.vertex_count(); ++v) {
      const std::string& name = heng.vertex_name(v);
      if (name.rfind("u0/", 0) != 0) continue;
      for (const auto rf : {st::RiseFall::kRise, st::RiseFall::kFall}) {
        const auto& a = heng.timing(name, rf);
        const auto& b = flat_ref.timing(name, rf);
        bitwise = bitwise && a.valid == b.valid &&
                  std::bit_cast<uint64_t>(a.arrival) ==
                      std::bit_cast<uint64_t>(b.arrival) &&
                  std::bit_cast<uint64_t>(a.slew) ==
                      std::bit_cast<uint64_t>(b.slew);
      }
      ++compared;
    }
  }

  const auto scenarios = stitched_scenarios(
      hier_ref.engine(), hier_ref.netlist(), lib.nom_voltage, 12);

  st::SweepSpec spec;
  spec.scenarios = scenarios;
  spec.threads = static_cast<int>(hw);
  spec.endpoint_only = true;

  const auto sweep_worst = [&](st::SweepResult r) {
    double w = std::numeric_limits<double>::infinity();
    for (size_t p = 0; p < scenarios.size(); ++p) {
      const double s = r.worst_slack(p);
      if (s < w) w = s;
    }
    return w;
  };

  // Both sides timed cold, construction through sweep: what a user
  // pays per analyzed design once the block model exists (extraction
  // amortizes over every copy and every re-analysis).
  double flat_worst = 0.0;
  const double t_flat = wall_seconds([&] {
    st::StaEngine eng(flat_top, lib);
    constrain_stitched(eng, flat_top);
    flat_worst = sweep_worst(eng.sweep(spec));
  });
  double hier_worst = 0.0;
  const double t_hier = wall_seconds([&] {
    auto h = st::HierDesign::build(block, lib, model, small);
    constrain_stitched(h.engine(), h.netlist());
    hier_worst = sweep_worst(h.sweep(spec));
  });
  const double speedup = t_hier > 0.0 ? t_flat / t_hier : 0.0;

  // -- 1M headline: never materialize the flat design. ----------------
  nl::StitchOptions big = small;
  {
    nl::StitchOptions one = small;
    one.copies = 1;
    const size_t per_copy = nl::stitched_flat_vertex_count(block, one);
    big.copies =
        per_copy != 0 ? (1'000'000 + per_copy - 1) / per_copy : 400;
    while (nl::stitched_flat_vertex_count(block, big) < 1'000'000)
      ++big.copies;
  }
  size_t big_flat_vertices = 0;
  size_t big_hier_vertices = 0;
  double big_worst = 0.0;
  const double t_big = wall_seconds([&] {
    auto h = st::HierDesign::build(block, lib, model, big);
    constrain_stitched(h.engine(), h.netlist());
    big_flat_vertices = h.stitched_vertex_count();
    big_worst = sweep_worst(h.sweep(spec));
    big_hier_vertices = h.hier_vertex_count();
  });
  const size_t rss = peak_rss_bytes();

  std::printf("\n-- hierarchical macro-model summary (%zu threads) --\n", hw);
  std::printf("block: %zu instances, %zu ports -> %zu macro arcs, "
              "extract %.1f ms\n",
              block.instances().size(), block.ports().size(),
              model.arcs.size(), t_extract * 1e3);
  std::printf("flat-feasible point (%zu copies, %zu flat vs %zu hier "
              "vertices, %zu scenarios):\n",
              small.copies, compare_flat_vertices,
              hier_ref.hier_vertex_count(), scenarios.size());
  std::printf("  flat  construct+sweep: %8.1f ms (worst slack %.4f ns)\n",
              t_flat * 1e3, flat_worst * 1e9);
  std::printf("  hier  construct+sweep: %8.1f ms (worst slack %.4f ns, "
              "%.1fx speedup)%s\n",
              t_hier * 1e3, hier_worst * 1e9, speedup,
              speedup >= 10.0 ? "" : "  [below 10x target]");
  std::printf("expanded copy bitwise identical to flat: %s (%zu vertices)\n",
              bitwise ? "yes" : "NO — BUG", compared);
  std::printf("1M headline: %zu copies = %zu flat-equivalent vertices held "
              "as %zu hierarchical vertices\n",
              big.copies, big_flat_vertices, big_hier_vertices);
  std::printf("  construct+sweep end-to-end: %8.1f ms (worst slack "
              "%.4f ns)\n",
              t_big * 1e3, big_worst * 1e9);
  std::printf("  peak RSS: %.1f MB\n", static_cast<double>(rss) / 1e6);

  const char* json_path = "BENCH_hier.json";
  if (FILE* f_json = std::fopen(json_path, "w")) {
    std::fprintf(f_json,
                 "{\n"
                 "  \"hardware_threads\": %zu,\n"
                 "  \"block_instances\": %zu,\n"
                 "  \"block_ports\": %zu,\n"
                 "  \"macro_arcs\": %zu,\n"
                 "  \"extract_ms_per_block\": %.3f,\n"
                 "  \"compare_copies\": %zu,\n"
                 "  \"compare_flat_vertices\": %zu,\n"
                 "  \"compare_hier_vertices\": %zu,\n"
                 "  \"flat_sweep_ms\": %.3f,\n"
                 "  \"hier_sweep_ms\": %.3f,\n"
                 "  \"hier_vs_flat_speedup\": %.2f,\n"
                 "  \"stitched_copies\": %zu,\n"
                 "  \"stitched_vertices\": %zu,\n"
                 "  \"hier_vertices\": %zu,\n"
                 "  \"stitched_sweep_ms\": %.3f,\n"
                 "  \"peak_rss_mb\": %.1f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 hw, block.instances().size(), block.ports().size(),
                 model.arcs.size(), t_extract * 1e3, small.copies,
                 compare_flat_vertices, hier_ref.hier_vertex_count(),
                 t_flat * 1e3, t_hier * 1e3, speedup, big.copies,
                 big_flat_vertices, big_hier_vertices, t_big * 1e3,
                 static_cast<double>(rss) / 1e6,
                 bitwise ? "true" : "false");
    std::fclose(f_json);
    std::printf("wrote %s\n", json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto sweep_figures = report_sweep_speedups();
  report_kernel_summary(sweep_figures);
  report_service_summary();
  report_hier_summary();
  return 0;
}
