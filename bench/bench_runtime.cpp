// §4.2 run-time comparison: per-gate cost of computing Γeff for each
// technique on a representative noisy waveform (P = 35), plus the
// P-dependence of SGDP.  The paper reports ~40 us for P1/P2/LSF3/E4 and
// ~65 us for WLS5/SGDP on a Sun Blade 1000; on modern hardware the
// absolute numbers shrink by orders of magnitude but the *ratios*
// (sensitivity-based methods cost more, roughly linearly in P) are the
// reproducible shape.
//
// Production-scale additions: full-netlist propagation cost at 1..N
// threads (level-parallel engine), and a 64-noise-scenario sweep run
// the naive way (sequential loop of engine runs) vs. batched
// (ScenarioBatch: one levelized pass, scenario×vertex fan-out, shared
// Γeff memo).  After the google-benchmark tables, a summary section
// prints the measured speedups and verifies looped and batched sweeps
// produce identical timing results.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "charlib/characterize.hpp"
#include "core/method.hpp"
#include "core/sgdp.hpp"
#include "netlist/generators.hpp"
#include "noise/scenario.hpp"
#include "sta/batch.hpp"
#include "sta/engine.hpp"
#include "util/thread_pool.hpp"

namespace cl = waveletic::charlib;
namespace co = waveletic::core;
namespace nl = waveletic::netlist;
namespace no = waveletic::noise;
namespace st = waveletic::sta;
namespace wu = waveletic::util;
namespace wv = waveletic::wave;

namespace {

/// One representative noise case, simulated once and shared by all
/// benchmarks (the fits are what we time, not the golden simulator).
struct Fixture {
  waveletic::charlib::Pdk pdk;
  std::unique_ptr<no::NoiseRunner> runner;
  no::CaseWaveforms cw;

  Fixture() {
    auto spec = no::TestbenchSpec::config1();
    spec.victim_t50 = 1.5e-9;
    no::RunnerOptions opt;
    opt.dt = 2e-12;
    runner = std::make_unique<no::NoiseRunner>(pdk, spec, opt);
    cw = runner->run_case(40e-12);
  }

  [[nodiscard]] co::MethodInput input(int samples) const {
    co::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner->noiseless_in();
    mi.noiseless_out = &runner->noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;
    mi.samples = samples;
    return mi;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void run_method(benchmark::State& state, const char* name) {
  const auto method = co::make_method(name);
  const auto mi = fixture().input(35);
  for (auto _ : state) {
    auto fit = method->fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}

}  // namespace

BENCHMARK_CAPTURE(run_method, P1, "P1")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, P2, "P2")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, LSF3, "LSF3")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, E4, "E4")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, WLS5, "WLS5")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(run_method, SGDP, "SGDP")->Unit(benchmark::kMicrosecond);

/// SGDP cost scaling with the number of sampling points P (§4.2: "the
/// SGDP run-time can be reduced by using smaller P values").
static void sgdp_p_scaling(benchmark::State& state) {
  const co::SgdpMethod method;
  const auto mi = fixture().input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fit = method.fit(mi);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(sgdp_p_scaling)
    ->Arg(5)
    ->Arg(15)
    ->Arg(35)
    ->Arg(75)
    ->Arg(155)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Full-netlist propagation: level-parallel engine + batched scenarios
// ---------------------------------------------------------------------------

namespace {

struct StaFixture {
  static constexpr int kWidth = 48;
  waveletic::liberty::Library lib;
  nl::Netlist netlist;

  StaFixture() : lib(cl::build_vcl013_library_fast()),
                 netlist(nl::make_chain_tree(kWidth)) {}

  void constrain(st::StaEngine& sta) const {
    for (int i = 0; i < kWidth; ++i) {
      sta.set_input("a" + std::to_string(i), 0.005e-9 * i,
                    (80 + 5 * (i % 11)) * 1e-12);
    }
    sta.set_output_load("y", 6e-15);
    sta.set_required("y", 3e-9);
  }

  /// Scenario grid: aggressor alignment × strength on several victim
  /// nets, built from the clean victim ramps (same parameterization as
  /// the golden noise::NoiseRunner sweep).
  [[nodiscard]] std::vector<st::NoiseScenario> scenarios(int count) const {
    st::StaEngine clean(netlist, lib);
    constrain(clean);
    clean.run();
    std::vector<st::NoiseScenario> out;
    int i = 0;
    while (static_cast<int>(out.size()) < count) {
      const int chain = i % 8;
      const int align_step = (i / 8) % 4;
      const int strength_step = (i / 32) % 4;
      const auto& t = clean.timing("inv" + std::to_string(chain) + "_2/A",
                                   st::RiseFall::kFall);
      out.push_back(st::make_aggressor_scenario(
          "c" + std::to_string(chain) + "_1", t.arrival, t.slew,
          lib.nom_voltage, wv::Polarity::kFalling,
          (align_step - 2) * 15e-12, 0.2 + 0.15 * strength_step));
      ++i;
    }
    return out;
  }
};

const StaFixture& sta_fixture() {
  static const StaFixture f;
  return f;
}

/// Full engine run (forward + backward) at `threads` worker threads.
void sta_run(benchmark::State& state) {
  const auto& f = sta_fixture();
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  sta.set_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sta.run();
    benchmark::DoNotOptimize(sta.worst_slack());
  }
}

/// Naive scenario sweep: sequential loop of single-threaded runs.
/// Annotations are cleared between scenarios so every looped run
/// evaluates exactly one scenario — the same workload the batch does.
void sta_sweep_looped(benchmark::State& state) {
  const auto& f = sta_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& sc : scenarios) {
      sta.clear_noisy_nets();
      for (const auto& e : sc.entries) {
        sta.annotate_noisy_net(e.net, e.annotation.waveform,
                               e.annotation.polarity);
      }
      sta.run();
      acc += sta.worst_slack();
    }
    benchmark::DoNotOptimize(acc);
  }
}

/// Batched sweep: ScenarioBatch, one levelized pass, shared Γeff memo.
/// Construction and scenario loading happen outside the timed loop;
/// run() itself clears the memo, so every iteration is a cold sweep.
void sta_sweep_batched(benchmark::State& state) {
  const auto& f = sta_fixture();
  const auto scenarios = f.scenarios(static_cast<int>(state.range(0)));
  st::StaEngine sta(f.netlist, f.lib);
  f.constrain(sta);
  st::BatchOptions opt;
  opt.threads = static_cast<int>(state.range(1));
  st::ScenarioBatch batch(sta, opt);
  for (const auto& sc : scenarios) batch.add(sc);
  for (auto _ : state) {
    batch.run();
    double acc = 0.0;
    for (size_t i = 0; i < batch.size(); ++i) acc += batch.worst_slack(i);
    benchmark::DoNotOptimize(acc);
  }
}

}  // namespace

BENCHMARK(sta_run)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_looped)
    ->Arg(64)
    ->ArgName("scenarios")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(sta_sweep_batched)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->ArgNames({"scenarios", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Summary: measured speedups + result-identity check
// ---------------------------------------------------------------------------

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void report_sweep_speedups() {
  const auto& f = sta_fixture();
  const int kScenarios = 64;
  const auto scenarios = f.scenarios(kScenarios);
  const size_t hw = wu::ThreadPool::hardware_threads();

  // Sequential loop baseline (also collects reference results).
  std::vector<double> looped_slack;
  st::StaEngine looped(f.netlist, f.lib);
  f.constrain(looped);
  const double t_looped = wall_seconds([&] {
    for (const auto& sc : scenarios) {
      looped.clear_noisy_nets();
      for (const auto& e : sc.entries) {
        looped.annotate_noisy_net(e.net, e.annotation.waveform,
                                  e.annotation.polarity);
      }
      looped.run();
      looped_slack.push_back(looped.worst_slack());
    }
  });

  // Batched at 1 thread (cache + single-pass effect) and at the
  // hardware thread count (adds the parallel fan-out).
  waveletic::sta::GammaCache::Stats statsN{};
  auto run_batched = [&](int threads, std::vector<double>& slack,
                         waveletic::sta::GammaCache::Stats& stats) {
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    st::BatchOptions opt;
    opt.threads = threads;
    st::ScenarioBatch batch(sta, opt);
    for (const auto& sc : scenarios) batch.add(sc);
    const double t = wall_seconds([&] { batch.run(); });
    for (size_t i = 0; i < batch.size(); ++i) {
      slack.push_back(batch.worst_slack(i));
    }
    stats = batch.cache_stats();
    return t;
  };
  std::vector<double> batched1_slack, batchedN_slack;
  waveletic::sta::GammaCache::Stats stats1{};
  const double t_batched1 = run_batched(1, batched1_slack, stats1);
  const double t_batchedN =
      run_batched(static_cast<int>(hw), batchedN_slack, statsN);

  bool identical = true;
  for (int i = 0; i < kScenarios; ++i) {
    identical = identical && looped_slack[i] == batched1_slack[i] &&
                looped_slack[i] == batchedN_slack[i];
  }

  // Single-run thread scaling.
  auto run_once = [&](int threads) {
    st::StaEngine sta(f.netlist, f.lib);
    f.constrain(sta);
    sta.set_threads(threads);
    return wall_seconds([&] { sta.run(); });
  };
  const double t_run1 = run_once(1);
  const double t_runN = run_once(static_cast<int>(hw));

  std::printf("\n-- scenario-sweep speedup summary (%d scenarios, %zu "
              "hardware threads) --\n",
              kScenarios, hw);
  std::printf("looped sweep, 1 thread:          %8.1f ms\n", t_looped * 1e3);
  std::printf("batched sweep, 1 thread:         %8.1f ms  (%.2fx vs looped)\n",
              t_batched1 * 1e3, t_looped / t_batched1);
  std::printf("batched sweep, %2zu threads:       %8.1f ms  (%.2fx vs "
              "looped)\n",
              hw, t_batchedN * 1e3, t_looped / t_batchedN);
  std::printf("single run 1 thread -> %zu threads: %.2f ms -> %.2f ms "
              "(%.2fx)\n",
              hw, t_run1 * 1e3, t_runN * 1e3, t_run1 / t_runN);
  std::printf("timing results identical across looped/batched: %s\n",
              identical ? "yes" : "NO — BUG");

  // Machine-readable summary for CI trend tracking.
  const char* json_path = "BENCH_sweep.json";
  if (FILE* f_json = std::fopen(json_path, "w")) {
    const uint64_t lookups = statsN.hits + statsN.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(statsN.hits) /
                           static_cast<double>(lookups);
    std::fprintf(f_json,
                 "{\n"
                 "  \"scenarios\": %d,\n"
                 "  \"threads\": %zu,\n"
                 "  \"looped_ms\": %.3f,\n"
                 "  \"batched_1t_ms\": %.3f,\n"
                 "  \"batched_ms\": %.3f,\n"
                 "  \"scenarios_per_sec\": %.1f,\n"
                 "  \"speedup_vs_looped\": %.2f,\n"
                 "  \"cache_hits\": %llu,\n"
                 "  \"cache_misses\": %llu,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 kScenarios, hw, t_looped * 1e3, t_batched1 * 1e3,
                 t_batchedN * 1e3, kScenarios / t_batchedN,
                 t_looped / t_batchedN,
                 static_cast<unsigned long long>(statsN.hits),
                 static_cast<unsigned long long>(statsN.misses), hit_rate,
                 identical ? "true" : "false");
    std::fclose(f_json);
    std::printf("wrote %s\n", json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_sweep_speedups();
  return 0;
}
