// §4.2 ablation: accuracy of the sampled techniques as a function of
// the number of sampling points P.  The paper states that SGDP's
// run-time can be reduced with smaller P at the cost of accuracy; this
// bench quantifies that trade-off on Configuration I.
//
// WAVELETIC_FAST=1 reduces the case count for a smoke run.

#include <cstdlib>
#include <iostream>

#include "experiments/accuracy.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ex = waveletic::experiments;
namespace no = waveletic::noise;
namespace wu = waveletic::util;

int main() {
  const bool fast = [] {
    const char* f = std::getenv("WAVELETIC_FAST");
    return f && f[0] == '1';
  }();
  const int cases = fast ? 9 : 40;

  std::cout << "== P sweep: accuracy vs sampling points (Cfg I, " << cases
            << " cases) ==\n";

  wu::Table table({"P", "SGDP Max (ps)", "SGDP Avg (ps)", "LSF3 Avg (ps)",
                   "WLS5 Avg (ps)"});
  wu::CsvWriter csv;
  std::vector<double> ps, sgdp_avg, sgdp_max;

  for (int samples : {5, 9, 15, 25, 35, 55, 95}) {
    ex::AccuracyOptions opt;
    opt.bench = no::TestbenchSpec::config1();
    opt.bench.victim_t50 = 1.5e-9;
    opt.cases = cases;
    opt.samples = samples;
    opt.runner.dt = 2e-12;
    opt.methods = {"LSF3", "WLS5", "SGDP"};
    const auto result = ex::run_accuracy(opt);
    const auto& sgdp = result.stat("SGDP");
    table.add_row({std::to_string(samples),
                   wu::format_ps(sgdp.max_error),
                   wu::format_ps(sgdp.avg_error),
                   wu::format_ps(result.stat("LSF3").avg_error),
                   wu::format_ps(result.stat("WLS5").avg_error)});
    ps.push_back(samples);
    sgdp_avg.push_back(sgdp.avg_error);
    sgdp_max.push_back(sgdp.max_error);
  }
  table.print(std::cout);

  csv.add_column("P", ps);
  csv.add_column("sgdp_avg_s", sgdp_avg);
  csv.add_column("sgdp_max_s", sgdp_max);
  csv.write_file("p_sweep.csv");

  std::cout << "\nexpected shape: small P degrades SGDP accuracy "
               "(paper: \"small P tends to result in lower timing "
               "analysis accuracy\"); written to p_sweep.csv\n";
  return 0;
}
