#pragma once

/// \file nldm.hpp
/// Non-Linear Delay Model tables: the industry-standard (Liberty)
/// delay/slew lookup characterized over input transition × output load.
/// The paper's compatibility claim — "SGDP is compatible with the
/// current level of gate characterization in conventional ASIC cell
/// libraries" — rests on exactly this representation, so the mini-STA
/// engine consumes Γeff through these tables.

#include <string>
#include <vector>

namespace waveletic::liberty {

/// Axis variables supported by the subset.
enum class TableVariable {
  kInputNetTransition,
  kTotalOutputNetCapacitance,
};

[[nodiscard]] const char* to_string(TableVariable v) noexcept;
[[nodiscard]] TableVariable table_variable_from(const std::string& s);

/// lu_table_template: named axis layout shared by tables.
struct TableTemplate {
  std::string name;
  TableVariable variable_1 = TableVariable::kInputNetTransition;
  TableVariable variable_2 = TableVariable::kTotalOutputNetCapacitance;
  std::vector<double> index_1;  ///< SI units (seconds / farads)
  std::vector<double> index_2;  ///< empty for 1-D templates
};

/// A 2-D (or 1-D when index_2 is empty) lookup table with bilinear
/// interpolation and linear edge extrapolation.  All values SI.
class NldmTable {
 public:
  NldmTable() = default;

  /// `values` is row-major: values[i * index_2.size() + j] corresponds
  /// to index_1[i], index_2[j].  For 1-D tables pass empty index_2 and
  /// one value per index_1 entry.
  NldmTable(std::vector<double> index_1, std::vector<double> index_2,
            std::vector<double> values);

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& index_1() const noexcept {
    return index_1_;
  }
  [[nodiscard]] const std::vector<double>& index_2() const noexcept {
    return index_2_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Bilinear interpolation at (x1, x2); linear extrapolation outside
  /// the grid (standard Liberty semantics).  For 1-D tables x2 is
  /// ignored.
  [[nodiscard]] double lookup(double x1, double x2 = 0.0) const;

  [[nodiscard]] double value_at(size_t i, size_t j) const noexcept {
    return values_[i * (index_2_.empty() ? 1 : index_2_.size()) + j];
  }

 private:
  std::vector<double> index_1_;
  std::vector<double> index_2_;
  std::vector<double> values_;
};

/// Finds the bracketing segment for x on a sorted axis; returns the
/// lower index (clamped so [i, i+1] is always valid) plus the
/// interpolation fraction (can be <0 or >1 when extrapolating).
struct AxisSegment {
  size_t lo = 0;
  double frac = 0.0;
};
[[nodiscard]] AxisSegment locate(const std::vector<double>& axis, double x);

}  // namespace waveletic::liberty
