#pragma once

/// \file library.hpp
/// Liberty object model: library → cells → pins → timing arcs with NLDM
/// tables.  Internal units are strictly SI; the parser/writer apply the
/// library's declared units at the boundary.

#include <optional>
#include <string>
#include <vector>

#include "liberty/nldm.hpp"

namespace waveletic::liberty {

enum class PinDirection { kInput, kOutput, kInternal };
enum class TimingSense { kPositiveUnate, kNegativeUnate, kNonUnate };

[[nodiscard]] const char* to_string(PinDirection d) noexcept;
[[nodiscard]] const char* to_string(TimingSense s) noexcept;
[[nodiscard]] TimingSense timing_sense_from(const std::string& s);

/// One timing arc related_pin → (enclosing output pin).
struct TimingArc {
  std::string related_pin;
  TimingSense sense = TimingSense::kNegativeUnate;
  /// Indexed by output transition: tables may be empty when a cell only
  /// characterizes one direction.
  NldmTable cell_rise;        ///< delay to output rise [s]
  NldmTable cell_fall;        ///< delay to output fall [s]
  NldmTable rise_transition;  ///< output rise slew [s]
  NldmTable fall_transition;  ///< output fall slew [s]

  struct Lookup {
    double delay = 0.0;
    double out_slew = 0.0;
  };
  /// Delay + output slew for an output rise (or fall) given input slew
  /// and load, both SI.
  [[nodiscard]] Lookup rise(double in_slew, double load_cap) const;
  [[nodiscard]] Lookup fall(double in_slew, double load_cap) const;
};

struct Pin {
  std::string name;
  PinDirection direction = PinDirection::kInput;
  double capacitance = 0.0;  ///< input pin cap [F]
  double max_capacitance = 0.0;  ///< output drive limit [F]; 0 = none
  std::string function;  ///< boolean function string for outputs
  std::vector<TimingArc> arcs;  ///< populated on output pins

  [[nodiscard]] const TimingArc* find_arc(
      const std::string& related) const noexcept;
};

struct Cell {
  std::string name;
  double area = 0.0;
  std::vector<Pin> pins;

  [[nodiscard]] const Pin* find_pin(const std::string& name) const noexcept;
  [[nodiscard]] Pin* find_pin(const std::string& name) noexcept;
  /// First output pin; throws if the cell has none.
  [[nodiscard]] const Pin& output_pin() const;
  [[nodiscard]] std::vector<const Pin*> input_pins() const;
};

class Library {
 public:
  std::string name = "waveletic";
  double nom_voltage = 1.2;  ///< [V]
  /// Measurement thresholds (fractions) — the paper's 10/50/90 points.
  double slew_lower = 0.1;
  double slew_upper = 0.9;
  double delay_threshold = 0.5;
  /// Units applied by the writer (and recorded by the parser).
  double time_unit = 1e-9;        ///< "1ns"
  double capacitance_unit = 1e-12;  ///< pF

  std::vector<TableTemplate> templates;
  std::vector<Cell> cells;

  [[nodiscard]] const Cell& cell(const std::string& name) const;
  [[nodiscard]] const Cell* find_cell(const std::string& name) const noexcept;
  [[nodiscard]] const TableTemplate* find_template(
      const std::string& name) const noexcept;

  void add_cell(Cell cell);
  void add_template(TableTemplate tmpl);
};

}  // namespace waveletic::liberty
