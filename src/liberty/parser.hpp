#pragma once

/// \file parser.hpp
/// Liberty (.lib) parser.  Two layers:
///   1. a generic lexer + group-tree parser covering the Liberty
///      syntax (groups, simple attributes, complex attributes, quoted
///      strings, comments, backslash continuations);
///   2. a semantic pass mapping the tree onto the Library object model
///      (templates, cells, pins, NLDM timing arcs) with unit scaling
///      into SI.
/// The generic tree is public so tests and future extensions (ccs,
/// power groups) can reuse the front end.

#include <string>
#include <string_view>
#include <vector>

#include "liberty/library.hpp"

namespace waveletic::liberty {

/// Generic Liberty group node.
struct LibertyGroup {
  std::string type;               ///< e.g. "library", "cell", "timing"
  std::vector<std::string> args;  ///< group arguments: cell (INVX1) {...}
  struct Attribute {
    std::string name;
    std::string value;  ///< unquoted text
  };
  struct ComplexAttribute {
    std::string name;
    std::vector<std::string> values;  ///< one entry per argument
  };
  std::vector<Attribute> attributes;
  std::vector<ComplexAttribute> complex_attributes;
  std::vector<LibertyGroup> children;

  [[nodiscard]] const Attribute* find_attribute(
      std::string_view name) const noexcept;
  [[nodiscard]] const ComplexAttribute* find_complex(
      std::string_view name) const noexcept;
  [[nodiscard]] std::vector<const LibertyGroup*> children_of_type(
      std::string_view type) const;
};

/// Parses source text into the generic tree (must contain exactly one
/// top-level group).  Throws util::Error with line info on bad syntax.
[[nodiscard]] LibertyGroup parse_liberty_tree(std::string_view text);

/// Full semantic parse into the object model.
[[nodiscard]] Library parse_liberty(std::string_view text);

/// Reads and parses a .lib file.
[[nodiscard]] Library parse_liberty_file(const std::string& path);

/// Splits a Liberty number list ("0.1, 0.2, 0.3") into doubles.
[[nodiscard]] std::vector<double> parse_number_list(std::string_view text);

}  // namespace waveletic::liberty
