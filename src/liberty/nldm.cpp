#include "liberty/nldm.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace waveletic::liberty {

const char* to_string(TableVariable v) noexcept {
  switch (v) {
    case TableVariable::kInputNetTransition:
      return "input_net_transition";
    case TableVariable::kTotalOutputNetCapacitance:
      return "total_output_net_capacitance";
  }
  return "?";
}

TableVariable table_variable_from(const std::string& s) {
  if (util::iequals(s, "input_net_transition")) {
    return TableVariable::kInputNetTransition;
  }
  if (util::iequals(s, "total_output_net_capacitance")) {
    return TableVariable::kTotalOutputNetCapacitance;
  }
  throw util::Error::fmt("unsupported table variable: ", s);
}

NldmTable::NldmTable(std::vector<double> index_1, std::vector<double> index_2,
                     std::vector<double> values)
    : index_1_(std::move(index_1)),
      index_2_(std::move(index_2)),
      values_(std::move(values)) {
  util::require(!index_1_.empty(), "NLDM table: empty index_1");
  const size_t cols = index_2_.empty() ? 1 : index_2_.size();
  util::require(values_.size() == index_1_.size() * cols,
                "NLDM table: expected ", index_1_.size() * cols,
                " values, got ", values_.size());
  for (size_t i = 1; i < index_1_.size(); ++i) {
    util::require(index_1_[i] > index_1_[i - 1],
                  "NLDM table: index_1 not increasing");
  }
  for (size_t j = 1; j < index_2_.size(); ++j) {
    util::require(index_2_[j] > index_2_[j - 1],
                  "NLDM table: index_2 not increasing");
  }
}

AxisSegment locate(const std::vector<double>& axis, double x) {
  AxisSegment seg;
  if (axis.size() == 1) {
    seg.lo = 0;
    seg.frac = 0.0;
    return seg;
  }
  // Segment [lo, lo+1]: clamp so extrapolation uses the edge segment.
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  size_t hi = static_cast<size_t>(it - axis.begin());
  hi = std::clamp<size_t>(hi, 1, axis.size() - 1);
  seg.lo = hi - 1;
  seg.frac = (x - axis[seg.lo]) / (axis[hi] - axis[seg.lo]);
  return seg;
}

double NldmTable::lookup(double x1, double x2) const {
  util::require(!empty(), "lookup on empty NLDM table");
  const AxisSegment s1 = locate(index_1_, x1);

  if (index_2_.empty()) {
    if (index_1_.size() == 1) return values_[0];
    const double v0 = values_[s1.lo];
    const double v1 = values_[s1.lo + 1];
    return v0 + s1.frac * (v1 - v0);
  }

  const AxisSegment s2 = locate(index_2_, x2);
  const size_t cols = index_2_.size();
  const auto v = [&](size_t i, size_t j) { return values_[i * cols + j]; };

  if (index_1_.size() == 1 && cols == 1) return v(0, 0);
  if (index_1_.size() == 1) {
    return v(0, s2.lo) + s2.frac * (v(0, s2.lo + 1) - v(0, s2.lo));
  }
  if (cols == 1) {
    return v(s1.lo, 0) + s1.frac * (v(s1.lo + 1, 0) - v(s1.lo, 0));
  }

  const double v00 = v(s1.lo, s2.lo);
  const double v01 = v(s1.lo, s2.lo + 1);
  const double v10 = v(s1.lo + 1, s2.lo);
  const double v11 = v(s1.lo + 1, s2.lo + 1);
  const double a = v00 + s2.frac * (v01 - v00);
  const double b = v10 + s2.frac * (v11 - v10);
  return a + s1.frac * (b - a);
}

}  // namespace waveletic::liberty
