#include "liberty/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace waveletic::liberty {
namespace {

using util::Error;
using util::require;

enum class TokKind { kAtom, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_space_and_comments();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) {
      tok.kind = TokKind::kEnd;
      return tok;
    }
    const char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      tok.kind = TokKind::kString;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
            src_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside a string
          ++line_;
          continue;
        }
        if (src_[pos_] == '\n') ++line_;
        tok.text += src_[pos_++];
      }
      require(pos_ < src_.size(), "liberty line ", tok.line,
              ": unterminated string");
      ++pos_;  // closing quote
      return tok;
    }
    if (is_punct(c)) {
      ++pos_;
      tok.kind = TokKind::kPunct;
      tok.text = std::string(1, c);
      return tok;
    }
    tok.kind = TokKind::kAtom;
    while (pos_ < src_.size() && !is_punct(src_[pos_]) &&
           !std::isspace(static_cast<unsigned char>(src_[pos_])) &&
           src_[pos_] != '"') {
      tok.text += src_[pos_++];
    }
    return tok;
  }

 private:
  static bool is_punct(char c) noexcept {
    return c == '(' || c == ')' || c == '{' || c == '}' || c == ':' ||
           c == ';' || c == ',';
  }

  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        require(pos_ + 1 < src_.size(), "unterminated /* comment");
        pos_ += 2;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

class TreeParser {
 public:
  explicit TreeParser(std::string_view src) : lexer_(src) { advance(); }

  LibertyGroup parse_top() {
    LibertyGroup top = parse_group();
    require(cur_.kind == TokKind::kEnd, "liberty line ", cur_.line,
            ": trailing content after top-level group");
    return top;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect_punct(const char* p) {
    require(cur_.kind == TokKind::kPunct && cur_.text == p, "liberty line ",
            cur_.line, ": expected '", p, "', got '", cur_.text, "'");
    advance();
  }

  /// Parses `name ( args ) { body }` with cur_ at `name`.
  LibertyGroup parse_group() {
    require(cur_.kind == TokKind::kAtom, "liberty line ", cur_.line,
            ": expected group name");
    LibertyGroup group;
    group.type = cur_.text;
    advance();
    expect_punct("(");
    while (!(cur_.kind == TokKind::kPunct && cur_.text == ")")) {
      require(cur_.kind != TokKind::kEnd, "liberty: unexpected EOF in args");
      if (cur_.kind == TokKind::kPunct && cur_.text == ",") {
        advance();
        continue;
      }
      group.args.push_back(cur_.text);
      advance();
    }
    advance();  // ')'
    expect_punct("{");
    parse_body(group);
    expect_punct("}");
    return group;
  }

  void parse_body(LibertyGroup& group) {
    while (!(cur_.kind == TokKind::kPunct && cur_.text == "}")) {
      require(cur_.kind != TokKind::kEnd, "liberty: unexpected EOF in group ",
              group.type);
      require(cur_.kind == TokKind::kAtom, "liberty line ", cur_.line,
              ": expected attribute or group, got '", cur_.text, "'");
      const std::string name = cur_.text;
      const int line = cur_.line;
      advance();

      if (cur_.kind == TokKind::kPunct && cur_.text == ":") {
        // Simple attribute: name : value ;
        advance();
        require(cur_.kind == TokKind::kAtom || cur_.kind == TokKind::kString,
                "liberty line ", line, ": expected value for ", name);
        std::string value = cur_.text;
        advance();
        // Tolerate multi-atom values like `1 ns` (rare, but cheap).
        while (cur_.kind == TokKind::kAtom) {
          value += ' ';
          value += cur_.text;
          advance();
        }
        expect_punct(";");
        group.attributes.push_back({name, std::move(value)});
        continue;
      }

      require(cur_.kind == TokKind::kPunct && cur_.text == "(",
              "liberty line ", line, ": expected ':' or '(' after ", name);
      // Lookahead: complex attribute `name(v, v);` or group `name(...){}`.
      advance();
      std::vector<std::string> values;
      while (!(cur_.kind == TokKind::kPunct && cur_.text == ")")) {
        require(cur_.kind != TokKind::kEnd, "liberty: unexpected EOF in ",
                name);
        if (cur_.kind == TokKind::kPunct && cur_.text == ",") {
          advance();
          continue;
        }
        values.push_back(cur_.text);
        advance();
      }
      advance();  // ')'
      if (cur_.kind == TokKind::kPunct && cur_.text == "{") {
        advance();
        LibertyGroup child;
        child.type = name;
        child.args = std::move(values);
        parse_body(child);
        expect_punct("}");
        group.children.push_back(std::move(child));
      } else {
        if (cur_.kind == TokKind::kPunct && cur_.text == ";") advance();
        group.complex_attributes.push_back({name, std::move(values)});
      }
    }
  }

  Lexer lexer_;
  Token cur_;
};

/// Joins all string arguments of a complex attribute and parses the
/// numbers (Liberty tables quote rows separately).
std::vector<double> numbers_of(const LibertyGroup::ComplexAttribute& attr) {
  std::vector<double> out;
  for (const auto& chunk : attr.values) {
    const auto nums = parse_number_list(chunk);
    out.insert(out.end(), nums.begin(), nums.end());
  }
  return out;
}

/// Semantic mapping of the generic tree onto the object model.
class SemanticPass {
 public:
  Library run(const LibertyGroup& top) {
    require(util::iequals(top.type, "library"),
            "expected top-level library group, got ", top.type);
    Library lib;
    if (!top.args.empty()) lib.name = top.args[0];
    read_units(top, lib);
    read_thresholds(top, lib);
    for (const auto* tmpl : top.children_of_type("lu_table_template")) {
      lib.add_template(read_template(*tmpl, lib));
    }
    for (const auto* cell : top.children_of_type("cell")) {
      lib.add_cell(read_cell(*cell, lib));
    }
    return lib;
  }

 private:
  static double attr_double(const LibertyGroup& g, std::string_view name,
                            double fallback) {
    const auto* attr = g.find_attribute(name);
    if (attr == nullptr) return fallback;
    return util::parse_eng(attr->value);
  }

  void read_units(const LibertyGroup& top, Library& lib) {
    if (const auto* tu = top.find_attribute("time_unit")) {
      lib.time_unit = util::parse_eng(tu->value);  // "1ns"
    }
    if (const auto* cu = top.find_complex("capacitive_load_unit")) {
      require(cu->values.size() == 2, "capacitive_load_unit needs 2 args");
      const double scale = util::parse_eng(cu->values[0]);
      const std::string unit = util::to_lower(cu->values[1]);
      double base = 1e-12;
      if (unit == "ff") {
        base = 1e-15;
      } else if (unit == "pf") {
        base = 1e-12;
      } else {
        throw Error::fmt("unsupported capacitive_load_unit: ", unit);
      }
      lib.capacitance_unit = scale * base;
    }
    lib.nom_voltage = attr_double(top, "nom_voltage", lib.nom_voltage);
  }

  void read_thresholds(const LibertyGroup& top, Library& lib) {
    // Liberty thresholds are percentages.
    lib.slew_lower =
        attr_double(top, "slew_lower_threshold_pct_rise", 10.0) / 100.0;
    lib.slew_upper =
        attr_double(top, "slew_upper_threshold_pct_rise", 90.0) / 100.0;
    lib.delay_threshold =
        attr_double(top, "input_threshold_pct_rise", 50.0) / 100.0;
  }

  TableTemplate read_template(const LibertyGroup& g, const Library& lib) {
    TableTemplate tmpl;
    require(!g.args.empty(), "lu_table_template without a name");
    tmpl.name = g.args[0];
    if (const auto* v1 = g.find_attribute("variable_1")) {
      tmpl.variable_1 = table_variable_from(v1->value);
    }
    if (const auto* v2 = g.find_attribute("variable_2")) {
      tmpl.variable_2 = table_variable_from(v2->value);
    }
    if (const auto* i1 = g.find_complex("index_1")) {
      tmpl.index_1 = scale_axis(numbers_of(*i1), tmpl.variable_1, lib);
    }
    if (const auto* i2 = g.find_complex("index_2")) {
      tmpl.index_2 = scale_axis(numbers_of(*i2), tmpl.variable_2, lib);
    }
    return tmpl;
  }

  static std::vector<double> scale_axis(std::vector<double> values,
                                        TableVariable var,
                                        const Library& lib) {
    const double scale = (var == TableVariable::kInputNetTransition)
                             ? lib.time_unit
                             : lib.capacitance_unit;
    for (auto& v : values) v *= scale;
    return values;
  }

  Cell read_cell(const LibertyGroup& g, const Library& lib) {
    Cell cell;
    require(!g.args.empty(), "cell without a name");
    cell.name = g.args[0];
    cell.area = attr_double(g, "area", 0.0);
    for (const auto* pin_group : g.children_of_type("pin")) {
      cell.pins.push_back(read_pin(*pin_group, lib));
    }
    return cell;
  }

  Pin read_pin(const LibertyGroup& g, const Library& lib) {
    Pin pin;
    require(!g.args.empty(), "pin without a name");
    pin.name = g.args[0];
    if (const auto* dir = g.find_attribute("direction")) {
      if (util::iequals(dir->value, "input")) {
        pin.direction = PinDirection::kInput;
      } else if (util::iequals(dir->value, "output")) {
        pin.direction = PinDirection::kOutput;
      } else {
        pin.direction = PinDirection::kInternal;
      }
    }
    pin.capacitance =
        attr_double(g, "capacitance", 0.0) * lib.capacitance_unit;
    pin.max_capacitance =
        attr_double(g, "max_capacitance", 0.0) * lib.capacitance_unit;
    if (const auto* fn = g.find_attribute("function")) {
      pin.function = fn->value;
    }
    for (const auto* arc_group : g.children_of_type("timing")) {
      pin.arcs.push_back(read_arc(*arc_group, lib));
    }
    return pin;
  }

  TimingArc read_arc(const LibertyGroup& g, const Library& lib) {
    TimingArc arc;
    if (const auto* rp = g.find_attribute("related_pin")) {
      arc.related_pin = rp->value;
    }
    if (const auto* ts = g.find_attribute("timing_sense")) {
      arc.sense = timing_sense_from(ts->value);
    }
    const auto read_table = [&](const char* name, NldmTable& slot) {
      for (const auto* tg : g.children_of_type(name)) {
        slot = read_nldm(*tg, lib);
      }
    };
    read_table("cell_rise", arc.cell_rise);
    read_table("cell_fall", arc.cell_fall);
    read_table("rise_transition", arc.rise_transition);
    read_table("fall_transition", arc.fall_transition);
    return arc;
  }

  NldmTable read_nldm(const LibertyGroup& g, const Library& lib) {
    // Table axes: explicit index_1/index_2 override the template.
    std::vector<double> i1, i2;
    TableVariable v1 = TableVariable::kInputNetTransition;
    TableVariable v2 = TableVariable::kTotalOutputNetCapacitance;
    if (!g.args.empty()) {
      if (const auto* tmpl = lib.find_template(g.args[0])) {
        i1 = tmpl->index_1;
        i2 = tmpl->index_2;
        v1 = tmpl->variable_1;
        v2 = tmpl->variable_2;
      }
    }
    if (const auto* gi1 = g.find_complex("index_1")) {
      i1 = scale_axis(numbers_of(*gi1), v1, lib);
    }
    if (const auto* gi2 = g.find_complex("index_2")) {
      i2 = scale_axis(numbers_of(*gi2), v2, lib);
    }
    const auto* vals = g.find_complex("values");
    require(vals != nullptr, "NLDM table without values");
    std::vector<double> values = numbers_of(*vals);
    for (auto& v : values) v *= lib.time_unit;  // delays/slews are times
    require(!i1.empty(), "NLDM table without index_1");
    return NldmTable(std::move(i1), std::move(i2), std::move(values));
  }
};

}  // namespace

const LibertyGroup::Attribute* LibertyGroup::find_attribute(
    std::string_view attr_name) const noexcept {
  for (const auto& a : attributes) {
    if (util::iequals(a.name, attr_name)) return &a;
  }
  return nullptr;
}

const LibertyGroup::ComplexAttribute* LibertyGroup::find_complex(
    std::string_view attr_name) const noexcept {
  for (const auto& a : complex_attributes) {
    if (util::iequals(a.name, attr_name)) return &a;
  }
  return nullptr;
}

std::vector<const LibertyGroup*> LibertyGroup::children_of_type(
    std::string_view child_type) const {
  std::vector<const LibertyGroup*> out;
  for (const auto& c : children) {
    if (util::iequals(c.type, child_type)) out.push_back(&c);
  }
  return out;
}

std::vector<double> parse_number_list(std::string_view text) {
  std::vector<double> out;
  for (const auto tok : util::split(text, ", \t\n")) {
    out.push_back(util::parse_eng(tok));
  }
  return out;
}

LibertyGroup parse_liberty_tree(std::string_view text) {
  TreeParser parser(text);
  return parser.parse_top();
}

Library parse_liberty(std::string_view text) {
  SemanticPass pass;
  return pass.run(parse_liberty_tree(text));
}

Library parse_liberty_file(const std::string& path) {
  std::ifstream file(path);
  require(file.good(), "cannot open liberty file: ", path);
  std::stringstream ss;
  ss << file.rdbuf();
  return parse_liberty(ss.str());
}

}  // namespace waveletic::liberty
