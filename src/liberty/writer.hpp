#pragma once

/// \file writer.hpp
/// Liberty writer: emits a Library back to .lib text in the library's
/// declared units.  parse(write(lib)) == lib up to floating-point
/// formatting, which the round-trip tests verify.

#include <ostream>
#include <string>

#include "liberty/library.hpp"

namespace waveletic::liberty {

/// Streams the library as Liberty text.
std::ostream& write_liberty(std::ostream& os, const Library& lib);

/// Returns the Liberty text.
[[nodiscard]] std::string to_liberty_string(const Library& lib);

/// Writes to a file, throwing util::Error when it cannot be opened.
void write_liberty_file(const std::string& path, const Library& lib);

}  // namespace waveletic::liberty
