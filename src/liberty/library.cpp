#include "liberty/library.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace waveletic::liberty {

const char* to_string(PinDirection d) noexcept {
  switch (d) {
    case PinDirection::kInput:
      return "input";
    case PinDirection::kOutput:
      return "output";
    case PinDirection::kInternal:
      return "internal";
  }
  return "?";
}

const char* to_string(TimingSense s) noexcept {
  switch (s) {
    case TimingSense::kPositiveUnate:
      return "positive_unate";
    case TimingSense::kNegativeUnate:
      return "negative_unate";
    case TimingSense::kNonUnate:
      return "non_unate";
  }
  return "?";
}

TimingSense timing_sense_from(const std::string& s) {
  if (util::iequals(s, "positive_unate")) return TimingSense::kPositiveUnate;
  if (util::iequals(s, "negative_unate")) return TimingSense::kNegativeUnate;
  if (util::iequals(s, "non_unate")) return TimingSense::kNonUnate;
  throw util::Error::fmt("unknown timing_sense: ", s);
}

TimingArc::Lookup TimingArc::rise(double in_slew, double load_cap) const {
  util::require(!cell_rise.empty(), "arc from ", related_pin,
                " has no cell_rise table");
  Lookup out;
  out.delay = cell_rise.lookup(in_slew, load_cap);
  out.out_slew = rise_transition.lookup(in_slew, load_cap);
  return out;
}

TimingArc::Lookup TimingArc::fall(double in_slew, double load_cap) const {
  util::require(!cell_fall.empty(), "arc from ", related_pin,
                " has no cell_fall table");
  Lookup out;
  out.delay = cell_fall.lookup(in_slew, load_cap);
  out.out_slew = fall_transition.lookup(in_slew, load_cap);
  return out;
}

const TimingArc* Pin::find_arc(const std::string& related) const noexcept {
  for (const auto& arc : arcs) {
    if (util::iequals(arc.related_pin, related)) return &arc;
  }
  return nullptr;
}

const Pin* Cell::find_pin(const std::string& pin_name) const noexcept {
  for (const auto& pin : pins) {
    if (util::iequals(pin.name, pin_name)) return &pin;
  }
  return nullptr;
}

Pin* Cell::find_pin(const std::string& pin_name) noexcept {
  for (auto& pin : pins) {
    if (util::iequals(pin.name, pin_name)) return &pin;
  }
  return nullptr;
}

const Pin& Cell::output_pin() const {
  for (const auto& pin : pins) {
    if (pin.direction == PinDirection::kOutput) return pin;
  }
  throw util::Error::fmt("cell ", name, " has no output pin");
}

std::vector<const Pin*> Cell::input_pins() const {
  std::vector<const Pin*> out;
  for (const auto& pin : pins) {
    if (pin.direction == PinDirection::kInput) out.push_back(&pin);
  }
  return out;
}

const Cell& Library::cell(const std::string& cell_name) const {
  const Cell* c = find_cell(cell_name);
  util::require(c != nullptr, "library ", name, ": unknown cell '",
                cell_name, "'");
  return *c;
}

const Cell* Library::find_cell(const std::string& cell_name) const noexcept {
  for (const auto& c : cells) {
    if (util::iequals(c.name, cell_name)) return &c;
  }
  return nullptr;
}

const TableTemplate* Library::find_template(
    const std::string& tmpl_name) const noexcept {
  for (const auto& t : templates) {
    if (util::iequals(t.name, tmpl_name)) return &t;
  }
  return nullptr;
}

void Library::add_cell(Cell cell) {
  util::require(find_cell(cell.name) == nullptr, "duplicate cell ",
                cell.name);
  cells.push_back(std::move(cell));
}

void Library::add_template(TableTemplate tmpl) {
  util::require(find_template(tmpl.name) == nullptr, "duplicate template ",
                tmpl.name);
  templates.push_back(std::move(tmpl));
}

}  // namespace waveletic::liberty
