#include "wave/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"
#include "wave/kernels.hpp"

namespace waveletic::wave {

const char* to_string(Polarity p) noexcept {
  return p == Polarity::kRising ? "rising" : "falling";
}

Waveform::Waveform(std::vector<double> time, std::vector<double> value)
    : time_(std::move(time)), value_(std::move(value)) {
  util::require(time_.size() == value_.size(),
                "Waveform: time/value length mismatch (", time_.size(), " vs ",
                value_.size(), ")");
  util::require(!time_.empty(), "Waveform: empty sample set");
  for (size_t i = 1; i < time_.size(); ++i) {
    util::require(time_[i] > time_[i - 1],
                  "Waveform: time grid not strictly increasing at index ", i);
  }
}

double Waveform::at(double t) const noexcept {
  if (t <= time_.front()) return value_.front();
  if (t >= time_.back()) return value_.back();
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const size_t hi = static_cast<size_t>(it - time_.begin());
  return detail::lerp_segment(time_.data(), value_.data(), hi - 1, hi, t);
}

Waveform Waveform::derivative() const {
  std::vector<double> d(size());
  derivative_into(*this, d);
  return Waveform(time_, std::move(d));
}

std::vector<double> Waveform::crossings(double level) const {
  std::vector<double> out;
  out.reserve(8);  // typical noisy records cross a few times
  scan_crossings(*this, level, [&](double t) {
    out.push_back(t);
    return true;
  });
  return out;
}

std::optional<double> Waveform::first_crossing(double level) const {
  return wave::first_crossing(WaveView(*this), level);
}

std::optional<double> Waveform::last_crossing(double level) const {
  return wave::last_crossing(WaveView(*this), level);
}

Waveform Waveform::resampled(double t0, double t1, size_t n) const {
  util::require(n >= 2, "resampled: need at least 2 points");
  util::require(t1 > t0, "resampled: empty interval [", t0, ", ", t1, "]");
  std::vector<double> t(n), v(n);
  resample_into(*this, t0, t1, t, v);
  return Waveform(std::move(t), std::move(v));
}

Waveform Waveform::window(double t0, double t1) const {
  util::require(t1 > t0, "window: empty interval");
  // Interior samples are exactly those in (t0, t1): locate the range
  // with binary searches instead of scanning the whole record.
  const auto lo = std::upper_bound(time_.begin(), time_.end(), t0);
  const auto hi = std::lower_bound(lo, time_.end(), t1);
  const size_t interior = static_cast<size_t>(hi - lo);
  std::vector<double> t, v;
  t.reserve(interior + 2);
  v.reserve(interior + 2);
  t.push_back(t0);
  v.push_back(at(t0));
  const size_t first = static_cast<size_t>(lo - time_.begin());
  for (size_t i = first; i < first + interior; ++i) {
    t.push_back(time_[i]);
    v.push_back(value_[i]);
  }
  if (t1 > t.back()) {
    t.push_back(t1);
    v.push_back(at(t1));
  }
  return Waveform(std::move(t), std::move(v));
}

Waveform Waveform::shifted(double dt) const {
  std::vector<double> t(time_);
  for (double& x : t) x += dt;
  return Waveform(std::move(t), value_);
}

Waveform Waveform::flipped(double v_ref) const {
  std::vector<double> v(value_);
  for (double& x : v) x = v_ref - x;
  return Waveform(time_, std::move(v));
}

Waveform Waveform::normalized_rising(Polarity p, double vdd) const {
  return p == Polarity::kRising ? *this : flipped(vdd);
}

Waveform Waveform::smoothed(size_t half_width) const {
  if (half_width == 0) return *this;
  const size_t n = size();
  std::vector<double> prefix(n + 1);
  std::vector<double> v(n);
  smoothed_into(*this, half_width, prefix, v);
  return Waveform(time_, std::move(v));
}

double Waveform::min_value() const noexcept {
  return *std::min_element(value_.begin(), value_.end());
}

double Waveform::max_value() const noexcept {
  return *std::max_element(value_.begin(), value_.end());
}

bool Waveform::is_monotone_rising(double tol) const noexcept {
  for (size_t i = 1; i < size(); ++i) {
    if (value_[i] < value_[i - 1] - tol) return false;
  }
  return true;
}

double Waveform::integral(double baseline) const noexcept {
  double acc = 0.0;
  for (size_t i = 1; i < size(); ++i) {
    const double mid =
        0.5 * (value_[i] + value_[i - 1]) - baseline;
    acc += mid * (time_[i] - time_[i - 1]);
  }
  return acc;
}

Waveform Waveform::linear_ramp(double t_mid, double t_transition, double v_lo,
                               double v_hi, size_t n) {
  util::require(t_transition > 0.0, "linear_ramp: non-positive transition");
  util::require(v_hi > v_lo, "linear_ramp: v_hi must exceed v_lo");
  util::require(n >= 4, "linear_ramp: need at least 4 points");
  const double t_start = t_mid - 0.5 * t_transition;
  const double t0 = t_start - t_transition;
  const double t1 = t_mid + 0.5 * t_transition + t_transition;
  std::vector<double> t(n), v(n);
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
  const double slope = (v_hi - v_lo) / t_transition;
  for (size_t i = 0; i < n; ++i) {
    t[i] = t0 + dt * static_cast<double>(i);
    const double raw = v_lo + slope * (t[i] - t_start);
    v[i] = std::clamp(raw, v_lo, v_hi);
  }
  return Waveform(std::move(t), std::move(v));
}

void Waveform::write_csv(const std::string& path,
                         const std::string& label) const {
  std::ofstream file(path);
  util::require(file.good(), "cannot open waveform CSV for write: ", path);
  file << "t," << label << '\n';
  file.precision(12);
  for (size_t i = 0; i < size(); ++i) {
    file << time_[i] << ',' << value_[i] << '\n';
  }
}

Waveform Waveform::read_csv(const std::string& path) {
  std::ifstream file(path);
  util::require(file.good(), "cannot open waveform CSV for read: ", path);
  std::string line;
  std::vector<double> t, v;
  bool first = true;
  while (std::getline(file, line)) {
    const auto fields = util::split(line, ",");
    if (fields.size() < 2) continue;
    if (first) {
      first = false;
      // Skip a header row if the first field is not numeric.
      double probe = 0.0;
      if (!util::try_parse_eng(fields[0], probe)) continue;
    }
    double ti = 0.0, vi = 0.0;
    util::require(util::try_parse_eng(fields[0], ti) &&
                      util::try_parse_eng(fields[1], vi),
                  "bad CSV row in ", path, ": ", line);
    t.push_back(ti);
    v.push_back(vi);
  }
  return Waveform(std::move(t), std::move(v));
}

Waveform combine(const Waveform& a, double ca, const Waveform& b, double cb) {
  // Union grid by linear two-pointer merge (both inputs are strictly
  // increasing) instead of concatenate + sort + unique, then one merge
  // scan per operand instead of two binary searches per grid point.
  std::vector<double> grid(a.size() + b.size());
  grid.resize(merge_grids(a.times(), b.times(), grid));
  std::vector<double> va(grid.size()), vb(grid.size());
  sample_into(a, grid, va);
  sample_into(b, grid, vb);
  std::vector<double> v(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    v[i] = ca * va[i] + cb * vb[i];
  }
  return Waveform(std::move(grid), std::move(v));
}

}  // namespace waveletic::wave
