#include "wave/ramp.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace waveletic::wave {

Ramp::Ramp(double a, double b, double vdd) : a_(a), b_(b), vdd_(vdd) {
  util::require(std::isfinite(a) && a > 0.0,
                "Ramp: slope must be positive and finite, got ", a);
  util::require(vdd > 0.0, "Ramp: vdd must be positive");
}

Ramp Ramp::from_arrival_slew(double t50, double slew, double vdd,
                             double frac_lo, double frac_hi) {
  util::require(slew > 0.0, "Ramp: non-positive slew");
  util::require(frac_hi > frac_lo && frac_lo >= 0.0 && frac_hi <= 1.0,
                "Ramp: bad slew thresholds ", frac_lo, ", ", frac_hi);
  const double a = (frac_hi - frac_lo) * vdd / slew;
  const double b = 0.5 * vdd - a * t50;
  return {a, b, vdd};
}

double Ramp::at(double t) const noexcept {
  return std::clamp(a_ * t + b_, 0.0, vdd_);
}

double Ramp::time_at(double v) const noexcept { return (v - b_) / a_; }

double Ramp::slew(double frac_lo, double frac_hi) const noexcept {
  return (frac_hi - frac_lo) * vdd_ / a_;
}

Waveform Ramp::sampled(size_t n) const {
  std::vector<double> t(n), v(n);
  sampled_into(t, v);
  return Waveform(std::move(t), std::move(v));
}

void Ramp::sampled_into(std::span<double> t,
                        std::span<double> v) const noexcept {
  const size_t n = t.size();
  const double span = vdd_ / a_;
  const double t0 = t_start() - span;
  const double t1 = t_full() + span;
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    t[i] = t0 + dt * static_cast<double>(i);
    v[i] = at(t[i]);
  }
}

void Ramp::denormalized_into(Polarity p, std::span<double> t,
                             std::span<double> v) const noexcept {
  sampled_into(t, v);
  if (p == Polarity::kFalling) {
    for (double& x : v) x = vdd_ - x;
  }
}

Waveform Ramp::denormalized(Polarity p, size_t n) const {
  Waveform w = sampled(n);
  if (p == Polarity::kFalling) return w.flipped(vdd_);
  return w;
}

std::string Ramp::describe() const {
  std::ostringstream os;
  os << "ramp(t50=" << util::format_eng(t50(), "s")
     << ", slew10-90=" << util::format_eng(slew(), "s") << ")";
  return os.str();
}

}  // namespace waveletic::wave
