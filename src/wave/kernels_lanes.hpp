#pragma once

// INTERNAL header — the width-templated bodies of the hot kernels,
// shared by kernels.cpp (instantiated at W=1, the scalar oracle) and
// kernels_avx2.cpp (instantiated at W=4 under -mavx2).  Not part of the
// public API and not installed; include "wave/kernels.hpp" instead.
//
// Every body is written so that the W=1 instantiation is *exactly* the
// pre-lane scalar loop (the `if constexpr (W > 1)` vector block
// vanishes), and the W>1 block performs the identical per-lane op
// sequence via Lane<W> — which is what makes "wide == scalar" a
// structural property rather than a tolerance.

#include <cstddef>
#include <cstdint>

#include "wave/kernels.hpp"
#include "wave/lanes.hpp"

namespace waveletic::wave::detail {

// sample_into core (n >= 2 guaranteed by the caller): one forward
// merge scan; the vector block advances the shared segment cursor per
// lane, then pair-loads the segment endpoints (each lane's (lo, hi)
// indices are adjacent) and runs the shared lerp formula on all lanes
// at once.
template <int W>
inline void sample_core(const double* t, const double* v, size_t n,
                        const double* ts, double* out, size_t m) {
  const double t_front = t[0];
  const double t_back = t[n - 1];
  const double v_front = v[0];
  const double v_back = v[n - 1];
  size_t hi = 1;
  size_t k = 0;
  if constexpr (W > 1) {
    using L = Lane<W>;
    const typename L::D vfront = L::broadcast(v_front);
    const typename L::D tfront = L::broadcast(t_front);
    // ts is non-decreasing, so ts[k + W - 1] < t_back keeps the whole
    // block interior: no lane can hit the scalar loop's early break.
    while (k + W <= m && ts[k + W - 1] < t_back) {
      int32_t lo[W];
      for (int j = 0; j < W; ++j) {
        const double x = ts[k + static_cast<size_t>(j)];
        while (t[hi] <= x) ++hi;
        lo[j] = static_cast<int32_t>(hi - 1);
      }
      const typename L::D x = L::load(ts + k);
      typename L::D tl, th, vl, vh;
      L::load_pair(t, lo, tl, th);
      L::load_pair(v, lo, vl, vh);
      const typename L::D r = L::lerp(tl, th, vl, vh, x);
      L::store(out + k, L::select(L::le(x, tfront), vfront, r));
      k += W;
    }
  }
  for (; k < m; ++k) {
    const double x = ts[k];
    if (x >= t_back) break;  // the sorted tail clamps flat, below
    while (t[hi] <= x) ++hi;
    const double r = lerp_segment(t, v, hi - 1, hi, x);
    out[k] = (x <= t_front) ? v_front : r;
  }
  for (; k < m; ++k) out[k] = v_back;
}

// Uniform-grid fill: out[k] = t0 + dt * double(k).  double(k + j) is
// exact for any realistic grid, so building it as base + {0,1,2,3}
// reproduces the scalar cast bit-for-bit.
template <int W>
inline void sample_times_core(double t0, double dt, double* out, size_t n) {
  size_t k = 0;
  if constexpr (W > 1) {
    using L = Lane<W>;
    const typename L::D step = L::step();
    const typename L::D vt0 = L::broadcast(t0);
    const typename L::D vdt = L::broadcast(dt);
    for (; k + W <= n; k += W) {
      const typename L::D kd =
          L::add(L::broadcast(static_cast<double>(k)), step);
      L::store(out + k, L::add(vt0, L::mul(vdt, kd)));
    }
  }
  for (; k < n; ++k) out[k] = t0 + dt * static_cast<double>(k);
}

// combine_into value loop: out[i] = ca*va[i] + cb*vb[i] (mul, mul,
// add — never fused).
template <int W>
inline void axpby_core(double ca, const double* va, double cb,
                       const double* vb, double* out, size_t g) {
  size_t i = 0;
  if constexpr (W > 1) {
    using L = Lane<W>;
    const typename L::D a = L::broadcast(ca);
    const typename L::D b = L::broadcast(cb);
    for (; i + W <= g; i += W) {
      L::store(out + i,
               L::add(L::mul(a, L::load(va + i)), L::mul(b, L::load(vb + i))));
    }
  }
  for (; i < g; ++i) out[i] = ca * va[i] + cb * vb[i];
}

// flip_into: out[i] = v_ref - v[i].
template <int W>
inline void flip_core(double v_ref, const double* v, double* out, size_t n) {
  size_t i = 0;
  if constexpr (W > 1) {
    using L = Lane<W>;
    const typename L::D r = L::broadcast(v_ref);
    for (; i + W <= n; i += W) L::store(out + i, L::sub(r, L::load(v + i)));
  }
  for (; i < n; ++i) out[i] = v_ref - v[i];
}

// Crossing scan with a vector fast-skip: a block of W segments whose
// W+1 boundary values all sit strictly on one side of `level` can emit
// nothing and cannot change the touch-dedup state, so it is skipped
// with two compares.  Strict compares exclude touches (v == level) and
// NaN, which fall through to the exact scalar per-segment walk — the
// same statements as `scan_crossings`.
template <int W, class Emit>
inline void scan_crossings_core(WaveView w, double level, Emit&& emit) {
  if constexpr (W == 1) {
    scan_crossings(w, level, emit);
  } else {
    using L = Lane<W>;
    const double* t = w.time.data();
    const double* v = w.value.data();
    const size_t n = w.size();
    double last = 0.0;
    bool has_last = false;
    const auto push = [&](double x) -> bool {
      last = x;
      has_last = true;
      return emit(x);
    };
    const typename L::D lv = L::broadcast(level);
    size_t i = 0;
    while (i + 1 < n) {
      if (i + W < n) {
        const typename L::D v0 = L::load(v + i);
        const typename L::D v1 = L::load(v + i + 1);
        if (L::all(L::mask_and(L::gt(v0, lv), L::gt(v1, lv))) ||
            L::all(L::mask_and(L::lt(v0, lv), L::lt(v1, lv)))) {
          i += W;
          continue;
        }
      }
      const double a = v[i] - level;
      const double b = v[i + 1] - level;
      if (a == 0.0) {
        if (!has_last || last != t[i]) {
          if (!push(t[i])) return;
        }
      } else if ((a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0)) {
        const double frac = a / (a - b);
        if (!push(t[i] + frac * (t[i + 1] - t[i]))) return;
      }
      ++i;
    }
    if (n >= 2 && v[n - 1] == level && v[n - 2] != level) push(t[n - 1]);
    if (n == 1 && v[0] == level) push(t[0]);
  }
}

#if defined(WAVELETIC_HAVE_AVX2)
// Concrete W=4 entry points, defined in kernels_avx2.cpp (the only
// kernel TU built with -mavx2).  Signatures are deliberately free of
// vector types so the call from baseline-ISA code is a plain function
// call.
void sample_core_w4(const double* t, const double* v, size_t n,
                    const double* ts, double* out, size_t m);
void sample_times_core_w4(double t0, double dt, double* out, size_t n);
void axpby_core_w4(double ca, const double* va, double cb, const double* vb,
                   double* out, size_t g);
void flip_core_w4(double v_ref, const double* v, double* out, size_t n);
void scan_crossings_w4(WaveView w, double level, bool (*emit)(void*, double),
                       void* ctx);
#endif

}  // namespace waveletic::wave::detail
