#include "wave/kernels.hpp"

#include <algorithm>
#include <type_traits>

#include "util/error.hpp"
#include "wave/kernels_lanes.hpp"

namespace waveletic::wave {

namespace {

// Crossing-scan dispatch: the W=4 entry point takes a type-erased emit
// callback (vector skip makes emissions rare, so the indirect call is
// off the hot path); W=1 runs the header template directly.
template <class Emit>
void scan_crossings_dispatch(WaveView w, double level, Emit&& emit) {
#if defined(WAVELETIC_HAVE_AVX2)
  if (active_lane_width() == 4) {
    using E = std::remove_reference_t<Emit>;
    detail::scan_crossings_w4(
        w, level, [](void* ctx, double t) { return (*static_cast<E*>(ctx))(t); },
        &emit);
    return;
  }
#endif
  scan_crossings(w, level, emit);
}

}  // namespace

// ---------------------------------------------------------------------------
// WaveView
// ---------------------------------------------------------------------------

double WaveView::at(double t) const noexcept {
  if (t <= time.front()) return value.front();
  if (t >= time.back()) return value.back();
  const auto it = std::upper_bound(time.begin(), time.end(), t);
  const size_t hi = static_cast<size_t>(it - time.begin());
  return detail::lerp_segment(time.data(), value.data(), hi - 1, hi, t);
}

// ---------------------------------------------------------------------------
// Batched kernels
// ---------------------------------------------------------------------------

void sample_into(WaveView wave, std::span<const double> ts,
                 std::span<double> out) {
  util::require(out.size() == ts.size(),
                "sample_into: output length ", out.size(),
                " != grid length ", ts.size());
  util::require(!wave.empty(), "sample_into: empty waveform");
  const size_t n = wave.size();
  const size_t m = ts.size();
  const double* t = wave.time.data();
  const double* v = wave.value.data();
  if (n == 1) {
    std::fill(out.begin(), out.end(), v[0]);
    return;
  }
  // Forward merge: queries are non-decreasing, so the segment cursor
  // only ever moves right — O(n + m) total.  The templated core lives
  // in kernels_lanes.hpp; W=4 gathers the segment endpoints and lerps
  // four queries per iteration, W=1 is the original scalar loop.
#if defined(WAVELETIC_HAVE_AVX2)
  if (active_lane_width() == 4) {
    detail::sample_core_w4(t, v, n, ts.data(), out.data(), m);
    return;
  }
#endif
  detail::sample_core<1>(t, v, n, ts.data(), out.data(), m);
}

void sample_times_into(double t0, double t1, std::span<double> out) {
  const size_t n = out.size();
  util::require(n >= 2, "sample_times_into: need >= 2 samples");
  util::require(t1 > t0, "sample_times_into: empty interval");
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
#if defined(WAVELETIC_HAVE_AVX2)
  if (active_lane_width() == 4) {
    detail::sample_times_core_w4(t0, dt, out.data(), n);
    return;
  }
#endif
  detail::sample_times_core<1>(t0, dt, out.data(), n);
}

void resample_into(WaveView wave, double t0, double t1,
                   std::span<double> t_out, std::span<double> v_out) {
  util::require(t_out.size() == v_out.size() && t_out.size() >= 2,
                "resample_into: need >= 2 matching output points");
  util::require(t1 > t0, "resample_into: empty interval [", t0, ", ", t1,
                "]");
  sample_times_into(t0, t1, t_out);
  sample_into(wave, t_out, v_out);
}

void derivative_into(WaveView wave, std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "derivative_into: length mismatch");
  const double* t = wave.time.data();
  const double* v = wave.value.data();
  if (n == 1) {
    out[0] = 0.0;
    return;
  }
  out[0] = (v[1] - v[0]) / (t[1] - t[0]);
  out[n - 1] = (v[n - 1] - v[n - 2]) / (t[n - 1] - t[n - 2]);
  for (size_t i = 1; i + 1 < n; ++i) {
    out[i] = (v[i + 1] - v[i - 1]) / (t[i + 1] - t[i - 1]);
  }
}

void smoothed_into(WaveView wave, size_t half_width, std::span<double> prefix,
                   std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "smoothed_into: output length mismatch");
  util::require(prefix.size() >= n + 1,
                "smoothed_into: prefix scratch needs size()+1 doubles");
  const double* v = wave.value.data();
  if (half_width == 0) {
    std::copy(v, v + n, out.begin());
    return;
  }
  prefix[0] = 0.0;
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + v[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = (i >= half_width) ? i - half_width : 0;
    const size_t hi = std::min(n - 1, i + half_width);
    out[i] = (prefix[hi + 1] - prefix[lo]) /
             static_cast<double>(hi - lo + 1);
  }
}

void flip_into(WaveView wave, double v_ref, std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "flip_into: length mismatch");
  const double* v = wave.value.data();
#if defined(WAVELETIC_HAVE_AVX2)
  if (active_lane_width() == 4) {
    detail::flip_core_w4(v_ref, v, out.data(), n);
    return;
  }
#endif
  detail::flip_core<1>(v_ref, v, out.data(), n);
}

size_t merge_grids(std::span<const double> a, std::span<const double> b,
                   std::span<double> out) noexcept {
  size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size()) {
    const double x = a[i];
    const double y = b[j];
    if (x < y) {
      out[k++] = x;
      ++i;
    } else if (y < x) {
      out[k++] = y;
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out[k++] = a[i++];
  while (j < b.size()) out[k++] = b[j++];
  return k;
}

WaveView combine_into(WaveView a, double ca, WaveView b, double cb,
                      Workspace& ws) {
  util::require(!a.empty() && !b.empty(), "combine_into: empty operand");
  const auto grid_buf = ws.alloc(a.size() + b.size());
  const size_t g = merge_grids(a.time, b.time, grid_buf);
  const auto grid = grid_buf.subspan(0, g);
  const auto va = ws.alloc(g);
  const auto vb = ws.alloc(g);
  const auto out = ws.alloc(g);
  sample_into(a, grid, va);
  sample_into(b, grid, vb);
#if defined(WAVELETIC_HAVE_AVX2)
  if (active_lane_width() == 4) {
    detail::axpby_core_w4(ca, va.data(), cb, vb.data(), out.data(), g);
    return WaveView(grid, out);
  }
#endif
  detail::axpby_core<1>(ca, va.data(), cb, vb.data(), out.data(), g);
  return WaveView(grid, out);
}

WaveView normalized_rising_view(WaveView wave, Polarity p, double vdd,
                                Workspace& ws) {
  if (p == Polarity::kRising) return wave;
  const auto flipped = ws.alloc(wave.size());
  flip_into(wave, vdd, flipped);
  return WaveView(wave.time, flipped);
}

WaveView shift_into(WaveView wave, double dt, Workspace& ws) {
  const auto t = ws.alloc(wave.size());
  for (size_t i = 0; i < wave.size(); ++i) t[i] = wave.time[i] + dt;
  return WaveView(t, wave.value);
}

// ---------------------------------------------------------------------------
// Crossing scans
// ---------------------------------------------------------------------------

std::optional<double> first_crossing(WaveView w, double level) {
  std::optional<double> out;
  scan_crossings_dispatch(w, level, [&](double t) {
    out = t;
    return false;  // stop after the first emission
  });
  return out;
}

std::optional<double> last_crossing(WaveView w, double level) {
  std::optional<double> out;
  scan_crossings_dispatch(w, level, [&](double t) {
    out = t;
    return true;
  });
  return out;
}

size_t crossing_count(WaveView w, double level) {
  size_t n = 0;
  scan_crossings_dispatch(w, level, [&](double) {
    ++n;
    return true;
  });
  return n;
}

std::span<double> crossings_into(WaveView w, double level, Workspace& ws) {
  // A record of n samples emits at most one crossing per segment plus
  // the final-sample rule.
  const auto buf = ws.alloc(w.size() + 1);
  size_t n = 0;
  scan_crossings_dispatch(w, level, [&](double t) {
    buf[n++] = t;
    return true;
  });
  return buf.subspan(0, n);
}

}  // namespace waveletic::wave
