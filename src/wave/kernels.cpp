#include "wave/kernels.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace waveletic::wave {

// ---------------------------------------------------------------------------
// WaveView
// ---------------------------------------------------------------------------

double WaveView::at(double t) const noexcept {
  if (t <= time.front()) return value.front();
  if (t >= time.back()) return value.back();
  const auto it = std::upper_bound(time.begin(), time.end(), t);
  const size_t hi = static_cast<size_t>(it - time.begin());
  return detail::lerp_segment(time.data(), value.data(), hi - 1, hi, t);
}

// ---------------------------------------------------------------------------
// Batched kernels
// ---------------------------------------------------------------------------

void sample_into(WaveView wave, std::span<const double> ts,
                 std::span<double> out) {
  util::require(out.size() == ts.size(),
                "sample_into: output length ", out.size(),
                " != grid length ", ts.size());
  util::require(!wave.empty(), "sample_into: empty waveform");
  const size_t n = wave.size();
  const size_t m = ts.size();
  const double* t = wave.time.data();
  const double* v = wave.value.data();
  if (n == 1) {
    std::fill(out.begin(), out.end(), v[0]);
    return;
  }
  const double t_front = t[0];
  const double t_back = t[n - 1];
  const double v_front = v[0];
  const double v_back = v[n - 1];

  // Forward merge: queries are non-decreasing, so the segment cursor
  // only ever moves right — O(n + m) total, and the advance needs a
  // single comparison because t[n-1] = t_back bounds the scan for every
  // interior query.  The low-clamp correction is a select.
  size_t hi = 1;
  size_t k = 0;
  for (; k < m; ++k) {
    const double x = ts[k];
    if (x >= t_back) break;  // the sorted tail clamps flat, below
    while (t[hi] <= x) ++hi;
    const double r = detail::lerp_segment(t, v, hi - 1, hi, x);
    out[k] = (x <= t_front) ? v_front : r;
  }
  for (; k < m; ++k) out[k] = v_back;
}

void sample_times_into(double t0, double t1, std::span<double> out) {
  const size_t n = out.size();
  util::require(n >= 2, "sample_times_into: need >= 2 samples");
  util::require(t1 > t0, "sample_times_into: empty interval");
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
  for (size_t k = 0; k < n; ++k) {
    out[k] = t0 + dt * static_cast<double>(k);
  }
}

void resample_into(WaveView wave, double t0, double t1,
                   std::span<double> t_out, std::span<double> v_out) {
  util::require(t_out.size() == v_out.size() && t_out.size() >= 2,
                "resample_into: need >= 2 matching output points");
  util::require(t1 > t0, "resample_into: empty interval [", t0, ", ", t1,
                "]");
  sample_times_into(t0, t1, t_out);
  sample_into(wave, t_out, v_out);
}

void derivative_into(WaveView wave, std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "derivative_into: length mismatch");
  const double* t = wave.time.data();
  const double* v = wave.value.data();
  if (n == 1) {
    out[0] = 0.0;
    return;
  }
  out[0] = (v[1] - v[0]) / (t[1] - t[0]);
  out[n - 1] = (v[n - 1] - v[n - 2]) / (t[n - 1] - t[n - 2]);
  for (size_t i = 1; i + 1 < n; ++i) {
    out[i] = (v[i + 1] - v[i - 1]) / (t[i + 1] - t[i - 1]);
  }
}

void smoothed_into(WaveView wave, size_t half_width, std::span<double> prefix,
                   std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "smoothed_into: output length mismatch");
  util::require(prefix.size() >= n + 1,
                "smoothed_into: prefix scratch needs size()+1 doubles");
  const double* v = wave.value.data();
  if (half_width == 0) {
    std::copy(v, v + n, out.begin());
    return;
  }
  prefix[0] = 0.0;
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + v[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = (i >= half_width) ? i - half_width : 0;
    const size_t hi = std::min(n - 1, i + half_width);
    out[i] = (prefix[hi + 1] - prefix[lo]) /
             static_cast<double>(hi - lo + 1);
  }
}

void flip_into(WaveView wave, double v_ref, std::span<double> out) {
  const size_t n = wave.size();
  util::require(out.size() == n, "flip_into: length mismatch");
  const double* v = wave.value.data();
  for (size_t i = 0; i < n; ++i) out[i] = v_ref - v[i];
}

size_t merge_grids(std::span<const double> a, std::span<const double> b,
                   std::span<double> out) noexcept {
  size_t i = 0, j = 0, k = 0;
  while (i < a.size() && j < b.size()) {
    const double x = a[i];
    const double y = b[j];
    if (x < y) {
      out[k++] = x;
      ++i;
    } else if (y < x) {
      out[k++] = y;
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out[k++] = a[i++];
  while (j < b.size()) out[k++] = b[j++];
  return k;
}

WaveView combine_into(WaveView a, double ca, WaveView b, double cb,
                      Workspace& ws) {
  util::require(!a.empty() && !b.empty(), "combine_into: empty operand");
  const auto grid_buf = ws.alloc(a.size() + b.size());
  const size_t g = merge_grids(a.time, b.time, grid_buf);
  const auto grid = grid_buf.subspan(0, g);
  const auto va = ws.alloc(g);
  const auto vb = ws.alloc(g);
  const auto out = ws.alloc(g);
  sample_into(a, grid, va);
  sample_into(b, grid, vb);
  for (size_t i = 0; i < g; ++i) {
    out[i] = ca * va[i] + cb * vb[i];
  }
  return WaveView(grid, out);
}

WaveView normalized_rising_view(WaveView wave, Polarity p, double vdd,
                                Workspace& ws) {
  if (p == Polarity::kRising) return wave;
  const auto flipped = ws.alloc(wave.size());
  flip_into(wave, vdd, flipped);
  return WaveView(wave.time, flipped);
}

WaveView shift_into(WaveView wave, double dt, Workspace& ws) {
  const auto t = ws.alloc(wave.size());
  for (size_t i = 0; i < wave.size(); ++i) t[i] = wave.time[i] + dt;
  return WaveView(t, wave.value);
}

// ---------------------------------------------------------------------------
// Crossing scans
// ---------------------------------------------------------------------------

std::optional<double> first_crossing(WaveView w, double level) {
  std::optional<double> out;
  scan_crossings(w, level, [&](double t) {
    out = t;
    return false;  // stop after the first emission
  });
  return out;
}

std::optional<double> last_crossing(WaveView w, double level) {
  std::optional<double> out;
  scan_crossings(w, level, [&](double t) {
    out = t;
    return true;
  });
  return out;
}

size_t crossing_count(WaveView w, double level) {
  size_t n = 0;
  scan_crossings(w, level, [&](double) {
    ++n;
    return true;
  });
  return n;
}

std::span<double> crossings_into(WaveView w, double level, Workspace& ws) {
  // A record of n samples emits at most one crossing per segment plus
  // the final-sample rule.
  const auto buf = ws.alloc(w.size() + 1);
  size_t n = 0;
  scan_crossings(w, level, [&](double t) {
    buf[n++] = t;
    return true;
  });
  return buf.subspan(0, n);
}

}  // namespace waveletic::wave
