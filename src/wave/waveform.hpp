#pragma once

/// \file waveform.hpp
/// Sampled voltage waveform v(t) on a strictly increasing time grid.
/// This is the lingua franca of the library: the transient simulator
/// produces Waveforms, the equivalent-waveform techniques consume them,
/// and the experiment harness measures crossings on them.
///
/// Between samples the waveform is linear; outside the grid it extends
/// flat (first/last value).  That matches how the techniques in the
/// paper treat sampled Hspice output.

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace waveletic::wave {

/// Transition direction of a switching signal.
enum class Polarity { kRising, kFalling };

/// Returns the opposite direction (an inverting gate flips polarity).
[[nodiscard]] constexpr Polarity flip(Polarity p) noexcept {
  return p == Polarity::kRising ? Polarity::kFalling : Polarity::kRising;
}

[[nodiscard]] const char* to_string(Polarity p) noexcept;

class Waveform {
 public:
  Waveform() = default;

  /// Takes ownership of the sample arrays.  `time` must be strictly
  /// increasing and the arrays equal length (≥ 1); throws util::Error
  /// otherwise.
  Waveform(std::vector<double> time, std::vector<double> value);

  [[nodiscard]] size_t size() const noexcept { return time_.size(); }
  [[nodiscard]] bool empty() const noexcept { return time_.empty(); }

  [[nodiscard]] std::span<const double> times() const noexcept {
    return time_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return value_;
  }
  [[nodiscard]] double time(size_t i) const noexcept { return time_[i]; }
  [[nodiscard]] double value(size_t i) const noexcept { return value_[i]; }

  [[nodiscard]] double t_begin() const noexcept { return time_.front(); }
  [[nodiscard]] double t_end() const noexcept { return time_.back(); }

  /// Linear interpolation; clamps outside the grid.
  [[nodiscard]] double at(double t) const noexcept;

  /// Numerical derivative dv/dt (central differences, one-sided at the
  /// ends), on the same time grid.
  [[nodiscard]] Waveform derivative() const;

  /// All times where the waveform crosses `level`, in increasing order.
  /// A sample exactly equal to `level` counts once — including a record
  /// that *ends* on the level: the final sample is only emitted when
  /// the penultimate sample sits off-level (a flat tail resting on the
  /// level is one touch, not two).  Linear interpolation inside
  /// segments.  Implemented on wave::scan_crossings (kernels.hpp), the
  /// single shared crossing walk.
  [[nodiscard]] std::vector<double> crossings(double level) const;

  /// First/last crossing of `level`; nullopt when never crossed.
  [[nodiscard]] std::optional<double> first_crossing(double level) const;
  [[nodiscard]] std::optional<double> last_crossing(double level) const;

  /// Uniform resampling with n points across [t0, t1].
  [[nodiscard]] Waveform resampled(double t0, double t1, size_t n) const;

  /// Sub-waveform restricted to [t0, t1] (end points interpolated in).
  [[nodiscard]] Waveform window(double t0, double t1) const;

  /// Time-shifted copy: returned waveform satisfies w'(t + dt) = w(t).
  [[nodiscard]] Waveform shifted(double dt) const;

  /// Voltage-flipped copy v → (v_ref − v); with v_ref = Vdd this maps a
  /// falling transition onto an equivalent rising one, which is how the
  /// techniques normalize polarity.
  [[nodiscard]] Waveform flipped(double v_ref) const;

  /// Returns a copy normalized to a rising transition: identity for
  /// rising polarity, flipped(vdd) for falling.
  [[nodiscard]] Waveform normalized_rising(Polarity p, double vdd) const;

  /// Boxcar smoothing with a centered window of `half_width` samples on
  /// each side (half_width = 0 returns a copy).
  [[nodiscard]] Waveform smoothed(size_t half_width) const;

  [[nodiscard]] double min_value() const noexcept;
  [[nodiscard]] double max_value() const noexcept;

  /// True when values are non-decreasing (within `tol`).
  [[nodiscard]] bool is_monotone_rising(double tol = 0.0) const noexcept;

  /// Trapezoidal integral of (v(t) − baseline) over the full grid.
  [[nodiscard]] double integral(double baseline = 0.0) const noexcept;

  /// Builds a saturated linear ramp sampled with `n` points: rises from
  /// `v_lo` to `v_hi`, crossing (v_lo+v_hi)/2 at `t_mid`, with 0%–100%
  /// transition time `t_transition`.  Flat margins of one transition
  /// time are added on each side.
  [[nodiscard]] static Waveform linear_ramp(double t_mid, double t_transition,
                                            double v_lo, double v_hi,
                                            size_t n = 64);

  /// CSV I/O ("t,v" header + rows), used by the figure benches.
  void write_csv(const std::string& path, const std::string& label) const;
  [[nodiscard]] static Waveform read_csv(const std::string& path);

 private:
  std::vector<double> time_;
  std::vector<double> value_;
};

/// Pointwise combination on the union grid of a and b:
/// out(t) = a(t)*ca + b(t)*cb (each side interpolated/clamped).
[[nodiscard]] Waveform combine(const Waveform& a, double ca, const Waveform& b,
                               double cb);

}  // namespace waveletic::wave
