#pragma once

/// \file ramp.hpp
/// Saturated linear ramp — the Γeff of the paper.  A ramp is the line
/// v(t) = a·t + b clipped to the supply rails [0, vdd].  Every
/// equivalent-waveform technique returns one of these; STA consumes it
/// as (arrival time, slew).

#include <string>

#include "wave/waveform.hpp"

namespace waveletic::wave {

/// Γeff: v(t) = clamp(a·t + b, 0, vdd).
///
/// Convention: ramps are stored *rising-normalized* (a > 0).  A falling
/// transition is represented by its flipped twin plus Polarity carried
/// alongside by callers; `denormalized()` maps back.
class Ramp {
 public:
  Ramp() = default;

  /// Direct coefficient construction; requires a > 0 and vdd > 0.
  Ramp(double a, double b, double vdd);

  /// Builds from STA quantities: the time of the 50% crossing and the
  /// low%-to-high% transition time (measured between `frac_lo`·vdd and
  /// `frac_hi`·vdd, default 10%/90% as in the paper).
  [[nodiscard]] static Ramp from_arrival_slew(double t50, double slew,
                                              double vdd,
                                              double frac_lo = 0.1,
                                              double frac_hi = 0.9);

  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] double b() const noexcept { return b_; }
  [[nodiscard]] double vdd() const noexcept { return vdd_; }

  /// Clamped evaluation.
  [[nodiscard]] double at(double t) const noexcept;

  /// Time at which the unclamped line reaches voltage v.
  [[nodiscard]] double time_at(double v) const noexcept;

  /// 50% crossing time (the STA arrival).
  [[nodiscard]] double t50() const noexcept { return time_at(0.5 * vdd_); }

  /// Transition time between frac_lo·vdd and frac_hi·vdd.
  [[nodiscard]] double slew(double frac_lo = 0.1,
                            double frac_hi = 0.9) const noexcept;

  /// Time span over which the ramp traverses [0, vdd] fully.
  [[nodiscard]] double t_start() const noexcept { return time_at(0.0); }
  [[nodiscard]] double t_full() const noexcept { return time_at(vdd_); }

  /// Samples the clamped ramp as a Waveform with margins, suitable for
  /// driving the transient simulator.
  [[nodiscard]] Waveform sampled(size_t n = 128) const;

  /// Destination-buffer variant of sampled(): writes the grid/values
  /// into `t`/`v` (equal length ≥ 2) without allocating.  Bitwise
  /// identical to sampled(t.size()).
  void sampled_into(std::span<double> t, std::span<double> v) const noexcept;

  /// Destination-buffer variant of denormalized(): sampled_into plus an
  /// in-place polarity flip for falling.  Bitwise identical to
  /// denormalized(p, t.size()).
  void denormalized_into(Polarity p, std::span<double> t,
                         std::span<double> v) const noexcept;

  /// Time-shifted copy (t50 moves by dt).
  [[nodiscard]] Ramp shifted(double dt) const { return {a_, b_ - a_ * dt, vdd_}; }

  /// Maps the rising-normalized ramp back to `p`: identity for rising;
  /// for falling returns the waveform mirror (descends vdd → 0 at the
  /// same times the normalized ramp ascends).
  [[nodiscard]] Waveform denormalized(Polarity p, size_t n = 128) const;

  [[nodiscard]] std::string describe() const;

 private:
  double a_ = 1.0;   // V/s, > 0
  double b_ = 0.0;   // V at t = 0 of the unclamped line
  double vdd_ = 1.0; // V
};

}  // namespace waveletic::wave
