#include "wave/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::wave {

double level_for(Polarity p, double frac, double vdd) noexcept {
  return p == Polarity::kRising ? frac * vdd : (1.0 - frac) * vdd;
}

std::optional<double> arrival_50(WaveView w, Polarity p, double vdd) {
  return last_crossing(w, level_for(p, 0.5, vdd));
}

std::optional<double> arrival_50(const Waveform& w, Polarity p, double vdd) {
  return arrival_50(WaveView(w), p, vdd);
}

std::optional<double> first_arrival_50(WaveView w, Polarity p, double vdd) {
  return first_crossing(w, level_for(p, 0.5, vdd));
}

std::optional<double> first_arrival_50(const Waveform& w, Polarity p,
                                       double vdd) {
  return first_arrival_50(WaveView(w), p, vdd);
}

std::optional<double> slew_noisy(WaveView w, Polarity p, double vdd,
                                 const Thresholds& th) {
  const auto lo = first_crossing(w, level_for(p, th.low, vdd));
  const auto hi = last_crossing(w, level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return *hi - *lo;
}

std::optional<double> slew_noisy(const Waveform& w, Polarity p, double vdd,
                                 const Thresholds& th) {
  return slew_noisy(WaveView(w), p, vdd, th);
}

std::optional<double> slew_clean(WaveView w, Polarity p, double vdd,
                                 const Thresholds& th) {
  const auto lo = first_crossing(w, level_for(p, th.low, vdd));
  const auto hi = first_crossing(w, level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return *hi - *lo;
}

std::optional<double> slew_clean(const Waveform& w, Polarity p, double vdd,
                                 const Thresholds& th) {
  return slew_clean(WaveView(w), p, vdd, th);
}

std::optional<double> gate_delay_50(const Waveform& input, Polarity in_pol,
                                    const Waveform& output, Polarity out_pol,
                                    double vdd) {
  const auto t_in = arrival_50(input, in_pol, vdd);
  const auto t_out = arrival_50(output, out_pol, vdd);
  if (!t_in || !t_out) return std::nullopt;
  return *t_out - *t_in;
}

size_t crossing_count_50(const Waveform& w, double vdd) {
  return crossing_count(WaveView(w), 0.5 * vdd);
}

Excursions rail_excursions(const Waveform& w, double vdd) {
  Excursions e;
  e.overshoot = std::max(0.0, w.max_value() - vdd);
  e.undershoot = std::max(0.0, -w.min_value());
  return e;
}

double rms_difference(const Waveform& a, const Waveform& b, double t0,
                      double t1, size_t n) {
  util::require(t1 > t0 && n >= 2, "rms_difference: bad window");
  // Two merge scans instead of 2·n binary searches; the accumulation
  // keeps the scalar fold order.
  std::vector<double> t(n), va(n), vb(n);
  sample_times_into(t0, t1, t);
  sample_into(a, t, va);
  sample_into(b, t, vb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = va[i] - vb[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

std::optional<CriticalRegion> noisy_critical_region(WaveView w, Polarity p,
                                                    double vdd,
                                                    const Thresholds& th) {
  const auto lo = first_crossing(w, level_for(p, th.low, vdd));
  const auto hi = last_crossing(w, level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return CriticalRegion{*lo, *hi};
}

std::optional<CriticalRegion> noisy_critical_region(const Waveform& w,
                                                    Polarity p, double vdd,
                                                    const Thresholds& th) {
  return noisy_critical_region(WaveView(w), p, vdd, th);
}

std::optional<CriticalRegion> noiseless_critical_region(WaveView w,
                                                        Polarity p, double vdd,
                                                        const Thresholds& th) {
  const auto lo = first_crossing(w, level_for(p, th.low, vdd));
  const auto hi = first_crossing(w, level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return CriticalRegion{*lo, *hi};
}

std::optional<CriticalRegion> noiseless_critical_region(const Waveform& w,
                                                        Polarity p, double vdd,
                                                        const Thresholds& th) {
  return noiseless_critical_region(WaveView(w), p, vdd, th);
}

std::optional<CriticalRegion> arrival_event_region(WaveView w, Polarity p,
                                                   double vdd,
                                                   const Thresholds& th,
                                                   double completion_frac) {
  const auto mid_opt = last_crossing(w, level_for(p, 0.5, vdd));
  if (!mid_opt) return std::nullopt;
  const double mid = *mid_opt;

  // Last low crossing at or before the event; the first low crossing
  // overall when the waveform never returns below the low threshold.
  bool any_low = false;
  double first_low = 0.0;
  bool has_le_mid = false;
  double last_le_mid = 0.0;
  scan_crossings(w, level_for(p, th.low, vdd), [&](double t) {
    if (!any_low) {
      any_low = true;
      first_low = t;
    }
    if (t <= mid) {
      has_le_mid = true;
      last_le_mid = t;
    }
    return true;
  });
  if (!any_low) return std::nullopt;
  const double t_lo = has_le_mid ? last_le_mid : first_low;

  // Note on re-crossing waveforms: when the record holds several 50%
  // crossings the window deliberately spans *all* of them (from the low
  // crossing before the last event back through the earlier events).
  // Whether the receiving gate actually responds to a marginal re-cross
  // depends on its switching threshold, which only the sensitivity
  // weighting knows — so event selection is left to the weighted fit
  // rather than decided geometrically here.

  double t_hi = w.t_end();
  scan_crossings(w, level_for(p, completion_frac, vdd), [&](double t) {
    if (t >= mid) {  // first completion crossing after the event
      t_hi = t;
      return false;
    }
    return true;
  });
  if (t_hi <= t_lo) return std::nullopt;
  return CriticalRegion{t_lo, t_hi};
}

std::optional<CriticalRegion> arrival_event_region(const Waveform& w,
                                                   Polarity p, double vdd,
                                                   const Thresholds& th,
                                                   double completion_frac) {
  return arrival_event_region(WaveView(w), p, vdd, th, completion_frac);
}

}  // namespace waveletic::wave
