#include "wave/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::wave {

double level_for(Polarity p, double frac, double vdd) noexcept {
  return p == Polarity::kRising ? frac * vdd : (1.0 - frac) * vdd;
}

std::optional<double> arrival_50(const Waveform& w, Polarity p, double vdd) {
  return w.last_crossing(level_for(p, 0.5, vdd));
}

std::optional<double> first_arrival_50(const Waveform& w, Polarity p,
                                       double vdd) {
  return w.first_crossing(level_for(p, 0.5, vdd));
}

std::optional<double> slew_noisy(const Waveform& w, Polarity p, double vdd,
                                 const Thresholds& th) {
  const auto lo = w.first_crossing(level_for(p, th.low, vdd));
  const auto hi = w.last_crossing(level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return *hi - *lo;
}

std::optional<double> slew_clean(const Waveform& w, Polarity p, double vdd,
                                 const Thresholds& th) {
  const auto lo = w.first_crossing(level_for(p, th.low, vdd));
  const auto hi = w.first_crossing(level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return *hi - *lo;
}

std::optional<double> gate_delay_50(const Waveform& input, Polarity in_pol,
                                    const Waveform& output, Polarity out_pol,
                                    double vdd) {
  const auto t_in = arrival_50(input, in_pol, vdd);
  const auto t_out = arrival_50(output, out_pol, vdd);
  if (!t_in || !t_out) return std::nullopt;
  return *t_out - *t_in;
}

size_t crossing_count_50(const Waveform& w, double vdd) {
  return w.crossings(0.5 * vdd).size();
}

Excursions rail_excursions(const Waveform& w, double vdd) {
  Excursions e;
  e.overshoot = std::max(0.0, w.max_value() - vdd);
  e.undershoot = std::max(0.0, -w.min_value());
  return e;
}

double rms_difference(const Waveform& a, const Waveform& b, double t0,
                      double t1, size_t n) {
  util::require(t1 > t0 && n >= 2, "rms_difference: bad window");
  double acc = 0.0;
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    const double t = t0 + dt * static_cast<double>(i);
    const double d = a.at(t) - b.at(t);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

std::optional<CriticalRegion> noisy_critical_region(const Waveform& w,
                                                    Polarity p, double vdd,
                                                    const Thresholds& th) {
  const auto lo = w.first_crossing(level_for(p, th.low, vdd));
  const auto hi = w.last_crossing(level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return CriticalRegion{*lo, *hi};
}

std::optional<CriticalRegion> noiseless_critical_region(const Waveform& w,
                                                        Polarity p, double vdd,
                                                        const Thresholds& th) {
  const auto lo = w.first_crossing(level_for(p, th.low, vdd));
  const auto hi = w.first_crossing(level_for(p, th.high, vdd));
  if (!lo || !hi || *hi <= *lo) return std::nullopt;
  return CriticalRegion{*lo, *hi};
}

std::optional<CriticalRegion> arrival_event_region(const Waveform& w,
                                                   Polarity p, double vdd,
                                                   const Thresholds& th,
                                                   double completion_frac) {
  const auto mids = w.crossings(level_for(p, 0.5, vdd));
  if (mids.empty()) return std::nullopt;
  const double mid = mids.back();

  const auto lows = w.crossings(level_for(p, th.low, vdd));
  if (lows.empty()) return std::nullopt;
  double t_lo = lows.front();
  for (double t : lows) {
    if (t <= mid) t_lo = t;  // last low crossing before the event
  }
  if (t_lo > mid) t_lo = lows.front();

  // Note on re-crossing waveforms: when the record holds several 50%
  // crossings the window deliberately spans *all* of them (from the low
  // crossing before the last event back through the earlier events).
  // Whether the receiving gate actually responds to a marginal re-cross
  // depends on its switching threshold, which only the sensitivity
  // weighting knows — so event selection is left to the weighted fit
  // rather than decided geometrically here.

  double t_hi = w.t_end();
  for (double t : w.crossings(level_for(p, completion_frac, vdd))) {
    if (t >= mid) {  // first completion crossing after the event
      t_hi = t;
      break;
    }
  }
  if (t_hi <= t_lo) return std::nullopt;
  return CriticalRegion{t_lo, t_hi};
}

}  // namespace waveletic::wave
