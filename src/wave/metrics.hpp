#pragma once

/// \file metrics.hpp
/// Timing measurements on waveforms: the quantities the paper's Table 1
/// is built from (50% arrivals, 10/90 slews, gate delays) plus general
/// waveform diagnostics used by tests.

#include <optional>

#include "wave/kernels.hpp"
#include "wave/waveform.hpp"

namespace waveletic::wave {

/// Threshold set, as fractions of vdd.  The paper uses 10%/50%/90%.
struct Thresholds {
  double low = 0.1;
  double mid = 0.5;
  double high = 0.9;
};

/// Level crossed by a transition of polarity `p` when the *logical*
/// progress fraction is `frac` (e.g. frac=0.1 of a falling edge is the
/// 0.9·vdd voltage level).
[[nodiscard]] double level_for(Polarity p, double frac, double vdd) noexcept;

/// Latest crossing of the 50% level — the paper's arrival-time
/// convention for noisy waveforms.  nullopt if the level is never hit.
[[nodiscard]] std::optional<double> arrival_50(const Waveform& w, Polarity p,
                                               double vdd);

/// Earliest 50% crossing (used by tests and the optimism analysis).
[[nodiscard]] std::optional<double> first_arrival_50(const Waveform& w,
                                                     Polarity p, double vdd);

/// Transition time between thresholds.low and thresholds.high measured
/// on the *noisy* waveform: earliest low-crossing to latest
/// high-crossing (logical fractions, so falling edges measure 0.9→0.1).
/// This matches the P2 definition in the paper.
[[nodiscard]] std::optional<double> slew_noisy(const Waveform& w, Polarity p,
                                               double vdd,
                                               const Thresholds& th = {});

/// Transition time measured on a clean monotone waveform: first
/// low-crossing to first high-crossing.
[[nodiscard]] std::optional<double> slew_clean(const Waveform& w, Polarity p,
                                               double vdd,
                                               const Thresholds& th = {});

/// Gate delay between an input and output waveform: latest input 50%
/// crossing to latest output 50% crossing (paper §4.1).  Polarity of
/// each side is given separately (inverting gates flip).
[[nodiscard]] std::optional<double> gate_delay_50(
    const Waveform& input, Polarity in_pol, const Waveform& output,
    Polarity out_pol, double vdd);

/// Number of times the waveform crosses the 50% level — the paper links
/// this count to E4's pessimism.
[[nodiscard]] size_t crossing_count_50(const Waveform& w, double vdd);

/// Largest excursion above vdd / below 0 (overshoot / undershoot).
struct Excursions {
  double overshoot = 0.0;   ///< max(v) − vdd when positive
  double undershoot = 0.0;  ///< −min(v) when positive
};
[[nodiscard]] Excursions rail_excursions(const Waveform& w, double vdd);

/// RMS difference between two waveforms over [t0, t1] with n samples.
[[nodiscard]] double rms_difference(const Waveform& a, const Waveform& b,
                                    double t0, double t1, size_t n = 256);

/// The noisy critical region of the paper: time of the first crossing of
/// the low threshold to the last crossing of the high threshold
/// (logical fractions).  nullopt when the waveform never completes the
/// transition.
struct CriticalRegion {
  double t_first = 0.0;
  double t_last = 0.0;
};
[[nodiscard]] std::optional<CriticalRegion> noisy_critical_region(
    const Waveform& w, Polarity p, double vdd, const Thresholds& th = {});

/// The noiseless critical region: first low to first high crossing of a
/// clean monotone waveform.
[[nodiscard]] std::optional<CriticalRegion> noiseless_critical_region(
    const Waveform& w, Polarity p, double vdd, const Thresholds& th = {});

/// The *arrival event* region: the window around the transition that
/// determines the STA arrival (the latest mid-level crossing).  It runs
/// from the last low-threshold crossing before the latest 50% crossing
/// (or the first low crossing overall when the waveform never returns
/// below the low threshold) to the first crossing of the *completion*
/// level after it (or the end of the record).  Unlike
/// noisy_critical_region this excludes post-transition glitch tails
/// that hover between the mid level and the rail without re-crossing
/// 50% — those cannot change the arrival, and sampling them would let
/// the tail dominate a Γeff fit.  The completion level sits below the
/// 90% threshold (default 80%) because far-end waveforms crawl toward
/// the rail slowly and may not have reached 90% before a late glitch
/// begins.
[[nodiscard]] std::optional<CriticalRegion> arrival_event_region(
    const Waveform& w, Polarity p, double vdd, const Thresholds& th = {},
    double completion_frac = 0.8);

// ---------------------------------------------------------------------------
// WaveView overloads — allocation-free primaries.  The Waveform
// overloads above are thin forwarding wrappers, so both produce bitwise
// identical results (kernels.hpp's scan_crossings is the single
// crossing algorithm).
// ---------------------------------------------------------------------------

[[nodiscard]] std::optional<double> arrival_50(WaveView w, Polarity p,
                                               double vdd);
[[nodiscard]] std::optional<double> first_arrival_50(WaveView w, Polarity p,
                                                     double vdd);
[[nodiscard]] std::optional<double> slew_noisy(WaveView w, Polarity p,
                                               double vdd,
                                               const Thresholds& th = {});
[[nodiscard]] std::optional<double> slew_clean(WaveView w, Polarity p,
                                               double vdd,
                                               const Thresholds& th = {});
[[nodiscard]] std::optional<CriticalRegion> noisy_critical_region(
    WaveView w, Polarity p, double vdd, const Thresholds& th = {});
[[nodiscard]] std::optional<CriticalRegion> noiseless_critical_region(
    WaveView w, Polarity p, double vdd, const Thresholds& th = {});
[[nodiscard]] std::optional<CriticalRegion> arrival_event_region(
    WaveView w, Polarity p, double vdd, const Thresholds& th = {},
    double completion_frac = 0.8);

}  // namespace waveletic::wave
