#pragma once

/// \file lanes.hpp
/// Lane-width-agnostic SIMD primitive layer underneath the batched
/// waveform kernels and the lane-block sweep engine.
///
/// `Lane<W>` exposes one fixed vocabulary — load / store / broadcast /
/// gather / arithmetic / ordered compares / blend-select / exact
/// `std::min`-`std::max` replicas / the shared `lerp` formula — over W
/// adjacent IEEE doubles.  `Lane<1>` is plain scalar code and is the
/// bitwise ORACLE: every templated kernel or engine body instantiated
/// at W=1 compiles to exactly the pre-lane scalar loops.  `Lane<4>` is
/// AVX2 and is only defined inside translation units compiled with
/// `-mavx2` (the `*_avx2.cpp` TUs); all other code talks to it through
/// the runtime-dispatch glue below.
///
/// Determinism contract (why W=4 is bitwise identical to W=1):
///  - every lane is an independent scalar fold — vertical SIMD only,
///    never a horizontal reduction, so no reassociation can occur;
///  - AVX2 double arithmetic (`vaddpd`/`vsubpd`/`vmulpd`/`vdivpd`) is
///    IEEE-754 correctly rounded per lane, i.e. the same function as
///    the scalar instruction;
///  - multiply-add chains stay separate mul + add ops.  The AVX2 TUs
///    are built WITHOUT `-mfma` and with `-ffp-contract=off`, so the
///    compiler cannot fuse them behind our back;
///  - compares use the ordered-quiet predicates (`_CMP_LT_OQ` & co.),
///    matching the semantics of the scalar `<`, `<=`, `>`, `>=`, `==`
///    on NaN inputs exactly.

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace waveletic::wave {

// ---------------------------------------------------------------------------
// Runtime dispatch glue (defined in lanes.cpp; ISA-independent).
// ---------------------------------------------------------------------------

/// Widest lane count compiled into this binary: 4 when the AVX2
/// translation units were built (`WAVELETIC_AVX2=ON` and the compiler
/// accepts `-mavx2`), otherwise 1.
[[nodiscard]] int compiled_lane_width() noexcept;

/// Lane count the kernel/engine dispatchers select right now:
/// the forced width if `force_lane_width` set one, else
/// `compiled_lane_width()` clamped by what the CPU actually supports
/// (AVX2 is probed once at startup).  Always 1 or 4.
[[nodiscard]] int active_lane_width() noexcept;

/// True when width `w` can execute on this build + CPU.  Width 1 is
/// always available.
[[nodiscard]] bool lane_width_available(int w) noexcept;

/// Test/bench override for A/B comparisons: `force_lane_width(1)` pins
/// the scalar path, `force_lane_width(4)` pins AVX2 (throws
/// `util::Error` when unavailable), `force_lane_width(0)` restores
/// automatic selection.  Takes effect atomically for subsequent kernel
/// calls; not intended for concurrent toggling mid-kernel.
void force_lane_width(int w);

/// RAII guard around `force_lane_width`: forces `w` on construction,
/// restores automatic selection on destruction.  Test/bench helper.
class LaneWidthGuard {
 public:
  /// Forces width `w` for the guard's lifetime.
  explicit LaneWidthGuard(int w) { force_lane_width(w); }
  /// Restores automatic width selection.
  ~LaneWidthGuard() { force_lane_width(0); }
  LaneWidthGuard(const LaneWidthGuard&) = delete;
  LaneWidthGuard& operator=(const LaneWidthGuard&) = delete;
};

// ---------------------------------------------------------------------------
// The primitive vocabulary.
// ---------------------------------------------------------------------------

/// Primary template — only the widths below are defined.  `Lane<W>::D`
/// holds W doubles, `Lane<W>::M` a per-lane boolean mask; every op is
/// the scalar IEEE operation applied lane-wise.
template <int W>
struct Lane;

/// Scalar instantiation: `D` is `double`, `M` is `bool`, every op is
/// the literal scalar expression.  This is the oracle the wide widths
/// must match bitwise, and the fallback on non-AVX2 builds/CPUs.
template <>
struct Lane<1> {
  /// Number of doubles per vector.
  static constexpr int width = 1;
  /// Vector of `width` doubles.
  using D = double;
  /// Per-lane boolean mask.
  using M = bool;

  /// Loads `width` consecutive doubles from `p` (no alignment needed).
  static D load(const double* p) noexcept { return *p; }
  /// Stores `width` consecutive doubles to `p` (no alignment needed).
  static void store(double* p, D x) noexcept { *p = x; }
  /// Replicates `x` into every lane.
  static D broadcast(double x) noexcept { return x; }
  /// The per-lane offsets {0, 1, …, width−1} as doubles.
  static D step() noexcept { return 0.0; }
  /// Per-lane indexed load: lane j reads `base[idx[j]]` (`idx` holds
  /// `width` int32 indices).
  static D gather(const double* base, const int32_t* idx) noexcept {
    return base[idx[0]];
  }
  /// Per-lane adjacent-pair load: lane j of `lo` reads `base[idx[j]]`,
  /// lane j of `hi` reads `base[idx[j] + 1]`.  Interpolation kernels
  /// always touch `(lo, lo+1)` index pairs, and contiguous pair loads
  /// plus an in-register transpose beat two dependent gathers on every
  /// AVX2 part we target — the loads are exact, so this is a pure
  /// scheduling change with no bitwise effect.
  static void load_pair(const double* base, const int32_t* idx, D& lo,
                        D& hi) noexcept {
    lo = base[idx[0]];
    hi = base[idx[0] + 1];
  }

  /// Lane-wise IEEE addition.
  static D add(D a, D b) noexcept { return a + b; }
  /// Lane-wise IEEE subtraction.
  static D sub(D a, D b) noexcept { return a - b; }
  /// Lane-wise IEEE multiplication.
  static D mul(D a, D b) noexcept { return a * b; }
  /// Lane-wise IEEE division.
  static D div(D a, D b) noexcept { return a / b; }

  /// Lane-wise `a < b` (false on NaN, like the scalar operator).
  static M lt(D a, D b) noexcept { return a < b; }
  /// Lane-wise `a <= b` (false on NaN).
  static M le(D a, D b) noexcept { return a <= b; }
  /// Lane-wise `a > b` (false on NaN).
  static M gt(D a, D b) noexcept { return a > b; }
  /// Lane-wise `a >= b` (false on NaN).
  static M ge(D a, D b) noexcept { return a >= b; }
  /// Lane-wise `a == b` (false on NaN).
  static M eq(D a, D b) noexcept { return a == b; }

  /// Mask conjunction.
  static M mask_and(M a, M b) noexcept { return a && b; }
  /// Mask disjunction.
  static M mask_or(M a, M b) noexcept { return a || b; }
  /// Mask negation.
  static M mask_not(M a) noexcept { return !a; }
  /// True when at least one lane of `m` is set.
  static bool any(M m) noexcept { return m; }
  /// True when every lane of `m` is set.
  static bool all(M m) noexcept { return m; }

  /// Per-lane `m ? a : b`.
  static D select(M m, D a, D b) noexcept { return m ? a : b; }
  /// Exact `std::min(a, b)` per lane: `(b < a) ? b : a`, including the
  /// NaN and signed-zero behaviour of the scalar template.
  static D min(D a, D b) noexcept { return (b < a) ? b : a; }
  /// Exact `std::max(a, b)` per lane: `(a < b) ? b : a`.
  static D max(D a, D b) noexcept { return (a < b) ? b : a; }

  /// The shared interpolation formula of `detail::lerp_segment`, lane
  /// wise:  `frac = (x − tlo) / (thi − tlo);  vlo + frac·(vhi − vlo)`.
  /// Identical op sequence (sub, sub, div, sub, mul, add) at every
  /// width, so batched == scalar stays a structural property.
  static D lerp(D tlo, D thi, D vlo, D vhi, D x) noexcept {
    const D frac = div(sub(x, tlo), sub(thi, tlo));
    return add(vlo, mul(frac, sub(vhi, vlo)));
  }
};

#if defined(__AVX2__)

/// AVX2 instantiation: four IEEE doubles per `__m256d`.  Masks are the
/// all-ones / all-zeros `__m256d` patterns produced by `_mm256_cmp_pd`,
/// consumed by sign-bit `blendv`.  Only visible in TUs compiled with
/// `-mavx2` (the `*_avx2.cpp` files); everyone else goes through the
/// runtime dispatchers.
template <>
struct Lane<4> {
  /// Number of doubles per vector.
  static constexpr int width = 4;
  /// Vector of `width` doubles.
  using D = __m256d;
  /// Per-lane mask (all-ones = true, all-zeros = false).
  using M = __m256d;

  /// Loads `width` consecutive doubles from `p` (unaligned ok).
  static D load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  /// Stores `width` consecutive doubles to `p` (unaligned ok).
  static void store(double* p, D x) noexcept { _mm256_storeu_pd(p, x); }
  /// Replicates `x` into every lane.
  static D broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  /// The per-lane offsets {0, 1, 2, 3} as doubles.
  static D step() noexcept { return _mm256_set_pd(3.0, 2.0, 1.0, 0.0); }
  /// Per-lane indexed load: lane j reads `base[idx[j]]` (`idx` holds
  /// `width` int32 indices).
  static D gather(const double* base, const int32_t* idx) noexcept {
    return _mm256_i32gather_pd(
        base, _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), 8);
  }
  /// Per-lane adjacent-pair load: lane j of `lo` reads `base[idx[j]]`,
  /// lane j of `hi` reads `base[idx[j] + 1]`.  Four 128-bit pair loads
  /// plus `unpacklo/hi` transposes — substantially cheaper than two
  /// `vgatherdpd`s and bitwise identical (plain loads are exact).
  static void load_pair(const double* base, const int32_t* idx, D& lo,
                        D& hi) noexcept {
    const __m128d p0 = _mm_loadu_pd(base + idx[0]);
    const __m128d p1 = _mm_loadu_pd(base + idx[1]);
    const __m128d p2 = _mm_loadu_pd(base + idx[2]);
    const __m128d p3 = _mm_loadu_pd(base + idx[3]);
    lo = _mm256_set_m128d(_mm_unpacklo_pd(p2, p3), _mm_unpacklo_pd(p0, p1));
    hi = _mm256_set_m128d(_mm_unpackhi_pd(p2, p3), _mm_unpackhi_pd(p0, p1));
  }

  /// Lane-wise IEEE addition (`vaddpd`, correctly rounded per lane).
  static D add(D a, D b) noexcept { return _mm256_add_pd(a, b); }
  /// Lane-wise IEEE subtraction.
  static D sub(D a, D b) noexcept { return _mm256_sub_pd(a, b); }
  /// Lane-wise IEEE multiplication (never fused — no `-mfma`).
  static D mul(D a, D b) noexcept { return _mm256_mul_pd(a, b); }
  /// Lane-wise IEEE division.
  static D div(D a, D b) noexcept { return _mm256_div_pd(a, b); }

  /// Lane-wise `a < b`, ordered-quiet (false on NaN like scalar `<`).
  static M lt(D a, D b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  /// Lane-wise `a <= b`, ordered-quiet.
  static M le(D a, D b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  /// Lane-wise `a > b`, ordered-quiet.
  static M gt(D a, D b) noexcept { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  /// Lane-wise `a >= b`, ordered-quiet.
  static M ge(D a, D b) noexcept { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  /// Lane-wise `a == b`, ordered-quiet (false on NaN).
  static M eq(D a, D b) noexcept { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }

  /// Mask conjunction.
  static M mask_and(M a, M b) noexcept { return _mm256_and_pd(a, b); }
  /// Mask disjunction.
  static M mask_or(M a, M b) noexcept { return _mm256_or_pd(a, b); }
  /// Mask negation (xor with all-ones; inputs are full-lane masks).
  static M mask_not(M a) noexcept {
    return _mm256_xor_pd(a, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
  }
  /// True when at least one lane of `m` is set.
  static bool any(M m) noexcept { return _mm256_movemask_pd(m) != 0; }
  /// True when every lane of `m` is set.
  static bool all(M m) noexcept { return _mm256_movemask_pd(m) == 0xF; }

  /// Per-lane `m ? a : b` (`blendv` keys on the mask sign bit, which
  /// compare masks always set).
  static D select(M m, D a, D b) noexcept {
    return _mm256_blendv_pd(b, a, m);
  }
  /// Exact `std::min(a, b)` per lane.  `vminpd(x, y)` computes
  /// `x < y ? x : y` and returns y on NaN/equal, so swapping the
  /// operands — `vminpd(b, a)` — reproduces `std::min(a, b) =
  /// (b < a) ? b : a` bit-for-bit, NaN and −0.0 included.
  static D min(D a, D b) noexcept { return _mm256_min_pd(b, a); }
  /// Exact `std::max(a, b)` per lane (same operand swap as `min`).
  static D max(D a, D b) noexcept { return _mm256_max_pd(b, a); }

  /// The shared interpolation formula of `detail::lerp_segment`, lane
  /// wise — same op sequence as `Lane<1>::lerp`.
  static D lerp(D tlo, D thi, D vlo, D vhi, D x) noexcept {
    const D frac = div(sub(x, tlo), sub(thi, tlo));
    return add(vlo, mul(frac, sub(vhi, vlo)));
  }
};

#endif  // __AVX2__

}  // namespace waveletic::wave
