#include "wave/lanes.hpp"

#include <atomic>

#include "util/error.hpp"

namespace waveletic::wave {

namespace {

// 0 = automatic; 1 / 4 pin a width for A/B tests and benches.
std::atomic<int> g_forced_width{0};

bool cpu_has_avx2() noexcept {
#if defined(WAVELETIC_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Probed once; the answer cannot change while the process runs.
const bool g_cpu_avx2 = cpu_has_avx2();

}  // namespace

int compiled_lane_width() noexcept {
#if defined(WAVELETIC_HAVE_AVX2)
  return 4;
#else
  return 1;
#endif
}

bool lane_width_available(int w) noexcept {
  if (w == 1) return true;
  if (w == 4) return compiled_lane_width() >= 4 && g_cpu_avx2;
  return false;
}

int active_lane_width() noexcept {
  const int forced = g_forced_width.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  return g_cpu_avx2 && compiled_lane_width() >= 4 ? 4 : 1;
}

void force_lane_width(int w) {
  util::require(w == 0 || w == 1 || w == 4,
                "force_lane_width: width must be 0 (auto), 1 or 4, got ", w);
  util::require(w == 0 || lane_width_available(w), "force_lane_width: width ",
                w, " is not available on this build/CPU (compiled width ",
                compiled_lane_width(), ")");
  g_forced_width.store(w, std::memory_order_relaxed);
}

}  // namespace waveletic::wave
