#pragma once

/// \file kernels.hpp
/// Batched waveform kernels + the scratch arena behind the
/// allocation-free propagation hot path.
///
/// Every technique in the paper reduces to "evaluate a waveform at a
/// monotone grid of times and run an accumulation loop over the
/// samples".  The scalar API (`Waveform::at`) pays one binary search
/// per point and every intermediate waveform op heap-allocates fresh
/// vectors.  This layer provides:
///
///  - `WaveView` — a non-owning (time, value) span pair with the same
///    linear-interpolation semantics as `Waveform` (flat extension
///    outside the grid).  Implicitly constructible from a `Waveform`.
///  - `Workspace` — a per-worker bump arena of doubles.  `alloc()` is
///    pointer arithmetic; slabs are retained across `Scope` resets, so
///    a warmed workspace serves every later request without touching
///    the heap.  Slab addresses are stable under `Workspace` moves.
///  - Batched kernels (`sample_into`, `resample_into`, `combine_into`,
///    `derivative_into`, `smoothed_into`, …) — destination-buffer
///    variants of the hot `Waveform` operations.  `sample_into`
///    evaluates a sorted grid in O(n + m) with a single forward merge
///    scan and a branch-light, auto-vectorizable interpolation loop.
///
/// Determinism contract: every kernel applies the *same per-point
/// formulas in the same fold order* as the scalar `Waveform` code (both
/// sides share the `detail::lerp_segment` helper and the
/// `scan_crossings` walk), so batched results are bitwise identical to
/// the scalar reference.  Reductions are never reordered.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/workspace.hpp"
#include "wave/waveform.hpp"

namespace waveletic::wave {

namespace detail {

/// The one linear-interpolation formula shared by `Waveform::at`,
/// `WaveView::at` and the batched kernels.  Keeping a single definition
/// is what makes "batched == scalar" a structural property instead of a
/// hope.
inline double lerp_segment(const double* t, const double* v, size_t lo,
                           size_t hi, double x) noexcept {
  const double frac = (x - t[lo]) / (t[hi] - t[lo]);
  return v[lo] + frac * (v[hi] - v[lo]);
}

}  // namespace detail

/// Non-owning view of a sampled waveform: strictly increasing times,
/// linear between samples, flat outside the grid.  Views do not own
/// memory — the backing `Waveform` or `Workspace` must outlive them.
struct WaveView {
  std::span<const double> time;   ///< sample times, strictly increasing
  std::span<const double> value;  ///< sample values, one per time

  WaveView() = default;
  /// View over parallel time/value spans (same length, not validated).
  WaveView(std::span<const double> t, std::span<const double> v) noexcept
      : time(t), value(v) {}
  /// Implicit view of an owning `Waveform` (must outlive the view).
  /*implicit*/ WaveView(const Waveform& w) noexcept
      : time(w.times()), value(w.values()) {}

  /// Number of samples.
  [[nodiscard]] size_t size() const noexcept { return time.size(); }
  /// True when the view holds no samples.
  [[nodiscard]] bool empty() const noexcept { return time.empty(); }
  /// First sample time; undefined on an empty view.
  [[nodiscard]] double t_begin() const noexcept { return time.front(); }
  /// Last sample time; undefined on an empty view.
  [[nodiscard]] double t_end() const noexcept { return time.back(); }

  /// Linear interpolation with flat clamping — bitwise identical to
  /// `Waveform::at` (same binary search, same `lerp_segment`).
  [[nodiscard]] double at(double t) const noexcept;

  /// Materializes an owning copy (cold paths / storage only).
  [[nodiscard]] Waveform to_waveform() const {
    return Waveform(std::vector<double>(time.begin(), time.end()),
                    std::vector<double>(value.begin(), value.end()));
  }
};

/// The per-worker scratch arena behind every batched kernel.  The class
/// lives in util (util::Workspace) so the la fitting layer can share
/// it; this alias is the waveform-facing name.
using Workspace = util::Workspace;

// ---------------------------------------------------------------------------
// Batched kernels.  All grids of query times must be non-decreasing.
// ---------------------------------------------------------------------------

/// Evaluates `wave` at every time of the non-decreasing grid `ts` into
/// `out` (same length) with ONE forward merge scan: O(n + m) total
/// instead of m binary searches.  Bitwise identical to calling
/// `Waveform::at` per point.
void sample_into(WaveView wave, std::span<const double> ts,
                 std::span<double> out);

/// `P` uniform sample times across [t0, t1] into `out` (same formula as
/// `core::sample_times`).
void sample_times_into(double t0, double t1, std::span<double> out);

/// Uniform resampling of `wave` with `t_out.size()` points across
/// [t0, t1]: fills the grid then merge-scans the values.  Bitwise
/// identical to `Waveform::resampled`.
void resample_into(WaveView wave, double t0, double t1,
                   std::span<double> t_out, std::span<double> v_out);

/// Central-difference derivative on the wave's own grid (one-sided at
/// the ends) into `out`.  Bitwise identical to `Waveform::derivative`.
void derivative_into(WaveView wave, std::span<double> out);

/// Boxcar smoothing with a centered window of `half_width` samples per
/// side via an O(n) prefix sum; `prefix` must hold size()+1 doubles.
/// Window clamping at the ends matches the scalar definition.
void smoothed_into(WaveView wave, size_t half_width, std::span<double> prefix,
                   std::span<double> out);

/// v → v_ref − v into `out` (the polarity flip).
void flip_into(WaveView wave, double v_ref, std::span<double> out);

/// Pointwise combination on the union grid of a and b built by a linear
/// two-pointer merge (no sort):  out(t) = ca·a(t) + cb·b(t).  Returns a
/// view backed by `ws`, valid until the enclosing scope closes.
/// Bitwise identical to the `combine()` free function.
[[nodiscard]] WaveView combine_into(WaveView a, double ca, WaveView b,
                                    double cb, Workspace& ws);

/// Merges two strictly-increasing grids into their sorted union
/// (duplicates collapsed).  Returns the number of grid points written;
/// `out` must hold at least a.size() + b.size() doubles.
[[nodiscard]] size_t merge_grids(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> out) noexcept;

/// Rising-normalized view of `wave`: the view itself for rising
/// polarity (zero copy), a flip into `ws` for falling.  Values are
/// bitwise identical to `Waveform::normalized_rising`.
[[nodiscard]] WaveView normalized_rising_view(WaveView wave, Polarity p,
                                              double vdd, Workspace& ws);

/// Time-shifted view (t + dt grid) backed by `ws`; values are shared.
[[nodiscard]] WaveView shift_into(WaveView wave, double dt, Workspace& ws);

// ---------------------------------------------------------------------------
// Allocation-free crossing scans.
// ---------------------------------------------------------------------------

/// Walks every crossing of `level` exactly as `Waveform::crossings`
/// enumerates them (touching samples count once; the final sample
/// counts only when the penultimate sample is off-level) and invokes
/// `emit(t)` per crossing.  `emit` returns false to stop early.  This
/// is THE crossing algorithm — `Waveform::crossings`, the scan helpers
/// below and the metrics all share it.
template <class Emit>
inline void scan_crossings(WaveView w, double level, Emit&& emit) {
  const auto& t = w.time;
  const auto& v = w.value;
  const size_t n = t.size();
  double last = 0.0;
  bool has_last = false;
  const auto push = [&](double x) -> bool {
    last = x;
    has_last = true;
    return emit(x);
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    const double a = v[i] - level;
    const double b = v[i + 1] - level;
    if (a == 0.0) {
      // Count a touching sample once (skip if the previous segment
      // already emitted this time).
      if (!has_last || last != t[i]) {
        if (!push(t[i])) return;
      }
      continue;
    }
    if ((a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0)) {
      const double frac = a / (a - b);
      if (!push(t[i] + frac * (t[i + 1] - t[i]))) return;
    }
  }
  // A record ending exactly on the level crossed it — unless the
  // penultimate sample already sat on the level, in which case the
  // touch was counted above and emitting again would double-count the
  // flat tail segment.
  if (n >= 2 && v[n - 1] == level && v[n - 2] != level) push(t[n - 1]);
  if (n == 1 && v[0] == level) push(t[0]);
}

/// First crossing of `level` without materializing the list.
[[nodiscard]] std::optional<double> first_crossing(WaveView w, double level);
/// Last crossing of `level` without materializing the list.
[[nodiscard]] std::optional<double> last_crossing(WaveView w, double level);
/// Number of crossings of `level` without materializing the list.
[[nodiscard]] size_t crossing_count(WaveView w, double level);

/// All crossings collected into `ws` scratch (capacity bounded by
/// size() + 1); the span is valid until the enclosing scope closes.
[[nodiscard]] std::span<double> crossings_into(WaveView w, double level,
                                               Workspace& ws);

}  // namespace waveletic::wave
