// AVX2 (W=4) instantiations of the lane kernel bodies.  This is one of
// the only TUs compiled with -mavx2 (see CMakeLists.txt); it must stay
// free of code that could run on non-AVX2 CPUs — everything here is
// reached exclusively through the active_lane_width() == 4 dispatch in
// kernels.cpp.  Built without -mfma and with -ffp-contract=off, so per
// lane every op is the scalar IEEE operation and results are bitwise
// identical to the W=1 oracle.
#if defined(__AVX2__)

#include "wave/kernels_lanes.hpp"

namespace waveletic::wave::detail {

void sample_core_w4(const double* t, const double* v, size_t n,
                    const double* ts, double* out, size_t m) {
  sample_core<4>(t, v, n, ts, out, m);
}

void sample_times_core_w4(double t0, double dt, double* out, size_t n) {
  sample_times_core<4>(t0, dt, out, n);
}

void axpby_core_w4(double ca, const double* va, double cb, const double* vb,
                   double* out, size_t g) {
  axpby_core<4>(ca, va, cb, vb, out, g);
}

void flip_core_w4(double v_ref, const double* v, double* out, size_t n) {
  flip_core<4>(v_ref, v, out, n);
}

void scan_crossings_w4(WaveView w, double level, bool (*emit)(void*, double),
                       void* ctx) {
  scan_crossings_core<4>(w, level, [&](double x) { return emit(ctx, x); });
}

}  // namespace waveletic::wave::detail

#endif  // __AVX2__
