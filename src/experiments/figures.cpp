#include "experiments/figures.hpp"

#include "core/sensitivity.hpp"
#include "core/sgdp.hpp"
#include "noise/receiver_eval.hpp"
#include "util/csv.hpp"

namespace waveletic::experiments {

Figure2Data figure2_data(const Figure2Options& opt) {
  const charlib::Pdk pdk;
  noise::NoiseRunner runner(pdk, opt.bench, opt.runner);
  auto cw = runner.run_case(opt.aggressor_offset);

  Figure2Data data;
  const double vdd = pdk.vdd;
  data.noiseless_in =
      runner.noiseless_in().normalized_rising(runner.in_polarity(), vdd);
  data.noiseless_out =
      runner.noiseless_out().normalized_rising(runner.out_polarity(), vdd);
  data.noisy_in = cw.noisy_in.normalized_rising(cw.in_polarity, vdd);
  data.noisy_out = cw.noisy_out.normalized_rising(cw.out_polarity, vdd);

  const auto rho = core::SensitivityCurve::build(
      data.noiseless_in, data.noiseless_out, vdd, true);
  data.rho_noiseless = rho.rho_time();

  core::MethodInput mi;
  mi.noisy_in = &cw.noisy_in;
  mi.noiseless_in = &runner.noiseless_in();
  mi.noiseless_out = &runner.noiseless_out();
  mi.in_polarity = cw.in_polarity;
  mi.out_polarity = cw.out_polarity;
  mi.vdd = vdd;
  mi.samples = opt.samples;

  core::SgdpMethod sgdp;
  data.rho_eff = sgdp.effective_sensitivity(mi);
  const auto fit = sgdp.fit(mi);
  data.gamma_eff = fit.ramp.sampled(256);

  noise::ReceiverEval::Options eval_opt;
  eval_opt.dt = opt.runner.dt;
  noise::ReceiverEval eval(pdk, eval_opt);
  const auto out_eff =
      eval.output_waveform(fit.ramp.denormalized(cw.in_polarity, 256));
  data.v_out_eff = out_eff.normalized_rising(cw.out_polarity, vdd);
  return data;
}

namespace {

void append_wave(util::CsvWriter& csv, const std::string& prefix,
                 const wave::Waveform& w, double scale = 1.0) {
  std::vector<double> t(w.times().begin(), w.times().end());
  std::vector<double> v(w.values().begin(), w.values().end());
  for (auto& x : v) x *= scale;
  csv.add_column(prefix + "_t", std::move(t));
  csv.add_column(prefix + "_v", std::move(v));
}

}  // namespace

void write_figure2_csv(const std::string& dir, const Figure2Data& data) {
  {
    util::CsvWriter csv;
    append_wave(csv, "v_in_noiseless", data.noiseless_in);
    append_wave(csv, "v_out_noiseless", data.noiseless_out);
    append_wave(csv, "rho_noiseless_x0.2", data.rho_noiseless, 0.2);
    csv.write_file(dir + "/fig2a.csv");
  }
  {
    util::CsvWriter csv;
    append_wave(csv, "v_in_noisy", data.noisy_in);
    append_wave(csv, "v_out_noisy", data.noisy_out);
    append_wave(csv, "gamma_eff", data.gamma_eff);
    append_wave(csv, "v_out_eff", data.v_out_eff);
    append_wave(csv, "rho_eff_x0.2", data.rho_eff, 0.2);
    csv.write_file(dir + "/fig2b.csv");
  }
}

}  // namespace waveletic::experiments
