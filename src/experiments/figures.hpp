#pragma once

/// \file figures.hpp
/// Data generators for the paper's figures.
///
/// Figure 2a: the noiseless input/output pair and 0.2·ρ_noiseless.
/// Figure 2b: the noisy input, golden noisy output, Γeff (SGDP),
///            0.2·ρ_eff, and v_out^eff (the receiver simulated with
///            Γeff as its input).
///
/// All curves are emitted rising-normalized so they overlay the way the
/// paper draws them (0 → Vdd transitions).

#include <string>

#include "noise/scenario.hpp"
#include "wave/waveform.hpp"

namespace waveletic::experiments {

struct Figure2Options {
  noise::TestbenchSpec bench = noise::TestbenchSpec::config1();
  double aggressor_offset = 40e-12;  ///< a representative delay-noise case
  int samples = 35;                  ///< P
  noise::RunnerOptions runner{};
};

struct Figure2Data {
  // 2a — noiseless characterization.
  wave::Waveform noiseless_in;   ///< rising-normalized victim at in_u
  wave::Waveform noiseless_out;  ///< rising-normalized receiver output
  wave::Waveform rho_noiseless;  ///< ρ(t)
  // 2b — noisy case.
  wave::Waveform noisy_in;       ///< rising-normalized noisy victim
  wave::Waveform noisy_out;      ///< golden receiver output (normalized)
  wave::Waveform rho_eff;        ///< ρ_eff(t_k) on the noisy region
  wave::Waveform gamma_eff;      ///< Γeff sampled (normalized)
  wave::Waveform v_out_eff;      ///< receiver response to Γeff (normalized)
};

/// Runs one golden case plus the SGDP fit and receiver evaluation.
[[nodiscard]] Figure2Data figure2_data(const Figure2Options& opt);

/// Writes the 2a/2b curves to `<dir>/fig2a.csv` and `<dir>/fig2b.csv`
/// with the paper's 0.2 scaling applied to the ρ columns.
void write_figure2_csv(const std::string& dir, const Figure2Data& data);

}  // namespace waveletic::experiments
