#pragma once

/// \file accuracy.hpp
/// The Table 1 experiment: sweep aggressor injection offsets, fit Γeff
/// with every technique, evaluate each Γeff through the golden receiver
/// replica, and aggregate max/avg absolute delay error against the
/// golden noisy simulation.

#include <iosfwd>
#include <string>
#include <vector>

#include "noise/scenario.hpp"

namespace waveletic::experiments {

struct AccuracyOptions {
  noise::TestbenchSpec bench = noise::TestbenchSpec::config1();
  int cases = 200;             ///< noise injection timing cases
  double offset_range = 1e-9;  ///< the paper's 1 ns window
  int samples = 35;            ///< P (sampling points per fit)
  noise::RunnerOptions runner{};
  /// Method names (paper order); empty = all six.
  std::vector<std::string> methods{};
};

struct MethodStats {
  std::string method;
  /// The paper's Table 1 metric.  Gate delay is measured between the
  /// 50% crossings of the gate input and output waveforms; golden and
  /// technique delays share the same input reference (the noisy input's
  /// latest 50% crossing), so the delay error equals the output-arrival
  /// error — the quantity STA propagates.  Using Γeff's own crossing as
  /// the input reference instead would cancel each technique's arrival
  /// placement and rank purely by slew, contradicting the paper's
  /// criticism of the point techniques' arrival pessimism.
  double max_error = 0.0;  ///< max |error| [s]
  double avg_error = 0.0;  ///< mean |error| [s]
  /// Secondary diagnostic: Γeff-referenced delay error (isolates the
  /// slew/shape contribution; arrival placement cancels).
  double max_slew_metric_error = 0.0;
  double avg_slew_metric_error = 0.0;
  int fallbacks = 0;  ///< degenerate fits (method formulation failed)
};

struct CaseRecord {
  double offset = 0.0;
  double golden_arrival = 0.0;
  double golden_delay = 0.0;
  std::vector<double> arrival_errors;      ///< signed per-method error [s]
  std::vector<double> slew_metric_errors;  ///< Γeff-referenced delay error
};

struct AccuracyResult {
  std::vector<std::string> methods;
  std::vector<MethodStats> stats;
  std::vector<CaseRecord> cases;

  [[nodiscard]] const MethodStats& stat(const std::string& method) const;
};

/// Runs the experiment (expensive: cases × (1 golden + N ramp sims)).
[[nodiscard]] AccuracyResult run_accuracy(const AccuracyOptions& opt);

/// Renders the paper-style Table 1 from one result per configuration.
void print_accuracy_table(std::ostream& os,
                          const std::vector<std::string>& config_names,
                          const std::vector<const AccuracyResult*>& results);

/// Per-case error dump for plotting.
void write_cases_csv(const std::string& path, const AccuracyResult& result);

}  // namespace waveletic::experiments
