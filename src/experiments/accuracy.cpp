#include "experiments/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "core/method.hpp"
#include "noise/receiver_eval.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace waveletic::experiments {

const MethodStats& AccuracyResult::stat(const std::string& method) const {
  for (const auto& s : stats) {
    if (s.method == method) return s;
  }
  throw util::Error::fmt("no stats for method ", method);
}

AccuracyResult run_accuracy(const AccuracyOptions& opt) {
  util::require(opt.cases >= 1, "accuracy: need at least one case");
  const charlib::Pdk pdk;

  noise::NoiseRunner runner(pdk, opt.bench, opt.runner);
  noise::ReceiverEval::Options eval_opt;
  eval_opt.dt = opt.runner.dt;
  noise::ReceiverEval eval(pdk, eval_opt);

  std::vector<std::unique_ptr<core::EquivalentWaveformMethod>> methods;
  if (opt.methods.empty()) {
    methods = core::all_methods();
  } else {
    for (const auto& name : opt.methods) {
      methods.push_back(core::make_method(name));
    }
  }

  AccuracyResult result;
  for (const auto& m : methods) result.methods.emplace_back(m->name());
  result.stats.resize(methods.size());
  for (size_t i = 0; i < methods.size(); ++i) {
    result.stats[i].method = result.methods[i];
  }

  const auto tuples = noise::NoiseRunner::offset_tuples(
      opt.cases, opt.offset_range, opt.bench.aggressors);
  for (const auto& tuple : tuples) {
    auto cw = runner.run_case(tuple);

    core::MethodInput mi;
    mi.noisy_in = &cw.noisy_in;
    mi.noiseless_in = &runner.noiseless_in();
    mi.noiseless_out = &runner.noiseless_out();
    mi.in_polarity = cw.in_polarity;
    mi.out_polarity = cw.out_polarity;
    mi.vdd = pdk.vdd;
    mi.samples = opt.samples;

    CaseRecord record;
    record.offset = tuple[0];
    record.golden_arrival = cw.golden_output_arrival;
    record.golden_delay = cw.golden_gate_delay;
    for (size_t i = 0; i < methods.size(); ++i) {
      const auto fit = methods[i]->fit(mi);
      const double est_arrival = eval.ramp_arrival(fit.ramp, cw.in_polarity);
      // Primary (paper) metric: both delays share the noisy input's
      // latest 50% crossing, so the delay error reduces to the
      // output-arrival error.
      const double arrival_err = est_arrival - cw.golden_output_arrival;
      // Secondary: delay referenced to Γeff's own crossing.
      const double slew_err =
          (est_arrival - fit.ramp.t50()) - cw.golden_gate_delay;
      record.arrival_errors.push_back(arrival_err);
      record.slew_metric_errors.push_back(slew_err);
      auto& st = result.stats[i];
      st.max_error = std::max(st.max_error, std::fabs(arrival_err));
      st.avg_error += std::fabs(arrival_err);
      st.max_slew_metric_error =
          std::max(st.max_slew_metric_error, std::fabs(slew_err));
      st.avg_slew_metric_error += std::fabs(slew_err);
      st.fallbacks += fit.degenerate_fallback ? 1 : 0;
    }
    result.cases.push_back(std::move(record));
    util::log_debug("accuracy: offset ", record.offset, " done");
  }
  for (auto& st : result.stats) {
    st.avg_error /= static_cast<double>(result.cases.size());
    st.avg_slew_metric_error /= static_cast<double>(result.cases.size());
  }
  return result;
}

void print_accuracy_table(std::ostream& os,
                          const std::vector<std::string>& config_names,
                          const std::vector<const AccuracyResult*>& results) {
  util::require(!results.empty() && config_names.size() == results.size(),
                "print_accuracy_table: result/name mismatch");
  std::vector<std::string> headers{"Method"};
  for (const auto& name : config_names) {
    headers.push_back(name + " Max");
    headers.push_back(name + " Avg");
  }
  util::Table table(headers);
  table.set_title(
      "Delay error vs golden transient simulation (ps) — Table 1 "
      "reproduction");
  for (const auto& method : results[0]->methods) {
    std::vector<std::string> row{method};
    for (const auto* result : results) {
      const auto& st = result->stat(method);
      row.push_back(util::format_ps(st.max_error));
      row.push_back(util::format_ps(st.avg_error));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_cases_csv(const std::string& path, const AccuracyResult& result) {
  util::CsvWriter csv;
  std::vector<double> offsets, golden;
  for (const auto& c : result.cases) {
    offsets.push_back(c.offset);
    golden.push_back(c.golden_arrival);
  }
  csv.add_column("offset_s", offsets);
  csv.add_column("golden_arrival_s", golden);
  for (size_t m = 0; m < result.methods.size(); ++m) {
    std::vector<double> aerr, serr;
    for (const auto& c : result.cases) {
      aerr.push_back(c.arrival_errors[m]);
      serr.push_back(c.slew_metric_errors[m]);
    }
    csv.add_column("err_" + result.methods[m] + "_s", aerr);
    csv.add_column("slew_err_" + result.methods[m] + "_s", serr);
  }
  csv.write_file(path);
}

}  // namespace waveletic::experiments
