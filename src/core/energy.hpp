#pragma once

/// \file energy.hpp
/// E4 (§2.3), the Elmore-inspired equal-area technique: Γeff passes
/// through the latest 50% crossing of the noisy waveform; its slope is
/// chosen so the area enclosed between the line and the levels
/// v1 = 0.5·Vdd and v2 = Vdd equals the corresponding area under the
/// noisy waveform.  The more often the waveform re-crosses 50%, the
/// later the pinned point and the more pessimistic the estimate — the
/// behaviour the paper calls out.

#include "core/method.hpp"

namespace waveletic::core {

class E4Method final : public EquivalentWaveformMethod {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "E4";
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<E4Method>(*this);
  }
};

}  // namespace waveletic::core
