#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::core {

using wave::WaveView;
using wave::Workspace;

SensitivityCurve SensitivityCurve::build(WaveView in_rising,
                                         WaveView out_rising, double vdd,
                                         bool align_non_overlapping,
                                         const Options& opt, Workspace& ws) {
  SensitivityCurve c;
  c.init(in_rising, out_rising, vdd, align_non_overlapping, opt, ws);
  return c;
}

SensitivityCurve SensitivityCurve::build(const wave::Waveform& in_rising,
                                         const wave::Waveform& out_rising,
                                         double vdd,
                                         bool align_non_overlapping,
                                         const Options& opt) {
  SensitivityCurve c;
  c.init(in_rising, out_rising, vdd, align_non_overlapping, opt, c.own_);
  return c;
}

void SensitivityCurve::init(WaveView in_rising, WaveView out_rising,
                            double vdd, bool align_non_overlapping,
                            const Options& opt, Workspace& ws) {
  const auto in_region = wave::noiseless_critical_region(
      in_rising, wave::Polarity::kRising, vdd, opt.thresholds);
  const auto out_region = wave::noiseless_critical_region(
      out_rising, wave::Polarity::kRising, vdd, opt.thresholds);
  util::require(in_region.has_value(),
                "sensitivity: noiseless input never completes a transition");
  util::require(out_region.has_value(),
                "sensitivity: noiseless output never completes a transition");

  const auto t50_in = wave::first_crossing(in_rising, 0.5 * vdd);
  const auto t50_out = wave::first_crossing(out_rising, 0.5 * vdd);
  util::require(t50_in && t50_out, "sensitivity: missing 50% crossings");
  const double delta = *t50_out - *t50_in;

  // SGDP additional step: when the transitions do not overlap, shift the
  // output back so the 50% points coincide and the derivative ratio is
  // meaningful again.
  const bool disjoint = out_region->t_first > in_region->t_last ||
                        out_region->t_last < in_region->t_first;
  const bool aligned = align_non_overlapping && disjoint;
  const WaveView out_used =
      aligned ? wave::shift_into(out_rising, -delta, ws) : out_rising;

  const auto din_buf = ws.alloc(in_rising.size());
  wave::derivative_into(in_rising, din_buf);
  const WaveView din(in_rising.time, din_buf);
  const auto dout_buf = ws.alloc(out_used.size());
  wave::derivative_into(out_used, dout_buf);
  const WaveView dout(out_used.time, dout_buf);

  // Sample ρ across the input critical region: both derivatives are
  // evaluated on the uniform grid with one merge scan each, then the
  // ratio loop runs over contiguous buffers.
  const size_t n = std::max<size_t>(opt.resolution, 16);
  const double t0 = in_region->t_first;
  const double t1 = in_region->t_last;
  const auto times = ws.alloc(n);
  wave::sample_times_into(t0, t1, times);
  const auto din_at = ws.alloc(n);
  const auto dout_at = ws.alloc(n);
  wave::sample_into(din, times, din_at);
  wave::sample_into(dout, times, dout_at);
  // Slope floor: a fraction of the mean transition slope, guarding the
  // ratio where the input flattens near the thresholds.
  const double mean_slope =
      (opt.thresholds.high - opt.thresholds.low) * vdd / (t1 - t0);
  const double slope_floor = 1e-3 * mean_slope;
  const auto rho_raw = ws.alloc(n);
  for (size_t i = 0; i < n; ++i) {
    const double vi = std::max(din_at[i], slope_floor);
    const double r = dout_at[i] / vi;
    rho_raw[i] = std::clamp(r, -opt.rho_clamp, opt.rho_clamp);
  }
  const auto prefix = ws.alloc(n + 1);
  const auto rho_sm = ws.alloc(n);
  wave::smoothed_into(WaveView(times, rho_raw), opt.smooth, prefix, rho_sm);

  // Voltage re-indexing (SGDP Step 2): walk the input voltage through
  // the region and pair it with ρ at the same instant.  The noiseless
  // input is monotone in its critical region; enforce strict increase
  // to build a valid abscissa.
  const auto vin_at = ws.alloc(n);
  wave::sample_into(in_rising, times, vin_at);
  const auto volts = ws.alloc(n);
  const auto rho_v = ws.alloc(n);
  size_t m = 0;
  double last_v = -1e300;
  for (size_t i = 0; i < n; ++i) {
    const double v = vin_at[i];
    if (v <= last_v + 1e-9) continue;  // skip non-monotone wiggles
    volts[m] = v;
    rho_v[m] = rho_sm[i];
    ++m;
    last_v = v;
  }
  util::require(m >= 4,
                "sensitivity: noiseless input not monotone enough to index "
                "rho by voltage");
  rho_time_ = WaveView(times, rho_sm);
  rho_voltage_ = WaveView(volts.subspan(0, m), rho_v.subspan(0, m));
  const auto drho = ws.alloc(m);
  wave::derivative_into(rho_voltage_, drho);
  drho_voltage_ = WaveView(rho_voltage_.time, drho);
  region_ = *in_region;
  v_lo_ = opt.thresholds.low * vdd;
  v_hi_ = opt.thresholds.high * vdd;
  delta_ = delta;
  aligned_ = aligned;
}

double SensitivityCurve::peak_voltage() const noexcept {
  double best_v = rho_voltage_.time[0];
  double best = 0.0;
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    const double mag = std::fabs(rho_voltage_.value[i]);
    if (mag > best) {
      best = mag;
      best_v = rho_voltage_.time[i];
    }
  }
  return best_v;
}

double SensitivityCurve::band_low_edge(double frac) const noexcept {
  const double peak_v = peak_voltage();
  double peak_mag = 0.0;
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    peak_mag = std::max(peak_mag, std::fabs(rho_voltage_.value[i]));
  }
  const double threshold = frac * peak_mag;
  double edge = rho_voltage_.time[0];  // abscissa carries voltage
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    const double v = rho_voltage_.time[i];
    if (v >= peak_v) break;
    if (std::fabs(rho_voltage_.value[i]) <= threshold) edge = v;
  }
  return edge;
}

double SensitivityCurve::rho_at_time(double t) const noexcept {
  if (t < region_.t_first || t > region_.t_last) return 0.0;
  return rho_time_.at(t);
}

double SensitivityCurve::rho_at_voltage(double v) const noexcept {
  if (v < v_lo_ || v > v_hi_) return 0.0;
  return rho_voltage_.at(v);
}

double SensitivityCurve::drho_dv(double v) const noexcept {
  if (v < v_lo_ || v > v_hi_) return 0.0;
  return drho_voltage_.at(v);
}

}  // namespace waveletic::core
