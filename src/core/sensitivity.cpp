#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::core {

SensitivityCurve::SensitivityCurve(wave::Waveform rho_time,
                                   wave::Waveform rho_voltage,
                                   wave::CriticalRegion region, double v_lo,
                                   double v_hi, double delta, bool aligned)
    : rho_time_(std::move(rho_time)),
      rho_voltage_(std::move(rho_voltage)),
      drho_voltage_(rho_voltage_.derivative()),
      region_(region),
      v_lo_(v_lo),
      v_hi_(v_hi),
      delta_(delta),
      aligned_(aligned) {}

SensitivityCurve SensitivityCurve::build(const wave::Waveform& in_rising,
                                         const wave::Waveform& out_rising,
                                         double vdd,
                                         bool align_non_overlapping,
                                         const Options& opt) {
  const auto in_region = wave::noiseless_critical_region(
      in_rising, wave::Polarity::kRising, vdd, opt.thresholds);
  const auto out_region = wave::noiseless_critical_region(
      out_rising, wave::Polarity::kRising, vdd, opt.thresholds);
  util::require(in_region.has_value(),
                "sensitivity: noiseless input never completes a transition");
  util::require(out_region.has_value(),
                "sensitivity: noiseless output never completes a transition");

  const auto t50_in = in_rising.first_crossing(0.5 * vdd);
  const auto t50_out = out_rising.first_crossing(0.5 * vdd);
  util::require(t50_in && t50_out, "sensitivity: missing 50% crossings");
  const double delta = *t50_out - *t50_in;

  // SGDP additional step: when the transitions do not overlap, shift the
  // output back so the 50% points coincide and the derivative ratio is
  // meaningful again.
  const bool disjoint = out_region->t_first > in_region->t_last ||
                        out_region->t_last < in_region->t_first;
  const bool aligned = align_non_overlapping && disjoint;
  const wave::Waveform out_used =
      aligned ? out_rising.shifted(-delta) : out_rising;

  const wave::Waveform din = in_rising.derivative();
  const wave::Waveform dout = out_used.derivative();

  // Sample ρ across the input critical region.
  const size_t n = std::max<size_t>(opt.resolution, 16);
  const double t0 = in_region->t_first;
  const double t1 = in_region->t_last;
  std::vector<double> times(n), rho(n);
  const double dt = (t1 - t0) / static_cast<double>(n - 1);
  // Slope floor: a fraction of the mean transition slope, guarding the
  // ratio where the input flattens near the thresholds.
  const double mean_slope =
      (opt.thresholds.high - opt.thresholds.low) * vdd / (t1 - t0);
  const double slope_floor = 1e-3 * mean_slope;
  for (size_t i = 0; i < n; ++i) {
    const double t = t0 + dt * static_cast<double>(i);
    times[i] = t;
    const double vi = std::max(din.at(t), slope_floor);
    const double r = dout.at(t) / vi;
    rho[i] = std::clamp(r, -opt.rho_clamp, opt.rho_clamp);
  }
  wave::Waveform rho_time(times, rho);
  rho_time = rho_time.smoothed(opt.smooth);

  // Voltage re-indexing (SGDP Step 2): walk the input voltage through
  // the region and pair it with ρ at the same instant.  The noiseless
  // input is monotone in its critical region; enforce strict increase
  // to build a valid abscissa.
  std::vector<double> volts, rho_v;
  volts.reserve(n);
  rho_v.reserve(n);
  double last_v = -1e300;
  for (size_t i = 0; i < n; ++i) {
    const double v = in_rising.at(times[i]);
    if (v <= last_v + 1e-9) continue;  // skip non-monotone wiggles
    volts.push_back(v);
    rho_v.push_back(rho_time.value(i));
    last_v = v;
  }
  util::require(volts.size() >= 4,
                "sensitivity: noiseless input not monotone enough to index "
                "rho by voltage");
  wave::Waveform rho_voltage(std::move(volts), std::move(rho_v));

  return SensitivityCurve(std::move(rho_time), std::move(rho_voltage),
                          *in_region, opt.thresholds.low * vdd,
                          opt.thresholds.high * vdd, delta, aligned);
}

double SensitivityCurve::peak_voltage() const noexcept {
  double best_v = rho_voltage_.time(0);
  double best = 0.0;
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    const double mag = std::fabs(rho_voltage_.value(i));
    if (mag > best) {
      best = mag;
      best_v = rho_voltage_.time(i);
    }
  }
  return best_v;
}

double SensitivityCurve::band_low_edge(double frac) const noexcept {
  const double peak_v = peak_voltage();
  double peak_mag = 0.0;
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    peak_mag = std::max(peak_mag, std::fabs(rho_voltage_.value(i)));
  }
  const double threshold = frac * peak_mag;
  double edge = rho_voltage_.time(0);  // abscissa carries voltage
  for (size_t i = 0; i < rho_voltage_.size(); ++i) {
    const double v = rho_voltage_.time(i);
    if (v >= peak_v) break;
    if (std::fabs(rho_voltage_.value(i)) <= threshold) edge = v;
  }
  return edge;
}

double SensitivityCurve::rho_at_time(double t) const noexcept {
  if (t < region_.t_first || t > region_.t_last) return 0.0;
  return rho_time_.at(t);
}

double SensitivityCurve::rho_at_voltage(double v) const noexcept {
  if (v < v_lo_ || v > v_hi_) return 0.0;
  return rho_voltage_.at(v);
}

double SensitivityCurve::drho_dv(double v) const noexcept {
  if (v < v_lo_ || v > v_hi_) return 0.0;
  return drho_voltage_.at(v);
}

}  // namespace waveletic::core
