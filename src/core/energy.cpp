#include "core/energy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "wave/kernels.hpp"

namespace waveletic::core {

Fit E4Method::fit(const MethodInput& input) const {
  input.require_noisy();
  wave::Workspace local;
  wave::Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);
  const double vdd = input.vdd;
  const double half = 0.5 * vdd;

  const auto arrival = wave::last_crossing(noisy, half);
  util::require(arrival.has_value(), "E4: noisy input never crosses 50%");

  // Area enclosed by the noisy waveform and the lines v1 = Vdd/2 and
  // v2 = Vdd, taken from the pinned point onward:
  //   A = ∫ (Vdd − clamp(v(t), Vdd/2, Vdd)) dt ,  t ≥ t50_last.
  // Integrate on the waveform grid with the P-point sampling density the
  // other techniques use (plus the tail to the end of the record).  The
  // waveform is evaluated with one merge scan; the trapezoid fold keeps
  // the scalar order.
  const double t_end = noisy.t_end();
  util::require(t_end > *arrival, "E4: no samples after the 50% crossing");
  const int n = std::max(64, input.samples * 4);
  const auto t = ws.alloc(static_cast<size_t>(n));
  wave::sample_times_into(*arrival, t_end, t);
  const auto vt = ws.alloc(t.size());
  wave::sample_into(noisy, t, vt);
  double area = 0.0;
  for (size_t k = 1; k < t.size(); ++k) {
    const double va = vdd - std::clamp(vt[k - 1], half, vdd);
    const double vb = vdd - std::clamp(vt[k], half, vdd);
    area += 0.5 * (va + vb) * (t[k] - t[k - 1]);
  }

  // The line from (t50, Vdd/2) with slope a reaches Vdd after Vdd/(2a);
  // its enclosed area is (Vdd/2)²/(2a).  Equate with the noisy area.
  Fit fit;
  const double min_area = half * half / 2.0 * 1e-15;  // slope cap ~ 1 V/fs
  if (area < min_area) {
    // Degenerate: the waveform jumps to Vdd instantly after the pin.
    fit.degenerate_fallback = true;
    area = min_area;
  }
  const double slope = half * half / (2.0 * area);
  const double intercept = half - slope * *arrival;
  fit.ramp = wave::Ramp(slope, intercept, vdd);
  return fit;
}

}  // namespace waveletic::core
