#include "core/sgdp.hpp"

#include <cmath>
#include <limits>

#include "core/lsf.hpp"
#include "core/ramp_fit.hpp"
#include "la/gauss_newton.hpp"
#include "la/solve.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::core {
namespace {

using wave::WaveView;
using wave::Workspace;

struct SampleSet {
  std::span<double> t;     // sample times (noisy critical region)
  std::span<double> v;     // noisy voltages at t
  std::span<double> rho;   // ρ_eff(t_k) (Step 2 remap)
  std::span<double> drho;  // dρ_eff/dv at v_k
  double weight_sum = 0.0;
};

SampleSet collect_samples(WaveView noisy, const SensitivityCurve& rho,
                          int samples, double t_lo, double t_hi,
                          Workspace& ws) {
  SampleSet set;
  util::require(samples >= 2, "sample_times: need >= 2 samples");
  set.t = ws.alloc(static_cast<size_t>(samples));
  wave::sample_times_into(t_lo, t_hi, set.t);
  set.v = ws.alloc(set.t.size());
  // The time grid is monotone, so the noisy voltages arrive via one
  // merge scan; the ρ remap is indexed by *voltage* (non-monotone), so
  // it stays a per-point interpolation.
  wave::sample_into(noisy, set.t, set.v);
  set.rho = ws.alloc(set.t.size());
  set.drho = ws.alloc(set.t.size());
  for (size_t k = 0; k < set.t.size(); ++k) {
    // Step 2: voltage-level matching.
    set.rho[k] = rho.rho_at_voltage(set.v[k]);
    set.drho[k] = rho.drho_dv(set.v[k]);
    set.weight_sum += set.rho[k] * set.rho[k];
  }
  return set;
}

/// The arrival-relevant 50% crossing.  Marginal re-crosses — dips that
/// re-cross the measurement level but never come back down to the
/// receiving stage's switching band (its ρ-derived lower edge) — cannot
/// re-switch the gate, so they are discarded from the crossing list.
/// This is pure sensitivity information: no extra characterization is
/// needed, which keeps the paper's library-compatibility claim intact.
struct OperativeCrossing {
  double t_cross = 0.0;  ///< the crossing the gate actually responds to
  /// Start of the first rejected dip; samples beyond it describe noise
  /// the gate ignores and must not enter the fit.
  double t_cap = std::numeric_limits<double>::infinity();
};

OperativeCrossing operative_crossing(WaveView noisy, double vdd,
                                     double rho_band_low_edge,
                                     double max_dwell, Workspace& ws) {
  auto mids = wave::crossings_into(noisy, 0.5 * vdd, ws);
  util::require(!mids.empty(), "SGDP: noisy input never crosses 50%");
  OperativeCrossing out;
  size_t count = mids.size();
  while (count >= 3) {
    // The last dip lies between the downward crossing mids[n-2] and the
    // final upward crossing mids[n-1]; measure how deep it goes and how
    // long it lingers.
    const double t_a = mids[count - 2];
    const double t_b = mids[count - 1];
    double v_min = 0.5 * vdd;
    for (size_t i = 0; i < noisy.size(); ++i) {
      if (noisy.time[i] <= t_a || noisy.time[i] >= t_b) continue;
      v_min = std::min(v_min, noisy.value[i]);
    }
    // A dip is inoperative only when it is both *shallow* (never
    // reaching the sensitivity band's lower edge) and *brief* (shorter
    // than the gate's own response time, so the output cannot follow
    // quasi-statically).
    const bool shallow = v_min > rho_band_low_edge;
    const bool brief = (t_b - t_a) < max_dwell;
    if (shallow && brief) {
      out.t_cap = t_a;
      count -= 2;
    } else {
      break;
    }
  }
  out.t_cross = mids[count - 1];
  return out;
}

}  // namespace

Fit SgdpMethod::fit(const MethodInput& input) const {
  input.require_noisy();
  input.require_noiseless_pair("SGDP");
  Workspace local;
  Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);
  const auto clean_in = input.noiseless_in_rising_view(ws);
  const auto clean_out = input.noiseless_out_rising_view(ws);

  // Step 1 (+ additional alignment step when transitions are disjoint).
  const auto rho = SensitivityCurve::build(clean_in, clean_out, input.vdd,
                                           opt_.align_non_overlapping, {},
                                           ws);

  // P samples across the arrival event: from the low crossing before
  // the operative 50% crossing up to the completion level after it (the
  // glitch tail past completion cannot change the arrival; see
  // wave::arrival_event_region).
  OperativeCrossing oc;
  if (opt_.anchor_guard) {
    // Response timescale: the receiving stage's own output transition.
    const auto out_slew =
        wave::slew_clean(clean_out, wave::Polarity::kRising, input.vdd);
    const double max_dwell = out_slew ? 2.0 * *out_slew : 0.0;
    oc = operative_crossing(noisy, input.vdd, rho.band_low_edge(),
                            max_dwell, ws);
  } else {
    oc.t_cross = *wave::last_crossing(noisy, 0.5 * input.vdd);
  }
  const double anchor = oc.t_cross;
  const auto event =
      wave::arrival_event_region(noisy, wave::Polarity::kRising, input.vdd);
  util::require(event.has_value(),
                "SGDP: noisy input never completes a transition");
  double t_hi = event->t_last;
  if (anchor < event->t_first || anchor > event->t_last) {
    // The operative crossing belongs to an earlier event than the last
    // one: truncate at its own completion crossing instead.
    t_hi = noisy.t_end();
    wave::scan_crossings(noisy, 0.8 * input.vdd, [&](double t) {
      if (t >= anchor) {
        t_hi = t;
        return false;
      }
      return true;
    });
  }
  // Never sample into a rejected dip.
  t_hi = std::min(t_hi, oc.t_cap);
  const double t_lo = std::min(event->t_first, anchor - 1e-15);
  util::require(t_hi > t_lo, "SGDP: empty sampling window");

  const auto set = collect_samples(noisy, rho, input.samples, t_lo, t_hi, ws);
  if (set.weight_sum < 1e-12) {
    // Even the remapped sensitivity found no overlap with the noisy
    // voltages (e.g. rail-to-rail glitch only): honest fallback.
    Fit fit = lsf3_fit(noisy, input.vdd, input.samples, ws);
    fit.degenerate_fallback = true;
    return fit;
  }

  // Robust starting point: a P2-style construction around the operative
  // crossing is always a meaningful saturated ramp.
  const double span = set.t.back() - set.t.front();
  const wave::Ramp start =
      wave::Ramp::from_arrival_slew(anchor, 0.8 * span, input.vdd);

  // First-order pass (Eq. 3 truncated after the linear term): clamped
  // weighted LSQ with the Step 2 remapped weights.
  ClampedRampFit first;
  first.t = set.t;
  first.v = set.v;
  first.rho = set.rho;
  first.vdd = input.vdd;
  first.init = start;
  first.iterations = opt_.gauss_newton_iterations;
  first.ws = &ws;
  wave::Ramp ramp = fit_clamped_ramp(first);

  if (opt_.second_order) {
    // Full Eq. 3 with the ½·dρ/dv·Δ² correction, seeded by the
    // first-order solution.
    ClampedRampFit second = first;
    second.drho = set.drho;
    second.init = ramp;
    ramp = fit_clamped_ramp(second);
  }

  if (opt_.anchor_guard) {
    // Production guards.  (1) An equivalent waveform whose 50% crossing
    // falls outside the noisy waveform's own crossing span cannot
    // represent the transition (long shallow-noise tails can drag the
    // free fit there): re-fit with the line pinned through the
    // operative crossing, slope free.  (2) Γeff's slew may not exceed
    // the waveform's own first-10% to last-90% span — the most
    // pessimistic physical slew measure (P2's definition); beyond it
    // the ramp no longer describes the transition at all.
    const double first05 = *wave::first_crossing(noisy, 0.5 * input.vdd);
    const double slack = 0.15 * span;
    if (ramp.t50() < first05 - slack || ramp.t50() > anchor + slack) {
      ClampedRampFit pinned = first;
      pinned.pin_time = anchor;
      pinned.init = start;
      if (opt_.second_order) pinned.drho = set.drho;
      ramp = fit_clamped_ramp(pinned);
    }
    const auto span_slew =
        wave::slew_noisy(noisy, wave::Polarity::kRising, input.vdd);
    if (span_slew && ramp.slew() > *span_slew) {
      ramp = wave::Ramp::from_arrival_slew(anchor, *span_slew, input.vdd);
    }
  }

  Fit fit;
  fit.ramp = ramp;
  if (opt_.shift_gamma_by_delta && rho.aligned()) {
    fit.ramp = fit.ramp.shifted(rho.delta());
  }
  return fit;
}

wave::Waveform SgdpMethod::effective_sensitivity(
    const MethodInput& input) const {
  input.require_noisy();
  input.require_noiseless_pair("SGDP");
  Workspace local;
  Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);
  const auto rho = SensitivityCurve::build(
      input.noiseless_in_rising_view(ws),
      input.noiseless_out_rising_view(ws), input.vdd,
      opt_.align_non_overlapping, {}, ws);
  const auto event =
      wave::arrival_event_region(noisy, wave::Polarity::kRising, input.vdd);
  util::require(event.has_value(),
                "SGDP: noisy input never completes a transition");
  const auto set = collect_samples(noisy, rho, input.samples,
                                   event->t_first, event->t_last, ws);
  return WaveView(set.t, set.rho).to_waveform();
}

}  // namespace waveletic::core
