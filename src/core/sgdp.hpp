#pragma once

/// \file sgdp.hpp
/// SGDP — Sensitivity-based Gate Delay Propagation (§3, the paper's
/// contribution).
///
/// Step 1: build ρ_noiseless from the noiseless input/output pair
///         (identical to WLS5).
/// Step 2: remap the sensitivity onto the noisy waveform by voltage-
///         level matching: ρ_eff(t_i) = ρ_noiseless(t_j) where
///         v_noisy(t_i) = v_noiseless(t_j).  Implemented by indexing ρ
///         by input voltage, so the weighting follows the noise into
///         regions WLS5 cannot see.
/// Step 3: choose Γeff = (a, b) minimizing the predicted output error,
///         approximated by the first two Taylor terms (Eq. 3):
///
///   Δout ≈ Σ_k [ ρ_eff(t_k)·Δ_k + ½·(dρ_eff/dv)(t_k)·Δ_k² ]²,
///   Δ_k = v_noisy(t_k) − (a·t_k + b),
///
/// sampled at P points across the *noisy* critical region
/// [t_first_noisy, t_last_noisy].  The first-order truncation is a
/// weighted LSQ (the initialization); Gauss–Newton refines with the
/// quadratic term.
///
/// Additional step for non-overlapping input/output transitions: the
/// noiseless output is shifted back by δ (50%-to-50% gate delay) before
/// Step 1 so the derivative ratio is well-defined; Γeff is fitted in
/// the input time frame.  The printed paper then says to shift the
/// equivalent line forward by δ; re-attaching δ to the *input* ramp
/// double-counts the intrinsic delay once a real gate model is applied
/// downstream, so the default keeps Γeff in the input frame.  The
/// literal behaviour is available via Options::shift_gamma_by_delta and
/// compared in bench_ablation (see DESIGN.md §2).

#include "core/method.hpp"

namespace waveletic::core {

class SgdpMethod final : public EquivalentWaveformMethod {
 public:
  struct Options {
    /// Gauss-Newton refinement iterations on the Eq. 3 objective.
    int gauss_newton_iterations = 6;
    /// Include the ½·dρ/dv·Δ² term.  Off = pure remapped-weight WLS,
    /// which isolates the Step 2 contribution (ablation).
    bool second_order = true;
    /// Apply the non-overlap alignment automatically when the noiseless
    /// transitions are disjoint.
    bool align_non_overlapping = true;
    /// Literal final shift of Γeff by +δ after an alignment (see file
    /// comment); default off.
    bool shift_gamma_by_delta = false;
    /// Re-anchor the fit through the latest 50% crossing when the free
    /// fit's own 50% crossing escapes the noisy waveform's crossing
    /// span (robustness against long shallow-noise tails).
    bool anchor_guard = true;
  };

  SgdpMethod() = default;
  explicit SgdpMethod(Options opt) : opt_(opt) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "SGDP";
  }
  [[nodiscard]] bool needs_noiseless() const noexcept override {
    return true;
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<SgdpMethod>(*this);
  }

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  /// Exposes ρ_eff sampled on the noisy critical region for the
  /// Figure 2b reproduction: returns (t_k, ρ_eff(t_k)).
  [[nodiscard]] wave::Waveform effective_sensitivity(
      const MethodInput& input) const;

 private:
  Options opt_;
};

}  // namespace waveletic::core
