#pragma once

/// \file method.hpp
/// The equivalent-waveform abstraction: every technique from the paper
/// (P1, P2, LSF3, E4, WLS5, SGDP) maps a noisy input waveform to the
/// equivalent linear ramp Γeff that STA then treats as the gate input.
///
/// All waveforms handed to a method must describe the same transition;
/// methods internally rising-normalize using the supplied polarities and
/// always return a rising-normalized Ramp (callers keep polarity).

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sensitivity.hpp"
#include "wave/kernels.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace waveletic::core {

/// Inputs available to a technique.  `noisy_in` is mandatory; the
/// noiseless pair is required by P1 (slew), WLS5 and SGDP (sensitivity).
struct MethodInput {
  const wave::Waveform* noisy_in = nullptr;
  const wave::Waveform* noiseless_in = nullptr;
  const wave::Waveform* noiseless_out = nullptr;
  /// View alternatives to the pointer fields above; a non-empty view
  /// takes precedence over the matching pointer.  The propagation hot
  /// path uses these to hand techniques workspace-backed waveforms
  /// without materializing Waveform objects (zero heap traffic).
  wave::WaveView noisy_in_view;
  wave::WaveView noiseless_in_view;
  wave::WaveView noiseless_out_view;
  wave::Polarity in_polarity = wave::Polarity::kRising;
  /// Polarity of the gate *output* transition (inverting gates flip);
  /// used to normalize noiseless_out for the sensitivity computation.
  wave::Polarity out_polarity = wave::Polarity::kFalling;
  double vdd = 1.2;
  /// P — the number of sampling points (the paper's run-time section
  /// uses P = 35).
  int samples = 35;
  /// Optional per-worker scratch arena.  When set, the techniques draw
  /// every sampling/normalization buffer from it — a warmed workspace
  /// makes fit() allocation-free.  Null selects the legacy allocating
  /// path (each fit uses its own throwaway arena); results are bitwise
  /// identical either way.
  wave::Workspace* workspace = nullptr;

  /// Rising-normalized owning copies (legacy surface; cold paths).
  [[nodiscard]] wave::Waveform noisy_rising() const;
  [[nodiscard]] wave::Waveform noiseless_in_rising() const;
  [[nodiscard]] wave::Waveform noiseless_out_rising() const;

  /// Rising-normalized views: zero-copy for rising inputs, a flip into
  /// `ws` for falling.  Bitwise identical to the owning accessors.
  [[nodiscard]] wave::WaveView noisy_rising_view(wave::Workspace& ws) const;
  [[nodiscard]] wave::WaveView noiseless_in_rising_view(
      wave::Workspace& ws) const;
  [[nodiscard]] wave::WaveView noiseless_out_rising_view(
      wave::Workspace& ws) const;

  /// The effective (view-or-pointer) waveforms; empty when absent.
  [[nodiscard]] wave::WaveView noisy_wave() const noexcept;
  [[nodiscard]] wave::WaveView noiseless_in_wave() const noexcept;
  [[nodiscard]] wave::WaveView noiseless_out_wave() const noexcept;

  /// The arena a fit should use: the caller-provided per-worker
  /// workspace, or `local` (the legacy allocating path) when none was
  /// supplied.
  [[nodiscard]] wave::Workspace& scratch(
      wave::Workspace& local) const noexcept {
    return workspace != nullptr ? *workspace : local;
  }

  /// Validates presence of the required waveforms.
  void require_noisy() const;
  void require_noiseless_pair(std::string_view method) const;
};

/// Result of a fit: the ramp plus diagnostics.
struct Fit {
  wave::Ramp ramp;
  /// True when the technique's own formulation degenerated (e.g. all
  /// WLS5 weights zero because the noise fell outside the noiseless
  /// critical region) and the method fell back to an unweighted fit.
  bool degenerate_fallback = false;
};

/// Interface shared by all techniques.
///
/// Reentrancy contract: fit() is const and must be safe to call
/// concurrently from many threads on one instance — implementations
/// keep all working state on the stack (every built-in technique
/// does).  The levelized STA engine and ScenarioBatch rely on this to
/// evaluate noise scenarios in parallel through a single method
/// object.  A caller that wants per-thread instances anyway (e.g. to
/// tolerate a future stateful technique) can clone().
class EquivalentWaveformMethod {
 public:
  virtual ~EquivalentWaveformMethod() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Const and reentrant; see the class comment.
  [[nodiscard]] virtual Fit fit(const MethodInput& input) const = 0;
  /// Whether the method needs the noiseless input/output pair.
  [[nodiscard]] virtual bool needs_noiseless() const noexcept { return false; }
  /// Deep copy carrying all options.
  [[nodiscard]] virtual std::unique_ptr<EquivalentWaveformMethod> clone()
      const = 0;
};

/// P uniform sample times across [t0, t1].
[[nodiscard]] std::vector<double> sample_times(double t0, double t1,
                                               int samples);

/// All six techniques in paper order: P1, P2, LSF3, E4, WLS5, SGDP.
[[nodiscard]] std::vector<std::unique_ptr<EquivalentWaveformMethod>>
all_methods();

/// Builds one technique by paper name (case-insensitive); throws on
/// unknown names.
[[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> make_method(
    std::string_view name);

}  // namespace waveletic::core
