#include "core/method.hpp"

#include "core/energy.hpp"
#include "core/lsf.hpp"
#include "core/point_based.hpp"
#include "core/sgdp.hpp"
#include "core/wls.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace waveletic::core {

namespace {

/// A non-empty view wins over the pointer; an absent pair is empty.
wave::WaveView pick(const wave::Waveform* w, wave::WaveView view) noexcept {
  if (!view.empty()) return view;
  return w != nullptr ? wave::WaveView(*w) : wave::WaveView();
}

}  // namespace

wave::WaveView MethodInput::noisy_wave() const noexcept {
  return pick(noisy_in, noisy_in_view);
}

wave::WaveView MethodInput::noiseless_in_wave() const noexcept {
  return pick(noiseless_in, noiseless_in_view);
}

wave::WaveView MethodInput::noiseless_out_wave() const noexcept {
  return pick(noiseless_out, noiseless_out_view);
}

wave::Waveform MethodInput::noisy_rising() const {
  require_noisy();
  if (noisy_in_view.empty()) {
    return noisy_in->normalized_rising(in_polarity, vdd);
  }
  return noisy_in_view.to_waveform().normalized_rising(in_polarity, vdd);
}

wave::Waveform MethodInput::noiseless_in_rising() const {
  util::require(!noiseless_in_wave().empty(),
                "missing noiseless input waveform");
  if (noiseless_in_view.empty()) {
    return noiseless_in->normalized_rising(in_polarity, vdd);
  }
  return noiseless_in_view.to_waveform().normalized_rising(in_polarity, vdd);
}

wave::Waveform MethodInput::noiseless_out_rising() const {
  util::require(!noiseless_out_wave().empty(),
                "missing noiseless output waveform");
  if (noiseless_out_view.empty()) {
    return noiseless_out->normalized_rising(out_polarity, vdd);
  }
  return noiseless_out_view.to_waveform().normalized_rising(out_polarity,
                                                            vdd);
}

wave::WaveView MethodInput::noisy_rising_view(wave::Workspace& ws) const {
  require_noisy();
  return wave::normalized_rising_view(noisy_wave(), in_polarity, vdd, ws);
}

wave::WaveView MethodInput::noiseless_in_rising_view(
    wave::Workspace& ws) const {
  util::require(!noiseless_in_wave().empty(),
                "missing noiseless input waveform");
  return wave::normalized_rising_view(noiseless_in_wave(), in_polarity, vdd,
                                      ws);
}

wave::WaveView MethodInput::noiseless_out_rising_view(
    wave::Workspace& ws) const {
  util::require(!noiseless_out_wave().empty(),
                "missing noiseless output waveform");
  return wave::normalized_rising_view(noiseless_out_wave(), out_polarity,
                                      vdd, ws);
}

void MethodInput::require_noisy() const {
  util::require(!noisy_wave().empty(), "missing noisy input waveform");
  util::require(vdd > 0.0, "non-positive vdd");
  util::require(samples >= 4, "need at least 4 sampling points, got ",
                samples);
}

void MethodInput::require_noiseless_pair(std::string_view method) const {
  util::require(!noiseless_in_wave().empty() &&
                    !noiseless_out_wave().empty(),
                method, " requires the noiseless input/output waveform pair");
}

std::vector<double> sample_times(double t0, double t1, int samples) {
  util::require(samples >= 2, "sample_times: need >= 2 samples");
  util::require(t1 > t0, "sample_times: empty interval");
  std::vector<double> t(static_cast<size_t>(samples));
  const double dt = (t1 - t0) / static_cast<double>(samples - 1);
  for (int k = 0; k < samples; ++k) {
    t[static_cast<size_t>(k)] = t0 + dt * k;
  }
  return t;
}

std::vector<std::unique_ptr<EquivalentWaveformMethod>> all_methods() {
  std::vector<std::unique_ptr<EquivalentWaveformMethod>> out;
  out.push_back(std::make_unique<P1Method>());
  out.push_back(std::make_unique<P2Method>());
  out.push_back(std::make_unique<Lsf3Method>());
  out.push_back(std::make_unique<E4Method>());
  out.push_back(std::make_unique<Wls5Method>());
  out.push_back(std::make_unique<SgdpMethod>());
  return out;
}

std::unique_ptr<EquivalentWaveformMethod> make_method(std::string_view name) {
  if (util::iequals(name, "P1")) return std::make_unique<P1Method>();
  if (util::iequals(name, "P2")) return std::make_unique<P2Method>();
  if (util::iequals(name, "LSF3")) return std::make_unique<Lsf3Method>();
  if (util::iequals(name, "E4")) return std::make_unique<E4Method>();
  if (util::iequals(name, "WLS5")) return std::make_unique<Wls5Method>();
  if (util::iequals(name, "SGDP")) return std::make_unique<SgdpMethod>();
  throw util::Error::fmt("unknown equivalent-waveform method: ", name);
}

}  // namespace waveletic::core
