#pragma once

/// \file sensitivity.hpp
/// The output-to-input sensitivity ρ of a logic stage (Eq. 1 of the
/// paper):
///
///   ρ_noiseless(t) = (∂v_out/∂t) / (∂v_in/∂t)   on the noiseless pair,
///
/// nonzero only inside the noiseless critical region (input 10%→90%).
/// WLS5 consumes ρ as a function of *time*; SGDP re-indexes it by
/// *input voltage* (its Step 2), which is what lets it track noise that
/// falls outside the noiseless window.  Both views live here.

#include "wave/kernels.hpp"
#include "wave/metrics.hpp"
#include "wave/waveform.hpp"

namespace waveletic::core {

/// Sensitivity of one gate/stage computed from its noiseless input and
/// output waveforms.  Inputs must be rising-normalized (callers flip
/// falling transitions with Waveform::normalized_rising or build from
/// views produced by wave::normalized_rising_view).
///
/// Storage: the sampled ρ curves live either in the caller's
/// wave::Workspace (the allocation-free hot path — the curve must then
/// not outlive the enclosing workspace scope) or in a private arena
/// (the self-owning builds below).  The numerical results are bitwise
/// identical either way.  Move-only.
class SensitivityCurve {
 public:
  struct Options {
    wave::Thresholds thresholds{};
    /// |ρ| clamp guarding the derivative ratio where v̇_in → 0.
    double rho_clamp = 25.0;
    /// Samples across the critical region for the internal curves.
    size_t resolution = 129;
    /// Smoothing half-width (samples) applied to the raw derivative
    /// ratio before storing.
    size_t smooth = 2;
  };

  /// Builds ρ from the noiseless pair.  When `align_non_overlapping` is
  /// true and the input/output critical regions are disjoint (large
  /// intrinsic delay — the WLS5 failure mode), the output is first
  /// shifted back by δ = t50(out) − t50(in) (SGDP's additional step).
  /// Throws util::Error when either waveform never completes its
  /// transition.
  ///
  /// The primary overload samples every internal curve into `ws` — a
  /// warmed workspace makes the build heap-allocation-free.  The curve
  /// must not outlive the enclosing workspace scope.
  [[nodiscard]] static SensitivityCurve build(wave::WaveView in_rising,
                                              wave::WaveView out_rising,
                                              double vdd,
                                              bool align_non_overlapping,
                                              const Options& opt,
                                              wave::Workspace& ws);
  /// Self-owning builds (legacy surface): storage lives inside the
  /// returned curve.
  [[nodiscard]] static SensitivityCurve build(const wave::Waveform& in_rising,
                                              const wave::Waveform& out_rising,
                                              double vdd,
                                              bool align_non_overlapping,
                                              const Options& opt);
  [[nodiscard]] static SensitivityCurve build(const wave::Waveform& in_rising,
                                              const wave::Waveform& out_rising,
                                              double vdd,
                                              bool align_non_overlapping) {
    return build(in_rising, out_rising, vdd, align_non_overlapping,
                 Options{});
  }

  /// ρ as a function of time on the noiseless input's timebase; exactly
  /// zero outside the noiseless critical region (the WLS5 filter).
  [[nodiscard]] double rho_at_time(double t) const noexcept;

  /// ρ re-indexed by input voltage (SGDP Step 2); zero outside the
  /// voltage band the critical region spans.
  [[nodiscard]] double rho_at_voltage(double v) const noexcept;

  /// dρ/dv at input voltage v (for the second-order Taylor term of
  /// SGDP Step 3); zero outside the band.
  [[nodiscard]] double drho_dv(double v) const noexcept;

  /// 50%-to-50% shift between noiseless output and input (the δ of the
  /// paper's non-overlap handling).
  [[nodiscard]] double delta() const noexcept { return delta_; }

  /// Input voltage of maximum |ρ| — the receiving stage's effective
  /// switching center.
  [[nodiscard]] double peak_voltage() const noexcept;

  /// Lower edge of the switching band: the highest voltage below the ρ
  /// peak where |ρ| has fallen to `frac` of its peak (default: the
  /// quarter-peak edge).  A noise dip that stays above this level never
  /// re-enters the band deeply enough to re-switch the gate (SGDP's
  /// marginal-re-cross rejection).
  [[nodiscard]] double band_low_edge(double frac = 0.25) const noexcept;

  /// Whether the non-overlap alignment was actually applied.
  [[nodiscard]] bool aligned() const noexcept { return aligned_; }

  /// Noiseless critical region of the input (time frame).
  [[nodiscard]] const wave::CriticalRegion& region() const noexcept {
    return region_;
  }

  /// Sampled ρ(t), as an owning copy (for the Figure 2a reproduction).
  [[nodiscard]] wave::Waveform rho_time() const {
    return rho_time_.to_waveform();
  }
  /// Sampled ρ(v): time axis carries voltage (for Figure 2b dumps).
  [[nodiscard]] wave::Waveform rho_voltage() const {
    return rho_voltage_.to_waveform();
  }

  SensitivityCurve(SensitivityCurve&&) noexcept = default;
  SensitivityCurve& operator=(SensitivityCurve&&) noexcept = default;
  SensitivityCurve(const SensitivityCurve&) = delete;
  SensitivityCurve& operator=(const SensitivityCurve&) = delete;

 private:
  SensitivityCurve() = default;
  void init(wave::WaveView in_rising, wave::WaveView out_rising, double vdd,
            bool align_non_overlapping, const Options& opt,
            wave::Workspace& ws);

  /// Backing arena of the self-owning builds; empty when the curve was
  /// built into a caller workspace.  Slab addresses are stable under
  /// moves, so the views below survive moving the curve.
  wave::Workspace own_;
  wave::WaveView rho_time_;      // ρ vs t
  wave::WaveView rho_voltage_;   // ρ vs v (abscissa = voltage)
  wave::WaveView drho_voltage_;  // dρ/dv vs v
  wave::CriticalRegion region_{};
  double v_lo_ = 0.0;
  double v_hi_ = 0.0;
  double delta_ = 0.0;
  bool aligned_ = false;
};

}  // namespace waveletic::core
