#include "core/point_based.hpp"

#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::core {

Fit P1Method::fit(const MethodInput& input) const {
  input.require_noisy();
  input.require_noiseless_pair("P1");
  wave::Workspace local;
  wave::Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);
  const auto clean = input.noiseless_in_rising_view(ws);

  const auto slew =
      wave::slew_clean(clean, wave::Polarity::kRising, input.vdd);
  util::require(slew.has_value(), "P1: noiseless input has no 10-90 slew");
  const auto arrival = wave::last_crossing(noisy, 0.5 * input.vdd);
  util::require(arrival.has_value(), "P1: noisy input never crosses 50%");

  Fit fit;
  fit.ramp = wave::Ramp::from_arrival_slew(*arrival, *slew, input.vdd);
  return fit;
}

Fit P2Method::fit(const MethodInput& input) const {
  input.require_noisy();
  wave::Workspace local;
  wave::Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);

  const auto slew =
      wave::slew_noisy(noisy, wave::Polarity::kRising, input.vdd);
  util::require(slew.has_value(),
                "P2: noisy input has no first-10% to last-90% span");
  const auto arrival = wave::last_crossing(noisy, 0.5 * input.vdd);
  util::require(arrival.has_value(), "P2: noisy input never crosses 50%");

  Fit fit;
  fit.ramp = wave::Ramp::from_arrival_slew(*arrival, *slew, input.vdd);
  return fit;
}

}  // namespace waveletic::core
