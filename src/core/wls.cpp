#include "core/wls.hpp"

#include "core/lsf.hpp"
#include "la/solve.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::core {

Fit Wls5Method::fit(const MethodInput& input) const {
  input.require_noisy();
  input.require_noiseless_pair("WLS5");
  wave::Workspace local;
  wave::Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  const auto noisy = input.noisy_rising_view(ws);
  const auto clean_in = input.noiseless_in_rising_view(ws);
  const auto clean_out = input.noiseless_out_rising_view(ws);

  // WLS5 never applies the non-overlap alignment — that is SGDP's
  // addition.  Disjoint transitions simply produce zero weights here.
  const auto rho =
      SensitivityCurve::build(clean_in, clean_out, input.vdd,
                              /*align_non_overlapping=*/false, {}, ws);

  // Sample across the noiseless critical region — the support of ρ.
  // The noisy values arrive via one merge scan; the ρ² weights fold in
  // the scalar order.
  const auto& region = rho.region();
  const auto t = ws.alloc(static_cast<size_t>(input.samples));
  wave::sample_times_into(region.t_first, region.t_last, t);
  const auto v = ws.alloc(t.size());
  wave::sample_into(noisy, t, v);
  const auto w = ws.alloc(t.size());
  double weight_sum = 0.0;
  for (size_t k = 0; k < t.size(); ++k) {
    const double r = rho.rho_at_time(t[k]);
    w[k] = r * r;  // the squared Eq. 2 term weights by ρ²
    weight_sum += w[k];
  }

  if (weight_sum < 1e-12) {
    // Every weight vanished: the WLS5 failure mode.
    Fit fit = lsf3_fit(noisy, input.vdd, input.samples, ws);
    fit.degenerate_fallback = true;
    return fit;
  }

  const auto line = la::fit_line(t, v, w);
  if (line.slope <= 0.0) {
    Fit fit = lsf3_fit(noisy, input.vdd, input.samples, ws);
    fit.degenerate_fallback = true;
    return fit;
  }
  Fit fit;
  fit.ramp = wave::Ramp(line.slope, line.intercept, input.vdd);
  return fit;
}

}  // namespace waveletic::core
