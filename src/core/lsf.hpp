#pragma once

/// \file lsf.hpp
/// LSF3 (§2.2): plain least-squares fit of the line a·t + b to P samples
/// of the noisy waveform across its critical region — a purely
/// mathematical match with no knowledge of the receiving gate.

#include "core/method.hpp"

namespace waveletic::core {

class Lsf3Method final : public EquivalentWaveformMethod {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LSF3";
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<Lsf3Method>(*this);
  }
};

/// Shared helper: unweighted LSQ ramp over the noisy critical region;
/// used directly by LSF3 and as the degenerate fallback of WLS5/SGDP.
/// The primary overload draws all sampling buffers from `ws`; the
/// Waveform overload is the legacy allocating wrapper (bitwise
/// identical results).
[[nodiscard]] Fit lsf3_fit(wave::WaveView noisy_rising, double vdd,
                           int samples, wave::Workspace& ws);
[[nodiscard]] Fit lsf3_fit(const wave::Waveform& noisy_rising, double vdd,
                           int samples);

}  // namespace waveletic::core
