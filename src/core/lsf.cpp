#include "core/lsf.hpp"

#include "core/ramp_fit.hpp"
#include "la/solve.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::core {

Fit lsf3_fit(wave::WaveView noisy_rising, double vdd, int samples,
             wave::Workspace& ws) {
  const auto scope = ws.scope();
  // Sample the arrival event (see wave::arrival_event_region): glitch
  // tails that cannot move the latest 50% crossing are excluded so they
  // cannot dominate the sample budget.
  const auto region = wave::arrival_event_region(
      noisy_rising, wave::Polarity::kRising, vdd);
  util::require(region.has_value(),
                "LSF3: noisy input never completes a transition");
  util::require(samples >= 2, "sample_times: need >= 2 samples");
  const auto t = ws.alloc(static_cast<size_t>(samples));
  wave::sample_times_into(region->t_first, region->t_last, t);
  const auto v = ws.alloc(t.size());
  wave::sample_into(noisy_rising, t, v);

  // Least-squares fit of the *saturated* ramp: plain linear LSQ seeds
  // the Gauss-Newton refinement, which is what keeps long mid-rail
  // glitch tails from dragging the slope (tail samples saturate).
  const auto arrival = wave::last_crossing(noisy_rising, 0.5 * vdd);
  util::require(arrival.has_value(), "LSF3: noisy input never crosses 50%");
  wave::Ramp init = wave::Ramp::from_arrival_slew(
      *arrival, 0.8 * (region->t_last - region->t_first), vdd);
  const auto line = la::fit_line(t, v);
  Fit fit;
  if (line.slope > 0.0) {
    const wave::Ramp linear(line.slope, line.intercept, vdd);
    const double span = region->t_last - region->t_first;
    if (linear.t50() > region->t_first - span &&
        linear.t50() < region->t_last + span) {
      init = linear;
    }
  } else {
    fit.degenerate_fallback = true;
  }

  ClampedRampFit spec;
  spec.t = t;
  spec.v = v;
  spec.vdd = vdd;
  spec.init = init;
  spec.ws = &ws;
  fit.ramp = fit_clamped_ramp(spec);
  return fit;
}

Fit lsf3_fit(const wave::Waveform& noisy_rising, double vdd, int samples) {
  wave::Workspace local;
  return lsf3_fit(wave::WaveView(noisy_rising), vdd, samples, local);
}

Fit Lsf3Method::fit(const MethodInput& input) const {
  input.require_noisy();
  wave::Workspace local;
  wave::Workspace& ws = input.scratch(local);
  const auto scope = ws.scope();
  return lsf3_fit(input.noisy_rising_view(ws), input.vdd, input.samples, ws);
}

}  // namespace waveletic::core
