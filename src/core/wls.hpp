#pragma once

/// \file wls.hpp
/// WLS5 (§2.4, Hashimoto et al. TCAD'04): weighted least squares where
/// each squared sample difference is weighted by the sensitivity
/// ρ_noiseless(t_k) of the receiving gate, Eq. 2:
///
///   min_{a,b}  Σ_k [ ρ_noiseless(t_k) · (v_noisy(t_k) − a·t_k − b) ]²
///
/// ρ is zero outside the *noiseless* critical region, so noise that
/// falls outside that window is invisible to the fit — the shortcoming
/// SGDP fixes.  When every weight vanishes (noise pushed the transition
/// entirely outside the window, or the transitions never overlapped) the
/// method degenerates and falls back to LSF3, with the fact recorded in
/// Fit::degenerate_fallback.

#include "core/method.hpp"

namespace waveletic::core {

class Wls5Method final : public EquivalentWaveformMethod {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "WLS5";
  }
  [[nodiscard]] bool needs_noiseless() const noexcept override {
    return true;
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<Wls5Method>(*this);
  }
};

}  // namespace waveletic::core
