#include "core/ramp_fit.hpp"

#include <algorithm>
#include <cmath>

#include "la/gauss_newton.hpp"
#include "util/error.hpp"

namespace waveletic::core {

wave::Ramp fit_clamped_ramp(const ClampedRampFit& spec) {
  const size_t n = spec.t.size();
  util::require(n >= 4 && spec.v.size() == n,
                "fit_clamped_ramp: need >= 4 samples");
  util::require(spec.rho.empty() || spec.rho.size() == n,
                "fit_clamped_ramp: rho length mismatch");
  util::require(spec.drho.empty() || spec.drho.size() == n,
                "fit_clamped_ramp: drho length mismatch");

  // Scale time by the sample span so both unknowns are O(1).
  const double t_ref = spec.pin_time.value_or(
      0.5 * (spec.t.front() + spec.t.back()));
  const double tau = std::max(spec.t.back() - spec.t.front(), 1e-15);
  const double vdd = spec.vdd;
  const bool pinned = spec.pin_time.has_value();

  // Unknowns: [slope·τ, value at t_ref]; when pinned, the value at the
  // pin is fixed to vdd/2 and only the slope remains.  The per-sample
  // formula matches the historical scalar loop exactly; the ρ/ρ'
  // presence checks are hoisted out of the inner loop so each variant
  // is a single fused pass over the contiguous sample buffers.
  const double* t_p = spec.t.data();
  const double* v_p = spec.v.data();
  const double* rho_p = spec.rho.empty() ? nullptr : spec.rho.data();
  const double* drho_p = spec.drho.empty() ? nullptr : spec.drho.data();
  const auto fill = [&]<bool kHasRho, bool kHasDrho>(double s, double c,
                                                     std::span<double> r,
                                                     la::MatrixRef jac) {
    for (size_t k = 0; k < n; ++k) {
      const double u = (t_p[k] - t_ref) / tau;
      const double line = s * u + c;
      const bool active = line > 0.0 && line < vdd;
      const double clamped = std::clamp(line, 0.0, vdd);
      const double delta = v_p[k] - clamped;
      const double rho = kHasRho ? rho_p[k] : 1.0;
      const double drho = kHasDrho ? drho_p[k] : 0.0;
      r[k] = rho * delta + 0.5 * drho * delta * delta;
      // dr/dΔ · dΔ/d{s,c}; saturated samples have zero sensitivity.
      const double gain = active ? (rho + drho * delta) : 0.0;
      jac(k, 0) = -u * gain;
      if (!pinned) jac(k, 1) = -gain;
    }
  };
  const auto residual = [&](std::span<const double> x, std::span<double> r,
                            la::MatrixRef jac) {
    const double s = x[0];
    const double c = pinned ? 0.5 * vdd : x[1];
    if (rho_p != nullptr) {
      if (drho_p != nullptr) {
        fill.template operator()<true, true>(s, c, r, jac);
      } else {
        fill.template operator()<true, false>(s, c, r, jac);
      }
    } else if (drho_p != nullptr) {
      fill.template operator()<false, true>(s, c, r, jac);
    } else {
      fill.template operator()<false, false>(s, c, r, jac);
    }
  };

  double x_buf[2];
  size_t m = 0;
  x_buf[m++] = spec.init.a() * tau;
  if (!pinned) x_buf[m++] = spec.init.a() * t_ref + spec.init.b();
  la::GaussNewtonOptions gn;
  gn.max_iterations = spec.iterations;
  util::Workspace local;
  util::Workspace& ws = spec.ws != nullptr ? *spec.ws : local;
  (void)la::gauss_newton_into(residual, std::span<double>(x_buf, m), n, gn,
                              ws);

  const double slope = x_buf[0] / tau;
  const double intercept =
      (pinned ? 0.5 * vdd : x_buf[1]) - slope * t_ref;
  const auto sane = [&](double a, double b) {
    if (!(a > 0.0) || !std::isfinite(a) || !std::isfinite(b)) return false;
    const double t50 = (0.5 * vdd - b) / a;
    const double span = spec.t.back() - spec.t.front();
    return t50 > spec.t.front() - span && t50 < spec.t.back() + span;
  };
  if (!sane(slope, intercept)) return spec.init;
  return wave::Ramp(slope, intercept, vdd);
}

}  // namespace waveletic::core
