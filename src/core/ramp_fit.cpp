#include "core/ramp_fit.hpp"

#include <algorithm>
#include <cmath>

#include "la/gauss_newton.hpp"
#include "util/error.hpp"

namespace waveletic::core {

wave::Ramp fit_clamped_ramp(const ClampedRampFit& spec) {
  const size_t n = spec.t.size();
  util::require(n >= 4 && spec.v.size() == n,
                "fit_clamped_ramp: need >= 4 samples");
  util::require(spec.rho.empty() || spec.rho.size() == n,
                "fit_clamped_ramp: rho length mismatch");
  util::require(spec.drho.empty() || spec.drho.size() == n,
                "fit_clamped_ramp: drho length mismatch");

  // Scale time by the sample span so both unknowns are O(1).
  const double t_ref = spec.pin_time.value_or(
      0.5 * (spec.t.front() + spec.t.back()));
  const double tau = std::max(spec.t.back() - spec.t.front(), 1e-15);
  const double vdd = spec.vdd;
  const bool pinned = spec.pin_time.has_value();

  // Unknowns: [slope·τ, value at t_ref]; when pinned, the value at the
  // pin is fixed to vdd/2 and only the slope remains.
  const auto residual = [&](std::span<const double> x, la::Vector& r,
                            la::Matrix& jac) {
    const double s = x[0];
    const double c = pinned ? 0.5 * vdd : x[1];
    for (size_t k = 0; k < n; ++k) {
      const double u = (spec.t[k] - t_ref) / tau;
      const double line = s * u + c;
      const bool active = line > 0.0 && line < vdd;
      const double clamped = std::clamp(line, 0.0, vdd);
      const double delta = spec.v[k] - clamped;
      const double rho = spec.rho.empty() ? 1.0 : spec.rho[k];
      const double drho = spec.drho.empty() ? 0.0 : spec.drho[k];
      r[k] = rho * delta + 0.5 * drho * delta * delta;
      // dr/dΔ · dΔ/d{s,c}; saturated samples have zero sensitivity.
      const double gain = active ? (rho + drho * delta) : 0.0;
      jac(k, 0) = -u * gain;
      if (!pinned) jac(k, 1) = -gain;
    }
  };

  la::Vector x0;
  if (pinned) {
    x0 = {spec.init.a() * tau};
  } else {
    x0 = {spec.init.a() * tau, spec.init.a() * t_ref + spec.init.b()};
  }
  la::GaussNewtonOptions gn;
  gn.max_iterations = spec.iterations;
  const auto res = la::gauss_newton(residual, x0, n, gn);

  const double slope = res.x[0] / tau;
  const double intercept =
      (pinned ? 0.5 * vdd : res.x[1]) - slope * t_ref;
  const auto sane = [&](double a, double b) {
    if (!(a > 0.0) || !std::isfinite(a) || !std::isfinite(b)) return false;
    const double t50 = (0.5 * vdd - b) / a;
    const double span = spec.t.back() - spec.t.front();
    return t50 > spec.t.front() - span && t50 < spec.t.back() + span;
  };
  if (!sane(slope, intercept)) return spec.init;
  return wave::Ramp(slope, intercept, vdd);
}

}  // namespace waveletic::core
