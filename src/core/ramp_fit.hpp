#pragma once

/// \file ramp_fit.hpp
/// Shared nonlinear fitter for saturated ramps.  Γeff is the *clamped*
/// line clamp(a·t + b, 0, vdd) — once a sample sits where the ramp is
/// saturated at a rail, its residual no longer depends on (a, b).  This
/// matters for noisy waveforms whose glitch tail hovers mid-rail long
/// after the main transition: with an unclamped line those tail samples
/// drag the fit into meaningless slopes, while the saturated model
/// correctly lets the transition region determine Γeff.
///
/// The residual per sample is the first two Taylor terms of the
/// predicted output difference (Eq. 3 of the paper):
///
///   r_k = ρ_k·Δ_k + ½·ρ'_k·Δ_k²,   Δ_k = v_k − clamp(a·t_k + b)
///
/// with ρ ≡ 1, ρ' ≡ 0 reproducing the plain (LSF3-style) geometric fit.

#include <optional>
#include <span>

#include "util/workspace.hpp"
#include "wave/ramp.hpp"

namespace waveletic::core {

struct ClampedRampFit {
  std::span<const double> t;     ///< sample times
  std::span<const double> v;     ///< noisy voltages (rising-normalized)
  std::span<const double> rho;   ///< weights; empty = all ones
  std::span<const double> drho;  ///< dρ/dv; empty = first-order only
  double vdd = 1.2;
  wave::Ramp init;               ///< starting point (must be valid)
  int iterations = 10;
  /// When set, the line is constrained through (pin_time, vdd/2) and
  /// only the slope is fitted (used to anchor the arrival at the noisy
  /// waveform's latest 50% crossing when the free fit drifts).
  std::optional<double> pin_time{};
  /// Scratch arena for the Gauss-Newton refinement; null = a throwaway
  /// local arena (the legacy allocating path).  Bitwise identical.
  util::Workspace* ws = nullptr;
};

/// Gauss-Newton refinement of the saturated-ramp objective.  Returns
/// the refined ramp, or `init` unchanged when the problem is degenerate
/// (all samples saturated / no descent found).  The result is guaranteed
/// to have positive slope and a 50% crossing within one region-span of
/// the sample window.
[[nodiscard]] wave::Ramp fit_clamped_ramp(const ClampedRampFit& spec);

}  // namespace waveletic::core
