#pragma once

/// \file point_based.hpp
/// The point-based techniques of §2.1:
///
/// P1 — slew taken from the *noiseless* waveform's 10–90 transition (as
///      if the noise never happened); arrival at the latest 50% crossing
///      of the noisy waveform.
/// P2 — slew spanning the earliest 10% to the latest 90% crossing of the
///      *noisy* waveform; arrival at the latest 50% crossing.

#include "core/method.hpp"

namespace waveletic::core {

class P1Method final : public EquivalentWaveformMethod {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "P1";
  }
  [[nodiscard]] bool needs_noiseless() const noexcept override {
    return true;  // noiseless slew
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<P1Method>(*this);
  }
};

class P2Method final : public EquivalentWaveformMethod {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "P2";
  }
  [[nodiscard]] Fit fit(const MethodInput& input) const override;
  [[nodiscard]] std::unique_ptr<EquivalentWaveformMethod> clone()
      const override {
    return std::make_unique<P2Method>(*this);
  }
};

}  // namespace waveletic::core
