#pragma once

/// \file testbench.hpp
/// The paper's experimental setup (Figure 1): capacitively coupled
/// aggressor/victim lines, each driven by an INVX1 and received by a
/// 4INV whose fanout chain continues through 16INV and 64INV.
///
///   in_y ─INVX1─ y_0 ══line══ y_S(=in_u) ─4INV─ out_u ─16INV─ ─64INV─
///   in_x ─INVX1─ x_0 ══line══ x_S        ─4INV─ ...     (per aggressor)
///                     ║ Cm (distributed)
///
/// Config I  : one aggressor, 1000 µm lines (6 segments), ΣCm = 100 fF.
/// Config II : two aggressors x1/x2, 500 µm lines (3 segments),
///             ΣCm = 100 fF per aggressor.

#include <string>
#include <vector>

#include "charlib/vcl013.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "wave/waveform.hpp"

namespace waveletic::noise {

struct TestbenchSpec {
  int aggressors = 1;            ///< 1 = Config I, 2 = Config II
  int segments = 6;              ///< RC π-sections per line
  double r_per_segment = 8.5;    ///< [Ω]   (Figure 1)
  double c_per_segment = 4.8e-15;  ///< [F] (Figure 1)
  double cm_per_aggressor = 100e-15;  ///< ΣCm to the victim [F]
  double input_slew = 150e-12;   ///< 10-90 slew at in_x / in_y [s]
  double victim_t50 = 2e-9;      ///< victim input mid-crossing [s]
  /// Victim *input* transition direction (the line transition is the
  /// inverse because the driver inverts).
  wave::Polarity victim_input = wave::Polarity::kRising;
  /// Aggressor switches so its line transition opposes the victim's
  /// (worst-case delay noise).  False = same direction (speed-up).
  bool opposite_aggressor = true;

  /// Paper configurations.
  [[nodiscard]] static TestbenchSpec config1();
  [[nodiscard]] static TestbenchSpec config2();
};

/// A built testbench: the circuit plus the handles the runner needs.
struct Testbench {
  spice::Circuit circuit;
  TestbenchSpec spec;
  std::string in_y;    ///< victim driver input node
  std::string in_u;    ///< victim line far end = receiver input
  std::string out_u;   ///< victim receiver output
  /// Aggressor stimulus sources (retimed per noise case).
  std::vector<spice::VoltageSource*> aggressor_sources;
  spice::VoltageSource* victim_source = nullptr;

  /// Line transition direction at in_u (inverse of victim_input).
  [[nodiscard]] wave::Polarity line_polarity() const {
    return flip(spec.victim_input);
  }
  /// Receiver output direction at out_u.
  [[nodiscard]] wave::Polarity output_polarity() const {
    return spec.victim_input;
  }
};

/// Builds the full transistor-level testbench.
[[nodiscard]] Testbench build_testbench(const charlib::Pdk& pdk,
                                        const TestbenchSpec& spec);

/// Aggressor input stimulus for a given timing offset (relative to the
/// victim's t50).  `quiet` freezes it at the pre-transition level (the
/// noiseless reference run).
[[nodiscard]] std::unique_ptr<spice::Stimulus> aggressor_stimulus(
    const charlib::Pdk& pdk, const TestbenchSpec& spec, double offset,
    bool quiet);

}  // namespace waveletic::noise
