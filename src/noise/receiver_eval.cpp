#include "noise/receiver_eval.hpp"

#include "spice/engine.hpp"
#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::noise {

ReceiverEval::ReceiverEval(const charlib::Pdk& pdk, const Options& opt)
    : pdk_(pdk), opt_(opt) {
  charlib::add_supply(circuit_, pdk_);
  charlib::instantiate_cell(circuit_, pdk_, charlib::vcl013_cell("INVX4"),
                            "rcv", {{"A", "in_u"}, {"Y", "out_u"}}, "vdd");
  charlib::instantiate_cell(circuit_, pdk_, charlib::vcl013_cell("INVX16"),
                            "f16", {{"A", "out_u"}, {"Y", "w16"}}, "vdd");
  charlib::instantiate_cell(circuit_, pdk_, charlib::vcl013_cell("INVX64"),
                            "f64", {{"A", "w16"}, {"Y", "w64"}}, "vdd");
  source_ = &circuit_.emplace<spice::VoltageSource>(
      "v_in", circuit_.node("in_u"), spice::kGround,
      std::make_unique<spice::DcStimulus>(0.0));
}

wave::Waveform ReceiverEval::output_waveform(const wave::Waveform& input) {
  source_->set_stimulus(std::make_unique<spice::WaveformStimulus>(input));
  spice::TransientSpec tspec;
  tspec.dt = opt_.dt;
  tspec.t_stop = input.t_end() + opt_.tail;
  tspec.probes = {"out_u"};
  const auto res = spice::transient(circuit_, tspec);
  return res.waveform("out_u");
}

double ReceiverEval::output_arrival(const wave::Waveform& input,
                                    wave::Polarity in_polarity) {
  const auto out = output_waveform(input);
  const auto arr = wave::arrival_50(out, flip(in_polarity), pdk_.vdd);
  util::require(arr.has_value(),
                "receiver evaluation: output never crosses 50%");
  return *arr;
}

double ReceiverEval::ramp_arrival(const wave::Ramp& gamma,
                                  wave::Polarity in_polarity) {
  return output_arrival(gamma.denormalized(in_polarity, 256), in_polarity);
}

}  // namespace waveletic::noise
