#pragma once

/// \file scenario.hpp
/// Noise-injection scenario runner: simulates the Figure 1 testbench
/// for a sweep of aggressor timing offsets ("200 noise injection timing
/// cases in a range of 1 ns") and extracts the waveform set every
/// equivalent-waveform technique consumes.

#include <optional>
#include <span>
#include <vector>

#include "noise/testbench.hpp"
#include "spice/engine.hpp"
#include "wave/waveform.hpp"

namespace waveletic::noise {

/// Waveforms of one noise case at the victim receiver.
struct CaseWaveforms {
  double aggressor_offset = 0.0;
  wave::Waveform noisy_in;       ///< at in_u, aggressor switching
  wave::Waveform noisy_out;      ///< at out_u, aggressor switching
  wave::Polarity in_polarity = wave::Polarity::kFalling;
  wave::Polarity out_polarity = wave::Polarity::kRising;
  /// Golden receiver output arrival: latest 50% crossing at out_u.
  double golden_output_arrival = 0.0;
  /// Golden gate delay: latest in_u 50% crossing to out_u crossing.
  double golden_gate_delay = 0.0;
};

struct RunnerOptions {
  double dt = 1e-12;
  double t_stop = 0.0;  ///< 0 = auto (victim t50 + 3 ns)
  spice::Integration method = spice::Integration::kTrapezoidal;
};

/// Owns a testbench and runs noise cases on it.  The noiseless
/// reference (aggressors quiet) is simulated once and cached.
class NoiseRunner {
 public:
  NoiseRunner(const charlib::Pdk& pdk, const TestbenchSpec& spec,
              const RunnerOptions& opt = {});

  /// Noiseless victim waveform at in_u (aggressors quiet).
  [[nodiscard]] const wave::Waveform& noiseless_in() const noexcept {
    return noiseless_in_;
  }
  /// Noiseless receiver output at out_u.
  [[nodiscard]] const wave::Waveform& noiseless_out() const noexcept {
    return noiseless_out_;
  }
  [[nodiscard]] wave::Polarity in_polarity() const noexcept {
    return bench_.line_polarity();
  }
  [[nodiscard]] wave::Polarity out_polarity() const noexcept {
    return bench_.output_polarity();
  }
  [[nodiscard]] double vdd() const noexcept { return pdk_.vdd; }
  [[nodiscard]] const Testbench& bench() const noexcept { return bench_; }

  /// Runs one golden simulation with every aggressor switching at
  /// `offset` relative to the victim t50.
  [[nodiscard]] CaseWaveforms run_case(double offset);

  /// Per-aggressor offsets (size must match the aggressor count).
  [[nodiscard]] CaseWaveforms run_case(std::span<const double> offsets);

  /// Uniform offsets covering [-range/2, +range/2] (the paper's 1 ns
  /// window with 200 cases).
  [[nodiscard]] static std::vector<double> offsets(int cases, double range);

  /// Per-aggressor offset tuples for multi-aggressor sweeps: aggressor
  /// 0 sweeps the window uniformly; each further aggressor follows a
  /// golden-ratio stride so the tuple set covers the offset space
  /// without lockstep alignment (which would make every case a
  /// compound worst case).
  [[nodiscard]] static std::vector<std::vector<double>> offset_tuples(
      int cases, double range, int aggressors);

 private:
  void simulate_noiseless();

  charlib::Pdk pdk_;
  RunnerOptions opt_;
  Testbench bench_;
  wave::Waveform noiseless_in_;
  wave::Waveform noiseless_out_;
};

}  // namespace waveletic::noise
