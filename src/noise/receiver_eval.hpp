#pragma once

/// \file receiver_eval.hpp
/// Golden-quality evaluation of a gate's response to an arbitrary input
/// waveform.  Used to score every technique: the fitted Γeff drives a
/// transistor-level replica of the victim receiver (4INV with its
/// 16INV/64INV fanout chain), and the resulting output arrival is
/// compared against the golden noisy simulation.  This isolates the
/// waveform-modeling error — exactly what the paper's Table 1 measures
/// (techniques differ only in the input they present to the same gate).

#include "charlib/vcl013.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace waveletic::noise {

class ReceiverEval {
 public:
  struct Options {
    double dt = 1e-12;
    double tail = 1.5e-9;  ///< simulated time past the input window
  };

  /// Builds the receiver replica (4INV -> 16INV -> 64INV).
  ReceiverEval(const charlib::Pdk& pdk, const Options& opt);
  explicit ReceiverEval(const charlib::Pdk& pdk)
      : ReceiverEval(pdk, Options{}) {}

  /// Simulates the receiver driven by `input` (a real voltage waveform,
  /// already in its physical polarity) and returns the full output
  /// waveform at out_u.
  [[nodiscard]] wave::Waveform output_waveform(const wave::Waveform& input);

  /// Latest 50% crossing of the receiver output for the given input;
  /// `in_polarity` tells which way the output transitions (inverted).
  [[nodiscard]] double output_arrival(const wave::Waveform& input,
                                      wave::Polarity in_polarity);

  /// Convenience: evaluates a fitted ramp (rising-normalized Γeff) that
  /// represents a transition of polarity `in_polarity`.
  [[nodiscard]] double ramp_arrival(const wave::Ramp& gamma,
                                    wave::Polarity in_polarity);

 private:
  charlib::Pdk pdk_;
  Options opt_;
  spice::Circuit circuit_;
  spice::VoltageSource* source_ = nullptr;
};

}  // namespace waveletic::noise
