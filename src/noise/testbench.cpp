#include "noise/testbench.hpp"

#include "interconnect/coupled.hpp"
#include "util/error.hpp"

namespace waveletic::noise {

using charlib::CellSpec;
using charlib::Pdk;
using spice::Circuit;

TestbenchSpec TestbenchSpec::config1() {
  TestbenchSpec spec;  // 1000 µm lines: 6 segments at ~167 µm pitch
  spec.aggressors = 1;
  spec.segments = 6;
  spec.cm_per_aggressor = 100e-15;
  return spec;
}

TestbenchSpec TestbenchSpec::config2() {
  TestbenchSpec spec;  // 500 µm lines: 3 segments, two aggressors
  spec.aggressors = 2;
  spec.segments = 3;
  spec.cm_per_aggressor = 100e-15;
  return spec;
}

namespace {

/// Adds a driver + receiver fanout chain for one line; returns the
/// receiver input/output node names through out parameters.
void add_line_path(Circuit& ckt, const Pdk& pdk, const std::string& tag,
                   const std::string& near_node,
                   const std::string& far_node) {
  // Driver: INVX1 from in_<tag> onto the line near end.
  charlib::instantiate_cell(ckt, pdk, charlib::vcl013_cell("INVX1"),
                            "drv_" + tag, {{"A", "in_" + tag},
                                           {"Y", near_node}},
                            "vdd");
  // Receiver chain: 4INV -> 16INV -> 64INV (paper's fanout ladder).
  charlib::instantiate_cell(ckt, pdk, charlib::vcl013_cell("INVX4"),
                            "rcv_" + tag, {{"A", far_node},
                                           {"Y", "out_" + tag}},
                            "vdd");
  charlib::instantiate_cell(ckt, pdk, charlib::vcl013_cell("INVX16"),
                            "f16_" + tag, {{"A", "out_" + tag},
                                           {"Y", "w16_" + tag}},
                            "vdd");
  charlib::instantiate_cell(ckt, pdk, charlib::vcl013_cell("INVX64"),
                            "f64_" + tag, {{"A", "w16_" + tag},
                                           {"Y", "w64_" + tag}},
                            "vdd");
}

}  // namespace

std::unique_ptr<spice::Stimulus> aggressor_stimulus(const Pdk& pdk,
                                                    const TestbenchSpec& spec,
                                                    double offset,
                                                    bool quiet) {
  // Both drivers invert, so line directions mirror input directions:
  // aggressor line opposite to victim line  <=>  aggressor input
  // opposite to victim input.
  const bool aggressor_input_rising =
      spec.opposite_aggressor
          ? (spec.victim_input == wave::Polarity::kFalling)
          : (spec.victim_input == wave::Polarity::kRising);
  const double quiet_level = aggressor_input_rising ? 0.0 : pdk.vdd;
  if (quiet) {
    return std::make_unique<spice::DcStimulus>(quiet_level);
  }
  return std::make_unique<spice::RampStimulus>(
      spec.victim_t50 + offset, spec.input_slew / 0.8, 0.0, pdk.vdd,
      aggressor_input_rising);
}

Testbench build_testbench(const Pdk& pdk, const TestbenchSpec& spec) {
  util::require(spec.aggressors >= 1 && spec.aggressors <= 4,
                "testbench: 1..4 aggressors supported");
  Testbench tb;
  tb.spec = spec;
  Circuit& ckt = tb.circuit;
  charlib::add_supply(ckt, pdk);

  // Coupled bus: victim line "y" plus aggressors "x1..xn", every
  // aggressor coupled to the victim.
  interconnect::CoupledBusSpec bus;
  interconnect::LineSpec line;
  line.segments = spec.segments;
  line.r_total = spec.r_per_segment * spec.segments;
  line.c_total = spec.c_per_segment * spec.segments;
  line.name = "y";
  bus.lines.push_back(line);
  for (int i = 1; i <= spec.aggressors; ++i) {
    line.name = "x" + std::to_string(i);
    bus.lines.push_back(line);
    bus.couplings.push_back({static_cast<size_t>(i), 0,
                             spec.cm_per_aggressor});
  }
  const auto nodes = interconnect::build_coupled_bus(ckt, bus);

  // Victim path.
  add_line_path(ckt, pdk, "y", nodes.near_end(0), nodes.far_end(0));
  tb.in_y = "in_y";
  tb.in_u = nodes.far_end(0);
  tb.out_u = "out_y";
  tb.victim_source = &ckt.emplace<spice::VoltageSource>(
      "v_in_y", ckt.node("in_y"), spice::kGround,
      std::make_unique<spice::RampStimulus>(
          spec.victim_t50, spec.input_slew / 0.8, 0.0, pdk.vdd,
          spec.victim_input == wave::Polarity::kRising));

  // Aggressor paths (same structure, keeps the loading symmetric).
  for (int i = 1; i <= spec.aggressors; ++i) {
    const std::string tag = "x" + std::to_string(i);
    add_line_path(ckt, pdk, tag, nodes.near_end(static_cast<size_t>(i)),
                  nodes.far_end(static_cast<size_t>(i)));
    auto& src = ckt.emplace<spice::VoltageSource>(
        "v_in_" + tag, ckt.node("in_" + tag), spice::kGround,
        aggressor_stimulus(pdk, spec, 0.0, /*quiet=*/true));
    tb.aggressor_sources.push_back(&src);
  }
  return tb;
}

}  // namespace waveletic::noise
