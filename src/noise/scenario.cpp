#include "noise/scenario.hpp"

#include <cmath>

#include "util/error.hpp"
#include "wave/metrics.hpp"

namespace waveletic::noise {

NoiseRunner::NoiseRunner(const charlib::Pdk& pdk, const TestbenchSpec& spec,
                         const RunnerOptions& opt)
    : pdk_(pdk), opt_(opt), bench_(build_testbench(pdk, spec)) {
  if (opt_.t_stop <= 0.0) {
    opt_.t_stop = spec.victim_t50 + 3e-9;
  }
  simulate_noiseless();
}

void NoiseRunner::simulate_noiseless() {
  for (auto* src : bench_.aggressor_sources) {
    src->set_stimulus(
        aggressor_stimulus(pdk_, bench_.spec, 0.0, /*quiet=*/true));
  }
  spice::TransientSpec tspec;
  tspec.dt = opt_.dt;
  tspec.t_stop = opt_.t_stop;
  tspec.method = opt_.method;
  tspec.probes = {bench_.in_u, bench_.out_u};
  const auto res = spice::transient(bench_.circuit, tspec);
  noiseless_in_ = res.waveform(bench_.in_u);
  noiseless_out_ = res.waveform(bench_.out_u);

  // Sanity: the noiseless victim must complete its transition.
  const auto arr = wave::arrival_50(noiseless_in_, in_polarity(), pdk_.vdd);
  util::require(arr.has_value(),
                "noiseless victim never crosses 50% — testbench broken");
}

CaseWaveforms NoiseRunner::run_case(double offset) {
  const std::vector<double> offsets(bench_.aggressor_sources.size(), offset);
  return run_case(offsets);
}

CaseWaveforms NoiseRunner::run_case(std::span<const double> offsets) {
  util::require(offsets.size() == bench_.aggressor_sources.size(),
                "run_case: ", offsets.size(), " offsets for ",
                bench_.aggressor_sources.size(), " aggressors");
  for (size_t i = 0; i < offsets.size(); ++i) {
    bench_.aggressor_sources[i]->set_stimulus(
        aggressor_stimulus(pdk_, bench_.spec, offsets[i], /*quiet=*/false));
  }
  spice::TransientSpec tspec;
  tspec.dt = opt_.dt;
  tspec.t_stop = opt_.t_stop;
  tspec.method = opt_.method;
  tspec.probes = {bench_.in_u, bench_.out_u};
  const auto res = spice::transient(bench_.circuit, tspec);

  CaseWaveforms cw;
  cw.aggressor_offset = offsets.empty() ? 0.0 : offsets[0];
  cw.noisy_in = res.waveform(bench_.in_u);
  cw.noisy_out = res.waveform(bench_.out_u);
  cw.in_polarity = in_polarity();
  cw.out_polarity = out_polarity();

  const auto out_arr = wave::arrival_50(cw.noisy_out, cw.out_polarity,
                                        pdk_.vdd);
  const auto in_arr = wave::arrival_50(cw.noisy_in, cw.in_polarity,
                                       pdk_.vdd);
  util::require(out_arr && in_arr,
                "noise case at offset ", cw.aggressor_offset,
                ": victim transition incomplete");
  cw.golden_output_arrival = *out_arr;
  cw.golden_gate_delay = *out_arr - *in_arr;
  return cw;
}

std::vector<std::vector<double>> NoiseRunner::offset_tuples(int cases,
                                                            double range,
                                                            int aggressors) {
  util::require(aggressors >= 1, "offset_tuples: need >= 1 aggressor");
  const auto base = offsets(cases, range);
  std::vector<std::vector<double>> out;
  out.reserve(base.size());
  // Golden-ratio stride decorrelates the additional aggressors from the
  // primary sweep while keeping the tuple set deterministic.
  constexpr double kGolden = 0.6180339887498949;
  for (size_t i = 0; i < base.size(); ++i) {
    std::vector<double> tuple(static_cast<size_t>(aggressors));
    tuple[0] = base[i];
    for (int a = 1; a < aggressors; ++a) {
      const double frac = std::fmod(
          static_cast<double>(i + 1) * kGolden * static_cast<double>(a + 1),
          1.0);
      tuple[static_cast<size_t>(a)] = -0.5 * range + frac * range;
    }
    out.push_back(std::move(tuple));
  }
  return out;
}

std::vector<double> NoiseRunner::offsets(int cases, double range) {
  util::require(cases >= 1, "offsets: need at least one case");
  std::vector<double> out(static_cast<size_t>(cases));
  if (cases == 1) {
    out[0] = 0.0;
    return out;
  }
  const double step = range / static_cast<double>(cases - 1);
  for (int i = 0; i < cases; ++i) {
    out[static_cast<size_t>(i)] = -0.5 * range + step * i;
  }
  return out;
}

}  // namespace waveletic::noise
