#include "netlist/verilog.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace waveletic::netlist {
namespace {

using util::Error;
using util::require;

struct Token {
  enum class Kind { kIdent, kPunct, kEnd } kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) return tok;
    const char c = src_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\' || c == '$') {
      tok.kind = Token::Kind::kIdent;
      // Verilog escaped identifiers (\name ) run to whitespace.
      const bool escaped = (c == '\\');
      if (escaped) ++pos_;
      while (pos_ < src_.size()) {
        const char d = src_[pos_];
        const bool ident_char = std::isalnum(static_cast<unsigned char>(d)) ||
                                d == '_' || d == '$' || d == '.';
        if (escaped ? std::isspace(static_cast<unsigned char>(d)) == 0
                    : ident_char) {
          tok.text += d;
          ++pos_;
        } else {
          break;
        }
      }
      return tok;
    }
    tok.kind = Token::Kind::kPunct;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

 private:
  void skip() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        require(pos_ + 1 < src_.size(), "verilog: unterminated comment");
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lexer_(src) { advance(); }

  Netlist run() {
    expect_ident("module");
    Netlist nl;
    nl.name = expect_any_ident("module name");
    // Header port list (names only) — recorded, directions come later.
    std::vector<std::string> header_ports;
    if (cur_.text == "(") {
      advance();
      while (cur_.text != ")") {
        require(cur_.kind == Token::Kind::kIdent, "line ", cur_.line,
                ": expected port name");
        header_ports.push_back(cur_.text);
        advance();
        if (cur_.text == ",") advance();
      }
      advance();  // ')'
    }
    expect_punct(";");

    while (cur_.kind == Token::Kind::kIdent && cur_.text != "endmodule") {
      if (cur_.text == "input" || cur_.text == "output") {
        const auto dir = cur_.text == "input" ? PortDirection::kInput
                                              : PortDirection::kOutput;
        advance();
        for (const auto& name : ident_list()) {
          nl.add_port(name, dir);
        }
      } else if (cur_.text == "wire") {
        advance();
        for (const auto& name : ident_list()) {
          nl.add_net(name);
        }
      } else if (cur_.text == "assign" || cur_.text == "inout") {
        throw Error::fmt("line ", cur_.line, ": unsupported construct '",
                         cur_.text, "'");
      } else {
        parse_instance(nl);
      }
    }
    expect_ident("endmodule");

    // Every header port must have received a direction.
    for (const auto& p : header_ports) {
      require(nl.find_port(p) != nullptr, "port ", p,
              " missing input/output declaration");
    }
    nl.validate();
    return nl;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect_punct(const char* p) {
    require(cur_.kind == Token::Kind::kPunct && cur_.text == p, "line ",
            cur_.line, ": expected '", p, "', got '", cur_.text, "'");
    advance();
  }

  void expect_ident(const char* word) {
    require(cur_.kind == Token::Kind::kIdent && cur_.text == word, "line ",
            cur_.line, ": expected '", word, "', got '", cur_.text, "'");
    advance();
  }

  std::string expect_any_ident(const char* what) {
    require(cur_.kind == Token::Kind::kIdent, "line ", cur_.line,
            ": expected ", what);
    std::string text = cur_.text;
    advance();
    return text;
  }

  /// name (, name)* ;
  std::vector<std::string> ident_list() {
    std::vector<std::string> names;
    names.push_back(expect_any_ident("identifier"));
    while (cur_.text == ",") {
      advance();
      names.push_back(expect_any_ident("identifier"));
    }
    expect_punct(";");
    return names;
  }

  /// CELL instname ( .PIN(net), ... ) ;
  void parse_instance(Netlist& nl) {
    Instance inst;
    inst.cell = expect_any_ident("cell name");
    inst.name = expect_any_ident("instance name");
    expect_punct("(");
    while (cur_.text != ")") {
      require(cur_.text == ".", "line ", cur_.line,
              ": only named connections (.PIN(net)) are supported");
      advance();
      const std::string pin = expect_any_ident("pin name");
      expect_punct("(");
      const std::string net = expect_any_ident("net name");
      expect_punct(")");
      require(inst.pins.emplace(pin, net).second, "line ", cur_.line,
              ": duplicate connection for pin ", pin);
      if (cur_.text == ",") advance();
    }
    advance();  // ')'
    expect_punct(";");
    nl.add_instance(std::move(inst));
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

Netlist parse_verilog(std::string_view text) {
  Parser parser(text);
  return parser.run();
}

Netlist parse_verilog_file(const std::string& path) {
  std::ifstream file(path);
  require(file.good(), "cannot open verilog file: ", path);
  std::stringstream ss;
  ss << file.rdbuf();
  return parse_verilog(ss.str());
}

}  // namespace waveletic::netlist
