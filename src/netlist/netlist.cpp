#include "netlist/netlist.hpp"

#include "util/error.hpp"

namespace waveletic::netlist {

void Netlist::add_port(std::string port_name, PortDirection direction) {
  util::require(find_port(port_name) == nullptr, "duplicate port ",
                port_name);
  add_net(port_name);
  ports_.push_back({std::move(port_name), direction});
}

void Netlist::add_net(std::string net_name) {
  if (has_net(net_name)) return;
  net_index_.emplace(net_name, nets_.size());
  nets_.push_back(std::move(net_name));
}

void Netlist::add_instance(Instance inst) {
  util::require(find_instance(inst.name) == nullptr, "duplicate instance ",
                inst.name);
  for (const auto& [pin, net] : inst.pins) {
    add_net(net);
  }
  instances_.push_back(std::move(inst));
}

bool Netlist::has_net(const std::string& net_name) const noexcept {
  return net_index_.count(net_name) > 0;
}

int Netlist::net_ordinal(const std::string& net_name) const noexcept {
  const auto it = net_index_.find(net_name);
  return it == net_index_.end() ? -1 : static_cast<int>(it->second);
}

const Port* Netlist::find_port(const std::string& port_name) const noexcept {
  for (const auto& p : ports_) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

const Instance* Netlist::find_instance(
    const std::string& inst_name) const noexcept {
  for (const auto& inst : instances_) {
    if (inst.name == inst_name) return &inst;
  }
  return nullptr;
}

std::vector<Netlist::PinRef> Netlist::pins_on_net(
    const std::string& net_name) const {
  std::vector<PinRef> out;
  for (const auto& inst : instances_) {
    for (const auto& [pin, net] : inst.pins) {
      if (net == net_name) out.push_back({&inst, pin});
    }
  }
  return out;
}

void Netlist::validate() const {
  for (const auto& inst : instances_) {
    util::require(!inst.pins.empty(), "instance ", inst.name,
                  " has no connections");
    for (const auto& [pin, net] : inst.pins) {
      util::require(has_net(net), "instance ", inst.name, " pin ", pin,
                    " references unknown net ", net);
    }
  }
  for (const auto& port : ports_) {
    util::require(has_net(port.name), "port ", port.name, " has no net");
  }
}

}  // namespace waveletic::netlist
