#include "netlist/netlist.hpp"

#include "util/error.hpp"

namespace waveletic::netlist {

void Netlist::add_port(std::string port_name, PortDirection direction) {
  util::require(find_port(port_name) == nullptr, "duplicate port ",
                port_name);
  add_net(port_name);
  ++net_degree_[static_cast<size_t>(net_ordinal(port_name))];
  ports_.push_back({std::move(port_name), direction});
}

void Netlist::add_net(std::string net_name) {
  if (has_net(net_name)) return;
  net_index_.emplace(net_name, nets_.size());
  nets_.push_back(std::move(net_name));
  net_degree_.push_back(0);
}

void Netlist::add_instance(Instance inst) {
  util::require(find_instance(inst.name) == nullptr, "duplicate instance ",
                inst.name);
  for (const auto& [pin, net] : inst.pins) {
    add_net(net);
    ++net_degree_[static_cast<size_t>(net_ordinal(net))];
  }
  instances_.push_back(std::move(inst));
}

void Netlist::retype_instance(const std::string& instance_name,
                              std::string new_cell) {
  for (auto& inst : instances_) {
    if (inst.name == instance_name) {
      inst.cell = std::move(new_cell);
      return;
    }
  }
  throw util::Error::fmt("retype_instance: unknown instance '", instance_name,
                         "' in netlist '", name, "'");
}

void Netlist::reroute_pin(const std::string& instance_name,
                          const std::string& pin,
                          const std::string& new_net) {
  Instance* target = nullptr;
  for (auto& inst : instances_) {
    if (inst.name == instance_name) {
      target = &inst;
      break;
    }
  }
  util::require(target != nullptr, "reroute_pin: unknown instance '",
                instance_name, "' in netlist '", name, "'");
  const auto it = target->pins.find(pin);
  util::require(it != target->pins.end(), "reroute_pin: instance '",
                instance_name, "' has no pin '", pin, "'");
  if (it->second == new_net) return;
  add_net(new_net);  // no-op when present; appends otherwise
  --net_degree_[static_cast<size_t>(net_ordinal(it->second))];
  ++net_degree_[static_cast<size_t>(net_ordinal(new_net))];
  it->second = new_net;
}

bool Netlist::has_net(const std::string& net_name) const noexcept {
  return net_index_.count(net_name) > 0;
}

int Netlist::net_ordinal(const std::string& net_name) const noexcept {
  const auto it = net_index_.find(net_name);
  return it == net_index_.end() ? -1 : static_cast<int>(it->second);
}

int Netlist::net_degree(int net_ordinal) const noexcept {
  return net_ordinal >= 0 &&
                 static_cast<size_t>(net_ordinal) < net_degree_.size()
             ? net_degree_[static_cast<size_t>(net_ordinal)]
             : 0;
}

int Netlist::net_degree(const std::string& net_name) const noexcept {
  return net_degree(net_ordinal(net_name));
}

Netlist::Components Netlist::connected_components() const {
  // Union-find over net ordinals; every instance unites the nets its
  // pins touch (pins is an ordered map, so the walk is deterministic).
  std::vector<int> parent(nets_.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& inst : instances_) {
    int first = -1;
    for (const auto& [pin, net] : inst.pins) {
      const int ord = net_ordinal(net);
      if (first < 0) {
        first = ord;
      } else {
        parent[static_cast<size_t>(find(ord))] = find(first);
      }
    }
  }
  Components out;
  out.net_component.assign(nets_.size(), -1);
  for (size_t i = 0; i < nets_.size(); ++i) {
    const auto root = static_cast<size_t>(find(static_cast<int>(i)));
    if (out.net_component[root] < 0) out.net_component[root] = out.count++;
    out.net_component[i] = out.net_component[root];
  }
  return out;
}

std::vector<int> Netlist::transitive_fanout_nets(
    std::span<const int> seeds,
    const std::function<bool(const Instance&, const std::string& pin)>&
        drives) const {
  // One pass over every instance pin builds the net → consuming
  // instances index and each instance's driven-net list; the closure is
  // then a plain BFS over net ordinals.
  std::vector<std::vector<int>> consumers(nets_.size());  // net → instances
  std::vector<std::vector<int>> driven(instances_.size());  // inst → nets
  for (size_t i = 0; i < instances_.size(); ++i) {
    for (const auto& [pin, net] : instances_[i].pins) {
      const int ord = net_ordinal(net);
      if (drives(instances_[i], pin)) {
        driven[i].push_back(ord);
      } else {
        consumers[static_cast<size_t>(ord)].push_back(static_cast<int>(i));
      }
    }
  }
  std::vector<char> reached(nets_.size(), 0);
  std::vector<int> stack;
  for (const int seed : seeds) {
    if (seed < 0 || static_cast<size_t>(seed) >= nets_.size()) continue;
    if (!reached[static_cast<size_t>(seed)]) {
      reached[static_cast<size_t>(seed)] = 1;
      stack.push_back(seed);
    }
  }
  while (!stack.empty()) {
    const int net = stack.back();
    stack.pop_back();
    for (const int inst : consumers[static_cast<size_t>(net)]) {
      for (const int out : driven[static_cast<size_t>(inst)]) {
        if (!reached[static_cast<size_t>(out)]) {
          reached[static_cast<size_t>(out)] = 1;
          stack.push_back(out);
        }
      }
    }
  }
  std::vector<int> out;
  for (size_t i = 0; i < nets_.size(); ++i) {
    if (reached[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

const Instance* Netlist::driver_of(
    int net_ordinal,
    const std::function<bool(const Instance&, const std::string& pin)>&
        drives) const {
  if (net_ordinal < 0 || static_cast<size_t>(net_ordinal) >= nets_.size()) {
    return nullptr;
  }
  const std::string& net = nets_[static_cast<size_t>(net_ordinal)];
  for (const auto& inst : instances_) {
    for (const auto& [pin, pin_net] : inst.pins) {
      if (pin_net == net && drives(inst, pin)) return &inst;
    }
  }
  return nullptr;
}

const Port* Netlist::find_port(const std::string& port_name) const noexcept {
  for (const auto& p : ports_) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

const Instance* Netlist::find_instance(
    const std::string& inst_name) const noexcept {
  for (const auto& inst : instances_) {
    if (inst.name == inst_name) return &inst;
  }
  return nullptr;
}

std::vector<Netlist::PinRef> Netlist::pins_on_net(
    const std::string& net_name) const {
  std::vector<PinRef> out;
  for (const auto& inst : instances_) {
    for (const auto& [pin, net] : inst.pins) {
      if (net == net_name) out.push_back({&inst, pin});
    }
  }
  return out;
}

void Netlist::validate() const {
  for (const auto& inst : instances_) {
    util::require(!inst.pins.empty(), "instance ", inst.name,
                  " has no connections");
    for (const auto& [pin, net] : inst.pins) {
      util::require(has_net(net), "instance ", inst.name, " pin ", pin,
                    " references unknown net ", net);
    }
  }
  for (const auto& port : ports_) {
    util::require(has_net(port.name), "port ", port.name, " has no net");
  }
}

}  // namespace waveletic::netlist
