#pragma once

/// \file generators.hpp
/// Synthetic netlist generators shared by tests, benches and demos.

#include "netlist/netlist.hpp"

namespace waveletic::netlist {

/// `width` parallel 3-inverter chains (INVX1, INVX1, INVX4 per chain,
/// nets c<i>_1..c<i>_3 from input a<i>) folded pairwise through
/// NAND2X1 stages into a single output `y`; odd chains pass through an
/// INVX1.  Wide levels exercise intra-level parallelism, the fold
/// exercises multi-input relax ordering.  Requires the VCL013 cell set.
[[nodiscard]] Netlist make_chain_tree(int width);

}  // namespace waveletic::netlist
