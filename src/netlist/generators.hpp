#pragma once

/// \file generators.hpp
/// Synthetic netlist generators shared by tests, benches and demos.

#include "netlist/netlist.hpp"

namespace waveletic::netlist {

/// `width` parallel 3-inverter chains (INVX1, INVX1, INVX4 per chain,
/// nets c<i>_1..c<i>_3 from input a<i>) folded pairwise through
/// NAND2X1 stages into a single output `y`; odd chains pass through an
/// INVX1.  Wide levels exercise intra-level parallelism, the fold
/// exercises multi-input relax ordering.  Requires the VCL013 cell set.
[[nodiscard]] Netlist make_chain_tree(int width);

/// Seed-deterministic random layered DAG over the fast VCL013 cell set
/// (INVX1/INVX4/NAND2X1): `inputs` primary inputs feed
/// `layers` layers of `layer_width` random gates; each gate draws its
/// 1–2 source signals from the already-created ones (biased towards
/// recent layers, so the graph is deep), every input is consumed at
/// least once, and every signal nothing consumes becomes an output
/// port.  Varied fanouts, reconvergence and multiple output cones make
/// this the partitioner/determinism torture shape.  Uses a private LCG
/// — the same seed builds the same netlist on every platform.
[[nodiscard]] Netlist make_random_dag(uint64_t seed, int inputs, int layers,
                                      int layer_width);

}  // namespace waveletic::netlist
