#pragma once

/// \file generators.hpp
/// Synthetic netlist generators shared by tests, benches and demos.

#include "netlist/netlist.hpp"

namespace waveletic::netlist {

/// `width` parallel 3-inverter chains (INVX1, INVX1, INVX4 per chain,
/// nets c<i>_1..c<i>_3 from input a<i>) folded pairwise through
/// NAND2X1 stages into a single output `y`; odd chains pass through an
/// INVX1.  Wide levels exercise intra-level parallelism, the fold
/// exercises multi-input relax ordering.  Requires the VCL013 cell set.
[[nodiscard]] Netlist make_chain_tree(int width);

/// Seed-deterministic random layered DAG over the fast VCL013 cell set
/// (INVX1/INVX4/NAND2X1): `inputs` primary inputs feed
/// `layers` layers of `layer_width` random gates; each gate draws its
/// 1–2 source signals from the already-created ones (biased towards
/// recent layers, so the graph is deep), every input is consumed at
/// least once, and every signal nothing consumes becomes an output
/// port.  Varied fanouts, reconvergence and multiple output cones make
/// this the partitioner/determinism torture shape.  Uses a private LCG
/// — the same seed builds the same netlist on every platform.
[[nodiscard]] Netlist make_random_dag(uint64_t seed, int inputs, int layers,
                                      int layer_width);

/// How stitch_blocks() wires the tiled block copies together.
enum class StitchTopology {
  /// Every copy's inputs/outputs are top-level ports — copies are
  /// independent cones.  Interface net loads fold identically to the
  /// flat design, so hierarchical-vs-flat timing inside the expanded
  /// copy is bitwise identical (the contract tests/test_sta_hier.cpp
  /// enforces).
  kParallel,
  /// Copy k's inputs are driven by copy k-1's outputs (round-robin when
  /// the counts differ); only copy 0's inputs and the last copy's
  /// outputs surface as top-level ports.  Interface loads fold in a
  /// different float-sum order than flat, so agreement is approximate.
  kChain,
};

/// Options of stitch_blocks() / stitch_blocks_flat().
struct StitchOptions {
  /// Number of block copies tiled into the design.
  size_t copies = 4;
  /// Wiring between copies.
  StitchTopology topology = StitchTopology::kParallel;
  /// Index of the one copy left expanded flat (the "block under
  /// analysis"); negative abstracts every copy.  Ignored by
  /// stitch_blocks_flat(), which expands all copies.
  int expanded = 0;
  /// Macro cell name abstracted copies instantiate — must match the
  /// BlockModel/to_cell() name registered in the engine's library.
  std::string block_cell = "BLOCK";
};

/// Tiles `options.copies` copies of `block` into one hierarchical
/// design: copy k's instances and interior nets are prefixed "u<k>/";
/// its ports become "u<k>/<port>" nets (top-level ports or chain nets
/// per the topology).  Abstracted copies collapse to ONE instance
/// "u<k>.blk" of `options.block_cell` whose pins are the block's ports
/// (the ".blk" suffix keeps macro pin vertices "u<k>.blk/<port>" out of
/// the "u<k>/<port>" port/net namespace); the
/// expanded copy keeps its full gate-level contents.  The result is the
/// hierarchical testbench HierDesign (sta/hiergraph.hpp) analyzes.
[[nodiscard]] Netlist stitch_blocks(const Netlist& block,
                                    const StitchOptions& options);

/// The fully-flat oracle of stitch_blocks(): same tiling, same names,
/// but every copy expanded gate-level.  Feasible only at small copy
/// counts; the bitwise-agreement tests compare against this.
[[nodiscard]] Netlist stitch_blocks_flat(const Netlist& block,
                                         const StitchOptions& options);

/// Flat-equivalent timing-vertex count of a stitched design: copies ×
/// (block ports + Σ instance pins) + extra top chain nets — the size
/// the flat engine would have to levelize, used by the 1M-vertex bench
/// headline without ever materializing the flat graph.
[[nodiscard]] size_t stitched_flat_vertex_count(const Netlist& block,
                                                const StitchOptions& options);

}  // namespace waveletic::netlist
