#pragma once

/// \file verilog.hpp
/// Structural-Verilog subset parser — the netlist format the STA
/// examples consume:
///
///   module top (a, b, y);
///     input a, b;
///     output y;
///     wire n1;
///     INVX1 u1 (.A(a), .Y(n1));
///     NAND2X1 u2 (.A(n1), .B(b), .Y(y));
///   endmodule
///
/// Supported: one module per file, named port connections, input/
/// output/wire declarations (comma lists), // and /* */ comments.
/// Unsupported (throws): positional connections, buses, assign,
/// hierarchy.

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace waveletic::netlist {

/// Parses source text; throws util::Error with line info on bad syntax.
[[nodiscard]] Netlist parse_verilog(std::string_view text);

/// Reads and parses a file.
[[nodiscard]] Netlist parse_verilog_file(const std::string& path);

}  // namespace waveletic::netlist
