#pragma once

/// \file netlist.hpp
/// Gate-level netlist: cell instances wired by nets, with primary
/// input/output ports.  This is the structure the mini-STA engine
/// levelizes; it is deliberately library-agnostic (cells are referenced
/// by name and resolved against a liberty::Library at analysis time).

#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace waveletic::netlist {

struct Instance {
  std::string name;
  std::string cell;                         ///< library cell name
  std::map<std::string, std::string> pins;  ///< pin name -> net name
};

enum class PortDirection { kInput, kOutput };

struct Port {
  std::string name;  ///< also the net it connects to
  PortDirection direction = PortDirection::kInput;
};

class Netlist {
 public:
  std::string name = "top";

  void add_port(std::string port_name, PortDirection direction);
  void add_net(std::string net_name);
  /// Adds an instance; creates referenced nets that don't exist yet.
  void add_instance(Instance inst);

  // -- incremental edits (the ECO-service write path) ----------------------
  // Ordinal-stability contract: edits never remove or reorder nets,
  // ports, or instances — reroute_pin() may only APPEND a new net — so
  // every ordinal minted before an edit (net_ordinal(), NetId/PortId
  // handles, per-net table indices) stays valid afterwards.

  /// Replaces the library cell of an existing instance (resize/retype).
  /// Pin connections are untouched, so the pin-name set must be
  /// compatible with the new cell — checked at analysis time (and up
  /// front by sta::validate_edits()).  Throws util::Error for an
  /// unknown instance.
  void retype_instance(const std::string& instance_name,
                       std::string new_cell);
  /// Moves one pin of an instance onto `new_net`, creating the net if
  /// absent (appended after all existing nets, keeping every existing
  /// ordinal stable).  Net degrees are maintained incrementally.
  /// Throws util::Error for an unknown instance or pin.
  void reroute_pin(const std::string& instance_name, const std::string& pin,
                   const std::string& new_net);

  [[nodiscard]] const std::vector<Port>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] const std::vector<std::string>& nets() const noexcept {
    return nets_;
  }
  [[nodiscard]] const std::vector<Instance>& instances() const noexcept {
    return instances_;
  }

  [[nodiscard]] bool has_net(const std::string& net_name) const noexcept;
  /// Ordinal of `net_name` in nets() (stable for the netlist's
  /// lifetime), or -1 when absent.  O(1); this is what NetId handles
  /// index.
  [[nodiscard]] int net_ordinal(const std::string& net_name) const noexcept;
  /// Number of connections on a net (instance pins + ports, driver
  /// included), maintained incrementally — O(1).  This is the
  /// "low-fanout boundary" metric the STA partitioner cuts at: a net of
  /// degree ≤ k+1 drives at most k sinks.
  [[nodiscard]] int net_degree(int net_ordinal) const noexcept;
  [[nodiscard]] int net_degree(const std::string& net_name) const noexcept;
  [[nodiscard]] const Port* find_port(
      const std::string& port_name) const noexcept;
  [[nodiscard]] const Instance* find_instance(
      const std::string& inst_name) const noexcept;

  /// Instances whose given pin connects to `net_name`.
  struct PinRef {
    const Instance* instance;
    std::string pin;
  };
  [[nodiscard]] std::vector<PinRef> pins_on_net(
      const std::string& net_name) const;

  /// Structural checks used before timing analysis:
  ///  - every instance pin connects to a declared net,
  ///  - port names are unique and map to nets.
  /// Throws util::Error on violations.
  void validate() const;

  /// Structural partition of the netlist: weakly-connected components
  /// over (instance, net) incidence.  `net_component[ordinal]` is the
  /// component id of each net (dense, 0-based, numbered by first net
  /// ordinal); nets of different components can never influence each
  /// other.  Computed on demand — O(instances × pins).
  struct Components {
    std::vector<int> net_component;
    int count = 0;
  };
  [[nodiscard]] Components connected_components() const;

  /// True when the net crosses the top-level interface (it is a port
  /// net) — an "interface net" for hierarchical composition.
  [[nodiscard]] bool is_interface_net(
      const std::string& net_name) const noexcept {
    return find_port(net_name) != nullptr;
  }

  /// Transitive fanout of the `seeds` net ordinals: every net reachable
  /// downstream through instances, seeds included, sorted ascending.
  /// The netlist is library-agnostic and cannot know pin directions, so
  /// `drives` decides which instance pins are outputs: an instance is
  /// reached when a non-driving pin of it touches a reached net, and
  /// its driving pins' nets then join the set.  This is the net-level
  /// fanout cone of the paper's central observation — a noise bump on a
  /// net perturbs timing only through these nets — and the netlist-
  /// layer counterpart of the vertex cone StaEngine::delta_plan()
  /// re-propagates.  O(total pins) per call; ignores seed ordinals that
  /// are out of range.
  [[nodiscard]] std::vector<int> transitive_fanout_nets(
      std::span<const int> seeds,
      const std::function<bool(const Instance&, const std::string& pin)>&
          drives) const;

  /// The instance driving the net (its first instance in instance order
  /// with a driving pin on it, by the same `drives` oracle as
  /// transitive_fanout_nets), or null when the net is driven by a port
  /// or undriven.  Two nets sharing a driver are complementary outputs
  /// of one cell — the correlation screen's same-driver rule.
  /// O(total pins) per call.
  [[nodiscard]] const Instance* driver_of(
      int net_ordinal,
      const std::function<bool(const Instance&, const std::string& pin)>&
          drives) const;

 private:
  std::vector<Port> ports_;
  std::vector<std::string> nets_;
  std::vector<Instance> instances_;
  std::vector<int> net_degree_;  ///< connection count per net ordinal
  std::unordered_map<std::string, size_t> net_index_;
};

}  // namespace waveletic::netlist
