#include "netlist/generators.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace waveletic::netlist {

Netlist make_chain_tree(int width) {
  util::require(width >= 1, "make_chain_tree: width must be >= 1");
  std::ostringstream os;
  os << "module wide (";
  for (int i = 0; i < width; ++i) os << "a" << i << ", ";
  os << "y);\n";
  for (int i = 0; i < width; ++i) os << "  input a" << i << ";\n";
  os << "  output y;\n";
  for (int i = 0; i < width; ++i) {
    os << "  wire c" << i << "_1, c" << i << "_2, c" << i << "_3;\n";
    os << "  INVX1 inv" << i << "_1 (.A(a" << i << "), .Y(c" << i << "_1));\n";
    os << "  INVX1 inv" << i << "_2 (.A(c" << i << "_1), .Y(c" << i
       << "_2));\n";
    os << "  INVX4 inv" << i << "_3 (.A(c" << i << "_2), .Y(c" << i
       << "_3));\n";
  }
  // Fold pairs with NAND2s until one signal remains; an odd chain
  // passes through an inverter so every stage narrows.
  int stage = 0;
  int count = width;
  std::string prefix = "c";
  std::string suffix = "_3";
  if (width == 1) {
    os << "  INVX1 pass0 (.A(c0_3), .Y(y));\n";
  }
  while (count > 1) {
    const int next = (count + 1) / 2;
    for (int i = 0; i < count / 2; ++i) {
      const std::string out =
          count == 2 ? std::string("y")
                     : "f" + std::to_string(stage) + "_" + std::to_string(i);
      if (out != "y") os << "  wire " << out << ";\n";
      os << "  NAND2X1 nd" << stage << "_" << i << " (.A(" << prefix << 2 * i
         << suffix << "), .B(" << prefix << 2 * i + 1 << suffix << "), .Y("
         << out << "));\n";
    }
    if (count % 2 == 1) {
      const std::string out =
          "f" + std::to_string(stage) + "_" + std::to_string(count / 2);
      os << "  wire " << out << ";\n";
      os << "  INVX1 pass" << stage << " (.A(" << prefix << count - 1
         << suffix << "), .Y(" << out << "));\n";
    }
    prefix = "f" + std::to_string(stage) + "_";
    suffix = "";
    count = next;
    ++stage;
  }
  os << "endmodule\n";
  return parse_verilog(os.str());
}

namespace {

/// Minimal SplitMix64 — platform-independent, unlike the standard
/// distributions (libstdc++ and libc++ produce different streams).
struct Rng {
  uint64_t state;
  uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  size_t below(size_t n) { return static_cast<size_t>(next() % n); }
};

}  // namespace

Netlist make_random_dag(uint64_t seed, int inputs, int layers,
                        int layer_width) {
  util::require(inputs >= 1 && layers >= 1 && layer_width >= 1,
                "make_random_dag: inputs/layers/layer_width must be >= 1");
  Rng rng{seed * 0x2545f4914f6cdd1dull + 1};
  Netlist nl;
  nl.name = "rand" + std::to_string(seed);

  std::vector<std::string> signals;
  for (int i = 0; i < inputs; ++i) {
    const std::string name = "a" + std::to_string(i);
    nl.add_port(name, PortDirection::kInput);
    signals.push_back(name);
  }
  std::vector<bool> consumed(signals.size(), false);

  // The fast-characterized VCL013 subset every suite shares.
  static const char* kCells[] = {"INVX1", "INVX4", "NAND2X1"};
  int gate_id = 0;
  for (int l = 0; l < layers; ++l) {
    const size_t layer_base = signals.size();
    for (int g = 0; g < layer_width; ++g) {
      const char* cell = kCells[rng.below(3)];
      // NAND2X1 is the only two-input cell in the set.
      const bool two_inputs = cell[0] == 'N';
      // Bias sources towards the most recent signals so the DAG gets
      // deep; unconsumed primary inputs are drained first so every
      // input reaches a gate.
      auto pick = [&]() -> size_t {
        for (size_t i = 0; i < consumed.size() &&
                           i < static_cast<size_t>(inputs);
             ++i) {
          if (!consumed[i]) return i;
        }
        const size_t pool = layer_base;
        const size_t window =
            rng.below(2) == 0 ? pool : std::min<size_t>(pool, 8);
        return pool - 1 - rng.below(window);
      };
      const std::string out =
          "n" + std::to_string(l) + "_" + std::to_string(g);
      Instance inst;
      inst.name = "g" + std::to_string(gate_id++);
      inst.cell = cell;
      const size_t s0 = pick();
      consumed[s0] = true;
      if (two_inputs) {
        size_t s1 = pick();
        if (s1 == s0) s1 = layer_base - 1 - rng.below(layer_base);
        consumed[s1] = true;
        inst.pins = {{"A", signals[s0]}, {"B", signals[s1]}, {"Y", out}};
      } else {
        inst.pins = {{"A", signals[s0]}, {"Y", out}};
      }
      nl.add_instance(std::move(inst));
      signals.push_back(out);
      consumed.push_back(false);
    }
  }
  // Everything nothing consumed becomes an observable output port.
  for (size_t i = static_cast<size_t>(inputs); i < signals.size(); ++i) {
    if (!consumed[i]) nl.add_port(signals[i], PortDirection::kOutput);
  }
  nl.validate();
  return nl;
}

namespace {

/// Block port names split by direction, in block port order.
void split_ports(const Netlist& block, std::vector<std::string>& in_ports,
                 std::vector<std::string>& out_ports) {
  for (const auto& p : block.ports()) {
    (p.direction == PortDirection::kInput ? in_ports : out_ports)
        .push_back(p.name);
  }
  util::require(!in_ports.empty() && !out_ports.empty(),
                "stitch_blocks: block needs input and output ports");
}

/// Shared tiler: `all_flat` expands every copy (the oracle), otherwise
/// only options.expanded is expanded and the rest become one macro
/// instance each.
Netlist stitch_impl(const Netlist& block, const StitchOptions& options,
                    bool all_flat) {
  util::require(options.copies >= 1, "stitch_blocks: copies must be >= 1");
  std::vector<std::string> in_ports, out_ports;
  split_ports(block, in_ports, out_ports);

  const bool chain = options.topology == StitchTopology::kChain;
  Netlist top;
  top.name = block.name + "_x" + std::to_string(options.copies);

  for (size_t k = 0; k < options.copies; ++k) {
    const std::string prefix = "u" + std::to_string(k) + "/";
    std::map<std::string, std::string> port_net;
    for (size_t i = 0; i < in_ports.size(); ++i) {
      if (chain && k > 0) {
        // Driven round-robin by the previous copy's outputs.
        port_net[in_ports[i]] = "u" + std::to_string(k - 1) + "/" +
                                out_ports[i % out_ports.size()];
      } else {
        const std::string net = prefix + in_ports[i];
        top.add_port(net, PortDirection::kInput);
        port_net[in_ports[i]] = net;
      }
    }
    std::vector<bool> consumed_next(out_ports.size(), false);
    if (chain && k + 1 < options.copies) {
      for (size_t i = 0; i < in_ports.size(); ++i) {
        consumed_next[i % out_ports.size()] = true;
      }
    }
    for (size_t q = 0; q < out_ports.size(); ++q) {
      const std::string net = prefix + out_ports[q];
      if (!chain || k + 1 == options.copies || !consumed_next[q]) {
        top.add_port(net, PortDirection::kOutput);
      }
      port_net[out_ports[q]] = net;
    }

    const bool expand =
        all_flat ||
        (options.expanded >= 0 && static_cast<size_t>(options.expanded) == k);
    if (expand) {
      for (const auto& inst : block.instances()) {
        Instance copy;
        copy.name = prefix + inst.name;
        copy.cell = inst.cell;
        for (const auto& [pin, net] : inst.pins) {
          const auto it = port_net.find(net);
          copy.pins[pin] = it != port_net.end() ? it->second : prefix + net;
        }
        top.add_instance(std::move(copy));
      }
    } else {
      // ".blk" keeps the macro's pin vertices ("u<k>.blk/<port>")
      // disjoint from the port/net namespace ("u<k>/<port>"): the STA
      // graph interns vertices by name, and a macro pin sharing its
      // port's name would alias the port vertex into a self-loop.
      Instance macro;
      macro.name = "u" + std::to_string(k) + ".blk";
      macro.cell = options.block_cell;
      for (const auto& [port, net] : port_net) macro.pins[port] = net;
      top.add_instance(std::move(macro));
    }
  }
  top.validate();
  return top;
}

}  // namespace

Netlist stitch_blocks(const Netlist& block, const StitchOptions& options) {
  return stitch_impl(block, options, /*all_flat=*/false);
}

Netlist stitch_blocks_flat(const Netlist& block, const StitchOptions& options) {
  return stitch_impl(block, options, /*all_flat=*/true);
}

size_t stitched_flat_vertex_count(const Netlist& block,
                                  const StitchOptions& options) {
  std::vector<std::string> in_ports, out_ports;
  split_ports(block, in_ports, out_ports);
  size_t pins_per_copy = 0;
  for (const auto& inst : block.instances()) pins_per_copy += inst.pins.size();

  size_t top_ports = 0;
  if (options.topology == StitchTopology::kParallel) {
    top_ports = options.copies * (in_ports.size() + out_ports.size());
  } else {
    // Copy-0 inputs, every copy's unconsumed outputs, last copy's all.
    std::vector<bool> consumed_next(out_ports.size(), false);
    for (size_t i = 0; i < in_ports.size(); ++i) {
      consumed_next[i % out_ports.size()] = true;
    }
    size_t exported = 0;
    for (const bool c : consumed_next) exported += c ? 0 : 1;
    top_ports = in_ports.size() + out_ports.size() +  // copy 0 in + last out
                (options.copies - 1) * exported;
  }
  return top_ports + options.copies * pins_per_copy;
}

}  // namespace waveletic::netlist
