#include "netlist/generators.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace waveletic::netlist {

Netlist make_chain_tree(int width) {
  util::require(width >= 1, "make_chain_tree: width must be >= 1");
  std::ostringstream os;
  os << "module wide (";
  for (int i = 0; i < width; ++i) os << "a" << i << ", ";
  os << "y);\n";
  for (int i = 0; i < width; ++i) os << "  input a" << i << ";\n";
  os << "  output y;\n";
  for (int i = 0; i < width; ++i) {
    os << "  wire c" << i << "_1, c" << i << "_2, c" << i << "_3;\n";
    os << "  INVX1 inv" << i << "_1 (.A(a" << i << "), .Y(c" << i << "_1));\n";
    os << "  INVX1 inv" << i << "_2 (.A(c" << i << "_1), .Y(c" << i
       << "_2));\n";
    os << "  INVX4 inv" << i << "_3 (.A(c" << i << "_2), .Y(c" << i
       << "_3));\n";
  }
  // Fold pairs with NAND2s until one signal remains; an odd chain
  // passes through an inverter so every stage narrows.
  int stage = 0;
  int count = width;
  std::string prefix = "c";
  std::string suffix = "_3";
  if (width == 1) {
    os << "  INVX1 pass0 (.A(c0_3), .Y(y));\n";
  }
  while (count > 1) {
    const int next = (count + 1) / 2;
    for (int i = 0; i < count / 2; ++i) {
      const std::string out =
          count == 2 ? std::string("y")
                     : "f" + std::to_string(stage) + "_" + std::to_string(i);
      if (out != "y") os << "  wire " << out << ";\n";
      os << "  NAND2X1 nd" << stage << "_" << i << " (.A(" << prefix << 2 * i
         << suffix << "), .B(" << prefix << 2 * i + 1 << suffix << "), .Y("
         << out << "));\n";
    }
    if (count % 2 == 1) {
      const std::string out =
          "f" + std::to_string(stage) + "_" + std::to_string(count / 2);
      os << "  wire " << out << ";\n";
      os << "  INVX1 pass" << stage << " (.A(" << prefix << count - 1
         << suffix << "), .Y(" << out << "));\n";
    }
    prefix = "f" + std::to_string(stage) + "_";
    suffix = "";
    count = next;
    ++stage;
  }
  os << "endmodule\n";
  return parse_verilog(os.str());
}

namespace {

/// Minimal SplitMix64 — platform-independent, unlike the standard
/// distributions (libstdc++ and libc++ produce different streams).
struct Rng {
  uint64_t state;
  uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  size_t below(size_t n) { return static_cast<size_t>(next() % n); }
};

}  // namespace

Netlist make_random_dag(uint64_t seed, int inputs, int layers,
                        int layer_width) {
  util::require(inputs >= 1 && layers >= 1 && layer_width >= 1,
                "make_random_dag: inputs/layers/layer_width must be >= 1");
  Rng rng{seed * 0x2545f4914f6cdd1dull + 1};
  Netlist nl;
  nl.name = "rand" + std::to_string(seed);

  std::vector<std::string> signals;
  for (int i = 0; i < inputs; ++i) {
    const std::string name = "a" + std::to_string(i);
    nl.add_port(name, PortDirection::kInput);
    signals.push_back(name);
  }
  std::vector<bool> consumed(signals.size(), false);

  // The fast-characterized VCL013 subset every suite shares.
  static const char* kCells[] = {"INVX1", "INVX4", "NAND2X1"};
  int gate_id = 0;
  for (int l = 0; l < layers; ++l) {
    const size_t layer_base = signals.size();
    for (int g = 0; g < layer_width; ++g) {
      const char* cell = kCells[rng.below(3)];
      // NAND2X1 is the only two-input cell in the set.
      const bool two_inputs = cell[0] == 'N';
      // Bias sources towards the most recent signals so the DAG gets
      // deep; unconsumed primary inputs are drained first so every
      // input reaches a gate.
      auto pick = [&]() -> size_t {
        for (size_t i = 0; i < consumed.size() &&
                           i < static_cast<size_t>(inputs);
             ++i) {
          if (!consumed[i]) return i;
        }
        const size_t pool = layer_base;
        const size_t window =
            rng.below(2) == 0 ? pool : std::min<size_t>(pool, 8);
        return pool - 1 - rng.below(window);
      };
      const std::string out =
          "n" + std::to_string(l) + "_" + std::to_string(g);
      Instance inst;
      inst.name = "g" + std::to_string(gate_id++);
      inst.cell = cell;
      const size_t s0 = pick();
      consumed[s0] = true;
      if (two_inputs) {
        size_t s1 = pick();
        if (s1 == s0) s1 = layer_base - 1 - rng.below(layer_base);
        consumed[s1] = true;
        inst.pins = {{"A", signals[s0]}, {"B", signals[s1]}, {"Y", out}};
      } else {
        inst.pins = {{"A", signals[s0]}, {"Y", out}};
      }
      nl.add_instance(std::move(inst));
      signals.push_back(out);
      consumed.push_back(false);
    }
  }
  // Everything nothing consumed becomes an observable output port.
  for (size_t i = static_cast<size_t>(inputs); i < signals.size(); ++i) {
    if (!consumed[i]) nl.add_port(signals[i], PortDirection::kOutput);
  }
  nl.validate();
  return nl;
}

}  // namespace waveletic::netlist
