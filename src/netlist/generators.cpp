#include "netlist/generators.hpp"

#include <sstream>
#include <string>

#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace waveletic::netlist {

Netlist make_chain_tree(int width) {
  util::require(width >= 1, "make_chain_tree: width must be >= 1");
  std::ostringstream os;
  os << "module wide (";
  for (int i = 0; i < width; ++i) os << "a" << i << ", ";
  os << "y);\n";
  for (int i = 0; i < width; ++i) os << "  input a" << i << ";\n";
  os << "  output y;\n";
  for (int i = 0; i < width; ++i) {
    os << "  wire c" << i << "_1, c" << i << "_2, c" << i << "_3;\n";
    os << "  INVX1 inv" << i << "_1 (.A(a" << i << "), .Y(c" << i << "_1));\n";
    os << "  INVX1 inv" << i << "_2 (.A(c" << i << "_1), .Y(c" << i
       << "_2));\n";
    os << "  INVX4 inv" << i << "_3 (.A(c" << i << "_2), .Y(c" << i
       << "_3));\n";
  }
  // Fold pairs with NAND2s until one signal remains; an odd chain
  // passes through an inverter so every stage narrows.
  int stage = 0;
  int count = width;
  std::string prefix = "c";
  std::string suffix = "_3";
  if (width == 1) {
    os << "  INVX1 pass0 (.A(c0_3), .Y(y));\n";
  }
  while (count > 1) {
    const int next = (count + 1) / 2;
    for (int i = 0; i < count / 2; ++i) {
      const std::string out =
          count == 2 ? std::string("y")
                     : "f" + std::to_string(stage) + "_" + std::to_string(i);
      if (out != "y") os << "  wire " << out << ";\n";
      os << "  NAND2X1 nd" << stage << "_" << i << " (.A(" << prefix << 2 * i
         << suffix << "), .B(" << prefix << 2 * i + 1 << suffix << "), .Y("
         << out << "));\n";
    }
    if (count % 2 == 1) {
      const std::string out =
          "f" + std::to_string(stage) + "_" + std::to_string(count / 2);
      os << "  wire " << out << ";\n";
      os << "  INVX1 pass" << stage << " (.A(" << prefix << count - 1
         << suffix << "), .Y(" << out << "));\n";
    }
    prefix = "f" + std::to_string(stage) + "_";
    suffix = "";
    count = next;
    ++stage;
  }
  os << "endmodule\n";
  return parse_verilog(os.str());
}

}  // namespace waveletic::netlist
