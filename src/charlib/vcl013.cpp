#include "charlib/vcl013.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace waveletic::charlib {

using spice::Capacitor;
using spice::Circuit;
using spice::Mosfet;
using spice::NodeId;

Pdk::Pdk() {
  nmos.name = "vcl013_nmos";
  nmos.pmos = false;
  nmos.vth = 0.35;
  nmos.alpha = 1.3;
  // ≈0.58 mA Idsat for the 0.52 µm X1 device (≈1.1 mA/µm effective,
  // calibrated against typical 0.13 µm foundry INVX1 drive).
  nmos.kc = 1.1e3;
  nmos.kv = 0.9;
  nmos.lambda = 0.05;
  nmos.cgs_per_w = 0.7e-9;
  nmos.cgd_per_w = 0.25e-9;
  nmos.cdb_per_w = 0.5e-9;

  pmos = nmos;
  pmos.name = "vcl013_pmos";
  pmos.pmos = true;
  pmos.vth = 0.32;
  // Skewed pull-up: puts the inverter switching threshold at ≈0.55·Vdd
  // (industrial libraries are rarely balanced at exactly Vdd/2), which
  // makes 50%-referenced delays sensitive to the input slew — the
  // effect the point-based techniques misjudge.
  pmos.kc = 8.6e2;
}

const char* to_string(CellKind k) noexcept {
  switch (k) {
    case CellKind::kInverter:
      return "inverter";
    case CellKind::kBuffer:
      return "buffer";
    case CellKind::kNand2:
      return "nand2";
    case CellKind::kNor2:
      return "nor2";
  }
  return "?";
}

std::vector<std::string> CellSpec::input_pins() const {
  switch (kind) {
    case CellKind::kInverter:
    case CellKind::kBuffer:
      return {"A"};
    case CellKind::kNand2:
    case CellKind::kNor2:
      return {"A", "B"};
  }
  return {};
}

std::vector<CellSpec> vcl013_cells() {
  std::vector<CellSpec> cells;
  for (double drive : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    CellSpec spec;
    spec.kind = CellKind::kInverter;
    spec.drive = drive;
    spec.name = "INVX" + std::to_string(static_cast<int>(drive));
    cells.push_back(spec);
  }
  cells.push_back({"BUFX4", CellKind::kBuffer, 4.0});
  cells.push_back({"NAND2X1", CellKind::kNand2, 1.0});
  cells.push_back({"NOR2X1", CellKind::kNor2, 1.0});
  return cells;
}

CellSpec vcl013_cell(const std::string& name) {
  for (const auto& spec : vcl013_cells()) {
    if (util::iequals(spec.name, name)) return spec;
  }
  throw util::Error::fmt("VCL013: unknown cell '", name, "'");
}

namespace {

/// Adds one MOSFET with its lumped capacitances.
///   gate cap to the conducting rail (cgs·w), Miller cap gate->drain
///   (cgd·w), junction cap drain->rail (cdb·w).
void add_transistor(Circuit& ckt, const std::string& name,
                    const spice::MosfetModel& model, double w, NodeId d,
                    NodeId g, NodeId s, NodeId rail) {
  ckt.emplace<Mosfet>(name, d, g, s, rail, model, w);
  ckt.emplace<Capacitor>(name + ".cgs", g, rail, model.cgs_per_w * w);
  ckt.emplace<Capacitor>(name + ".cgd", g, d, model.cgd_per_w * w);
  ckt.emplace<Capacitor>(name + ".cdb", d, rail, model.cdb_per_w * w);
}

void build_inverter(Circuit& ckt, const Pdk& pdk, const std::string& inst,
                    NodeId in, NodeId out, NodeId vdd, double drive) {
  add_transistor(ckt, inst + ".mn", pdk.nmos, pdk.wn_unit * drive, out, in,
                 spice::kGround, spice::kGround);
  add_transistor(ckt, inst + ".mp", pdk.pmos, pdk.wp_unit * drive, out, in,
                 vdd, vdd);
}

}  // namespace

void instantiate_cell(spice::Circuit& ckt, const Pdk& pdk,
                      const CellSpec& spec, const std::string& inst,
                      const std::map<std::string, std::string>& conns,
                      const std::string& vdd_node) {
  const auto pin = [&](const std::string& name) {
    const auto it = conns.find(name);
    util::require(it != conns.end(), "cell ", spec.name, " instance ", inst,
                  ": missing connection for pin ", name);
    return ckt.node(it->second);
  };
  const NodeId vdd = ckt.node(vdd_node);
  const NodeId gnd = spice::kGround;

  switch (spec.kind) {
    case CellKind::kInverter: {
      build_inverter(ckt, pdk, inst, pin("A"), pin("Y"), vdd, spec.drive);
      return;
    }
    case CellKind::kBuffer: {
      // First stage at quarter drive, second at full drive.
      const NodeId mid = ckt.node(inst + ".mid");
      build_inverter(ckt, pdk, inst + ".s1", pin("A"), mid, vdd,
                     spec.drive / 4.0);
      build_inverter(ckt, pdk, inst + ".s2", mid, pin("Y"), vdd, spec.drive);
      return;
    }
    case CellKind::kNand2: {
      // Series NMOS (B bottom), parallel PMOS.
      const NodeId a = pin("A");
      const NodeId b = pin("B");
      const NodeId y = pin("Y");
      const NodeId mid = ckt.node(inst + ".nmid");
      const double wn = pdk.wn_unit * spec.drive * 2.0;  // stack upsizing
      const double wp = pdk.wp_unit * spec.drive;
      add_transistor(ckt, inst + ".mna", pdk.nmos, wn, y, a, mid, gnd);
      add_transistor(ckt, inst + ".mnb", pdk.nmos, wn, mid, b, gnd, gnd);
      add_transistor(ckt, inst + ".mpa", pdk.pmos, wp, y, a, vdd, vdd);
      add_transistor(ckt, inst + ".mpb", pdk.pmos, wp, y, b, vdd, vdd);
      return;
    }
    case CellKind::kNor2: {
      // Parallel NMOS, series PMOS (B top).
      const NodeId a = pin("A");
      const NodeId b = pin("B");
      const NodeId y = pin("Y");
      const NodeId mid = ckt.node(inst + ".pmid");
      const double wn = pdk.wn_unit * spec.drive;
      const double wp = pdk.wp_unit * spec.drive * 2.0;
      add_transistor(ckt, inst + ".mna", pdk.nmos, wn, y, a, gnd, gnd);
      add_transistor(ckt, inst + ".mnb", pdk.nmos, wn, y, b, gnd, gnd);
      add_transistor(ckt, inst + ".mpb", pdk.pmos, wp, mid, b, vdd, vdd);
      add_transistor(ckt, inst + ".mpa", pdk.pmos, wp, y, a, mid, vdd);
      return;
    }
  }
  throw util::Error::fmt("unhandled cell kind for ", spec.name);
}

double input_pin_capacitance(const Pdk& pdk, const CellSpec& spec,
                             const std::string& pin) {
  const double cg_n = pdk.nmos.cgs_per_w + pdk.nmos.cgd_per_w;
  const double cg_p = pdk.pmos.cgs_per_w + pdk.pmos.cgd_per_w;
  switch (spec.kind) {
    case CellKind::kInverter:
      return (cg_n * pdk.wn_unit + cg_p * pdk.wp_unit) * spec.drive;
    case CellKind::kBuffer:
      // Only the first stage (quarter drive) loads the input.
      return (cg_n * pdk.wn_unit + cg_p * pdk.wp_unit) * spec.drive / 4.0;
    case CellKind::kNand2:
      return (cg_n * pdk.wn_unit * 2.0 + cg_p * pdk.wp_unit) * spec.drive;
    case CellKind::kNor2:
      return (cg_n * pdk.wn_unit + cg_p * pdk.wp_unit * 2.0) * spec.drive;
  }
  throw util::Error::fmt("unhandled cell kind for ", spec.name, " pin ", pin);
}

void add_supply(spice::Circuit& ckt, const Pdk& pdk,
                const std::string& vdd_node) {
  ckt.emplace<spice::VoltageSource>(
      "v" + vdd_node, ckt.node(vdd_node), spice::kGround,
      std::make_unique<spice::DcStimulus>(pdk.vdd));
}

}  // namespace waveletic::charlib
