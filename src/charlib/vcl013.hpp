#pragma once

/// \file vcl013.hpp
/// VCL013 — the "virtual cell library", a self-contained stand-in for
/// the industrial TSMC 0.13 µm library used in the paper.  It defines
/// α-power-law device cards (1.2 V, Vth ≈ 0.35/0.32 V) and
/// transistor-level topologies for inverters at the paper's drive
/// strengths (X1/X4/X16/X64) plus BUF/NAND2/NOR2 used by the STA demos.
///
/// Cells instantiate into a spice::Circuit; the characterization flow
/// (characterize.hpp) turns them into an NLDM Liberty library.

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"

namespace waveletic::charlib {

/// Process-level constants of the virtual PDK.
struct Pdk {
  double vdd = 1.2;            ///< supply [V]
  double wn_unit = 0.52e-6;    ///< X1 NMOS width [m]
  double wp_unit = 1.04e-6;    ///< X1 PMOS width [m]
  spice::MosfetModel nmos;
  spice::MosfetModel pmos;

  /// Default-constructed PDK carries the calibrated VCL013 cards.
  Pdk();
};

enum class CellKind { kInverter, kBuffer, kNand2, kNor2 };

[[nodiscard]] const char* to_string(CellKind k) noexcept;

/// A cell type: topology + drive strength.
struct CellSpec {
  std::string name;   ///< e.g. "INVX4"
  CellKind kind = CellKind::kInverter;
  double drive = 1.0; ///< width multiplier relative to X1

  [[nodiscard]] std::vector<std::string> input_pins() const;
  [[nodiscard]] std::string output_pin() const { return "Y"; }
  /// Liberty timing_sense of the arc from each input.
  [[nodiscard]] bool inverting() const noexcept {
    return kind != CellKind::kBuffer;
  }
};

/// The standard VCL013 cell list: INVX1/2/4/8/16/64, BUFX4, NAND2X1,
/// NOR2X1.  (The paper's Figure 1 uses INVX1, INVX4, INVX16, INVX64.)
[[nodiscard]] std::vector<CellSpec> vcl013_cells();

/// Finds a spec by name (throws on unknown cell).
[[nodiscard]] CellSpec vcl013_cell(const std::string& name);

/// Instantiates a transistor-level cell into `ckt`.
///
/// \param inst   hierarchical instance name prefix (e.g. "u1")
/// \param conns  pin name -> circuit node name ("A"/"B"/"Y")
/// \param vdd_node  supply node name (a VoltageSource must drive it)
/// Adds MOSFETs plus lumped gate/drain capacitances.
void instantiate_cell(spice::Circuit& ckt, const Pdk& pdk,
                      const CellSpec& spec, const std::string& inst,
                      const std::map<std::string, std::string>& conns,
                      const std::string& vdd_node);

/// Analytic input-pin capacitance of a cell pin [F] (sum of gate caps
/// attached to that pin); what the Liberty `capacitance` attribute
/// reports.
[[nodiscard]] double input_pin_capacitance(const Pdk& pdk,
                                           const CellSpec& spec,
                                           const std::string& pin);

/// Convenience: adds the supply source and returns the node name.
void add_supply(spice::Circuit& ckt, const Pdk& pdk,
                const std::string& vdd_node = "vdd");

}  // namespace waveletic::charlib
