#include "charlib/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "spice/engine.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "wave/metrics.hpp"

namespace waveletic::charlib {
namespace {

using spice::Circuit;
using wave::Polarity;

struct ArcPoint {
  double delay = 0.0;
  double out_slew = 0.0;
};

/// One characterization run: drive `active_pin` with a ramp of the given
/// 10-90 slew (direction `in_rising`), other inputs at non-controlling
/// levels, load CL on the output; measure 50-50 delay and 10-90 output
/// slew.
ArcPoint simulate_point(const Pdk& pdk, const CellSpec& spec,
                        const std::string& active_pin, bool in_rising,
                        double slew_10_90, double load, double dt) {
  Circuit ckt;
  add_supply(ckt, pdk);

  std::map<std::string, std::string> conns;
  conns[active_pin] = "in";
  conns["Y"] = "out";
  // Non-controlling side inputs: logic 1 for NAND, logic 0 for NOR.
  for (const auto& pin : spec.input_pins()) {
    if (pin == active_pin) continue;
    const bool tie_high = (spec.kind == CellKind::kNand2);
    conns[pin] = tie_high ? "vdd" : "0";
  }
  instantiate_cell(ckt, pdk, spec, "dut", conns, "vdd");
  ckt.emplace<spice::Capacitor>("cl", ckt.node("out"), spice::kGround,
                                std::max(load, 1e-18));

  const double t_mid = 0.4e-9 + slew_10_90;
  const double full_transition = slew_10_90 / 0.8;  // 10-90 -> 0-100
  ckt.emplace<spice::VoltageSource>(
      "vin", ckt.node("in"), spice::kGround,
      std::make_unique<spice::RampStimulus>(t_mid, full_transition, 0.0,
                                            pdk.vdd, in_rising));

  spice::TransientSpec tspec;
  tspec.dt = dt;
  // Enough time for the slowest arcs: transition + RC tail.
  tspec.t_stop = t_mid + 2.0 * slew_10_90 + 2.5e-9;
  tspec.probes = {"in", "out"};
  const auto res = spice::transient(ckt, tspec);

  const Polarity in_pol = in_rising ? Polarity::kRising : Polarity::kFalling;
  const Polarity out_pol = spec.inverting() ? flip(in_pol) : in_pol;

  const auto& win = res.waveform("in");
  const auto& wout = res.waveform("out");
  const auto delay =
      wave::gate_delay_50(win, in_pol, wout, out_pol, pdk.vdd);
  const auto oslew = wave::slew_clean(wout, out_pol, pdk.vdd);
  util::require(delay.has_value() && oslew.has_value(),
                "characterization: incomplete transition for ", spec.name,
                " pin ", active_pin, " slew ", slew_10_90, " load ", load);
  return {*delay, *oslew};
}

}  // namespace

liberty::Cell characterize_cell(const Pdk& pdk, const CellSpec& spec,
                                const CharGrid& grid) {
  util::require(!grid.slews.empty() && !grid.loads_x1.empty(),
                "characterization grid is empty");
  liberty::Cell cell;
  cell.name = spec.name;
  cell.area = spec.drive;

  // Load axis scales with drive so every cell is characterized in its
  // useful fanout range.
  std::vector<double> loads = grid.loads_x1;
  for (auto& c : loads) c *= spec.drive;

  for (const auto& pin_name : spec.input_pins()) {
    liberty::Pin pin;
    pin.name = pin_name;
    pin.direction = liberty::PinDirection::kInput;
    pin.capacitance = input_pin_capacitance(pdk, spec, pin_name);
    cell.pins.push_back(std::move(pin));
  }

  liberty::Pin out;
  out.name = spec.output_pin();
  out.direction = liberty::PinDirection::kOutput;
  out.max_capacitance = loads.back();
  switch (spec.kind) {
    case CellKind::kInverter:
      out.function = "!A";
      break;
    case CellKind::kBuffer:
      out.function = "A";
      break;
    case CellKind::kNand2:
      out.function = "!(A&B)";
      break;
    case CellKind::kNor2:
      out.function = "!(A|B)";
      break;
  }

  const size_t rows = grid.slews.size();
  const size_t cols = loads.size();
  for (const auto& pin_name : spec.input_pins()) {
    liberty::TimingArc arc;
    arc.related_pin = pin_name;
    arc.sense = spec.inverting() ? liberty::TimingSense::kNegativeUnate
                                 : liberty::TimingSense::kPositiveUnate;

    std::vector<double> cr(rows * cols), cf(rows * cols), rt(rows * cols),
        ft(rows * cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        // Output rise is caused by input fall for inverting cells.
        const bool rise_in = !spec.inverting();
        const auto up = simulate_point(pdk, spec, pin_name, rise_in,
                                       grid.slews[i], loads[j], grid.dt);
        const auto dn = simulate_point(pdk, spec, pin_name, !rise_in,
                                       grid.slews[i], loads[j], grid.dt);
        cr[i * cols + j] = up.delay;
        rt[i * cols + j] = up.out_slew;
        cf[i * cols + j] = dn.delay;
        ft[i * cols + j] = dn.out_slew;
      }
    }
    arc.cell_rise = liberty::NldmTable(grid.slews, loads, std::move(cr));
    arc.rise_transition = liberty::NldmTable(grid.slews, loads, std::move(rt));
    arc.cell_fall = liberty::NldmTable(grid.slews, loads, std::move(cf));
    arc.fall_transition = liberty::NldmTable(grid.slews, loads, std::move(ft));
    out.arcs.push_back(std::move(arc));
  }
  cell.pins.push_back(std::move(out));
  return cell;
}

liberty::Library characterize_library(const Pdk& pdk,
                                      const std::vector<CellSpec>& cells,
                                      const CharGrid& grid) {
  liberty::Library lib;
  lib.name = "vcl013";
  lib.nom_voltage = pdk.vdd;

  liberty::TableTemplate tmpl;
  tmpl.name = "delay_template";
  tmpl.index_1 = grid.slews;
  tmpl.index_2 = grid.loads_x1;
  lib.add_template(tmpl);

  for (const auto& spec : cells) {
    util::log_info("characterizing ", spec.name);
    lib.add_cell(characterize_cell(pdk, spec, grid));
  }
  return lib;
}

liberty::Library build_vcl013_library() {
  return characterize_library(Pdk{}, vcl013_cells(), CharGrid{});
}

liberty::Library build_vcl013_library_fast() {
  CharGrid grid;
  grid.slews = {50e-12, 150e-12, 400e-12};
  grid.loads_x1 = {2e-15, 10e-15, 40e-15};
  grid.dt = 2e-12;
  std::vector<CellSpec> cells{vcl013_cell("INVX1"), vcl013_cell("INVX4"),
                              vcl013_cell("NAND2X1")};
  return characterize_library(Pdk{}, cells, grid);
}

}  // namespace waveletic::charlib
