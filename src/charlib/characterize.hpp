#pragma once

/// \file characterize.hpp
/// NLDM characterization flow: runs transistor-level simulations of
/// every cell arc over an input-slew × output-load grid and assembles a
/// liberty::Library.  This mirrors how foundry libraries are produced,
/// which is exactly the "current level of gate characterization" the
/// paper's compatibility claim refers to.

#include <vector>

#include "charlib/vcl013.hpp"
#include "liberty/library.hpp"

namespace waveletic::charlib {

struct CharGrid {
  /// Input 10–90% transition times [s].
  std::vector<double> slews{20e-12, 60e-12, 150e-12, 300e-12, 600e-12};
  /// Output loads [F], scaled per cell by its drive strength.
  std::vector<double> loads_x1{1e-15, 4e-15, 10e-15, 25e-15, 60e-15};
  double dt = 1e-12;  ///< transient step for the characterization runs
};

/// Characterizes one cell into a liberty::Cell (pins + NLDM arcs).
[[nodiscard]] liberty::Cell characterize_cell(const Pdk& pdk,
                                              const CellSpec& spec,
                                              const CharGrid& grid);

/// Characterizes a list of cells into a complete library.
[[nodiscard]] liberty::Library characterize_library(
    const Pdk& pdk, const std::vector<CellSpec>& cells,
    const CharGrid& grid = {});

/// The full VCL013 library with the default grid.  Expensive (hundreds
/// of transient runs, a few seconds); callers should reuse the result.
[[nodiscard]] liberty::Library build_vcl013_library();

/// A reduced library (fewer cells, coarser grid) for fast unit tests.
[[nodiscard]] liberty::Library build_vcl013_library_fast();

}  // namespace waveletic::charlib
