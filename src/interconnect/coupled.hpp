#pragma once

/// \file coupled.hpp
/// Capacitively coupled parallel lines — the interconnect structure of
/// the paper's Figure 1.  Each line is a uniform RC ladder; coupling
/// capacitance between selected line pairs is distributed along the
/// junctions with π weighting (half at the ends).

#include <cstdint>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace waveletic::netlist {
class Netlist;
}

namespace waveletic::interconnect {

/// One line of the bus.
struct LineSpec {
  std::string name;    ///< e.g. "x" (aggressor), "y" (victim)
  int segments = 6;    ///< RC π-sections
  double r_total = 51.0;   ///< [Ω]  (Figure 1: 8.5 Ω per ~167 µm segment)
  double c_total = 28.8e-15;  ///< [F] (Figure 1: 4.8 fF per segment)
};

/// Coupling between two lines (indices into CoupledBusSpec::lines).
struct CouplingSpec {
  size_t line_a = 0;
  size_t line_b = 1;
  double cm_total = 100e-15;  ///< total coupling capacitance [F]
};

struct CoupledBusSpec {
  std::vector<LineSpec> lines;
  std::vector<CouplingSpec> couplings;
};

/// Node names created for each line: near end (driver) first, far end
/// (receiver) last.
struct BusNodes {
  std::vector<std::vector<std::string>> per_line;

  [[nodiscard]] const std::string& near_end(size_t line) const {
    return per_line[line].front();
  }
  [[nodiscard]] const std::string& far_end(size_t line) const {
    return per_line[line].back();
  }
};

/// Emits the coupled bus into `ckt`.  Line nodes are named
/// "<prefix><line>_<k>" for k = 0..segments.  All lines must share the
/// same segment count (coupling caps join equal-index junctions).
[[nodiscard]] BusNodes build_coupled_bus(spice::Circuit& ckt,
                                         const CoupledBusSpec& spec,
                                         const std::string& prefix = "");

/// One directed victim/aggressor coupling hypothesis at the netlist
/// level — the seed a scenario generator expands into (alignment ×
/// strength) grids.  Mirrors CouplingSpec one level up: CouplingSpec
/// couples two SPICE lines, CouplingCandidate couples two netlist nets.
struct CouplingCandidate {
  int32_t victim_net = -1;     ///< victim net ordinal
  int32_t aggressor_net = -1;  ///< aggressor net ordinal
  double cm_total = 100e-15;   ///< estimated total coupling cap [F]
};

/// Options of infer_coupling_candidates().
struct CouplingInferenceOptions {
  /// Neighborhood radius: nets within this ordinal distance are
  /// considered coupled (the ordinal axis stands in for a routing
  /// track: generators emit nets in construction order, so adjacent
  /// ordinals are physical neighbors in the synthetic testbenches).
  int window = 2;
  /// Coupling cap of immediate neighbors [F]; decays as cm_base /
  /// distance, matching the roughly inverse-distance decay of lateral
  /// coupling between parallel wires.
  double cm_base = 100e-15;
};

/// Derives victim/aggressor coupling candidates from a netlist without
/// layout: every net pair within `options.window` ordinal distance
/// couples, in BOTH directions (each net is a victim of the other),
/// with cm decaying by distance.  This is the layout-extraction
/// stand-in that seeds sta::make_scenario_space — a real flow would
/// read coupling caps from a parasitics file instead, producing the
/// same CouplingCandidate records.  Deterministic: ascending victim
/// ordinal, then distance, victim-before-aggressor within a pair.
[[nodiscard]] std::vector<CouplingCandidate> infer_coupling_candidates(
    const netlist::Netlist& netlist,
    const CouplingInferenceOptions& options = {});

}  // namespace waveletic::interconnect
