#pragma once

/// \file coupled.hpp
/// Capacitively coupled parallel lines — the interconnect structure of
/// the paper's Figure 1.  Each line is a uniform RC ladder; coupling
/// capacitance between selected line pairs is distributed along the
/// junctions with π weighting (half at the ends).

#include <cstdint>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "wave/waveform.hpp"

namespace waveletic::netlist {
class Netlist;
}

namespace waveletic::interconnect {

/// One line of the bus.
struct LineSpec {
  std::string name;    ///< e.g. "x" (aggressor), "y" (victim)
  int segments = 6;    ///< RC π-sections
  double r_total = 51.0;   ///< [Ω]  (Figure 1: 8.5 Ω per ~167 µm segment)
  double c_total = 28.8e-15;  ///< [F] (Figure 1: 4.8 fF per segment)
};

/// Coupling between two lines (indices into CoupledBusSpec::lines).
struct CouplingSpec {
  size_t line_a = 0;          ///< first coupled line index
  size_t line_b = 1;          ///< second coupled line index
  double cm_total = 100e-15;  ///< total coupling capacitance [F]
};

/// The whole bus build_coupled_bus() emits: its lines plus the
/// couplings between them.
struct CoupledBusSpec {
  std::vector<LineSpec> lines;         ///< parallel RC lines
  std::vector<CouplingSpec> couplings; ///< line-pair coupling caps
};

/// Node names created for each line: near end (driver) first, far end
/// (receiver) last.
struct BusNodes {
  /// Per line, the junction node names in near-to-far order.
  std::vector<std::vector<std::string>> per_line;

  /// Driver-side node of one line.
  [[nodiscard]] const std::string& near_end(size_t line) const {
    return per_line[line].front();
  }
  /// Receiver-side node of one line.
  [[nodiscard]] const std::string& far_end(size_t line) const {
    return per_line[line].back();
  }
};

/// Emits the coupled bus into `ckt`.  Line nodes are named
/// "<prefix><line>_<k>" for k = 0..segments.  All lines must share the
/// same segment count (coupling caps join equal-index junctions).
[[nodiscard]] BusNodes build_coupled_bus(spice::Circuit& ckt,
                                         const CoupledBusSpec& spec,
                                         const std::string& prefix = "");

/// A two-line coupled pair plus its drive/load context — the minimal
/// Figure 1 testbench coupled_bump_shape() simulates to synthesize a
/// physically derived bump shape (the aggressor line switches, the
/// victim line is held quiet, and the bump is read at the victim's far
/// end).  This replaces the analytic Gaussian stand-in of the scenario
/// generator when sta::BumpShape::kCoupledLine is selected.
struct CoupledLinePair {
  /// Aggressor line (near end driven by the switching ramp).
  LineSpec aggressor{"a"};
  /// Victim line (held quiet; the bump appears at its far end).
  LineSpec victim{"v"};
  /// Total coupling capacitance between the two lines [F].
  double cm_total = 100e-15;
  /// Aggressor driver: the normalized ramp source drives the near end
  /// through this resistance [Ω].
  double drive_resistance = 120.0;
  /// Victim holding resistance to ground [Ω] — the quiet driver's
  /// output impedance, which the injected charge bleeds through.
  double hold_resistance = 120.0;
  /// Receiver load capacitance at both far ends [F].
  double load_cap = 2e-15;
};

/// Options of coupled_bump_shape().
struct CoupledBumpOptions {
  /// Aggressor 0–100% ramp transition time [s]; sets the bump width the
  /// same way the victim slew sets the Gaussian stand-in's sigma.
  double transition = 30e-12;
  /// Fixed transient steps over the simulated span (dt = span/steps).
  int steps = 256;
  /// Sample count of the returned (decimated) shape.
  size_t samples = 65;
  /// Simulated span as a multiple of `transition` (ramp start margin
  /// plus RC settle tail).
  double span_factor = 7.0;
};

/// Simulates one aggressor ramp through `pair` (build_coupled_bus under
/// the hood) and returns the victim far-end bump as a *unit shape*:
/// normalized to peak value 1 with the peak sample shifted to t = 0, so
/// callers scale it by their own amplitude and centre it by time shift.
/// The whole path is +,−,×,÷ only (linear RC, PWL source, LU solve) —
/// no libm transcendentals — so the shape is bitwise reproducible
/// across platforms and pinnable by the golden oracle.  Deterministic:
/// ties in the peak search keep the earliest sample.
[[nodiscard]] wave::Waveform coupled_bump_shape(
    const CoupledLinePair& pair, const CoupledBumpOptions& options = {});

/// One directed victim/aggressor coupling hypothesis at the netlist
/// level — the seed a scenario generator expands into (alignment ×
/// strength) grids.  Mirrors CouplingSpec one level up: CouplingSpec
/// couples two SPICE lines, CouplingCandidate couples two netlist nets.
struct CouplingCandidate {
  int32_t victim_net = -1;     ///< victim net ordinal
  int32_t aggressor_net = -1;  ///< aggressor net ordinal
  double cm_total = 100e-15;   ///< estimated total coupling cap [F]
};

/// Options of infer_coupling_candidates().
struct CouplingInferenceOptions {
  /// Neighborhood radius: nets within this ordinal distance are
  /// considered coupled (the ordinal axis stands in for a routing
  /// track: generators emit nets in construction order, so adjacent
  /// ordinals are physical neighbors in the synthetic testbenches).
  int window = 2;
  /// Coupling cap of immediate neighbors [F]; decays as cm_base /
  /// distance, matching the roughly inverse-distance decay of lateral
  /// coupling between parallel wires.
  double cm_base = 100e-15;
};

/// Derives victim/aggressor coupling candidates from a netlist without
/// layout: every net pair within `options.window` ordinal distance
/// couples, in BOTH directions (each net is a victim of the other),
/// with cm decaying by distance.  This is the layout-extraction
/// stand-in that seeds sta::make_scenario_space — a real flow would
/// read coupling caps from a parasitics file instead, producing the
/// same CouplingCandidate records.  Deterministic: ascending victim
/// ordinal, then distance, victim-before-aggressor within a pair.
[[nodiscard]] std::vector<CouplingCandidate> infer_coupling_candidates(
    const netlist::Netlist& netlist,
    const CouplingInferenceOptions& options = {});

}  // namespace waveletic::interconnect
