#pragma once

/// \file coupled.hpp
/// Capacitively coupled parallel lines — the interconnect structure of
/// the paper's Figure 1.  Each line is a uniform RC ladder; coupling
/// capacitance between selected line pairs is distributed along the
/// junctions with π weighting (half at the ends).

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace waveletic::interconnect {

/// One line of the bus.
struct LineSpec {
  std::string name;    ///< e.g. "x" (aggressor), "y" (victim)
  int segments = 6;    ///< RC π-sections
  double r_total = 51.0;   ///< [Ω]  (Figure 1: 8.5 Ω per ~167 µm segment)
  double c_total = 28.8e-15;  ///< [F] (Figure 1: 4.8 fF per segment)
};

/// Coupling between two lines (indices into CoupledBusSpec::lines).
struct CouplingSpec {
  size_t line_a = 0;
  size_t line_b = 1;
  double cm_total = 100e-15;  ///< total coupling capacitance [F]
};

struct CoupledBusSpec {
  std::vector<LineSpec> lines;
  std::vector<CouplingSpec> couplings;
};

/// Node names created for each line: near end (driver) first, far end
/// (receiver) last.
struct BusNodes {
  std::vector<std::vector<std::string>> per_line;

  [[nodiscard]] const std::string& near_end(size_t line) const {
    return per_line[line].front();
  }
  [[nodiscard]] const std::string& far_end(size_t line) const {
    return per_line[line].back();
  }
};

/// Emits the coupled bus into `ckt`.  Line nodes are named
/// "<prefix><line>_<k>" for k = 0..segments.  All lines must share the
/// same segment count (coupling caps join equal-index junctions).
[[nodiscard]] BusNodes build_coupled_bus(spice::Circuit& ckt,
                                         const CoupledBusSpec& spec,
                                         const std::string& prefix = "");

}  // namespace waveletic::interconnect
