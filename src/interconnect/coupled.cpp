#include "interconnect/coupled.hpp"

#include <memory>

#include "netlist/netlist.hpp"
#include "spice/devices.hpp"
#include "spice/engine.hpp"
#include "spice/sources.hpp"
#include "util/error.hpp"

namespace waveletic::interconnect {

BusNodes build_coupled_bus(spice::Circuit& ckt, const CoupledBusSpec& spec,
                           const std::string& prefix) {
  util::require(!spec.lines.empty(), "coupled bus: no lines");
  const int segments = spec.lines.front().segments;
  for (const auto& line : spec.lines) {
    util::require(line.segments == segments,
                  "coupled bus: all lines need equal segment counts");
    util::require(line.segments >= 1, "coupled bus: need >= 1 segment");
  }

  BusNodes nodes;
  for (const auto& line : spec.lines) {
    const double r_seg = line.r_total / line.segments;
    const double c_seg = line.c_total / line.segments;
    std::vector<std::string> line_nodes;
    for (int k = 0; k <= segments; ++k) {
      const std::string name =
          prefix + line.name + "_" + std::to_string(k);
      line_nodes.push_back(name);
      const auto node = ckt.node(name);
      // π weighting: half capacitance at the two ends.
      const double cap =
          c_seg * ((k == 0 || k == segments) ? 0.5 : 1.0);
      if (cap > 0.0) {
        ckt.emplace<spice::Capacitor>(name + ".c", node, spice::kGround,
                                      cap);
      }
      if (k > 0) {
        ckt.emplace<spice::Resistor>(
            name + ".r", ckt.node(line_nodes[static_cast<size_t>(k - 1)]),
            node, r_seg);
      }
    }
    nodes.per_line.push_back(std::move(line_nodes));
  }

  for (const auto& coupling : spec.couplings) {
    util::require(coupling.line_a < spec.lines.size() &&
                      coupling.line_b < spec.lines.size() &&
                      coupling.line_a != coupling.line_b,
                  "coupled bus: bad coupling line indices");
    const double cm_seg = coupling.cm_total / segments;
    for (int k = 0; k <= segments; ++k) {
      const double cap =
          cm_seg * ((k == 0 || k == segments) ? 0.5 : 1.0);
      if (cap <= 0.0) continue;
      const auto a =
          ckt.node(nodes.per_line[coupling.line_a][static_cast<size_t>(k)]);
      const auto b =
          ckt.node(nodes.per_line[coupling.line_b][static_cast<size_t>(k)]);
      ckt.emplace<spice::Capacitor>(
          prefix + "cm_" + spec.lines[coupling.line_a].name + "_" +
              spec.lines[coupling.line_b].name + "_" + std::to_string(k),
          a, b, cap);
    }
  }
  return nodes;
}

wave::Waveform coupled_bump_shape(const CoupledLinePair& pair,
                                  const CoupledBumpOptions& options) {
  util::require(options.transition > 0.0,
                "coupled_bump_shape: transition must be > 0");
  util::require(options.steps >= 16, "coupled_bump_shape: need >= 16 steps");
  util::require(options.samples >= 8,
                "coupled_bump_shape: need >= 8 samples");
  util::require(options.span_factor > 2.0,
                "coupled_bump_shape: span_factor must exceed the ramp");
  util::require(pair.drive_resistance > 0.0 && pair.hold_resistance > 0.0,
                "coupled_bump_shape: resistances must be > 0");
  util::require(pair.aggressor.name != pair.victim.name,
                "coupled_bump_shape: line names must differ");

  spice::Circuit ckt;
  CoupledBusSpec bus;
  bus.lines = {pair.aggressor, pair.victim};
  bus.couplings = {{0, 1, pair.cm_total}};
  const BusNodes nodes = build_coupled_bus(ckt, bus, "cbp_");

  // Aggressor driver: a normalized (0 → 1 V) saturated ramp through the
  // drive resistance, starting one transition time into the run so the
  // DC point is quiescent.
  const auto drv = ckt.node("cbp_drv");
  const double t_mid = 1.5 * options.transition;
  ckt.emplace<spice::VoltageSource>(
      "cbp_vsrc", drv, spice::kGround,
      std::make_unique<spice::RampStimulus>(t_mid, options.transition, 0.0,
                                            1.0, true));
  ckt.emplace<spice::Resistor>("cbp_rdrv", drv,
                               ckt.find_node(nodes.near_end(0)),
                               pair.drive_resistance);
  // The victim's quiet driver: a holding resistance to ground.
  ckt.emplace<spice::Resistor>("cbp_rhold",
                               ckt.find_node(nodes.near_end(1)),
                               spice::kGround, pair.hold_resistance);
  // Receiver loads at both far ends.
  if (pair.load_cap > 0.0) {
    ckt.emplace<spice::Capacitor>("cbp_cla",
                                  ckt.find_node(nodes.far_end(0)),
                                  spice::kGround, pair.load_cap);
    ckt.emplace<spice::Capacitor>("cbp_clv",
                                  ckt.find_node(nodes.far_end(1)),
                                  spice::kGround, pair.load_cap);
  }

  spice::TransientSpec tran;
  tran.t_stop = options.span_factor * options.transition;
  tran.dt = tran.t_stop / options.steps;
  tran.probes = {nodes.far_end(1)};
  const auto result = spice::transient(ckt, tran);
  const auto& w = result.waveform(nodes.far_end(1));

  // Peak sample (largest magnitude; ties keep the earliest), then
  // normalize to unit peak and centre the time axis there.
  size_t peak = 0;
  double peak_abs = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    const double a = w.value(i) < 0.0 ? -w.value(i) : w.value(i);
    if (a > peak_abs) {
      peak_abs = a;
      peak = i;
    }
  }
  util::require(peak_abs > 0.0, "coupled_bump_shape: flat victim response");
  const double v_peak = w.value(peak);
  const double t_peak = w.time(peak);
  std::vector<double> t(w.size());
  std::vector<double> v(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    t[i] = w.time(i) - t_peak;
    v[i] = w.value(i) / v_peak;
  }
  const wave::Waveform shape(std::move(t), std::move(v));
  return shape.resampled(shape.t_begin(), shape.t_end(), options.samples);
}

std::vector<CouplingCandidate> infer_coupling_candidates(
    const netlist::Netlist& netlist, const CouplingInferenceOptions& options) {
  util::require(options.window >= 1,
                "infer_coupling_candidates: window must be >= 1");
  util::require(options.cm_base > 0.0,
                "infer_coupling_candidates: cm_base must be > 0");
  std::vector<CouplingCandidate> out;
  const auto n = static_cast<int32_t>(netlist.nets().size());
  for (int32_t i = 0; i < n; ++i) {
    for (int d = 1; d <= options.window; ++d) {
      const int32_t j = i + d;
      if (j >= n) break;
      const double cm = options.cm_base / d;
      out.push_back({i, j, cm});
      out.push_back({j, i, cm});
    }
  }
  return out;
}

}  // namespace waveletic::interconnect
