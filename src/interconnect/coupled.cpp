#include "interconnect/coupled.hpp"

#include "netlist/netlist.hpp"
#include "spice/devices.hpp"
#include "util/error.hpp"

namespace waveletic::interconnect {

BusNodes build_coupled_bus(spice::Circuit& ckt, const CoupledBusSpec& spec,
                           const std::string& prefix) {
  util::require(!spec.lines.empty(), "coupled bus: no lines");
  const int segments = spec.lines.front().segments;
  for (const auto& line : spec.lines) {
    util::require(line.segments == segments,
                  "coupled bus: all lines need equal segment counts");
    util::require(line.segments >= 1, "coupled bus: need >= 1 segment");
  }

  BusNodes nodes;
  for (const auto& line : spec.lines) {
    const double r_seg = line.r_total / line.segments;
    const double c_seg = line.c_total / line.segments;
    std::vector<std::string> line_nodes;
    for (int k = 0; k <= segments; ++k) {
      const std::string name =
          prefix + line.name + "_" + std::to_string(k);
      line_nodes.push_back(name);
      const auto node = ckt.node(name);
      // π weighting: half capacitance at the two ends.
      const double cap =
          c_seg * ((k == 0 || k == segments) ? 0.5 : 1.0);
      if (cap > 0.0) {
        ckt.emplace<spice::Capacitor>(name + ".c", node, spice::kGround,
                                      cap);
      }
      if (k > 0) {
        ckt.emplace<spice::Resistor>(
            name + ".r", ckt.node(line_nodes[static_cast<size_t>(k - 1)]),
            node, r_seg);
      }
    }
    nodes.per_line.push_back(std::move(line_nodes));
  }

  for (const auto& coupling : spec.couplings) {
    util::require(coupling.line_a < spec.lines.size() &&
                      coupling.line_b < spec.lines.size() &&
                      coupling.line_a != coupling.line_b,
                  "coupled bus: bad coupling line indices");
    const double cm_seg = coupling.cm_total / segments;
    for (int k = 0; k <= segments; ++k) {
      const double cap =
          cm_seg * ((k == 0 || k == segments) ? 0.5 : 1.0);
      if (cap <= 0.0) continue;
      const auto a =
          ckt.node(nodes.per_line[coupling.line_a][static_cast<size_t>(k)]);
      const auto b =
          ckt.node(nodes.per_line[coupling.line_b][static_cast<size_t>(k)]);
      ckt.emplace<spice::Capacitor>(
          prefix + "cm_" + spec.lines[coupling.line_a].name + "_" +
              spec.lines[coupling.line_b].name + "_" + std::to_string(k),
          a, b, cap);
    }
  }
  return nodes;
}

std::vector<CouplingCandidate> infer_coupling_candidates(
    const netlist::Netlist& netlist, const CouplingInferenceOptions& options) {
  util::require(options.window >= 1,
                "infer_coupling_candidates: window must be >= 1");
  util::require(options.cm_base > 0.0,
                "infer_coupling_candidates: cm_base must be > 0");
  std::vector<CouplingCandidate> out;
  const auto n = static_cast<int32_t>(netlist.nets().size());
  for (int32_t i = 0; i < n; ++i) {
    for (int d = 1; d <= options.window; ++d) {
      const int32_t j = i + d;
      if (j >= n) break;
      const double cm = options.cm_base / d;
      out.push_back({i, j, cm});
      out.push_back({j, i, cm});
    }
  }
  return out;
}

}  // namespace waveletic::interconnect
