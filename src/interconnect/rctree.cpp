#include "interconnect/rctree.hpp"

#include "spice/devices.hpp"
#include "util/error.hpp"

namespace waveletic::interconnect {

int RcTree::add_root(std::string node_name, double node_cap) {
  util::require(nodes_.empty(), "RcTree: root already present");
  Node n;
  n.name = std::move(node_name);
  n.cap = node_cap;
  nodes_.push_back(std::move(n));
  return 0;
}

int RcTree::add_node(std::string node_name, double node_cap, int parent,
                     double ohms) {
  util::require(!nodes_.empty(), "RcTree: add_root first");
  util::require(parent >= 0 && parent < static_cast<int>(nodes_.size()),
                "RcTree: bad parent ", parent);
  util::require(ohms > 0.0, "RcTree: edge resistance must be positive");
  Node n;
  n.name = std::move(node_name);
  n.cap = node_cap;
  n.parent = parent;
  n.r_up = ohms;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

const std::string& RcTree::name(int id) const {
  util::require(id >= 0 && id < static_cast<int>(nodes_.size()),
                "RcTree: bad node id ", id);
  return nodes_[static_cast<size_t>(id)].name;
}

double RcTree::cap(int id) const {
  util::require(id >= 0 && id < static_cast<int>(nodes_.size()),
                "RcTree: bad node id ", id);
  return nodes_[static_cast<size_t>(id)].cap;
}

int RcTree::find(const std::string& node_name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == node_name) return static_cast<int>(i);
  }
  return -1;
}

double RcTree::total_cap() const noexcept {
  double acc = 0.0;
  for (const auto& n : nodes_) acc += n.cap;
  return acc;
}

double RcTree::downstream_cap(int id) const {
  util::require(id >= 0 && id < static_cast<int>(nodes_.size()),
                "RcTree: bad node id ", id);
  double acc = nodes_[static_cast<size_t>(id)].cap;
  for (int child : nodes_[static_cast<size_t>(id)].children) {
    acc += downstream_cap(child);
  }
  return acc;
}

double RcTree::elmore_delay(int id) const {
  util::require(id >= 0 && id < static_cast<int>(nodes_.size()),
                "RcTree: bad node id ", id);
  double acc = 0.0;
  for (int n = id; nodes_[static_cast<size_t>(n)].parent >= 0;
       n = nodes_[static_cast<size_t>(n)].parent) {
    acc += nodes_[static_cast<size_t>(n)].r_up * downstream_cap(n);
  }
  return acc;
}

std::vector<std::string> RcTree::build_into(spice::Circuit& ckt,
                                            const std::string& prefix) const {
  util::require(!nodes_.empty(), "RcTree: empty tree");
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    const std::string cname = prefix + n.name;
    names.push_back(cname);
    const auto node = ckt.node(cname);
    if (n.cap > 0.0) {
      ckt.emplace<spice::Capacitor>(cname + ".c", node, spice::kGround,
                                    n.cap);
    }
    if (n.parent >= 0) {
      const auto pnode = ckt.node(names[static_cast<size_t>(n.parent)]);
      ckt.emplace<spice::Resistor>(cname + ".r", pnode, node, n.r_up);
    }
  }
  return names;
}

RcTree RcTree::ladder(int segments, double r_total, double c_total) {
  util::require(segments >= 1, "RcTree::ladder: need >= 1 segment");
  RcTree tree;
  const double r_seg = r_total / segments;
  const double c_seg = c_total / segments;
  // π-ladder: half cap at each line end, full cap at internal junctions.
  int prev = tree.add_root("0", 0.5 * c_seg);
  for (int s = 1; s <= segments; ++s) {
    const double cap = (s == segments) ? 0.5 * c_seg : c_seg;
    prev = tree.add_node(std::to_string(s), cap, prev, r_seg);
  }
  return tree;
}

}  // namespace waveletic::interconnect
