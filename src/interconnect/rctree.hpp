#pragma once

/// \file rctree.hpp
/// RC interconnect trees: Elmore analysis (the paper cites Elmore's 1948
/// formulation as the inspiration for technique E4) and emission into
/// the transient simulator.  The mini-STA engine uses Elmore delays for
/// net arcs on uncoupled nets.

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace waveletic::spice {
class Circuit;
}

namespace waveletic::interconnect {

/// A grounded-capacitance RC tree rooted at the driver node.
class RcTree {
 public:
  /// Adds the root (driver) node; must be called first, exactly once.
  int add_root(std::string name, double cap);

  /// Adds a node connected to `parent` through resistance `ohms`.
  int add_node(std::string name, double cap, int parent, double ohms);

  [[nodiscard]] size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(int id) const;
  [[nodiscard]] double cap(int id) const;
  [[nodiscard]] int find(const std::string& name) const;  ///< -1 if absent

  /// Total tree capacitance [F].
  [[nodiscard]] double total_cap() const noexcept;

  /// Capacitance in the subtree rooted at `id` (including id).
  [[nodiscard]] double downstream_cap(int id) const;

  /// Elmore delay from the root to `id`:
  ///   Σ over edges (p→c) on the path: R_edge · C_downstream(c).
  [[nodiscard]] double elmore_delay(int id) const;

  /// Emits resistors/capacitors into a transient circuit.  Node `id`
  /// becomes circuit node `prefix + name(id)`; zero-cap nodes skip the
  /// capacitor.  Returns the circuit node names in tree order.
  std::vector<std::string> build_into(spice::Circuit& ckt,
                                      const std::string& prefix) const;

  /// Builds a uniform RC ladder (the distributed-line approximation):
  /// `segments` π-sections with r_total/c_total split evenly.  Node
  /// names are "0" (driver) .. "<segments>" (far end).
  [[nodiscard]] static RcTree ladder(int segments, double r_total,
                                     double c_total);

 private:
  struct Node {
    std::string name;
    double cap = 0.0;
    int parent = -1;
    double r_up = 0.0;  // resistance to parent
    std::vector<int> children;
  };
  std::vector<Node> nodes_;
};

}  // namespace waveletic::interconnect
