#pragma once

/// \file engine.hpp
/// Mini static-timing-analysis engine.
///
/// Vertices are pins ("u1/A", "u1/Y") and top-level ports ("a");
/// edges are cell timing arcs (NLDM delay/slew lookup, rise/fall aware,
/// unateness respected) and net arcs (driver → sinks, optional lumped
/// parasitic delay).  Forward propagation computes worst arrival and
/// slew per (vertex, transition); backward propagation computes
/// required times and slack; the critical path is recovered from
/// predecessor links.
///
/// Crosstalk integration (the paper's use case): a net may be annotated
/// with a *noisy waveform*.  At each gate input on that net the engine
/// replaces the propagated ramp with Γeff computed by a pluggable
/// equivalent-waveform technique (default SGDP), exactly the flow the
/// paper proposes for commercial STA.  The noiseless input ramp is the
/// propagated (arrival, slew); the noiseless output is synthesized from
/// the receiving gate's NLDM response, so no extra library
/// characterization is needed — the paper's compatibility claim.
///
/// Propagation is *levelized*: topological levels are computed once at
/// construction and stored on the graph.  Every vertex in a level
/// depends only on strictly lower levels, so a level's vertices can be
/// processed in parallel; each vertex folds its incoming edges in a
/// fixed order, which makes results bitwise-identical at any thread
/// count.  The timing state lives in a separate TimingState object, so
/// a prepared engine can evaluate many (noise scenario × corner) points
/// concurrently through the const, reentrant evaluate() path (see
/// sweep.hpp).
///
/// Handle-based API: names are resolved ONCE to PinId / NetId / PortId
/// handles (pin(), net(), port()), and the primary overloads of every
/// constraint setter and result accessor take handles — they index
/// dense arrays, no string hashing anywhere on a resolved path.  The
/// string overloads are thin resolve-then-forward wrappers.  Noise
/// annotations live in a dense NetId-indexed table that prepare-time
/// compilation (compile_edge_annotations()) turns into a per-net-edge
/// pointer array, so propagate_net_edge() performs ZERO map lookups.

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/method.hpp"
#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/ids.hpp"
#include "sta/partition.hpp"
#include "util/error.hpp"
#include "wave/kernels.hpp"
#include "wave/waveform.hpp"

namespace waveletic::util {
class ThreadPool;
}

namespace waveletic::sta {

class GammaCache;
struct NoiseScenario;        // sweep.hpp
struct SweepSpec;            // sweep.hpp
class SweepResult;           // sweep.hpp
struct GeneratedSweepSpec;   // scengen.hpp
class GeneratedSweepResult;  // scengen.hpp

enum class RiseFall { kRise = 0, kFall = 1 };

[[nodiscard]] constexpr RiseFall flip(RiseFall rf) noexcept {
  return rf == RiseFall::kRise ? RiseFall::kFall : RiseFall::kRise;
}
[[nodiscard]] const char* to_string(RiseFall rf) noexcept;

/// Timing state of one (vertex, transition).
struct PinTiming {
  double arrival = -std::numeric_limits<double>::infinity();
  double slew = 0.0;
  double required = std::numeric_limits<double>::infinity();
  bool valid = false;  ///< reachable from a constrained input

  [[nodiscard]] double slack() const noexcept { return required - arrival; }
};

struct PathStep {
  std::string pin;
  RiseFall rf = RiseFall::kRise;
  double arrival = 0.0;
};

/// A noisy-waveform annotation on a net; `key` is a content hash used
/// to memoize Γeff fits (annotations with equal keys must be equal).
struct NoiseAnnotation {
  wave::Waveform waveform;
  wave::Polarity polarity = wave::Polarity::kFalling;
  uint64_t key = 0;
};

/// Per-vertex derived timing (both transitions + critical-path links).
struct VertexTiming {
  PinTiming timing[2];  // indexed by RiseFall
  int critical_pred[2] = {-1, -1};
  RiseFall critical_pred_rf[2] = {RiseFall::kRise, RiseFall::kRise};
};

/// The complete timing state of one analysis (one sweep point).
/// Separate from the engine so N points can be evaluated over the
/// same prepared graph concurrently, each with its own state.
class TimingState {
 public:
  TimingState() = default;
  explicit TimingState(size_t vertices) : v_(vertices) {}

  [[nodiscard]] size_t size() const noexcept { return v_.size(); }
  [[nodiscard]] VertexTiming& operator[](size_t i) noexcept { return v_[i]; }
  [[nodiscard]] const VertexTiming& operator[](size_t i) const noexcept {
    return v_[i];
  }
  void reset(size_t vertices) { v_.assign(vertices, VertexTiming{}); }

 private:
  std::vector<VertexTiming> v_;
};

class StaEngine {
 public:
  /// Both netlist and library must outlive the engine, and the netlist
  /// must not be modified afterwards (handles index its net/port order).
  StaEngine(const netlist::Netlist& nl, const liberty::Library& lib);
  ~StaEngine();  // out of line: ThreadPool is forward-declared

  // -- handle resolution ---------------------------------------------------
  // Resolve once, then run dense.  All three throw util::Error for
  // unknown names, naming the offending string and the nearest known
  // names.  A handle is only valid on the engine that minted it;
  // passing a stale/foreign/default handle to any accessor throws.

  /// Handle to a pin ("u1/A") or port ("y") vertex.
  [[nodiscard]] PinId pin(const std::string& name) const;
  /// Non-throwing pin lookup: the handle, or an invalid PinId
  /// (!valid()) when the name is unknown.  For probing callers (e.g.
  /// the scenario-space builder walking nets whose pins may not all be
  /// timing vertices); prefer pin() where absence is a bug.
  [[nodiscard]] PinId find_pin(const std::string& name) const noexcept;
  /// Handle to a net.
  [[nodiscard]] NetId net(const std::string& name) const;
  /// Handle to a top-level port.
  [[nodiscard]] PortId port(const std::string& name) const;

  [[nodiscard]] const std::string& name(PinId pin) const;
  [[nodiscard]] const std::string& name(NetId net) const;
  [[nodiscard]] const std::string& name(PortId port) const;

  /// The liberty library the engine analyzes against (the constructor
  /// argument; outlives the engine by contract).
  [[nodiscard]] const liberty::Library& library() const noexcept {
    return *library_;
  }

  // -- constraints -------------------------------------------------------
  /// Arrival + slew applied to both transitions of an input port.
  void set_input(PortId port, double arrival, double slew);
  void set_input(PortId port, RiseFall rf, double arrival, double slew);
  void set_input(const std::string& port, double arrival, double slew);
  void set_input(const std::string& port, RiseFall rf, double arrival,
                 double slew);
  /// Extra load on an output port [F].
  void set_output_load(PortId port, double cap);
  void set_output_load(const std::string& port, double cap);
  /// Required (latest allowed) arrival at an output port.
  void set_required(PortId port, double time);
  void set_required(const std::string& port, double time);
  /// Lumped net parasitics: extra capacitive load on the driver and a
  /// wire delay added to every sink arrival (e.g. the Elmore delay from
  /// interconnect::RcTree).
  void set_net_parasitics(NetId net, double cap, double delay);
  void set_net_parasitics(const std::string& net, double cap, double delay);

  /// Engine-level corner (derate) applied by run(); sweep() points
  /// override it.  Default: nominal (no derate).
  void set_corner(Corner corner);
  void clear_corner();
  [[nodiscard]] const Corner* corner() const noexcept {
    return corner_ ? &*corner_ : nullptr;
  }

  // -- crosstalk hooks ----------------------------------------------------
  /// Technique used at noisy nets (defaults to SGDP).
  void set_noise_method(std::unique_ptr<core::EquivalentWaveformMethod> m);
  [[nodiscard]] const core::EquivalentWaveformMethod& noise_method()
      const noexcept {
    return *noise_method_;
  }
  /// Annotates a net with the noisy waveform observed at its sinks for
  /// the transition of the given polarity.  Stored in a dense
  /// NetId-indexed table (one slot per net).
  void annotate_noisy_net(NetId net, wave::Waveform waveform,
                          wave::Polarity polarity);
  void annotate_noisy_net(const std::string& net, wave::Waveform waveform,
                          wave::Polarity polarity);
  /// Removes the annotation on one net (no-op when the net is clean) —
  /// the ECO-service counterpart of annotate_noisy_net().
  void clear_noisy_net(NetId net);
  void clear_noisy_net(const std::string& net);
  /// Removes all noisy-net annotations (scenario loops re-annotate).
  void clear_noisy_nets();
  /// The annotation on `net`, or null when the net is clean.
  [[nodiscard]] const NoiseAnnotation* noisy_net(NetId net) const;
  [[nodiscard]] const NoiseAnnotation* noisy_net(const std::string& net) const;
  [[nodiscard]] size_t noisy_net_count() const noexcept {
    return noisy_net_count_;
  }

  // -- analysis ------------------------------------------------------------
  /// Number of worker threads used by run() for level-parallel
  /// propagation (≤ 0 selects the hardware concurrency; default 1).
  void set_threads(int threads);

  /// Runs forward (arrival) and backward (required) propagation under
  /// the engine-level annotations and corner.
  void run();

  /// Sweeps the cross product of spec.corners × spec.scenarios over
  /// this engine in ONE levelized pass (defined in sweep.cpp; include
  /// sweep.hpp for SweepSpec/SweepResult).  run() and ScenarioBatch are
  /// the 1×1 and 1×N specializations of this surface.
  [[nodiscard]] SweepResult sweep(const SweepSpec& spec);

  /// Streams a lazily generated scenario space (feasibility-filtered
  /// cross product of coupling pairs × alignments × strengths) through
  /// the sweep pipeline in bounded chunks — endpoint-only storage, one
  /// chunk of scenarios resident at a time (defined in scengen.cpp;
  /// include scengen.hpp for GeneratedSweepSpec/GeneratedSweepResult).
  [[nodiscard]] GeneratedSweepResult sweep(const GeneratedSweepSpec& spec);

  /// Timing of a pin/port.  Handle overload is the primary; the string
  /// overload resolves and forwards.  Throws for unknown names or
  /// foreign handles, or when run() has not been called.
  [[nodiscard]] const PinTiming& timing(PinId pin, RiseFall rf) const;
  [[nodiscard]] const PinTiming& timing(const std::string& pin,
                                        RiseFall rf) const;
  /// Worst slack over output ports (the analysis must have run).
  [[nodiscard]] double worst_slack() const;
  /// Critical path: backtracked predecessor chain of the worst-slack
  /// endpoint, source first.
  [[nodiscard]] std::vector<PathStep> worst_path() const;
  /// Multi-line human-readable summary.
  [[nodiscard]] std::string report() const;

  /// Number of graph vertices (pins + ports); for tests.
  [[nodiscard]] size_t vertex_count() const noexcept {
    return vertex_names_.size();
  }
  /// Name of vertex `v` (diagnostics; 0 ≤ v < vertex_count()).
  [[nodiscard]] const std::string& vertex_name(size_t v) const {
    return vertex_names_.at(v);
  }
  /// Number of net arcs in the prepared graph (the length of a compiled
  /// per-edge annotation table).
  [[nodiscard]] size_t net_edge_count() const noexcept {
    return net_edges_.size();
  }

  // -- reentrant point-evaluation path -------------------------------------
  // A prepared engine is immutable during evaluation, so many sweep
  // points can be evaluated concurrently over the same graph, each with
  // its own TimingState.  run() is implemented on top of this path;
  // sweep() drives it for corners × scenarios in one levelized pass.

  /// Inputs of one evaluation.  `edge_noise` is a compiled per-net-edge
  /// annotation pointer array (compile_edge_annotations(); null = no
  /// noise anywhere) — propagation indexes it, it never searches;
  /// `corner` is the derate point (null = nominal) and `corner_key` its
  /// Corner::key() (0 when null), folded into Γeff memo keys; `method`
  /// is the Γeff technique (must be reentrant — all built-in techniques
  /// are); `cache` optionally memoizes Γeff fits across points/threads;
  /// `workspace` is the scratch arena of the worker running this
  /// evaluation — Γeff fits draw their sampling buffers from it, so a
  /// warmed workspace makes the propagation hot path allocation-free.
  /// MUST be owned by exactly one worker (run()/sweep() keep one per
  /// ThreadPool worker and patch it per task); null selects the legacy
  /// allocating path.  Results are bitwise identical either way.
  struct EvalContext {
    const NoiseAnnotation* const* edge_noise = nullptr;
    const Corner* corner = nullptr;
    uint64_t corner_key = 0;
    const core::EquivalentWaveformMethod* method = nullptr;
    GammaCache* cache = nullptr;
    wave::Workspace* workspace = nullptr;
  };

  /// Compiles the effective annotation of every net edge into a dense
  /// pointer array of net_edge_count() entries: the engine-level table,
  /// overlaid by `overlay`'s entries when given (the scenario wins on
  /// nets both annotate).  The returned pointers alias the engine's
  /// table and the overlay scenario — both must outlive the evaluation.
  [[nodiscard]] std::vector<const NoiseAnnotation*> compile_edge_annotations(
      const NoiseScenario* overlay = nullptr) const;

  /// Recomputes edge loads from the current constraints and makes the
  /// engine ready for const evaluation.  run() and sweep() call this.
  void prepare();

  /// Topological levels, computed once at construction: levels()[0] are
  /// sources; every vertex depends only on strictly lower levels.
  [[nodiscard]] const std::vector<std::vector<int>>& levels() const noexcept {
    return levels_;
  }
  /// Topological level of each vertex (levels() flattened per vertex).
  [[nodiscard]] const std::vector<int>& vertex_levels() const noexcept {
    return vertex_level_;
  }

  /// The partition cover of the timing graph, computed once at
  /// construction: the graph cut at low-fanout net boundaries
  /// (union-find over the edge list) into independent shards with a
  /// partition-level dependency DAG and a frontier-interface vertex
  /// set.  Partitioning is a pure function of the graph — it never
  /// affects results, only scheduling.
  [[nodiscard]] const PartitionSet& partitions() const noexcept {
    return partitions_;
  }
  /// The per-point shard schedule for a given wide-partition threshold
  /// (partitions wider than it fall back to per-level chunk tasks).
  /// The default threshold's schedule is built at construction;
  /// other thresholds are built lazily, cached per threshold, under a
  /// lock — safe from concurrent const evaluations.
  [[nodiscard]] const PartitionSchedule& shard_schedule(
      size_t wide_threshold = kDefaultWidePartitionThreshold) const;

  /// Resets `state` and applies the input/required constraints.
  void init_state(TimingState& state) const;
  /// Folds all incoming edges of vertex `v` (fixed order → deterministic).
  /// Requires every lower-level vertex of `state` to be final.
  void forward_vertex(int v, TimingState& state, const EvalContext& ctx) const;
  /// Propagates required times backwards through the outgoing edges of
  /// `v`.  Requires every higher-level vertex of `state` to be final.
  void backward_vertex(int v, TimingState& state) const;
  /// Full forward + backward sweep of one point into `state`,
  /// level-parallel when `pool` is given.  prepare() must have run.
  /// When `worker_workspaces` is non-empty (it must then hold at least
  /// pool->size() arenas, or 1 without a pool), every task runs with
  /// ctx.workspace pointed at its worker's arena; empty leaves
  /// ctx.workspace untouched (legacy path).
  void evaluate(TimingState& state, const EvalContext& ctx,
                util::ThreadPool* pool = nullptr,
                std::span<wave::Workspace> worker_workspaces = {}) const;

  /// Evaluates many points concurrently over the same prepared graph.
  /// contexts[p] describes point p and states[p] receives its result
  /// (init_state is applied here).  With `shard` set, (point ×
  /// partition) coarse tasks run dependency-ordered on the pool
  /// (ThreadPool::run_graph) with per-level chunking only inside
  /// partitions wider than `wide_threshold`; without it, the legacy
  /// per-level (point × vertex) fan-out runs instead.  Both paths are
  /// bitwise identical to each other and to serial evaluate() loops:
  /// every vertex folds its in-edges exactly once, in the same fixed
  /// order, after all of its predecessors.
  void evaluate_points(
      std::span<TimingState> states, std::span<const EvalContext> contexts,
      util::ThreadPool* pool = nullptr,
      std::span<wave::Workspace> worker_workspaces = {}, bool shard = true,
      size_t wide_threshold = kDefaultWidePartitionThreshold) const;

  // -- baseline + delta propagation ----------------------------------------
  // The paper's central observation: a noise bump perturbs timing only
  // through the fanout cone of the victim net.  A sweep therefore
  // computes ONE nominal TimingState per corner and derives each
  // scenario point from it, re-propagating only the scenario's dirty
  // cone — bitwise identical to full propagation, because every dirty
  // vertex still folds its fixed-order in-edges exactly once and every
  // clean vertex keeps a value that full propagation would reproduce.

  /// The per-scenario dirty sets of baseline + delta propagation,
  /// computed once on the graph layer and shared by every corner of the
  /// scenario (the cone is a pure function of the annotated nets).
  struct DeltaPlan {
    /// Dirty vertices — the transitive fanout cone of the scenario's
    /// annotated nets (sink vertices of their net edges, closed over
    /// out-edges) — sorted by (topological level, vertex): a valid
    /// serial forward-propagation order.
    std::vector<int> forward;
    /// Required-time recompute set: the transitive fanin closure of
    /// `forward` (which it includes), sorted by (descending level,
    /// vertex): a valid serial backward-propagation order.  Arrivals
    /// change only inside the cone, but required times bleed upstream
    /// of it.
    std::vector<int> backward;
    /// Partitions (PartitionSet ordinals) owning at least one dirty
    /// vertex, ascending: the cone intersected with partition
    /// membership.  Metadata (PruneStats reporting, future
    /// partition-level scheduling) — the skipping itself happens
    /// through the vertex worklists, which simply never visit a
    /// partition not listed here.
    std::vector<uint32_t> partitions;
    /// Endpoint ordinals (indices into endpoint_ports()) whose vertex
    /// is dirty: the only endpoints whose timing can differ from the
    /// corner baseline.  Empty means every endpoint summary of the
    /// scenario equals the baseline exactly.
    std::vector<int32_t> endpoints;
    /// `forward` in ascending vertex-id order.  Result materialization
    /// iterates this instead of the level order: writes into the output
    /// TimingState then stream in address order, which measurably beats
    /// level-order scatter on lane-block sweeps.  Same members, only
    /// the iteration order differs — folding still uses `forward`.
    std::vector<int> forward_ids;
    /// `backward` in ascending vertex-id order (see `forward_ids`).
    std::vector<int> backward_ids;
    /// Graph size the plan was computed for (validation).
    size_t num_vertices = 0;
  };
  /// Computes the dirty-cone plan of `scenario`.  Throws util::Error
  /// when the scenario annotates an unknown net (naming scenario and
  /// net).  A scenario with no entries yields an empty plan: its point
  /// IS the baseline.
  [[nodiscard]] DeltaPlan delta_plan(const NoiseScenario& scenario) const;

  /// Generalized dirty-seed description of a constraint/netlist edit
  /// batch — the edit-class → dirty-cone mapping of the incremental
  /// service (see docs/SERVICE_GUIDE.md).  All ordinals index this
  /// engine's net/port orders; delta_plan(EditSeeds) validates them.
  struct EditSeeds {
    /// Nets whose capacitive load changed (output-load retarget,
    /// parasitic cap edit, sink pin-cap change): dirties every cell
    /// arc driving the net plus every noisy-sink synthesis reading it.
    std::vector<int32_t> load_nets;
    /// Nets whose wire delay changed (parasitic delay edit): dirties
    /// the net's sink vertices.
    std::vector<int32_t> delay_nets;
    /// Nets whose noise annotation changed (annotate or clear):
    /// dirties the net's sink vertices — the scenario-delta rule.
    std::vector<int32_t> noise_nets;
    /// Input-port ordinals whose arrival/slew constraint changed:
    /// dirties the port vertex (and thus its fanout cone).
    std::vector<int32_t> arrival_ports;
    /// Output-port ordinals whose required time changed: joins the
    /// backward (required-recompute) closure and the endpoint list
    /// without dirtying any arrival.
    std::vector<int32_t> required_ports;
    /// Extra forward-dirty vertices (structural edits: every pin of a
    /// retyped instance, a rerouted sink).
    std::vector<int> vertices;
  };
  /// Computes the dirty-cone plan of an edit batch: forward = fanout
  /// closure of every arrival-affecting seed; backward = fanin closure
  /// of the forward set ∪ the required-edit port vertices.  Bitwise
  /// contract: evaluate_delta() of the plan against a pre-edit
  /// baseline equals a from-scratch evaluate() under the post-edit
  /// configuration.  Throws util::Error on out-of-range ordinals or
  /// direction-mismatched ports.
  [[nodiscard]] DeltaPlan delta_plan(const EditSeeds& seeds) const;

  // -- copy-on-write forking (the incremental-service substrate) -----------
  /// A configuration-level copy sharing this engine's immutable graph:
  /// O(config tables) instead of O(V + E), with handles minted by
  /// either engine interchangeable (same graph tag).  The fork copies
  /// constraints, parasitics, annotations, loads, corner and thread
  /// count, clones the noise method, and starts unanalyzed with its
  /// own empty state/pool/workspaces.
  [[nodiscard]] std::unique_ptr<StaEngine> fork() const;
  /// Copies `other`'s configuration (constraints, loads, parasitics,
  /// annotations, corner, method, threads) onto this engine across a
  /// REBUILD — `other` may be prepared on a different Graph as long as
  /// `other`'s net order is a prefix of this engine's (edits may only
  /// append nets — the service's ordinal-stability contract) and the
  /// port orders are identical.  Appended nets get default parasitics
  /// and no annotation; vertex-keyed constraints are remapped through
  /// port ordinals.  Throws when the net/port axes differ.
  void copy_config_from(const StaEngine& other);
  /// Recomputes net_loads_ for just `nets` (ordinals), folding each
  /// net's sink pin caps + parasitic cap + port load in the exact
  /// order compute_loads() uses — bitwise identical to a full
  /// prepare() for every net in the list.  prepare() must have run
  /// (on this engine or the engine it was forked from).
  void recompute_net_loads(std::span<const int32_t> nets);
  /// Liveness token released at destruction; SweepResult/TimingView
  /// watch it through weak_ptr and throw instead of dangling.
  [[nodiscard]] std::shared_ptr<const void> liveness() const noexcept {
    return liveness_;
  }

  /// Derives one scenario point from a corner baseline: copies
  /// `baseline` into `state`, resets the plan's dirty vertices to their
  /// initial constraints, folds them in level order under `ctx` (whose
  /// edge_noise table must be the scenario overlay the plan was
  /// computed for), then resets and re-folds required times over the
  /// plan's backward set.  Bitwise identical to evaluate() with the
  /// same context: clean vertices keep baseline values, which full
  /// propagation would reproduce, and dirty vertices fold the same
  /// fixed-order in-edges against them.
  void evaluate_delta(TimingState& state, const TimingState& baseline,
                      const DeltaPlan& plan, const EvalContext& ctx) const;

  /// Evaluates many scenario points as deltas against per-point corner
  /// baselines: point p copies *baselines[p] and re-propagates
  /// *plans[p] under contexts[p].  Points are independent, so they run
  /// as one flat task DAG on the pool (ThreadPool::run_graph): the
  /// dirty worklists are unbalanced, and the shared ready stack
  /// load-balances them across workers.  Results are bitwise identical
  /// to evaluate_points() with the same contexts at any thread count.
  void evaluate_points_delta(
      std::span<TimingState> states, std::span<const EvalContext> contexts,
      std::span<const TimingState* const> baselines,
      std::span<const DeltaPlan* const> plans, util::ThreadPool* pool = nullptr,
      std::span<wave::Workspace> worker_workspaces = {}) const;

  // -- SIMD lane-parallel delta propagation --------------------------------
  // A sweep funnels many near-identical scenarios through the same
  // cone; the lane layer walks the levelized cone ONCE per group of up
  // to wave::Lane<W>::width compatible points, carrying each point's
  // arrival/slew/required in adjacent SIMD lanes of a
  // structure-of-arrays state.  Every lane keeps its own scalar fold
  // order (vertical SIMD only — no cross-lane reduction, no FMA), so
  // lane results are bitwise identical to the scalar path per point.

  /// One lane-group of an evaluate_points_delta_lanes() call: up to
  /// `width` compatible points (same baseline, same corner, plan
  /// content equal or merged into a cone-superset union plan) walked
  /// together through one SoA lane state.
  struct LaneBlock {
    /// Indices into the call's point spans, grouped in first-seen
    /// order; size 1..width.
    std::vector<uint32_t> points;
    /// The plan every lane of the block is propagated over: the
    /// points' shared plan, or the (level, vertex)-merged union of
    /// their plans.  Union propagation is exact: re-folding a vertex
    /// outside a lane's own cone reproduces its baseline value bitwise
    /// (same inputs, same fixed fold order).
    const DeltaPlan* plan = nullptr;
    /// Owns `plan` when it is a merged union (null when `plan` aliases
    /// a caller plan).
    std::shared_ptr<const DeltaPlan> owned_plan;
  };

  /// Groups compatible points into lane blocks of at most `width`
  /// lanes: points qualify for the same block when they share a
  /// baseline pointer and corner/method/cache identity, and their
  /// plans have equal content (edge-noise tables may differ — noisy
  /// edges are handled per lane).  Sub-width leftovers sharing a
  /// (baseline, corner) are merged under a union plan; blocks of one
  /// point fall back to scalar evaluate_delta() in the runner.
  /// Deterministic: block membership is a pure function of the inputs
  /// in first-seen order (and results never depend on grouping).
  [[nodiscard]] std::vector<LaneBlock> group_lane_blocks(
      std::span<const EvalContext> contexts,
      std::span<const TimingState* const> baselines,
      std::span<const DeltaPlan* const> plans, int width) const;

  /// Lane-parallel evaluate_points_delta(): same inputs, same results,
  /// bit for bit.  `lanes` must be 1 or 4; 1 runs the W=1 oracle
  /// instantiation of the block walker (available on every build),
  /// 4 requires AVX2 (wave::lane_width_available(4)) and throws
  /// util::Error otherwise.  Blocks run as independent pool tasks; the
  /// W=1 instantiation of the block walker is the oracle the W=4 path
  /// must match bitwise (asserted by tests/test_lanes.cpp and the
  /// bench `bitwise_identical` flag).
  void evaluate_points_delta_lanes(
      std::span<TimingState> states, std::span<const EvalContext> contexts,
      std::span<const TimingState* const> baselines,
      std::span<const DeltaPlan* const> plans, int lanes,
      util::ThreadPool* pool = nullptr,
      std::span<wave::Workspace> worker_workspaces = {}) const;

  /// Result accessors against an external state (sweep/batch results).
  [[nodiscard]] const PinTiming& timing_in(const TimingState& state,
                                           PinId pin, RiseFall rf) const;
  [[nodiscard]] const PinTiming& timing_in(const TimingState& state,
                                           const std::string& pin,
                                           RiseFall rf) const;
  [[nodiscard]] double worst_slack_in(const TimingState& state) const;
  [[nodiscard]] std::vector<PathStep> worst_path_in(
      const TimingState& state) const;

  // -- endpoints -----------------------------------------------------------
  /// Output-port ordinals in port order: the endpoint axis that
  /// endpoint-only sweep results summarize over.
  [[nodiscard]] const std::vector<int32_t>& endpoint_ports() const noexcept {
    return endpoint_ports_;
  }

  /// The critical endpoint of a state: worst slack over constrained
  /// output-port transitions, or (when nothing is constrained) the
  /// latest arrival.  `endpoint` indexes endpoint_ports(); -1 when no
  /// endpoint transition is valid.  Deterministic: ties keep the first
  /// endpoint in port order.  worst_path_in() backtracks from exactly
  /// this endpoint.
  struct WorstEndpoint {
    int32_t endpoint = -1;
    RiseFall rf = RiseFall::kRise;
    bool constrained = false;
    double slack = std::numeric_limits<double>::infinity();
    double arrival = -std::numeric_limits<double>::infinity();
  };
  [[nodiscard]] WorstEndpoint worst_endpoint_in(
      const TimingState& state) const;

 private:
  // Edges carry structure only; per-net loads and wire delays live in
  // the engine's mutable tables (net_loads_, net_parasitics_) so forks
  // can share one immutable Graph while editing loads independently.
  struct CellArcEdge {
    int from = -1;  // instance input pin vertex
    int to = -1;    // instance output pin vertex
    const liberty::TimingArc* arc = nullptr;
    int32_t out_net = -1;  // net the arc's output pin drives (ordinal)
  };

  struct NetEdge {
    int from = -1;
    int to = -1;
    int32_t net = -1;  // net ordinal (NetId::index)
    const liberty::Pin* sink_pin = nullptr;   // liberty pin at the sink
    const liberty::Cell* sink_cell = nullptr;
    int32_t sink_out_net = -1;  // net the sink gate's output drives
  };

  /// One rise/fall input constraint of an input port.
  struct InputConstraint {
    double arrival = 0.0;
    double slew = 0.0;
    bool set = false;
  };

  /// A top-level port, with its vertex resolved once at construction.
  struct PortRec {
    std::string name;
    int vertex = -1;
    netlist::PortDirection direction = netlist::PortDirection::kInput;
  };

  /// The immutable structure layer: everything derived purely from
  /// (netlist, library) topology.  Built once by make_graph() and held
  /// through shared_ptr<const Graph>; engine forks share ONE Graph, so
  /// a copy-on-write snapshot costs O(config tables), not O(V + E).
  /// Handles minted by any fork are interchangeable — they all carry
  /// the same tag and index the same vertex/net/port orders.
  struct Graph {
    uint32_t tag = 0;  ///< handle tag shared by every fork
    std::vector<std::string> vertex_names;
    std::unordered_map<std::string, int> vertex_index;
    std::vector<std::string> sorted_vertex_names;
    std::vector<PortRec> ports;
    std::vector<CellArcEdge> cell_edges;
    std::vector<NetEdge> net_edges;
    std::vector<std::vector<uint32_t>> edges_of_net;
    /// Net ordinal → cell arcs driving it (an arc's delay reads its
    /// output net's load): the load-edit dirty-seed table.
    std::vector<std::vector<uint32_t>> arcs_of_net;
    /// Net ordinal → net edges whose SINK gate drives it (noisy-edge
    /// Γeff synthesis reads that output load at the sink).
    std::vector<std::vector<uint32_t>> sink_load_edges_of_net;
    std::vector<std::vector<std::pair<bool, uint32_t>>> in_edges;
    std::vector<std::vector<std::pair<bool, uint32_t>>> out_edges;
    std::vector<std::vector<int>> levels;
    std::vector<int> vertex_level;
    std::vector<int32_t> endpoint_ports;
    PartitionSet partitions;
    /// Lazily built shard schedules keyed by wide-partition threshold;
    /// mutable behind the mutex so const forks share the cache.
    mutable std::map<size_t, PartitionSchedule> shard_schedules;
    mutable std::mutex shard_schedules_mutex;
  };
  /// Builds the structure layer (validate + vertices + edges + levels +
  /// partitions) — the expensive part of construction that forks skip.
  [[nodiscard]] static std::shared_ptr<const Graph> make_graph(
      const netlist::Netlist& nl, const liberty::Library& lib);
  static void levelize(Graph& g);
  struct ForkTag {};
  StaEngine(const StaEngine& other, ForkTag);

  [[nodiscard]] int find_vertex(const std::string& name) const;
  /// Index checks behind every handle accessor; throw on foreign/stale
  /// handles and return the dense index.
  [[nodiscard]] int check(PinId pin) const;
  [[nodiscard]] int check(NetId net) const;
  [[nodiscard]] int check(PortId port) const;
  [[nodiscard]] util::Error unknown_vertex_error(
      const std::string& name) const;
  void compute_loads();
  /// Shared closure step of both delta_plan overloads: `dirty` holds
  /// the forward seeds, `back` extra backward-only seeds; both are
  /// closed (fanout / fanin) and turned into sorted worklists.
  [[nodiscard]] DeltaPlan finish_plan(std::vector<char>& dirty,
                                      std::vector<char>& back) const;
  /// init_state() for a single vertex: default timing plus the input /
  /// required constraints of `v` (delta propagation resets dirty
  /// vertices through this so they match a fresh init_state bitwise).
  void reset_vertex(TimingState& state, int v) const;
  /// Resets only the required times of `v` (the backward-delta reset).
  void reset_required(TimingState& state, int v) const;
  void propagate_cell_edge(const CellArcEdge& e, TimingState& state,
                           const EvalContext& ctx) const;
  void propagate_net_edge(size_t edge_index, TimingState& state,
                          const EvalContext& ctx) const;
  /// The Γeff replacement step at a noisy net sink: gates on
  /// (annotation, sink pin, polarity, arc) exactly like the historical
  /// inline block, then rewrites (arrival, slew) via cache or fit.
  /// Shared verbatim by propagate_net_edge() and the lane-block path,
  /// which is what makes "lane == scalar" at noisy edges structural.
  void noisy_fit(const NetEdge& e, size_t edge_index,
                 const NoiseAnnotation* noisy, int rf_i,
                 const EvalContext& ctx, double& arrival, double& slew) const;
  static void relax(TimingState& state, int to, RiseFall to_rf, double arrival,
                    double slew, int from, RiseFall from_rf);

  /// Per-worker scratch of the lane-block walker: epoch-stamped
  /// vertex→slot maps plus the SoA lane arrays (defined in
  /// engine_lanes_impl.hpp; sized O(V) once, reused across blocks).
  struct LaneScratch;
  /// Walks one lane block: reset → forward fold → backward fold of
  /// `block.plan` with W lanes in flight, then materializes each real
  /// lane as baseline-copy + cone overwrite.  Instantiated at W=1
  /// (engine_lanes.cpp — the oracle/fallback) and W=4
  /// (engine_lanes_avx2.cpp, compiled with -mavx2).
  template <int W>
  void evaluate_delta_block(const LaneBlock& block,
                            std::span<TimingState> states,
                            std::span<const EvalContext> contexts,
                            std::span<const TimingState* const> baselines,
                            wave::Workspace* workspace,
                            LaneScratch& scratch) const;

  const netlist::Netlist* netlist_;
  const liberty::Library* library_;
  /// The shared immutable structure layer; initialized first so the
  /// read aliases below may bind to it in their default initializers.
  std::shared_ptr<const Graph> graph_;
  uint32_t graph_tag_ = 0;  ///< == graph_->tag; carried by handles
  // Read aliases into *graph_, preserving the names the propagation
  // and accessor code has always used.  References make the engine
  // non-assignable, which is fine: engines live behind unique_ptr.
  const std::vector<std::string>& vertex_names_ = graph_->vertex_names;
  const std::unordered_map<std::string, int>& vertex_index_ =
      graph_->vertex_index;
  const std::vector<std::string>& sorted_vertex_names_ =
      graph_->sorted_vertex_names;
  const std::vector<PortRec>& ports_ = graph_->ports;
  const std::vector<CellArcEdge>& cell_edges_ = graph_->cell_edges;
  const std::vector<NetEdge>& net_edges_ = graph_->net_edges;
  const std::vector<std::vector<uint32_t>>& edges_of_net_ =
      graph_->edges_of_net;
  const std::vector<std::vector<std::pair<bool, uint32_t>>>& in_edges_ =
      graph_->in_edges;
  const std::vector<std::vector<std::pair<bool, uint32_t>>>& out_edges_ =
      graph_->out_edges;
  const std::vector<std::vector<int>>& levels_ = graph_->levels;
  const std::vector<int>& vertex_level_ = graph_->vertex_level;
  const std::vector<int32_t>& endpoint_ports_ = graph_->endpoint_ports;
  const PartitionSet& partitions_ = graph_->partitions;

  std::map<int, std::array<InputConstraint, 2>> input_constraints_;
  std::map<int, double> required_;
  std::vector<double> output_loads_;  ///< by port ordinal (0 = none)
  /// Dense per-net tables indexed by NetId::index.
  std::vector<std::pair<double, double>> net_parasitics_;  ///< (cap, delay)
  /// Per-net capacitive load (sink pin caps + parasitic cap + port
  /// load), filled by prepare() / recompute_net_loads() and read by
  /// propagation.
  std::vector<double> net_loads_;
  std::vector<std::optional<NoiseAnnotation>> net_annotations_;
  size_t noisy_net_count_ = 0;
  std::optional<Corner> corner_;
  std::unique_ptr<core::EquivalentWaveformMethod> noise_method_;
  /// Liveness token: results that point into this engine hold a
  /// weak_ptr to it and throw instead of dangling after destruction.
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>('e');

  TimingState state_;  ///< default state written by run()
  int threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Per-ThreadPool-worker scratch arenas reused across run()/sweep()
  /// calls; slabs warm up once and every later propagation is
  /// allocation-free.  workspaces_[w] belongs to pool worker w.
  std::vector<wave::Workspace> workspaces_;
  bool analyzed_ = false;
};

}  // namespace waveletic::sta
