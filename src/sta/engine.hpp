#pragma once

/// \file engine.hpp
/// Mini static-timing-analysis engine.
///
/// Vertices are pins ("u1/A", "u1/Y") and top-level ports ("a");
/// edges are cell timing arcs (NLDM delay/slew lookup, rise/fall aware,
/// unateness respected) and net arcs (driver → sinks, optional lumped
/// parasitic delay).  Forward propagation computes worst arrival and
/// slew per (vertex, transition); backward propagation computes
/// required times and slack; the critical path is recovered from
/// predecessor links.
///
/// Crosstalk integration (the paper's use case): a net may be annotated
/// with a *noisy waveform*.  At each gate input on that net the engine
/// replaces the propagated ramp with Γeff computed by a pluggable
/// equivalent-waveform technique (default SGDP), exactly the flow the
/// paper proposes for commercial STA.  The noiseless input ramp is the
/// propagated (arrival, slew); the noiseless output is synthesized from
/// the receiving gate's NLDM response, so no extra library
/// characterization is needed — the paper's compatibility claim.

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/method.hpp"
#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "wave/waveform.hpp"

namespace waveletic::sta {

enum class RiseFall { kRise = 0, kFall = 1 };

[[nodiscard]] constexpr RiseFall flip(RiseFall rf) noexcept {
  return rf == RiseFall::kRise ? RiseFall::kFall : RiseFall::kRise;
}
[[nodiscard]] const char* to_string(RiseFall rf) noexcept;

/// Timing state of one (vertex, transition).
struct PinTiming {
  double arrival = -std::numeric_limits<double>::infinity();
  double slew = 0.0;
  double required = std::numeric_limits<double>::infinity();
  bool valid = false;  ///< reachable from a constrained input

  [[nodiscard]] double slack() const noexcept { return required - arrival; }
};

struct PathStep {
  std::string pin;
  RiseFall rf = RiseFall::kRise;
  double arrival = 0.0;
};

class StaEngine {
 public:
  /// Both netlist and library must outlive the engine.
  StaEngine(const netlist::Netlist& nl, const liberty::Library& lib);

  // -- constraints -------------------------------------------------------
  /// Arrival + slew applied to both transitions of an input port.
  void set_input(const std::string& port, double arrival, double slew);
  void set_input(const std::string& port, RiseFall rf, double arrival,
                 double slew);
  /// Extra load on an output port [F].
  void set_output_load(const std::string& port, double cap);
  /// Required (latest allowed) arrival at an output port.
  void set_required(const std::string& port, double time);
  /// Lumped net parasitics: extra capacitive load on the driver and a
  /// wire delay added to every sink arrival (e.g. the Elmore delay from
  /// interconnect::RcTree).
  void set_net_parasitics(const std::string& net, double cap, double delay);

  // -- crosstalk hooks ----------------------------------------------------
  /// Technique used at noisy nets (defaults to SGDP).
  void set_noise_method(std::unique_ptr<core::EquivalentWaveformMethod> m);
  /// Annotates a net with the noisy waveform observed at its sinks for
  /// the transition of the given polarity.
  void annotate_noisy_net(const std::string& net, wave::Waveform waveform,
                          wave::Polarity polarity);

  // -- analysis ------------------------------------------------------------
  /// Runs forward (arrival) and backward (required) propagation.
  void run();

  /// Timing of a pin ("u1/Y") or port ("y").  Throws for unknown names.
  [[nodiscard]] const PinTiming& timing(const std::string& pin,
                                        RiseFall rf) const;
  /// Worst slack over output ports (the analysis must have run).
  [[nodiscard]] double worst_slack() const;
  /// Critical path: backtracked predecessor chain of the worst-slack
  /// endpoint, source first.
  [[nodiscard]] std::vector<PathStep> worst_path() const;
  /// Multi-line human-readable summary.
  [[nodiscard]] std::string report() const;

  /// Number of graph vertices (pins + ports); for tests.
  [[nodiscard]] size_t vertex_count() const noexcept {
    return vertices_.size();
  }

 private:
  struct Vertex {
    std::string name;
    PinTiming timing[2];          // indexed by RiseFall
    int critical_pred[2] = {-1, -1};
    RiseFall critical_pred_rf[2] = {RiseFall::kRise, RiseFall::kRise};
  };

  struct CellArcEdge {
    int from = -1;  // instance input pin vertex
    int to = -1;    // instance output pin vertex
    const liberty::TimingArc* arc = nullptr;
    double load = 0.0;  // computed before propagation
  };

  struct NetEdge {
    int from = -1;
    int to = -1;
    std::string net;
    const liberty::Pin* sink_pin = nullptr;   // liberty pin at the sink
    const liberty::Cell* sink_cell = nullptr;
    double sink_load = 0.0;  // load seen by the sink gate's output
  };

  struct NoisyNet {
    wave::Waveform waveform;
    wave::Polarity polarity;
  };

  int vertex(const std::string& name);
  [[nodiscard]] int find_vertex(const std::string& name) const;
  void build_graph();
  void compute_loads();
  void levelize();
  void propagate_cell_arc(const CellArcEdge& e);
  void propagate_net_edge(const NetEdge& e);
  void relax(int to, RiseFall to_rf, double arrival, double slew, int from,
             RiseFall from_rf);
  void backward_pass();

  const netlist::Netlist* netlist_;
  const liberty::Library* library_;
  std::vector<Vertex> vertices_;
  std::map<std::string, int> vertex_index_;
  std::vector<CellArcEdge> cell_edges_;
  std::vector<NetEdge> net_edges_;
  /// Edge execution order produced by levelization: pairs of
  /// (is_cell_edge, index).
  std::vector<std::pair<bool, size_t>> schedule_;
  std::map<std::string, double> output_loads_;
  std::map<std::string, std::pair<double, double>> net_parasitics_;
  std::map<std::string, NoisyNet> noisy_nets_;
  std::unique_ptr<core::EquivalentWaveformMethod> noise_method_;
  bool analyzed_ = false;
};

}  // namespace waveletic::sta
