#include "sta/gamma_cache.hpp"

#include <cstring>

namespace waveletic::sta {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t h, const void* data, size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t mix(uint64_t h, uint64_t v) noexcept {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace

uint64_t noise_waveform_key(const wave::Waveform& w,
                            wave::Polarity polarity) noexcept {
  uint64_t h = kFnvOffset;
  h = mix(h, static_cast<uint64_t>(polarity));
  h = mix(h, static_cast<uint64_t>(w.size()));
  const auto t = w.times();
  const auto v = w.values();
  if (!t.empty()) {
    h = fnv1a(h, t.data(), t.size() * sizeof(double));
    h = fnv1a(h, v.data(), v.size() * sizeof(double));
  }
  return h;
}

size_t GammaCache::KeyHash::operator()(const Key& k) const noexcept {
  uint64_t h = kFnvOffset;
  h = mix(h, k.noise_key);
  h = mix(h, k.method_id);
  h = mix(h, k.arc_id);
  h = mix(h, (static_cast<uint64_t>(k.edge) << 32) | k.rf);
  h = mix(h, k.arrival_bits);
  h = mix(h, k.slew_bits);
  h = mix(h, k.load_bits);
  h = mix(h, k.corner_key);
  return static_cast<size_t>(h);
}

size_t GammaCache::shard_of(const Key& key) const noexcept {
  return KeyHash{}(key) % kShards;
}

std::optional<GammaCache::Value> GammaCache::lookup(const Key& key) noexcept {
  auto& shard = shards_[shard_of(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void GammaCache::insert(const Key& key, const Value& value) {
  auto& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.emplace(key, value);
}

GammaCache::Stats GammaCache::stats() const noexcept {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

void GammaCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace waveletic::sta
