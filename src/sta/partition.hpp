#pragma once

/// \file partition.hpp
/// Netlist partitioning for coarse-grained sweep sharding.
///
/// The paper's noisy-waveform propagation is embarrassingly parallel
/// across independent cones of logic, but per-level (point × vertex)
/// fan-out starves the thread pool on narrow levels and serializes at
/// every level barrier.  This file cuts the levelized timing graph at
/// low-fanout net boundaries into *partitions* — groups of vertices a
/// worker can propagate end-to-end as ONE task — and compiles them into
/// a per-point task schedule the ThreadPool executes dependency-ordered
/// (util::ThreadPool::run_graph), with no level barriers at all.
///
/// Construction (PartitionSet::build):
///  1. union-find over the edge list: every edge that is NOT a cut
///     candidate (cell arcs, high-fanout net arcs) unites its endpoint
///     vertices — cones connected by wide nets stay together;
///  2. cut-candidate edges (arcs of low-fanout nets — the cheap,
///     registered-output-like boundaries) are then greedily re-merged
///     smallest-merge-first (a deterministic lazy min-heap keyed on the
///     merged size, ties by edge index) while the merged partition
///     stays under a size cap — balance-aware: chains coalesce into
///     near-uniform coarse blocks instead of one cap-sized block with
///     one-gate fragments stranded behind it;
///  3. partitions are numbered by their smallest vertex, each
///     partition's vertices are sorted by (topological level, vertex),
///     and the surviving cross-partition edges define a partition DAG
///     plus the frontier-interface vertex set (the pruning-ready
///     metadata: a scenario whose noisy nets touch no interface of a
///     partition cannot change anything downstream of it).
///
/// Scheduling (PartitionSchedule::build): one task per (point,
/// partition) — except partitions *wider* than a threshold (many
/// vertices on one level), which fall back to per-level fan-out
/// internally: their levels are split into chunk tasks chained
/// level-to-level, reproducing the fine-grained schedule only where it
/// pays.  Task execution order never changes results: every vertex is
/// folded exactly once, after all of its predecessors, in the same
/// fixed in-edge order as the unsharded path — so sharded propagation
/// is bitwise identical to per-level fan-out and to serial runs (same
/// Γeff cache keys, same fold orders).

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace waveletic::sta {

/// Default width (max vertices of one partition on one topological
/// level) above which a partition's schedule falls back to per-level
/// chunk tasks instead of one serial end-to-end task.
inline constexpr size_t kDefaultWidePartitionThreshold = 32;

struct PartitionOptions {
  /// Net arcs whose net drives at most this many sinks are cut
  /// candidates (low-fanout boundaries); higher-fanout nets always stay
  /// inside one partition.  Negative disables cutting entirely (the
  /// whole connected graph becomes one partition).
  int cut_fanout = 2;
  /// Size cap for greedy re-merging across cut candidates; 0 selects
  /// max(32, num_vertices / 16) — a pure function of the graph, so the
  /// partitioning is machine-independent.
  size_t max_partition_vertices = 0;
};

/// One directed timing-graph edge handed to the partitioner.
struct PartitionEdge {
  int from = -1;
  int to = -1;
  bool cut_candidate = false;
};

/// The partition cover of a timing graph: disjoint vertex groups, a
/// partition-level dependency DAG, and the interface (frontier) vertex
/// set.  Immutable once built.
class PartitionSet {
 public:
  PartitionSet() = default;

  /// Partitions a graph of `num_vertices` vertices with topological
  /// `level[v]` per vertex and the given edge list.  Deterministic:
  /// depends only on the arguments (greedy merge walks `edges` in
  /// order).  Every vertex lands in exactly one partition.
  [[nodiscard]] static PartitionSet build(size_t num_vertices,
                                          std::span<const int> level,
                                          std::span<const PartitionEdge> edges,
                                          const PartitionOptions& options = {});

  /// Number of partitions.
  [[nodiscard]] size_t size() const noexcept { return parts_.size(); }
  [[nodiscard]] size_t num_vertices() const noexcept {
    return partition_of_.size();
  }

  /// Partition owning vertex `v`.
  [[nodiscard]] int partition_of(int v) const {
    return partition_of_[static_cast<size_t>(v)];
  }
  /// Vertices of partition `k`, sorted by (topological level, vertex) —
  /// iterating them in order is a valid serial propagation order.
  [[nodiscard]] const std::vector<int>& vertices(size_t k) const {
    return parts_[k].vertices;
  }
  /// Max number of partition-`k` vertices sharing one topological
  /// level (the "width" the per-level fallback threshold tests).
  [[nodiscard]] size_t width(size_t k) const { return parts_[k].width; }
  /// Partitions that must complete before `k` may start (cross-edge
  /// sources), ascending, deduplicated.
  [[nodiscard]] const std::vector<uint32_t>& predecessors(size_t k) const {
    return parts_[k].predecessors;
  }
  /// Partitions depending on `k`, ascending, deduplicated.
  [[nodiscard]] const std::vector<uint32_t>& successors(size_t k) const {
    return parts_[k].successors;
  }

  /// Frontier-interface vertices: endpoints of cross-partition edges,
  /// ascending.  A noise annotation that cannot reach a partition's
  /// interface cannot affect other partitions — the hook scenario
  /// pruning builds on.
  [[nodiscard]] const std::vector<int>& interface_vertices() const noexcept {
    return interface_vertices_;
  }
  [[nodiscard]] bool is_interface(int v) const {
    return is_interface_[static_cast<size_t>(v)];
  }

  /// Surviving cross-partition edges (from, to), in input edge order.
  [[nodiscard]] const std::vector<std::pair<int, int>>& cross_edges()
      const noexcept {
    return cross_edges_;
  }

 private:
  struct Partition {
    std::vector<int> vertices;
    std::vector<uint32_t> predecessors;
    std::vector<uint32_t> successors;
    size_t width = 0;
  };

  std::vector<Partition> parts_;
  std::vector<int> partition_of_;
  std::vector<int> interface_vertices_;
  std::vector<char> is_interface_;
  std::vector<std::pair<int, int>> cross_edges_;
};

/// One schedulable chunk of a partition: the vertices at
/// [begin, end) of PartitionSchedule::order(), already in level order.
struct ShardTask {
  uint32_t partition = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// The per-point task DAG compiled from a PartitionSet: narrow
/// partitions become one end-to-end task; partitions wider than
/// `wide_threshold` are split into per-level chunk tasks chained
/// level-to-level (the per-level fan-out fallback, applied only where
/// the partition is actually wide).  Cross-partition edges become
/// task→task dependencies at chunk granularity.
///
/// The forward pass runs tasks under indegree()/successors(), each task
/// folding its vertex range front-to-back; the backward pass runs the
/// reversed DAG (rev_indegree()/rev_successors()), each task walking
/// its range back-to-front.  A sweep of N points executes N independent
/// copies of this DAG (ThreadPool::run_graph `tiles`).
class PartitionSchedule {
 public:
  PartitionSchedule() = default;

  [[nodiscard]] static PartitionSchedule build(
      const PartitionSet& partitions, std::span<const int> level,
      size_t wide_threshold = kDefaultWidePartitionThreshold);

  [[nodiscard]] const std::vector<ShardTask>& tasks() const noexcept {
    return tasks_;
  }
  /// Concatenated per-task vertex runs (each run level-sorted).
  [[nodiscard]] const std::vector<int>& order() const noexcept {
    return order_;
  }
  [[nodiscard]] const std::vector<uint32_t>& indegree() const noexcept {
    return indegree_;
  }
  [[nodiscard]] const std::vector<std::vector<uint32_t>>& successors()
      const noexcept {
    return successors_;
  }
  [[nodiscard]] const std::vector<uint32_t>& rev_indegree() const noexcept {
    return rev_indegree_;
  }
  /// A deterministic topological order of the tasks, for pool-less
  /// serial execution of the forward pass; iterating it backwards is a
  /// valid order for the backward pass.  (Any valid order produces the
  /// same results.)
  [[nodiscard]] const std::vector<uint32_t>& serial_order() const noexcept {
    return serial_order_;
  }
  [[nodiscard]] const std::vector<std::vector<uint32_t>>& rev_successors()
      const noexcept {
    return rev_successors_;
  }
  [[nodiscard]] size_t wide_threshold() const noexcept {
    return wide_threshold_;
  }

 private:
  std::vector<ShardTask> tasks_;
  std::vector<int> order_;
  std::vector<uint32_t> indegree_;
  std::vector<std::vector<uint32_t>> successors_;
  std::vector<uint32_t> rev_indegree_;
  std::vector<std::vector<uint32_t>> rev_successors_;
  std::vector<uint32_t> serial_order_;
  size_t wide_threshold_ = kDefaultWidePartitionThreshold;
};

}  // namespace waveletic::sta
