#pragma once

/// \file hiergraph.hpp
/// Hierarchical top-level timing graph: block instances carrying
/// macro-models, with one block under analysis expanded flat.
///
/// HierDesign stitches B copies of a characterized block
/// (netlist::stitch_blocks) into one top-level netlist where abstracted
/// copies are single instances of the BlockModel's synthesized liberty
/// cell and exactly one copy keeps its gate-level contents.  The
/// existing levelized StaEngine propagates the result unchanged: macro
/// arcs are ordinary NLDM arcs, so the "new arc kind" evaluates table
/// lookups through the standard cell-edge path instead of waveform
/// fits — there is nothing to fit inside an abstracted block because
/// its interior nets no longer exist.  Sweep cost therefore drops from
/// O(design) to O(block + interfaces): a stitched ≥1M flat-equivalent-
/// vertex design sweeps on one machine while the hierarchical graph
/// holds only copies × (ports + 1) macro vertices plus the expanded
/// block.
///
/// Accuracy contract (docs/HIER_GUIDE.md):
///  - timing inside the expanded copy is bitwise identical to the
///    fully-flat engine under StitchTopology::kParallel (enforced by
///    tests/test_sta_hier.cpp at 1/2/4 threads);
///  - timing through abstracted copies is table-interpolated (exact at
///    extraction grid points, bilinear between them);
///  - a bump annotated inside an abstracted copy is lowered onto its
///    interface by first-order sensitivity (lower_interior_bump).

#include <cstddef>
#include <memory>
#include <string>

#include "liberty/library.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sta/engine.hpp"
#include "sta/macromodel.hpp"
#include "sta/scengen.hpp"
#include "sta/sweep.hpp"

namespace waveletic::sta {

/// A stitched hierarchical design: owns the augmented library (base
/// library + the macro cell), the stitched netlist, and the StaEngine
/// analyzing it — in that order, so the engine's raw arc/netlist
/// pointers stay valid for its whole lifetime.  Move-only.
class HierDesign {
 public:
  /// Builds the design: copies `base_lib`, registers `model.to_cell()`
  /// in the copy, stitches `options.copies` copies of `block`
  /// (options.block_cell is overridden with the model's name so the
  /// abstracted instances resolve), and constructs the engine.
  /// `block` must be the netlist `model` was extracted from.
  [[nodiscard]] static HierDesign build(const netlist::Netlist& block,
                                        const liberty::Library& base_lib,
                                        const BlockModel& model,
                                        netlist::StitchOptions options);

  /// The engine over the stitched graph — constrain ports, run() and
  /// query it exactly like a flat engine.
  [[nodiscard]] StaEngine& engine() noexcept { return *engine_; }
  /// Const engine access (queries on a finished run()).
  [[nodiscard]] const StaEngine& engine() const noexcept { return *engine_; }
  /// The stitched top-level netlist.
  [[nodiscard]] const netlist::Netlist& netlist() const noexcept {
    return *netlist_;
  }
  /// The augmented library (base + macro cell) the engine reads.
  [[nodiscard]] const liberty::Library& library() const noexcept {
    return *library_;
  }
  /// The macro-model the abstracted copies instantiate.
  [[nodiscard]] const BlockModel& model() const noexcept { return model_; }
  /// Stitch options the design was built with (block_cell resolved).
  [[nodiscard]] const netlist::StitchOptions& stitch_options() const noexcept {
    return stitch_;
  }

  /// Flat-equivalent timing-vertex count — what the flat engine would
  /// levelize (netlist::stitched_flat_vertex_count); the bench headline
  /// size, never materialized.
  [[nodiscard]] size_t stitched_vertex_count() const noexcept {
    return flat_vertices_;
  }
  /// Actual vertex count of the hierarchical graph (after prepare()).
  [[nodiscard]] size_t hier_vertex_count() const noexcept {
    return engine_->vertex_count();
  }
  /// Index of the expanded copy, or negative when every copy is
  /// abstracted.
  [[nodiscard]] int expanded_copy() const noexcept { return stitch_.expanded; }
  /// Vertex-name prefix of the expanded copy ("u<k>/"), empty when no
  /// copy is expanded.
  [[nodiscard]] std::string expanded_prefix() const;

  /// Sweeps corners × scenarios over the hierarchical graph —
  /// identical semantics to StaEngine::sweep(SweepSpec).
  [[nodiscard]] SweepResult sweep(const SweepSpec& spec) {
    return engine_->sweep(spec);
  }
  /// Streams a generated scenario space over the hierarchical graph —
  /// identical semantics to StaEngine::sweep(GeneratedSweepSpec).
  [[nodiscard]] GeneratedSweepResult sweep(const GeneratedSweepSpec& spec) {
    return engine_->sweep(spec);
  }

  /// Lowers a noise bump annotated on interior net `net` of abstracted
  /// copy `copy` onto that copy's interface: for every output port with
  /// a characterized transfer from `net`, the returned scenario
  /// re-annotates the macro's output net with a clean ramp pushed out
  /// by sensitivity × `amplitude` [V] from the current run() baseline —
  /// the first-order contract by which bumps inside one block still
  /// perturb downstream blocks.  Call run() first (the baseline
  /// arrivals/slews are read from the engine).  Throws
  /// std::invalid_argument when `copy` is out of range or expanded, or
  /// when `net` has no characterized transfer.
  [[nodiscard]] NoiseScenario lower_interior_bump(
      size_t copy, const std::string& net, double amplitude,
      wave::Polarity polarity = wave::Polarity::kFalling,
      size_t samples = 512) const;

 private:
  HierDesign() = default;

  // Destruction order (reverse of declaration): engine first, then the
  // netlist and library it points into.
  std::unique_ptr<liberty::Library> library_;
  std::unique_ptr<netlist::Netlist> netlist_;
  std::unique_ptr<StaEngine> engine_;
  BlockModel model_;
  netlist::StitchOptions stitch_;
  size_t flat_vertices_ = 0;
};

}  // namespace waveletic::sta
