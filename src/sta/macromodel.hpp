#pragma once

/// \file macromodel.hpp
/// Hierarchical timing macro-models — block interface characterization.
///
/// Flat propagation of noisy waveforms hits a memory/time wall long
/// before production design sizes: every sweep point re-walks the whole
/// levelized graph even though most of it is unchanged context around
/// the block under analysis.  Following Li/Chen/Schlichtmann's timing
/// model extraction (PAPERS.md, arxiv 1705.04976) and hierarchical SSTA
/// (arxiv 1705.04975), this layer characterizes a block of the design
/// into a *macro-model*: port-to-port delay/slew NLDM tables over an
/// input-slew × output-load grid (the same grid shape
/// charlib::characterize_cell fits single cells on) plus a noise-
/// transfer sensitivity per interface arc, so a noise bump annotated on
/// a net inside one block still perturbs the blocks downstream of it.
///
/// The extracted BlockModel converts to an ordinary liberty::Cell
/// (BlockModel::to_cell()): the hierarchical engine in hiergraph.hpp
/// instantiates abstracted blocks as single instances of that cell, and
/// the existing levelized engine evaluates their arcs through the
/// standard NLDM table-lookup path — no waveform fitting happens inside
/// an abstracted block, because its interior nets no longer exist.
///
/// Accuracy contract (docs/HIER_GUIDE.md spells it out in full):
///  - at extraction grid points, a macro arc reproduces the flat
///    engine's port-to-port delay/slew bitwise at interior grid points
///    (bilinear interpolation with frac = 0) and to ≤ 1 ulp at the last
///    grid row/column (frac = 1.0 lerp);
///  - between grid points, values are bilinearly interpolated — the
///    standard NLDM accuracy model;
///  - timing inside the one block expanded flat is bitwise identical to
///    the fully-flat engine (per-vertex in-edge fold order is
///    instance-local), which tests/test_sta_hier.cpp enforces at
///    multiple thread counts.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "wave/waveform.hpp"

namespace waveletic::sta {

class StaEngine;

/// Extraction knobs of extract_block_model().
struct BlockModelOptions {
  /// Input-slew grid axis [s] of every extracted table.  Empty selects
  /// the charlib::CharGrid default characterization slews.
  std::vector<double> slews;
  /// Output-load grid axis [F] of every extracted table.  Empty selects
  /// the charlib::CharGrid default x1-drive loads.
  std::vector<double> loads;
  /// Name of the synthesized macro cell (BlockModel::to_cell()).
  std::string name = "BLOCK";
  /// Interior nets (beyond the always-characterized input-port nets) to
  /// probe for noise-transfer sensitivity — typically the block's
  /// coupling-prone nets a generated sweep would annotate.
  std::vector<std::string> noise_nets;
  /// Probe-bump peak as a fraction of the library nominal voltage; the
  /// sensitivity is the observed output-arrival push-out divided by
  /// this amplitude [s/V].
  double noise_amplitude_fraction = 0.4;
  /// Polarity of the probe bump's victim transition.
  wave::Polarity noise_polarity = wave::Polarity::kFalling;
  /// Sample count of the synthesized probe waveform.
  size_t waveform_samples = 512;
  /// Threads used by the characterization runs (1 = serial; the grid is
  /// deterministic at any value).
  int threads = 1;
};

/// One port-to-port timing arc of a macro-model: NLDM delay/transition
/// tables over the extraction grid, evaluated by the standard engine
/// table-lookup path once the model is instantiated as a cell.
struct BlockPortArc {
  /// Source (input) port name.
  std::string from_port;
  /// Destination (output) port name.
  std::string to_port;
  /// The synthesized liberty arc (sense kNonUnate: each valid input
  /// transition feeds both output transitions, matching how the flat
  /// block relaxes rise/fall paths into its output ports).
  liberty::TimingArc arc;
  /// Noise-transfer sensitivity of this interface arc [s/V]: output
  /// arrival push-out at `to_port` per volt of bump peak annotated on
  /// the `from_port` net, measured at the reference grid point.  Zero
  /// when the probe produced no measurable push-out.
  double noise_transfer = 0.0;
};

/// Noise-transfer sensitivity from one characterized net to one output
/// port — the record hiergraph uses to lower a bump annotated inside an
/// abstracted block onto the block's interface.
struct NoiseTransfer {
  /// Characterized net name (an input-port net or an interior
  /// BlockModelOptions::noise_nets entry).
  std::string net;
  /// Output port whose arrival the bump pushes out.
  std::string to_port;
  /// Arrival push-out per volt of bump peak [s/V], ≥ 0.
  double sensitivity = 0.0;
};

/// A characterized block: its interface ports, port-to-port NLDM arcs,
/// and noise-transfer sensitivities.  Produced by extract_block_model();
/// consumed by HierDesign (hiergraph.hpp) via to_cell().
struct BlockModel {
  /// One interface port of the block.
  struct PortSpec {
    /// Port name (equals the block-netlist port/net name).
    std::string name;
    /// True for input ports, false for output ports.
    bool is_input = false;
    /// Input-pin capacitance presented to the driving net [F]: the sum
    /// of the liberty input-pin capacitances on the port net (zero for
    /// output ports).
    double capacitance = 0.0;
  };

  /// Macro cell name (BlockModelOptions::name).
  std::string name;
  /// Interface ports, inputs first, in block-netlist port order.
  std::vector<PortSpec> ports;
  /// Port-to-port arcs; only structurally reachable (from, to) pairs
  /// are present.
  std::vector<BlockPortArc> arcs;
  /// Noise-transfer sensitivities for every characterized net (all
  /// input-port nets plus BlockModelOptions::noise_nets) × reachable
  /// output port.
  std::vector<NoiseTransfer> transfers;
  /// Extraction grid axes the tables were sampled on.
  std::vector<double> slews;
  /// Output-load grid axis [F] (see slews).
  std::vector<double> loads;

  /// Synthesizes the macro liberty cell: one input pin per input port
  /// (carrying its capacitance), one output pin per output port
  /// (carrying the port's arcs).  Add the cell to a Library *copy* that
  /// outlives any engine built on it — the engine stores raw arc
  /// pointers into the library.
  [[nodiscard]] liberty::Cell to_cell() const;

  /// Sensitivity from `net` to `to_port` [s/V]; 0 when the pair was not
  /// characterized (or not reachable).
  [[nodiscard]] double transfer(const std::string& net,
                                const std::string& to_port) const noexcept;
};

/// Characterizes `block` against `lib` into a BlockModel: for every
/// (input port, output load) a forked engine drives that single input
/// across the slew grid and reads every reachable output port's arrival
/// (→ delay table: the input is driven at arrival 0) and slew
/// (→ transition table); then a reference-point engine (all inputs at
/// the mid-grid slew, all outputs at the mid-grid load) measures the
/// noise-transfer sensitivities by annotating a probe bump per
/// characterized net and reading the output-arrival push-out.
/// Deterministic: the grid walk order is fixed and every run uses the
/// engine's deterministic propagation.
[[nodiscard]] BlockModel extract_block_model(
    const netlist::Netlist& block, const liberty::Library& lib,
    const BlockModelOptions& options = {});

/// Carves the sub-netlist induced by `instances` (names into `design`)
/// out of the design: kept instances keep their cells and connections; a
/// net driven outside but consumed inside becomes an input port, a net
/// driven inside and consumed outside (or exported by the design)
/// becomes an output port, and purely interior nets stay interior.  The
/// result is a standalone netlist (validate()-clean) ready for
/// extract_block_model().  Throws std::invalid_argument on unknown
/// instance names or when the carve has no ports.
[[nodiscard]] netlist::Netlist carve_block(const netlist::Netlist& design,
                                           const liberty::Library& lib,
                                           std::span<const std::string> instances,
                                           const std::string& block_name = "block");

/// Instance names of one PartitionSet partition of a prepared engine —
/// the frontier-interface hook of PR 4: partition `k`'s timing vertices
/// ("inst/pin" and port names) map back to the netlist instances they
/// belong to (port vertices are skipped).  Sorted, deduplicated; the
/// result feeds carve_block() to characterize a partition in place.
[[nodiscard]] std::vector<std::string> partition_instances(
    const StaEngine& sta, size_t partition);

}  // namespace waveletic::sta
