#pragma once

/// \file ids.hpp
/// Stable integer handles into a prepared StaEngine, plus the corner
/// (derate) descriptor swept by the Sweep API.
///
/// Handles are resolved ONCE by name — StaEngine::pin(), net(), port()
/// — and are then plain integers: every hot-path call that takes a
/// handle (constraint setters, timing(), annotate_noisy_net(), result
/// accessors) indexes dense per-vertex / per-net arrays directly, with
/// no string hashing or map walk.  A handle carries the tag of the
/// engine that minted it, so using a default-constructed handle or one
/// resolved against a *different* engine throws instead of silently
/// reading the wrong vertex.
///
/// The string overloads of the engine API remain as thin
/// resolve-then-forward wrappers, so name-based code keeps working and
/// is bitwise-identical to the handle path.

#include <bit>
#include <cstdint>
#include <string>

namespace waveletic::sta {

/// Handle to a timing-graph vertex: an instance pin ("u1/A") or a
/// top-level port ("y").  Minted by StaEngine::pin().
struct PinId {
  int32_t index = -1;  ///< vertex index in the minting engine
  uint32_t graph = 0;  ///< tag of the minting engine (0 = invalid)

  /// True when the handle was minted by an engine (not default).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index >= 0 && graph != 0;
  }
  /// Memberwise equality (same vertex of the same engine).
  [[nodiscard]] constexpr bool operator==(const PinId&) const noexcept =
      default;
};

/// Handle to a net of the analyzed netlist.  Minted by StaEngine::net().
struct NetId {
  int32_t index = -1;  ///< net ordinal in the netlist
  uint32_t graph = 0;  ///< tag of the minting engine (0 = invalid)

  /// True when the handle was minted by an engine (not default).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index >= 0 && graph != 0;
  }
  /// Memberwise equality (same net of the same engine).
  [[nodiscard]] constexpr bool operator==(const NetId&) const noexcept =
      default;
};

/// Handle to a top-level port.  Minted by StaEngine::port().
struct PortId {
  int32_t index = -1;  ///< port ordinal in the netlist's port list
  uint32_t graph = 0;  ///< tag of the minting engine (0 = invalid)

  /// True when the handle was minted by an engine (not default).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return index >= 0 && graph != 0;
  }
  /// Memberwise equality (same port of the same engine).
  [[nodiscard]] constexpr bool operator==(const PortId&) const noexcept =
      default;
};

/// One corner / derate setting of a sweep: multiplicative scales applied
/// during propagation.  The nominal corner (all scales 1.0) is bitwise
/// identical to an un-derated run, because x * 1.0 == x for every
/// finite IEEE double.
struct Corner {
  /// Corner label (reports only; the key() covers the scales).
  std::string name = "nominal";
  /// Scales every cell-arc delay (NLDM lookup result).
  double cell_delay_scale = 1.0;
  /// Scales every cell-arc output slew.
  double cell_slew_scale = 1.0;
  /// Scales annotated wire delays on net arcs.
  double wire_delay_scale = 1.0;

  /// Content key over the scale bits, folded into the Γeff memo key so
  /// one shared cache stays correct across corners (a fit under a
  /// different derate is a different fit).
  [[nodiscard]] uint64_t key() const noexcept {
    auto mix = [](uint64_t h, uint64_t v) noexcept {
      return (h ^ (v + 0x9e3779b97f4a7c15ull)) * 0x100000001b3ull;
    };
    uint64_t h = 1469598103934665603ull;
    h = mix(h, std::bit_cast<uint64_t>(cell_delay_scale));
    h = mix(h, std::bit_cast<uint64_t>(cell_slew_scale));
    h = mix(h, std::bit_cast<uint64_t>(wire_delay_scale));
    return h;
  }
};

}  // namespace waveletic::sta
