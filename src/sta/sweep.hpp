#pragma once

/// \file sweep.hpp
/// The unified sweep surface: one levelized pass over the cross product
/// of noise scenarios × corner (derate) settings.
///
/// A crosstalk sign-off sweeps many noise scenarios — aggressor
/// alignments, strengths, switching-window corners — and modern flows
/// sweep them *per library corner*.  Running each (scenario, corner)
/// point as its own engine run repeats the levelized walk N×M times.
/// StaEngine::sweep(SweepSpec) instead prepares the engine once,
/// compiles every scenario's annotations into dense per-net-edge
/// pointer tables, and evaluates all points in ONE pass.  Scheduling is
/// partition-sharded by default: the timing graph is cut at low-fanout
/// net boundaries into independent partitions (sta/partition.hpp) and
/// every (point, partition) shard runs as one coarse dependency-ordered
/// task on the thread pool — no level barriers, no per-point barriers;
/// partitions wider than `wide_partition_threshold` fall back to
/// per-level chunk tasks internally.  `shard = false` selects the
/// legacy per-level (point × vertex-of-level) fan-out.  All points
/// share a thread-safe Γeff memo (GammaCache) keyed on exact inputs +
/// the corner key, so fits recur at most once per distinct (net edge,
/// ramp, annotation, corner).
///
/// Evaluation is *baseline + delta* by default (SweepSpec::delta): one
/// nominal TimingState per corner, then each scenario point
/// re-propagates only the transitive fanout cone of its annotated nets
/// against that baseline — the paper's observation that a noise bump
/// perturbs timing only through the victim's cone, turned into the
/// sweep hot path.  Untouched partitions are skipped entirely, and the
/// unbalanced per-point dirty worklists are load-balanced over
/// ThreadPool::run_graph.  On top of it, SweepSpec::prune ==
/// PruneMode::kSafe orders points most-critical-first by a conservative
/// slack lower bound (worst baseline slack inside the cone minus a
/// push-out bound from the annotation magnitudes) and early-outs points
/// that provably cannot set the sweep's worst slack — FRAME-style
/// screening before exact analysis.
///
/// Determinism: points write disjoint TimingStates, each vertex folds
/// its in-edges in a fixed order after all of its predecessors, and
/// cache hits return bitwise what the fit would produce — so sweep
/// results are bitwise identical between sharded and per-level
/// schedules, between baseline+delta and full per-point propagation,
/// and to looped single-thread runs, at any thread count.
///
/// Result storage: the default keeps a full TimingState per point.  For
/// sweep-scale point counts (10k+), `endpoint_only = true` keeps only
/// {worst slack, critical endpoint, arrival at endpoints} per point —
/// ~vertex_count× less memory — and evaluates points in bounded-size
/// chunks so transient state stays small too.
///
/// ScenarioBatch (batch.hpp) is a compatibility shim over this surface:
/// a sweep of one nominal corner × N scenarios.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"

namespace waveletic::noise {
struct CaseWaveforms;
}
namespace waveletic::util {
class ThreadPool;
}

namespace waveletic::sta {

/// One named noise scenario: per-net noisy-waveform annotations, stored
/// as a flat entry list (annotate() replaces an existing entry for the
/// same net).  During a sweep they overlay the engine-level dense
/// annotation table: engine annotations apply to every scenario, and a
/// scenario's own annotation wins on nets both touch — resolved once at
/// compile time into the per-edge pointer table, never during
/// propagation.
struct NoiseScenario {
  /// Scenario label carried into SweepResult::scenario_name() and
  /// reports (make_aggressor_scenario encodes net/alignment/strength).
  std::string name;

  /// One per-net annotation of the scenario.
  struct Entry {
    std::string net;             ///< annotated net name
    NoiseAnnotation annotation;  ///< noisy waveform + polarity
  };
  /// The annotations, one entry per distinct net (see annotate()).
  std::vector<Entry> entries;

  /// Annotates `net`; the memoization key is derived from the waveform
  /// content, so identical annotations across scenarios share Γeff fits.
  void annotate(const std::string& net, wave::Waveform waveform,
                wave::Polarity polarity);
  /// The annotation this scenario puts on `net`, or null.
  [[nodiscard]] const NoiseAnnotation* find(
      const std::string& net) const noexcept;
};

/// Builds a scenario modelling one aggressor coupling event on `net`:
/// the clean ramp of the victim transition (as propagated by a clean
/// run: `victim_arrival`/`victim_slew`) plus a Gaussian coupling bump.
/// `alignment` offsets the bump centre from the victim 50% crossing
/// [s]; `strength` is the bump peak [V] (the aggressor coupling
/// magnitude).  This is the synthetic stand-in for the golden
/// noise::NoiseRunner sweep, parameterized the same way (aggressor
/// alignment/strength).
[[nodiscard]] NoiseScenario make_aggressor_scenario(
    const std::string& net, double victim_arrival, double victim_slew,
    double vdd, wave::Polarity polarity, double alignment, double strength,
    size_t samples = 512);

/// Builds a scenario from a golden noise::NoiseRunner case: annotates
/// `net` with the simulated noisy waveform at the victim receiver input.
[[nodiscard]] NoiseScenario scenario_from_case(
    const std::string& net, const noise::CaseWaveforms& case_waveforms);

/// Scenario-pruning mode of a sweep (SweepSpec::prune).
enum class PruneMode : uint8_t {
  /// Evaluate every (corner, scenario) point.
  kOff = 0,
  /// Order points by a conservative per-point slack lower bound — the
  /// worst corner-baseline slack among the endpoints inside the
  /// scenario's fanout cone, minus a push-out bound derived from the
  /// annotation magnitudes against the corner baseline — and early-out
  /// points whose bound shows they cannot beat the worst slack seen so
  /// far.  The sweep-level worst_slack()/worst_point()/
  /// critical_endpoint() answers stay exact: a pruned point's true
  /// worst slack is strictly above the final worst, so the argmin
  /// (ties included) is always evaluated.  "Safe" is a margin-backed
  /// engineering guarantee (×3 on the waveform-envelope push-out,
  /// validated against unpruned sweeps in tests and monitored by
  /// PruneStats::min_bound_gap), not a formal proof — an adversarial
  /// library whose delay-vs-slew sensitivities compound past the
  /// margin could in principle defeat the bound.  Per-point accessors
  /// of pruned points throw, mirroring endpoint_only semantics;
  /// worst_slack_bound() works on every point.
  kSafe = 1,
};

/// Stable lowercase name of a PruneMode ("off" / "safe").
[[nodiscard]] const char* to_string(PruneMode mode) noexcept;

/// Counters of one sweep's baseline + delta / pruning machinery
/// (SweepResult::prune_stats()).
struct PruneStats {
  size_t points = 0;     ///< corners × scenarios
  size_t evaluated = 0;  ///< points actually propagated
  /// Points whose cone contains no endpoint: every endpoint summary
  /// equals the corner baseline, so they are recorded exactly without
  /// propagation (prune == kSafe with endpoint_only only — a
  /// full-state result materializes such points instead, since their
  /// in-cone internal vertices DO differ from the baseline).
  size_t reused = 0;
  /// Points whose bound proved they cannot set the worst slack; not
  /// propagated, per-point accessors throw.
  size_t pruned = 0;
  /// Mean |fanout cone| / vertices over the scenario axis (delta mode).
  double dirty_vertex_fraction = 0.0;
  /// Mean touched partitions / total partitions over the scenario axis.
  double dirty_partition_fraction = 0.0;
  /// Bound tightness: mean and minimum of (exact worst slack − bound)
  /// over evaluated points [s].  A negative minimum would mean the
  /// bound was NOT conservative (asserted never to happen in tests).
  double mean_bound_gap = 0.0;
  /// Minimum of (exact worst slack − bound) over evaluated points [s].
  double min_bound_gap = 0.0;
};

/// Renders PruneStats with its canonical field names (points /
/// evaluated / reused / pruned / dirty_vertex_fraction /
/// dirty_partition_fraction / mean_bound_gap / min_bound_gap) — the
/// one formatting shared by the examples, bench_runtime and
/// docs/SWEEP_GUIDE.md, so docs and binaries never drift.
[[nodiscard]] std::string format_prune_stats(const PruneStats& stats);

/// The cross product a sweep evaluates: every corner × every scenario.
struct SweepSpec {
  /// Corner/derate axis; empty selects one point — the engine-level
  /// corner if set, else nominal.
  std::vector<Corner> corners;
  /// Noise-scenario axis; empty selects one clean scenario (the
  /// engine-level annotations still apply).
  std::vector<NoiseScenario> scenarios;
  /// Worker threads for the (point × vertex) fan-out; ≤ 0 selects the
  /// hardware concurrency.
  int threads = 0;
  /// Share one Γeff memo across all points (recommended; results are
  /// bitwise-identical either way — corner keys keep entries distinct).
  bool share_gamma_cache = true;
  /// Technique override; null uses the engine's configured method.
  const core::EquivalentWaveformMethod* method = nullptr;
  /// External pool to reuse across sweeps; null lets sweep() build one.
  util::ThreadPool* pool = nullptr;
  /// Partition-sharded scheduling: (point × partition) coarse tasks,
  /// dependency-ordered, no level barriers.  false selects the legacy
  /// per-level fan-out.  Results are bitwise identical either way.
  bool shard = true;
  /// Partitions wider than this (max vertices on one topological
  /// level) fall back to per-level chunk tasks internally.
  size_t wide_partition_threshold = kDefaultWidePartitionThreshold;
  /// Keep only {worst slack, critical endpoint, endpoint arrivals} per
  /// point instead of a full TimingState — ~vertex_count× less result
  /// memory for 10k+-point sweeps.  Full-state accessors (state(),
  /// view(), timing(), critical_path()) then throw.
  bool endpoint_only = false;
  /// Points evaluated per chunk in endpoint-only mode (bounds transient
  /// TimingState memory); 0 selects max(4 × threads, 64).
  size_t endpoint_chunk = 0;
  /// Baseline + delta evaluation: one nominal TimingState per corner,
  /// then every scenario point re-propagates only the transitive fanout
  /// cone of its annotated nets against that baseline (clean vertices
  /// read baseline values; untouched partitions are skipped entirely).
  /// Bitwise identical to full per-point propagation — `false` selects
  /// the legacy full-graph-per-point path (A/B and bench comparisons).
  bool delta = true;
  /// Scenario pruning (see PruneMode).  Works with either `delta`
  /// setting — the corner baselines it needs are computed either way.
  PruneMode prune = PruneMode::kOff;
  /// Seed for the pruning pass's running worst slack [s].  Default +inf
  /// reproduces the self-contained behaviour; a streaming caller (the
  /// generated sweep) passes the worst slack observed in earlier chunks
  /// so later chunks prune against it from the start.  Exactness
  /// contract: the seed must be a slack actually attained by some
  /// already-evaluated point of the SAME streamed sweep — admission
  /// uses a strict `bound > worst_seen` test, so a point pruned by the
  /// seed has true worst slack ≥ bound > seed and can neither beat nor
  /// tie the global argmin.  Seeding with an arbitrary low value
  /// instead turns worst_point() into "worst among points at most that
  /// critical" (and may prune everything).  Ignored when prune ==
  /// PruneMode::kOff.
  double prune_seed_slack = std::numeric_limits<double>::infinity();
  /// SIMD lane width for delta evaluation: 0 auto-selects (AVX2 → 4,
  /// else scalar), 1 forces the scalar per-point path (the bitwise
  /// oracle), 4 forces four-wide lane blocks and throws when the
  /// build/CPU lacks AVX2.  Compatible points (same corner, same or
  /// merged dirty cone) share one graph walk with their values in
  /// adjacent SIMD lanes; results are bitwise identical at every
  /// width.  Ignored when `delta` is false (the full-graph path has no
  /// lane grouping).
  int lanes = 0;
  /// External per-corner clean baselines for the delta/prune path: one
  /// TimingState per resolved corner (same order as `corners`), each the
  /// clean evaluate() of THIS engine under that corner with the same
  /// method and engine-level annotations this sweep uses.  The sweep
  /// then skips its own baseline pass — the streaming generated sweep
  /// computes baselines once per corner group and hands them to every
  /// chunk.  Null (default) computes baselines internally.  Size or
  /// vertex-count mismatches throw util::Error.  Ignored on the legacy
  /// path (delta == false and prune == kOff), which uses no baselines.
  const std::vector<TimingState>* corner_baselines = nullptr;
};

class SweepResult;

/// Read-only window onto one sweep point.  Valid while the SweepResult
/// it came from (and the engine) are alive; accessors that reach into
/// the engine throw util::Error — instead of dangling — once the
/// engine has been destroyed (they watch its liveness() token).
class TimingView {
 public:
  /// Timing of (pin, transition) at this point, by handle.
  [[nodiscard]] const PinTiming& timing(PinId pin, RiseFall rf) const;
  /// Timing of (pin, transition) at this point, by hierarchical name.
  [[nodiscard]] const PinTiming& timing(const std::string& pin,
                                        RiseFall rf) const;
  /// Worst slack over this point's constrained endpoints.
  [[nodiscard]] double worst_slack() const;
  /// The point's critical path, input port to worst endpoint.
  [[nodiscard]] std::vector<PathStep> critical_path() const;
  /// The corner this point was evaluated under.
  [[nodiscard]] const Corner& corner() const noexcept { return *corner_; }
  /// Name of the point's noise scenario.
  [[nodiscard]] const std::string& scenario_name() const noexcept {
    return *scenario_name_;
  }
  /// The point's full TimingState (advanced/internal use).
  [[nodiscard]] const TimingState& state() const noexcept { return *state_; }

 private:
  friend class SweepResult;
  TimingView(const StaEngine* engine, std::weak_ptr<const void> liveness,
             const TimingState* state, const Corner* corner,
             const std::string* scenario_name) noexcept
      : engine_(engine), liveness_(std::move(liveness)), state_(state),
        corner_(corner), scenario_name_(scenario_name) {}

  /// Dereferences engine_ behind the liveness check: throws util::Error
  /// instead of dangling when the engine has been destroyed.
  [[nodiscard]] const StaEngine& live_engine() const;

  const StaEngine* engine_;
  std::weak_ptr<const void> liveness_;  ///< engine liveness token
  const TimingState* state_;
  const Corner* corner_;
  const std::string* scenario_name_;
};

/// All results of one sweep, indexed by flat point (corner-major:
/// point = corner * num_scenarios + scenario) or by (corner, scenario).
/// The engine that produced it must outlive it; accessors that reach
/// into the engine throw util::Error — instead of dangling — once the
/// engine has been destroyed (they watch its liveness() token).
/// Service queries avoid the hazard entirely: their results co-own the
/// snapshot (see sta/service.hpp).
///
/// Two storage modes (SweepSpec::endpoint_only):
///  - full (default): one TimingState per point; every accessor works.
///  - endpoint-only: per point only {worst slack, critical endpoint,
///    arrival at every endpoint × transition} — the full-state
///    accessors (state(), view(), timing(), critical_path()) throw a
///    clear error; everything endpoint-level (worst_slack(),
///    worst_point(), critical_endpoint(), endpoint_arrival()) agrees
///    bitwise with full mode on the same spec.
///
/// Under SweepSpec::prune == PruneMode::kSafe a point can additionally
/// be *pruned* (its bound proved it cannot set the worst slack — no
/// timing was computed; per-point accessors throw, worst_slack_bound()
/// works) or — in endpoint-only mode — *reused* (its cone touches no
/// endpoint, so its endpoint summaries are the corner baseline's,
/// recorded exactly without propagation).  worst_point() skips pruned
/// points and stays exact; in a full-state result every surviving
/// point carries a full TimingState.
class SweepResult {
 public:
  SweepResult() = default;

  /// Corner-axis length of the sweep.
  [[nodiscard]] size_t num_corners() const noexcept {
    return corners_.size();
  }
  /// Scenario-axis length of the sweep.
  [[nodiscard]] size_t num_scenarios() const noexcept {
    return scenario_names_.size();
  }
  /// Total points = corners × scenarios.
  [[nodiscard]] size_t size() const noexcept {
    return corners_.size() * scenario_names_.size();
  }
  /// True when the result keeps only endpoint summaries per point.
  [[nodiscard]] bool endpoint_only() const noexcept {
    return endpoint_only_;
  }

  /// Flat index of (corner, scenario); throws when out of range.
  [[nodiscard]] size_t point(size_t corner, size_t scenario) const;

  // -- full-state accessors (throw in endpoint-only mode) ------------------
  /// Read-only view of one point, by flat index.
  [[nodiscard]] TimingView view(size_t point) const;
  /// Read-only view of one point, by (corner, scenario).
  [[nodiscard]] TimingView view(size_t corner, size_t scenario) const;

  /// The point's full TimingState (advanced/internal use).
  [[nodiscard]] const TimingState& state(size_t point) const;
  /// Timing of (pin, transition) at `point`, by handle.
  [[nodiscard]] const PinTiming& timing(size_t point, PinId pin,
                                        RiseFall rf) const;
  /// Timing of (pin, transition) at `point`, by hierarchical name.
  [[nodiscard]] const PinTiming& timing(size_t point, const std::string& pin,
                                        RiseFall rf) const;
  /// The point's critical path, input port to worst endpoint.
  [[nodiscard]] std::vector<PathStep> critical_path(size_t point) const;

  // -- endpoint-level accessors (work in both modes, bitwise equal) --------
  /// Worst slack of one point over its constrained endpoints.
  [[nodiscard]] double worst_slack(size_t point) const;

  /// The point with the smallest worst-slack over all (corner,
  /// scenario) pairs.
  struct WorstPoint {
    size_t point = 0;     ///< flat point index (corner-major)
    size_t corner = 0;    ///< corner ordinal of the worst point
    size_t scenario = 0;  ///< scenario ordinal of the worst point
    /// Exact worst slack of the sweep [s].
    double slack = std::numeric_limits<double>::infinity();
  };
  /// The sweep's worst point (ties resolve to the smallest flat index;
  /// pruned points are skipped — they provably cannot win).
  [[nodiscard]] WorstPoint worst_point() const;

  /// Endpoint axis: the engine's output ports, in port order.
  [[nodiscard]] size_t num_endpoints() const noexcept {
    return endpoint_names_.size();
  }
  /// Name of one endpoint (an output port), by endpoint ordinal.
  [[nodiscard]] const std::string& endpoint_name(size_t endpoint) const;
  /// Arrival of (endpoint, transition) at `point` (-inf when the
  /// transition never became valid).
  [[nodiscard]] double endpoint_arrival(size_t point, size_t endpoint,
                                        RiseFall rf) const;
  /// The critical endpoint of a point: argmin slack over constrained
  /// endpoint transitions (endpoint = -1 when nothing was valid).
  struct CriticalEndpoint {
    int32_t endpoint = -1;          ///< endpoint ordinal; -1 = none valid
    RiseFall rf = RiseFall::kRise;  ///< critical transition
    /// Slack of that (endpoint, transition) [s].
    double slack = std::numeric_limits<double>::infinity();
  };
  /// The critical endpoint of one point (see CriticalEndpoint).
  [[nodiscard]] CriticalEndpoint critical_endpoint(size_t point) const;

  // -- pruning (SweepSpec::prune) ------------------------------------------
  /// The pruning mode the sweep ran under.
  [[nodiscard]] PruneMode prune_mode() const noexcept { return prune_; }
  /// True when `point` was pruned (no timing computed; per-point
  /// accessors throw for it).
  [[nodiscard]] bool pruned(size_t point) const;
  /// The conservative lower bound on `point`'s worst slack the pruning
  /// pass computed — available for every point, pruned or not (an
  /// evaluated point's exact worst_slack() is ≥ its bound).  Throws
  /// when the sweep ran with prune == PruneMode::kOff.
  [[nodiscard]] double worst_slack_bound(size_t point) const;
  /// Baseline + delta / pruning counters of the sweep.  Always
  /// populated: with pruning off, evaluated == points and the bound
  /// fields are zero; on the legacy path (delta AND prune both off) the
  /// dirty fractions are zero because no cone plans were computed.
  [[nodiscard]] const PruneStats& prune_stats() const noexcept {
    return prune_stats_;
  }

  /// Approximate owned bytes of result storage per point — the figure
  /// endpoint-only mode shrinks by ~vertex_count×.
  [[nodiscard]] size_t result_bytes_per_point() const noexcept;

  /// The corner at ordinal `i` of the corner axis.
  [[nodiscard]] const Corner& corner(size_t i) const;
  /// Name of the scenario at ordinal `i` of the scenario axis.
  [[nodiscard]] const std::string& scenario_name(size_t i) const;

  /// Γeff memo statistics of the sweep (zeros when sharing was off).
  [[nodiscard]] GammaCache::Stats cache_stats() const noexcept;

 private:
  friend class StaEngine;  // sweep() populates the result

  /// Storage/evaluation status of one point.
  enum class PointStatus : uint8_t {
    kFull,     ///< full TimingState kept; every accessor works
    kSummary,  ///< endpoint summaries only (endpoint-only or reused)
    kPruned,   ///< nothing computed; per-point accessors throw
  };

  /// Shared error shape of the "this accessor is unavailable" family:
  /// names the accessor, the disabling SweepSpec field, and the
  /// accessors that WOULD work (satisfying the error-message
  /// consistency contract between endpoint-only and pruned results).
  [[noreturn]] void throw_unavailable(const char* accessor,
                                      const char* disabling_field,
                                      const char* explanation,
                                      const char* alternatives) const;
  /// Throws util::Error when this is an endpoint-only result.
  void require_full_state(const char* accessor) const;
  /// Throws util::Error when `point` was pruned (or, for full-state
  /// accessors via require_full_state, summarized).
  void require_not_pruned(const char* accessor, size_t point) const;
  [[nodiscard]] PointStatus status(size_t point) const noexcept {
    return status_.empty() ? PointStatus::kFull : status_[point];
  }
  /// Dereferences engine_ behind the liveness check: throws util::Error
  /// (naming `accessor`) instead of dangling when the engine this
  /// result points into has been destroyed.
  [[nodiscard]] const StaEngine& live_engine(const char* accessor) const;

  const StaEngine* engine_ = nullptr;
  std::weak_ptr<const void> engine_liveness_;  ///< engine liveness token
  std::vector<Corner> corners_;
  std::vector<std::string> scenario_names_;
  std::vector<TimingState> states_;  ///< corner-major; empty in
                                     ///< endpoint-only mode
  bool endpoint_only_ = false;
  std::vector<std::string> endpoint_names_;  ///< output ports, port order
  // Endpoint-only storage, filled per evaluated chunk:
  std::vector<double> worst_slacks_;              ///< per point
  std::vector<CriticalEndpoint> critical_;        ///< per point
  std::vector<double> endpoint_arrivals_;  ///< [point][endpoint][rf]
  // Pruning state (empty status_ means every point is kFull):
  std::vector<PointStatus> status_;  ///< per point
  PruneMode prune_ = PruneMode::kOff;
  std::vector<double> bounds_;  ///< per point; prune == kSafe only
  PruneStats prune_stats_;
  std::unique_ptr<GammaCache> cache_;  ///< null when sharing was off
};

}  // namespace waveletic::sta
