#include "sta/edits.hpp"

#include <cmath>

#include "util/error.hpp"

namespace waveletic::sta {

namespace {

/// Kind names indexed by Edit's variant alternative order.
constexpr const char* kKindNames[] = {
    "retype_cell",       "reroute_sink", "set_output_load",
    "set_net_parasitics", "set_input_arrival", "set_required",
    "annotate_noisy_net", "clear_noisy_net"};

}  // namespace

const char* edit_kind(const Edit& edit) noexcept {
  return kKindNames[edit.index()];
}

bool is_structural(const Edit& edit) noexcept {
  return std::holds_alternative<RetypeCell>(edit) ||
         std::holds_alternative<RerouteSink>(edit);
}

EditBatch& EditBatch::retype_cell(std::string instance, std::string new_cell) {
  edits_.push_back(RetypeCell{std::move(instance), std::move(new_cell)});
  return *this;
}

EditBatch& EditBatch::reroute_sink(std::string instance, std::string pin,
                                   std::string new_net) {
  edits_.push_back(
      RerouteSink{std::move(instance), std::move(pin), std::move(new_net)});
  return *this;
}

EditBatch& EditBatch::set_output_load(std::string port, double cap) {
  edits_.push_back(SetOutputLoad{std::move(port), cap});
  return *this;
}

EditBatch& EditBatch::set_net_parasitics(std::string net, double cap,
                                         double delay) {
  edits_.push_back(SetNetParasitics{std::move(net), cap, delay});
  return *this;
}

EditBatch& EditBatch::set_input_arrival(std::string port, double arrival,
                                        double slew) {
  edits_.push_back(SetInputArrival{std::move(port), arrival, slew});
  return *this;
}

EditBatch& EditBatch::set_required(std::string port, double required) {
  edits_.push_back(SetRequired{std::move(port), required});
  return *this;
}

EditBatch& EditBatch::annotate_noisy_net(std::string net,
                                         wave::Waveform waveform,
                                         wave::Polarity polarity) {
  edits_.push_back(
      AnnotateNoisyNet{std::move(net), std::move(waveform), polarity});
  return *this;
}

EditBatch& EditBatch::clear_noisy_net(std::string net) {
  edits_.push_back(ClearNoisyNet{std::move(net)});
  return *this;
}

bool EditBatch::structural() const noexcept {
  for (const Edit& e : edits_) {
    if (is_structural(e)) return true;
  }
  return false;
}

namespace {

/// Validation context of one edit: prefixes every failure with
/// "EditBatch edit #i (kind): ".
struct EditCheck {
  size_t index;
  const char* kind;

  template <typename... Parts>
  void require(bool ok, Parts&&... parts) const {
    if (ok) return;
    throw util::Error::fmt("EditBatch edit #", index, " (", kind, "): ",
                           std::forward<Parts>(parts)...);
  }
};

void check_port(const EditCheck& c, const netlist::Netlist& nl,
                const std::string& port, netlist::PortDirection want) {
  const netlist::Port* p = nl.find_port(port);
  c.require(p != nullptr, "unknown port '", port, "'");
  c.require(p->direction == want, "port '", port, "' is an ",
            want == netlist::PortDirection::kInput ? "output" : "input",
            " port; this edit needs an ",
            want == netlist::PortDirection::kInput ? "input" : "output");
}

void check_finite(const EditCheck& c, double v, const char* what) {
  c.require(std::isfinite(v), "non-finite ", what, " (", v, ")");
}

struct EditValidator {
  EditCheck c;
  const netlist::Netlist& nl;
  const liberty::Library& lib;

  void operator()(const RetypeCell& e) const {
    const netlist::Instance* inst = nl.find_instance(e.instance);
    c.require(inst != nullptr, "unknown instance '", e.instance, "'");
    const liberty::Cell* cell = lib.find_cell(e.new_cell);
    c.require(cell != nullptr, "unknown library cell '", e.new_cell, "'");
    const liberty::Cell* old_cell = lib.find_cell(inst->cell);
    for (const auto& [pin_name, net] : inst->pins) {
      const liberty::Pin* pin = cell->find_pin(pin_name);
      c.require(pin != nullptr, "cell '", e.new_cell, "' has no pin '",
                pin_name, "' (connected by instance '", e.instance, "')");
      if (old_cell != nullptr) {
        const liberty::Pin* old_pin = old_cell->find_pin(pin_name);
        c.require(old_pin == nullptr || old_pin->direction == pin->direction,
                  "pin '", pin_name, "' changes direction between '",
                  inst->cell, "' and '", e.new_cell,
                  "' — retype must keep the graph shape");
      }
    }
  }

  void operator()(const RerouteSink& e) const {
    const netlist::Instance* inst = nl.find_instance(e.instance);
    c.require(inst != nullptr, "unknown instance '", e.instance, "'");
    c.require(inst->pins.count(e.pin) != 0, "instance '", e.instance,
              "' has no pin '", e.pin, "'");
    const liberty::Cell* cell = lib.find_cell(inst->cell);
    c.require(cell != nullptr, "instance '", e.instance,
              "' references unknown library cell '", inst->cell, "'");
    const liberty::Pin* pin = cell->find_pin(e.pin);
    c.require(pin != nullptr && pin->direction == liberty::PinDirection::kInput,
              "pin '", e.instance, "/", e.pin,
              "' is not an input pin — only sink pins can be rerouted");
    c.require(!e.new_net.empty(), "empty target net name");
  }

  void operator()(const SetOutputLoad& e) const {
    check_port(c, nl, e.port, netlist::PortDirection::kOutput);
    check_finite(c, e.cap, "load cap");
    c.require(e.cap >= 0.0, "negative load cap (", e.cap, ")");
  }

  void operator()(const SetNetParasitics& e) const {
    c.require(nl.has_net(e.net), "unknown net '", e.net, "'");
    check_finite(c, e.cap, "parasitic cap");
    check_finite(c, e.delay, "wire delay");
    c.require(e.cap >= 0.0, "negative parasitic cap (", e.cap, ")");
    c.require(e.delay >= 0.0, "negative wire delay (", e.delay, ")");
  }

  void operator()(const SetInputArrival& e) const {
    check_port(c, nl, e.port, netlist::PortDirection::kInput);
    check_finite(c, e.arrival, "arrival");
    check_finite(c, e.slew, "slew");
    c.require(e.slew > 0.0, "non-positive slew (", e.slew, ")");
  }

  void operator()(const SetRequired& e) const {
    check_port(c, nl, e.port, netlist::PortDirection::kOutput);
    check_finite(c, e.required, "required time");
  }

  void operator()(const AnnotateNoisyNet& e) const {
    c.require(nl.has_net(e.net), "unknown net '", e.net, "'");
    c.require(e.waveform.size() > 0, "empty noisy waveform on net '", e.net,
              "'");
  }

  void operator()(const ClearNoisyNet& e) const {
    c.require(nl.has_net(e.net), "unknown net '", e.net, "'");
  }
};

}  // namespace

void validate_edits(const EditBatch& batch, const netlist::Netlist& netlist,
                    const liberty::Library& library) {
  const auto& edits = batch.edits();
  for (size_t i = 0; i < edits.size(); ++i) {
    std::visit(
        EditValidator{EditCheck{i, edit_kind(edits[i])}, netlist, library},
        edits[i]);
  }
}

}  // namespace waveletic::sta
