#include "sta/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <variant>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace waveletic::sta {

// ---------------------------------------------------------------------------
// ServiceStats
// ---------------------------------------------------------------------------

std::string format_service_stats(const ServiceStats& stats) {
  std::ostringstream os;
  os << "service stats:\n";
  os << "  queries served       : " << stats.queries_served << "\n";
  os << "  snapshots published  : " << stats.snapshots_published << "\n";
  os << "  edits applied        : " << stats.edits_applied << "\n";
  os << "  structural rebuilds  : " << stats.structural_rebuilds << "\n";
  os << "  mean dirty-cone frac : " << stats.mean_dirty_cone_fraction << "\n";
  os << "  mean publish latency : " << stats.mean_publish_latency * 1e3
     << " ms\n";
  os << "  last publish latency : " << stats.last_publish_latency * 1e3
     << " ms\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// PreparedSnapshot
// ---------------------------------------------------------------------------

const TimingState& PreparedSnapshot::baseline(size_t corner) const {
  util::require(corner < baselines_.size(),
                "PreparedSnapshot::baseline: corner ordinal ", corner,
                " out of range (", baselines_.size(), " corners)");
  return baselines_[corner];
}

double PreparedSnapshot::worst_slack(size_t corner) const {
  util::require(corner < worst_slacks_.size(),
                "PreparedSnapshot::worst_slack: corner ordinal ", corner,
                " out of range (", worst_slacks_.size(), " corners)");
  return worst_slacks_[corner];
}

const StaEngine::WorstEndpoint& PreparedSnapshot::worst_endpoint(
    size_t corner) const {
  util::require(corner < worst_endpoints_.size(),
                "PreparedSnapshot::worst_endpoint: corner ordinal ", corner,
                " out of range (", worst_endpoints_.size(), " corners)");
  return worst_endpoints_[corner];
}

// ---------------------------------------------------------------------------
// ScenarioTiming
// ---------------------------------------------------------------------------

namespace {

void require_evaluated(const std::shared_ptr<const PreparedSnapshot>& snap) {
  util::require(snap != nullptr,
                "ScenarioTiming: empty result (default-constructed — only "
                "StaService::query() produces evaluated results)");
}

}  // namespace

const PinTiming& ScenarioTiming::timing(const std::string& pin,
                                        RiseFall rf) const {
  require_evaluated(snapshot_);
  return snapshot_->engine().timing_in(state_, pin, rf);
}

double ScenarioTiming::worst_slack() const {
  require_evaluated(snapshot_);
  return snapshot_->engine().worst_slack_in(state_);
}

StaEngine::WorstEndpoint ScenarioTiming::worst_endpoint() const {
  require_evaluated(snapshot_);
  return snapshot_->engine().worst_endpoint_in(state_);
}

std::vector<PathStep> ScenarioTiming::critical_path() const {
  require_evaluated(snapshot_);
  return snapshot_->engine().worst_path_in(state_);
}

// ---------------------------------------------------------------------------
// StaService
// ---------------------------------------------------------------------------

StaService::StaService(netlist::Netlist netlist,
                       const liberty::Library& library, ServiceConfig config)
    : library_(&library), config_(std::move(config)) {
  util::require(!config_.corners.empty(),
                "StaService: ServiceConfig.corners must be non-empty");
  if (config_.share_gamma_cache) cache_ = std::make_shared<GammaCache>();
  if (config_.threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
  workspaces_.resize(pool_ != nullptr ? pool_->size() : 1);

  auto nl = std::make_shared<netlist::Netlist>(std::move(netlist));
  auto eng = std::make_unique<StaEngine>(*nl, *library_);
  eng->prepare();

  auto snap = std::shared_ptr<PreparedSnapshot>(new PreparedSnapshot());
  snap->version_ = 1;
  snap->netlist_ = std::move(nl);
  snap->engine_ = std::move(eng);
  snap->corners_ = config_.corners;
  evaluate_snapshot(*snap, nullptr, nullptr);
  head_ = std::move(snap);
}

StaService::~StaService() = default;

std::shared_ptr<const PreparedSnapshot> StaService::snapshot() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return head_;
}

namespace {

/// Applies one configuration edit to the next engine and records the
/// edit's dirty seeds; structural edits (already applied to the copied
/// netlist) only record seeds.  `nl` is the POST-edit netlist the
/// engine analyzes, so every name resolves.
struct ApplyVisitor {
  StaEngine& eng;
  const netlist::Netlist& nl;
  StaEngine::EditSeeds& seeds;
  const std::vector<std::string>& reroute_old_nets;
  size_t& reroute_index;

  [[nodiscard]] int32_t net_ord(const std::string& net) const {
    const int ord = nl.net_ordinal(net);
    util::require(ord >= 0, "StaService::apply: unknown net '", net, "'");
    return static_cast<int32_t>(ord);
  }

  void operator()(const SetOutputLoad& e) const {
    eng.set_output_load(e.port, e.cap);
    // A port's net carries the port's name; the load edit dirties the
    // arcs driving it.
    seeds.load_nets.push_back(net_ord(e.port));
  }
  void operator()(const SetNetParasitics& e) const {
    eng.set_net_parasitics(e.net, e.cap, e.delay);
    const int32_t ord = net_ord(e.net);
    seeds.load_nets.push_back(ord);   // cap changes the driver load
    seeds.delay_nets.push_back(ord);  // delay changes the sink arrivals
  }
  void operator()(const SetInputArrival& e) const {
    eng.set_input(e.port, e.arrival, e.slew);
    seeds.arrival_ports.push_back(eng.port(e.port).index);
  }
  void operator()(const SetRequired& e) const {
    eng.set_required(e.port, e.required);
    seeds.required_ports.push_back(eng.port(e.port).index);
  }
  void operator()(const AnnotateNoisyNet& e) const {
    eng.annotate_noisy_net(e.net, e.waveform, e.polarity);
    seeds.noise_nets.push_back(net_ord(e.net));
  }
  void operator()(const ClearNoisyNet& e) const {
    eng.clear_noisy_net(e.net);
    seeds.noise_nets.push_back(net_ord(e.net));
  }
  void operator()(const RetypeCell& e) const {
    // Arc tables and pin caps changed: every pin vertex of the
    // instance is forward-dirty, and every net it touches may see a
    // different load (input pin caps fold into net loads).
    const netlist::Instance* inst = nl.find_instance(e.instance);
    for (const auto& [pin_name, net] : inst->pins) {
      seeds.vertices.push_back(eng.pin(e.instance + "/" + pin_name).index);
      seeds.load_nets.push_back(net_ord(net));
    }
  }
  void operator()(const RerouteSink& e) const {
    // The sink now listens to another net: its vertex is dirty, and
    // both nets' loads changed (the pin cap moved across).
    seeds.vertices.push_back(eng.pin(e.instance + "/" + e.pin).index);
    seeds.load_nets.push_back(net_ord(reroute_old_nets[reroute_index++]));
    seeds.load_nets.push_back(net_ord(e.new_net));
  }
};

template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

PublishReport StaService::apply(const EditBatch& batch) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::shared_ptr<const PreparedSnapshot> head = snapshot();
  validate_edits(batch, head->netlist(), *library_);
  if (batch.empty()) {
    return PublishReport{head->version(), false, 0, 0, 0.0, 0.0};
  }
  const bool structural = batch.structural();

  // Copy-on-write: structural batches copy the netlist and rebuild the
  // graph (carrying the configuration across); configuration batches
  // fork the engine and share the graph outright.
  std::shared_ptr<const netlist::Netlist> nl = head->netlist_;
  std::unique_ptr<StaEngine> eng;
  std::vector<std::string> reroute_old_nets;  // pre-edit nets of reroutes
  if (structural) {
    auto edited = std::make_shared<netlist::Netlist>(*head->netlist_);
    for (const Edit& edit : batch.edits()) {
      if (const auto* retype = std::get_if<RetypeCell>(&edit)) {
        edited->retype_instance(retype->instance, retype->new_cell);
      } else if (const auto* reroute = std::get_if<RerouteSink>(&edit)) {
        reroute_old_nets.push_back(
            edited->find_instance(reroute->instance)->pins.at(reroute->pin));
        edited->reroute_pin(reroute->instance, reroute->pin,
                            reroute->new_net);
      }
    }
    eng = std::make_unique<StaEngine>(*edited, *library_);
    eng->copy_config_from(head->engine());
    nl = std::move(edited);
  } else {
    eng = head->engine().fork();
  }

  // Apply the configuration edits and collect every edit's dirty seeds.
  StaEngine::EditSeeds seeds;
  size_t reroute_index = 0;
  for (const Edit& edit : batch.edits()) {
    std::visit(ApplyVisitor{*eng, *nl, seeds, reroute_old_nets, reroute_index},
               edit);
  }
  sort_unique(seeds.load_nets);
  sort_unique(seeds.delay_nets);
  sort_unique(seeds.noise_nets);
  sort_unique(seeds.arrival_ports);
  sort_unique(seeds.required_ports);
  sort_unique(seeds.vertices);

  // Loads: a rebuild re-derives every net load from the carried-over
  // configuration (prepare()); a fork recomputes only the dirty nets.
  if (structural) {
    eng->prepare();
  } else {
    eng->recompute_net_loads(seeds.load_nets);
  }

  const StaEngine::DeltaPlan plan = eng->delta_plan(seeds);
  const size_t vertices = eng->vertex_count();

  auto snap = std::shared_ptr<PreparedSnapshot>(new PreparedSnapshot());
  snap->version_ = head->version() + 1;
  snap->netlist_ = std::move(nl);
  snap->engine_ = std::move(eng);
  snap->corners_ = config_.corners;
  evaluate_snapshot(*snap, head.get(), &plan);

  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    head_ = snap;
  }

  PublishReport report;
  report.version = snap->version();
  report.structural = structural;
  report.edits = batch.size();
  report.dirty_vertices = plan.forward.size();
  report.dirty_cone_fraction =
      vertices > 0
          ? static_cast<double>(plan.forward.size()) /
                static_cast<double>(vertices)
          : 0.0;
  report.publish_latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++snapshots_published_;
    edits_applied_ += batch.size();
    if (structural) ++structural_rebuilds_;
    dirty_fraction_sum_ += report.dirty_cone_fraction;
    last_dirty_fraction_ = report.dirty_cone_fraction;
    publish_latency_sum_ += report.publish_latency;
    last_publish_latency_ = report.publish_latency;
  }
  return report;
}

void StaService::evaluate_snapshot(PreparedSnapshot& snap,
                                   const PreparedSnapshot* previous,
                                   const StaEngine::DeltaPlan* plan) {
  const StaEngine& eng = *snap.engine_;
  const size_t n_corners = snap.corners_.size();

  const auto table = eng.compile_edge_annotations(nullptr);
  std::vector<StaEngine::EvalContext> contexts(n_corners);
  for (size_t c = 0; c < n_corners; ++c) {
    contexts[c].edge_noise = table.data();
    contexts[c].corner = &snap.corners_[c];
    contexts[c].corner_key = snap.corners_[c].key();
    contexts[c].method = &eng.noise_method();
    contexts[c].cache = cache_.get();
  }
  snap.baselines_.assign(n_corners, TimingState{});
  std::span<wave::Workspace> wss(workspaces_.data(), workspaces_.size());

  bool delta = previous != nullptr && plan != nullptr;
  if (delta && snap.netlist_.get() != previous->netlist_.get()) {
    // Rebuild path: reusing the previous baselines as delta bases
    // requires the vertex axis to be unchanged.  Construction
    // guarantees it for retype/reroute (declaration-driven vertex
    // interning; edits never add or remove pins) — verified here, with
    // a full evaluation as the conservative fallback.
    delta = eng.vertex_count() == previous->engine().vertex_count();
    for (size_t v = 0; delta && v < eng.vertex_count(); ++v) {
      delta = eng.vertex_name(v) == previous->engine().vertex_name(v);
    }
  }

  if (delta) {
    std::vector<const TimingState*> bases(n_corners);
    for (size_t c = 0; c < n_corners; ++c) {
      bases[c] = &previous->baselines_[c];
    }
    const std::vector<const StaEngine::DeltaPlan*> plans(n_corners, plan);
    eng.evaluate_points_delta(snap.baselines_, contexts, bases, plans,
                              pool_.get(), wss);
  } else {
    eng.evaluate_points(snap.baselines_, contexts, pool_.get(), wss);
  }

  snap.worst_slacks_.resize(n_corners);
  snap.worst_endpoints_.resize(n_corners);
  for (size_t c = 0; c < n_corners; ++c) {
    snap.worst_slacks_[c] = eng.worst_slack_in(snap.baselines_[c]);
    snap.worst_endpoints_[c] = eng.worst_endpoint_in(snap.baselines_[c]);
  }
}

double StaService::worst_slack(size_t corner) const {
  const auto snap = snapshot();
  count_query();
  return snap->worst_slack(corner);
}

StaEngine::WorstEndpoint StaService::worst_endpoint(size_t corner) const {
  const auto snap = snapshot();
  count_query();
  return snap->worst_endpoint(corner);
}

PinTiming StaService::timing(const std::string& pin, RiseFall rf,
                             size_t corner) const {
  const auto snap = snapshot();
  count_query();
  return snap->engine().timing_in(snap->baseline(corner), pin, rf);
}

std::vector<PathStep> StaService::critical_path(size_t corner) const {
  const auto snap = snapshot();
  count_query();
  return snap->engine().worst_path_in(snap->baseline(corner));
}

ScenarioTiming StaService::query(const NoiseScenario& scenario,
                                 size_t corner) const {
  const auto snap = snapshot();
  count_query();
  util::require(corner < snap->corners().size(),
                "StaService::query: corner ordinal ", corner,
                " out of range (", snap->corners().size(), " corners)");
  const StaEngine& eng = snap->engine();
  const auto table = eng.compile_edge_annotations(&scenario);
  const StaEngine::DeltaPlan plan = eng.delta_plan(scenario);

  StaEngine::EvalContext ctx;
  ctx.edge_noise = table.data();
  ctx.corner = &snap->corners()[corner];
  ctx.corner_key = ctx.corner->key();
  ctx.method = &eng.noise_method();
  ctx.cache = cache_.get();

  ScenarioTiming result;
  result.snapshot_ = snap;
  result.corner_ = corner;
  eng.evaluate_delta(result.state_, snap->baseline(corner), plan, ctx);
  return result;
}

ServiceStats StaService::stats() const {
  ServiceStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  s.snapshots_published = snapshots_published_;
  s.edits_applied = edits_applied_;
  s.structural_rebuilds = structural_rebuilds_;
  s.last_dirty_cone_fraction = last_dirty_fraction_;
  s.last_publish_latency = last_publish_latency_;
  if (snapshots_published_ > 0) {
    const auto n = static_cast<double>(snapshots_published_);
    s.mean_dirty_cone_fraction = dirty_fraction_sum_ / n;
    s.mean_publish_latency = publish_latency_sum_ / n;
  }
  return s;
}

}  // namespace waveletic::sta
