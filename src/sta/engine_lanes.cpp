// Lane-block grouping and the lane-parallel delta runner.  This TU is
// compiled at the baseline ISA: it instantiates the W=1 oracle of the
// block walker and dispatches to the W=4 instantiation (built in
// engine_lanes_avx2.cpp with -mavx2) without ever expanding it here.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sta/engine_lanes_impl.hpp"
#include "util/thread_pool.hpp"

namespace waveletic::sta {

namespace {

// FNV-1a over a plan's worklists — a content fingerprint, so sweep
// points that rebuilt identical plans as distinct objects (e.g. the
// same net annotated with different noise amplitudes) still land in
// one lane block.  Collisions are resolved by exact comparison.
uint64_t plan_content_hash(const StaEngine::DeltaPlan& p) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(p.forward.size());
  for (const int v : p.forward) mix(static_cast<uint64_t>(v));
  mix(p.backward.size());
  for (const int v : p.backward) mix(static_cast<uint64_t>(v));
  return h;
}

bool plan_content_equal(const StaEngine::DeltaPlan& a,
                        const StaEngine::DeltaPlan& b) {
  return &a == &b || (a.forward == b.forward && a.backward == b.backward);
}

uint64_t mix_ptr(uint64_t h, const void* p) {
  h ^= reinterpret_cast<uintptr_t>(p);
  h *= 1099511628211ull;
  return h;
}

}  // namespace

std::vector<StaEngine::LaneBlock> StaEngine::group_lane_blocks(
    std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines,
    std::span<const DeltaPlan* const> plans, int width) const {
  util::require(width >= 1, "group_lane_blocks: width must be >= 1, got ",
                width);
  util::require(contexts.size() == baselines.size() &&
                    contexts.size() == plans.size(),
                "group_lane_blocks: ", contexts.size(), " contexts vs ",
                baselines.size(), " baselines vs ", plans.size(), " plans");
  const size_t n = contexts.size();
  const size_t uwidth = static_cast<size_t>(width);

  // 1. Bucket points by (baseline, corner, plan content) in first-seen
  //    order.  Method/cache/edge_noise may differ per lane: the walker
  //    reads them from each lane's own context.
  struct Bucket {
    const TimingState* baseline;
    const Corner* corner;
    const DeltaPlan* plan;
    std::vector<uint32_t> points;
  };
  std::vector<Bucket> buckets;
  std::unordered_multimap<uint64_t, size_t> by_hash;
  by_hash.reserve(n);
  // Sweeps dedupe plans by annotated-net set, so points overwhelmingly
  // share plan *pointers*; hash each distinct pointer once instead of
  // re-hashing ~cone-sized int lists per point.
  std::unordered_map<const DeltaPlan*, uint64_t> plan_hash;
  plan_hash.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    util::require(baselines[p] != nullptr && plans[p] != nullptr,
                  "group_lane_blocks: null baseline/plan at point ", p);
    auto [hit, fresh_hash] = plan_hash.try_emplace(plans[p], 0);
    if (fresh_hash) hit->second = plan_content_hash(*plans[p]);
    uint64_t h = hit->second;
    h = mix_ptr(h, baselines[p]);
    h = mix_ptr(h, contexts[p].corner);
    size_t found = buckets.size();
    const auto range = by_hash.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const Bucket& b = buckets[it->second];
      if (b.baseline == baselines[p] && b.corner == contexts[p].corner &&
          (b.plan == plans[p] || plan_content_equal(*b.plan, *plans[p]))) {
        found = it->second;
        break;
      }
    }
    if (found == buckets.size()) {
      buckets.push_back(
          {baselines[p], contexts[p].corner, plans[p], {}});
      by_hash.emplace(h, found);
    }
    buckets[found].points.push_back(static_cast<uint32_t>(p));
  }

  // 2. Chunk each bucket into full-width blocks; collect the sub-width
  //    tails for cross-bucket merging.
  std::vector<LaneBlock> blocks;
  struct Leftover {
    const TimingState* baseline;
    const Corner* corner;
    const DeltaPlan* plan;
    std::vector<uint32_t> points;
  };
  std::vector<Leftover> leftovers;
  for (const Bucket& b : buckets) {
    size_t i = 0;
    for (; i + uwidth <= b.points.size(); i += uwidth) {
      LaneBlock blk;
      blk.points.assign(b.points.begin() + static_cast<ptrdiff_t>(i),
                        b.points.begin() + static_cast<ptrdiff_t>(i + uwidth));
      blk.plan = b.plan;
      blocks.push_back(std::move(blk));
    }
    if (i < b.points.size()) {
      leftovers.push_back({b.baseline, b.corner, b.plan,
                           {b.points.begin() + static_cast<ptrdiff_t>(i),
                            b.points.end()}});
    }
  }

  // 3. Merge sub-width tails that share (baseline, corner) under a
  //    union plan — propagating a lane over a cone-superset is exact
  //    (re-folding a clean vertex reproduces its baseline bitwise), so
  //    near-miss scenarios still share one graph walk.  Greedy in
  //    first-seen order for determinism.
  const auto fwd_less = [this](int a, int b) {
    const int la = vertex_level_[static_cast<size_t>(a)];
    const int lb = vertex_level_[static_cast<size_t>(b)];
    return la != lb ? la < lb : a < b;
  };
  const auto bwd_less = [this](int a, int b) {
    const int la = vertex_level_[static_cast<size_t>(a)];
    const int lb = vertex_level_[static_cast<size_t>(b)];
    return la != lb ? la > lb : a < b;
  };
  const auto merge_sorted = [](const std::vector<int>& a,
                               const std::vector<int>& b, auto less) {
    std::vector<int> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out), less);
    return out;
  };
  std::vector<size_t> used(leftovers.size(), 0);
  for (size_t i = 0; i < leftovers.size(); ++i) {
    if (used[i]) continue;
    used[i] = 1;
    LaneBlock blk;
    blk.points = leftovers[i].points;
    blk.plan = leftovers[i].plan;
    std::shared_ptr<DeltaPlan> merged;
    for (size_t j = i + 1;
         j < leftovers.size() && blk.points.size() < uwidth; ++j) {
      if (used[j] || leftovers[j].baseline != leftovers[i].baseline ||
          leftovers[j].corner != leftovers[i].corner ||
          blk.points.size() + leftovers[j].points.size() > uwidth) {
        continue;
      }
      used[j] = 1;
      if (merged == nullptr) {
        merged = std::make_shared<DeltaPlan>();
        merged->forward = blk.plan->forward;
        merged->backward = blk.plan->backward;
        merged->num_vertices = blk.plan->num_vertices;
      }
      merged->forward =
          merge_sorted(merged->forward, leftovers[j].plan->forward, fwd_less);
      merged->backward =
          merge_sorted(merged->backward, leftovers[j].plan->backward,
                       bwd_less);
      blk.points.insert(blk.points.end(), leftovers[j].points.begin(),
                        leftovers[j].points.end());
    }
    if (merged != nullptr) {
      blk.plan = merged.get();
      blk.owned_plan = std::move(merged);
    }
    blocks.push_back(std::move(blk));
  }
  return blocks;
}

void StaEngine::evaluate_points_delta_lanes(
    std::span<TimingState> states, std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines,
    std::span<const DeltaPlan* const> plans, int lanes,
    util::ThreadPool* pool, std::span<wave::Workspace> worker_workspaces)
    const {
  util::require(states.size() == contexts.size() &&
                    states.size() == baselines.size() &&
                    states.size() == plans.size(),
                "evaluate_points_delta_lanes: ", states.size(), " states vs ",
                contexts.size(), " contexts vs ", baselines.size(),
                " baselines vs ", plans.size(), " plans");
  util::require(lanes == 1 || lanes == 4,
                "evaluate_points_delta_lanes: lanes must be 1 or 4, got ",
                lanes);
  util::require(wave::lane_width_available(lanes),
                "evaluate_points_delta_lanes: lane width ", lanes,
                " not available on this build/CPU");
  const size_t n_points = states.size();
  if (n_points == 0) return;
  const size_t pool_workers =
      pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  util::require(
      worker_workspaces.empty() || worker_workspaces.size() >= pool_workers,
      "evaluate_points_delta_lanes: need one workspace per pool worker (",
      worker_workspaces.size(), " < ", pool_workers, ")");

  const auto blocks = group_lane_blocks(contexts, baselines, plans, lanes);
  std::vector<LaneScratch> scratch(pool_workers);
  auto body = [&](size_t worker, size_t bi) {
    const LaneBlock& blk = blocks[bi];
    wave::Workspace* ws =
        worker_workspaces.empty() ? nullptr : &worker_workspaces[worker];
    if (lanes == 4 && blk.points.size() > 1) {
#if defined(WAVELETIC_HAVE_AVX2)
      evaluate_delta_block<4>(blk, states, contexts, baselines, ws,
                              scratch[worker]);
#endif
      return;
    }
    if (lanes == 1) {
      // W=1 runs every (singleton) block through the walker — the
      // oracle instantiation, exercised on every build.
      evaluate_delta_block<1>(blk, states, contexts, baselines, ws,
                              scratch[worker]);
      return;
    }
    // Width-4 singleton: the scalar per-point path is cheaper than a
    // 3/4-padded lane walk and bitwise identical by contract.
    const uint32_t p = blk.points[0];
    EvalContext task_ctx = contexts[p];
    if (ws != nullptr) task_ctx.workspace = ws;
    evaluate_delta(states[p], *baselines[p], *plans[p], task_ctx);
  };
  if (pool != nullptr && pool->size() > 1 && blocks.size() > 1) {
    static const uint32_t kZeroIndegree[1] = {0};
    static const std::vector<uint32_t> kNoSuccessors[1] = {{}};
    pool->run_graph({kZeroIndegree, kNoSuccessors, blocks.size()}, body);
  } else {
    for (size_t b = 0; b < blocks.size(); ++b) body(0, b);
  }
}

// The oracle instantiation: structurally the scalar fold, one point per
// "vector".  The W=4 instantiation must match it bitwise.
template void StaEngine::evaluate_delta_block<1>(
    const LaneBlock& block, std::span<TimingState> states,
    std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines, wave::Workspace* workspace,
    LaneScratch& s) const;

}  // namespace waveletic::sta
