#pragma once

// INTERNAL header — the width-templated body of
// StaEngine::evaluate_delta_block<W>, shared by engine_lanes.cpp
// (W=1, the oracle and non-AVX2 fallback) and engine_lanes_avx2.cpp
// (W=4 under -mavx2).  Include "sta/engine.hpp" instead.
//
// The walker replays evaluate_delta() with W sweep points in flight:
// one pass over the plan's worklists, every (vertex, rise/fall)
// carrying W points' arrival/slew/required/valid/critical-pred values
// in adjacent lanes of a structure-of-arrays scratch.  Lane j is an
// independent scalar fold — candidate values are computed for all
// lanes with the exact scalar op sequence (via wave::Lane<W>) and
// committed through per-lane select masks that reproduce the scalar
// control flow (relax()'s max-update, backward_vertex()'s guarded
// min-fold).  Nothing ever reduces ACROSS lanes, so the W=4
// instantiation is bitwise identical to W=1, which is structurally the
// scalar code.
//
// Γeff fits at noisy edges stay scalar per lane (they call the same
// StaEngine::noisy_fit the scalar path uses); lanes whose context does
// not annotate the edge keep their vector value — which is exactly the
// scalar behaviour, since noisy_fit no-ops without an annotation.
//
// Blocks narrower than W pad by replicating the last real lane's
// context so every lane reads well-defined data; pad results are
// discarded at materialization (lanes never feed each other, so pad
// lanes cannot perturb real ones).

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>

#include "sta/engine.hpp"
#include "wave/lanes.hpp"

namespace waveletic::sta {

/// Per-worker scratch of the lane-block walker.  The vertex→slot maps
/// are epoch-stamped so a new block costs O(cone), not O(V); the SoA
/// arrays are laid out field[(slot * 2 + rf) * W + lane] and grow
/// monotonically.  critical_pred / critical_pred_rf are stored as
/// doubles (exact for any vertex id) so masked commits stay uniform
/// vector selects.
struct StaEngine::LaneScratch {
  std::vector<uint32_t> fwd_stamp;  ///< == epoch: (v, rf) arrival state in SoA
  std::vector<uint32_t> bwd_stamp;  ///< == epoch: (v, rf) required state in SoA
  std::vector<int32_t> slot;        ///< dense slot of a stamped vertex
  uint32_t epoch = 0;
  std::vector<double> arrival, slew, required, valid, pred, pred_rf;

  void ensure(size_t num_vertices) {
    if (fwd_stamp.size() < num_vertices) {
      fwd_stamp.assign(num_vertices, 0);
      bwd_stamp.assign(num_vertices, 0);
      slot.assign(num_vertices, -1);
      epoch = 0;
    }
  }
};

template <int W>
void StaEngine::evaluate_delta_block(
    const LaneBlock& block, std::span<TimingState> states,
    std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines, wave::Workspace* workspace,
    LaneScratch& s) const {
  using L = wave::Lane<W>;
  using D = typename L::D;
  using M = typename L::M;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const DeltaPlan& plan = *block.plan;
  const size_t n_real = block.points.size();
  const TimingState& baseline = *baselines[block.points[0]];

  // Per-lane contexts with the executing worker's workspace patched in;
  // pad lanes replicate the last real point's context.
  std::array<EvalContext, W> ctx;
  for (int j = 0; j < W; ++j) {
    const size_t jj = std::min(static_cast<size_t>(j), n_real - 1);
    ctx[j] = contexts[block.points[jj]];
    if (workspace != nullptr) ctx[j].workspace = workspace;
  }
  // Corner scales are block-uniform (grouping keys on the corner).
  const double delay_scale =
      ctx[0].corner != nullptr ? ctx[0].corner->cell_delay_scale : 1.0;
  const double slew_scale =
      ctx[0].corner != nullptr ? ctx[0].corner->cell_slew_scale : 1.0;
  const double wire_scale =
      ctx[0].corner != nullptr ? ctx[0].corner->wire_delay_scale : 1.0;
  const D v_delay_scale = L::broadcast(delay_scale);
  const D v_slew_scale = L::broadcast(slew_scale);
  const D zero = L::broadcast(0.0);
  const D one = L::broadcast(1.0);

  // --- slot assignment (epoch-stamped: no O(V) clearing per block) ---
  s.ensure(vertex_names_.size());
  if (++s.epoch == 0) {  // wrapped: hard reset once per 2^32 blocks
    std::fill(s.fwd_stamp.begin(), s.fwd_stamp.end(), 0u);
    std::fill(s.bwd_stamp.begin(), s.bwd_stamp.end(), 0u);
    s.epoch = 1;
  }
  const uint32_t epoch = s.epoch;
  int32_t n_slots = 0;
  for (const int v : plan.backward) {
    s.slot[static_cast<size_t>(v)] = n_slots++;
    s.bwd_stamp[static_cast<size_t>(v)] = epoch;
  }
  for (const int v : plan.forward) {
    // The backward set includes the forward set by construction; the
    // guard keeps slots valid even for hand-built plans that violate it.
    if (s.bwd_stamp[static_cast<size_t>(v)] != epoch) {
      s.slot[static_cast<size_t>(v)] = n_slots++;
    }
    s.fwd_stamp[static_cast<size_t>(v)] = epoch;
  }
  const size_t soa_size = static_cast<size_t>(n_slots) * 2 * W;
  if (s.arrival.size() < soa_size) {
    s.arrival.resize(soa_size);
    s.slew.resize(soa_size);
    s.required.resize(soa_size);
    s.valid.resize(soa_size);
    s.pred.resize(soa_size);
    s.pred_rf.resize(soa_size);
  }
  const auto off = [&s](int v, int rf) -> size_t {
    return (static_cast<size_t>(s.slot[static_cast<size_t>(v)]) * 2 +
            static_cast<size_t>(rf)) *
           static_cast<size_t>(W);
  };

  // --- forward reset: reset_vertex() semantics, lane-uniform ---------
  for (const int v : plan.forward) {
    double arr[2] = {-kInf, -kInf};
    double slw[2] = {0.0, 0.0};
    double val[2] = {0.0, 0.0};
    double req[2] = {kInf, kInf};
    const auto ic = input_constraints_.find(v);
    if (ic != input_constraints_.end()) {
      for (size_t rf = 0; rf < 2; ++rf) {
        if (!ic->second[rf].set) continue;
        arr[rf] = ic->second[rf].arrival;
        slw[rf] = ic->second[rf].slew;
        val[rf] = 1.0;
      }
    }
    const auto rq = required_.find(v);
    if (rq != required_.end()) req[0] = req[1] = rq->second;
    for (int rf = 0; rf < 2; ++rf) {
      const size_t o = off(v, rf);
      for (int j = 0; j < W; ++j) {
        s.arrival[o + static_cast<size_t>(j)] = arr[rf];
        s.slew[o + static_cast<size_t>(j)] = slw[rf];
        s.valid[o + static_cast<size_t>(j)] = val[rf];
        s.required[o + static_cast<size_t>(j)] = req[rf];
        s.pred[o + static_cast<size_t>(j)] = -1.0;
        s.pred_rf[o + static_cast<size_t>(j)] = 0.0;  // RiseFall::kRise
      }
    }
  }

  // --- lane readers ---------------------------------------------------
  // Arrival-side state of (v, rf): SoA lanes when v is forward-dirty,
  // otherwise the baseline value broadcast to every lane (a clean
  // vertex holds its baseline value in every scenario of the block).
  // Everything stays in registers — only the (rare) noisy-edge scalar
  // fits spill lanes to buffers.
  struct Src {
    D arr;
    D slw;
    D val_d;  ///< valid as 1.0/0.0 doubles (SoA encoding)
    M val;
    bool any;
  };
  const auto read_fwd = [&](int v, int rf) -> Src {
    Src r;
    if (s.fwd_stamp[static_cast<size_t>(v)] == epoch) {
      const size_t o = off(v, rf);
      r.arr = L::load(s.arrival.data() + o);
      r.slw = L::load(s.slew.data() + o);
      r.val_d = L::load(s.valid.data() + o);
    } else {
      const auto& t =
          baseline[static_cast<size_t>(v)].timing[static_cast<size_t>(rf)];
      r.arr = L::broadcast(t.arrival);
      r.slw = L::broadcast(t.slew);
      r.val_d = L::broadcast(t.valid ? 1.0 : 0.0);
    }
    r.val = L::gt(r.val_d, zero);
    r.any = L::any(r.val);
    return r;
  };

  // --- relax(): masked max-update of (to, to_rf) ----------------------
  // scalar: if (!t.valid || arrival > t.arrival) commit.
  const auto relax_lanes = [&](int to, int to_rf, D cand_arr, D cand_slw,
                               M upd_in, int from, int from_rf) {
    const size_t o = off(to, to_rf);
    const D cur_arr = L::load(s.arrival.data() + o);
    const D cur_val_d = L::load(s.valid.data() + o);
    const M cur_val = L::gt(cur_val_d, zero);
    const M upd = L::mask_and(
        upd_in, L::mask_or(L::mask_not(cur_val), L::gt(cand_arr, cur_arr)));
    if (!L::any(upd)) return;
    L::store(s.arrival.data() + o, L::select(upd, cand_arr, cur_arr));
    const D cur_slw = L::load(s.slew.data() + o);
    L::store(s.slew.data() + o, L::select(upd, cand_slw, cur_slw));
    L::store(s.valid.data() + o, L::select(upd, one, cur_val_d));
    const D cur_pred = L::load(s.pred.data() + o);
    L::store(s.pred.data() + o,
             L::select(upd, L::broadcast(static_cast<double>(from)), cur_pred));
    const D cur_prf = L::load(s.pred_rf.data() + o);
    L::store(
        s.pred_rf.data() + o,
        L::select(upd, L::broadcast(static_cast<double>(from_rf)), cur_prf));
  };

  // --- NldmTable::lookup with lane-varying x1, lane-uniform x2 --------
  // locate() on the slew axis runs scalar per lane (tiny axes), the
  // interpolation itself is vector math with the exact scalar op
  // sequence (sub/div for frac, sub/mul/add per lerp stage).  Every
  // memory access is an adjacent (lo, lo+1) pair — axis endpoints and
  // value-row neighbours — so `load_pair` covers all of them with
  // contiguous loads instead of gathers.
  // Lane-varying position on a table's slew axis: segment index per
  // lane plus the interpolation fraction vector.  Computed once per
  // (axis, x) and shared between the delay and transition tables of an
  // arc when both use the same axis values (the overwhelmingly common
  // liberty shape).
  struct Loc1 {
    int32_t lo1[W];
    D f1;
    bool single;  ///< axis has one entry: no interpolation on x1
  };
  const auto locate_lanes = [&](const std::vector<double>& a1,
                                const D x) -> Loc1 {
    Loc1 r;
    r.f1 = zero;
    r.single = a1.size() == 1;
    if (r.single) {
      for (int j = 0; j < W; ++j) r.lo1[j] = 0;
      return r;
    }
    // Branchless lane-parallel locate().  upper_bound(a1, x) returns
    // the first index k with x < a1[k]; on a sorted axis that index
    // equals the count of elements with !(x < a1[k]) — the same
    // comparator, so the equivalence holds for every input including
    // NaN (all compares false -> count n -> clamped to n-1, exactly
    // what upper_bound + clamp produce).  Axes are tiny (<= 8), so
    // counting beats four data-dependent binary searches.
    D cnt = zero;
    for (size_t k = 0; k < a1.size(); ++k) {
      cnt = L::add(cnt, L::select(L::lt(x, L::broadcast(a1[k])), zero, one));
    }
    // hi = clamp(count, 1, n-1); counts are small integers, exact in
    // double, so min/max on doubles reproduces the size_t clamp.
    const D hi = L::max(
        L::min(cnt, L::broadcast(static_cast<double>(a1.size() - 1))), one);
    double hi_buf[W];
    L::store(hi_buf, hi);
    for (int j = 0; j < W; ++j) {
      r.lo1[j] = static_cast<int32_t>(hi_buf[j]) - 1;
    }
    D alo, ahi;
    L::load_pair(a1.data(), r.lo1, alo, ahi);
    r.f1 = L::div(L::sub(x, alo), L::sub(ahi, alo));
    return r;
  };
  const auto table_lookup_at = [&](const liberty::NldmTable& tb,
                                   const Loc1& l1, double x2) -> D {
    util::require(!tb.empty(), "lookup on empty NLDM table");
    const auto& a2 = tb.index_2();
    const double* vals = tb.values().data();
    if (a2.empty()) {
      if (l1.single) return L::broadcast(vals[0]);
      D v0, v1;
      L::load_pair(vals, l1.lo1, v0, v1);
      return L::add(v0, L::mul(l1.f1, L::sub(v1, v0)));
    }
    const liberty::AxisSegment s2 = liberty::locate(a2, x2);
    const size_t cols = a2.size();
    if (l1.single && cols == 1) return L::broadcast(vals[0]);
    if (l1.single) {
      // Lane-uniform: the scalar expression, broadcast.
      return L::broadcast(vals[s2.lo] +
                          s2.frac * (vals[s2.lo + 1] - vals[s2.lo]));
    }
    if (cols == 1) {
      D v0, v1;
      L::load_pair(vals, l1.lo1, v0, v1);
      return L::add(v0, L::mul(l1.f1, L::sub(v1, v0)));
    }
    // Bilinear: rows lo1 and lo1+1, columns (s2.lo, s2.lo+1).  Both
    // column pairs are adjacent, so two pair loads (row 0 at i00, row 1
    // at i00 shifted one row) replace four gathers.
    int32_t i00[W];
    const int32_t icols = static_cast<int32_t>(cols);
    for (int j = 0; j < W; ++j) {
      i00[j] = l1.lo1[j] * icols + static_cast<int32_t>(s2.lo);
    }
    D v00, v01, v10, v11;
    L::load_pair(vals, i00, v00, v01);
    L::load_pair(vals + icols, i00, v10, v11);
    const D f2 = L::broadcast(s2.frac);
    const D va = L::add(v00, L::mul(f2, L::sub(v01, v00)));
    const D vb = L::add(v10, L::mul(f2, L::sub(v11, v10)));
    return L::add(va, L::mul(l1.f1, L::sub(vb, va)));
  };
  const auto table_lookup = [&](const liberty::NldmTable& tb, const D x,
                                double x2) -> D {
    return table_lookup_at(tb, locate_lanes(tb.index_1(), x), x2);
  };

  // --- forward fold ---------------------------------------------------
  double slw_buf[W];
  double val_buf[W];
  double arr_buf[W];

  const auto fold_cell = [&](const CellArcEdge& e) {
    const double load = net_loads_[static_cast<size_t>(e.out_net)];
    for (int rf_i = 0; rf_i < 2; ++rf_i) {
      const Src in = read_fwd(e.from, rf_i);
      if (!in.any) continue;  // every lane skips, like the scalar guard
      const auto in_rf = static_cast<RiseFall>(rf_i);
      RiseFall out_rfs[2];
      int out_count = 0;
      switch (e.arc->sense) {
        case liberty::TimingSense::kPositiveUnate:
          out_rfs[out_count++] = in_rf;
          break;
        case liberty::TimingSense::kNegativeUnate:
          out_rfs[out_count++] = flip(in_rf);
          break;
        case liberty::TimingSense::kNonUnate:
          out_rfs[out_count++] = RiseFall::kRise;
          out_rfs[out_count++] = RiseFall::kFall;
          break;
      }
      for (int i = 0; i < out_count; ++i) {
        const auto out_rf = out_rfs[i];
        // TimingArc::rise()/fall() preconditions, verbatim.
        if (out_rf == RiseFall::kRise) {
          util::require(!e.arc->cell_rise.empty(), "arc from ",
                        e.arc->related_pin, " has no cell_rise table");
        } else {
          util::require(!e.arc->cell_fall.empty(), "arc from ",
                        e.arc->related_pin, " has no cell_fall table");
        }
        const auto& delay_tb = out_rf == RiseFall::kRise ? e.arc->cell_rise
                                                         : e.arc->cell_fall;
        const auto& slew_tb = out_rf == RiseFall::kRise
                                  ? e.arc->rise_transition
                                  : e.arc->fall_transition;
        // Delay and transition tables of one arc almost always index the
        // same slew axis; locate once and interpolate twice.  The locate
        // is a pure function of (axis values, x), so sharing it is exact.
        const Loc1 dloc = locate_lanes(delay_tb.index_1(), in.slw);
        const D delay = table_lookup_at(delay_tb, dloc, load);
        const D out_slew =
            !slew_tb.empty() && slew_tb.index_1() == delay_tb.index_1()
                ? table_lookup_at(slew_tb, dloc, load)
                : table_lookup(slew_tb, in.slw, load);
        const D cand_arr = L::add(in.arr, L::mul(delay, v_delay_scale));
        const D cand_slw = L::mul(out_slew, v_slew_scale);
        relax_lanes(e.to, static_cast<int>(out_rf), cand_arr, cand_slw,
                    in.val, e.from, rf_i);
      }
    }
  };

  const auto fold_net = [&](size_t edge_index) {
    const auto& e = net_edges_[edge_index];
    const double wire_delay =
        net_parasitics_[static_cast<size_t>(e.net)].second;
    const double wd = wire_delay * wire_scale;
    // Annotation pointers are per lane — each scenario has its own
    // compiled edge table.
    const NoiseAnnotation* noisy[W];
    bool any_noisy = false;
    for (int j = 0; j < W; ++j) {
      noisy[j] = ctx[static_cast<size_t>(j)].edge_noise != nullptr
                     ? ctx[static_cast<size_t>(j)].edge_noise[edge_index]
                     : nullptr;
      if (static_cast<size_t>(j) < n_real && noisy[j] != nullptr) {
        any_noisy = true;
      }
    }
    for (int rf_i = 0; rf_i < 2; ++rf_i) {
      const Src drv = read_fwd(e.from, rf_i);
      if (!drv.any) continue;
      D arr = L::add(drv.arr, L::broadcast(wd));
      D slw = drv.slw;
      if (any_noisy) {
        // Γeff replacement is scalar per lane through the shared
        // noisy_fit(); invalid lanes are skipped exactly like the
        // scalar path, pad lanes are skipped because their results are
        // discarded.  Only this rare branch spills lanes to buffers.
        L::store(arr_buf, arr);
        L::store(slw_buf, slw);
        L::store(val_buf, drv.val_d);
        for (size_t j = 0; j < n_real; ++j) {
          if (val_buf[j] == 0.0) continue;
          noisy_fit(e, edge_index, noisy[j], rf_i, ctx[j], arr_buf[j],
                    slw_buf[j]);
        }
        arr = L::load(arr_buf);
        slw = L::load(slw_buf);
      }
      relax_lanes(e.to, rf_i, arr, slw, drv.val, e.from, rf_i);
    }
  };

  for (const int v : plan.forward) {
    for (const auto& [is_cell, idx] : in_edges_[static_cast<size_t>(v)]) {
      if (is_cell) {
        fold_cell(cell_edges_[idx]);
      } else {
        fold_net(idx);
      }
    }
  }

  // --- backward reset: reset_required() semantics, lane-uniform -------
  for (const int v : plan.backward) {
    double req = kInf;
    const auto rq = required_.find(v);
    if (rq != required_.end()) req = rq->second;
    for (int rf = 0; rf < 2; ++rf) {
      const size_t o = off(v, rf);
      for (int j = 0; j < W; ++j) s.required[o + static_cast<size_t>(j)] = req;
    }
  }

  // --- backward fold: backward_vertex() semantics ---------------------
  const auto read_req = [&](int v, int rf) -> D {
    if (s.bwd_stamp[static_cast<size_t>(v)] == epoch) {
      return L::load(s.required.data() + off(v, rf));
    }
    return L::broadcast(
        baseline[static_cast<size_t>(v)].timing[static_cast<size_t>(rf)]
            .required);
  };
  struct ToInfo {
    D arr;
    M val;
    D pred;
    D prf;
  };
  const auto read_to = [&](int v, int rf) -> ToInfo {
    if (s.fwd_stamp[static_cast<size_t>(v)] == epoch) {
      const size_t o = off(v, rf);
      return {L::load(s.arrival.data() + o),
              L::gt(L::load(s.valid.data() + o), zero),
              L::load(s.pred.data() + o), L::load(s.pred_rf.data() + o)};
    }
    const auto& vt = baseline[static_cast<size_t>(v)];
    const auto& t = vt.timing[static_cast<size_t>(rf)];
    return {L::broadcast(t.arrival),
            L::gt(L::broadcast(t.valid ? 1.0 : 0.0), zero),
            L::broadcast(static_cast<double>(vt.critical_pred[rf])),
            L::broadcast(static_cast<double>(
                static_cast<int>(vt.critical_pred_rf[rf])))};
  };
  const D pos_inf = L::broadcast(kInf);
  const D neg_inf = L::broadcast(-kInf);

  for (const int v : plan.backward) {
    const D v_id = L::broadcast(static_cast<double>(v));
    for (const auto& [is_cell, idx] : out_edges_[static_cast<size_t>(v)]) {
      const int to = is_cell ? cell_edges_[idx].to : net_edges_[idx].to;
      for (int to_rf = 0; to_rf < 2; ++to_rf) {
        const ToInfo tt = read_to(to, to_rf);
        const D req_to = read_req(to, to_rf);
        // scalar: if (!tt.valid || !isfinite(tt.required)) continue;
        //         if (vt.critical_pred[to_rf] != v) continue;
        M cond0 = L::mask_and(
            tt.val, L::mask_and(L::lt(req_to, pos_inf),
                                L::gt(req_to, neg_inf)));
        cond0 = L::mask_and(cond0, L::eq(tt.pred, v_id));
        if (!L::any(cond0)) continue;
        // from_rf is per lane: handle each candidate source transition
        // under its lane mask (masks are disjoint — exactly one
        // applies per lane, so ordering across from_rf is immaterial).
        for (int from_rf = 0; from_rf < 2; ++from_rf) {
          const M m_rf = L::mask_and(
              cond0,
              L::eq(tt.prf, L::broadcast(static_cast<double>(from_rf))));
          if (!L::any(m_rf)) continue;
          const Src ft = read_fwd(v, from_rf);
          const M cond = L::mask_and(m_rf, ft.val);
          if (!L::any(cond)) continue;
          const size_t o = off(v, from_rf);
          const D cur_req = L::load(s.required.data() + o);
          const D edge_delay = L::sub(tt.arr, ft.arr);
          const D cand = L::sub(req_to, edge_delay);
          // scalar: ft.required = std::min(ft.required, cand)
          const D folded = L::min(cur_req, cand);
          L::store(s.required.data() + o, L::select(cond, folded, cur_req));
        }
      }
    }
  }

  // --- materialization: baseline copy + cone overwrite per real lane --
  // Iterated in ascending vertex id (forward_ids/backward_ids) so the
  // output writes stream in address order; the id lists fall back to
  // the level-ordered ones for hand-built plans that left them empty.
  const std::vector<int>& fwd_ids =
      plan.forward_ids.size() == plan.forward.size() ? plan.forward_ids
                                                     : plan.forward;
  const std::vector<int>& bwd_ids =
      plan.backward_ids.size() == plan.backward.size() ? plan.backward_ids
                                                       : plan.backward;
  for (size_t jj = 0; jj < n_real; ++jj) {
    const uint32_t p = block.points[jj];
    TimingState& out = states[p];
    out = *baselines[p];
    for (const int v : fwd_ids) {
      auto& vt = out[static_cast<size_t>(v)];
      for (int rf = 0; rf < 2; ++rf) {
        const size_t o = off(v, rf) + jj;
        auto& t = vt.timing[rf];
        t.arrival = s.arrival[o];
        t.slew = s.slew[o];
        t.valid = s.valid[o] != 0.0;
        vt.critical_pred[rf] = static_cast<int>(s.pred[o]);
        vt.critical_pred_rf[rf] =
            static_cast<RiseFall>(static_cast<int>(s.pred_rf[o]));
        if (s.bwd_stamp[static_cast<size_t>(v)] != epoch) {
          t.required = s.required[o];  // forward-only vertex (defensive)
        }
      }
    }
    for (const int v : bwd_ids) {
      auto& vt = out[static_cast<size_t>(v)];
      for (int rf = 0; rf < 2; ++rf) {
        vt.timing[rf].required = s.required[off(v, rf) + jj];
      }
    }
  }
}

#if defined(WAVELETIC_HAVE_AVX2)
// The W=4 instantiation lives in engine_lanes_avx2.cpp (compiled with
// -mavx2); baseline-ISA TUs must not instantiate it.
extern template void StaEngine::evaluate_delta_block<4>(
    const LaneBlock& block, std::span<TimingState> states,
    std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines, wave::Workspace* workspace,
    LaneScratch& s) const;
#endif

}  // namespace waveletic::sta
