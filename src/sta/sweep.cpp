#include "sta/sweep.hpp"

#include <cmath>
#include <sstream>

#include "noise/scenario.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {

void NoiseScenario::annotate(const std::string& net, wave::Waveform waveform,
                             wave::Polarity polarity) {
  const uint64_t key = noise_waveform_key(waveform, polarity);
  for (auto& e : entries) {
    if (e.net == net) {
      e.annotation = NoiseAnnotation{std::move(waveform), polarity, key};
      return;
    }
  }
  entries.push_back(
      {net, NoiseAnnotation{std::move(waveform), polarity, key}});
}

const NoiseAnnotation* NoiseScenario::find(
    const std::string& net) const noexcept {
  for (const auto& e : entries) {
    if (e.net == net) return &e.annotation;
  }
  return nullptr;
}

NoiseScenario make_aggressor_scenario(const std::string& net,
                                      double victim_arrival,
                                      double victim_slew, double vdd,
                                      wave::Polarity polarity,
                                      double alignment, double strength,
                                      size_t samples) {
  util::require(victim_slew > 0.0,
                "make_aggressor_scenario: non-positive victim slew");
  util::require(samples >= 8, "make_aggressor_scenario: too few samples");
  const auto ramp =
      wave::Ramp::from_arrival_slew(victim_arrival, victim_slew, vdd);
  const auto clean = ramp.denormalized(polarity, samples);
  std::vector<double> t(clean.times().begin(), clean.times().end());
  std::vector<double> v(clean.values().begin(), clean.values().end());
  // Gaussian coupling bump centred `alignment` after the victim 50%
  // crossing, width tied to the victim transition.  A bump that pushes
  // against the transition direction delays the final crossing — the
  // worst-case aggressor of the paper's Figure 1 testbench.
  const double center = victim_arrival + alignment;
  const double sigma = 0.5 * victim_slew;
  const double sign = polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += sign * strength *
            std::exp(-std::pow((t[i] - center) / sigma, 2.0));
  }
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@align=" << alignment * 1e12
       << "ps,strength=" << strength << "V";
  s.name = name.str();
  s.annotate(net, wave::Waveform(std::move(t), std::move(v)), polarity);
  return s;
}

NoiseScenario scenario_from_case(const std::string& net,
                                 const noise::CaseWaveforms& case_waveforms) {
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@offset=" << case_waveforms.aggressor_offset * 1e12
       << "ps";
  s.name = name.str();
  s.annotate(net, case_waveforms.noisy_in, case_waveforms.in_polarity);
  return s;
}

// ---------------------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------------------

size_t SweepResult::point(size_t corner, size_t scenario) const {
  util::require(corner < num_corners(), "SweepResult: corner ", corner,
                " out of range (", num_corners(), " corners)");
  util::require(scenario < num_scenarios(), "SweepResult: scenario ",
                scenario, " out of range (", num_scenarios(), " scenarios)");
  return corner * num_scenarios() + scenario;
}

const TimingState& SweepResult::state(size_t point) const {
  util::require(engine_ != nullptr, "SweepResult: empty result");
  util::require(point < states_.size(), "SweepResult: point ", point,
                " out of range (", states_.size(), " points)");
  return states_[point];
}

TimingView SweepResult::view(size_t point) const {
  const TimingState& s = state(point);  // validates
  return TimingView(engine_, &s, &corners_[point / num_scenarios()],
                    &scenario_names_[point % num_scenarios()]);
}

TimingView SweepResult::view(size_t corner, size_t scenario) const {
  return view(point(corner, scenario));
}

double SweepResult::worst_slack(size_t point) const {
  return engine_->worst_slack_in(state(point));
}

const PinTiming& SweepResult::timing(size_t point, PinId pin,
                                     RiseFall rf) const {
  return engine_->timing_in(state(point), pin, rf);
}

const PinTiming& SweepResult::timing(size_t point, const std::string& pin,
                                     RiseFall rf) const {
  return engine_->timing_in(state(point), pin, rf);
}

std::vector<PathStep> SweepResult::critical_path(size_t point) const {
  return engine_->worst_path_in(state(point));
}

SweepResult::WorstPoint SweepResult::worst_point() const {
  util::require(!states_.empty(), "SweepResult: empty result");
  WorstPoint best;
  for (size_t p = 0; p < states_.size(); ++p) {
    const double slack = worst_slack(p);
    if (p == 0 || slack < best.slack) {
      best.point = p;
      best.slack = slack;
    }
  }
  best.corner = best.point / num_scenarios();
  best.scenario = best.point % num_scenarios();
  return best;
}

const Corner& SweepResult::corner(size_t i) const {
  util::require(i < corners_.size(), "SweepResult: corner ", i,
                " out of range");
  return corners_[i];
}

const std::string& SweepResult::scenario_name(size_t i) const {
  util::require(i < scenario_names_.size(), "SweepResult: scenario ", i,
                " out of range");
  return scenario_names_[i];
}

GammaCache::Stats SweepResult::cache_stats() const noexcept {
  return cache_ != nullptr ? cache_->stats() : GammaCache::Stats{};
}

// ---------------------------------------------------------------------------
// TimingView
// ---------------------------------------------------------------------------

const PinTiming& TimingView::timing(PinId pin, RiseFall rf) const {
  return engine_->timing_in(*state_, pin, rf);
}

const PinTiming& TimingView::timing(const std::string& pin,
                                    RiseFall rf) const {
  return engine_->timing_in(*state_, pin, rf);
}

double TimingView::worst_slack() const {
  return engine_->worst_slack_in(*state_);
}

std::vector<PathStep> TimingView::critical_path() const {
  return engine_->worst_path_in(*state_);
}

// ---------------------------------------------------------------------------
// StaEngine::sweep — the one levelized pass over corners × scenarios
// ---------------------------------------------------------------------------

SweepResult StaEngine::sweep(const SweepSpec& spec) {
  prepare();

  SweepResult r;
  r.engine_ = this;
  if (spec.corners.empty()) {
    r.corners_.push_back(corner_ ? *corner_ : Corner{});
  } else {
    r.corners_ = spec.corners;
  }

  static const NoiseScenario kCleanScenario{};
  std::vector<const NoiseScenario*> scenarios;
  if (spec.scenarios.empty()) {
    scenarios.push_back(&kCleanScenario);
    r.scenario_names_.push_back("clean");
  } else {
    scenarios.reserve(spec.scenarios.size());
    for (const auto& sc : spec.scenarios) {
      scenarios.push_back(&sc);
      r.scenario_names_.push_back(sc.name);
    }
  }

  const size_t n_corners = r.corners_.size();
  const size_t n_scenarios = scenarios.size();
  const size_t n_points = n_corners * n_scenarios;

  // Compile each scenario's effective annotations (engine base overlaid
  // by the scenario) into a dense per-net-edge pointer table, shared by
  // every corner of that scenario.  This is the only place annotations
  // are *searched*; propagation just indexes.
  std::vector<std::vector<const NoiseAnnotation*>> tables(n_scenarios);
  for (size_t s = 0; s < n_scenarios; ++s) {
    tables[s] = compile_edge_annotations(scenarios[s]);
  }

  if (spec.share_gamma_cache) r.cache_ = std::make_unique<GammaCache>();
  const core::EquivalentWaveformMethod* method =
      spec.method != nullptr ? spec.method : noise_method_.get();

  r.states_.assign(n_points, TimingState{});
  std::vector<EvalContext> contexts(n_points);
  for (size_t c = 0; c < n_corners; ++c) {
    const uint64_t corner_key = r.corners_[c].key();
    for (size_t s = 0; s < n_scenarios; ++s) {
      const size_t p = c * n_scenarios + s;
      contexts[p].edge_noise = tables[s].data();
      contexts[p].corner = &r.corners_[c];
      contexts[p].corner_key = corner_key;
      contexts[p].method = method;
      contexts[p].cache = r.cache_.get();
      init_state(r.states_[p]);
    }
  }

  const size_t want = spec.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(spec.threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = spec.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(static_cast<int>(want));
    pool = owned_pool.get();
  }

  // One scratch arena per pool worker: Γeff fits draw their sampling
  // buffers from the running worker's arena, so after the slabs warm up
  // the whole sweep propagates without touching the heap.  Arenas are
  // pure scratch — results are bitwise independent of which worker
  // evaluates which (point, vertex) task.
  if (workspaces_.size() < pool->size()) {
    workspaces_.resize(pool->size());
  }
  std::span<wave::Workspace> wss(workspaces_.data(), pool->size());

  // ONE levelized pass for all points: per level, every (point, vertex)
  // pair is independent — points write disjoint states and vertices of
  // one level only read lower levels.
  for (const auto& level : levels_) {
    const size_t m = level.size();
    pool->parallel_for(m * n_points, [&](size_t worker, size_t idx) {
      const size_t p = idx / m;
      const int v = level[idx % m];
      EvalContext task_ctx = contexts[p];
      task_ctx.workspace = &wss[worker];
      forward_vertex(v, r.states_[p], task_ctx);
    });
  }
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    const auto& level = *it;
    const size_t m = level.size();
    pool->parallel_for(m * n_points, [&](size_t idx) {
      const size_t p = idx / m;
      const int v = level[idx % m];
      backward_vertex(v, r.states_[p]);
    });
  }
  return r;
}

}  // namespace waveletic::sta
