#include "sta/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "noise/scenario.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {

void NoiseScenario::annotate(const std::string& net, wave::Waveform waveform,
                             wave::Polarity polarity) {
  const uint64_t key = noise_waveform_key(waveform, polarity);
  for (auto& e : entries) {
    if (e.net == net) {
      e.annotation = NoiseAnnotation{std::move(waveform), polarity, key};
      return;
    }
  }
  entries.push_back(
      {net, NoiseAnnotation{std::move(waveform), polarity, key}});
}

const NoiseAnnotation* NoiseScenario::find(
    const std::string& net) const noexcept {
  for (const auto& e : entries) {
    if (e.net == net) return &e.annotation;
  }
  return nullptr;
}

NoiseScenario make_aggressor_scenario(const std::string& net,
                                      double victim_arrival,
                                      double victim_slew, double vdd,
                                      wave::Polarity polarity,
                                      double alignment, double strength,
                                      size_t samples) {
  util::require(victim_slew > 0.0,
                "make_aggressor_scenario: non-positive victim slew");
  util::require(samples >= 8, "make_aggressor_scenario: too few samples");
  const auto ramp =
      wave::Ramp::from_arrival_slew(victim_arrival, victim_slew, vdd);
  const auto clean = ramp.denormalized(polarity, samples);
  std::vector<double> t(clean.times().begin(), clean.times().end());
  std::vector<double> v(clean.values().begin(), clean.values().end());
  // Gaussian coupling bump centred `alignment` after the victim 50%
  // crossing, width tied to the victim transition.  A bump that pushes
  // against the transition direction delays the final crossing — the
  // worst-case aggressor of the paper's Figure 1 testbench.
  const double center = victim_arrival + alignment;
  const double sigma = 0.5 * victim_slew;
  const double sign = polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += sign * strength *
            std::exp(-std::pow((t[i] - center) / sigma, 2.0));
  }
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@align=" << alignment * 1e12
       << "ps,strength=" << strength << "V";
  s.name = name.str();
  s.annotate(net, wave::Waveform(std::move(t), std::move(v)), polarity);
  return s;
}

NoiseScenario scenario_from_case(const std::string& net,
                                 const noise::CaseWaveforms& case_waveforms) {
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@offset=" << case_waveforms.aggressor_offset * 1e12
       << "ps";
  s.name = name.str();
  s.annotate(net, case_waveforms.noisy_in, case_waveforms.in_polarity);
  return s;
}

// ---------------------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------------------

size_t SweepResult::point(size_t corner, size_t scenario) const {
  util::require(corner < num_corners(), "SweepResult: corner ", corner,
                " out of range (", num_corners(), " corners)");
  util::require(scenario < num_scenarios(), "SweepResult: scenario ",
                scenario, " out of range (", num_scenarios(), " scenarios)");
  return corner * num_scenarios() + scenario;
}

void SweepResult::require_full_state(const char* accessor) const {
  util::require(!endpoint_only_, "SweepResult::", accessor,
                ": this is an endpoint-only result (SweepSpec::"
                "endpoint_only) — full TimingStates were not kept.  Use "
                "worst_slack()/worst_point()/critical_endpoint()/"
                "endpoint_arrival(), or re-run the sweep with "
                "endpoint_only = false");
}

const TimingState& SweepResult::state(size_t point) const {
  util::require(engine_ != nullptr, "SweepResult: empty result");
  require_full_state("state");
  util::require(point < states_.size(), "SweepResult: point ", point,
                " out of range (", states_.size(), " points)");
  return states_[point];
}

TimingView SweepResult::view(size_t point) const {
  const TimingState& s = state(point);  // validates
  return TimingView(engine_, &s, &corners_[point / num_scenarios()],
                    &scenario_names_[point % num_scenarios()]);
}

TimingView SweepResult::view(size_t corner, size_t scenario) const {
  return view(point(corner, scenario));
}

double SweepResult::worst_slack(size_t point) const {
  if (endpoint_only_) {
    util::require(point < worst_slacks_.size(), "SweepResult: point ", point,
                  " out of range (", worst_slacks_.size(), " points)");
    return worst_slacks_[point];
  }
  return engine_->worst_slack_in(state(point));
}

const std::string& SweepResult::endpoint_name(size_t endpoint) const {
  util::require(endpoint < endpoint_names_.size(), "SweepResult: endpoint ",
                endpoint, " out of range (", endpoint_names_.size(),
                " endpoints)");
  return endpoint_names_[endpoint];
}

double SweepResult::endpoint_arrival(size_t point, size_t endpoint,
                                     RiseFall rf) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  util::require(endpoint < endpoint_names_.size(), "SweepResult: endpoint ",
                endpoint, " out of range (", endpoint_names_.size(),
                " endpoints)");
  if (endpoint_only_) {
    return endpoint_arrivals_[(point * endpoint_names_.size() + endpoint) * 2 +
                              static_cast<size_t>(rf)];
  }
  return engine_
      ->timing_in(states_[point], engine_->pin(endpoint_names_[endpoint]), rf)
      .arrival;
}

SweepResult::CriticalEndpoint SweepResult::critical_endpoint(
    size_t point) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  if (endpoint_only_) return critical_[point];
  const auto we = engine_->worst_endpoint_in(states_[point]);
  return CriticalEndpoint{we.endpoint, we.rf, we.slack};
}

size_t SweepResult::result_bytes_per_point() const noexcept {
  if (endpoint_only_) {
    return sizeof(double)                               // worst slack
           + sizeof(CriticalEndpoint)                   // critical endpoint
           + endpoint_names_.size() * 2 * sizeof(double);  // arrivals
  }
  return states_.empty() ? 0 : states_[0].size() * sizeof(VertexTiming);
}

const PinTiming& SweepResult::timing(size_t point, PinId pin,
                                     RiseFall rf) const {
  return engine_->timing_in(state(point), pin, rf);
}

const PinTiming& SweepResult::timing(size_t point, const std::string& pin,
                                     RiseFall rf) const {
  return engine_->timing_in(state(point), pin, rf);
}

std::vector<PathStep> SweepResult::critical_path(size_t point) const {
  return engine_->worst_path_in(state(point));
}

SweepResult::WorstPoint SweepResult::worst_point() const {
  util::require(size() > 0, "SweepResult: empty result");
  WorstPoint best;
  for (size_t p = 0; p < size(); ++p) {
    const double slack = worst_slack(p);
    if (p == 0 || slack < best.slack) {
      best.point = p;
      best.slack = slack;
    }
  }
  best.corner = best.point / num_scenarios();
  best.scenario = best.point % num_scenarios();
  return best;
}

const Corner& SweepResult::corner(size_t i) const {
  util::require(i < corners_.size(), "SweepResult: corner ", i,
                " out of range");
  return corners_[i];
}

const std::string& SweepResult::scenario_name(size_t i) const {
  util::require(i < scenario_names_.size(), "SweepResult: scenario ", i,
                " out of range");
  return scenario_names_[i];
}

GammaCache::Stats SweepResult::cache_stats() const noexcept {
  return cache_ != nullptr ? cache_->stats() : GammaCache::Stats{};
}

// ---------------------------------------------------------------------------
// TimingView
// ---------------------------------------------------------------------------

const PinTiming& TimingView::timing(PinId pin, RiseFall rf) const {
  return engine_->timing_in(*state_, pin, rf);
}

const PinTiming& TimingView::timing(const std::string& pin,
                                    RiseFall rf) const {
  return engine_->timing_in(*state_, pin, rf);
}

double TimingView::worst_slack() const {
  return engine_->worst_slack_in(*state_);
}

std::vector<PathStep> TimingView::critical_path() const {
  return engine_->worst_path_in(*state_);
}

// ---------------------------------------------------------------------------
// StaEngine::sweep — one partition-sharded pass over corners × scenarios
// ---------------------------------------------------------------------------

SweepResult StaEngine::sweep(const SweepSpec& spec) {
  prepare();

  SweepResult r;
  r.engine_ = this;
  if (spec.corners.empty()) {
    r.corners_.push_back(corner_ ? *corner_ : Corner{});
  } else {
    r.corners_ = spec.corners;
  }

  static const NoiseScenario kCleanScenario{};
  std::vector<const NoiseScenario*> scenarios;
  if (spec.scenarios.empty()) {
    scenarios.push_back(&kCleanScenario);
    r.scenario_names_.push_back("clean");
  } else {
    scenarios.reserve(spec.scenarios.size());
    for (const auto& sc : spec.scenarios) {
      scenarios.push_back(&sc);
      r.scenario_names_.push_back(sc.name);
    }
  }

  const size_t n_corners = r.corners_.size();
  const size_t n_scenarios = scenarios.size();
  const size_t n_points = n_corners * n_scenarios;

  // Compile each scenario's effective annotations (engine base overlaid
  // by the scenario) into a dense per-net-edge pointer table, shared by
  // every corner of that scenario.  This is the only place annotations
  // are *searched*; propagation just indexes.
  std::vector<std::vector<const NoiseAnnotation*>> tables(n_scenarios);
  for (size_t s = 0; s < n_scenarios; ++s) {
    tables[s] = compile_edge_annotations(scenarios[s]);
  }

  if (spec.share_gamma_cache) r.cache_ = std::make_unique<GammaCache>();
  const core::EquivalentWaveformMethod* method =
      spec.method != nullptr ? spec.method : noise_method_.get();

  std::vector<EvalContext> contexts(n_points);
  for (size_t c = 0; c < n_corners; ++c) {
    const uint64_t corner_key = r.corners_[c].key();
    for (size_t s = 0; s < n_scenarios; ++s) {
      const size_t p = c * n_scenarios + s;
      contexts[p].edge_noise = tables[s].data();
      contexts[p].corner = &r.corners_[c];
      contexts[p].corner_key = corner_key;
      contexts[p].method = method;
      contexts[p].cache = r.cache_.get();
    }
  }

  const size_t want = spec.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(spec.threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = spec.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(static_cast<int>(want));
    pool = owned_pool.get();
  }

  // One scratch arena per pool worker: Γeff fits draw their sampling
  // buffers from the running worker's arena, so after the slabs warm up
  // the whole sweep propagates without touching the heap.  Arenas are
  // pure scratch — results are bitwise independent of which worker
  // evaluates which shard.
  if (workspaces_.size() < pool->size()) {
    workspaces_.resize(pool->size());
  }
  std::span<wave::Workspace> wss(workspaces_.data(), pool->size());

  // Endpoint axis metadata (both modes).
  r.endpoint_names_.reserve(endpoint_ports_.size());
  for (const int32_t p : endpoint_ports_) {
    r.endpoint_names_.push_back(ports_[static_cast<size_t>(p)].name);
  }

  if (!spec.endpoint_only) {
    // Full mode: every point keeps its TimingState, all evaluated in
    // one pass of (point × partition) coarse tasks.
    r.states_.assign(n_points, TimingState{});
    evaluate_points(r.states_, contexts, pool, wss, spec.shard,
                    spec.wide_partition_threshold);
    return r;
  }

  // Endpoint-only mode: evaluate points in bounded chunks, summarize
  // each state into {worst slack, critical endpoint, endpoint
  // arrivals}, then reuse the states for the next chunk.  Summaries are
  // computed with exactly the accessors full mode uses, so both modes
  // agree bitwise.
  r.endpoint_only_ = true;
  const size_t n_endpoints = r.endpoint_names_.size();
  r.worst_slacks_.resize(n_points);
  r.critical_.resize(n_points);
  r.endpoint_arrivals_.resize(n_points * n_endpoints * 2);
  const size_t chunk =
      spec.endpoint_chunk != 0
          ? spec.endpoint_chunk
          : std::max<size_t>(4 * pool->size(), 64);
  std::vector<TimingState> states(std::min(chunk, n_points));
  for (size_t base = 0; base < n_points; base += chunk) {
    const size_t n = std::min(chunk, n_points - base);
    evaluate_points(std::span<TimingState>(states.data(), n),
                    std::span<const EvalContext>(contexts.data() + base, n),
                    pool, wss, spec.shard, spec.wide_partition_threshold);
    for (size_t i = 0; i < n; ++i) {
      const size_t p = base + i;
      r.worst_slacks_[p] = worst_slack_in(states[i]);
      const auto we = worst_endpoint_in(states[i]);
      r.critical_[p] =
          SweepResult::CriticalEndpoint{we.endpoint, we.rf, we.slack};
      for (size_t e = 0; e < n_endpoints; ++e) {
        const int v =
            ports_[static_cast<size_t>(endpoint_ports_[e])].vertex;
        for (size_t rf = 0; rf < 2; ++rf) {
          r.endpoint_arrivals_[(p * n_endpoints + e) * 2 + rf] =
              states[i][static_cast<size_t>(v)].timing[rf].arrival;
        }
      }
    }
  }
  return r;
}

}  // namespace waveletic::sta
