#include "sta/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "noise/scenario.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/lanes.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {

const char* to_string(PruneMode mode) noexcept {
  return mode == PruneMode::kSafe ? "safe" : "off";
}

std::string format_prune_stats(const PruneStats& stats) {
  std::ostringstream os;
  os << "prune_stats: points=" << stats.points
     << " evaluated=" << stats.evaluated << " reused=" << stats.reused
     << " pruned=" << stats.pruned << "\n"
     << "  dirty_vertex_fraction=" << stats.dirty_vertex_fraction
     << " dirty_partition_fraction=" << stats.dirty_partition_fraction
     << "\n"
     << "  mean_bound_gap=" << stats.mean_bound_gap
     << " min_bound_gap=" << stats.min_bound_gap;
  return os.str();
}

void NoiseScenario::annotate(const std::string& net, wave::Waveform waveform,
                             wave::Polarity polarity) {
  const uint64_t key = noise_waveform_key(waveform, polarity);
  for (auto& e : entries) {
    if (e.net == net) {
      e.annotation = NoiseAnnotation{std::move(waveform), polarity, key};
      return;
    }
  }
  entries.push_back(
      {net, NoiseAnnotation{std::move(waveform), polarity, key}});
}

const NoiseAnnotation* NoiseScenario::find(
    const std::string& net) const noexcept {
  for (const auto& e : entries) {
    if (e.net == net) return &e.annotation;
  }
  return nullptr;
}

NoiseScenario make_aggressor_scenario(const std::string& net,
                                      double victim_arrival,
                                      double victim_slew, double vdd,
                                      wave::Polarity polarity,
                                      double alignment, double strength,
                                      size_t samples) {
  util::require(victim_slew > 0.0,
                "make_aggressor_scenario: non-positive victim slew");
  util::require(samples >= 8, "make_aggressor_scenario: too few samples");
  const auto ramp =
      wave::Ramp::from_arrival_slew(victim_arrival, victim_slew, vdd);
  const auto clean = ramp.denormalized(polarity, samples);
  std::vector<double> t(clean.times().begin(), clean.times().end());
  std::vector<double> v(clean.values().begin(), clean.values().end());
  // Gaussian coupling bump centred `alignment` after the victim 50%
  // crossing, width tied to the victim transition.  A bump that pushes
  // against the transition direction delays the final crossing — the
  // worst-case aggressor of the paper's Figure 1 testbench.
  const double center = victim_arrival + alignment;
  const double sigma = 0.5 * victim_slew;
  const double sign = polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += sign * strength *
            std::exp(-std::pow((t[i] - center) / sigma, 2.0));
  }
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@align=" << alignment * 1e12
       << "ps,strength=" << strength << "V";
  s.name = name.str();
  s.annotate(net, wave::Waveform(std::move(t), std::move(v)), polarity);
  return s;
}

NoiseScenario scenario_from_case(const std::string& net,
                                 const noise::CaseWaveforms& case_waveforms) {
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@offset=" << case_waveforms.aggressor_offset * 1e12
       << "ps";
  s.name = name.str();
  s.annotate(net, case_waveforms.noisy_in, case_waveforms.in_polarity);
  return s;
}

// ---------------------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------------------

size_t SweepResult::point(size_t corner, size_t scenario) const {
  util::require(corner < num_corners(), "SweepResult: corner ", corner,
                " out of range (", num_corners(), " corners)");
  util::require(scenario < num_scenarios(), "SweepResult: scenario ",
                scenario, " out of range (", num_scenarios(), " scenarios)");
  return corner * num_scenarios() + scenario;
}

void SweepResult::throw_unavailable(const char* accessor,
                                    const char* disabling_field,
                                    const char* explanation,
                                    const char* alternatives) const {
  // The one error shape of the "accessor unavailable" family: name the
  // accessor, the disabling SweepSpec field, what happened, and the
  // accessors that DO work — identical structure for endpoint-only and
  // pruned results.
  std::ostringstream os;
  os << "SweepResult::" << accessor << ": unavailable under SweepSpec::"
     << disabling_field << " — " << explanation << ".  Use " << alternatives
     << ", or re-run the sweep with " << disabling_field << " disabled";
  throw util::Error(os.str());
}

void SweepResult::require_full_state(const char* accessor) const {
  if (endpoint_only_) {
    throw_unavailable(accessor, "endpoint_only",
                      "this is an endpoint-only result; full TimingStates "
                      "were not kept",
                      "worst_slack()/worst_point()/critical_endpoint()/"
                      "endpoint_arrival()");
  }
}

void SweepResult::require_not_pruned(const char* accessor,
                                     size_t point) const {
  if (status(point) == PointStatus::kPruned) {
    throw_unavailable(accessor, "prune",
                      "this point was pruned: its slack bound proved it "
                      "cannot set the sweep's worst slack, so no timing was "
                      "computed for it",
                      "worst_slack_bound(point)/worst_point()/prune_stats()");
  }
}

const StaEngine& SweepResult::live_engine(const char* accessor) const {
  util::require(engine_ != nullptr, "SweepResult: empty result");
  util::require(!engine_liveness_.expired(), "SweepResult::", accessor,
                ": the engine this result points into has been destroyed — "
                "a SweepResult must not outlive its engine (service queries "
                "co-own their snapshot instead; see sta/service.hpp)");
  return *engine_;
}

const TimingState& SweepResult::state(size_t point) const {
  (void)live_engine("state");
  require_full_state("state");
  util::require(point < states_.size(), "SweepResult: point ", point,
                " out of range (", states_.size(), " points)");
  require_not_pruned("state", point);
  // Summary-only points exist only in endpoint-only results, which
  // require_full_state already rejected — every surviving point here
  // carries a full TimingState.
  return states_[point];
}

TimingView SweepResult::view(size_t point) const {
  const TimingState& s = state(point);  // validates
  return TimingView(engine_, engine_liveness_, &s,
                    &corners_[point / num_scenarios()],
                    &scenario_names_[point % num_scenarios()]);
}

TimingView SweepResult::view(size_t corner, size_t scenario) const {
  return view(point(corner, scenario));
}

double SweepResult::worst_slack(size_t point) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  require_not_pruned("worst_slack", point);
  if (status(point) == PointStatus::kSummary) return worst_slacks_[point];
  return live_engine("worst_slack").worst_slack_in(states_[point]);
}

bool SweepResult::pruned(size_t point) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  return status(point) == PointStatus::kPruned;
}

double SweepResult::worst_slack_bound(size_t point) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  util::require(prune_ != PruneMode::kOff,
                "SweepResult::worst_slack_bound: the sweep ran with "
                "SweepSpec::prune == PruneMode::kOff, so slack bounds were "
                "not computed.  Use worst_slack(point), or re-run the sweep "
                "with prune = PruneMode::kSafe");
  return bounds_[point];
}

const std::string& SweepResult::endpoint_name(size_t endpoint) const {
  util::require(endpoint < endpoint_names_.size(), "SweepResult: endpoint ",
                endpoint, " out of range (", endpoint_names_.size(),
                " endpoints)");
  return endpoint_names_[endpoint];
}

double SweepResult::endpoint_arrival(size_t point, size_t endpoint,
                                     RiseFall rf) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  util::require(endpoint < endpoint_names_.size(), "SweepResult: endpoint ",
                endpoint, " out of range (", endpoint_names_.size(),
                " endpoints)");
  require_not_pruned("endpoint_arrival", point);
  if (status(point) == PointStatus::kSummary) {
    return endpoint_arrivals_[(point * endpoint_names_.size() + endpoint) * 2 +
                              static_cast<size_t>(rf)];
  }
  const StaEngine& eng = live_engine("endpoint_arrival");
  return eng.timing_in(states_[point], eng.pin(endpoint_names_[endpoint]), rf)
      .arrival;
}

SweepResult::CriticalEndpoint SweepResult::critical_endpoint(
    size_t point) const {
  util::require(point < size(), "SweepResult: point ", point,
                " out of range (", size(), " points)");
  require_not_pruned("critical_endpoint", point);
  if (status(point) == PointStatus::kSummary) return critical_[point];
  const auto we = live_engine("critical_endpoint").worst_endpoint_in(
      states_[point]);
  return CriticalEndpoint{we.endpoint, we.rf, we.slack};
}

size_t SweepResult::result_bytes_per_point() const noexcept {
  if (endpoint_only_) {
    return sizeof(double)                               // worst slack
           + sizeof(CriticalEndpoint)                   // critical endpoint
           + endpoint_names_.size() * 2 * sizeof(double);  // arrivals
  }
  for (const auto& s : states_) {  // first materialized point (pruned
    if (s.size() != 0) return s.size() * sizeof(VertexTiming);  // ones
  }                                                             // are empty)
  return 0;
}

const PinTiming& SweepResult::timing(size_t point, PinId pin,
                                     RiseFall rf) const {
  return live_engine("timing").timing_in(state(point), pin, rf);
}

const PinTiming& SweepResult::timing(size_t point, const std::string& pin,
                                     RiseFall rf) const {
  return live_engine("timing").timing_in(state(point), pin, rf);
}

std::vector<PathStep> SweepResult::critical_path(size_t point) const {
  return live_engine("critical_path").worst_path_in(state(point));
}

SweepResult::WorstPoint SweepResult::worst_point() const {
  util::require(size() > 0, "SweepResult: empty result");
  // Pruned points are skipped: their true worst slack is strictly above
  // the worst of the surviving points (that is what made them
  // prunable), so the argmin — including its first-in-index tie-break —
  // is identical to an unpruned sweep's.
  WorstPoint best;
  bool found = false;
  for (size_t p = 0; p < size(); ++p) {
    if (status(p) == PointStatus::kPruned) continue;
    const double slack = worst_slack(p);
    if (!found || slack < best.slack) {
      best.point = p;
      best.slack = slack;
      found = true;
    }
  }
  util::require(found, "SweepResult: every point was pruned");
  best.corner = best.point / num_scenarios();
  best.scenario = best.point % num_scenarios();
  return best;
}

const Corner& SweepResult::corner(size_t i) const {
  util::require(i < corners_.size(), "SweepResult: corner ", i,
                " out of range");
  return corners_[i];
}

const std::string& SweepResult::scenario_name(size_t i) const {
  util::require(i < scenario_names_.size(), "SweepResult: scenario ", i,
                " out of range");
  return scenario_names_[i];
}

GammaCache::Stats SweepResult::cache_stats() const noexcept {
  return cache_ != nullptr ? cache_->stats() : GammaCache::Stats{};
}

// ---------------------------------------------------------------------------
// TimingView
// ---------------------------------------------------------------------------

const StaEngine& TimingView::live_engine() const {
  util::require(!liveness_.expired(),
                "TimingView: the engine this view points into has been "
                "destroyed — views must not outlive their engine (service "
                "queries co-own their snapshot instead; see sta/service.hpp)");
  return *engine_;
}

const PinTiming& TimingView::timing(PinId pin, RiseFall rf) const {
  return live_engine().timing_in(*state_, pin, rf);
}

const PinTiming& TimingView::timing(const std::string& pin,
                                    RiseFall rf) const {
  return live_engine().timing_in(*state_, pin, rf);
}

double TimingView::worst_slack() const {
  return live_engine().worst_slack_in(*state_);
}

std::vector<PathStep> TimingView::critical_path() const {
  return live_engine().worst_path_in(*state_);
}

// ---------------------------------------------------------------------------
// StaEngine::sweep — baseline + delta propagation over corners × scenarios
// ---------------------------------------------------------------------------

SweepResult StaEngine::sweep(const SweepSpec& spec) {
  prepare();

  // Resolve the lane-width knob up front so a bad value fails fast.
  util::require(spec.lanes == 0 || spec.lanes == 1 || spec.lanes == 4,
                "sweep: lanes must be 0 (auto), 1, or 4, got ", spec.lanes);
  if (spec.lanes > 1) {
    util::require(wave::lane_width_available(spec.lanes),
                  "sweep: lane width ", spec.lanes,
                  " not available on this build/CPU");
  }
  const int lanes = spec.lanes != 0 ? spec.lanes : wave::active_lane_width();

  SweepResult r;
  r.engine_ = this;
  r.engine_liveness_ = liveness();
  if (spec.corners.empty()) {
    r.corners_.push_back(corner_ ? *corner_ : Corner{});
  } else {
    r.corners_ = spec.corners;
  }

  static const NoiseScenario kCleanScenario{};
  std::vector<const NoiseScenario*> scenarios;
  if (spec.scenarios.empty()) {
    scenarios.push_back(&kCleanScenario);
    r.scenario_names_.push_back("clean");
  } else {
    scenarios.reserve(spec.scenarios.size());
    for (const auto& sc : spec.scenarios) {
      scenarios.push_back(&sc);
      r.scenario_names_.push_back(sc.name);
    }
  }

  const size_t n_corners = r.corners_.size();
  const size_t n_scenarios = scenarios.size();
  const size_t n_points = n_corners * n_scenarios;

  // Compile each scenario's effective annotations (engine base overlaid
  // by the scenario) into a dense per-net-edge pointer table, shared by
  // every corner of that scenario.  This is the only place annotations
  // are *searched*; propagation just indexes.
  std::vector<std::vector<const NoiseAnnotation*>> tables(n_scenarios);
  for (size_t s = 0; s < n_scenarios; ++s) {
    tables[s] = compile_edge_annotations(scenarios[s]);
  }

  if (spec.share_gamma_cache) r.cache_ = std::make_unique<GammaCache>();
  const core::EquivalentWaveformMethod* method =
      spec.method != nullptr ? spec.method : noise_method_.get();

  std::vector<EvalContext> contexts(n_points);
  for (size_t c = 0; c < n_corners; ++c) {
    const uint64_t corner_key = r.corners_[c].key();
    for (size_t s = 0; s < n_scenarios; ++s) {
      const size_t p = c * n_scenarios + s;
      contexts[p].edge_noise = tables[s].data();
      contexts[p].corner = &r.corners_[c];
      contexts[p].corner_key = corner_key;
      contexts[p].method = method;
      contexts[p].cache = r.cache_.get();
    }
  }

  const size_t want = spec.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(spec.threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = spec.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(static_cast<int>(want));
    pool = owned_pool.get();
  }

  // One scratch arena per pool worker: Γeff fits draw their sampling
  // buffers from the running worker's arena, so after the slabs warm up
  // the whole sweep propagates without touching the heap.  Arenas are
  // pure scratch — results are bitwise independent of which worker
  // evaluates which shard.
  if (workspaces_.size() < pool->size()) {
    workspaces_.resize(pool->size());
  }
  std::span<wave::Workspace> wss(workspaces_.data(), pool->size());

  // Endpoint axis metadata (both modes).
  r.endpoint_names_.reserve(endpoint_ports_.size());
  for (const int32_t p : endpoint_ports_) {
    r.endpoint_names_.push_back(ports_[static_cast<size_t>(p)].name);
  }
  const size_t n_endpoints = r.endpoint_names_.size();

  const bool prune = spec.prune == PruneMode::kSafe;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  r.endpoint_only_ = spec.endpoint_only;
  r.prune_ = spec.prune;
  r.prune_stats_.points = n_points;

  // Writes one evaluated state's endpoint summary — exactly the fields
  // the full-state accessors would derive, so both modes agree bitwise.
  auto summarize = [&](size_t p, const TimingState& state) {
    r.worst_slacks_[p] = worst_slack_in(state);
    const auto we = worst_endpoint_in(state);
    r.critical_[p] =
        SweepResult::CriticalEndpoint{we.endpoint, we.rf, we.slack};
    for (size_t e = 0; e < n_endpoints; ++e) {
      const int v = ports_[static_cast<size_t>(endpoint_ports_[e])].vertex;
      for (size_t rf = 0; rf < 2; ++rf) {
        r.endpoint_arrivals_[(p * n_endpoints + e) * 2 + rf] =
            state[static_cast<size_t>(v)].timing[rf].arrival;
      }
    }
  };

  if (!spec.delta && !prune) {
    // Legacy full-graph-per-point paths (SweepSpec::delta == false).
    r.prune_stats_.evaluated = n_points;
    if (!spec.endpoint_only) {
      // Full mode: every point keeps its TimingState, all evaluated in
      // one pass of (point × partition) coarse tasks.
      r.states_.assign(n_points, TimingState{});
      r.status_.assign(n_points, SweepResult::PointStatus::kFull);
      evaluate_points(r.states_, contexts, pool, wss, spec.shard,
                      spec.wide_partition_threshold);
      return r;
    }
    // Endpoint-only mode: evaluate points in bounded chunks, summarize
    // each state, then reuse the states for the next chunk.
    r.status_.assign(n_points, SweepResult::PointStatus::kSummary);
    r.worst_slacks_.resize(n_points);
    r.critical_.resize(n_points);
    r.endpoint_arrivals_.resize(n_points * n_endpoints * 2);
    const size_t chunk = spec.endpoint_chunk != 0
                             ? spec.endpoint_chunk
                             : std::max<size_t>(4 * pool->size(), 64);
    std::vector<TimingState> states(std::min(chunk, n_points));
    for (size_t base = 0; base < n_points; base += chunk) {
      const size_t n = std::min(chunk, n_points - base);
      evaluate_points(std::span<TimingState>(states.data(), n),
                      std::span<const EvalContext>(contexts.data() + base, n),
                      pool, wss, spec.shard, spec.wide_partition_threshold);
      for (size_t i = 0; i < n; ++i) summarize(base + i, states[i]);
    }
    return r;
  }

  // -------------------------------------------------------------------------
  // Baseline + delta evaluation (and/or slack-bound pruning).
  //
  // One nominal TimingState per corner under the engine-level
  // annotation table; every scenario point is then derived from its
  // corner baseline by re-propagating only the transitive fanout cone
  // of the scenario's annotated nets — bitwise identical to full
  // propagation.  Under prune == kSafe, points are additionally ordered
  // by a conservative slack lower bound and early-outed once the bound
  // proves they cannot beat the worst slack seen so far.
  // -------------------------------------------------------------------------

  std::vector<TimingState> owned_baselines;
  if (spec.corner_baselines != nullptr) {
    util::require(spec.corner_baselines->size() == n_corners,
                  "sweep: corner_baselines has ",
                  spec.corner_baselines->size(), " states for ", n_corners,
                  " corners");
    for (const auto& b : *spec.corner_baselines) {
      util::require(b.size() == vertex_count(),
                    "sweep: corner_baselines state has ", b.size(),
                    " vertices, engine has ", vertex_count(),
                    " (baseline from another engine?)");
    }
  } else {
    const auto base_table = compile_edge_annotations(nullptr);
    owned_baselines.resize(n_corners);
    std::vector<EvalContext> base_ctx(n_corners);
    for (size_t c = 0; c < n_corners; ++c) {
      base_ctx[c].edge_noise = base_table.data();
      base_ctx[c].corner = &r.corners_[c];
      base_ctx[c].corner_key = r.corners_[c].key();
      base_ctx[c].method = method;
      base_ctx[c].cache = r.cache_.get();
    }
    evaluate_points(owned_baselines, base_ctx, pool, wss, spec.shard,
                    spec.wide_partition_threshold);
  }
  const std::vector<TimingState>& baselines =
      spec.corner_baselines != nullptr ? *spec.corner_baselines
                                       : owned_baselines;

  // Per-scenario dirty-cone plans, shared by every corner of a
  // scenario (the cone depends only on the annotated nets).  Scenarios
  // that annotate the same net set — the common shape from scenario
  // generators, which emit many height/offset variants per victim —
  // share one plan: the cone is a pure function of the annotated nets,
  // and plan construction is expensive enough to rival evaluation on
  // small-cone sweeps.  plan_of[s] maps a scenario to its unique plan.
  std::vector<DeltaPlan> plans;
  std::vector<size_t> plan_of(n_scenarios);
  {
    std::map<std::vector<int>, size_t> plan_index;
    std::vector<int> key;
    double cone_frac = 0.0;
    double part_frac = 0.0;
    for (size_t s = 0; s < n_scenarios; ++s) {
      key.clear();
      for (const auto& entry : scenarios[s]->entries) {
        key.push_back(netlist_->net_ordinal(entry.net));
      }
      std::sort(key.begin(), key.end());
      key.erase(std::unique(key.begin(), key.end()), key.end());
      const auto [it, fresh] = plan_index.try_emplace(key, plans.size());
      if (fresh) plans.push_back(delta_plan(*scenarios[s]));
      plan_of[s] = it->second;
      cone_frac += static_cast<double>(plans[plan_of[s]].forward.size()) /
                   static_cast<double>(std::max<size_t>(vertex_count(), 1));
      part_frac +=
          static_cast<double>(plans[plan_of[s]].partitions.size()) /
          static_cast<double>(std::max<size_t>(partitions_.size(), 1));
    }
    r.prune_stats_.dirty_vertex_fraction =
        cone_frac / static_cast<double>(n_scenarios);
    r.prune_stats_.dirty_partition_fraction =
        part_frac / static_cast<double>(n_scenarios);
  }

  // Result storage.
  r.status_.assign(n_points, spec.endpoint_only
                                 ? SweepResult::PointStatus::kSummary
                                 : SweepResult::PointStatus::kFull);
  if (spec.endpoint_only) {
    // Summary storage is an endpoint-only concern: full-state results
    // answer every accessor from their TimingStates (pruning only
    // needs bounds_, allocated below).
    r.worst_slacks_.assign(n_points, kInf);
    r.critical_.assign(n_points, {});
    r.endpoint_arrivals_.assign(n_points * n_endpoints * 2, -kInf);
  }
  if (!spec.endpoint_only) r.states_.assign(n_points, TimingState{});

  // Evaluation order: ascending points, or — under pruning — points
  // sorted most-critical-first by their slack lower bound, with
  // cone-misses-every-endpoint points recorded exactly from the
  // baseline up front.
  std::vector<size_t> order;
  order.reserve(n_points);
  // A streaming caller (scengen's generated sweep) seeds the running
  // worst slack with the worst seen in earlier chunks; admission is
  // strictly `bound > worst_seen`, so a seed that is itself an attained
  // slack never prunes the global argmin or its ties.
  double worst_seen = prune ? spec.prune_seed_slack : kInf;
  if (prune) {
    r.bounds_.assign(n_points, -kInf);
    // Per-corner baseline endpoint summaries feed bounds and reuse.
    std::vector<double> base_ws(n_corners);
    std::vector<WorstEndpoint> base_we(n_corners);
    std::vector<double> base_ep_slack(n_corners * n_endpoints, kInf);
    for (size_t c = 0; c < n_corners; ++c) {
      base_ws[c] = worst_slack_in(baselines[c]);
      base_we[c] = worst_endpoint_in(baselines[c]);
      for (size_t e = 0; e < n_endpoints; ++e) {
        const int v = ports_[static_cast<size_t>(endpoint_ports_[e])].vertex;
        double best = kInf;
        for (size_t rf = 0; rf < 2; ++rf) {
          const auto& t = baselines[c][static_cast<size_t>(v)].timing[rf];
          if (t.valid && std::isfinite(t.required)) {
            best = std::min(best, t.slack());
          }
        }
        base_ep_slack[c * n_endpoints + e] = best;
      }
    }
    // Conservative per-(corner, scenario) push-out bound: how much
    // later any arrival inside the cone can get versus the corner
    // baseline, from the annotation magnitudes.  At every annotated net
    // edge the equivalent-waveform fit replaces the baseline (arrival,
    // slew) with values inside the noisy waveform's envelope, so the
    // arrival push-out is bounded by (last 50%-crossing − baseline
    // arrival) and the slew degradation by (10–90% envelope span −
    // baseline slew); the ×3 margin covers fit overshoot and
    // slew-degradation amplification through downstream NLDM stages —
    // an engineering margin (validated against prune-off sweeps in
    // tests, monitored by PruneStats::min_bound_gap), not a formal
    // proof: a library with delay-vs-slew table slopes compounding
    // past the margin could in principle defeat it.
    // Per net the worst edge bounds any single path (a path crosses one
    // edge of a net); annotated nets sum, so overlapping cones compose.
    // A bump that never comes near the victim transition contributes ~0
    // — exactly the paper's observation that aggressor alignment
    // decides whether a bump matters at all.
    const double vdd = library_->nom_voltage;
    auto push_out_bound = [&](const NoiseScenario& scenario,
                              const TimingState& baseline,
                              const Corner& corner) {
      double total = 0.0;
      for (const auto& entry : scenario.entries) {
        const auto& w = entry.annotation.waveform;
        if (w.size() == 0) continue;
        const double t_begin = w.times().front();
        const double t_end = w.times().back();
        const auto last50 = w.last_crossing(0.5 * vdd);
        const bool falling =
            entry.annotation.polarity == wave::Polarity::kFalling;
        const auto span_from =
            w.first_crossing((falling ? 0.9 : 0.1) * vdd);
        const auto span_to = w.last_crossing((falling ? 0.1 : 0.9) * vdd);
        const double span =
            span_from.has_value() && span_to.has_value()
                ? std::max(0.0, *span_to - *span_from)
                : t_end - t_begin;  // never crosses: whole record
        const size_t rf = falling ? static_cast<size_t>(RiseFall::kFall)
                                  : static_cast<size_t>(RiseFall::kRise);
        const int ord = netlist_->net_ordinal(entry.net);
        double worst_edge = 0.0;
        for (const uint32_t ei : edges_of_net_[static_cast<size_t>(ord)]) {
          const auto& e = net_edges_[ei];
          if (e.sink_pin == nullptr) continue;  // ports take no Γeff fit
          const auto& drv = baseline[static_cast<size_t>(e.from)].timing[rf];
          if (!drv.valid) continue;
          const double arr =
              drv.arrival +
              net_parasitics_[static_cast<size_t>(e.net)].second *
                  corner.wire_delay_scale;
          const double d_arrival =
              std::max(0.0, (last50.has_value() ? *last50 : t_end) - arr);
          const double d_slew = std::max(0.0, span - drv.slew);
          worst_edge = std::max(worst_edge, 3.0 * (d_arrival + d_slew));
        }
        total += worst_edge;
      }
      return total;
    };
    std::vector<double> push_out(n_points);
    for (size_t c = 0; c < n_corners; ++c) {
      for (size_t s = 0; s < n_scenarios; ++s) {
        push_out[c * n_scenarios + s] =
            push_out_bound(*scenarios[s], baselines[c], r.corners_[c]);
      }
    }
    for (size_t c = 0; c < n_corners; ++c) {
      for (size_t s = 0; s < n_scenarios; ++s) {
        const size_t p = c * n_scenarios + s;
        if (plans[plan_of[s]].endpoints.empty() && spec.endpoint_only) {
          // The cone misses every endpoint, so every endpoint summary
          // of this point IS the corner baseline's — recorded exactly,
          // no propagation (the hierarchical-reuse fast path).  Only in
          // endpoint-only mode: a full-state result must materialize
          // the point (in-cone internal vertices DO differ from the
          // baseline), so there it takes the normal route — its bound
          // equals its exact worst slack, so it still prunes whenever
          // it cannot matter.
          r.status_[p] = SweepResult::PointStatus::kSummary;
          summarize(p, baselines[c]);
          r.bounds_[p] = base_ws[c];  // exact, not just a bound
          worst_seen = std::min(worst_seen, base_ws[c]);
          ++r.prune_stats_.reused;
          continue;
        }
        // Lower bound on the point's worst slack: endpoints outside the
        // cone keep their exact baseline slack; endpoints inside it can
        // degrade by at most the scenario's push-out bound.
        double in_min = kInf;
        double out_min = kInf;
        size_t k = 0;
        for (size_t e = 0; e < n_endpoints; ++e) {
          const bool inside = k < plans[plan_of[s]].endpoints.size() &&
                              plans[plan_of[s]].endpoints[k] ==
                                  static_cast<int32_t>(e);
          if (inside) {
            ++k;
            in_min = std::min(in_min, base_ep_slack[c * n_endpoints + e]);
          } else {
            out_min = std::min(out_min, base_ep_slack[c * n_endpoints + e]);
          }
        }
        r.bounds_[p] = std::min(out_min, in_min - push_out[p]);
        order.push_back(p);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return r.bounds_[a] < r.bounds_[b];
    });
  } else {
    for (size_t p = 0; p < n_points; ++p) order.push_back(p);
  }

  // Wave size: everything at once in full mode, the endpoint chunk in
  // endpoint-only mode — but small waves under pruning, so the
  // worst-seen slack tightens between waves and the tail can early-out.
  size_t chunk = spec.endpoint_only
                     ? (spec.endpoint_chunk != 0
                            ? spec.endpoint_chunk
                            : std::max<size_t>(4 * pool->size(), 64))
                     : n_points;
  if (prune) chunk = std::min(chunk, std::max<size_t>(2 * pool->size(), 8));
  chunk = std::max<size_t>(chunk, 1);

  std::vector<TimingState> wave_buf;
  std::vector<EvalContext> wave_ctx;
  std::vector<const TimingState*> wave_base;
  std::vector<const StaEngine::DeltaPlan*> wave_plans;
  std::vector<size_t> wave_points;
  double gap_sum = 0.0;
  double gap_min = kInf;

  size_t next = 0;
  while (next < order.size()) {
    // Admit the next wave.  Bounds are sorted ascending and worst_seen
    // only decreases, so the first unbeatable point prunes the whole
    // tail.
    wave_points.clear();
    while (next < order.size() && wave_points.size() < chunk) {
      const size_t p = order[next];
      if (prune && r.bounds_[p] > worst_seen) break;
      wave_points.push_back(p);
      ++next;
    }
    if (wave_points.empty()) break;
    const size_t n = wave_points.size();
    if (wave_buf.size() < n) wave_buf.resize(n);
    wave_ctx.assign(n, EvalContext{});
    wave_base.assign(n, nullptr);
    wave_plans.assign(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      const size_t p = wave_points[i];
      wave_ctx[i] = contexts[p];
      wave_base[i] = &baselines[p / n_scenarios];
      wave_plans[i] = &plans[plan_of[p % n_scenarios]];
    }
    if (spec.delta && lanes > 1) {
      // Lane-parallel: compatible points of the wave share one SoA
      // graph walk.  Bitwise identical to the scalar branch below.
      evaluate_points_delta_lanes(std::span<TimingState>(wave_buf.data(), n),
                                  wave_ctx, wave_base, wave_plans, lanes,
                                  pool, wss);
    } else if (spec.delta) {
      evaluate_points_delta(std::span<TimingState>(wave_buf.data(), n),
                            wave_ctx, wave_base, wave_plans, pool, wss);
    } else {
      evaluate_points(std::span<TimingState>(wave_buf.data(), n), wave_ctx,
                      pool, wss, spec.shard, spec.wide_partition_threshold);
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t p = wave_points[i];
      const double ws = worst_slack_in(wave_buf[i]);
      worst_seen = std::min(worst_seen, ws);
      if (prune) {
        const double gap = ws - r.bounds_[p];
        gap_sum += gap;
        gap_min = std::min(gap_min, gap);
      }
      if (spec.endpoint_only) {
        summarize(p, wave_buf[i]);
      } else {
        r.states_[p] = std::move(wave_buf[i]);
        wave_buf[i] = TimingState{};
      }
      ++r.prune_stats_.evaluated;
    }
  }
  // Everything not admitted is pruned: its bound proved it cannot beat
  // the final worst slack.
  for (; next < order.size(); ++next) {
    r.status_[order[next]] = SweepResult::PointStatus::kPruned;
    ++r.prune_stats_.pruned;
  }
  if (r.prune_stats_.evaluated > 0 && prune) {
    r.prune_stats_.mean_bound_gap =
        gap_sum / static_cast<double>(r.prune_stats_.evaluated);
    r.prune_stats_.min_bound_gap = gap_min;
  }
  return r;
}

}  // namespace waveletic::sta
