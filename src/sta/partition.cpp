#include "sta/partition.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace waveletic::sta {
namespace {

/// Union-find with union-by-size and path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int v) {
    auto x = static_cast<size_t>(v);
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return static_cast<int>(x);
  }

  [[nodiscard]] size_t set_size(int root) const {
    return size_[static_cast<size_t>(root)];
  }

  /// Unites the sets of a and b; returns false when already united.
  bool unite(int a, int b) {
    int ra = find(a);
    int rb = find(b);
    if (ra == rb) return false;
    // Deterministic tie-break: keep the smaller root id as the
    // representative when sizes tie, so the result is a pure function
    // of the input order.
    if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)] ||
        (size_[static_cast<size_t>(ra)] == size_[static_cast<size_t>(rb)] &&
         rb < ra)) {
      std::swap(ra, rb);
    }
    parent_[static_cast<size_t>(rb)] = static_cast<size_t>(ra);
    size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
    return true;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

void push_unique_sorted(std::vector<uint32_t>& v, uint32_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

}  // namespace

PartitionSet PartitionSet::build(size_t num_vertices,
                                 std::span<const int> level,
                                 std::span<const PartitionEdge> edges,
                                 const PartitionOptions& options) {
  util::require(level.size() == num_vertices,
                "PartitionSet: level array size ", level.size(),
                " does not match ", num_vertices, " vertices");
  const size_t max_size =
      options.max_partition_vertices != 0
          ? options.max_partition_vertices
          : std::max<size_t>(32, num_vertices / 16);

  UnionFind uf(num_vertices);
  // Pass 1: every non-candidate edge binds its endpoints.
  for (const auto& e : edges) {
    if (!e.cut_candidate) uf.unite(e.from, e.to);
  }
  // Pass 2: balance-aware greedy re-merge across cut candidates —
  // always the smallest feasible merge first — while the merged block
  // stays under the cap.  An in-order walk can grow one block to the
  // cap and strand single-gate fragments behind it (cap-vs-1 shard
  // skew); picking the globally smallest merged size keeps block sizes
  // near-uniform.  The lazy min-heap stays deterministic: set sizes
  // only grow, so a stale entry re-inserts under its current (strictly
  // larger) key, infeasible entries can never become feasible again,
  // and ties break by edge index — a pure function of the input order.
  {
    using QueueEntry = std::pair<size_t, size_t>;  // (merged size, edge idx)
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        feasible;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edges[i].cut_candidate) continue;
      const int ra = uf.find(edges[i].from);
      const int rb = uf.find(edges[i].to);
      if (ra == rb) continue;
      const size_t merged = uf.set_size(ra) + uf.set_size(rb);
      if (merged <= max_size) feasible.push({merged, i});
    }
    while (!feasible.empty()) {
      const auto [size_when_pushed, i] = feasible.top();
      feasible.pop();
      const int ra = uf.find(edges[i].from);
      const int rb = uf.find(edges[i].to);
      if (ra == rb) continue;
      const size_t merged = uf.set_size(ra) + uf.set_size(rb);
      if (merged > max_size) continue;
      if (merged != size_when_pushed) {
        feasible.push({merged, i});  // stale: re-key and retry later
        continue;
      }
      uf.unite(ra, rb);
    }
  }

  // Preliminary blocks, numbered by first (smallest) member vertex.
  std::vector<int> block_of(num_vertices, -1);
  std::vector<int> root_to_block(num_vertices, -1);
  int n_blocks = 0;
  for (size_t v = 0; v < num_vertices; ++v) {
    const int root = uf.find(static_cast<int>(v));
    int& block = root_to_block[static_cast<size_t>(root)];
    if (block < 0) block = n_blocks++;
    block_of[v] = block;
  }

  // Pass 3: the union-find quotient need not be acyclic — block A can
  // feed block B at one level and be fed by it at another, which would
  // deadlock coarse (one-task-per-partition) scheduling.  Collapse
  // strongly-connected components of the quotient (iterative Tarjan,
  // deterministic) so the final partition graph is a DAG (each
  // partition is "convex": no path leaves it and comes back).
  std::vector<std::vector<int>> block_adj(static_cast<size_t>(n_blocks));
  for (const auto& e : edges) {
    const int a = block_of[static_cast<size_t>(e.from)];
    const int b = block_of[static_cast<size_t>(e.to)];
    if (a != b) block_adj[static_cast<size_t>(a)].push_back(b);
  }
  std::vector<int> scc_of(static_cast<size_t>(n_blocks), -1);
  {
    std::vector<int> index(static_cast<size_t>(n_blocks), -1);
    std::vector<int> low(static_cast<size_t>(n_blocks), 0);
    std::vector<char> on_stack(static_cast<size_t>(n_blocks), 0);
    std::vector<int> stack;
    std::vector<std::pair<int, size_t>> dfs;  // (block, next child)
    int next_index = 0;
    int scc_count = 0;
    for (int s = 0; s < n_blocks; ++s) {
      if (index[static_cast<size_t>(s)] != -1) continue;
      dfs.emplace_back(s, 0);
      while (!dfs.empty()) {
        const int u = dfs.back().first;
        size_t& ci = dfs.back().second;
        if (ci == 0) {
          index[static_cast<size_t>(u)] = low[static_cast<size_t>(u)] =
              next_index++;
          stack.push_back(u);
          on_stack[static_cast<size_t>(u)] = 1;
        }
        if (ci < block_adj[static_cast<size_t>(u)].size()) {
          const int child = block_adj[static_cast<size_t>(u)][ci++];
          if (index[static_cast<size_t>(child)] == -1) {
            dfs.emplace_back(child, 0);
          } else if (on_stack[static_cast<size_t>(child)]) {
            low[static_cast<size_t>(u)] =
                std::min(low[static_cast<size_t>(u)],
                         index[static_cast<size_t>(child)]);
          }
          continue;
        }
        if (low[static_cast<size_t>(u)] == index[static_cast<size_t>(u)]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = 0;
            scc_of[static_cast<size_t>(w)] = scc_count;
            if (w == u) break;
          }
          ++scc_count;
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const int parent = dfs.back().first;
          low[static_cast<size_t>(parent)] =
              std::min(low[static_cast<size_t>(parent)],
                       low[static_cast<size_t>(u)]);
        }
      }
    }
  }

  PartitionSet out;
  out.partition_of_.assign(num_vertices, -1);
  // Final partitions = SCC groups, renumbered by first member vertex.
  std::vector<int> scc_to_part(static_cast<size_t>(n_blocks), -1);
  for (size_t v = 0; v < num_vertices; ++v) {
    const int scc = scc_of[static_cast<size_t>(block_of[v])];
    int& part = scc_to_part[static_cast<size_t>(scc)];
    if (part < 0) {
      part = static_cast<int>(out.parts_.size());
      out.parts_.emplace_back();
    }
    out.partition_of_[v] = part;
    out.parts_[static_cast<size_t>(part)].vertices.push_back(
        static_cast<int>(v));
  }
  // Level-sort each partition's vertices (vertex id is already the
  // secondary key: stable sort of an ascending sequence by level).
  for (auto& p : out.parts_) {
    std::stable_sort(p.vertices.begin(), p.vertices.end(),
                     [&](int a, int b) {
                       return level[static_cast<size_t>(a)] <
                              level[static_cast<size_t>(b)];
                     });
    size_t run = 0;
    int run_level = -1;
    for (const int v : p.vertices) {
      const int l = level[static_cast<size_t>(v)];
      run = l == run_level ? run + 1 : 1;
      run_level = l;
      p.width = std::max(p.width, run);
    }
  }
  // Cross edges → partition DAG + interface set.
  out.is_interface_.assign(num_vertices, 0);
  for (const auto& e : edges) {
    const int pa = out.partition_of_[static_cast<size_t>(e.from)];
    const int pb = out.partition_of_[static_cast<size_t>(e.to)];
    if (pa == pb) continue;
    out.cross_edges_.emplace_back(e.from, e.to);
    out.is_interface_[static_cast<size_t>(e.from)] = 1;
    out.is_interface_[static_cast<size_t>(e.to)] = 1;
    push_unique_sorted(out.parts_[static_cast<size_t>(pb)].predecessors,
                       static_cast<uint32_t>(pa));
    push_unique_sorted(out.parts_[static_cast<size_t>(pa)].successors,
                       static_cast<uint32_t>(pb));
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    if (out.is_interface_[v]) {
      out.interface_vertices_.push_back(static_cast<int>(v));
    }
  }
  return out;
}

PartitionSchedule PartitionSchedule::build(const PartitionSet& partitions,
                                           std::span<const int> level,
                                           size_t wide_threshold) {
  util::require(wide_threshold >= 1,
                "PartitionSchedule: wide_threshold must be >= 1");
  PartitionSchedule out;
  out.wide_threshold_ = wide_threshold;
  out.order_.reserve(partitions.num_vertices());

  // task_of_vertex: the chunk task folding each vertex.
  std::vector<uint32_t> task_of_vertex(partitions.num_vertices(), 0);
  // Intra-partition chaining: remember each partition's task groups per
  // local level so consecutive levels can be chained all-to-all.
  std::vector<std::pair<uint32_t, uint32_t>> intra_edges;

  for (size_t k = 0; k < partitions.size(); ++k) {
    const auto& verts = partitions.vertices(k);
    if (partitions.width(k) <= wide_threshold) {
      // Narrow: one end-to-end task in level order.
      const auto begin = static_cast<uint32_t>(out.order_.size());
      for (const int v : verts) {
        task_of_vertex[static_cast<size_t>(v)] =
            static_cast<uint32_t>(out.tasks_.size());
        out.order_.push_back(v);
      }
      out.tasks_.push_back({static_cast<uint32_t>(k), begin,
                            static_cast<uint32_t>(out.order_.size())});
      continue;
    }
    // Wide: per-level fan-out fallback — split each local level into
    // chunks of ≤ wide_threshold vertices and chain consecutive levels.
    size_t i = 0;
    std::vector<uint32_t> prev_level_tasks;
    while (i < verts.size()) {
      const int l = level[static_cast<size_t>(verts[i])];
      size_t j = i;
      while (j < verts.size() && level[static_cast<size_t>(verts[j])] == l) {
        ++j;
      }
      std::vector<uint32_t> level_tasks;
      for (size_t c = i; c < j; c += wide_threshold) {
        const size_t ce = std::min(j, c + wide_threshold);
        const auto begin = static_cast<uint32_t>(out.order_.size());
        const auto task = static_cast<uint32_t>(out.tasks_.size());
        for (size_t x = c; x < ce; ++x) {
          task_of_vertex[static_cast<size_t>(verts[x])] = task;
          out.order_.push_back(verts[x]);
        }
        out.tasks_.push_back({static_cast<uint32_t>(k), begin,
                              static_cast<uint32_t>(out.order_.size())});
        level_tasks.push_back(task);
      }
      for (const uint32_t a : prev_level_tasks) {
        for (const uint32_t b : level_tasks) intra_edges.emplace_back(a, b);
      }
      prev_level_tasks = std::move(level_tasks);
      i = j;
    }
  }

  const size_t n_tasks = out.tasks_.size();
  out.successors_.assign(n_tasks, {});
  out.rev_successors_.assign(n_tasks, {});
  auto add_edge = [&](uint32_t a, uint32_t b) {
    push_unique_sorted(out.successors_[a], b);
    push_unique_sorted(out.rev_successors_[b], a);
  };
  for (const auto& [a, b] : intra_edges) add_edge(a, b);
  // Cross-partition edges at chunk granularity: the task folding the
  // sink vertex waits for the task folding the source vertex.
  for (const auto& [from, to] : partitions.cross_edges()) {
    const uint32_t a = task_of_vertex[static_cast<size_t>(from)];
    const uint32_t b = task_of_vertex[static_cast<size_t>(to)];
    if (a != b) add_edge(a, b);
  }
  out.indegree_.assign(n_tasks, 0);
  out.rev_indegree_.assign(n_tasks, 0);
  for (size_t t = 0; t < n_tasks; ++t) {
    for (const uint32_t s : out.successors_[t]) ++out.indegree_[s];
    for (const uint32_t s : out.rev_successors_[t]) ++out.rev_indegree_[s];
  }
  // Serial topological order (Kahn, ascending-seeded LIFO).
  std::vector<uint32_t> pending = out.indegree_;
  std::vector<uint32_t> ready;
  for (size_t t = n_tasks; t > 0; --t) {
    if (pending[t - 1] == 0) ready.push_back(static_cast<uint32_t>(t - 1));
  }
  out.serial_order_.reserve(n_tasks);
  while (!ready.empty()) {
    const uint32_t t = ready.back();
    ready.pop_back();
    out.serial_order_.push_back(t);
    for (const uint32_t s : out.successors_[t]) {
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
  util::require(out.serial_order_.size() == n_tasks,
                "PartitionSchedule: task dependency cycle");
  return out;
}

}  // namespace waveletic::sta
