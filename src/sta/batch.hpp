#pragma once

/// \file batch.hpp
/// Batched noise-scenario sweeps — a compatibility shim over the
/// unified Sweep surface (sweep.hpp).
///
/// ScenarioBatch is the historical N-scenario API: one nominal corner,
/// N noise scenarios, one levelized pass.  Since the Sweep redesign it
/// simply builds a SweepSpec (corner axis empty, scenario axis = the
/// added scenarios) and delegates to StaEngine::sweep(), keeping its
/// indexed accessors.  New code should use StaEngine::sweep() directly
/// — it exposes the corner axis, per-point TimingViews, worst_point(),
/// and critical paths.
///
/// Determinism guarantees are inherited from sweep(): scenarios write
/// disjoint TimingStates, each vertex folds its in-edges in a fixed
/// order, and Γeff-memo hits return bitwise what the fit would produce
/// — so batched results are bitwise identical to looped single-thread
/// runs at any thread count.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"
#include "sta/sweep.hpp"

namespace waveletic::util {
class ThreadPool;
}

namespace waveletic::sta {

struct BatchOptions {
  /// Worker threads for the scenario fan-out; ≤ 0 selects the hardware
  /// concurrency.
  int threads = 0;
  /// Share one Γeff memo across all scenarios (recommended; results
  /// are bitwise-identical either way).
  bool share_gamma_cache = true;
  /// Technique override; null uses the engine's configured method.
  const core::EquivalentWaveformMethod* method = nullptr;
  /// Forwarded to SweepSpec::shard — partition-sharded (scenario ×
  /// partition) coarse tasks (default) vs legacy per-level fan-out.
  bool shard = true;
  /// Forwarded to SweepSpec::wide_partition_threshold.
  size_t wide_partition_threshold = kDefaultWidePartitionThreshold;
  /// Forwarded to SweepSpec::endpoint_only: keep only {worst slack,
  /// critical endpoint, endpoint arrivals} per scenario; state() and
  /// timing() then throw.
  bool endpoint_only = false;
  /// Forwarded to SweepSpec::delta — baseline + delta evaluation
  /// (default): one nominal baseline, each scenario re-propagates only
  /// its fanout cone.  Bitwise identical either way.
  bool delta = true;
  /// Forwarded to SweepSpec::prune — scenario pruning.  Pruned
  /// scenarios' accessors throw; worst slack answers stay exact through
  /// result().worst_point().
  PruneMode prune = PruneMode::kOff;
  /// Forwarded to SweepSpec::lanes — SIMD lane width for delta
  /// evaluation: 0 auto (AVX2 → 4, else scalar), 1 forces scalar,
  /// 4 forces four-wide lane blocks.  Bitwise identical either way.
  int lanes = 0;
};

/// Sweeps N noise scenarios over one engine in a single levelized pass.
///
///   ScenarioBatch batch(engine);
///   for (...) batch.add(make_aggressor_scenario(...));
///   batch.run();
///   batch.worst_slack(i); batch.timing(i, "y", RiseFall::kFall);
///
/// The engine's own constraints (inputs, loads, parasitics, required
/// times) apply to every scenario; only the noise annotations vary.
class ScenarioBatch {
 public:
  explicit ScenarioBatch(StaEngine& engine, BatchOptions options = {});
  ~ScenarioBatch();  // out of line: ThreadPool is forward-declared

  /// Adds a scenario; returns its index.
  size_t add(NoiseScenario scenario);
  [[nodiscard]] size_t size() const noexcept {
    return spec_.scenarios.size();
  }

  /// Prepares the engine once and evaluates every scenario in one
  /// levelized multi-threaded pass (via StaEngine::sweep()).
  void run();

  // -- results (run() must have completed) --------------------------------
  [[nodiscard]] const TimingState& state(size_t scenario) const;
  [[nodiscard]] const PinTiming& timing(size_t scenario, PinId pin,
                                        RiseFall rf) const;
  [[nodiscard]] const PinTiming& timing(size_t scenario,
                                        const std::string& pin,
                                        RiseFall rf) const;
  [[nodiscard]] double worst_slack(size_t scenario) const;
  [[nodiscard]] const NoiseScenario& scenario(size_t i) const;

  /// The underlying sweep result (run() must have completed).
  [[nodiscard]] const SweepResult& result() const;

  /// Γeff memo statistics of the last run (zeros when caching is off
  /// or before the first run).
  [[nodiscard]] GammaCache::Stats cache_stats() const noexcept {
    return result_ ? result_->cache_stats() : GammaCache::Stats{};
  }

 private:
  StaEngine* engine_;
  BatchOptions options_;
  SweepSpec spec_;  ///< scenario axis accumulates here; corner axis empty
  std::optional<SweepResult> result_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< persists across run()s
};

}  // namespace waveletic::sta
