#pragma once

/// \file batch.hpp
/// Batched noise-scenario sweeps over one prepared STA graph.
///
/// A crosstalk sign-off sweeps many noise scenarios — aggressor
/// alignments, aggressor strengths, switching-window corners — over the
/// same netlist.  Running them one engine-run at a time repeats the
/// levelized walk N times and refits Γeff for every (net, ramp, noise)
/// triple from scratch.  ScenarioBatch instead prepares the engine
/// once and sweeps all scenarios in ONE levelized pass: the outer loop
/// walks the stored topological levels, and a work-stealing-free thread
/// pool processes every (scenario, vertex-of-level) pair in parallel.
/// All scenarios share a thread-safe Γeff memo (GammaCache), so fits
/// recur at most once per distinct (net edge, input ramp, annotation).
///
/// Determinism: scenarios write disjoint TimingStates, each vertex
/// folds its in-edges in a fixed order, and cache hits return bitwise
/// what the fit would produce — so batched results are bitwise
/// identical to looped single-thread runs at any thread count.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"

namespace waveletic::noise {
struct CaseWaveforms;
}
namespace waveletic::util {
class ThreadPool;
}

namespace waveletic::sta {

/// One named noise scenario: per-net noisy-waveform annotations.
/// During a batch run they overlay the engine-level annotations:
/// engine annotations apply to every scenario, and a scenario's own
/// annotation wins on nets both touch.
struct NoiseScenario {
  std::string name;
  std::map<std::string, NoiseAnnotation> annotations;

  /// Annotates `net`; the memoization key is derived from the waveform
  /// content, so identical annotations across scenarios share Γeff fits.
  void annotate(const std::string& net, wave::Waveform waveform,
                wave::Polarity polarity);
};

/// Builds a scenario modelling one aggressor coupling event on `net`:
/// the clean ramp of the victim transition (as propagated by a clean
/// run: `victim_arrival`/`victim_slew`) plus a Gaussian coupling bump.
/// `alignment` offsets the bump centre from the victim 50% crossing
/// [s]; `strength` is the bump peak [V] (the aggressor coupling
/// magnitude).  This is the synthetic stand-in for the golden
/// noise::NoiseRunner sweep, parameterized the same way (aggressor
/// alignment/strength).
[[nodiscard]] NoiseScenario make_aggressor_scenario(
    const std::string& net, double victim_arrival, double victim_slew,
    double vdd, wave::Polarity polarity, double alignment, double strength,
    size_t samples = 512);

/// Builds a scenario from a golden noise::NoiseRunner case: annotates
/// `net` with the simulated noisy waveform at the victim receiver input.
[[nodiscard]] NoiseScenario scenario_from_case(
    const std::string& net, const noise::CaseWaveforms& case_waveforms);

struct BatchOptions {
  /// Worker threads for the (scenario × vertex) fan-out; ≤ 0 selects
  /// the hardware concurrency.
  int threads = 0;
  /// Share one Γeff memo across all scenarios (recommended; results
  /// are bitwise-identical either way).
  bool share_gamma_cache = true;
  /// Technique override; null uses the engine's configured method.
  const core::EquivalentWaveformMethod* method = nullptr;
};

/// Sweeps N noise scenarios over one engine in a single levelized pass.
///
///   ScenarioBatch batch(engine);
///   for (...) batch.add(make_aggressor_scenario(...));
///   batch.run();
///   batch.worst_slack(i); batch.timing(i, "y", RiseFall::kFall);
///
/// The engine's own constraints (inputs, loads, parasitics, required
/// times) apply to every scenario; only the noise annotations vary.
class ScenarioBatch {
 public:
  explicit ScenarioBatch(StaEngine& engine, BatchOptions options = {});
  ~ScenarioBatch();  // out of line: ThreadPool is forward-declared

  /// Adds a scenario; returns its index.
  size_t add(NoiseScenario scenario);
  [[nodiscard]] size_t size() const noexcept { return scenarios_.size(); }

  /// Prepares the engine once and evaluates every scenario in one
  /// levelized multi-threaded pass.
  void run();

  // -- results (run() must have completed) --------------------------------
  [[nodiscard]] const TimingState& state(size_t scenario) const;
  [[nodiscard]] const PinTiming& timing(size_t scenario,
                                        const std::string& pin,
                                        RiseFall rf) const;
  [[nodiscard]] double worst_slack(size_t scenario) const;
  [[nodiscard]] const NoiseScenario& scenario(size_t i) const;

  /// Γeff memo statistics of the last run (zeros when caching is off).
  [[nodiscard]] GammaCache::Stats cache_stats() const noexcept {
    return cache_.stats();
  }

 private:
  StaEngine* engine_;
  BatchOptions options_;
  std::vector<NoiseScenario> scenarios_;
  std::vector<TimingState> states_;
  GammaCache cache_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< persists across run()s
  bool ran_ = false;
};

}  // namespace waveletic::sta
