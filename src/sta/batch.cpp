#include "sta/batch.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace waveletic::sta {

ScenarioBatch::ScenarioBatch(StaEngine& engine, BatchOptions options)
    : engine_(&engine), options_(options) {}

ScenarioBatch::~ScenarioBatch() = default;

size_t ScenarioBatch::add(NoiseScenario scenario) {
  spec_.scenarios.push_back(std::move(scenario));
  result_.reset();
  return spec_.scenarios.size() - 1;
}

void ScenarioBatch::run() {
  util::require(!spec_.scenarios.empty(), "ScenarioBatch: no scenarios added");
  const size_t want = options_.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(options_.threads);
  if (pool_ == nullptr || pool_->size() != want) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<int>(want));
  }
  spec_.threads = options_.threads;
  spec_.share_gamma_cache = options_.share_gamma_cache;
  spec_.method = options_.method;
  spec_.shard = options_.shard;
  spec_.wide_partition_threshold = options_.wide_partition_threshold;
  spec_.endpoint_only = options_.endpoint_only;
  spec_.delta = options_.delta;
  spec_.prune = options_.prune;
  spec_.lanes = options_.lanes;
  spec_.pool = pool_.get();
  // corners stays empty: one point per scenario, at the engine corner.
  result_ = engine_->sweep(spec_);
}

const SweepResult& ScenarioBatch::result() const {
  util::require(result_.has_value(), "ScenarioBatch: run() first");
  return *result_;
}

const TimingState& ScenarioBatch::state(size_t scenario) const {
  util::require(result_.has_value(), "ScenarioBatch: run() first");
  util::require(scenario < spec_.scenarios.size(),
                "ScenarioBatch: scenario ", scenario, " out of range");
  return result_->state(scenario);
}

const PinTiming& ScenarioBatch::timing(size_t scenario, PinId pin,
                                       RiseFall rf) const {
  return engine_->timing_in(state(scenario), pin, rf);
}

const PinTiming& ScenarioBatch::timing(size_t scenario,
                                       const std::string& pin,
                                       RiseFall rf) const {
  return engine_->timing_in(state(scenario), pin, rf);
}

double ScenarioBatch::worst_slack(size_t scenario) const {
  util::require(result_.has_value(), "ScenarioBatch: run() first");
  util::require(scenario < spec_.scenarios.size(),
                "ScenarioBatch: scenario ", scenario, " out of range");
  // Via the SweepResult so endpoint-only batches work too.
  return result_->worst_slack(scenario);
}

const NoiseScenario& ScenarioBatch::scenario(size_t i) const {
  util::require(i < spec_.scenarios.size(), "ScenarioBatch: scenario ", i,
                " out of range");
  return spec_.scenarios[i];
}

}  // namespace waveletic::sta
