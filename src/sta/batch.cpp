#include "sta/batch.hpp"

#include <cmath>
#include <sstream>

#include "noise/scenario.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {

void NoiseScenario::annotate(const std::string& net, wave::Waveform waveform,
                             wave::Polarity polarity) {
  const uint64_t key = noise_waveform_key(waveform, polarity);
  annotations.insert_or_assign(
      net, NoiseAnnotation{std::move(waveform), polarity, key});
}

NoiseScenario make_aggressor_scenario(const std::string& net,
                                      double victim_arrival,
                                      double victim_slew, double vdd,
                                      wave::Polarity polarity,
                                      double alignment, double strength,
                                      size_t samples) {
  util::require(victim_slew > 0.0,
                "make_aggressor_scenario: non-positive victim slew");
  util::require(samples >= 8, "make_aggressor_scenario: too few samples");
  const auto ramp =
      wave::Ramp::from_arrival_slew(victim_arrival, victim_slew, vdd);
  const auto clean = ramp.denormalized(polarity, samples);
  std::vector<double> t(clean.times().begin(), clean.times().end());
  std::vector<double> v(clean.values().begin(), clean.values().end());
  // Gaussian coupling bump centred `alignment` after the victim 50%
  // crossing, width tied to the victim transition.  A bump that pushes
  // against the transition direction delays the final crossing — the
  // worst-case aggressor of the paper's Figure 1 testbench.
  const double center = victim_arrival + alignment;
  const double sigma = 0.5 * victim_slew;
  const double sign = polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  for (size_t i = 0; i < t.size(); ++i) {
    v[i] += sign * strength *
            std::exp(-std::pow((t[i] - center) / sigma, 2.0));
  }
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@align=" << alignment * 1e12
       << "ps,strength=" << strength << "V";
  s.name = name.str();
  s.annotate(net, wave::Waveform(std::move(t), std::move(v)), polarity);
  return s;
}

NoiseScenario scenario_from_case(const std::string& net,
                                 const noise::CaseWaveforms& case_waveforms) {
  NoiseScenario s;
  std::ostringstream name;
  name << net << "@offset=" << case_waveforms.aggressor_offset * 1e12
       << "ps";
  s.name = name.str();
  s.annotate(net, case_waveforms.noisy_in, case_waveforms.in_polarity);
  return s;
}

ScenarioBatch::ScenarioBatch(StaEngine& engine, BatchOptions options)
    : engine_(&engine), options_(options) {}

ScenarioBatch::~ScenarioBatch() = default;

size_t ScenarioBatch::add(NoiseScenario scenario) {
  scenarios_.push_back(std::move(scenario));
  ran_ = false;
  return scenarios_.size() - 1;
}

void ScenarioBatch::run() {
  util::require(!scenarios_.empty(), "ScenarioBatch: no scenarios added");
  engine_->prepare();
  cache_.clear();

  const size_t n_scenarios = scenarios_.size();
  states_.assign(n_scenarios, TimingState{});

  // Overlay semantics: engine-level annotations apply to every
  // scenario as a fallback, with the scenario's own annotations taking
  // precedence on nets both touch (no waveform copies — the engine map
  // is consulted through EvalContext::base_noise).
  const auto* base_noise =
      engine_->noisy_nets().empty() ? nullptr : &engine_->noisy_nets();

  std::vector<StaEngine::EvalContext> contexts(n_scenarios);
  for (size_t s = 0; s < n_scenarios; ++s) {
    contexts[s].noise = &scenarios_[s].annotations;
    contexts[s].base_noise = base_noise;
    contexts[s].method = options_.method != nullptr
                             ? options_.method
                             : &engine_->noise_method();
    contexts[s].cache = options_.share_gamma_cache ? &cache_ : nullptr;
    engine_->init_state(states_[s]);
  }

  const size_t want = options_.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(options_.threads);
  if (pool_ == nullptr || pool_->size() != want) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<int>(want));
  }
  util::ThreadPool& pool = *pool_;
  const auto& levels = engine_->levels();

  // ONE levelized pass for all scenarios: per level, every
  // (scenario, vertex) pair is independent — scenarios write disjoint
  // states and vertices of one level only read lower levels.
  for (const auto& level : levels) {
    const size_t m = level.size();
    pool.parallel_for(m * n_scenarios, [&](size_t idx) {
      const size_t s = idx / m;
      const int v = level[idx % m];
      engine_->forward_vertex(v, states_[s], contexts[s]);
    });
  }
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const auto& level = *it;
    const size_t m = level.size();
    pool.parallel_for(m * n_scenarios, [&](size_t idx) {
      const size_t s = idx / m;
      const int v = level[idx % m];
      engine_->backward_vertex(v, states_[s]);
    });
  }
  ran_ = true;
}

const TimingState& ScenarioBatch::state(size_t scenario) const {
  util::require(ran_, "ScenarioBatch: run() first");
  util::require(scenario < states_.size(), "ScenarioBatch: scenario ",
                scenario, " out of range");
  return states_[scenario];
}

const PinTiming& ScenarioBatch::timing(size_t scenario,
                                       const std::string& pin,
                                       RiseFall rf) const {
  return engine_->timing_in(state(scenario), pin, rf);
}

double ScenarioBatch::worst_slack(size_t scenario) const {
  return engine_->worst_slack_in(state(scenario));
}

const NoiseScenario& ScenarioBatch::scenario(size_t i) const {
  util::require(i < scenarios_.size(), "ScenarioBatch: scenario ", i,
                " out of range");
  return scenarios_[i];
}

}  // namespace waveletic::sta
