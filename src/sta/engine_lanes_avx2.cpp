// AVX2 (W=4) instantiation of the lane-block walker.  Compiled with
// -mavx2 (see CMakeLists.txt) but without -mfma and with
// -ffp-contract=off: per lane every vector op is the scalar IEEE
// operation, so this instantiation is bitwise identical to the W=1
// oracle in engine_lanes.cpp.  Reached exclusively through the
// lane_width_available(4) dispatch in evaluate_points_delta_lanes().
#if defined(__AVX2__)

#include "sta/engine_lanes_impl.hpp"

namespace waveletic::sta {

template void StaEngine::evaluate_delta_block<4>(
    const LaneBlock& block, std::span<TimingState> states,
    std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines, wave::Workspace* workspace,
    LaneScratch& s) const;

}  // namespace waveletic::sta

#endif  // __AVX2__
