#pragma once

/// \file scengen.hpp
/// Streaming combinatorial scenario generation with FRAME-style
/// feasibility filtering, over single AND compound aggressor events.
///
/// The paper propagates one hand-built noisy waveform; a crosstalk
/// sign-off wants the whole attack surface — every plausible
/// (victim, aggressor-set, alignment, strength) coupling event.
/// Enumerated eagerly that cross product explodes: 256 coupling pairs ×
/// 64 alignments × 64 strengths is already a million scenarios, each
/// carrying a sampled waveform — and compound events (k-subsets of the
/// pairs superposing their bumps, the paper's multi-aggressor bus) grow
/// it combinatorially on top.  This layer instead materializes points
/// *lazily* — `ScenarioSpace` describes the cross product symbolically
/// (the event axis is enumerated arithmetically through the
/// combinatorial number system, so not even the k-subsets are ever
/// listed), `ScenarioGenerator` pulls one candidate at a time, and
/// `StaEngine::sweep(const GeneratedSweepSpec&)` streams the survivors
/// through the existing baseline + delta + prune pipeline in bounded
/// chunks, so peak memory is one chunk of scenarios plus 40 B/point of
/// endpoint summaries, never the full cross product.
///
/// In front of propagation sit the *feasibility filters* in the spirit
/// of FRAME (PAPERS.md, arxiv 1502.02236 — screen infeasible aggressor
/// combinations before any expensive analysis):
///
///  1. **Timing-window overlap**: a coupling bump at a given alignment
///     is infeasible when its support cannot overlap the victim
///     transition window (a bump that never comes near the transition
///     cannot move any crossing — the paper's alignment observation),
///     or when it falls outside the aggressor's own switching window
///     from the corner baseline (the aggressor cannot switch then).
///     A compound event must pass this per member: every aggressor's
///     bump, offset by the shared alignment from its own victim anchor,
///     must overlap its windows.  With
///     GeneratedSweepSpec::per_corner_windows the windows are re-read
///     from each corner's own baseline (rewindow_scenario_space()).
///  2. **Logical correlation**: a pluggable `CorrelationRule` rejects
///     victim/aggressor combinations that cannot switch simultaneously;
///     the built-in `StructuralCorrelationRule` rejects same-net,
///     same-driver (complementary outputs) and causally-ordered pairs
///     (either net inside the other's transitive fanout cone, via
///     `netlist::Netlist::transitive_fanout_nets`).  For compound
///     events the pairwise rule is *lifted to set semantics*: every
///     member must pass it, every two members must be structurally
///     independent (distinct aggressors, no member's aggressor doubling
///     as another's victim) and pairwise co-switchable — all counted in
///     `correlation_killed` — and on top of that
///     `CorrelationRule::can_switch_set` may reject the aggressor *set*
///     as a whole, counted separately in `GenStats::set_killed`.
///
/// All filters run on candidate *indices* — the scenario waveform is
/// only sampled for points that survive, and whole alignment/strength
/// blocks are skipped arithmetically, so filtering a million-point
/// space costs on the order of events × alignments cheap window tests.
/// `GenStats` reports the per-stage funnel: generated → window-killed →
/// correlation-killed → set-killed → prune-killed → reused/evaluated.
///
/// Surviving points are bitwise identical to eagerly enumerating the
/// same scenarios through `StaEngine::sweep(SweepSpec)`: the generated
/// path *is* that sweep, fed in chunks, with the running worst slack
/// carried across chunks through `SweepSpec::prune_seed_slack`.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "interconnect/coupled.hpp"
#include "sta/sweep.hpp"

namespace waveletic::liberty {
class Library;
}
namespace waveletic::netlist {
class Netlist;
struct Instance;
}  // namespace waveletic::netlist

namespace waveletic::sta {

/// Pin-direction oracle used wherever the library-agnostic netlist
/// needs to know which instance pins drive their nets (fanout cones,
/// driver lookup, victim-sink selection).  Returns true when `pin` of
/// `instance` is an output.
using DrivesPredicate =
    std::function<bool(const netlist::Instance&, const std::string& pin)>;

/// Builds the standard DrivesPredicate from a liberty library: a pin
/// drives iff its library direction is `PinDirection::kOutput`.
/// Unknown cells/pins are treated as non-driving.
[[nodiscard]] DrivesPredicate make_drives_predicate(
    const liberty::Library& library);

/// One victim/aggressor coupling pair of a ScenarioSpace, with the
/// baseline timing windows the feasibility filter tests against.
/// Normally produced by make_scenario_space() from
/// interconnect::CouplingCandidate seeds; hand-construction is fine for
/// tests and custom spaces.
struct ScenarioPair {
  /// Victim net ordinal in the netlist (the annotated net).
  int32_t victim_net = -1;
  /// Aggressor net ordinal (the coupling source; used by correlation
  /// rules — the generated scenario itself annotates only the victim).
  int32_t aggressor_net = -1;
  /// Victim net name — the NoiseScenario annotation target.
  std::string victim_name;
  /// Aggressor net name (diagnostics / reports).
  std::string aggressor_name;
  /// Baseline victim 50% crossing at the chosen sink [s] (bump centres
  /// are offsets from this).
  double victim_arrival = 0.0;
  /// Baseline victim transition time at that sink [s] (sets both the
  /// bump width and the victim overlap window).
  double victim_slew = 0.0;
  /// Earliest instant the aggressor can be switching, from the corner
  /// baseline over both transitions of every pin on the aggressor net
  /// (arrival − slew, minimized) [s].
  double aggressor_window_lo = 0.0;
  /// Latest instant the aggressor can be switching (arrival + slew,
  /// maximized) [s].
  double aggressor_window_hi = 0.0;
  /// Relative coupling strength of this pair (Cm / reference Cm);
  /// multiplies the strength-grid value when the scenario materializes.
  double coupling_scale = 1.0;
  /// Victim anchor pin (full "instance/pin" vertex name) —
  /// rewindow_scenario_space() re-reads the victim timing here under a
  /// different corner.  Empty (hand-built pairs) keeps the stored
  /// windows under re-windowing.
  std::string victim_pin;
  /// Aggressor vertex names (pins on the net, plus the interface-port
  /// vertex when present) whose corner timing envelopes the aggressor
  /// switching window under re-windowing.  Empty keeps the stored
  /// window.
  std::vector<std::string> aggressor_pins;
};

/// Options of make_scenario_space().
struct ScenarioSpaceOptions {
  /// Samples per generated scenario waveform (make_aggressor_scenario's
  /// `samples`; small keeps million-point materialization cheap).
  size_t waveform_samples = 64;
  /// Bump sigma as a fraction of the victim slew — MUST match the
  /// generated waveform shape (make_aggressor_scenario uses 0.5).
  double bump_sigma_factor = 0.5;
  /// Extra slack added to every window-overlap test [s] (0 = exact
  /// envelope overlap; > 0 keeps marginal candidates).
  double window_slop = 0.0;
  /// Reference coupling capacitance [F]: a candidate's coupling_scale
  /// is its cm_total divided by this.
  double cm_reference = 100e-15;
};

/// Bump-shape source of a ScenarioSpace: how the aggressor coupling
/// bump superposed on the victim waveform is synthesized.
enum class BumpShape : uint8_t {
  /// Analytic Gaussian stand-in (sigma = bump_sigma_factor ×
  /// victim_slew) — the historical default, bitwise compatible with
  /// make_aggressor_scenario().
  kGaussian = 0,
  /// Physically derived shape from a coupled-line transient
  /// (interconnect::coupled_bump_shape over the space's coupled_pair,
  /// Cm scaled per pair by coupling_scale); cached per (pair, strength)
  /// inside the generator so repeated alignments reuse one waveform.
  kCoupledLine = 1,
};

/// Shape name ("gaussian" / "coupled_line") for reports and bench keys.
[[nodiscard]] const char* to_string(BumpShape shape) noexcept;

/// The symbolic cross product a generated sweep explores:
/// compound events × aggressor-alignment grid × strength grid, where an
/// *event* is a k-subset of the coupling pairs (k ≤ max_aggressors)
/// whose bumps superpose in one scenario.  Never materialized —
/// ScenarioGenerator walks it lazily, one candidate at a time, in
/// lexicographic (event, alignment, strength) order.  Events are
/// ordered singletons-first (event e < pairs.size() is exactly pair e,
/// so a max_aggressors == 1 space is index- and funnel-identical to the
/// historical single-aggressor generator), then all 2-subsets, then
/// 3-subsets, …, each k-block in lexicographic combination order;
/// event_members() decodes an event arithmetically (combinatorial
/// number system), so not even the subset list is ever materialized.
struct ScenarioSpace {
  /// Victim/aggressor coupling pairs (the event-member axis).
  std::vector<ScenarioPair> pairs;
  /// Bump-centre offsets from each member pair's victim arrival [s]
  /// (one shared alignment value per candidate).
  std::vector<double> alignments;
  /// Bump peak amplitudes [V] (scaled per member pair by
  /// coupling_scale).
  std::vector<double> strengths;
  /// Supply voltage of the generated waveforms [V].
  double vdd = 1.2;
  /// Victim transition polarity the bumps push against.
  wave::Polarity polarity = wave::Polarity::kFalling;
  /// Samples per generated scenario waveform.
  size_t waveform_samples = 64;
  /// Bump sigma as a fraction of the victim slew (see
  /// ScenarioSpaceOptions::bump_sigma_factor).
  double bump_sigma_factor = 0.5;
  /// Extra slack on every window-overlap test [s].
  double window_slop = 0.0;
  /// Maximum aggressors per compound event: events are all k-subsets of
  /// the pairs with 1 ≤ k ≤ max_aggressors.  1 (the default) reproduces
  /// the single-aggressor space bit for bit.
  int max_aggressors = 1;
  /// How member bumps are synthesized (see BumpShape).
  BumpShape bump_shape = BumpShape::kGaussian;
  /// Coupled-line testbench template of kCoupledLine: per member pair
  /// the generator simulates this with cm_total scaled by the pair's
  /// coupling_scale and the ramp transition set to the victim slew.
  interconnect::CoupledLinePair coupled_pair;
  /// Transient/sampling knobs of the kCoupledLine synthesis (the
  /// `transition` field is overridden per pair by the victim slew).
  interconnect::CoupledBumpOptions coupled_bump;

  /// Compound-event count: sum over k ≤ max_aggressors of C(pairs, k).
  [[nodiscard]] uint64_t num_events() const noexcept;

  /// Member pair indices of one event, strictly ascending (size = the
  /// event's k).  Throws util::Error when out of range.
  [[nodiscard]] std::vector<uint32_t> event_members(uint64_t event) const;

  /// Total candidate count: events × alignments × strengths.
  [[nodiscard]] uint64_t size() const noexcept {
    return num_events() * alignments.size() * strengths.size();
  }

  /// Grid coordinates of one flat candidate index.
  struct Coordinates {
    /// Compound-event index; equals the pair index for singleton events
    /// (pair < pairs.size()), event_members() decodes the rest.
    uint32_t pair = 0;
    uint32_t alignment = 0;  ///< index into alignments
    uint32_t strength = 0;   ///< index into strengths
  };
  /// Decodes a flat candidate index (lexicographic: event-major, then
  /// alignment, then strength).  Throws util::Error when out of range.
  [[nodiscard]] Coordinates decode(uint64_t candidate) const;
  /// Flat index of grid coordinates (inverse of decode()).
  [[nodiscard]] uint64_t encode(const Coordinates& c) const noexcept {
    return (static_cast<uint64_t>(c.pair) * alignments.size() + c.alignment) *
               strengths.size() +
           c.strength;
  }
};

/// Builds a ScenarioSpace from netlist coupling candidates: for each
/// candidate whose victim has a valid baseline transition (polarity per
/// `options`) at one of its sinks and whose aggressor has any valid
/// baseline switching window, emits a ScenarioPair carrying those
/// windows.  Candidates without valid baseline timing are dropped (they
/// cannot couple in this corner).  `sta` must have been run() — the
/// windows come from its corner baseline TimingState.  Deterministic:
/// pairs keep candidate order; the victim sink is the latest-arrival
/// valid sink in netlist pin order.
[[nodiscard]] ScenarioSpace make_scenario_space(
    const StaEngine& sta, const netlist::Netlist& netlist,
    std::span<const interconnect::CouplingCandidate> candidates,
    const DrivesPredicate& drives, std::vector<double> alignments,
    std::vector<double> strengths,
    const ScenarioSpaceOptions& options = {});

/// Pluggable logical-correlation predicate: rejects victim/aggressor
/// combinations that cannot switch simultaneously (FRAME's logic-
/// correlation screen).  Implementations must be deterministic; the
/// generator calls them once per pair.
class CorrelationRule {
 public:
  virtual ~CorrelationRule() = default;
  /// Human-readable rule name (reports/diagnostics).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// True when the two nets can switch in the same window; false kills
  /// every candidate of the pair (counted correlation_killed).
  [[nodiscard]] virtual bool can_switch_together(
      int32_t victim_net, int32_t aggressor_net) const = 0;
  /// Set-level verdict on a compound event: `victim_nets[i]` is the
  /// victim of the event's i-th member and `aggressor_nets[i]` its
  /// aggressor (parallel spans, ascending member order).  The generator
  /// consults it only AFTER the pairwise lift passed (every member and
  /// every member pair survived can_switch_together), so overrides
  /// express genuinely set-level constraints — e.g. a simultaneous-
  /// switching budget — and their kills are counted in
  /// GenStats::set_killed, not correlation_killed.  The default accepts
  /// every set.
  [[nodiscard]] virtual bool can_switch_set(
      std::span<const int32_t> victim_nets,
      std::span<const int32_t> aggressor_nets) const;
};

/// The built-in structural rule.  Rejects a (victim, aggressor) pair
/// when the nets are logically forced apart:
///  - same net (a net cannot aggress itself),
///  - same driving instance (complementary outputs of one cell cannot
///    make an independent simultaneous aggressor),
///  - causal ordering: either net lies in the other's transitive
///    fanout cone (Netlist::transitive_fanout_nets) — the "aggressor"
///    transition would be *caused by* the victim's (or vice versa), a
///    gate delay apart, not an independent simultaneous switch.
/// Fanout cones are memoized per net; the rule is NOT thread-safe (the
/// generator queries it from one thread).
class StructuralCorrelationRule final : public CorrelationRule {
 public:
  /// `netlist` must outlive the rule; `drives` is the pin-direction
  /// oracle (see make_drives_predicate()).
  StructuralCorrelationRule(const netlist::Netlist& netlist,
                            DrivesPredicate drives);
  /// Rule name: "structural".
  [[nodiscard]] const char* name() const noexcept override;
  /// Applies the same-net / same-driver / causal-ordering checks.
  [[nodiscard]] bool can_switch_together(
      int32_t victim_net, int32_t aggressor_net) const override;

 private:
  [[nodiscard]] const std::vector<int>& fanout(int32_t net) const;

  const netlist::Netlist* netlist_;
  DrivesPredicate drives_;
  /// Net → sorted transitive-fanout ordinals, filled on first query.
  mutable std::unordered_map<int32_t, std::vector<int>> fanout_memo_;
};

/// Per-stage kill counters of a generated sweep — the funnel report.
/// On a ScenarioGenerator the counters are in candidate units (the
/// scenario axis only); on a GeneratedSweepResult they are in
/// (corner × candidate) point units, matching PruneStats::points, and
/// satisfy  generated == window_killed + correlation_killed +
/// set_killed + prune_killed + reused + evaluated.
struct GenStats {
  /// Candidates drawn from the cross product so far.
  uint64_t generated = 0;
  /// Killed by the timing-window-overlap filter (stage 1).
  uint64_t window_killed = 0;
  /// Killed by the logical-correlation rule's pairwise lift (stage 2:
  /// a member pair failed can_switch_together, two members shared an
  /// aggressor, or a member's aggressor doubled as another's victim).
  uint64_t correlation_killed = 0;
  /// Killed by the set-level rule (stage 2b: can_switch_set rejected a
  /// compound event whose every member pair survived the lift).
  uint64_t set_killed = 0;
  /// Killed by slack-bound pruning inside the sweep (stage 3; 0 when
  /// the sweep ran with prune == PruneMode::kOff).
  uint64_t prune_killed = 0;
  /// Recorded exactly from the corner baseline without propagation
  /// (cone misses every endpoint; see PruneStats::reused).
  uint64_t reused = 0;
  /// Fully evaluated through baseline + delta propagation.
  uint64_t evaluated = 0;
  /// Chunks streamed (GeneratedSweepResult only).
  uint64_t chunks = 0;
  /// Peak scenarios resident at once — the bounded-memory guarantee:
  /// never exceeds GeneratedSweepSpec::gen_chunk.
  uint64_t peak_resident_scenarios = 0;
  /// Coupled-bump cache hits (kCoupledLine only): scaled or unit shapes
  /// served from the CoupledBumpCache instead of re-simulated/re-scaled.
  /// Diagnostic counters — NOT part of the funnel identity (check()),
  /// and NOT scaled to point units on a GeneratedSweepResult (cache
  /// traffic is per materialized waveform, not per point).
  uint64_t bump_cache_hits = 0;
  /// Coupled-bump cache misses (see bump_cache_hits).
  uint64_t bump_cache_misses = 0;

  /// Funnel-identity check: true iff generated == window_killed +
  /// correlation_killed + set_killed + prune_killed + reused +
  /// evaluated.  Meaningful once every drawn survivor has been
  /// dispatched to a sweep stage — i.e. on result-unit stats, which the
  /// streaming sweep asserts (debug builds) at every chunk boundary —
  /// NOT on a bare generator mid-drain, whose pending survivors sit in
  /// no bucket yet.
  [[nodiscard]] bool check() const noexcept;
};

/// Persistent coupled-line bump-shape store, shared across generator
/// instances, sweeps and corners — the kCoupledLine counterpart of the
/// Γeff memo.  Entries are keyed on *content* (coupled_bump_key(): the
/// post-scaling CoupledLinePair/CoupledBumpOptions numbers, plus the
/// amplitude for scaled entries), so two generators whose pairs resolve
/// to the same physical testbench share one simulated shape even across
/// different spaces or corners — bitwise-safe, because
/// interconnect::coupled_bump_shape is a deterministic function of
/// exactly those numbers.  References returned by find()/insert() stay
/// valid for the cache's lifetime (node-based storage).  NOT
/// thread-safe: share it across sequential sweeps, not across threads.
class CoupledBumpCache {
 public:
  /// Hit/miss counters since construction (or reset_stats()).
  struct Stats {
    uint64_t hits = 0;    ///< lookups served from the cache
    uint64_t misses = 0;  ///< lookups that had to build the waveform
  };

  /// The waveform stored under `key`, or null; counts one hit or miss.
  [[nodiscard]] const wave::Waveform* find(uint64_t key) noexcept;
  /// Stores `waveform` under `key` (overwriting any previous entry) and
  /// returns the stored copy.
  const wave::Waveform& insert(uint64_t key, wave::Waveform waveform);
  /// The hit/miss counters.
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Zeroes the counters; cached waveforms stay.
  void reset_stats() noexcept { stats_ = {}; }
  /// Number of cached waveforms.
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_map<uint64_t, wave::Waveform> entries_;
  Stats stats_;
};

/// Content key of one coupled-line unit bump: an FNV-style mix over the
/// numeric fields of `pair` and `options` exactly as
/// coupled_bump_shape() consumes them (line names are excluded — they
/// do not affect the shape).  Callers pass the pair/options AFTER
/// per-ScenarioPair scaling (cm_total × coupling_scale, transition =
/// victim slew), so the key identifies the physical testbench, not the
/// ScenarioPair index — the property that lets the cache persist across
/// generators and corners.
[[nodiscard]] uint64_t coupled_bump_key(
    const interconnect::CoupledLinePair& pair,
    const interconnect::CoupledBumpOptions& options) noexcept;

/// Pull-based lazy iterator over a ScenarioSpace: next() yields the
/// next *feasible* candidate in lexicographic (event, alignment,
/// strength) order, applying the window filter, then the pairwise-
/// lifted correlation rule, then the set-level rule, updating stats();
/// materialize() builds the candidate's NoiseScenario (the only step
/// that samples a waveform).  Infeasible (event, alignment) blocks are
/// skipped whole — strength never affects feasibility — so draining a
/// million-point space costs on the order of events × alignments cheap
/// window tests; event-level correlation/set verdicts are resolved once
/// per event (member-pair verdicts memoized across events).  The space
/// (and rule, when given) must outlive the generator.  NOT thread-safe:
/// one thread pulls and materializes (the streaming sweep's pattern) —
/// materialize() fills the mutable coupled-bump caches.
class ScenarioGenerator {
 public:
  /// `correlation == nullptr` disables the correlation stages (every
  /// pair and set passes).  `bump_cache` is the persistent kCoupledLine
  /// shape store (must outlive the generator); null makes the generator
  /// own a private one, reproducing the historical per-generator
  /// caching.  Cache traffic is counted in stats()
  /// (bump_cache_hits/misses) either way.
  explicit ScenarioGenerator(const ScenarioSpace& space,
                             const CorrelationRule* correlation = nullptr,
                             CoupledBumpCache* bump_cache = nullptr);

  /// One feasible candidate: the flat index plus its decoded grid
  /// coordinates.
  struct Candidate {
    uint64_t index = 0;      ///< flat lexicographic index in the space
    uint32_t pair = 0;       ///< event index (see Coordinates::pair)
    uint32_t alignment = 0;  ///< index into space().alignments
    uint32_t strength = 0;   ///< index into space().strengths
  };

  /// The next feasible candidate, or nullopt when the space is
  /// exhausted.  Advances stats() over every candidate it skips.
  [[nodiscard]] std::optional<Candidate> next();

  /// Materializes the candidate's scenario: per event member, a bump of
  /// amplitude strengths[c.strength] × member.coupling_scale centred
  /// alignments[c.alignment] after that member's victim arrival,
  /// superposed on the member victim's clean ramp — one NoiseScenario
  /// entry per distinct victim net, in ascending-member first-
  /// occurrence order.  A singleton Gaussian candidate takes exactly
  /// the make_aggressor_scenario() path (bitwise-identical waveform and
  /// name), so eager enumeration can build the identical scenario.
  /// Compound names join the member descriptors with '+'.
  [[nodiscard]] NoiseScenario materialize(const Candidate& c) const;

  /// Stage-1 window test of one (member pair, alignment) cell: the bump
  /// support (±3σ around the centre) must overlap BOTH the victim
  /// transition window and the aggressor switching window, each
  /// widened by the space's window_slop.  A compound candidate is
  /// window-feasible iff every member passes this.
  [[nodiscard]] bool window_feasible(uint32_t pair,
                                     uint32_t alignment) const;

  /// Funnel counters over the candidates drained so far, in candidate
  /// units (prune_killed/reused/evaluated stay 0 here — those stages
  /// live in the sweep; the funnel identity of GenStats::check() does
  /// NOT hold on these mid-drain counters).
  [[nodiscard]] const GenStats& stats() const noexcept { return stats_; }

  /// The space this generator walks.
  [[nodiscard]] const ScenarioSpace& space() const noexcept {
    return *space_;
  }

 private:
  /// Event-level correlation verdict (kOk passes both stages).
  enum class EventVerdict : uint8_t { kOk, kCorrelationKilled, kSetKilled };

  /// Decodes `event` into cur_members_ and resolves its verdict.
  void refresh_event(uint32_t event);
  /// Pairwise lift between two member pairs (memoized): structural
  /// independence plus the rule's cross can_switch_together queries.
  [[nodiscard]] bool members_compatible(uint32_t a, uint32_t b) const;
  /// The scaled coupled-line bump of (member pair, strength index):
  /// unit shape × (sign × strength × coupling_scale), built and cached
  /// on first use.
  [[nodiscard]] const wave::Waveform& scaled_bump(uint32_t pair,
                                                  uint32_t strength) const;

  const ScenarioSpace* space_;
  const CorrelationRule* correlation_;
  /// Correlation verdict per singleton pair, resolved at construction.
  std::vector<char> pair_feasible_;
  uint64_t cursor_ = 0;  ///< next flat index to consider
  /// Mutable because scaled_bump() (const) counts cache hits/misses.
  mutable GenStats stats_;
  /// Decoded members + verdict of the event the cursor sits in.
  uint64_t cur_event_ = std::numeric_limits<uint64_t>::max();
  std::vector<uint32_t> cur_members_;
  EventVerdict cur_verdict_ = EventVerdict::kOk;
  /// Member-pair compatibility memo, key (min<<32)|max.
  mutable std::unordered_map<uint64_t, char> compat_memo_;
  /// External persistent bump store, or null to use the owned fallback.
  CoupledBumpCache* bump_cache_;
  /// Per-generator fallback store (the historical behavior).
  mutable CoupledBumpCache owned_bump_cache_;
  /// Content key of each pair's unit bump (kCoupledLine only; 0 when
  /// the space uses Gaussian shapes), precomputed at construction.
  std::vector<uint64_t> pair_bump_key_;
};

/// A generated sweep: the streaming counterpart of SweepSpec, with the
/// scenario axis described symbolically by a ScenarioSpace instead of
/// an eager std::vector<NoiseScenario>.  Evaluation is forced
/// endpoint-only (full TimingStates cannot be kept for a million
/// points); every other knob mirrors SweepSpec and feeds the per-chunk
/// sweeps unchanged.
struct GeneratedSweepSpec {
  /// The candidate cross product (see make_scenario_space()).
  ScenarioSpace space;
  /// Logical-correlation filter; null disables stage 2.  Must outlive
  /// the sweep call.
  const CorrelationRule* correlation = nullptr;
  /// Corner/derate axis; empty selects one point (engine corner or
  /// nominal), exactly as SweepSpec::corners.
  std::vector<Corner> corners;
  /// Worker threads (≤ 0 selects the hardware concurrency).
  int threads = 0;
  /// Share one Γeff memo across the points of each chunk.
  bool share_gamma_cache = true;
  /// Technique override; null uses the engine's configured method.
  const core::EquivalentWaveformMethod* method = nullptr;
  /// External pool reused across all chunks; null lets the sweep build
  /// one (still shared across chunks).
  util::ThreadPool* pool = nullptr;
  /// Baseline + delta evaluation per chunk (SweepSpec::delta).
  bool delta = true;
  /// Slack-bound pruning per chunk (SweepSpec::prune); the running
  /// worst slack is carried across chunks through
  /// SweepSpec::prune_seed_slack, so later chunks prune harder.
  PruneMode prune = PruneMode::kSafe;
  /// Partition-sharded scheduling (SweepSpec::shard).
  bool shard = true;
  /// Wide-partition fallback threshold (SweepSpec counterpart).
  size_t wide_partition_threshold = kDefaultWidePartitionThreshold;
  /// Feasible scenarios materialized per streamed chunk — the peak
  /// resident-scenario bound; 0 selects 512.
  size_t gen_chunk = 0;
  /// Endpoint-only evaluation chunk inside each sweep
  /// (SweepSpec::endpoint_chunk).
  size_t endpoint_chunk = 0;
  /// Record a {candidate, corner, worst_slack} tuple per surviving
  /// point (see GeneratedSweepResult::points()).  Memory is bounded by
  /// the survivor count, not the space size; disable for pure funnel
  /// reports.
  bool keep_point_records = true;
  /// SIMD lane width per chunk (SweepSpec::lanes): 0 auto (AVX2 → 4,
  /// else scalar), 1 forces scalar, 4 forces four-wide lane blocks.
  /// Bitwise identical either way.
  int lanes = 0;
  /// Re-window the space per corner: with corners given, each corner
  /// re-derives the stage-1 windows from its OWN baseline
  /// (rewindow_scenario_space()) and streams its own generator pass, so
  /// a derate that moves arrivals also moves which candidates are
  /// feasible.  The funnel stays in point units (each corner's pass
  /// contributes its candidates once) and the worst-point tie-break is
  /// unchanged.  false (default) filters every corner against the
  /// engine-baseline windows stored in the space.
  bool per_corner_windows = false;
  /// Persistent coupled-line bump store shared across this sweep's
  /// per-corner generator passes AND across successive sweeps when the
  /// caller keeps the cache alive (must outlive the call).  Null makes
  /// the sweep own one for its duration — corner passes still share it.
  CoupledBumpCache* bump_cache = nullptr;
};

/// Recomputes the stage-1 feasibility windows of `space` against the
/// engine's baseline under `corner`: each pair's victim anchor timing
/// is re-read at its stored victim_pin and the aggressor switching
/// window re-enveloped over its stored aggressor_pins.  Pairs without
/// stored pin names (hand-built spaces) keep their windows; pairs whose
/// corner timing is invalid get an empty aggressor window, so every
/// alignment of theirs is window-killed — candidate indices stay stable
/// across corners by construction.  Calls prepare() and evaluates one
/// corner baseline of its own, hence the non-const engine; when the
/// caller already holds that baseline (sweep(GeneratedSweepSpec) always
/// does), prefer the overload below, which skips the redundant
/// full-graph pass.
[[nodiscard]] ScenarioSpace rewindow_scenario_space(StaEngine& sta,
                                                    const Corner& corner,
                                                    ScenarioSpace space);

/// Re-windowing against a caller-provided corner baseline: identical
/// result to the overload above when `baseline` is the clean evaluate()
/// of `sta` under `corner` (same EvalContext the sweep uses), but with
/// no propagation of its own — the engine stays const.  `baseline` must
/// have been produced by THIS engine (vertex count must match; throws
/// util::Error otherwise).
[[nodiscard]] ScenarioSpace rewindow_scenario_space(
    const StaEngine& sta, const Corner& corner, ScenarioSpace space,
    const TimingState& baseline);

/// Result of a generated sweep: the funnel, the aggregated prune/delta
/// statistics, the exact worst point, and (optionally) one record per
/// surviving point.  All values are bitwise identical to eagerly
/// enumerating the surviving scenarios through
/// StaEngine::sweep(SweepSpec) with the same settings.
class GeneratedSweepResult {
 public:
  GeneratedSweepResult() = default;

  /// One surviving (evaluated or reused) point.
  struct PointRecord {
    /// Flat candidate index in the ScenarioSpace (decode() maps it
    /// back to grid coordinates).
    uint64_t candidate = 0;
    /// Corner ordinal of the point.
    uint32_t corner = 0;
    /// Exact worst slack of the point [s].
    double worst_slack = 0.0;
  };

  /// The sweep's worst point.
  struct WorstPoint {
    /// Flat candidate index of the worst point.
    uint64_t candidate = std::numeric_limits<uint64_t>::max();
    /// Corner ordinal of the worst point.
    size_t corner = 0;
    /// Scenario name of the worst point (make_aggressor_scenario
    /// naming: net@align=..,strength=..).
    std::string scenario_name;
    /// Exact worst slack [s].
    double slack = std::numeric_limits<double>::infinity();
  };

  /// The per-stage funnel, in (corner × candidate) point units.
  [[nodiscard]] const GenStats& gen_stats() const noexcept {
    return gen_stats_;
  }
  /// Aggregated baseline+delta / pruning counters over all chunks
  /// (fractions and bound gaps are survivor-weighted means).
  [[nodiscard]] const PruneStats& prune_stats() const noexcept {
    return prune_stats_;
  }
  /// Exact worst slack over all surviving points; throws util::Error
  /// when every candidate was filtered out.
  [[nodiscard]] double worst_slack() const;
  /// The worst point (ties resolve to the smallest (corner, candidate)
  /// — the same argmin an eager corner-major sweep reports).  Throws
  /// when every candidate was filtered out.
  [[nodiscard]] const WorstPoint& worst_point() const;
  /// One record per surviving point, in stream order (empty when
  /// GeneratedSweepSpec::keep_point_records was false).
  [[nodiscard]] const std::vector<PointRecord>& points() const noexcept {
    return points_;
  }
  /// Corner count of the sweep.
  [[nodiscard]] size_t num_corners() const noexcept { return num_corners_; }

  /// Multi-line human-readable funnel: one line per stage with counts
  /// and percentages — the canonical field names
  /// (generated/window_killed/correlation_killed/set_killed/
  /// prune_killed/reused/evaluated) shared by docs/SWEEP_GUIDE.md, the
  /// examples and bench_runtime.
  [[nodiscard]] std::string funnel_report() const;

 private:
  friend class StaEngine;  // sweep(GeneratedSweepSpec) populates

  GenStats gen_stats_;
  PruneStats prune_stats_;
  WorstPoint worst_;
  bool has_worst_ = false;
  std::vector<PointRecord> points_;
  size_t num_corners_ = 1;
};

}  // namespace waveletic::sta
