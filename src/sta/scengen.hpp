#pragma once

/// \file scengen.hpp
/// Streaming combinatorial scenario generation with FRAME-style
/// feasibility filtering.
///
/// The paper propagates one hand-built noisy waveform; a crosstalk
/// sign-off wants the whole attack surface — every plausible
/// (victim, aggressor, alignment, strength) coupling event.  Enumerated
/// eagerly that cross product explodes: 256 coupling pairs × 64
/// alignments × 64 strengths is already a million scenarios, each
/// carrying a sampled waveform.  This layer instead materializes points
/// *lazily* — `ScenarioSpace` describes the cross product symbolically,
/// `ScenarioGenerator` pulls one candidate at a time, and
/// `StaEngine::sweep(const GeneratedSweepSpec&)` streams the survivors
/// through the existing baseline + delta + prune pipeline in bounded
/// chunks, so peak memory is one chunk of scenarios plus 40 B/point of
/// endpoint summaries, never the full cross product.
///
/// In front of propagation sit two *feasibility filters* in the spirit
/// of FRAME (PAPERS.md, arxiv 1502.02236 — screen infeasible aggressor
/// combinations before any expensive analysis):
///
///  1. **Timing-window overlap**: a coupling bump at a given alignment
///     is infeasible when its support cannot overlap the victim
///     transition window (a bump that never comes near the transition
///     cannot move any crossing — the paper's alignment observation),
///     or when it falls outside the aggressor's own switching window
///     from the corner baseline (the aggressor cannot switch then).
///  2. **Logical correlation**: a pluggable `CorrelationRule` rejects
///     victim/aggressor combinations that cannot switch simultaneously;
///     the built-in `StructuralCorrelationRule` rejects same-net,
///     same-driver (complementary outputs) and causally-ordered pairs
///     (either net inside the other's transitive fanout cone, via
///     `netlist::Netlist::transitive_fanout_nets`).
///
/// Both filters run on candidate *indices* — the scenario waveform is
/// only sampled for points that survive, and whole alignment/strength
/// blocks are skipped arithmetically, so filtering a million-point
/// space costs on the order of pairs × alignments cheap window tests.
/// `GenStats` reports the per-stage funnel: generated → window-killed →
/// correlation-killed → prune-killed → reused/evaluated.
///
/// Surviving points are bitwise identical to eagerly enumerating the
/// same scenarios through `StaEngine::sweep(SweepSpec)`: the generated
/// path *is* that sweep, fed in chunks, with the running worst slack
/// carried across chunks through `SweepSpec::prune_seed_slack`.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "interconnect/coupled.hpp"
#include "sta/sweep.hpp"

namespace waveletic::liberty {
class Library;
}
namespace waveletic::netlist {
class Netlist;
struct Instance;
}  // namespace waveletic::netlist

namespace waveletic::sta {

/// Pin-direction oracle used wherever the library-agnostic netlist
/// needs to know which instance pins drive their nets (fanout cones,
/// driver lookup, victim-sink selection).  Returns true when `pin` of
/// `instance` is an output.
using DrivesPredicate =
    std::function<bool(const netlist::Instance&, const std::string& pin)>;

/// Builds the standard DrivesPredicate from a liberty library: a pin
/// drives iff its library direction is `PinDirection::kOutput`.
/// Unknown cells/pins are treated as non-driving.
[[nodiscard]] DrivesPredicate make_drives_predicate(
    const liberty::Library& library);

/// One victim/aggressor coupling pair of a ScenarioSpace, with the
/// baseline timing windows the feasibility filter tests against.
/// Normally produced by make_scenario_space() from
/// interconnect::CouplingCandidate seeds; hand-construction is fine for
/// tests and custom spaces.
struct ScenarioPair {
  /// Victim net ordinal in the netlist (the annotated net).
  int32_t victim_net = -1;
  /// Aggressor net ordinal (the coupling source; used by correlation
  /// rules — the generated scenario itself annotates only the victim).
  int32_t aggressor_net = -1;
  /// Victim net name — the NoiseScenario annotation target.
  std::string victim_name;
  /// Aggressor net name (diagnostics / reports).
  std::string aggressor_name;
  /// Baseline victim 50% crossing at the chosen sink [s] (bump centres
  /// are offsets from this).
  double victim_arrival = 0.0;
  /// Baseline victim transition time at that sink [s] (sets both the
  /// bump width and the victim overlap window).
  double victim_slew = 0.0;
  /// Earliest instant the aggressor can be switching, from the corner
  /// baseline over both transitions of every pin on the aggressor net
  /// (arrival − slew, minimized) [s].
  double aggressor_window_lo = 0.0;
  /// Latest instant the aggressor can be switching (arrival + slew,
  /// maximized) [s].
  double aggressor_window_hi = 0.0;
  /// Relative coupling strength of this pair (Cm / reference Cm);
  /// multiplies the strength-grid value when the scenario materializes.
  double coupling_scale = 1.0;
};

/// Options of make_scenario_space().
struct ScenarioSpaceOptions {
  /// Samples per generated scenario waveform (make_aggressor_scenario's
  /// `samples`; small keeps million-point materialization cheap).
  size_t waveform_samples = 64;
  /// Bump sigma as a fraction of the victim slew — MUST match the
  /// generated waveform shape (make_aggressor_scenario uses 0.5).
  double bump_sigma_factor = 0.5;
  /// Extra slack added to every window-overlap test [s] (0 = exact
  /// envelope overlap; > 0 keeps marginal candidates).
  double window_slop = 0.0;
  /// Reference coupling capacitance [F]: a candidate's coupling_scale
  /// is its cm_total divided by this.
  double cm_reference = 100e-15;
};

/// The symbolic cross product a generated sweep explores:
/// coupling pairs × aggressor-alignment grid × strength grid.  Never
/// materialized — ScenarioGenerator walks it lazily, one candidate at a
/// time, in lexicographic (pair, alignment, strength) order.
struct ScenarioSpace {
  /// Victim/aggressor coupling pairs (the victim-net axis).
  std::vector<ScenarioPair> pairs;
  /// Bump-centre offsets from each pair's victim arrival [s].
  std::vector<double> alignments;
  /// Bump peak amplitudes [V] (scaled per pair by coupling_scale).
  std::vector<double> strengths;
  /// Supply voltage of the generated waveforms [V].
  double vdd = 1.2;
  /// Victim transition polarity the bumps push against.
  wave::Polarity polarity = wave::Polarity::kFalling;
  /// Samples per generated scenario waveform.
  size_t waveform_samples = 64;
  /// Bump sigma as a fraction of the victim slew (see
  /// ScenarioSpaceOptions::bump_sigma_factor).
  double bump_sigma_factor = 0.5;
  /// Extra slack on every window-overlap test [s].
  double window_slop = 0.0;

  /// Total candidate count: pairs × alignments × strengths.
  [[nodiscard]] uint64_t size() const noexcept {
    return static_cast<uint64_t>(pairs.size()) * alignments.size() *
           strengths.size();
  }

  /// Grid coordinates of one flat candidate index.
  struct Coordinates {
    uint32_t pair = 0;       ///< index into pairs
    uint32_t alignment = 0;  ///< index into alignments
    uint32_t strength = 0;   ///< index into strengths
  };
  /// Decodes a flat candidate index (lexicographic: pair-major, then
  /// alignment, then strength).  Throws util::Error when out of range.
  [[nodiscard]] Coordinates decode(uint64_t candidate) const;
  /// Flat index of grid coordinates (inverse of decode()).
  [[nodiscard]] uint64_t encode(const Coordinates& c) const noexcept {
    return (static_cast<uint64_t>(c.pair) * alignments.size() + c.alignment) *
               strengths.size() +
           c.strength;
  }
};

/// Builds a ScenarioSpace from netlist coupling candidates: for each
/// candidate whose victim has a valid baseline transition (polarity per
/// `options`) at one of its sinks and whose aggressor has any valid
/// baseline switching window, emits a ScenarioPair carrying those
/// windows.  Candidates without valid baseline timing are dropped (they
/// cannot couple in this corner).  `sta` must have been run() — the
/// windows come from its corner baseline TimingState.  Deterministic:
/// pairs keep candidate order; the victim sink is the latest-arrival
/// valid sink in netlist pin order.
[[nodiscard]] ScenarioSpace make_scenario_space(
    const StaEngine& sta, const netlist::Netlist& netlist,
    std::span<const interconnect::CouplingCandidate> candidates,
    const DrivesPredicate& drives, std::vector<double> alignments,
    std::vector<double> strengths,
    const ScenarioSpaceOptions& options = {});

/// Pluggable logical-correlation predicate: rejects victim/aggressor
/// combinations that cannot switch simultaneously (FRAME's logic-
/// correlation screen).  Implementations must be deterministic; the
/// generator calls them once per pair.
class CorrelationRule {
 public:
  virtual ~CorrelationRule() = default;
  /// Human-readable rule name (reports/diagnostics).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// True when the two nets can switch in the same window; false kills
  /// every candidate of the pair (counted correlation_killed).
  [[nodiscard]] virtual bool can_switch_together(
      int32_t victim_net, int32_t aggressor_net) const = 0;
};

/// The built-in structural rule.  Rejects a (victim, aggressor) pair
/// when the nets are logically forced apart:
///  - same net (a net cannot aggress itself),
///  - same driving instance (complementary outputs of one cell cannot
///    make an independent simultaneous aggressor),
///  - causal ordering: either net lies in the other's transitive
///    fanout cone (Netlist::transitive_fanout_nets) — the "aggressor"
///    transition would be *caused by* the victim's (or vice versa), a
///    gate delay apart, not an independent simultaneous switch.
/// Fanout cones are memoized per net; the rule is NOT thread-safe (the
/// generator queries it from one thread).
class StructuralCorrelationRule final : public CorrelationRule {
 public:
  /// `netlist` must outlive the rule; `drives` is the pin-direction
  /// oracle (see make_drives_predicate()).
  StructuralCorrelationRule(const netlist::Netlist& netlist,
                            DrivesPredicate drives);
  /// Rule name: "structural".
  [[nodiscard]] const char* name() const noexcept override;
  /// Applies the same-net / same-driver / causal-ordering checks.
  [[nodiscard]] bool can_switch_together(
      int32_t victim_net, int32_t aggressor_net) const override;

 private:
  [[nodiscard]] const std::vector<int>& fanout(int32_t net) const;

  const netlist::Netlist* netlist_;
  DrivesPredicate drives_;
  /// Net → sorted transitive-fanout ordinals, filled on first query.
  mutable std::unordered_map<int32_t, std::vector<int>> fanout_memo_;
};

/// Per-stage kill counters of a generated sweep — the funnel report.
/// On a ScenarioGenerator the counters are in candidate units (the
/// scenario axis only); on a GeneratedSweepResult they are in
/// (corner × candidate) point units, matching PruneStats::points, and
/// satisfy  generated == window_killed + correlation_killed +
/// prune_killed + reused + evaluated.
struct GenStats {
  /// Candidates drawn from the cross product so far.
  uint64_t generated = 0;
  /// Killed by the timing-window-overlap filter (stage 1).
  uint64_t window_killed = 0;
  /// Killed by the logical-correlation rule (stage 2).
  uint64_t correlation_killed = 0;
  /// Killed by slack-bound pruning inside the sweep (stage 3; 0 when
  /// the sweep ran with prune == PruneMode::kOff).
  uint64_t prune_killed = 0;
  /// Recorded exactly from the corner baseline without propagation
  /// (cone misses every endpoint; see PruneStats::reused).
  uint64_t reused = 0;
  /// Fully evaluated through baseline + delta propagation.
  uint64_t evaluated = 0;
  /// Chunks streamed (GeneratedSweepResult only).
  uint64_t chunks = 0;
  /// Peak scenarios resident at once — the bounded-memory guarantee:
  /// never exceeds GeneratedSweepSpec::gen_chunk.
  uint64_t peak_resident_scenarios = 0;
};

/// Pull-based lazy iterator over a ScenarioSpace: next() yields the
/// next *feasible* candidate in lexicographic (pair, alignment,
/// strength) order, applying the window filter then the correlation
/// rule and updating stats(); materialize() builds the candidate's
/// NoiseScenario (the only step that samples a waveform).  Infeasible
/// (pair, alignment) blocks are skipped whole — strength never affects
/// feasibility — so draining a million-point space costs on the order
/// of pairs × alignments window tests plus one correlation query per
/// pair.  The space (and rule, when given) must outlive the generator.
class ScenarioGenerator {
 public:
  /// `correlation == nullptr` disables the correlation stage (every
  /// pair passes it).
  explicit ScenarioGenerator(const ScenarioSpace& space,
                             const CorrelationRule* correlation = nullptr);

  /// One feasible candidate: the flat index plus its decoded grid
  /// coordinates.
  struct Candidate {
    uint64_t index = 0;      ///< flat lexicographic index in the space
    uint32_t pair = 0;       ///< index into space().pairs
    uint32_t alignment = 0;  ///< index into space().alignments
    uint32_t strength = 0;   ///< index into space().strengths
  };

  /// The next feasible candidate, or nullopt when the space is
  /// exhausted.  Advances stats() over every candidate it skips.
  [[nodiscard]] std::optional<Candidate> next();

  /// Materializes the candidate's scenario: an aggressor bump of
  /// amplitude strengths[c.strength] × pair.coupling_scale centred
  /// alignments[c.alignment] after the victim arrival, via
  /// make_aggressor_scenario() (so eager enumeration can build the
  /// identical scenario).
  [[nodiscard]] NoiseScenario materialize(const Candidate& c) const;

  /// Stage-1 window test of one (pair, alignment) cell: the bump
  /// support (±3σ around the centre) must overlap BOTH the victim
  /// transition window and the aggressor switching window, each
  /// widened by the space's window_slop.
  [[nodiscard]] bool window_feasible(uint32_t pair,
                                     uint32_t alignment) const;

  /// Funnel counters over the candidates drained so far, in candidate
  /// units (prune_killed/reused/evaluated stay 0 here — those stages
  /// live in the sweep).
  [[nodiscard]] const GenStats& stats() const noexcept { return stats_; }

  /// The space this generator walks.
  [[nodiscard]] const ScenarioSpace& space() const noexcept {
    return *space_;
  }

 private:
  const ScenarioSpace* space_;
  /// Correlation verdict per pair, resolved once at construction.
  std::vector<char> pair_feasible_;
  uint64_t cursor_ = 0;  ///< next flat index to consider
  GenStats stats_;
};

/// A generated sweep: the streaming counterpart of SweepSpec, with the
/// scenario axis described symbolically by a ScenarioSpace instead of
/// an eager std::vector<NoiseScenario>.  Evaluation is forced
/// endpoint-only (full TimingStates cannot be kept for a million
/// points); every other knob mirrors SweepSpec and feeds the per-chunk
/// sweeps unchanged.
struct GeneratedSweepSpec {
  /// The candidate cross product (see make_scenario_space()).
  ScenarioSpace space;
  /// Logical-correlation filter; null disables stage 2.  Must outlive
  /// the sweep call.
  const CorrelationRule* correlation = nullptr;
  /// Corner/derate axis; empty selects one point (engine corner or
  /// nominal), exactly as SweepSpec::corners.
  std::vector<Corner> corners;
  /// Worker threads (≤ 0 selects the hardware concurrency).
  int threads = 0;
  /// Share one Γeff memo across the points of each chunk.
  bool share_gamma_cache = true;
  /// Technique override; null uses the engine's configured method.
  const core::EquivalentWaveformMethod* method = nullptr;
  /// External pool reused across all chunks; null lets the sweep build
  /// one (still shared across chunks).
  util::ThreadPool* pool = nullptr;
  /// Baseline + delta evaluation per chunk (SweepSpec::delta).
  bool delta = true;
  /// Slack-bound pruning per chunk (SweepSpec::prune); the running
  /// worst slack is carried across chunks through
  /// SweepSpec::prune_seed_slack, so later chunks prune harder.
  PruneMode prune = PruneMode::kSafe;
  /// Partition-sharded scheduling (SweepSpec::shard).
  bool shard = true;
  /// Wide-partition fallback threshold (SweepSpec counterpart).
  size_t wide_partition_threshold = kDefaultWidePartitionThreshold;
  /// Feasible scenarios materialized per streamed chunk — the peak
  /// resident-scenario bound; 0 selects 512.
  size_t gen_chunk = 0;
  /// Endpoint-only evaluation chunk inside each sweep
  /// (SweepSpec::endpoint_chunk).
  size_t endpoint_chunk = 0;
  /// Record a {candidate, corner, worst_slack} tuple per surviving
  /// point (see GeneratedSweepResult::points()).  Memory is bounded by
  /// the survivor count, not the space size; disable for pure funnel
  /// reports.
  bool keep_point_records = true;
  /// SIMD lane width per chunk (SweepSpec::lanes): 0 auto (AVX2 → 4,
  /// else scalar), 1 forces scalar, 4 forces four-wide lane blocks.
  /// Bitwise identical either way.
  int lanes = 0;
};

/// Result of a generated sweep: the funnel, the aggregated prune/delta
/// statistics, the exact worst point, and (optionally) one record per
/// surviving point.  All values are bitwise identical to eagerly
/// enumerating the surviving scenarios through
/// StaEngine::sweep(SweepSpec) with the same settings.
class GeneratedSweepResult {
 public:
  GeneratedSweepResult() = default;

  /// One surviving (evaluated or reused) point.
  struct PointRecord {
    /// Flat candidate index in the ScenarioSpace (decode() maps it
    /// back to grid coordinates).
    uint64_t candidate = 0;
    /// Corner ordinal of the point.
    uint32_t corner = 0;
    /// Exact worst slack of the point [s].
    double worst_slack = 0.0;
  };

  /// The sweep's worst point.
  struct WorstPoint {
    /// Flat candidate index of the worst point.
    uint64_t candidate = std::numeric_limits<uint64_t>::max();
    /// Corner ordinal of the worst point.
    size_t corner = 0;
    /// Scenario name of the worst point (make_aggressor_scenario
    /// naming: net@align=..,strength=..).
    std::string scenario_name;
    /// Exact worst slack [s].
    double slack = std::numeric_limits<double>::infinity();
  };

  /// The per-stage funnel, in (corner × candidate) point units.
  [[nodiscard]] const GenStats& gen_stats() const noexcept {
    return gen_stats_;
  }
  /// Aggregated baseline+delta / pruning counters over all chunks
  /// (fractions and bound gaps are survivor-weighted means).
  [[nodiscard]] const PruneStats& prune_stats() const noexcept {
    return prune_stats_;
  }
  /// Exact worst slack over all surviving points; throws util::Error
  /// when every candidate was filtered out.
  [[nodiscard]] double worst_slack() const;
  /// The worst point (ties resolve to the smallest (corner, candidate)
  /// — the same argmin an eager corner-major sweep reports).  Throws
  /// when every candidate was filtered out.
  [[nodiscard]] const WorstPoint& worst_point() const;
  /// One record per surviving point, in stream order (empty when
  /// GeneratedSweepSpec::keep_point_records was false).
  [[nodiscard]] const std::vector<PointRecord>& points() const noexcept {
    return points_;
  }
  /// Corner count of the sweep.
  [[nodiscard]] size_t num_corners() const noexcept { return num_corners_; }

  /// Multi-line human-readable funnel: one line per stage with counts
  /// and percentages — the canonical field names
  /// (generated/window_killed/correlation_killed/prune_killed/reused/
  /// evaluated) shared by docs/SWEEP_GUIDE.md, the examples and
  /// bench_runtime.
  [[nodiscard]] std::string funnel_report() const;

 private:
  friend class StaEngine;  // sweep(GeneratedSweepSpec) populates

  GenStats gen_stats_;
  PruneStats prune_stats_;
  WorstPoint worst_;
  bool has_worst_ = false;
  std::vector<PointRecord> points_;
  size_t num_corners_ = 1;
};

}  // namespace waveletic::sta
