#include "sta/scengen.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {

namespace {

/// Exact C(n, k) in uint64 arithmetic: the running product
/// r × (n-k+i) / i is an integer at every step (it equals C(n-k+i, i)),
/// so the division is exact and overflow only happens when the true
/// binomial overflows.
uint64_t choose(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t r = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    r = r / i * (n - k + i) + r % i * (n - k + i) / i;
  }
  return r;
}

// FNV-1a-style content mixing, the Corner::key() idiom: doubles are
// folded in by bit pattern, so a key change means a genuinely different
// physical testbench.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t mix(uint64_t h, uint64_t v) noexcept { return (h ^ v) * kFnvPrime; }
uint64_t mix(uint64_t h, double v) noexcept {
  return mix(h, std::bit_cast<uint64_t>(v));
}

/// Tag separating scaled-bump entries from unit-shape entries that
/// would otherwise share a content key.
constexpr uint64_t kScaledBumpTag = 0x7363616c65644257ull;  // "scaledBW"

}  // namespace

DrivesPredicate make_drives_predicate(const liberty::Library& library) {
  return [&library](const netlist::Instance& inst, const std::string& pin) {
    const auto* cell = library.find_cell(inst.cell);
    if (cell == nullptr) return false;
    const auto* p = cell->find_pin(pin);
    return p != nullptr && p->direction == liberty::PinDirection::kOutput;
  };
}

// ---------------------------------------------------------------------------
// ScenarioSpace
// ---------------------------------------------------------------------------

const char* to_string(BumpShape shape) noexcept {
  return shape == BumpShape::kCoupledLine ? "coupled_line" : "gaussian";
}

uint64_t ScenarioSpace::num_events() const noexcept {
  const auto p = static_cast<uint64_t>(pairs.size());
  const auto k_max =
      std::min<uint64_t>(max_aggressors < 1 ? 1 : max_aggressors, p);
  uint64_t total = 0;
  for (uint64_t k = 1; k <= k_max; ++k) total += choose(p, k);
  return total;
}

std::vector<uint32_t> ScenarioSpace::event_members(uint64_t event) const {
  util::require(event < num_events(), "ScenarioSpace::event_members: event ",
                event, " out of range (", num_events(), " events)");
  // Find the k-block the rank falls in (singletons first, then
  // 2-subsets, …), then unrank within it: combinations are ordered
  // lexicographically, so member after member we count how many
  // combinations keep a smaller element in this slot and skip them.
  const auto p = static_cast<uint64_t>(pairs.size());
  uint64_t k = 1;
  while (event >= choose(p, k)) {
    event -= choose(p, k);
    ++k;
  }
  std::vector<uint32_t> members;
  members.reserve(static_cast<size_t>(k));
  uint64_t next = 0;
  for (uint64_t slot = k; slot >= 1; --slot) {
    while (true) {
      const uint64_t tail = choose(p - 1 - next, slot - 1);
      if (event < tail) break;
      event -= tail;
      ++next;
    }
    members.push_back(static_cast<uint32_t>(next));
    ++next;
  }
  return members;
}

ScenarioSpace::Coordinates ScenarioSpace::decode(uint64_t candidate) const {
  util::require(candidate < size(), "ScenarioSpace::decode: candidate ",
                candidate, " out of range (", size(), " candidates)");
  const uint64_t block =
      static_cast<uint64_t>(alignments.size()) * strengths.size();
  Coordinates c;
  const uint64_t event = candidate / block;
  util::require(event <= std::numeric_limits<uint32_t>::max(),
                "ScenarioSpace::decode: event index overflows uint32");
  c.pair = static_cast<uint32_t>(event);
  const uint64_t rem = candidate % block;
  c.alignment = static_cast<uint32_t>(rem / strengths.size());
  c.strength = static_cast<uint32_t>(rem % strengths.size());
  return c;
}

ScenarioSpace make_scenario_space(
    const StaEngine& sta, const netlist::Netlist& netlist,
    std::span<const interconnect::CouplingCandidate> candidates,
    const DrivesPredicate& drives, std::vector<double> alignments,
    std::vector<double> strengths, const ScenarioSpaceOptions& options) {
  util::require(options.cm_reference > 0.0,
                "make_scenario_space: cm_reference must be > 0");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ScenarioSpace space;
  space.alignments = std::move(alignments);
  space.strengths = std::move(strengths);
  space.vdd = sta.library().nom_voltage;
  space.waveform_samples = options.waveform_samples;
  space.bump_sigma_factor = options.bump_sigma_factor;
  space.window_slop = options.window_slop;
  // The generated bump pushes against a falling victim transition (the
  // paper's Figure 1 worst case), so victim timing is read at kFall.
  const RiseFall victim_rf = RiseFall::kFall;
  const auto n_nets = static_cast<int32_t>(netlist.nets().size());
  for (const auto& cand : candidates) {
    if (cand.victim_net < 0 || cand.victim_net >= n_nets ||
        cand.aggressor_net < 0 || cand.aggressor_net >= n_nets) {
      continue;
    }
    const std::string& victim =
        netlist.nets()[static_cast<size_t>(cand.victim_net)];
    const std::string& aggressor =
        netlist.nets()[static_cast<size_t>(cand.aggressor_net)];
    // Victim anchor: the latest-arriving valid falling sink of the net
    // (the transition a coupling bump has the most time to disturb).
    double v_arrival = -kInf;
    double v_slew = 0.0;
    bool v_ok = false;
    std::string v_pin;
    for (const auto& ref : netlist.pins_on_net(victim)) {
      if (drives(*ref.instance, ref.pin)) continue;
      std::string vertex = ref.instance->name + "/" + ref.pin;
      const PinId id = sta.find_pin(vertex);
      if (!id.valid()) continue;
      const auto& t = sta.timing(id, victim_rf);
      if (!t.valid || t.slew <= 0.0) continue;
      if (!v_ok || t.arrival > v_arrival) {
        v_arrival = t.arrival;
        v_slew = t.slew;
        v_pin = std::move(vertex);
        v_ok = true;
      }
    }
    if (!v_ok) continue;  // victim never makes a falling transition here
    // Aggressor switching window: the envelope of (arrival ± slew) over
    // both transitions of every pin on the aggressor net (port vertex
    // included) — outside it the aggressor cannot be switching, so a
    // bump there is infeasible.
    double lo = kInf;
    double hi = -kInf;
    std::vector<std::string> a_pins;
    auto widen = [&](const std::string& vertex_name) {
      const PinId id = sta.find_pin(vertex_name);
      if (!id.valid()) return;
      a_pins.push_back(vertex_name);
      for (int rf = 0; rf < 2; ++rf) {
        const auto& t = sta.timing(id, static_cast<RiseFall>(rf));
        if (!t.valid) continue;
        lo = std::min(lo, t.arrival - t.slew);
        hi = std::max(hi, t.arrival + t.slew);
      }
    };
    for (const auto& ref : netlist.pins_on_net(aggressor)) {
      widen(ref.instance->name + "/" + ref.pin);
    }
    if (netlist.is_interface_net(aggressor)) widen(aggressor);
    if (!(lo <= hi)) continue;  // aggressor never switches in this corner
    ScenarioPair pair;
    pair.victim_net = cand.victim_net;
    pair.aggressor_net = cand.aggressor_net;
    pair.victim_name = victim;
    pair.aggressor_name = aggressor;
    pair.victim_arrival = v_arrival;
    pair.victim_slew = v_slew;
    pair.aggressor_window_lo = lo;
    pair.aggressor_window_hi = hi;
    pair.coupling_scale = cand.cm_total / options.cm_reference;
    pair.victim_pin = std::move(v_pin);
    pair.aggressor_pins = std::move(a_pins);
    space.pairs.push_back(std::move(pair));
  }
  return space;
}

// ---------------------------------------------------------------------------
// CorrelationRule / GenStats
// ---------------------------------------------------------------------------

bool CorrelationRule::can_switch_set(
    std::span<const int32_t> /*victim_nets*/,
    std::span<const int32_t> /*aggressor_nets*/) const {
  return true;  // pairwise lift only; no set-level constraint by default
}

bool GenStats::check() const noexcept {
  return generated == window_killed + correlation_killed + set_killed +
                          prune_killed + reused + evaluated;
}

// ---------------------------------------------------------------------------
// CoupledBumpCache
// ---------------------------------------------------------------------------

const wave::Waveform* CoupledBumpCache::find(uint64_t key) noexcept {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const wave::Waveform& CoupledBumpCache::insert(uint64_t key,
                                               wave::Waveform waveform) {
  return entries_.insert_or_assign(key, std::move(waveform)).first->second;
}

uint64_t coupled_bump_key(
    const interconnect::CoupledLinePair& pair,
    const interconnect::CoupledBumpOptions& options) noexcept {
  // Exactly the numbers coupled_bump_shape() consumes; line names are
  // display-only and excluded.
  uint64_t h = kFnvOffset;
  h = mix(h, static_cast<uint64_t>(pair.aggressor.segments));
  h = mix(h, pair.aggressor.r_total);
  h = mix(h, pair.aggressor.c_total);
  h = mix(h, static_cast<uint64_t>(pair.victim.segments));
  h = mix(h, pair.victim.r_total);
  h = mix(h, pair.victim.c_total);
  h = mix(h, pair.cm_total);
  h = mix(h, pair.drive_resistance);
  h = mix(h, pair.hold_resistance);
  h = mix(h, pair.load_cap);
  h = mix(h, options.transition);
  h = mix(h, static_cast<uint64_t>(options.steps));
  h = mix(h, static_cast<uint64_t>(options.samples));
  h = mix(h, options.span_factor);
  return h;
}

// ---------------------------------------------------------------------------
// StructuralCorrelationRule
// ---------------------------------------------------------------------------

StructuralCorrelationRule::StructuralCorrelationRule(
    const netlist::Netlist& netlist, DrivesPredicate drives)
    : netlist_(&netlist), drives_(std::move(drives)) {}

const char* StructuralCorrelationRule::name() const noexcept {
  return "structural";
}

const std::vector<int>& StructuralCorrelationRule::fanout(int32_t net) const {
  auto it = fanout_memo_.find(net);
  if (it == fanout_memo_.end()) {
    const int seed = net;
    it = fanout_memo_
             .emplace(net, netlist_->transitive_fanout_nets(
                               std::span<const int>(&seed, 1), drives_))
             .first;
  }
  return it->second;
}

bool StructuralCorrelationRule::can_switch_together(
    int32_t victim_net, int32_t aggressor_net) const {
  if (victim_net == aggressor_net) return false;
  const auto* victim_driver = netlist_->driver_of(victim_net, drives_);
  const auto* aggressor_driver = netlist_->driver_of(aggressor_net, drives_);
  if (victim_driver != nullptr && victim_driver == aggressor_driver) {
    return false;  // complementary outputs of one cell
  }
  // Causal ordering: fanout sets are sorted ascending
  // (transitive_fanout_nets contract), so membership is a binary search.
  const auto& victim_cone = fanout(victim_net);
  if (std::binary_search(victim_cone.begin(), victim_cone.end(),
                         aggressor_net)) {
    return false;
  }
  const auto& aggressor_cone = fanout(aggressor_net);
  return !std::binary_search(aggressor_cone.begin(), aggressor_cone.end(),
                             victim_net);
}

// ---------------------------------------------------------------------------
// ScenarioGenerator
// ---------------------------------------------------------------------------

ScenarioGenerator::ScenarioGenerator(const ScenarioSpace& space,
                                     const CorrelationRule* correlation,
                                     CoupledBumpCache* bump_cache)
    : space_(&space), correlation_(correlation), bump_cache_(bump_cache) {
  util::require(space.max_aggressors >= 1,
                "ScenarioGenerator: max_aggressors must be >= 1");
  util::require(space.num_events() <= std::numeric_limits<uint32_t>::max(),
                "ScenarioGenerator: event count overflows uint32");
  if (space.bump_shape == BumpShape::kCoupledLine) {
    // Content keys of the unit shapes, one per pair: the pair/option
    // numbers AFTER per-pair scaling, so pairs resolving to the same
    // physical testbench share one cache entry — within this generator
    // and across any generators sharing the external cache.
    pair_bump_key_.reserve(space.pairs.size());
    for (const auto& p : space.pairs) {
      interconnect::CoupledLinePair bench = space.coupled_pair;
      bench.cm_total *= p.coupling_scale;
      interconnect::CoupledBumpOptions opts = space.coupled_bump;
      if (p.victim_slew > 0.0) opts.transition = p.victim_slew;
      pair_bump_key_.push_back(coupled_bump_key(bench, opts));
    }
  }
  // Per-member correlation depends only on the pair, so it is resolved
  // once here; the per-candidate accounting still happens in next() so
  // the funnel counts every skipped candidate.
  pair_feasible_.assign(space.pairs.size(), 1);
  if (correlation != nullptr) {
    for (size_t p = 0; p < space.pairs.size(); ++p) {
      pair_feasible_[p] =
          correlation->can_switch_together(space.pairs[p].victim_net,
                                           space.pairs[p].aggressor_net)
              ? 1
              : 0;
    }
  }
}

bool ScenarioGenerator::members_compatible(uint32_t a, uint32_t b) const {
  const uint32_t lo = std::min(a, b);
  const uint32_t hi = std::max(a, b);
  const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
  if (const auto it = compat_memo_.find(key); it != compat_memo_.end()) {
    return it->second != 0;
  }
  const auto& pa = space_->pairs[lo];
  const auto& pb = space_->pairs[hi];
  // Structural independence: two members of one event must bring
  // distinct aggressors, and no member's aggressor may double as
  // another member's victim (the "aggressor" would be the disturbed
  // net itself, not an independent simultaneous switch).
  bool ok = pa.aggressor_net != pb.aggressor_net &&
            pa.aggressor_net != pb.victim_net &&
            pb.aggressor_net != pa.victim_net;
  // Cross queries of the pairwise rule: each victim against the other
  // member's aggressor, and the two aggressors against each other.
  if (ok && correlation_ != nullptr) {
    ok = correlation_->can_switch_together(pa.victim_net, pb.aggressor_net) &&
         correlation_->can_switch_together(pb.victim_net, pa.aggressor_net) &&
         correlation_->can_switch_together(pa.aggressor_net,
                                           pb.aggressor_net);
  }
  compat_memo_.emplace(key, ok ? 1 : 0);
  return ok;
}

void ScenarioGenerator::refresh_event(uint32_t event) {
  cur_event_ = event;
  cur_members_ = space_->event_members(event);
  cur_verdict_ = EventVerdict::kOk;
  for (const uint32_t m : cur_members_) {
    if (pair_feasible_[m] == 0) {
      cur_verdict_ = EventVerdict::kCorrelationKilled;
      return;
    }
  }
  for (size_t i = 0; i + 1 < cur_members_.size(); ++i) {
    for (size_t j = i + 1; j < cur_members_.size(); ++j) {
      if (!members_compatible(cur_members_[i], cur_members_[j])) {
        cur_verdict_ = EventVerdict::kCorrelationKilled;
        return;
      }
    }
  }
  // Only sets whose every member and member pair survived the lift
  // reach the set-level rule — its kills are genuinely set-level.
  if (correlation_ != nullptr) {
    std::vector<int32_t> victims;
    std::vector<int32_t> aggressors;
    victims.reserve(cur_members_.size());
    aggressors.reserve(cur_members_.size());
    for (const uint32_t m : cur_members_) {
      victims.push_back(space_->pairs[m].victim_net);
      aggressors.push_back(space_->pairs[m].aggressor_net);
    }
    if (!correlation_->can_switch_set(victims, aggressors)) {
      cur_verdict_ = EventVerdict::kSetKilled;
    }
  }
}

bool ScenarioGenerator::window_feasible(uint32_t pair,
                                        uint32_t alignment) const {
  const auto& p = space_->pairs[pair];
  // The generated bump is a Gaussian of sigma = bump_sigma_factor ×
  // victim_slew centred (victim_arrival + alignment); its support is
  // taken as ±3σ (beyond that the bump is < 0.02% of its peak and
  // cannot move a crossing).
  const double sigma = space_->bump_sigma_factor * p.victim_slew;
  const double half_width = 3.0 * sigma;
  const double center = p.victim_arrival + space_->alignments[alignment];
  const double slop = space_->window_slop;
  // (a) the bump must overlap the victim transition window …
  const double victim_lo = p.victim_arrival - p.victim_slew;
  const double victim_hi = p.victim_arrival + p.victim_slew;
  if (center + half_width < victim_lo - slop) return false;
  if (center - half_width > victim_hi + slop) return false;
  // (b) … and the aggressor must be able to switch when the bump fires.
  if (center + half_width < p.aggressor_window_lo - slop) return false;
  if (center - half_width > p.aggressor_window_hi + slop) return false;
  return true;
}

std::optional<ScenarioGenerator::Candidate> ScenarioGenerator::next() {
  const uint64_t total = space_->size();
  const auto n_strengths = static_cast<uint64_t>(space_->strengths.size());
  while (cursor_ < total) {
    const auto c = space_->decode(cursor_);
    if (c.pair != cur_event_) refresh_event(c.pair);
    if (c.strength == 0) {
      // Block head: feasibility is strength-independent, so one verdict
      // covers the whole strength block — kills advance the cursor past
      // all |strengths| candidates at once.  Stage order (window before
      // correlation before set) is per block, matching the historical
      // single-aggressor funnel bit for bit at k = 1.
      bool windows_ok = true;
      for (const uint32_t m : cur_members_) {
        if (!window_feasible(m, c.alignment)) {
          windows_ok = false;
          break;
        }
      }
      if (!windows_ok) {
        stats_.generated += n_strengths;
        stats_.window_killed += n_strengths;
        cursor_ += n_strengths;
        continue;
      }
      if (cur_verdict_ == EventVerdict::kCorrelationKilled) {
        stats_.generated += n_strengths;
        stats_.correlation_killed += n_strengths;
        cursor_ += n_strengths;
        continue;
      }
      if (cur_verdict_ == EventVerdict::kSetKilled) {
        stats_.generated += n_strengths;
        stats_.set_killed += n_strengths;
        cursor_ += n_strengths;
        continue;
      }
    }
    ++stats_.generated;
    const Candidate out{cursor_, c.pair, c.alignment, c.strength};
    ++cursor_;
    return out;
  }
  return std::nullopt;
}

const wave::Waveform& ScenarioGenerator::scaled_bump(uint32_t pair,
                                                     uint32_t strength) const {
  CoupledBumpCache& cache =
      bump_cache_ != nullptr ? *bump_cache_ : owned_bump_cache_;
  const auto probe = [&](uint64_t key) -> const wave::Waveform* {
    const wave::Waveform* w = cache.find(key);
    if (w != nullptr) {
      ++stats_.bump_cache_hits;
    } else {
      ++stats_.bump_cache_misses;
    }
    return w;
  };
  const double sign =
      space_->polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  const double amp =
      sign * space_->strengths[strength] * space_->pairs[pair].coupling_scale;
  // Scaled entries key on (unit content, applied amplitude): identical
  // content ⇒ bitwise-identical waveform (coupled_bump_shape and the
  // scaling below are deterministic functions of exactly those
  // numbers), so sharing across generators and corners is safe.
  const uint64_t unit_key = pair_bump_key_[pair];
  const uint64_t scaled_key = mix(mix(unit_key, kScaledBumpTag), amp);
  if (const wave::Waveform* hit = probe(scaled_key)) return *hit;
  const wave::Waveform* unit = probe(unit_key);
  if (unit == nullptr) {
    const auto& p = space_->pairs[pair];
    interconnect::CoupledLinePair bench = space_->coupled_pair;
    bench.cm_total *= p.coupling_scale;
    interconnect::CoupledBumpOptions opts = space_->coupled_bump;
    if (p.victim_slew > 0.0) opts.transition = p.victim_slew;
    unit = &cache.insert(unit_key,
                         interconnect::coupled_bump_shape(bench, opts));
  }
  std::vector<double> t(unit->times().begin(), unit->times().end());
  std::vector<double> v(unit->values().begin(), unit->values().end());
  for (auto& x : v) x *= amp;
  return cache.insert(scaled_key, wave::Waveform(std::move(t), std::move(v)));
}

NoiseScenario ScenarioGenerator::materialize(const Candidate& c) const {
  const double alignment = space_->alignments[c.alignment];
  const double strength = space_->strengths[c.strength];
  const std::vector<uint32_t> members = space_->event_members(c.pair);
  if (members.size() == 1 && space_->bump_shape == BumpShape::kGaussian) {
    // The historical single-aggressor path, taken verbatim so k = 1
    // Gaussian spaces materialize bitwise-identical scenarios.
    const auto& pair = space_->pairs[members[0]];
    return make_aggressor_scenario(
        pair.victim_name, pair.victim_arrival, pair.victim_slew, space_->vdd,
        space_->polarity, alignment, strength * pair.coupling_scale,
        space_->waveform_samples);
  }
  NoiseScenario s;
  {
    std::ostringstream name;
    for (size_t i = 0; i < members.size(); ++i) {
      const auto& pair = space_->pairs[members[i]];
      if (i != 0) name << "+";
      name << pair.victim_name << "@align=" << alignment * 1e12
           << "ps,strength=" << strength * pair.coupling_scale << "V";
    }
    s.name = name.str();
  }
  const double sign =
      space_->polarity == wave::Polarity::kFalling ? 1.0 : -1.0;
  // One NoiseScenario entry per distinct victim net: members sharing a
  // victim superpose their bumps on one clean ramp (the first such
  // member's anchor timing), in ascending member order.
  std::vector<char> done(members.size(), 0);
  for (size_t i = 0; i < members.size(); ++i) {
    if (done[i] != 0) continue;
    const auto& anchor = space_->pairs[members[i]];
    const auto ramp = wave::Ramp::from_arrival_slew(
        anchor.victim_arrival, anchor.victim_slew, space_->vdd);
    const auto clean =
        ramp.denormalized(space_->polarity, space_->waveform_samples);
    std::vector<double> t(clean.times().begin(), clean.times().end());
    std::vector<double> v(clean.values().begin(), clean.values().end());
    for (size_t j = i; j < members.size(); ++j) {
      const auto& pair = space_->pairs[members[j]];
      if (pair.victim_net != anchor.victim_net) continue;
      done[j] = 1;
      const double center = pair.victim_arrival + alignment;
      if (space_->bump_shape == BumpShape::kGaussian) {
        // The make_aggressor_scenario bump, term for term.
        const double sigma = 0.5 * pair.victim_slew;
        const double amp = strength * pair.coupling_scale;
        for (size_t n = 0; n < t.size(); ++n) {
          v[n] += sign * amp *
                  std::exp(-std::pow((t[n] - center) / sigma, 2.0));
        }
      } else {
        const auto& bump = scaled_bump(members[j], c.strength);
        for (size_t n = 0; n < t.size(); ++n) {
          v[n] += bump.at(t[n] - center);
        }
      }
    }
    s.annotate(anchor.victim_name, wave::Waveform(std::move(t), std::move(v)),
               space_->polarity);
  }
  return s;
}

// ---------------------------------------------------------------------------
// GeneratedSweepResult
// ---------------------------------------------------------------------------

double GeneratedSweepResult::worst_slack() const {
  return worst_point().slack;
}

const GeneratedSweepResult::WorstPoint& GeneratedSweepResult::worst_point()
    const {
  util::require(has_worst_,
                "GeneratedSweepResult::worst_point: no point survived the "
                "funnel (every candidate was window-, correlation- or "
                "prune-killed; see gen_stats())");
  return worst_;
}

std::string GeneratedSweepResult::funnel_report() const {
  const auto& g = gen_stats_;
  std::ostringstream os;
  os << "scenario funnel (" << num_corners_ << " corner(s) x "
     << (num_corners_ > 0 ? g.generated / num_corners_ : 0)
     << " candidates = " << g.generated << " points; chunks=" << g.chunks
     << " peak_resident_scenarios=" << g.peak_resident_scenarios << ")\n";
  const auto line = [&os, &g](const char* field, uint64_t value) {
    const double pct =
        g.generated != 0
            ? 100.0 * static_cast<double>(value) /
                  static_cast<double>(g.generated)
            : 0.0;
    char buf[80];
    std::snprintf(buf, sizeof(buf), "  %-20s %14llu  (%6.2f%%)\n", field,
                  static_cast<unsigned long long>(value), pct);
    os << buf;
  };
  line("generated", g.generated);
  line("window_killed", g.window_killed);
  line("correlation_killed", g.correlation_killed);
  line("set_killed", g.set_killed);
  line("prune_killed", g.prune_killed);
  line("reused", g.reused);
  line("evaluated", g.evaluated);
  return os.str();
}

// ---------------------------------------------------------------------------
// rewindow_scenario_space
// ---------------------------------------------------------------------------

namespace {

/// The shared re-windowing pass of both rewindow_scenario_space()
/// overloads: rewrites each pair's windows from `base` (the corner
/// baseline of `sta`).
void apply_rewindow(const StaEngine& sta, const TimingState& base,
                    ScenarioSpace& space) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const RiseFall victim_rf =
      space.polarity == wave::Polarity::kFalling ? RiseFall::kFall
                                                 : RiseFall::kRise;
  for (auto& pair : space.pairs) {
    if (pair.victim_pin.empty() && pair.aggressor_pins.empty()) {
      continue;  // hand-built pair: keep its stored windows
    }
    bool victim_ok = pair.victim_pin.empty();
    if (!victim_ok) {
      const PinId id = sta.find_pin(pair.victim_pin);
      if (id.valid()) {
        const auto& t = sta.timing_in(base, id, victim_rf);
        if (t.valid && t.slew > 0.0) {
          pair.victim_arrival = t.arrival;
          pair.victim_slew = t.slew;
          victim_ok = true;
        }
      }
    }
    double lo = pair.aggressor_window_lo;
    double hi = pair.aggressor_window_hi;
    if (!pair.aggressor_pins.empty()) {
      lo = kInf;
      hi = -kInf;
      for (const auto& vertex : pair.aggressor_pins) {
        const PinId id = sta.find_pin(vertex);
        if (!id.valid()) continue;
        for (int rf = 0; rf < 2; ++rf) {
          const auto& t = sta.timing_in(base, id, static_cast<RiseFall>(rf));
          if (!t.valid) continue;
          lo = std::min(lo, t.arrival - t.slew);
          hi = std::max(hi, t.arrival + t.slew);
        }
      }
    }
    if (!victim_ok || !(lo <= hi)) {
      // Dead under this corner: an empty aggressor window window-kills
      // every alignment while keeping candidate indices stable.
      pair.aggressor_window_lo = kInf;
      pair.aggressor_window_hi = -kInf;
    } else {
      pair.aggressor_window_lo = lo;
      pair.aggressor_window_hi = hi;
    }
  }
}

}  // namespace

ScenarioSpace rewindow_scenario_space(StaEngine& sta, const Corner& corner,
                                      ScenarioSpace space) {
  sta.prepare();
  const auto edge_noise = sta.compile_edge_annotations();
  StaEngine::EvalContext ctx;
  ctx.edge_noise = edge_noise.data();
  ctx.corner = &corner;
  ctx.corner_key = corner.key();
  ctx.method = &sta.noise_method();
  TimingState base;
  sta.evaluate(base, ctx);
  apply_rewindow(sta, base, space);
  return space;
}

ScenarioSpace rewindow_scenario_space(const StaEngine& sta,
                                      const Corner& /*corner*/,
                                      ScenarioSpace space,
                                      const TimingState& baseline) {
  util::require(baseline.size() == sta.vertex_count(),
                "rewindow_scenario_space: baseline has ", baseline.size(),
                " vertices, engine has ", sta.vertex_count(),
                " (baseline from another engine?)");
  apply_rewindow(sta, baseline, space);
  return space;
}

// ---------------------------------------------------------------------------
// StaEngine::sweep(GeneratedSweepSpec) — the streaming funnel
// ---------------------------------------------------------------------------

GeneratedSweepResult StaEngine::sweep(const GeneratedSweepSpec& gspec) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  GeneratedSweepResult r;
  r.num_corners_ = gspec.corners.empty() ? 1 : gspec.corners.size();
  const auto n_corners = static_cast<uint64_t>(r.num_corners_);
  const size_t chunk = gspec.gen_chunk != 0 ? gspec.gen_chunk : 512;

  // Corner groups: with per_corner_windows each corner streams its own
  // generator pass over its own re-windowed space (one corner per
  // group); otherwise one pass feeds every corner at once.  Either way
  // each (corner, candidate) point enters the funnel exactly once, so
  // the funnel stays in point units — gen_scale converts a pass's
  // candidate-unit counters.
  const bool per_corner = gspec.per_corner_windows && !gspec.corners.empty();
  const size_t n_groups = per_corner ? gspec.corners.size() : 1;
  const uint64_t gen_scale = per_corner ? 1 : n_corners;

  // One persistent coupled-bump store for every generator pass of this
  // sweep (and beyond, when the caller provided one).
  CoupledBumpCache owned_bump_cache;
  CoupledBumpCache* bump_cache =
      gspec.bump_cache != nullptr ? gspec.bump_cache : &owned_bump_cache;

  // The delta/prune paths need one clean baseline per corner.  They are
  // computed ONCE per corner group here — re-windowing reads the same
  // states instead of running its own evaluate(), and every chunk's
  // sweep receives them through SweepSpec::corner_baselines instead of
  // recomputing them per chunk.  Corner resolution mirrors
  // sweep(SweepSpec); serial evaluate() is bitwise identical to the
  // pooled baseline pass it replaces.
  const bool needs_baselines =
      gspec.delta || gspec.prune == PruneMode::kSafe;
  std::vector<Corner> resolved_corners = gspec.corners;
  if (resolved_corners.empty()) {
    resolved_corners.push_back(corner_ ? *corner_ : Corner{});
  }

  // One pool serves every chunk's sweep (building a pool per chunk
  // would dominate small chunks).
  const size_t want = gspec.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(gspec.threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = gspec.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(static_cast<int>(want));
    pool = owned_pool.get();
  }

  SweepSpec proto;
  proto.corners = gspec.corners;
  proto.threads = gspec.threads;
  proto.share_gamma_cache = gspec.share_gamma_cache;
  proto.method = gspec.method;
  proto.pool = pool;
  proto.shard = gspec.shard;
  proto.wide_partition_threshold = gspec.wide_partition_threshold;
  proto.endpoint_only = true;  // the streaming mode's memory contract
  proto.endpoint_chunk = gspec.endpoint_chunk;
  proto.delta = gspec.delta;
  proto.prune = gspec.prune;
  proto.lanes = gspec.lanes;

  // Aggregation state across chunks.  The survivor-weighted fraction /
  // gap sums reconstruct the means a single eager sweep would report.
  auto& ps = r.prune_stats_;
  double worst_seen = kInf;
  double dirty_vertex_sum = 0.0;
  double dirty_partition_sum = 0.0;
  double gap_sum = 0.0;
  double gap_min = kInf;
  uint64_t scenario_total = 0;
  std::vector<uint64_t> chunk_candidates;
  // Gen-stage kill totals of COMPLETED groups, already in point units.
  GenStats done;

  // Point-unit funnel snapshot: gen-stage counters of the running pass
  // (scaled) on top of finished groups, sweep-stage counters from the
  // aggregated PruneStats.  At every chunk boundary all drawn survivors
  // have been dispatched, so the funnel identity must hold — asserted
  // in debug builds (satellite: funnel drift fails loudly).
  const auto snapshot_funnel = [&](const GenStats& gs) {
    r.gen_stats_.generated = done.generated + gs.generated * gen_scale;
    r.gen_stats_.window_killed =
        done.window_killed + gs.window_killed * gen_scale;
    r.gen_stats_.correlation_killed =
        done.correlation_killed + gs.correlation_killed * gen_scale;
    r.gen_stats_.set_killed = done.set_killed + gs.set_killed * gen_scale;
    r.gen_stats_.prune_killed = ps.pruned;
    r.gen_stats_.reused = ps.reused;
    r.gen_stats_.evaluated = ps.evaluated;
    // Cache traffic is per-waveform, not per-point: never scaled.
    r.gen_stats_.bump_cache_hits = done.bump_cache_hits + gs.bump_cache_hits;
    r.gen_stats_.bump_cache_misses =
        done.bump_cache_misses + gs.bump_cache_misses;
    assert(r.gen_stats_.check());
  };

  for (size_t g = 0; g < n_groups; ++g) {
    const ScenarioSpace* space = &gspec.space;
    std::optional<ScenarioSpace> rewindowed;
    SweepSpec group_proto = proto;
    std::vector<TimingState> baselines;
    if (needs_baselines) {
      prepare();
      const auto base_table = compile_edge_annotations(nullptr);
      const core::EquivalentWaveformMethod* method =
          gspec.method != nullptr ? gspec.method : noise_method_.get();
      const std::vector<Corner>& group_corners =
          per_corner ? std::vector<Corner>{gspec.corners[g]}
                     : resolved_corners;
      baselines.resize(group_corners.size());
      for (size_t c = 0; c < group_corners.size(); ++c) {
        EvalContext ctx;
        ctx.edge_noise = base_table.data();
        ctx.corner = &group_corners[c];
        ctx.corner_key = group_corners[c].key();
        ctx.method = method;
        evaluate(baselines[c], ctx);
      }
      group_proto.corner_baselines = &baselines;
    }
    if (per_corner) {
      rewindowed =
          needs_baselines
              ? rewindow_scenario_space(
                    static_cast<const StaEngine&>(*this), gspec.corners[g],
                    gspec.space, baselines.front())
              : rewindow_scenario_space(*this, gspec.corners[g], gspec.space);
      space = &*rewindowed;
      group_proto.corners = {gspec.corners[g]};
    }
    ScenarioGenerator gen(*space, gspec.correlation, bump_cache);
    while (true) {
      SweepSpec spec = group_proto;
      chunk_candidates.clear();
      while (chunk_candidates.size() < chunk) {
        const auto c = gen.next();
        if (!c.has_value()) break;
        spec.scenarios.push_back(gen.materialize(*c));
        chunk_candidates.push_back(c->index);
      }
      if (chunk_candidates.empty()) break;
      const auto n_scenarios = chunk_candidates.size();
      // Later chunks prune against the worst slack already attained —
      // same exactness argument as within one sweep (strict-> admission).
      // The seed carries across corner groups too: an exact worst from
      // one corner bounds the others just as well.
      spec.prune_seed_slack = worst_seen;
      const SweepResult sr = sweep(spec);

      ++r.gen_stats_.chunks;
      r.gen_stats_.peak_resident_scenarios = std::max<uint64_t>(
          r.gen_stats_.peak_resident_scenarios, n_scenarios);
      scenario_total += n_scenarios;
      const auto& cs = sr.prune_stats();
      ps.points += cs.points;
      ps.evaluated += cs.evaluated;
      ps.reused += cs.reused;
      ps.pruned += cs.pruned;
      dirty_vertex_sum +=
          cs.dirty_vertex_fraction * static_cast<double>(n_scenarios);
      dirty_partition_sum +=
          cs.dirty_partition_fraction * static_cast<double>(n_scenarios);
      if (cs.evaluated > 0 && gspec.prune == PruneMode::kSafe) {
        gap_sum += cs.mean_bound_gap * static_cast<double>(cs.evaluated);
        gap_min = std::min(gap_min, cs.min_bound_gap);
      }

      for (size_t c = 0; c < sr.num_corners(); ++c) {
        // In per-corner mode each group sweeps one corner — map the
        // chunk-local ordinal back to the global corner axis.
        const size_t corner = per_corner ? g : c;
        for (size_t s = 0; s < n_scenarios; ++s) {
          const size_t p = sr.point(c, s);
          if (sr.pruned(p)) continue;
          const double ws = sr.worst_slack(p);
          const uint64_t candidate = chunk_candidates[s];
          if (gspec.keep_point_records) {
            r.points_.push_back({candidate, static_cast<uint32_t>(corner),
                                 ws});
          }
          // Ties resolve to the smallest (corner, candidate) —
          // candidate indices ascend across chunks and corner groups
          // run in ascending corner order, so this reproduces the
          // argmin (first flat index) an eager corner-major sweep
          // would report.
          const bool better =
              !r.has_worst_ || ws < r.worst_.slack ||
              (ws == r.worst_.slack &&
               (corner < r.worst_.corner ||
                (corner == r.worst_.corner &&
                 candidate < r.worst_.candidate)));
          if (better) {
            r.worst_.candidate = candidate;
            r.worst_.corner = corner;
            r.worst_.scenario_name = sr.scenario_name(s);
            r.worst_.slack = ws;
            r.has_worst_ = true;
          }
          worst_seen = std::min(worst_seen, ws);
        }
      }
      snapshot_funnel(gen.stats());
    }
    // Fold the finished pass into the point-unit totals (covers passes
    // whose every candidate died before the first chunk filled, too).
    const auto& gs = gen.stats();
    done.generated += gs.generated * gen_scale;
    done.window_killed += gs.window_killed * gen_scale;
    done.correlation_killed += gs.correlation_killed * gen_scale;
    done.set_killed += gs.set_killed * gen_scale;
    done.bump_cache_hits += gs.bump_cache_hits;
    done.bump_cache_misses += gs.bump_cache_misses;
  }

  if (scenario_total > 0) {
    ps.dirty_vertex_fraction =
        dirty_vertex_sum / static_cast<double>(scenario_total);
    ps.dirty_partition_fraction =
        dirty_partition_sum / static_cast<double>(scenario_total);
  }
  if (ps.evaluated > 0 && gspec.prune == PruneMode::kSafe) {
    ps.mean_bound_gap = gap_sum / static_cast<double>(ps.evaluated);
    ps.min_bound_gap = gap_min;
  }

  // The final funnel in point units: the generator passes count
  // candidates (every candidate becomes one point per corner of its
  // pass), and the sweep-stage kills come from the aggregated
  // PruneStats.  By construction
  //   generated == window_killed + correlation_killed + set_killed
  //                + prune_killed + reused + evaluated.
  r.gen_stats_.generated = done.generated;
  r.gen_stats_.window_killed = done.window_killed;
  r.gen_stats_.correlation_killed = done.correlation_killed;
  r.gen_stats_.set_killed = done.set_killed;
  r.gen_stats_.prune_killed = ps.pruned;
  r.gen_stats_.reused = ps.reused;
  r.gen_stats_.evaluated = ps.evaluated;
  r.gen_stats_.bump_cache_hits = done.bump_cache_hits;
  r.gen_stats_.bump_cache_misses = done.bump_cache_misses;
  assert(r.gen_stats_.check());
  return r;
}

}  // namespace waveletic::sta
