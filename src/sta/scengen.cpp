#include "sta/scengen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace waveletic::sta {

DrivesPredicate make_drives_predicate(const liberty::Library& library) {
  return [&library](const netlist::Instance& inst, const std::string& pin) {
    const auto* cell = library.find_cell(inst.cell);
    if (cell == nullptr) return false;
    const auto* p = cell->find_pin(pin);
    return p != nullptr && p->direction == liberty::PinDirection::kOutput;
  };
}

// ---------------------------------------------------------------------------
// ScenarioSpace
// ---------------------------------------------------------------------------

ScenarioSpace::Coordinates ScenarioSpace::decode(uint64_t candidate) const {
  util::require(candidate < size(), "ScenarioSpace::decode: candidate ",
                candidate, " out of range (", size(), " candidates)");
  const uint64_t block =
      static_cast<uint64_t>(alignments.size()) * strengths.size();
  Coordinates c;
  c.pair = static_cast<uint32_t>(candidate / block);
  const uint64_t rem = candidate % block;
  c.alignment = static_cast<uint32_t>(rem / strengths.size());
  c.strength = static_cast<uint32_t>(rem % strengths.size());
  return c;
}

ScenarioSpace make_scenario_space(
    const StaEngine& sta, const netlist::Netlist& netlist,
    std::span<const interconnect::CouplingCandidate> candidates,
    const DrivesPredicate& drives, std::vector<double> alignments,
    std::vector<double> strengths, const ScenarioSpaceOptions& options) {
  util::require(options.cm_reference > 0.0,
                "make_scenario_space: cm_reference must be > 0");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ScenarioSpace space;
  space.alignments = std::move(alignments);
  space.strengths = std::move(strengths);
  space.vdd = sta.library().nom_voltage;
  space.waveform_samples = options.waveform_samples;
  space.bump_sigma_factor = options.bump_sigma_factor;
  space.window_slop = options.window_slop;
  // The generated bump pushes against a falling victim transition (the
  // paper's Figure 1 worst case), so victim timing is read at kFall.
  const RiseFall victim_rf = RiseFall::kFall;
  const auto n_nets = static_cast<int32_t>(netlist.nets().size());
  for (const auto& cand : candidates) {
    if (cand.victim_net < 0 || cand.victim_net >= n_nets ||
        cand.aggressor_net < 0 || cand.aggressor_net >= n_nets) {
      continue;
    }
    const std::string& victim =
        netlist.nets()[static_cast<size_t>(cand.victim_net)];
    const std::string& aggressor =
        netlist.nets()[static_cast<size_t>(cand.aggressor_net)];
    // Victim anchor: the latest-arriving valid falling sink of the net
    // (the transition a coupling bump has the most time to disturb).
    double v_arrival = -kInf;
    double v_slew = 0.0;
    bool v_ok = false;
    for (const auto& ref : netlist.pins_on_net(victim)) {
      if (drives(*ref.instance, ref.pin)) continue;
      const PinId id = sta.find_pin(ref.instance->name + "/" + ref.pin);
      if (!id.valid()) continue;
      const auto& t = sta.timing(id, victim_rf);
      if (!t.valid || t.slew <= 0.0) continue;
      if (!v_ok || t.arrival > v_arrival) {
        v_arrival = t.arrival;
        v_slew = t.slew;
        v_ok = true;
      }
    }
    if (!v_ok) continue;  // victim never makes a falling transition here
    // Aggressor switching window: the envelope of (arrival ± slew) over
    // both transitions of every pin on the aggressor net (port vertex
    // included) — outside it the aggressor cannot be switching, so a
    // bump there is infeasible.
    double lo = kInf;
    double hi = -kInf;
    auto widen = [&](const std::string& vertex_name) {
      const PinId id = sta.find_pin(vertex_name);
      if (!id.valid()) return;
      for (int rf = 0; rf < 2; ++rf) {
        const auto& t = sta.timing(id, static_cast<RiseFall>(rf));
        if (!t.valid) continue;
        lo = std::min(lo, t.arrival - t.slew);
        hi = std::max(hi, t.arrival + t.slew);
      }
    };
    for (const auto& ref : netlist.pins_on_net(aggressor)) {
      widen(ref.instance->name + "/" + ref.pin);
    }
    if (netlist.is_interface_net(aggressor)) widen(aggressor);
    if (!(lo <= hi)) continue;  // aggressor never switches in this corner
    ScenarioPair pair;
    pair.victim_net = cand.victim_net;
    pair.aggressor_net = cand.aggressor_net;
    pair.victim_name = victim;
    pair.aggressor_name = aggressor;
    pair.victim_arrival = v_arrival;
    pair.victim_slew = v_slew;
    pair.aggressor_window_lo = lo;
    pair.aggressor_window_hi = hi;
    pair.coupling_scale = cand.cm_total / options.cm_reference;
    space.pairs.push_back(std::move(pair));
  }
  return space;
}

// ---------------------------------------------------------------------------
// StructuralCorrelationRule
// ---------------------------------------------------------------------------

StructuralCorrelationRule::StructuralCorrelationRule(
    const netlist::Netlist& netlist, DrivesPredicate drives)
    : netlist_(&netlist), drives_(std::move(drives)) {}

const char* StructuralCorrelationRule::name() const noexcept {
  return "structural";
}

const std::vector<int>& StructuralCorrelationRule::fanout(int32_t net) const {
  auto it = fanout_memo_.find(net);
  if (it == fanout_memo_.end()) {
    const int seed = net;
    it = fanout_memo_
             .emplace(net, netlist_->transitive_fanout_nets(
                               std::span<const int>(&seed, 1), drives_))
             .first;
  }
  return it->second;
}

bool StructuralCorrelationRule::can_switch_together(
    int32_t victim_net, int32_t aggressor_net) const {
  if (victim_net == aggressor_net) return false;
  const auto* victim_driver = netlist_->driver_of(victim_net, drives_);
  const auto* aggressor_driver = netlist_->driver_of(aggressor_net, drives_);
  if (victim_driver != nullptr && victim_driver == aggressor_driver) {
    return false;  // complementary outputs of one cell
  }
  // Causal ordering: fanout sets are sorted ascending
  // (transitive_fanout_nets contract), so membership is a binary search.
  const auto& victim_cone = fanout(victim_net);
  if (std::binary_search(victim_cone.begin(), victim_cone.end(),
                         aggressor_net)) {
    return false;
  }
  const auto& aggressor_cone = fanout(aggressor_net);
  return !std::binary_search(aggressor_cone.begin(), aggressor_cone.end(),
                             victim_net);
}

// ---------------------------------------------------------------------------
// ScenarioGenerator
// ---------------------------------------------------------------------------

ScenarioGenerator::ScenarioGenerator(const ScenarioSpace& space,
                                     const CorrelationRule* correlation)
    : space_(&space) {
  // Correlation depends only on the pair, so it is resolved once here;
  // the per-candidate accounting still happens in next() so the funnel
  // counts every skipped candidate.
  pair_feasible_.assign(space.pairs.size(), 1);
  if (correlation != nullptr) {
    for (size_t p = 0; p < space.pairs.size(); ++p) {
      pair_feasible_[p] =
          correlation->can_switch_together(space.pairs[p].victim_net,
                                           space.pairs[p].aggressor_net)
              ? 1
              : 0;
    }
  }
}

bool ScenarioGenerator::window_feasible(uint32_t pair,
                                        uint32_t alignment) const {
  const auto& p = space_->pairs[pair];
  // The generated bump is a Gaussian of sigma = bump_sigma_factor ×
  // victim_slew centred (victim_arrival + alignment); its support is
  // taken as ±3σ (beyond that the bump is < 0.02% of its peak and
  // cannot move a crossing).
  const double sigma = space_->bump_sigma_factor * p.victim_slew;
  const double half_width = 3.0 * sigma;
  const double center = p.victim_arrival + space_->alignments[alignment];
  const double slop = space_->window_slop;
  // (a) the bump must overlap the victim transition window …
  const double victim_lo = p.victim_arrival - p.victim_slew;
  const double victim_hi = p.victim_arrival + p.victim_slew;
  if (center + half_width < victim_lo - slop) return false;
  if (center - half_width > victim_hi + slop) return false;
  // (b) … and the aggressor must be able to switch when the bump fires.
  if (center + half_width < p.aggressor_window_lo - slop) return false;
  if (center - half_width > p.aggressor_window_hi + slop) return false;
  return true;
}

std::optional<ScenarioGenerator::Candidate> ScenarioGenerator::next() {
  const uint64_t total = space_->size();
  const auto n_strengths = static_cast<uint64_t>(space_->strengths.size());
  while (cursor_ < total) {
    const auto c = space_->decode(cursor_);
    if (c.strength == 0) {
      // Block head: feasibility is strength-independent, so one verdict
      // covers the whole strength block — kills advance the cursor past
      // all |strengths| candidates at once.
      if (!window_feasible(c.pair, c.alignment)) {
        stats_.generated += n_strengths;
        stats_.window_killed += n_strengths;
        cursor_ += n_strengths;
        continue;
      }
      if (pair_feasible_[c.pair] == 0) {
        stats_.generated += n_strengths;
        stats_.correlation_killed += n_strengths;
        cursor_ += n_strengths;
        continue;
      }
    }
    ++stats_.generated;
    const Candidate out{cursor_, c.pair, c.alignment, c.strength};
    ++cursor_;
    return out;
  }
  return std::nullopt;
}

NoiseScenario ScenarioGenerator::materialize(const Candidate& c) const {
  const auto& pair = space_->pairs[c.pair];
  return make_aggressor_scenario(
      pair.victim_name, pair.victim_arrival, pair.victim_slew, space_->vdd,
      space_->polarity, space_->alignments[c.alignment],
      space_->strengths[c.strength] * pair.coupling_scale,
      space_->waveform_samples);
}

// ---------------------------------------------------------------------------
// GeneratedSweepResult
// ---------------------------------------------------------------------------

double GeneratedSweepResult::worst_slack() const {
  return worst_point().slack;
}

const GeneratedSweepResult::WorstPoint& GeneratedSweepResult::worst_point()
    const {
  util::require(has_worst_,
                "GeneratedSweepResult::worst_point: no point survived the "
                "funnel (every candidate was window-, correlation- or "
                "prune-killed; see gen_stats())");
  return worst_;
}

std::string GeneratedSweepResult::funnel_report() const {
  const auto& g = gen_stats_;
  std::ostringstream os;
  os << "scenario funnel (" << num_corners_ << " corner(s) x "
     << (num_corners_ > 0 ? g.generated / num_corners_ : 0)
     << " candidates = " << g.generated << " points; chunks=" << g.chunks
     << " peak_resident_scenarios=" << g.peak_resident_scenarios << ")\n";
  const auto line = [&os, &g](const char* field, uint64_t value) {
    const double pct =
        g.generated != 0
            ? 100.0 * static_cast<double>(value) /
                  static_cast<double>(g.generated)
            : 0.0;
    char buf[80];
    std::snprintf(buf, sizeof(buf), "  %-20s %14llu  (%6.2f%%)\n", field,
                  static_cast<unsigned long long>(value), pct);
    os << buf;
  };
  line("generated", g.generated);
  line("window_killed", g.window_killed);
  line("correlation_killed", g.correlation_killed);
  line("prune_killed", g.prune_killed);
  line("reused", g.reused);
  line("evaluated", g.evaluated);
  return os.str();
}

// ---------------------------------------------------------------------------
// StaEngine::sweep(GeneratedSweepSpec) — the streaming funnel
// ---------------------------------------------------------------------------

GeneratedSweepResult StaEngine::sweep(const GeneratedSweepSpec& gspec) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  GeneratedSweepResult r;
  r.num_corners_ = gspec.corners.empty() ? 1 : gspec.corners.size();
  const auto n_corners = static_cast<uint64_t>(r.num_corners_);

  ScenarioGenerator gen(gspec.space, gspec.correlation);
  const size_t chunk = gspec.gen_chunk != 0 ? gspec.gen_chunk : 512;

  // One pool serves every chunk's sweep (building a pool per chunk
  // would dominate small chunks).
  const size_t want = gspec.threads <= 0
                          ? util::ThreadPool::hardware_threads()
                          : static_cast<size_t>(gspec.threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = gspec.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(static_cast<int>(want));
    pool = owned_pool.get();
  }

  SweepSpec proto;
  proto.corners = gspec.corners;
  proto.threads = gspec.threads;
  proto.share_gamma_cache = gspec.share_gamma_cache;
  proto.method = gspec.method;
  proto.pool = pool;
  proto.shard = gspec.shard;
  proto.wide_partition_threshold = gspec.wide_partition_threshold;
  proto.endpoint_only = true;  // the streaming mode's memory contract
  proto.endpoint_chunk = gspec.endpoint_chunk;
  proto.delta = gspec.delta;
  proto.prune = gspec.prune;
  proto.lanes = gspec.lanes;

  // Aggregation state across chunks.  The survivor-weighted fraction /
  // gap sums reconstruct the means a single eager sweep would report.
  auto& ps = r.prune_stats_;
  double worst_seen = kInf;
  double dirty_vertex_sum = 0.0;
  double dirty_partition_sum = 0.0;
  double gap_sum = 0.0;
  double gap_min = kInf;
  uint64_t scenario_total = 0;
  std::vector<uint64_t> chunk_candidates;

  while (true) {
    SweepSpec spec = proto;
    chunk_candidates.clear();
    while (chunk_candidates.size() < chunk) {
      const auto c = gen.next();
      if (!c.has_value()) break;
      spec.scenarios.push_back(gen.materialize(*c));
      chunk_candidates.push_back(c->index);
    }
    if (chunk_candidates.empty()) break;
    const auto n_scenarios = chunk_candidates.size();
    // Later chunks prune against the worst slack already attained —
    // same exactness argument as within one sweep (strict-> admission).
    spec.prune_seed_slack = worst_seen;
    const SweepResult sr = sweep(spec);

    ++r.gen_stats_.chunks;
    r.gen_stats_.peak_resident_scenarios =
        std::max<uint64_t>(r.gen_stats_.peak_resident_scenarios, n_scenarios);
    scenario_total += n_scenarios;
    const auto& cs = sr.prune_stats();
    ps.points += cs.points;
    ps.evaluated += cs.evaluated;
    ps.reused += cs.reused;
    ps.pruned += cs.pruned;
    dirty_vertex_sum +=
        cs.dirty_vertex_fraction * static_cast<double>(n_scenarios);
    dirty_partition_sum +=
        cs.dirty_partition_fraction * static_cast<double>(n_scenarios);
    if (cs.evaluated > 0 && gspec.prune == PruneMode::kSafe) {
      gap_sum += cs.mean_bound_gap * static_cast<double>(cs.evaluated);
      gap_min = std::min(gap_min, cs.min_bound_gap);
    }

    for (size_t c = 0; c < sr.num_corners(); ++c) {
      for (size_t s = 0; s < n_scenarios; ++s) {
        const size_t p = sr.point(c, s);
        if (sr.pruned(p)) continue;
        const double ws = sr.worst_slack(p);
        const uint64_t candidate = chunk_candidates[s];
        if (gspec.keep_point_records) {
          r.points_.push_back({candidate, static_cast<uint32_t>(c), ws});
        }
        // Ties resolve to the smallest (corner, candidate) — candidate
        // indices ascend across chunks, so this reproduces the argmin
        // (first flat index) an eager corner-major sweep would report.
        const bool better =
            !r.has_worst_ || ws < r.worst_.slack ||
            (ws == r.worst_.slack &&
             (c < r.worst_.corner ||
              (c == r.worst_.corner && candidate < r.worst_.candidate)));
        if (better) {
          r.worst_.candidate = candidate;
          r.worst_.corner = c;
          r.worst_.scenario_name = sr.scenario_name(s);
          r.worst_.slack = ws;
          r.has_worst_ = true;
        }
        worst_seen = std::min(worst_seen, ws);
      }
    }
  }

  if (scenario_total > 0) {
    ps.dirty_vertex_fraction =
        dirty_vertex_sum / static_cast<double>(scenario_total);
    ps.dirty_partition_fraction =
        dirty_partition_sum / static_cast<double>(scenario_total);
  }
  if (ps.evaluated > 0 && gspec.prune == PruneMode::kSafe) {
    ps.mean_bound_gap = gap_sum / static_cast<double>(ps.evaluated);
    ps.min_bound_gap = gap_min;
  }

  // The funnel in point units: the generator counts candidates, every
  // candidate becomes one point per corner, and the sweep-stage kills
  // come from the aggregated PruneStats.  By construction
  //   generated == window_killed + correlation_killed + prune_killed
  //                + reused + evaluated.
  const auto& gs = gen.stats();
  r.gen_stats_.generated = gs.generated * n_corners;
  r.gen_stats_.window_killed = gs.window_killed * n_corners;
  r.gen_stats_.correlation_killed = gs.correlation_killed * n_corners;
  r.gen_stats_.prune_killed = ps.pruned;
  r.gen_stats_.reused = ps.reused;
  r.gen_stats_.evaluated = ps.evaluated;
  return r;
}

}  // namespace waveletic::sta
