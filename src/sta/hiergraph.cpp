#include "sta/hiergraph.hpp"

#include <stdexcept>
#include <utility>

namespace waveletic::sta {

HierDesign HierDesign::build(const netlist::Netlist& block,
                             const liberty::Library& base_lib,
                             const BlockModel& model,
                             netlist::StitchOptions options) {
  options.block_cell = model.name;
  HierDesign d;
  d.library_ = std::make_unique<liberty::Library>(base_lib);
  d.library_->add_cell(model.to_cell());
  d.netlist_ =
      std::make_unique<netlist::Netlist>(netlist::stitch_blocks(block, options));
  d.engine_ = std::make_unique<StaEngine>(*d.netlist_, *d.library_);
  d.model_ = model;
  d.stitch_ = std::move(options);
  d.flat_vertices_ = netlist::stitched_flat_vertex_count(block, d.stitch_);
  return d;
}

std::string HierDesign::expanded_prefix() const {
  if (stitch_.expanded < 0 ||
      static_cast<size_t>(stitch_.expanded) >= stitch_.copies) {
    return {};
  }
  return "u" + std::to_string(stitch_.expanded) + "/";
}

NoiseScenario HierDesign::lower_interior_bump(size_t copy,
                                              const std::string& net,
                                              double amplitude,
                                              wave::Polarity polarity,
                                              size_t samples) const {
  if (copy >= stitch_.copies ||
      static_cast<int>(copy) == stitch_.expanded) {
    throw std::invalid_argument(
        "lower_interior_bump: copy " + std::to_string(copy) +
        " is out of range or expanded flat (annotate its nets directly)");
  }
  const RiseFall rf = polarity == wave::Polarity::kRising ? RiseFall::kRise
                                                          : RiseFall::kFall;
  const std::string prefix = "u" + std::to_string(copy) + "/";
  NoiseScenario scenario;
  scenario.name = "hier:" + prefix + net + "@" +
                  std::to_string(amplitude * 1e3) + "mV";
  const double vdd = library_->nom_voltage;
  for (const auto& t : model_.transfers) {
    if (t.net != net) continue;
    const std::string out_net = prefix + t.to_port;
    // Macro output pin vertex carries the block's interface timing.
    const PinId pin = engine_->find_pin("u" + std::to_string(copy) + ".blk/" +
                                        t.to_port);
    if (!pin.valid()) continue;
    const PinTiming& base = engine_->timing(pin, rf);
    if (!base.valid || base.slew <= 0.0) continue;
    const double pushed = base.arrival + t.sensitivity * amplitude;
    // Clean ramp (strength 0) at the pushed-out arrival: downstream
    // sinks re-fit against the shifted transition.
    const NoiseScenario ramp = make_aggressor_scenario(
        out_net, pushed, base.slew, vdd, polarity, /*alignment=*/0.0,
        /*strength=*/0.0, samples);
    for (const auto& e : ramp.entries) {
      scenario.annotate(e.net, e.annotation.waveform, e.annotation.polarity);
    }
  }
  if (scenario.entries.empty()) {
    throw std::invalid_argument("lower_interior_bump: net '" + net +
                                "' has no characterized transfer");
  }
  return scenario;
}

}  // namespace waveletic::sta
