#pragma once

/// \file gamma_cache.hpp
/// Thread-safe memoization of Γeff fits.
///
/// The equivalent-waveform fit at a noisy gate input is a pure function
/// of (annotated noisy waveform, clean input ramp, receiving arc + load,
/// technique).  Inside a scenario batch the same (net, input-ramp,
/// noise) triple recurs — multiple sinks on one net, scenarios sharing
/// an aggressor configuration, repeated runs — so the engine memoizes
/// the fitted (arrival, slew) per key.
///
/// The key is exact: raw IEEE-754 bit patterns of the input arrival,
/// slew and sink load, the receiving arc's identity (a pointer into
/// the liberty library, stable for the library's lifetime), the
/// net-edge index, and the annotation's content hash.  A hit therefore
/// returns bitwise-exactly what the fit would have produced, keeping
/// cached and uncached runs identical.  Because arc identity and load
/// bits are in the key (not just the edge index), one cache may be
/// shared across copy-on-write engine snapshots whose loads or graphs
/// differ (sta/service.hpp) — entries simply never collide across
/// prepared states.
///
/// Sharded: 16 buckets, each an unordered_map under its own mutex, so
/// concurrent lookups from the propagation pool rarely contend.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "wave/waveform.hpp"

namespace waveletic::sta {

/// Content hash of a noisy-net annotation (waveform samples + polarity);
/// annotations that hash equal are assumed identical.
[[nodiscard]] uint64_t noise_waveform_key(const wave::Waveform& w,
                                          wave::Polarity polarity) noexcept;

class GammaCache {
 public:
  struct Key {
    uint64_t noise_key = 0;   ///< annotation content hash
    uint64_t method_id = 0;   ///< technique identity (object address)
    uint64_t arc_id = 0;      ///< receiving arc identity (library address)
    uint32_t edge = 0;        ///< net-edge index in the prepared engine
    uint32_t rf = 0;          ///< transition index at the sink
    uint64_t arrival_bits = 0;  ///< IEEE-754 bits of the clean arrival
    uint64_t slew_bits = 0;     ///< IEEE-754 bits of the clean slew
    uint64_t load_bits = 0;     ///< IEEE-754 bits of the sink gate's output load
    uint64_t corner_key = 0;    ///< Corner::key() of the derate point (0 = nominal)

    [[nodiscard]] bool operator==(const Key& o) const noexcept {
      return noise_key == o.noise_key && method_id == o.method_id &&
             arc_id == o.arc_id && edge == o.edge && rf == o.rf &&
             arrival_bits == o.arrival_bits && slew_bits == o.slew_bits &&
             load_bits == o.load_bits && corner_key == o.corner_key;
    }
  };

  struct Value {
    double arrival = 0.0;
    double slew = 0.0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Returns the cached fit, or nullopt after recording a miss.
  [[nodiscard]] std::optional<Value> lookup(const Key& key) noexcept;

  /// Inserts (first writer wins; later identical inserts are no-ops).
  void insert(const Key& key, const Value& value);

  [[nodiscard]] Stats stats() const noexcept;
  void clear();

 private:
  struct KeyHash {
    [[nodiscard]] size_t operator()(const Key& k) const noexcept;
  };

  static constexpr size_t kShards = 16;
  [[nodiscard]] size_t shard_of(const Key& key) const noexcept;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, Value, KeyHash> map;
  };
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace waveletic::sta
