#pragma once

/// \file service.hpp
/// Incremental STA service: copy-on-write timing snapshots, netlist-
/// edit deltas, and a concurrent query surface.
///
/// StaService turns the batch engine into a long-running service.  It
/// owns an immutable, refcounted PreparedSnapshot — netlist + prepared
/// StaEngine (levels, PartitionSet, compiled tables) + one baseline
/// TimingState per corner — and serves read-only queries against it
/// through the engine's const-reentrant evaluation path.  Readers pin
/// the current snapshot with a shared_ptr (RCU-style): queries never
/// block edits, and edits never invalidate an in-flight query, because
/// a pinned snapshot stays alive until its last reader drops it.
///
/// Writes arrive as an EditBatch (sta/edits.hpp) and follow the
/// copy-on-write discipline end to end:
///
///  - configuration edits fork the engine (StaEngine::fork() — the
///    immutable graph is SHARED, only config tables copy), apply the
///    setters, recompute only the dirty nets' loads, and re-time only
///    the dirty cone (StaEngine::delta_plan(EditSeeds) +
///    evaluate_points_delta against the previous snapshot's baselines);
///  - structural edits (retype/reroute) copy the netlist, apply it
///    under the ordinal-stability contract, rebuild the graph, carry
///    the previous configuration across (copy_config_from), and still
///    re-time only the edit's cone — vertex order is preserved by
///    construction, so the old baselines remain valid delta bases.
///
/// The next snapshot is then published by swapping one shared_ptr under
/// a short mutex; apply() calls are serialized by a writer mutex.
/// Bitwise contract: every published snapshot's baselines are bitwise
/// identical to a from-scratch StaEngine + prepare() + evaluate() on
/// the edited netlist with the same configuration, at any thread count
/// (tests/test_sta_service.cpp holds this per edit class and for mixed
/// batches).
///
/// Observability: ServiceStats counts queries, publishes, mean dirty-
/// cone fraction and edit→publish latency (printed by bench_runtime's
/// service scenario).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/edits.hpp"
#include "sta/engine.hpp"
#include "sta/gamma_cache.hpp"
#include "sta/sweep.hpp"

namespace waveletic::util {
class ThreadPool;
}

namespace waveletic::sta {

/// Construction-time options of an StaService.
struct ServiceConfig {
  /// Corners every snapshot keeps a baseline TimingState for; must be
  /// non-empty (the default is the single nominal corner).
  std::vector<Corner> corners = {Corner{}};
  /// Worker threads of the writer path (baseline re-timing); ≤ 0
  /// selects the hardware concurrency, 1 runs serial.  Query
  /// concurrency is caller-side: any number of threads may query
  /// simultaneously regardless of this setting.
  int threads = 1;
  /// Share one Γeff memo cache across snapshots and queries (keys
  /// cover exact waveform/ramp bits + corner, so sharing is safe even
  /// across edits).
  bool share_gamma_cache = true;
};

/// Counters of one service's lifetime (StaService::stats()).  Means are
/// over published edit batches; latencies are wall-clock seconds from
/// apply() entry to snapshot publish.
struct ServiceStats {
  uint64_t queries_served = 0;        ///< reads answered (all kinds)
  uint64_t snapshots_published = 0;   ///< apply() publishes (initial excluded)
  uint64_t edits_applied = 0;         ///< total edits across batches
  uint64_t structural_rebuilds = 0;   ///< publishes that rebuilt the graph
  double mean_dirty_cone_fraction = 0.0;  ///< mean |forward| / vertices
  double last_dirty_cone_fraction = 0.0;  ///< fraction of the last publish
  double mean_publish_latency = 0.0;      ///< mean edit→publish latency [s]
  double last_publish_latency = 0.0;      ///< latency of the last publish [s]
};

/// Multi-line human-readable rendering of ServiceStats (bench/report
/// output).
[[nodiscard]] std::string format_service_stats(const ServiceStats& stats);

/// One immutable published state of the service: the netlist, a
/// prepared engine over it, and one evaluated baseline TimingState per
/// corner (plus precomputed worst-slack summaries).  Snapshots are
/// refcounted and never mutate after publish — readers hold them
/// through shared_ptr for as long as they like; a snapshot (and the
/// engine state any result points into) stays alive until its last
/// owner drops it.
class PreparedSnapshot {
 public:
  /// Monotonic publish version (1 = the service's initial snapshot).
  [[nodiscard]] uint64_t version() const noexcept { return version_; }
  /// The netlist this snapshot analyzed (shared, immutable).
  [[nodiscard]] const netlist::Netlist& netlist() const noexcept {
    return *netlist_;
  }
  /// The prepared engine — const access only; safe for concurrent
  /// evaluate()/timing_in() from any number of threads.
  [[nodiscard]] const StaEngine& engine() const noexcept { return *engine_; }
  /// The corner axis (ServiceConfig::corners, in order).
  [[nodiscard]] const std::vector<Corner>& corners() const noexcept {
    return corners_;
  }
  /// The evaluated baseline state of corner `corner` (throws on an
  /// out-of-range index).
  [[nodiscard]] const TimingState& baseline(size_t corner) const;
  /// Worst slack over endpoints of corner `corner` (precomputed).
  [[nodiscard]] double worst_slack(size_t corner) const;
  /// Critical endpoint summary of corner `corner` (precomputed).
  [[nodiscard]] const StaEngine::WorstEndpoint& worst_endpoint(
      size_t corner) const;

 private:
  friend class StaService;
  PreparedSnapshot() = default;

  uint64_t version_ = 0;
  std::shared_ptr<const netlist::Netlist> netlist_;
  std::unique_ptr<StaEngine> engine_;
  std::vector<Corner> corners_;
  std::vector<TimingState> baselines_;
  std::vector<double> worst_slacks_;
  std::vector<StaEngine::WorstEndpoint> worst_endpoints_;
};

/// Result of a scenario query: the evaluated TimingState plus a shared
/// owner of the snapshot it was computed on, so the result can never
/// outlive the engine state its accessors read (unlike a raw
/// SweepResult, which throws via its liveness token instead).
class ScenarioTiming {
 public:
  /// Timing of a pin/port under the scenario.
  [[nodiscard]] const PinTiming& timing(const std::string& pin,
                                        RiseFall rf) const;
  /// Worst slack over endpoints under the scenario.
  [[nodiscard]] double worst_slack() const;
  /// Critical endpoint summary under the scenario.
  [[nodiscard]] StaEngine::WorstEndpoint worst_endpoint() const;
  /// Critical path under the scenario, source first.
  [[nodiscard]] std::vector<PathStep> critical_path() const;
  /// The snapshot the query pinned (co-owned by this result).
  [[nodiscard]] const std::shared_ptr<const PreparedSnapshot>& snapshot()
      const noexcept {
    return snapshot_;
  }
  /// Corner ordinal the query evaluated against.
  [[nodiscard]] size_t corner() const noexcept { return corner_; }

 private:
  friend class StaService;
  std::shared_ptr<const PreparedSnapshot> snapshot_;
  size_t corner_ = 0;
  TimingState state_;
};

/// Publish summary returned by StaService::apply().
struct PublishReport {
  uint64_t version = 0;        ///< version of the published snapshot
  bool structural = false;     ///< took the graph-rebuild path
  size_t edits = 0;            ///< edits in the batch
  size_t dirty_vertices = 0;   ///< |forward| of the delta plan
  double dirty_cone_fraction = 0.0;  ///< dirty_vertices / vertex_count
  double publish_latency = 0.0;      ///< apply() → publish wall time [s]
};

/// The incremental STA service (see the file comment for the model).
/// Thread-safety: every query member and snapshot() are safe to call
/// from any number of threads concurrently with each other AND with
/// apply(); apply() itself is internally serialized.  The library must
/// outlive the service and all snapshots obtained from it.
class StaService {
 public:
  /// Builds the initial snapshot (version 1) from a copy of `netlist`
  /// analyzed against `library`.  The netlist starts unconstrained —
  /// constraints arrive as EditBatch configuration edits.
  StaService(netlist::Netlist netlist, const liberty::Library& library,
             ServiceConfig config = {});
  /// Out of line (ThreadPool is forward-declared).  Pinned snapshots
  /// and ScenarioTiming results remain valid after destruction — they
  /// co-own everything they read.
  ~StaService();

  StaService(const StaService&) = delete;
  StaService& operator=(const StaService&) = delete;

  /// Pins the current snapshot.  O(1); never blocks on a writer beyond
  /// the one shared_ptr swap.
  [[nodiscard]] std::shared_ptr<const PreparedSnapshot> snapshot() const;

  /// Validates `batch` against the current snapshot, applies it
  /// copy-on-write, re-times the dirty cone, and publishes the next
  /// snapshot.  Throws util::Error (naming the edit index and handle)
  /// without publishing anything when validation fails.  An empty
  /// batch publishes nothing and returns the current version.
  PublishReport apply(const EditBatch& batch);

  /// Worst slack over endpoints at corner `corner` of the current
  /// snapshot.
  [[nodiscard]] double worst_slack(size_t corner = 0) const;
  /// Critical endpoint summary at corner `corner`.
  [[nodiscard]] StaEngine::WorstEndpoint worst_endpoint(
      size_t corner = 0) const;
  /// Baseline timing of a pin/port at corner `corner` (by value: the
  /// snapshot is released when the call returns).
  [[nodiscard]] PinTiming timing(const std::string& pin, RiseFall rf,
                                 size_t corner = 0) const;
  /// Critical path at corner `corner`, source first.
  [[nodiscard]] std::vector<PathStep> critical_path(size_t corner = 0) const;
  /// Evaluates a noise scenario as a dirty-cone delta against the
  /// pinned snapshot's corner baseline; the result co-owns the
  /// snapshot.  Safe from any number of threads concurrently.
  [[nodiscard]] ScenarioTiming query(const NoiseScenario& scenario,
                                     size_t corner = 0) const;

  /// A consistent copy of the lifetime counters.
  [[nodiscard]] ServiceStats stats() const;

 private:
  /// Evaluates per-corner baselines + summaries into `snap`; delta
  /// against `previous` when given (plan = the edit cone), full
  /// evaluation otherwise.
  void evaluate_snapshot(PreparedSnapshot& snap,
                         const PreparedSnapshot* previous,
                         const StaEngine::DeltaPlan* plan);
  void count_query() const noexcept { ++queries_served_; }

  const liberty::Library* library_;
  ServiceConfig config_;
  std::shared_ptr<GammaCache> cache_;  ///< shared Γeff memo (optional)

  /// Writer-path resources, used only under writer_mutex_.
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<wave::Workspace> workspaces_;
  std::mutex writer_mutex_;

  /// The published head; head_mutex_ guards only the shared_ptr swap.
  mutable std::mutex head_mutex_;
  std::shared_ptr<const PreparedSnapshot> head_;

  /// Stats: query counter is atomic (hot, reader-side); the publish
  /// aggregates are writer-side under stats_mutex_.
  mutable std::atomic<uint64_t> queries_served_{0};
  mutable std::mutex stats_mutex_;
  uint64_t snapshots_published_ = 0;
  uint64_t edits_applied_ = 0;
  uint64_t structural_rebuilds_ = 0;
  double dirty_fraction_sum_ = 0.0;
  double last_dirty_fraction_ = 0.0;
  double publish_latency_sum_ = 0.0;
  double last_publish_latency_ = 0.0;
};

}  // namespace waveletic::sta
