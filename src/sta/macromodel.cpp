#include "sta/macromodel.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "charlib/characterize.hpp"
#include "sta/engine.hpp"
#include "sta/sweep.hpp"

namespace waveletic::sta {

namespace {

liberty::NldmTable make_table(const std::vector<double>& slews,
                              const std::vector<double>& loads,
                              std::vector<double> values) {
  return liberty::NldmTable(slews, loads, std::move(values));
}

/// Sum of liberty input-pin capacitances connected to `net_name`.
double net_input_cap(const netlist::Netlist& nl, const liberty::Library& lib,
                     const std::string& net_name) {
  double cap = 0.0;
  for (const auto& ref : nl.pins_on_net(net_name)) {
    const liberty::Cell* cell = lib.find_cell(ref.instance->cell);
    if (!cell) continue;
    const liberty::Pin* pin = cell->find_pin(ref.pin);
    if (pin && pin->direction == liberty::PinDirection::kInput) {
      cap += pin->capacitance;
    }
  }
  return cap;
}

/// Latest-arriving valid sink timing on `net` for polarity `pol`, or
/// null when no sink has valid timing there (e.g. the net is dead in
/// the reference run).
const PinTiming* latest_sink_timing(const StaEngine& eng,
                                    const netlist::Netlist& nl,
                                    const liberty::Library& lib,
                                    const std::string& net, RiseFall rf) {
  const PinTiming* best = nullptr;
  for (const auto& ref : nl.pins_on_net(net)) {
    const liberty::Cell* cell = lib.find_cell(ref.instance->cell);
    if (!cell) continue;
    const liberty::Pin* pin = cell->find_pin(ref.pin);
    if (!pin || pin->direction != liberty::PinDirection::kInput) continue;
    const PinId id = eng.find_pin(ref.instance->name + "/" + ref.pin);
    if (!id.valid()) continue;
    const PinTiming& t = eng.timing(id, rf);
    if (!t.valid || t.slew <= 0.0) continue;
    if (!best || t.arrival > best->arrival) best = &t;
  }
  return best;
}

}  // namespace

liberty::Cell BlockModel::to_cell() const {
  liberty::Cell cell;
  cell.name = name;
  size_t n_out = 0;
  for (const auto& p : ports) {
    liberty::Pin pin;
    pin.name = p.name;
    if (p.is_input) {
      pin.direction = liberty::PinDirection::kInput;
      pin.capacitance = p.capacitance;
    } else {
      pin.direction = liberty::PinDirection::kOutput;
      for (const auto& a : arcs) {
        if (a.to_port == p.name) pin.arcs.push_back(a.arc);
      }
      ++n_out;
    }
    cell.pins.push_back(std::move(pin));
  }
  if (n_out == 0) {
    throw std::logic_error("BlockModel::to_cell: block '" + name +
                           "' has no output port");
  }
  return cell;
}

double BlockModel::transfer(const std::string& net,
                            const std::string& to_port) const noexcept {
  for (const auto& t : transfers) {
    if (t.net == net && t.to_port == to_port) return t.sensitivity;
  }
  return 0.0;
}

BlockModel extract_block_model(const netlist::Netlist& block,
                               const liberty::Library& lib,
                               const BlockModelOptions& options) {
  const charlib::CharGrid default_grid;
  BlockModel model;
  model.name = options.name;
  model.slews = options.slews.empty() ? default_grid.slews : options.slews;
  model.loads = options.loads.empty() ? default_grid.loads_x1 : options.loads;
  if (model.slews.empty() || model.loads.empty()) {
    throw std::invalid_argument("extract_block_model: empty grid axis");
  }

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  for (const auto& p : block.ports()) {
    if (p.direction == netlist::PortDirection::kInput) {
      inputs.push_back(p.name);
      model.ports.push_back({p.name, true, net_input_cap(block, lib, p.name)});
    }
  }
  for (const auto& p : block.ports()) {
    if (p.direction == netlist::PortDirection::kOutput) {
      outputs.push_back(p.name);
      model.ports.push_back({p.name, false, 0.0});
    }
  }
  if (inputs.empty() || outputs.empty()) {
    throw std::invalid_argument(
        "extract_block_model: block needs at least one input and one "
        "output port");
  }

  StaEngine proto(block, lib);
  proto.set_threads(options.threads);

  const size_t n_slew = model.slews.size();
  const size_t n_load = model.loads.size();
  const size_t n_grid = n_slew * n_load;
  const size_t n_out = outputs.size();

  // Per (input, output): delay/slew samples per transition, row-major
  // (slew-major, load-minor) like NldmTable, plus an all-grid-points
  // validity flag (structural reachability is constant over the grid).
  struct ArcSamples {
    std::vector<double> delay[2], slew[2];
    bool reachable = true;
    ArcSamples(size_t n) {
      for (int rf = 0; rf < 2; ++rf) {
        delay[rf].assign(n, 0.0);
        slew[rf].assign(n, 0.0);
      }
    }
  };

  for (const auto& in : inputs) {
    std::vector<ArcSamples> samples(n_out, ArcSamples(n_grid));
    for (size_t l = 0; l < n_load; ++l) {
      auto eng = proto.fork();
      for (const auto& out : outputs) eng->set_output_load(out, model.loads[l]);
      for (size_t s = 0; s < n_slew; ++s) {
        eng->set_input(in, 0.0, model.slews[s]);
        eng->run();
        for (size_t o = 0; o < n_out; ++o) {
          const size_t at = s * n_load + l;
          for (int rf = 0; rf < 2; ++rf) {
            const PinTiming& t =
                eng->timing(outputs[o], static_cast<RiseFall>(rf));
            if (!t.valid) {
              samples[o].reachable = false;
              continue;
            }
            samples[o].delay[rf][at] = t.arrival;
            samples[o].slew[rf][at] = t.slew;
          }
        }
      }
    }
    for (size_t o = 0; o < n_out; ++o) {
      if (!samples[o].reachable) continue;
      BlockPortArc arc;
      arc.from_port = in;
      arc.to_port = outputs[o];
      arc.arc.related_pin = in;
      arc.arc.sense = liberty::TimingSense::kNonUnate;
      arc.arc.cell_rise = make_table(model.slews, model.loads,
                                     std::move(samples[o].delay[0]));
      arc.arc.cell_fall = make_table(model.slews, model.loads,
                                     std::move(samples[o].delay[1]));
      arc.arc.rise_transition = make_table(model.slews, model.loads,
                                           std::move(samples[o].slew[0]));
      arc.arc.fall_transition = make_table(model.slews, model.loads,
                                           std::move(samples[o].slew[1]));
      model.arcs.push_back(std::move(arc));
    }
  }

  // -- noise-transfer characterization at the reference grid point ------
  const double ref_slew = model.slews[model.slews.size() / 2];
  const double ref_load = model.loads[model.loads.size() / 2];
  const double vdd = lib.nom_voltage;
  const double amplitude = options.noise_amplitude_fraction * vdd;
  const RiseFall victim_rf = options.noise_polarity == wave::Polarity::kRising
                                 ? RiseFall::kRise
                                 : RiseFall::kFall;

  auto ref = proto.fork();
  for (const auto& in : inputs) ref->set_input(in, 0.0, ref_slew);
  for (const auto& out : outputs) ref->set_output_load(out, ref_load);
  ref->run();

  struct BaseArrival {
    double arrival[2] = {0.0, 0.0};
    bool valid[2] = {false, false};
  };
  std::vector<BaseArrival> base(n_out);
  for (size_t o = 0; o < n_out; ++o) {
    for (int rf = 0; rf < 2; ++rf) {
      const PinTiming& t = ref->timing(outputs[o], static_cast<RiseFall>(rf));
      base[o].valid[rf] = t.valid;
      base[o].arrival[rf] = t.arrival;
    }
  }

  std::vector<std::string> probe_nets = inputs;
  for (const auto& n : options.noise_nets) {
    if (block.net_ordinal(n) < 0) {
      throw std::invalid_argument("extract_block_model: unknown noise net '" +
                                  n + "'");
    }
    probe_nets.push_back(n);
  }

  for (const auto& net : probe_nets) {
    double victim_arrival = 0.0;
    double victim_slew = ref_slew;
    const bool is_input_port = block.find_port(net) != nullptr &&
                               block.find_port(net)->direction ==
                                   netlist::PortDirection::kInput;
    if (!is_input_port) {
      const PinTiming* sink =
          latest_sink_timing(*ref, block, lib, net, victim_rf);
      if (!sink) continue;  // dead net in the reference run — no transfer
      victim_arrival = sink->arrival;
      victim_slew = sink->slew;
    }
    const NoiseScenario probe = make_aggressor_scenario(
        net, victim_arrival, victim_slew, vdd, options.noise_polarity,
        /*alignment=*/0.0, amplitude, options.waveform_samples);
    for (const auto& entry : probe.entries) {
      ref->annotate_noisy_net(entry.net, entry.annotation.waveform,
                              entry.annotation.polarity);
    }
    ref->run();
    for (size_t o = 0; o < n_out; ++o) {
      double sens = 0.0;
      bool any = false;
      for (int rf = 0; rf < 2; ++rf) {
        if (!base[o].valid[rf]) continue;
        const PinTiming& t =
            ref->timing(outputs[o], static_cast<RiseFall>(rf));
        if (!t.valid) continue;
        any = true;
        sens = std::max(sens, (t.arrival - base[o].arrival[rf]) / amplitude);
      }
      if (!any) continue;
      model.transfers.push_back({net, outputs[o], sens});
    }
    ref->clear_noisy_nets();
  }

  // Mirror the input-port sensitivities onto their interface arcs.
  for (auto& arc : model.arcs) {
    arc.noise_transfer = model.transfer(arc.from_port, arc.to_port);
  }
  return model;
}

netlist::Netlist carve_block(const netlist::Netlist& design,
                             const liberty::Library& lib,
                             std::span<const std::string> instances,
                             const std::string& block_name) {
  std::set<std::string> inside(instances.begin(), instances.end());
  for (const auto& name : instances) {
    if (!design.find_instance(name)) {
      throw std::invalid_argument("carve_block: unknown instance '" + name +
                                  "'");
    }
  }

  struct NetUse {
    bool driven_inside = false, driven_outside = false;
    bool consumed_inside = false, consumed_outside = false;
  };
  std::map<std::string, NetUse> use;
  for (const auto& inst : design.instances()) {
    const bool in = inside.count(inst.name) != 0;
    const liberty::Cell* cell = lib.find_cell(inst.cell);
    if (!cell) {
      throw std::invalid_argument("carve_block: instance '" + inst.name +
                                  "' uses unknown cell '" + inst.cell + "'");
    }
    for (const auto& [pin_name, net] : inst.pins) {
      const liberty::Pin* pin = cell->find_pin(pin_name);
      const bool drives =
          pin && pin->direction == liberty::PinDirection::kOutput;
      NetUse& u = use[net];
      if (drives) {
        (in ? u.driven_inside : u.driven_outside) = true;
      } else {
        (in ? u.consumed_inside : u.consumed_outside) = true;
      }
    }
  }
  for (const auto& p : design.ports()) {
    NetUse& u = use[p.name];
    if (p.direction == netlist::PortDirection::kInput) {
      u.driven_outside = true;
    } else {
      u.consumed_outside = true;
    }
  }

  netlist::Netlist block;
  // Walk nets in design order so port ordinals are deterministic.
  for (const auto& net : design.nets()) {
    auto it = use.find(net);
    if (it == use.end()) continue;
    const NetUse& u = it->second;
    if (u.consumed_inside && !u.driven_inside) {
      block.add_port(net, netlist::PortDirection::kInput);
    } else if (u.driven_inside && u.consumed_outside) {
      block.add_port(net, netlist::PortDirection::kOutput);
    }
  }
  if (block.ports().empty()) {
    throw std::invalid_argument("carve_block: carve of '" + block_name +
                                "' exposes no ports");
  }
  for (const auto& inst : design.instances()) {
    if (inside.count(inst.name)) block.add_instance(inst);
  }
  block.validate();
  return block;
}

std::vector<std::string> partition_instances(const StaEngine& sta,
                                             size_t partition) {
  const PartitionSet& parts = sta.partitions();
  if (partition >= parts.size()) {
    throw std::out_of_range("partition_instances: partition " +
                            std::to_string(partition) + " out of range");
  }
  std::vector<std::string> names;
  for (int v : parts.vertices(partition)) {
    const std::string& name = sta.vertex_name(static_cast<size_t>(v));
    const size_t slash = name.rfind('/');
    if (slash == std::string::npos) continue;  // port vertex
    names.push_back(name.substr(0, slash));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace waveletic::sta
