#pragma once

/// \file edits.hpp
/// Netlist / constraint edit batches — the write surface of the
/// incremental STA service (sta/service.hpp).
///
/// An EditBatch is an ordered list of edits applied atomically: the
/// service validates the whole batch against the current snapshot,
/// applies it copy-on-write, re-times only the dirty cone
/// (StaEngine::delta_plan(EditSeeds)), and publishes the next snapshot.
/// Edits split into two classes:
///
///  - *configuration* edits (loads, parasitics, arrival/required
///    constraints, noise annotations) — the timing graph is unchanged,
///    so the writer forks the engine (StaEngine::fork(), shares the
///    graph) and only dirty per-net tables are recomputed;
///  - *structural* edits (retype a cell, reroute a sink pin) — the
///    writer copies the netlist, applies the edit under the
///    ordinal-stability contract (nets may only be appended; vertex,
///    net and port orders are preserved), and rebuilds the graph.
///
/// Validation failures name the offending handle AND the edit's index
/// in the batch, so a caller streaming ECO edits can pinpoint the bad
/// one.  See docs/SERVICE_GUIDE.md for the edit-class → dirty-cone
/// table.

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "wave/waveform.hpp"

namespace waveletic::sta {

/// Replaces an instance's library cell (a resize/retype ECO).  The new
/// cell must exist in the library and carry every pin the instance
/// connects, with unchanged directions — so the timing graph keeps its
/// shape and only arc tables and pin capacitances change.  Structural:
/// triggers a graph rebuild.
struct RetypeCell {
  std::string instance;  ///< instance to retype
  std::string new_cell;  ///< replacement library cell name
};

/// Moves one *input* (sink) pin of an instance onto another net — a
/// reroute ECO.  The target net is created if absent (appended, keeping
/// every existing ordinal stable).  Driver pins cannot be rerouted (that
/// would re-home a timing arc's output net).  Structural: triggers a
/// graph rebuild.
struct RerouteSink {
  std::string instance;  ///< instance owning the pin
  std::string pin;       ///< input pin to move
  std::string new_net;   ///< net it should connect to
};

/// Retargets the extra capacitive load on an output port [F]
/// (StaEngine::set_output_load).
struct SetOutputLoad {
  std::string port;  ///< output port
  double cap = 0.0;  ///< new load [F]; must be finite and ≥ 0
};

/// Retargets a net's lumped parasitics: extra driver load [F] and wire
/// delay added to every sink arrival [s]
/// (StaEngine::set_net_parasitics).
struct SetNetParasitics {
  std::string net;     ///< annotated net
  double cap = 0.0;    ///< parasitic cap [F]; finite, ≥ 0
  double delay = 0.0;  ///< wire delay [s]; finite, ≥ 0
};

/// Retargets the arrival/slew constraint of an input port, both
/// transitions (StaEngine::set_input).
struct SetInputArrival {
  std::string port;      ///< input port
  double arrival = 0.0;  ///< arrival time [s]; finite
  double slew = 0.0;     ///< input slew [s]; finite, > 0
};

/// Retargets the required (latest allowed) arrival at an output port
/// (StaEngine::set_required).
struct SetRequired {
  std::string port;       ///< output port
  double required = 0.0;  ///< required time [s]; finite
};

/// Annotates a net with a noisy waveform (crosstalk victim), replacing
/// any existing annotation (StaEngine::annotate_noisy_net).
struct AnnotateNoisyNet {
  std::string net;         ///< victim net
  wave::Waveform waveform; ///< noisy waveform at the sinks; non-empty
  wave::Polarity polarity = wave::Polarity::kFalling;  ///< affected edge
};

/// Removes the noisy-waveform annotation from a net (no-op when the net
/// is clean).
struct ClearNoisyNet {
  std::string net;  ///< net to clean
};

/// One edit of a batch — exactly one of the eight edit classes.
using Edit = std::variant<RetypeCell, RerouteSink, SetOutputLoad,
                          SetNetParasitics, SetInputArrival, SetRequired,
                          AnnotateNoisyNet, ClearNoisyNet>;

/// Stable lowercase kind name of an edit ("retype_cell", …) — used in
/// validation errors and stats.
[[nodiscard]] const char* edit_kind(const Edit& edit) noexcept;

/// True for the graph-shape-changing classes (RetypeCell, RerouteSink):
/// the service rebuilds the engine instead of forking it.
[[nodiscard]] bool is_structural(const Edit& edit) noexcept;

/// An ordered edit list applied atomically by StaService::apply().
/// The fluent appenders return *this so batches compose inline:
///     EditBatch b;
///     b.set_net_parasitics("n3", 2e-15, 5e-12).set_required("y", 2e-9);
class EditBatch {
 public:
  /// Appends a RetypeCell edit.
  EditBatch& retype_cell(std::string instance, std::string new_cell);
  /// Appends a RerouteSink edit.
  EditBatch& reroute_sink(std::string instance, std::string pin,
                          std::string new_net);
  /// Appends a SetOutputLoad edit.
  EditBatch& set_output_load(std::string port, double cap);
  /// Appends a SetNetParasitics edit.
  EditBatch& set_net_parasitics(std::string net, double cap, double delay);
  /// Appends a SetInputArrival edit.
  EditBatch& set_input_arrival(std::string port, double arrival, double slew);
  /// Appends a SetRequired edit.
  EditBatch& set_required(std::string port, double required);
  /// Appends an AnnotateNoisyNet edit.
  EditBatch& annotate_noisy_net(std::string net, wave::Waveform waveform,
                                wave::Polarity polarity);
  /// Appends a ClearNoisyNet edit.
  EditBatch& clear_noisy_net(std::string net);

  /// The edits in application order.
  [[nodiscard]] const std::vector<Edit>& edits() const noexcept {
    return edits_;
  }
  /// Number of edits in the batch.
  [[nodiscard]] size_t size() const noexcept { return edits_.size(); }
  /// True when the batch holds no edits (apply() republishes nothing).
  [[nodiscard]] bool empty() const noexcept { return edits_.empty(); }
  /// True when any edit is structural (the writer takes the rebuild
  /// path for the whole batch).
  [[nodiscard]] bool structural() const noexcept;

 private:
  std::vector<Edit> edits_;
};

/// Validates every edit of `batch` against (netlist, library) BEFORE
/// anything is applied: handles must resolve (instances, pins, nets,
/// ports by the right direction), retype targets must be
/// pin-compatible library cells, reroutes must move input pins, and
/// numeric values must be finite and in range.  Throws util::Error
/// naming the edit's index, kind, and the offending handle; a batch
/// that validates applies atomically.
void validate_edits(const EditBatch& batch, const netlist::Netlist& netlist,
                    const liberty::Library& library);

}  // namespace waveletic::sta
