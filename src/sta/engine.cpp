#include "sta/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <sstream>

#include "core/sgdp.hpp"
#include "sta/gamma_cache.hpp"
#include "sta/sweep.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
#include "wave/ramp.hpp"

namespace waveletic::sta {
namespace {

wave::Polarity to_polarity(RiseFall rf) noexcept {
  return rf == RiseFall::kRise ? wave::Polarity::kRising
                               : wave::Polarity::kFalling;
}

/// Engine tags start at 1 so a zero-initialized handle never matches.
uint32_t next_graph_tag() noexcept {
  static std::atomic<uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Levenshtein distance with a band cut-off: distances above `cap` all
/// report cap + 1.  Only runs on the error path.
size_t edit_distance(const std::string& a, const std::string& b,
                     size_t cap) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n > m + cap || m > n + cap) return cap + 1;
  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t prev = row[0];
    row[0] = i;
    size_t best = row[0];
    for (size_t j = 1; j <= m; ++j) {
      const size_t subst = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      best = std::min(best, row[j]);
    }
    if (best > cap) return cap + 1;
  }
  return row[m];
}

/// Up to three names nearest to `name` by edit distance (ties broken by
/// the order of `candidates`, which callers pass sorted).
std::vector<std::string> nearest_names(
    const std::string& name, const std::vector<std::string>& candidates) {
  constexpr size_t kCap = 6;
  std::vector<std::pair<size_t, const std::string*>> scored;
  for (const auto& c : candidates) {
    const size_t d = edit_distance(name, c, kCap);
    if (d <= kCap) scored.push_back({d, &c});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<std::string> out;
  for (size_t i = 0; i < scored.size() && i < 3; ++i) {
    out.push_back(*scored[i].second);
  }
  return out;
}

void append_suggestions(std::ostringstream& os,
                        const std::vector<std::string>& suggestions) {
  if (suggestions.empty()) return;
  os << " (nearest: ";
  for (size_t i = 0; i < suggestions.size(); ++i) {
    if (i) os << ", ";
    os << suggestions[i];
  }
  os << ')';
}

}  // namespace

const char* to_string(RiseFall rf) noexcept {
  return rf == RiseFall::kRise ? "rise" : "fall";
}

StaEngine::StaEngine(const netlist::Netlist& nl, const liberty::Library& lib)
    : netlist_(&nl), library_(&lib), graph_(make_graph(nl, lib)),
      graph_tag_(graph_->tag) {
  noise_method_ = std::make_unique<core::SgdpMethod>();
  const size_t n_nets = nl.nets().size();
  output_loads_.assign(ports_.size(), 0.0);
  net_parasitics_.assign(n_nets, {0.0, 0.0});
  net_loads_.assign(n_nets, 0.0);
  // Sized once; pointers into net_annotations_ slots stay stable.
  net_annotations_.assign(n_nets, std::nullopt);
}

StaEngine::StaEngine(const StaEngine& other, ForkTag)
    : netlist_(other.netlist_),
      library_(other.library_),
      graph_(other.graph_),
      graph_tag_(other.graph_tag_),
      input_constraints_(other.input_constraints_),
      required_(other.required_),
      output_loads_(other.output_loads_),
      net_parasitics_(other.net_parasitics_),
      net_loads_(other.net_loads_),
      net_annotations_(other.net_annotations_),
      noisy_net_count_(other.noisy_net_count_),
      corner_(other.corner_),
      noise_method_(other.noise_method_->clone()),
      threads_(other.threads_) {}

std::unique_ptr<StaEngine> StaEngine::fork() const {
  return std::unique_ptr<StaEngine>(new StaEngine(*this, ForkTag{}));
}

void StaEngine::copy_config_from(const StaEngine& other) {
  // The edited netlist may only APPEND nets (Netlist::reroute_pin's
  // ordinal-stability contract), so `other`'s net order must be a
  // prefix of ours; appended nets start with default config below.
  const auto& nets = netlist_->nets();
  const auto& other_nets = other.netlist_->nets();
  util::require(other_nets.size() <= nets.size() &&
                    std::equal(other_nets.begin(), other_nets.end(),
                               nets.begin()),
                "copy_config_from: net orders differ — the edited netlist "
                "must keep the ordinal-stability contract (nets may only "
                "be appended)");
  util::require(ports_.size() == other.ports_.size(),
                "copy_config_from: port counts differ (", ports_.size(),
                " vs ", other.ports_.size(), ")");
  input_constraints_.clear();
  required_.clear();
  for (size_t p = 0; p < ports_.size(); ++p) {
    util::require(ports_[p].name == other.ports_[p].name,
                  "copy_config_from: port order differs at ordinal ", p, " (",
                  ports_[p].name, " vs ", other.ports_[p].name, ")");
    // Input/required constraints are keyed by port VERTEX, which may
    // differ across graphs; remap through the shared port ordinal.
    const auto ic = other.input_constraints_.find(other.ports_[p].vertex);
    if (ic != other.input_constraints_.end()) {
      input_constraints_[ports_[p].vertex] = ic->second;
    }
    const auto rq = other.required_.find(other.ports_[p].vertex);
    if (rq != other.required_.end()) {
      required_[ports_[p].vertex] = rq->second;
    }
  }
  output_loads_ = other.output_loads_;
  net_parasitics_ = other.net_parasitics_;
  net_annotations_ = other.net_annotations_;
  net_parasitics_.resize(nets.size(), {0.0, 0.0});
  net_annotations_.resize(nets.size());
  noisy_net_count_ = other.noisy_net_count_;
  corner_ = other.corner_;
  noise_method_ = other.noise_method_->clone();
  threads_ = other.threads_;
  analyzed_ = false;
}

StaEngine::~StaEngine() = default;

util::Error StaEngine::unknown_vertex_error(const std::string& name) const {
  std::ostringstream os;
  os << "unknown pin/port: " << name;
  append_suggestions(os, nearest_names(name, sorted_vertex_names_));
  return util::Error(os.str());
}

int StaEngine::find_vertex(const std::string& name) const {
  const auto it = vertex_index_.find(name);
  if (it == vertex_index_.end()) throw unknown_vertex_error(name);
  return it->second;
}

PinId StaEngine::pin(const std::string& name) const {
  return PinId{find_vertex(name), graph_tag_};
}

PinId StaEngine::find_pin(const std::string& name) const noexcept {
  const auto it = vertex_index_.find(name);
  if (it == vertex_index_.end()) return PinId{};
  return PinId{it->second, graph_tag_};
}

NetId StaEngine::net(const std::string& name) const {
  const int ord = netlist_->net_ordinal(name);
  if (ord < 0) {
    std::ostringstream os;
    os << "unknown net: " << name;
    std::vector<std::string> nets = netlist_->nets();
    std::sort(nets.begin(), nets.end());
    append_suggestions(os, nearest_names(name, nets));
    throw util::Error(os.str());
  }
  return NetId{ord, graph_tag_};
}

PortId StaEngine::port(const std::string& name) const {
  for (size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].name == name) {
      return PortId{static_cast<int32_t>(i), graph_tag_};
    }
  }
  std::ostringstream os;
  os << "unknown port: " << name << " (ports:";
  for (const auto& p : ports_) os << ' ' << p.name;
  os << ')';
  throw util::Error(os.str());
}

const std::string& StaEngine::name(PinId pin) const {
  return vertex_names_[static_cast<size_t>(check(pin))];
}

const std::string& StaEngine::name(NetId net) const {
  return netlist_->nets()[static_cast<size_t>(check(net))];
}

const std::string& StaEngine::name(PortId port) const {
  return ports_[static_cast<size_t>(check(port))].name;
}

int StaEngine::check(PinId pin) const {
  util::require(pin.graph == graph_tag_ && pin.index >= 0 &&
                    static_cast<size_t>(pin.index) < vertex_names_.size(),
                "invalid PinId (index ", pin.index, ", graph ", pin.graph,
                "): not minted by this engine — resolve it via pin()");
  return pin.index;
}

int StaEngine::check(NetId net) const {
  util::require(net.graph == graph_tag_ && net.index >= 0 &&
                    static_cast<size_t>(net.index) < net_annotations_.size(),
                "invalid NetId (index ", net.index, ", graph ", net.graph,
                "): not minted by this engine — resolve it via net()");
  return net.index;
}

int StaEngine::check(PortId port) const {
  util::require(port.graph == graph_tag_ && port.index >= 0 &&
                    static_cast<size_t>(port.index) < ports_.size(),
                "invalid PortId (index ", port.index, ", graph ", port.graph,
                "): not minted by this engine — resolve it via port()");
  return port.index;
}

std::shared_ptr<const StaEngine::Graph> StaEngine::make_graph(
    const netlist::Netlist& nl, const liberty::Library& lib) {
  nl.validate();
  auto graph = std::make_shared<Graph>();
  Graph& g = *graph;
  g.tag = next_graph_tag();
  // Vertex interning: declaration-driven order (ports first, then
  // instance pins in instance / pin-map order) — stable under retype
  // and reroute edits, which is what lets the service carry timing
  // baselines across a structural rebuild by direct index.
  auto vertex = [&g](const std::string& name) {
    const auto it = g.vertex_index.find(name);
    if (it != g.vertex_index.end()) return it->second;
    const int id = static_cast<int>(g.vertex_names.size());
    g.vertex_names.push_back(name);
    g.vertex_index.emplace(name, id);
    return id;
  };
  // Vertices + port records for ports.
  for (const auto& port : nl.ports()) {
    const int v = vertex(port.name);
    g.ports.push_back({port.name, v, port.direction});
  }
  // Vertices + cell arc edges for instances.
  for (const auto& inst : nl.instances()) {
    const liberty::Cell* cell = lib.find_cell(inst.cell);
    util::require(cell != nullptr, "instance ", inst.name,
                  " references unknown cell ", inst.cell);
    for (const auto& [pin_name, net] : inst.pins) {
      const liberty::Pin* pin = cell->find_pin(pin_name);
      util::require(pin != nullptr, "instance ", inst.name,
                    ": cell ", inst.cell, " has no pin ", pin_name);
      vertex(inst.name + "/" + pin_name);
    }
    // One edge per (input pin -> output pin) timing arc.
    for (const auto& pin : cell->pins) {
      if (pin.direction != liberty::PinDirection::kOutput) continue;
      const auto out_it = inst.pins.find(pin.name);
      if (out_it == inst.pins.end()) continue;
      for (const auto& arc : pin.arcs) {
        const auto in_it = inst.pins.find(arc.related_pin);
        if (in_it == inst.pins.end()) continue;
        CellArcEdge e;
        e.from = vertex(inst.name + "/" + arc.related_pin);
        e.to = vertex(inst.name + "/" + pin.name);
        e.arc = &arc;
        e.out_net = nl.net_ordinal(out_it->second);
        g.cell_edges.push_back(e);
      }
    }
  }
  const size_t n_nets = nl.nets().size();
  g.edges_of_net.assign(n_nets, {});
  g.arcs_of_net.assign(n_nets, {});
  g.sink_load_edges_of_net.assign(n_nets, {});
  for (size_t i = 0; i < g.cell_edges.size(); ++i) {
    if (g.cell_edges[i].out_net >= 0) {
      g.arcs_of_net[static_cast<size_t>(g.cell_edges[i].out_net)].push_back(
          static_cast<uint32_t>(i));
    }
  }
  // Net edges: driver -> every sink.
  for (const auto& net : nl.nets()) {
    // Driver: an input port with this net name, or an instance output.
    std::vector<int> drivers;
    if (const auto* port = nl.find_port(net)) {
      if (port->direction == netlist::PortDirection::kInput) {
        drivers.push_back(vertex(net));
      }
    }
    struct Sink {
      int v;
      const liberty::Pin* pin;
      const liberty::Cell* cell;
      int32_t out_net;  // net driven by the sink gate's output pin
    };
    std::vector<Sink> sinks;
    for (const auto& ref : nl.pins_on_net(net)) {
      const liberty::Cell* cell = lib.find_cell(ref.instance->cell);
      const liberty::Pin* pin = cell->find_pin(ref.pin);
      const int v = vertex(ref.instance->name + "/" + ref.pin);
      if (pin->direction == liberty::PinDirection::kOutput) {
        drivers.push_back(v);
      } else {
        const auto& out_pin = cell->output_pin();
        const auto out_it = ref.instance->pins.find(out_pin.name);
        sinks.push_back({v, pin, cell,
                         out_it == ref.instance->pins.end()
                             ? -1
                             : nl.net_ordinal(out_it->second)});
      }
    }
    if (const auto* port = nl.find_port(net)) {
      if (port->direction == netlist::PortDirection::kOutput) {
        sinks.push_back({vertex(net), nullptr, nullptr, -1});
      }
    }
    util::require(drivers.size() <= 1, "net ", net, " has ", drivers.size(),
                  " drivers");
    if (drivers.empty()) continue;  // undriven net: stays unconstrained
    const int32_t net_ord = nl.net_ordinal(net);
    for (const auto& sink : sinks) {
      NetEdge e;
      e.from = drivers[0];
      e.to = sink.v;
      e.net = net_ord;
      e.sink_pin = sink.pin;
      e.sink_cell = sink.cell;
      e.sink_out_net = sink.out_net;
      const auto idx = static_cast<uint32_t>(g.net_edges.size());
      g.edges_of_net[static_cast<size_t>(net_ord)].push_back(idx);
      if (sink.out_net >= 0) {
        g.sink_load_edges_of_net[static_cast<size_t>(sink.out_net)].push_back(
            idx);
      }
      g.net_edges.push_back(e);
    }
  }
  // Adjacency in deterministic construction order: cell edges first,
  // then net edges, each by ascending edge index.  Every per-vertex
  // fold during propagation walks these lists in this fixed order,
  // which is what makes results independent of the thread count.
  const size_t n = g.vertex_names.size();
  g.in_edges.assign(n, {});
  g.out_edges.assign(n, {});
  for (size_t i = 0; i < g.cell_edges.size(); ++i) {
    g.out_edges[static_cast<size_t>(g.cell_edges[i].from)].push_back(
        {true, static_cast<uint32_t>(i)});
    g.in_edges[static_cast<size_t>(g.cell_edges[i].to)].push_back(
        {true, static_cast<uint32_t>(i)});
  }
  for (size_t i = 0; i < g.net_edges.size(); ++i) {
    g.out_edges[static_cast<size_t>(g.net_edges[i].from)].push_back(
        {false, static_cast<uint32_t>(i)});
    g.in_edges[static_cast<size_t>(g.net_edges[i].to)].push_back(
        {false, static_cast<uint32_t>(i)});
  }
  g.sorted_vertex_names = g.vertex_names;
  std::sort(g.sorted_vertex_names.begin(), g.sorted_vertex_names.end());
  levelize(g);
  for (size_t p = 0; p < g.ports.size(); ++p) {
    if (g.ports[p].direction == netlist::PortDirection::kOutput) {
      g.endpoint_ports.push_back(static_cast<int32_t>(p));
    }
  }
  // Partition cover for coarse-task sharding: cell arcs always bind
  // their endpoints; arcs of low-fanout nets are the cut candidates
  // (cheap boundaries between cones).  Pure function of the graph.
  const PartitionOptions popt;
  std::vector<PartitionEdge> pedges;
  pedges.reserve(g.cell_edges.size() + g.net_edges.size());
  for (const auto& e : g.cell_edges) {
    pedges.push_back({e.from, e.to, false});
  }
  for (const auto& e : g.net_edges) {
    // net_degree counts the driver too; `cut_fanout` is in sinks.
    const bool cut = popt.cut_fanout >= 0 &&
                     nl.net_degree(e.net) <= popt.cut_fanout + 1;
    pedges.push_back({e.from, e.to, cut});
  }
  g.partitions =
      PartitionSet::build(g.vertex_names.size(), g.vertex_level, pedges, popt);
  // Eagerly build the default-threshold schedule so the common
  // run()/sweep() path never takes the lazy-build lock contended.
  g.shard_schedules.emplace(
      kDefaultWidePartitionThreshold,
      PartitionSchedule::build(g.partitions, g.vertex_level,
                               kDefaultWidePartitionThreshold));
  return graph;
}

void StaEngine::levelize(Graph& g) {
  // Kahn topological sort; level(v) = 1 + max over predecessors.  The
  // levels are stored on the graph and reused by every evaluation.
  const size_t n = g.vertex_names.size();
  std::vector<int> indegree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    indegree[v] = static_cast<int>(g.in_edges[v].size());
  }
  std::vector<int> level(n, 0);
  std::vector<int> ready;
  for (size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
  }
  size_t visited = 0;
  int max_level = 0;
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    ++visited;
    for (const auto& [is_cell, idx] : g.out_edges[static_cast<size_t>(v)]) {
      const int to = is_cell ? g.cell_edges[idx].to : g.net_edges[idx].to;
      level[static_cast<size_t>(to)] =
          std::max(level[static_cast<size_t>(to)], level[static_cast<size_t>(v)] + 1);
      max_level = std::max(max_level, level[static_cast<size_t>(to)]);
      if (--indegree[static_cast<size_t>(to)] == 0) ready.push_back(to);
    }
  }
  util::require(visited == n,
                "timing graph has a combinational cycle (", n - visited,
                " vertices unresolved)");
  g.levels.assign(static_cast<size_t>(max_level) + 1, {});
  for (size_t v = 0; v < n; ++v) {
    g.levels[static_cast<size_t>(level[v])].push_back(static_cast<int>(v));
  }
  g.vertex_level = std::move(level);
}

const PartitionSchedule& StaEngine::shard_schedule(
    size_t wide_threshold) const {
  // Map nodes are address-stable, so the reference stays valid after
  // the lock drops; the lock only guards the lazy build against
  // concurrent const evaluations (shared across forks of this graph).
  std::lock_guard<std::mutex> lock(graph_->shard_schedules_mutex);
  auto it = graph_->shard_schedules.find(wide_threshold);
  if (it == graph_->shard_schedules.end()) {
    it = graph_->shard_schedules
             .emplace(wide_threshold,
                      PartitionSchedule::build(partitions_, vertex_level_,
                                               wide_threshold))
             .first;
  }
  return it->second;
}

void StaEngine::compute_loads() {
  // Load on each net = sink pin caps + annotated wire cap + port load.
  // One pass over instance pins instead of pins_on_net() per net: each
  // input pin adds its cap to its net, in the SAME (instance, pin)
  // visit order the per-net walk produces, so the per-net sums fold in
  // the identical order and stay bitwise equal — the contract
  // recompute_net_loads() relies on for single-net refreshes.  Net
  // ordinals were resolved onto the edges at construction, so this —
  // the per-prepare() path — does no name parsing and no linear
  // instance searches (prepare() used to be quadratic in the netlist
  // size and dominated sweeps over 10k-vertex graphs).
  const auto& nets = netlist_->nets();
  std::vector<double> net_load(nets.size(), 0.0);
  for (const auto& inst : netlist_->instances()) {
    const liberty::Cell* cell = library_->find_cell(inst.cell);
    for (const auto& [pin_name, net] : inst.pins) {
      const liberty::Pin* pin = cell->find_pin(pin_name);
      if (pin->direction == liberty::PinDirection::kInput) {
        net_load[static_cast<size_t>(netlist_->net_ordinal(net))] +=
            pin->capacitance;
      }
    }
  }
  for (size_t i = 0; i < nets.size(); ++i) {
    net_load[i] += net_parasitics_[i].first;
  }
  for (size_t p = 0; p < ports_.size(); ++p) {
    if (ports_[p].direction != netlist::PortDirection::kOutput) continue;
    const int ord = netlist_->net_ordinal(ports_[p].name);
    if (ord >= 0) net_load[static_cast<size_t>(ord)] += output_loads_[p];
  }
  net_loads_ = std::move(net_load);
}

void StaEngine::recompute_net_loads(std::span<const int32_t> nets) {
  const auto& names = netlist_->nets();
  for (const int32_t ord : nets) {
    util::require(ord >= 0 && static_cast<size_t>(ord) < names.size(),
                  "recompute_net_loads: net ordinal ", ord,
                  " out of range (", names.size(), " nets)");
    const std::string& net = names[static_cast<size_t>(ord)];
    // Fold in the exact compute_loads() order — sink pin caps in
    // (instance, pin-map) order, then parasitic cap, then port load —
    // so the per-net sum is bitwise identical to a full prepare().
    double load = 0.0;
    for (const auto& ref : netlist_->pins_on_net(net)) {
      const liberty::Cell* cell = library_->find_cell(ref.instance->cell);
      const liberty::Pin* pin = cell->find_pin(ref.pin);
      if (pin->direction == liberty::PinDirection::kInput) {
        load += pin->capacitance;
      }
    }
    load += net_parasitics_[static_cast<size_t>(ord)].first;
    for (size_t p = 0; p < ports_.size(); ++p) {
      if (ports_[p].direction == netlist::PortDirection::kOutput &&
          ports_[p].name == net) {
        load += output_loads_[p];
      }
    }
    net_loads_[static_cast<size_t>(ord)] = load;
  }
}

void StaEngine::set_input(PortId port, double arrival, double slew) {
  set_input(port, RiseFall::kRise, arrival, slew);
  set_input(port, RiseFall::kFall, arrival, slew);
}

void StaEngine::set_input(const std::string& port, double arrival,
                          double slew) {
  set_input(this->port(port), arrival, slew);
}

void StaEngine::set_input(PortId port, RiseFall rf, double arrival,
                          double slew) {
  const auto& p = ports_[static_cast<size_t>(check(port))];
  util::require(p.direction == netlist::PortDirection::kInput,
                "set_input: ", p.name, " is not an input port");
  util::require(slew > 0.0, "set_input: non-positive slew");
  auto& c = input_constraints_[p.vertex][static_cast<size_t>(rf)];
  c.arrival = arrival;
  c.slew = slew;
  c.set = true;
  analyzed_ = false;
}

void StaEngine::set_input(const std::string& port, RiseFall rf,
                          double arrival, double slew) {
  set_input(this->port(port), rf, arrival, slew);
}

void StaEngine::set_output_load(PortId port, double cap) {
  const size_t i = static_cast<size_t>(check(port));
  util::require(ports_[i].direction == netlist::PortDirection::kOutput,
                "set_output_load: ", ports_[i].name,
                " is not an output port");
  output_loads_[i] = cap;
  analyzed_ = false;
}

void StaEngine::set_output_load(const std::string& port, double cap) {
  set_output_load(this->port(port), cap);
}

void StaEngine::set_required(PortId port, double time) {
  const auto& p = ports_[static_cast<size_t>(check(port))];
  util::require(p.direction == netlist::PortDirection::kOutput,
                "set_required: ", p.name, " is not an output port");
  required_[p.vertex] = time;
  analyzed_ = false;
}

void StaEngine::set_required(const std::string& port, double time) {
  set_required(this->port(port), time);
}

void StaEngine::set_net_parasitics(NetId net, double cap, double delay) {
  net_parasitics_[static_cast<size_t>(check(net))] = {cap, delay};
  analyzed_ = false;
}

void StaEngine::set_net_parasitics(const std::string& net, double cap,
                                   double delay) {
  util::require(netlist_->has_net(net), "set_net_parasitics: unknown net ",
                net);
  set_net_parasitics(this->net(net), cap, delay);
}

void StaEngine::set_corner(Corner corner) {
  corner_ = std::move(corner);
  analyzed_ = false;
}

void StaEngine::clear_corner() {
  corner_.reset();
  analyzed_ = false;
}

void StaEngine::set_noise_method(
    std::unique_ptr<core::EquivalentWaveformMethod> m) {
  util::require(m != nullptr, "null noise method");
  noise_method_ = std::move(m);
  analyzed_ = false;
}

void StaEngine::annotate_noisy_net(NetId net, wave::Waveform waveform,
                                   wave::Polarity polarity) {
  const size_t i = static_cast<size_t>(check(net));
  const uint64_t key = noise_waveform_key(waveform, polarity);
  if (!net_annotations_[i].has_value()) ++noisy_net_count_;
  net_annotations_[i] = NoiseAnnotation{std::move(waveform), polarity, key};
  analyzed_ = false;
}

void StaEngine::annotate_noisy_net(const std::string& net,
                                   wave::Waveform waveform,
                                   wave::Polarity polarity) {
  util::require(netlist_->has_net(net), "annotate_noisy_net: unknown net ",
                net);
  annotate_noisy_net(this->net(net), std::move(waveform), polarity);
}

void StaEngine::clear_noisy_net(NetId net) {
  const size_t i = static_cast<size_t>(check(net));
  if (net_annotations_[i].has_value()) --noisy_net_count_;
  net_annotations_[i].reset();
  analyzed_ = false;
}

void StaEngine::clear_noisy_net(const std::string& net) {
  util::require(netlist_->has_net(net), "clear_noisy_net: unknown net ", net);
  clear_noisy_net(this->net(net));
}

void StaEngine::clear_noisy_nets() {
  std::fill(net_annotations_.begin(), net_annotations_.end(), std::nullopt);
  noisy_net_count_ = 0;
  analyzed_ = false;
}

const NoiseAnnotation* StaEngine::noisy_net(NetId net) const {
  const auto& slot = net_annotations_[static_cast<size_t>(check(net))];
  return slot.has_value() ? &*slot : nullptr;
}

const NoiseAnnotation* StaEngine::noisy_net(const std::string& net) const {
  return noisy_net(this->net(net));
}

std::vector<const NoiseAnnotation*> StaEngine::compile_edge_annotations(
    const NoiseScenario* overlay) const {
  std::vector<const NoiseAnnotation*> table(net_edges_.size(), nullptr);
  if (noisy_net_count_ > 0) {
    for (size_t i = 0; i < net_annotations_.size(); ++i) {
      if (!net_annotations_[i].has_value()) continue;
      for (const uint32_t e : edges_of_net_[i]) {
        table[e] = &*net_annotations_[i];
      }
    }
  }
  if (overlay != nullptr) {
    for (const auto& entry : overlay->entries) {
      const int ord = netlist_->net_ordinal(entry.net);
      util::require(ord >= 0, "scenario ", overlay->name,
                    " annotates unknown net ", entry.net);
      for (const uint32_t e : edges_of_net_[static_cast<size_t>(ord)]) {
        table[e] = &entry.annotation;
      }
    }
  }
  return table;
}

void StaEngine::set_threads(int threads) {
  threads_ = threads;
  pool_.reset();
}

void StaEngine::prepare() { compute_loads(); }

void StaEngine::init_state(TimingState& state) const {
  state.reset(vertex_names_.size());
  for (const auto& [v, per_rf] : input_constraints_) {
    for (size_t rf = 0; rf < 2; ++rf) {
      if (!per_rf[rf].set) continue;
      auto& t = state[static_cast<size_t>(v)].timing[rf];
      t.arrival = per_rf[rf].arrival;
      t.slew = per_rf[rf].slew;
      t.valid = true;
    }
  }
  for (const auto& [v, time] : required_) {
    state[static_cast<size_t>(v)].timing[0].required = time;
    state[static_cast<size_t>(v)].timing[1].required = time;
  }
}

void StaEngine::relax(TimingState& state, int to, RiseFall to_rf,
                      double arrival, double slew, int from,
                      RiseFall from_rf) {
  auto& vt = state[static_cast<size_t>(to)];
  auto& t = vt.timing[static_cast<size_t>(to_rf)];
  if (!t.valid || arrival > t.arrival) {
    t.arrival = arrival;
    t.slew = slew;
    t.valid = true;
    vt.critical_pred[static_cast<size_t>(to_rf)] = from;
    vt.critical_pred_rf[static_cast<size_t>(to_rf)] = from_rf;
  }
}

void StaEngine::propagate_cell_edge(const CellArcEdge& e, TimingState& state,
                                    const EvalContext& ctx) const {
  // x * 1.0 is bitwise x, so the nominal corner (or no corner at all)
  // reproduces un-derated results exactly.
  const double delay_scale =
      ctx.corner != nullptr ? ctx.corner->cell_delay_scale : 1.0;
  const double slew_scale =
      ctx.corner != nullptr ? ctx.corner->cell_slew_scale : 1.0;
  const auto& from = state[static_cast<size_t>(e.from)];
  const double load = net_loads_[static_cast<size_t>(e.out_net)];
  for (int rf_i = 0; rf_i < 2; ++rf_i) {
    const auto& in = from.timing[rf_i];
    if (!in.valid) continue;
    const auto in_rf = static_cast<RiseFall>(rf_i);

    RiseFall out_rfs[2];
    int out_count = 0;
    switch (e.arc->sense) {
      case liberty::TimingSense::kPositiveUnate:
        out_rfs[out_count++] = in_rf;
        break;
      case liberty::TimingSense::kNegativeUnate:
        out_rfs[out_count++] = flip(in_rf);
        break;
      case liberty::TimingSense::kNonUnate:
        out_rfs[out_count++] = RiseFall::kRise;
        out_rfs[out_count++] = RiseFall::kFall;
        break;
    }
    for (int i = 0; i < out_count; ++i) {
      const auto out_rf = out_rfs[i];
      const auto lookup = (out_rf == RiseFall::kRise)
                              ? e.arc->rise(in.slew, load)
                              : e.arc->fall(in.slew, load);
      relax(state, e.to, out_rf, in.arrival + lookup.delay * delay_scale,
            lookup.out_slew * slew_scale, e.from, in_rf);
    }
  }
}

void StaEngine::noisy_fit(const NetEdge& e, size_t edge_index,
                          const NoiseAnnotation* noisy, int rf_i,
                          const EvalContext& ctx, double& arrival,
                          double& slew) const {
  // The full noisy-sink gate: annotation present, sink is a gate input
  // whose transition matches the annotated polarity, and the sink gate
  // has an arc from this pin.  Shared verbatim by the scalar path
  // (propagate_net_edge) and the lane-block path (evaluate_delta_block)
  // so "lane == scalar" at noisy edges is structural.
  if (noisy == nullptr || e.sink_pin == nullptr) return;
  const auto rf = static_cast<RiseFall>(rf_i);
  if (to_polarity(rf) != noisy->polarity) return;
  const auto* arc = e.sink_cell->output_pin().find_arc(e.sink_pin->name);
  if (arc == nullptr) return;
  const double delay_scale =
      ctx.corner != nullptr ? ctx.corner->cell_delay_scale : 1.0;
  const double slew_scale =
      ctx.corner != nullptr ? ctx.corner->cell_slew_scale : 1.0;
  const double sink_load =
      e.sink_out_net >= 0 ? net_loads_[static_cast<size_t>(e.sink_out_net)]
                          : 0.0;
  // The fit is a pure function of (annotation, clean ramp, arc,
  // load, corner); memoize it per exact key when a cache is
  // supplied.  Arc identity and load bits are part of the key so
  // one cache stays exact across copy-on-write snapshots whose
  // loads or graphs differ.
  GammaCache::Key key;
  key.noise_key = noisy->key;
  key.method_id = reinterpret_cast<uintptr_t>(ctx.method);
  key.arc_id = reinterpret_cast<uintptr_t>(arc);
  key.edge = static_cast<uint32_t>(edge_index);
  key.rf = static_cast<uint32_t>(rf_i);
  key.arrival_bits = std::bit_cast<uint64_t>(arrival);
  key.slew_bits = std::bit_cast<uint64_t>(slew);
  key.load_bits = std::bit_cast<uint64_t>(sink_load);
  key.corner_key = ctx.corner_key;
  std::optional<GammaCache::Value> cached;
  if (ctx.cache != nullptr) cached = ctx.cache->lookup(key);
  if (cached.has_value()) {
    arrival = cached->arrival;
    slew = cached->slew;
  } else {
    // The equivalent-waveform flow of the paper: replace the ramp
    // at this gate input by Γeff fitted against the annotated
    // noisy waveform, using a noiseless response synthesized from
    // NLDM (derated the same way as the real propagation).
    const auto pol = noisy->polarity;
    const double vdd = library_->nom_voltage;
    const auto clean_ramp = wave::Ramp::from_arrival_slew(arrival, slew, vdd);

    const auto out_pol =
        arc->sense == liberty::TimingSense::kNegativeUnate ? flip(pol) : pol;
    const auto lk = (out_pol == wave::Polarity::kRising)
                        ? arc->rise(slew, sink_load)
                        : arc->fall(slew, sink_load);
    const auto out_ramp = wave::Ramp::from_arrival_slew(
        arrival + lk.delay * delay_scale, lk.out_slew * slew_scale, vdd);

    core::MethodInput mi;
    mi.noisy_in = &noisy->waveform;
    mi.in_polarity = pol;
    mi.out_polarity = out_pol;
    mi.vdd = vdd;
    mi.workspace = ctx.workspace;
    // The noiseless pair is synthesized into the worker's arena
    // when one is available (zero heap traffic); the legacy path
    // materializes owning Waveforms.  Same formulas either way.
    constexpr size_t kCleanSamples = 192;
    std::optional<wave::Workspace::Scope> ws_scope;
    wave::Waveform clean_in_owned, clean_out_owned;
    if (ctx.workspace != nullptr) {
      auto& ws = *ctx.workspace;
      ws_scope.emplace(ws);
      const auto t_in = ws.alloc(kCleanSamples);
      const auto v_in = ws.alloc(kCleanSamples);
      clean_ramp.denormalized_into(pol, t_in, v_in);
      mi.noiseless_in_view = wave::WaveView(t_in, v_in);
      const auto t_out = ws.alloc(kCleanSamples);
      const auto v_out = ws.alloc(kCleanSamples);
      out_ramp.denormalized_into(out_pol, t_out, v_out);
      mi.noiseless_out_view = wave::WaveView(t_out, v_out);
    } else {
      clean_in_owned = clean_ramp.denormalized(pol, kCleanSamples);
      clean_out_owned = out_ramp.denormalized(out_pol, kCleanSamples);
      mi.noiseless_in = &clean_in_owned;
      mi.noiseless_out = &clean_out_owned;
    }
    const auto fit = ctx.method->fit(mi);
    arrival = fit.ramp.t50();
    slew = fit.ramp.slew();
    if (ctx.cache != nullptr) {
      ctx.cache->insert(key, GammaCache::Value{arrival, slew});
    }
  }
}

void StaEngine::propagate_net_edge(size_t edge_index, TimingState& state,
                                   const EvalContext& ctx) const {
  const auto& e = net_edges_[edge_index];
  const auto& from = state[static_cast<size_t>(e.from)];
  // Annotation resolution is a single indexed load from the table
  // compiled by compile_edge_annotations() — no map lookups here.
  const NoiseAnnotation* noisy =
      ctx.edge_noise != nullptr ? ctx.edge_noise[edge_index] : nullptr;
  const double wire_scale =
      ctx.corner != nullptr ? ctx.corner->wire_delay_scale : 1.0;
  const double wire_delay = net_parasitics_[static_cast<size_t>(e.net)].second;

  for (int rf_i = 0; rf_i < 2; ++rf_i) {
    const auto& drv = from.timing[rf_i];
    if (!drv.valid) continue;
    const auto rf = static_cast<RiseFall>(rf_i);
    double arrival = drv.arrival + wire_delay * wire_scale;
    double slew = drv.slew;
    noisy_fit(e, edge_index, noisy, rf_i, ctx, arrival, slew);
    relax(state, e.to, rf, arrival, slew, e.from, rf);
  }
}

void StaEngine::forward_vertex(int v, TimingState& state,
                               const EvalContext& ctx) const {
  for (const auto& [is_cell, idx] : in_edges_[static_cast<size_t>(v)]) {
    if (is_cell) {
      propagate_cell_edge(cell_edges_[idx], state, ctx);
    } else {
      propagate_net_edge(idx, state, ctx);
    }
  }
}

void StaEngine::backward_vertex(int v, TimingState& state) const {
  // The edge delay actually used by the forward pass is recovered from
  // the endpoint arrivals of the transitions it connected.
  auto& vf = state[static_cast<size_t>(v)];
  for (const auto& [is_cell, idx] : out_edges_[static_cast<size_t>(v)]) {
    const int to = is_cell ? cell_edges_[idx].to : net_edges_[idx].to;
    const auto& vt = state[static_cast<size_t>(to)];
    for (int to_rf = 0; to_rf < 2; ++to_rf) {
      const auto& tt = vt.timing[to_rf];
      if (!tt.valid || !std::isfinite(tt.required)) continue;
      // Which source transition fed this sink transition?
      if (vt.critical_pred[to_rf] != v) continue;
      const int from_rf = static_cast<int>(vt.critical_pred_rf[to_rf]);
      auto& ft = vf.timing[from_rf];
      if (!ft.valid) continue;
      const double edge_delay = tt.arrival - ft.arrival;
      ft.required = std::min(ft.required, tt.required - edge_delay);
    }
  }
}

void StaEngine::evaluate(TimingState& state, const EvalContext& ctx,
                         util::ThreadPool* pool,
                         std::span<wave::Workspace> worker_workspaces) const {
  util::require(ctx.method != nullptr, "evaluate: null noise method");
  const size_t pool_workers =
      pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  util::require(worker_workspaces.empty() ||
                    worker_workspaces.size() >= pool_workers,
                "evaluate: need one workspace per pool worker (",
                worker_workspaces.size(), " < ", pool_workers, ")");
  // Serial fallbacks run as "worker 0".
  EvalContext serial_ctx = ctx;
  if (!worker_workspaces.empty()) {
    serial_ctx.workspace = &worker_workspaces[0];
  }
  init_state(state);
  for (const auto& level : levels_) {
    if (pool != nullptr && pool->size() > 1 && level.size() > 1) {
      pool->parallel_for(level.size(), [&](size_t worker, size_t i) {
        EvalContext task_ctx = ctx;
        if (!worker_workspaces.empty()) {
          task_ctx.workspace = &worker_workspaces[worker];
        }
        forward_vertex(level[i], state, task_ctx);
      });
    } else {
      for (const int v : level) forward_vertex(v, state, serial_ctx);
    }
  }
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    const auto& level = *it;
    if (pool != nullptr && pool->size() > 1 && level.size() > 1) {
      pool->parallel_for(level.size(),
                         [&](size_t i) { backward_vertex(level[i], state); });
    } else {
      for (const int v : level) backward_vertex(v, state);
    }
  }
}

void StaEngine::evaluate_points(std::span<TimingState> states,
                                std::span<const EvalContext> contexts,
                                util::ThreadPool* pool,
                                std::span<wave::Workspace> worker_workspaces,
                                bool shard, size_t wide_threshold) const {
  util::require(states.size() == contexts.size(),
                "evaluate_points: ", states.size(), " states vs ",
                contexts.size(), " contexts");
  const size_t n_points = states.size();
  if (n_points == 0) return;
  for (const auto& ctx : contexts) {
    util::require(ctx.method != nullptr, "evaluate_points: null noise method");
  }
  const size_t pool_workers =
      pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  util::require(worker_workspaces.empty() ||
                    worker_workspaces.size() >= pool_workers,
                "evaluate_points: need one workspace per pool worker (",
                worker_workspaces.size(), " < ", pool_workers, ")");
  for (size_t p = 0; p < n_points; ++p) init_state(states[p]);

  const bool threaded = pool != nullptr && pool->size() > 1;

  if (!shard) {
    // Legacy per-level (point × vertex) fan-out: a barrier per level.
    for (const auto& level : levels_) {
      const size_t m = level.size();
      auto body = [&](size_t worker, size_t idx) {
        const size_t p = idx / m;
        const int v = level[idx % m];
        EvalContext task_ctx = contexts[p];
        if (!worker_workspaces.empty()) {
          task_ctx.workspace = &worker_workspaces[worker];
        }
        forward_vertex(v, states[p], task_ctx);
      };
      if (threaded) {
        pool->parallel_for(m * n_points, body);
      } else {
        for (size_t i = 0; i < m * n_points; ++i) body(0, i);
      }
    }
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
      const auto& level = *it;
      const size_t m = level.size();
      auto body = [&](size_t idx) {
        backward_vertex(level[idx % m], states[idx / m]);
      };
      if (threaded) {
        pool->parallel_for(m * n_points, body);
      } else {
        for (size_t i = 0; i < m * n_points; ++i) body(i);
      }
    }
    return;
  }

  // Partition-sharded: one coarse task per (point, partition chunk),
  // dependency-ordered — no level barriers, no per-point barriers.  A
  // point can be finishing its cone while another is still at the
  // inputs; narrow shards no longer starve the pool.
  const PartitionSchedule& sched = shard_schedule(wide_threshold);
  const auto& order = sched.order();
  const auto& tasks = sched.tasks();
  const size_t n_tasks = tasks.size();
  auto forward_task = [&](size_t worker, size_t task) {
    const size_t p = task / n_tasks;
    const ShardTask& t = tasks[task % n_tasks];
    EvalContext task_ctx = contexts[p];
    if (!worker_workspaces.empty()) {
      task_ctx.workspace = &worker_workspaces[worker];
    }
    for (uint32_t i = t.begin; i < t.end; ++i) {
      forward_vertex(order[i], states[p], task_ctx);
    }
  };
  auto backward_task = [&](size_t, size_t task) {
    const size_t p = task / n_tasks;
    const ShardTask& t = tasks[task % n_tasks];
    for (uint32_t i = t.end; i > t.begin; --i) {
      backward_vertex(order[i - 1], states[p]);
    }
  };
  if (threaded) {
    pool->run_graph({sched.indegree(), sched.successors(), n_points},
                    forward_task);
    pool->run_graph({sched.rev_indegree(), sched.rev_successors(), n_points},
                    backward_task);
  } else {
    // Serial: the precomputed topological task order forwards, its
    // reverse backwards (both valid; order never changes results).
    // One context per point, hoisted out of the task loop.
    const auto& so = sched.serial_order();
    for (size_t p = 0; p < n_points; ++p) {
      EvalContext point_ctx = contexts[p];
      if (!worker_workspaces.empty()) {
        point_ctx.workspace = &worker_workspaces[0];
      }
      for (const uint32_t t : so) {
        const ShardTask& task = tasks[t];
        for (uint32_t i = task.begin; i < task.end; ++i) {
          forward_vertex(order[i], states[p], point_ctx);
        }
      }
    }
    for (size_t p = 0; p < n_points; ++p) {
      for (auto it = so.rbegin(); it != so.rend(); ++it) {
        const ShardTask& task = tasks[*it];
        for (uint32_t i = task.end; i > task.begin; --i) {
          backward_vertex(order[i - 1], states[p]);
        }
      }
    }
  }
}

StaEngine::DeltaPlan StaEngine::finish_plan(std::vector<char>& dirty,
                                            std::vector<char>& back) const {
  const size_t n = vertex_names_.size();
  DeltaPlan plan;
  plan.num_vertices = n;

  // Forward closure over out-edges: the transitive fanout cone.
  std::vector<int> stack;
  for (size_t v = 0; v < n; ++v) {
    if (dirty[v]) stack.push_back(static_cast<int>(v));
  }
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const auto& [is_cell, idx] : out_edges_[static_cast<size_t>(v)]) {
      const int to = is_cell ? cell_edges_[idx].to : net_edges_[idx].to;
      if (!dirty[static_cast<size_t>(to)]) {
        dirty[static_cast<size_t>(to)] = 1;
        stack.push_back(to);
      }
    }
  }
  // Backward closure: required times depend on downstream arrivals, so
  // every vertex with a path INTO the cone (or into an extra backward
  // seed, e.g. a required-edited endpoint) must re-fold its required.
  for (size_t v = 0; v < n; ++v) {
    if (dirty[v] && !back[v]) back[v] = 1;
  }
  for (size_t v = 0; v < n; ++v) {
    if (back[v]) stack.push_back(static_cast<int>(v));
  }
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const auto& [is_cell, idx] : in_edges_[static_cast<size_t>(v)]) {
      const int from = is_cell ? cell_edges_[idx].from : net_edges_[idx].from;
      if (!back[static_cast<size_t>(from)]) {
        back[static_cast<size_t>(from)] = 1;
        stack.push_back(from);
      }
    }
  }

  for (size_t v = 0; v < n; ++v) {
    if (dirty[v]) plan.forward.push_back(static_cast<int>(v));
    if (back[v]) plan.backward.push_back(static_cast<int>(v));
  }
  // The collection loops above run in ascending vertex id — keep that
  // order for the materialization walklists before re-sorting the
  // propagation ones by level.
  plan.forward_ids = plan.forward;
  plan.backward_ids = plan.backward;
  // Order worklists as (level, vertex) forwards and (-level, vertex)
  // backwards.  The lists are built in ascending vertex id, so a
  // stable counting sort over the level key produces exactly what
  // std::stable_sort with a level comparator did — in O(cone + levels)
  // instead of O(cone log cone), with no merge buffer allocation.
  // Plan construction showed up beside evaluation itself in sweep
  // profiles, so this path is deliberately allocation-lean.
  const auto by_level = [this](std::vector<int>& list, bool descending) {
    if (list.size() < 2) return;
    int lo = vertex_level_[static_cast<size_t>(list[0])];
    int hi = lo;
    for (const int v : list) {
      const int l = vertex_level_[static_cast<size_t>(v)];
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    const size_t n_levels = static_cast<size_t>(hi - lo) + 1;
    std::vector<int> counts(n_levels + 1, 0);
    const auto key = [&](int v) {
      const int l = vertex_level_[static_cast<size_t>(v)];
      return static_cast<size_t>(descending ? hi - l : l - lo);
    };
    for (const int v : list) ++counts[key(v) + 1];
    for (size_t k = 1; k < counts.size(); ++k) counts[k] += counts[k - 1];
    std::vector<int> sorted(list.size());
    for (const int v : list) sorted[static_cast<size_t>(counts[key(v)]++)] = v;
    list = std::move(sorted);
  };
  by_level(plan.forward, /*descending=*/false);
  by_level(plan.backward, /*descending=*/true);

  // Cone ∩ partition membership: the partitions a delta actually
  // touches.  Everything else is skipped entirely.
  std::vector<char> part_dirty(partitions_.size(), 0);
  for (const int v : plan.forward) {
    part_dirty[static_cast<size_t>(partitions_.partition_of(v))] = 1;
  }
  for (size_t k = 0; k < part_dirty.size(); ++k) {
    if (part_dirty[k]) plan.partitions.push_back(static_cast<uint32_t>(k));
  }
  for (size_t e = 0; e < endpoint_ports_.size(); ++e) {
    const int v = ports_[static_cast<size_t>(endpoint_ports_[e])].vertex;
    if (dirty[static_cast<size_t>(v)]) {
      plan.endpoints.push_back(static_cast<int32_t>(e));
    }
  }
  return plan;
}

StaEngine::DeltaPlan StaEngine::delta_plan(
    const NoiseScenario& scenario) const {
  const size_t n = vertex_names_.size();
  // Seeds: the sink vertex of every net edge of every annotated net —
  // the only places where the compiled edge-annotation table of this
  // scenario can differ from the engine-level base table.
  std::vector<char> dirty(n, 0);
  std::vector<char> back(n, 0);
  for (const auto& entry : scenario.entries) {
    const int ord = netlist_->net_ordinal(entry.net);
    util::require(ord >= 0, "delta_plan: scenario ", scenario.name,
                  " annotates unknown net ", entry.net);
    for (const uint32_t e : edges_of_net_[static_cast<size_t>(ord)]) {
      dirty[static_cast<size_t>(net_edges_[e].to)] = 1;
    }
  }
  return finish_plan(dirty, back);
}

StaEngine::DeltaPlan StaEngine::delta_plan(const EditSeeds& seeds) const {
  const size_t n = vertex_names_.size();
  const size_t n_nets = netlist_->nets().size();
  std::vector<char> dirty(n, 0);
  std::vector<char> back(n, 0);
  const auto check_net = [&](int32_t ord, const char* what) {
    util::require(ord >= 0 && static_cast<size_t>(ord) < n_nets,
                  "delta_plan: ", what, " net ordinal ", ord,
                  " out of range (", n_nets, " nets)");
  };
  // A load change re-times every cell arc driving the net AND every
  // noisy-edge Γeff synthesis that reads the net's load at its sink.
  for (const int32_t ord : seeds.load_nets) {
    check_net(ord, "load-edit");
    for (const uint32_t e : graph_->arcs_of_net[static_cast<size_t>(ord)]) {
      dirty[static_cast<size_t>(cell_edges_[e].to)] = 1;
    }
    for (const uint32_t e :
         graph_->sink_load_edges_of_net[static_cast<size_t>(ord)]) {
      dirty[static_cast<size_t>(net_edges_[e].to)] = 1;
    }
  }
  // Wire-delay and annotation changes surface at the net's sinks.
  for (const int32_t ord : seeds.delay_nets) {
    check_net(ord, "delay-edit");
    for (const uint32_t e : edges_of_net_[static_cast<size_t>(ord)]) {
      dirty[static_cast<size_t>(net_edges_[e].to)] = 1;
    }
  }
  for (const int32_t ord : seeds.noise_nets) {
    check_net(ord, "noise-edit");
    for (const uint32_t e : edges_of_net_[static_cast<size_t>(ord)]) {
      dirty[static_cast<size_t>(net_edges_[e].to)] = 1;
    }
  }
  for (const int32_t p : seeds.arrival_ports) {
    util::require(p >= 0 && static_cast<size_t>(p) < ports_.size(),
                  "delta_plan: arrival-edit port ordinal ", p,
                  " out of range (", ports_.size(), " ports)");
    const auto& rec = ports_[static_cast<size_t>(p)];
    util::require(rec.direction == netlist::PortDirection::kInput,
                  "delta_plan: arrival-edit port ", rec.name,
                  " is not an input port");
    dirty[static_cast<size_t>(rec.vertex)] = 1;
  }
  // Required-time edits change no arrival: the port vertex joins only
  // the backward closure (and the endpoint list, below).
  for (const int32_t p : seeds.required_ports) {
    util::require(p >= 0 && static_cast<size_t>(p) < ports_.size(),
                  "delta_plan: required-edit port ordinal ", p,
                  " out of range (", ports_.size(), " ports)");
    const auto& rec = ports_[static_cast<size_t>(p)];
    util::require(rec.direction == netlist::PortDirection::kOutput,
                  "delta_plan: required-edit port ", rec.name,
                  " is not an output port");
    back[static_cast<size_t>(rec.vertex)] = 1;
  }
  for (const int v : seeds.vertices) {
    util::require(v >= 0 && static_cast<size_t>(v) < n,
                  "delta_plan: seed vertex ", v, " out of range (", n,
                  " vertices)");
    dirty[static_cast<size_t>(v)] = 1;
  }
  DeltaPlan plan = finish_plan(dirty, back);
  // finish_plan lists endpoints whose ARRIVAL can move; required-time
  // edits move slack without touching arrivals, so add their ports.
  if (!seeds.required_ports.empty()) {
    for (const int32_t p : seeds.required_ports) {
      for (size_t e = 0; e < endpoint_ports_.size(); ++e) {
        if (endpoint_ports_[e] == p) {
          plan.endpoints.push_back(static_cast<int32_t>(e));
          break;
        }
      }
    }
    std::sort(plan.endpoints.begin(), plan.endpoints.end());
    plan.endpoints.erase(
        std::unique(plan.endpoints.begin(), plan.endpoints.end()),
        plan.endpoints.end());
  }
  return plan;
}

void StaEngine::reset_vertex(TimingState& state, int v) const {
  auto& vt = state[static_cast<size_t>(v)];
  vt = VertexTiming{};
  const auto ic = input_constraints_.find(v);
  if (ic != input_constraints_.end()) {
    for (size_t rf = 0; rf < 2; ++rf) {
      if (!ic->second[rf].set) continue;
      auto& t = vt.timing[rf];
      t.arrival = ic->second[rf].arrival;
      t.slew = ic->second[rf].slew;
      t.valid = true;
    }
  }
  const auto rq = required_.find(v);
  if (rq != required_.end()) {
    vt.timing[0].required = rq->second;
    vt.timing[1].required = rq->second;
  }
}

void StaEngine::reset_required(TimingState& state, int v) const {
  auto& vt = state[static_cast<size_t>(v)];
  vt.timing[0].required = std::numeric_limits<double>::infinity();
  vt.timing[1].required = std::numeric_limits<double>::infinity();
  const auto rq = required_.find(v);
  if (rq != required_.end()) {
    vt.timing[0].required = rq->second;
    vt.timing[1].required = rq->second;
  }
}

void StaEngine::evaluate_delta(TimingState& state,
                               const TimingState& baseline,
                               const DeltaPlan& plan,
                               const EvalContext& ctx) const {
  util::require(ctx.method != nullptr, "evaluate_delta: null noise method");
  util::require(baseline.size() == vertex_names_.size(),
                "evaluate_delta: baseline size ", baseline.size(),
                " does not match this engine (", vertex_names_.size(),
                " vertices)");
  util::require(plan.num_vertices == vertex_names_.size(),
                "evaluate_delta: plan was computed for ", plan.num_vertices,
                " vertices, engine has ", vertex_names_.size());
  state = baseline;
  // Every dirty vertex is reset to its initial constraints BEFORE any
  // is folded: relax() is a max, so folding on top of the stale
  // baseline value would be wrong whenever the scenario speeds an
  // arrival up (and would corrupt critical_pred links either way).
  for (const int v : plan.forward) reset_vertex(state, v);
  for (const int v : plan.forward) forward_vertex(v, state, ctx);
  for (const int v : plan.backward) reset_required(state, v);
  for (const int v : plan.backward) backward_vertex(v, state);
}

void StaEngine::evaluate_points_delta(
    std::span<TimingState> states, std::span<const EvalContext> contexts,
    std::span<const TimingState* const> baselines,
    std::span<const DeltaPlan* const> plans, util::ThreadPool* pool,
    std::span<wave::Workspace> worker_workspaces) const {
  util::require(states.size() == contexts.size() &&
                    states.size() == baselines.size() &&
                    states.size() == plans.size(),
                "evaluate_points_delta: ", states.size(), " states vs ",
                contexts.size(), " contexts vs ", baselines.size(),
                " baselines vs ", plans.size(), " plans");
  const size_t n_points = states.size();
  if (n_points == 0) return;
  const size_t pool_workers =
      pool != nullptr && pool->size() > 1 ? pool->size() : 1;
  util::require(worker_workspaces.empty() ||
                    worker_workspaces.size() >= pool_workers,
                "evaluate_points_delta: need one workspace per pool worker (",
                worker_workspaces.size(), " < ", pool_workers, ")");
  auto body = [&](size_t worker, size_t p) {
    EvalContext task_ctx = contexts[p];
    if (!worker_workspaces.empty()) {
      task_ctx.workspace = &worker_workspaces[worker];
    }
    evaluate_delta(states[p], *baselines[p], *plans[p], task_ctx);
  };
  if (pool != nullptr && pool->size() > 1 && n_points > 1) {
    // One dependency-free task per point, tiled over the trivial
    // single-task DAG: the shared ready stack of run_graph dynamically
    // load-balances the unbalanced dirty worklists.
    static const uint32_t kZeroIndegree[1] = {0};
    static const std::vector<uint32_t> kNoSuccessors[1] = {{}};
    pool->run_graph({kZeroIndegree, kNoSuccessors, n_points}, body);
  } else {
    for (size_t p = 0; p < n_points; ++p) body(0, p);
  }
}

void StaEngine::run() {
  prepare();
  const auto edge_noise = compile_edge_annotations();
  EvalContext ctx;
  ctx.edge_noise = edge_noise.data();
  ctx.corner = corner_ ? &*corner_ : nullptr;
  ctx.corner_key = corner_ ? corner_->key() : 0;
  ctx.method = noise_method_.get();
  ctx.cache = nullptr;
  const int want = threads_ <= 0
                       ? static_cast<int>(util::ThreadPool::hardware_threads())
                       : threads_;
  if (want > 1 && (pool_ == nullptr ||
                   pool_->size() != static_cast<size_t>(want))) {
    pool_ = std::make_unique<util::ThreadPool>(want);
  }
  // One scratch arena per pool worker, retained across runs: the first
  // run warms the slabs, every later run propagates allocation-free.
  const size_t want_ws = want > 1 ? static_cast<size_t>(want) : 1;
  if (workspaces_.size() < want_ws) {
    workspaces_.resize(want_ws);
  }
  // Even the single run() point schedules (point × partition) coarse
  // tasks: independent cones propagate concurrently with no level
  // barriers (bitwise identical to the per-level path).
  evaluate_points({&state_, 1}, {&ctx, 1},
                  want > 1 ? pool_.get() : nullptr, workspaces_);
  analyzed_ = true;
}

const PinTiming& StaEngine::timing_in(const TimingState& state, PinId pin,
                                      RiseFall rf) const {
  util::require(state.size() == vertex_names_.size(),
                "timing_in: state size does not match this engine "
                "(init_state/evaluate it first)");
  return state[static_cast<size_t>(check(pin))]
      .timing[static_cast<size_t>(rf)];
}

const PinTiming& StaEngine::timing_in(const TimingState& state,
                                      const std::string& pin,
                                      RiseFall rf) const {
  return timing_in(state, this->pin(pin), rf);
}

double StaEngine::worst_slack_in(const TimingState& state) const {
  util::require(state.size() == vertex_names_.size(),
                "worst_slack_in: state size does not match this engine "
                "(init_state/evaluate it first)");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& port : ports_) {
    if (port.direction != netlist::PortDirection::kOutput) continue;
    const auto& v = state[static_cast<size_t>(port.vertex)];
    for (int rf = 0; rf < 2; ++rf) {
      if (v.timing[rf].valid && std::isfinite(v.timing[rf].required)) {
        worst = std::min(worst, v.timing[rf].slack());
      }
    }
  }
  return worst;
}

const PinTiming& StaEngine::timing(PinId pin, RiseFall rf) const {
  util::require(analyzed_, "run() the analysis first");
  return timing_in(state_, pin, rf);
}

const PinTiming& StaEngine::timing(const std::string& pin,
                                   RiseFall rf) const {
  util::require(analyzed_, "run() the analysis first");
  return timing_in(state_, pin, rf);
}

double StaEngine::worst_slack() const {
  util::require(analyzed_, "run() the analysis first");
  return worst_slack_in(state_);
}

StaEngine::WorstEndpoint StaEngine::worst_endpoint_in(
    const TimingState& state) const {
  util::require(state.size() == vertex_names_.size(),
                "worst_endpoint_in: state size does not match this engine "
                "(init_state/evaluate it first)");
  // Endpoint: worst slack when constrained, else latest arrival.
  WorstEndpoint best;
  double best_metric = std::numeric_limits<double>::infinity();
  bool use_slack = false;
  for (size_t e = 0; e < endpoint_ports_.size(); ++e) {
    const auto& port = ports_[static_cast<size_t>(endpoint_ports_[e])];
    const auto& v = state[static_cast<size_t>(port.vertex)];
    for (int rf = 0; rf < 2; ++rf) {
      const auto& t = v.timing[rf];
      if (!t.valid) continue;
      const bool constrained = std::isfinite(t.required);
      const double metric = constrained ? t.slack() : -t.arrival;
      if (constrained && !use_slack) {
        use_slack = true;
        best_metric = std::numeric_limits<double>::infinity();
      }
      if (constrained == use_slack && metric < best_metric) {
        best_metric = metric;
        best.endpoint = static_cast<int32_t>(e);
        best.rf = static_cast<RiseFall>(rf);
        best.constrained = constrained;
        best.slack = t.slack();
        best.arrival = t.arrival;
      }
    }
  }
  return best;
}

std::vector<PathStep> StaEngine::worst_path_in(
    const TimingState& state) const {
  const WorstEndpoint we = worst_endpoint_in(state);
  std::vector<PathStep> path;
  int v = we.endpoint >= 0
              ? ports_[static_cast<size_t>(endpoint_ports_[we.endpoint])]
                    .vertex
              : -1;
  int rf = static_cast<int>(we.rf);
  while (v >= 0) {
    const auto& vert = state[static_cast<size_t>(v)];
    path.push_back({vertex_names_[static_cast<size_t>(v)],
                    static_cast<RiseFall>(rf), vert.timing[rf].arrival});
    const int pred = vert.critical_pred[rf];
    rf = static_cast<int>(vert.critical_pred_rf[rf]);
    v = pred;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<PathStep> StaEngine::worst_path() const {
  util::require(analyzed_, "run() the analysis first");
  return worst_path_in(state_);
}

std::string StaEngine::report() const {
  util::require(analyzed_, "run() the analysis first");
  std::ostringstream os;
  os << "STA report for " << netlist_->name << " ("
     << netlist_->instances().size() << " instances, "
     << vertex_names_.size() << " pins)\n";
  for (const auto& port : ports_) {
    if (port.direction != netlist::PortDirection::kOutput) continue;
    const auto& v = state_[static_cast<size_t>(port.vertex)];
    for (int rf = 0; rf < 2; ++rf) {
      const auto& t = v.timing[rf];
      if (!t.valid) continue;
      os << "  " << port.name << " (" << to_string(static_cast<RiseFall>(rf))
         << "): arrival " << util::format_ps(t.arrival) << " ps, slew "
         << util::format_ps(t.slew) << " ps";
      if (std::isfinite(t.required)) {
        os << ", slack " << util::format_ps(t.slack()) << " ps";
      }
      os << '\n';
    }
  }
  os << "critical path:";
  for (const auto& step : worst_path()) {
    os << ' ' << step.pin << '(' << to_string(step.rf) << ')';
  }
  os << '\n';
  return os.str();
}

}  // namespace waveletic::sta
