#include "spice/parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "spice/devices.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace waveletic::spice {
namespace {

using util::Error;
using util::iequals;
using util::parse_eng;
using util::require;
using util::to_lower;

/// One logical (continuation-merged) deck line.
struct Line {
  int number = 0;  // 1-based source line of the first physical line
  std::vector<std::string> tokens;
};

/// A stored subcircuit definition.
struct Subckt {
  std::vector<std::string> ports;
  std::vector<Line> body;
};

/// Splits deck text into logical lines with lowered tokens.
std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  int lineno = 0;
  std::string pending;
  int pending_no = 0;

  const auto flush = [&]() {
    if (pending.empty()) return;
    // Parentheses and commas are cosmetic in the supported subset.
    std::string clean;
    clean.reserve(pending.size());
    for (char c : pending) {
      clean += (c == '(' || c == ')' || c == ',') ? ' ' : c;
    }
    Line line;
    line.number = pending_no;
    for (const auto tok : util::split(clean, " \t")) {
      line.tokens.push_back(to_lower(tok));
    }
    if (!line.tokens.empty()) lines.push_back(std::move(line));
    pending.clear();
  };

  std::string_view rest = text;
  while (!rest.empty()) {
    ++lineno;
    const size_t nl = rest.find('\n');
    std::string_view raw =
        (nl == std::string_view::npos) ? rest : rest.substr(0, nl);
    rest = (nl == std::string_view::npos) ? std::string_view{}
                                          : rest.substr(nl + 1);

    // Strip trailing comment introduced by ';' or '$'.
    const size_t semi = raw.find_first_of(";$");
    if (semi != std::string_view::npos) raw = raw.substr(0, semi);
    const std::string_view trimmed = util::trim(raw);
    if (trimmed.empty() || trimmed.front() == '*') continue;

    if (trimmed.front() == '+') {
      require(!pending.empty(), "line ", lineno,
              ": continuation without a previous card");
      pending += ' ';
      pending += trimmed.substr(1);
      continue;
    }
    flush();
    pending = std::string(trimmed);
    pending_no = lineno;
  }
  flush();
  return lines;
}

/// Parses "key=value" tokens into a map; returns leftover plain tokens.
std::vector<std::string> extract_params(
    const std::vector<std::string>& tokens, size_t start,
    std::unordered_map<std::string, double>& params) {
  std::vector<std::string> plain;
  for (size_t i = start; i < tokens.size(); ++i) {
    const auto& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      plain.push_back(tok);
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    require(!key.empty() && !value.empty(), "malformed parameter '", tok,
            "'");
    params[key] = parse_eng(value);
  }
  return plain;
}

/// Builds a stimulus from source-card tokens starting at `i`.
std::unique_ptr<Stimulus> parse_stimulus(const Line& line, size_t i) {
  const auto& t = line.tokens;
  require(i < t.size(), "line ", line.number, ": source needs a value");
  if (iequals(t[i], "dc")) {
    require(i + 1 < t.size(), "line ", line.number, ": dc needs a value");
    return std::make_unique<DcStimulus>(parse_eng(t[i + 1]));
  }
  if (iequals(t[i], "pwl")) {
    std::vector<PwlStimulus::Point> pts;
    for (size_t k = i + 1; k + 1 < t.size(); k += 2) {
      pts.push_back({parse_eng(t[k]), parse_eng(t[k + 1])});
    }
    require(!pts.empty() && (t.size() - i - 1) % 2 == 0, "line ", line.number,
            ": pwl needs an even number of values");
    return std::make_unique<PwlStimulus>(std::move(pts));
  }
  if (iequals(t[i], "pulse")) {
    require(t.size() - i - 1 >= 7, "line ", line.number,
            ": pulse needs 7 values");
    return std::make_unique<PulseStimulus>(
        parse_eng(t[i + 1]), parse_eng(t[i + 2]), parse_eng(t[i + 3]),
        parse_eng(t[i + 4]), parse_eng(t[i + 5]), parse_eng(t[i + 6]),
        parse_eng(t[i + 7]));
  }
  // Bare numeric value = DC.
  return std::make_unique<DcStimulus>(parse_eng(t[i]));
}

class DeckBuilder {
 public:
  explicit DeckBuilder(ParsedDeck& deck) : deck_(deck) {}

  void run(const std::vector<Line>& lines) {
    // Pass 1: collect .model and .subckt definitions.
    for (size_t i = 0; i < lines.size(); ++i) {
      const auto& t = lines[i].tokens;
      if (t[0] == ".model") {
        parse_model(lines[i]);
      } else if (t[0] == ".subckt") {
        i = parse_subckt(lines, i);
      }
    }
    // Pass 2: instantiate the top level.
    bool in_subckt = false;
    for (const auto& line : lines) {
      const auto& t = line.tokens;
      if (t[0] == ".subckt") {
        in_subckt = true;
        continue;
      }
      if (t[0] == ".ends") {
        in_subckt = false;
        continue;
      }
      if (in_subckt) continue;
      dispatch(line, /*prefix=*/"", /*port_map=*/{}, /*depth=*/0);
    }
  }

 private:
  using PortMap = std::unordered_map<std::string, std::string>;

  void parse_model(const Line& line) {
    const auto& t = line.tokens;
    require(t.size() >= 3, "line ", line.number, ": .model needs name+type");
    MosfetModel model;
    model.name = t[1];
    if (t[2] == "pmos") {
      model.pmos = true;
    } else {
      require(t[2] == "nmos", "line ", line.number,
              ": unsupported model type '", t[2], "'");
    }
    std::unordered_map<std::string, double> params;
    extract_params(t, 3, params);
    const auto take = [&](const char* key, double& slot) {
      const auto it = params.find(key);
      if (it != params.end()) {
        slot = it->second;
        params.erase(it);
      }
    };
    take("vth", model.vth);
    take("alpha", model.alpha);
    take("kc", model.kc);
    take("kv", model.kv);
    take("lambda", model.lambda);
    take("cgs", model.cgs_per_w);
    take("cgd", model.cgd_per_w);
    take("cdb", model.cdb_per_w);
    require(params.empty(), "line ", line.number,
            ": unknown .model parameter");
    models_[model.name] = model;
  }

  size_t parse_subckt(const std::vector<Line>& lines, size_t start) {
    const auto& header = lines[start].tokens;
    require(header.size() >= 2, "line ", lines[start].number,
            ": .subckt needs a name");
    Subckt sub;
    sub.ports.assign(header.begin() + 2, header.end());
    size_t i = start + 1;
    for (; i < lines.size(); ++i) {
      if (lines[i].tokens[0] == ".ends") break;
      require(lines[i].tokens[0] != ".subckt", "line ", lines[i].number,
              ": nested .subckt definitions are not supported");
      sub.body.push_back(lines[i]);
    }
    require(i < lines.size(), ".subckt '", header[1], "' without .ends");
    subckts_[header[1]] = std::move(sub);
    return i;
  }

  /// Maps a node token through the instance port map / prefix.
  std::string map_node(const std::string& token, const std::string& prefix,
                       const PortMap& ports) const {
    if (token == "0" || token == "gnd") return "0";
    const auto it = ports.find(token);
    if (it != ports.end()) return it->second;
    return prefix.empty() ? token : prefix + token;
  }

  void dispatch(const Line& line, const std::string& prefix,
                const PortMap& ports, int depth) {
    require(depth < 16, "line ", line.number,
            ": subcircuit nesting deeper than 16 (recursion?)");
    const auto& t = line.tokens;
    const char kind = t[0][0];
    const std::string name = prefix + t[0];
    auto& ckt = deck_.circuit;

    const auto node = [&](size_t i) {
      require(i < t.size(), "line ", line.number, ": missing node");
      return ckt.node(map_node(t[i], prefix, ports));
    };

    switch (kind) {
      case 'r': {
        require(t.size() >= 4, "line ", line.number, ": R card too short");
        ckt.emplace<Resistor>(name, node(1), node(2), parse_eng(t[3]));
        return;
      }
      case 'c': {
        require(t.size() >= 4, "line ", line.number, ": C card too short");
        ckt.emplace<Capacitor>(name, node(1), node(2), parse_eng(t[3]));
        return;
      }
      case 'v': {
        require(t.size() >= 4, "line ", line.number, ": V card too short");
        ckt.emplace<VoltageSource>(name, node(1), node(2),
                                   parse_stimulus(line, 3));
        return;
      }
      case 'i': {
        require(t.size() >= 4, "line ", line.number, ": I card too short");
        ckt.emplace<CurrentSource>(name, node(1), node(2),
                                   parse_stimulus(line, 3));
        return;
      }
      case 'm': {
        require(t.size() >= 6, "line ", line.number, ": M card too short");
        const auto model_it = models_.find(t[5]);
        require(model_it != models_.end(), "line ", line.number,
                ": unknown model '", t[5], "'");
        std::unordered_map<std::string, double> params;
        extract_params(t, 6, params);
        const auto w_it = params.find("w");
        require(w_it != params.end(), "line ", line.number,
                ": M card needs w=<width>");
        ckt.emplace<Mosfet>(name, node(1), node(2), node(3), node(4),
                            model_it->second, w_it->second);
        return;
      }
      case 'x': {
        require(t.size() >= 3, "line ", line.number, ": X card too short");
        const std::string& sub_name = t.back();
        const auto sub_it = subckts_.find(sub_name);
        require(sub_it != subckts_.end(), "line ", line.number,
                ": unknown subcircuit '", sub_name, "'");
        const Subckt& sub = sub_it->second;
        const size_t n_conn = t.size() - 2;
        require(n_conn == sub.ports.size(), "line ", line.number,
                ": subcircuit '", sub_name, "' has ", sub.ports.size(),
                " ports, got ", n_conn);
        PortMap inner_ports;
        for (size_t i = 0; i < n_conn; ++i) {
          inner_ports[sub.ports[i]] = map_node(t[1 + i], prefix, ports);
        }
        const std::string inner_prefix = prefix + t[0] + ".";
        for (const auto& body_line : sub.body) {
          dispatch(body_line, inner_prefix, inner_ports, depth + 1);
        }
        return;
      }
      case '.': {
        if (t[0] == ".tran") {
          require(t.size() >= 3, "line ", line.number,
                  ": .tran needs dt and tstop");
          TransientSpec spec;
          spec.dt = parse_eng(t[1]);
          spec.t_stop = parse_eng(t[2]);
          for (size_t i = 3; i < t.size(); ++i) {
            if (t[i] == "method=be") {
              spec.method = Integration::kBackwardEuler;
            } else if (t[i] == "method=trap") {
              spec.method = Integration::kTrapezoidal;
            } else {
              throw Error::fmt("line ", line.number,
                               ": unknown .tran option '", t[i], "'");
            }
          }
          deck_.tran = spec;
          return;
        }
        if (t[0] == ".model" || t[0] == ".end" || t[0] == ".probe") {
          return;  // handled in pass 1 / ignored
        }
        throw Error::fmt("line ", line.number, ": unsupported card '", t[0],
                         "'");
      }
      default:
        throw Error::fmt("line ", line.number, ": unsupported element '",
                         t[0], "'");
    }
  }

  ParsedDeck& deck_;
  std::unordered_map<std::string, MosfetModel> models_;
  std::unordered_map<std::string, Subckt> subckts_;
};

}  // namespace

ParsedDeck parse_deck(std::string_view text) {
  ParsedDeck deck;
  const auto lines = tokenize(text);
  DeckBuilder builder(deck);
  builder.run(lines);
  return deck;
}

ParsedDeck parse_deck_file(const std::string& path) {
  std::ifstream file(path);
  require(file.good(), "cannot open SPICE deck: ", path);
  std::stringstream ss;
  ss << file.rdbuf();
  return parse_deck(ss.str());
}

}  // namespace waveletic::spice
