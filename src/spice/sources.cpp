#include "spice/sources.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::spice {

PwlStimulus::PwlStimulus(std::vector<Point> points)
    : points_(std::move(points)) {
  util::require(!points_.empty(), "PWL stimulus needs at least one point");
  for (size_t i = 1; i < points_.size(); ++i) {
    util::require(points_[i].t > points_[i - 1].t,
                  "PWL stimulus times must be strictly increasing");
  }
}

double PwlStimulus::at(double t) const noexcept {
  if (t <= points_.front().t) return points_.front().v;
  if (t >= points_.back().t) return points_.back().v;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const Point& p) { return value < p.t; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double frac = (t - lo.t) / (hi.t - lo.t);
  return lo.v + frac * (hi.v - lo.v);
}

PulseStimulus::PulseStimulus(double v0, double v1, double delay, double rise,
                             double fall, double width, double period)
    : v0_(v0),
      v1_(v1),
      delay_(delay),
      rise_(rise),
      fall_(fall),
      width_(width),
      period_(period) {
  util::require(rise > 0 && fall > 0 && width >= 0,
                "PULSE: rise/fall must be positive");
  util::require(period == 0.0 || period >= rise + width + fall,
                "PULSE: period shorter than one pulse");
}

double PulseStimulus::at(double t) const noexcept {
  if (t < delay_) return v0_;
  double local = t - delay_;
  if (period_ > 0.0) local = std::fmod(local, period_);
  if (local < rise_) return v0_ + (v1_ - v0_) * (local / rise_);
  local -= rise_;
  if (local < width_) return v1_;
  local -= width_;
  if (local < fall_) return v1_ + (v0_ - v1_) * (local / fall_);
  return v0_;
}

RampStimulus::RampStimulus(double t_mid, double t_transition, double v_lo,
                           double v_hi, bool rising)
    : t_mid_(t_mid),
      t_transition_(t_transition),
      v_lo_(v_lo),
      v_hi_(v_hi),
      rising_(rising) {
  util::require(t_transition > 0, "ramp stimulus: non-positive transition");
  util::require(v_hi > v_lo, "ramp stimulus: v_hi must exceed v_lo");
}

double RampStimulus::at(double t) const noexcept {
  const double start = t_mid_ - 0.5 * t_transition_;
  const double frac = std::clamp((t - start) / t_transition_, 0.0, 1.0);
  const double progress = rising_ ? frac : 1.0 - frac;
  return v_lo_ + progress * (v_hi_ - v_lo_);
}

}  // namespace waveletic::spice
