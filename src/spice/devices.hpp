#pragma once

/// \file devices.hpp
/// Concrete circuit elements: resistor, capacitor, independent sources,
/// and the α-power-law MOSFET used by the virtual cell library.

#include <memory>
#include <string>

#include "spice/circuit.hpp"
#include "spice/sources.hpp"

namespace waveletic::spice {

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);
  void stamp(Stamper& st, const StampContext& ctx) const override;
  [[nodiscard]] double resistance() const noexcept { return ohms_; }

 private:
  NodeId a_, b_;
  double ohms_;
};

/// Linear two-terminal capacitor (also used for coupling capacitors).
/// Companion models:
///   backward Euler:  i = (C/h)(v − v_prev)
///   trapezoidal:     i = (2C/h)(v − v_prev) − i_prev
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);
  void stamp(Stamper& st, const StampContext& ctx) const override;
  void commit(std::span<const double> x, double dt,
              Integration method) override;
  void reset_state() override;
  [[nodiscard]] double capacitance() const noexcept { return farads_; }

 private:
  [[nodiscard]] double voltage_of(std::span<const double> x) const noexcept;

  NodeId a_, b_;
  double farads_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent current source, current flows from `a` to `b` through
/// the source (SPICE convention: positive current into node b).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId a, NodeId b,
                std::unique_ptr<Stimulus> stim);
  void stamp(Stamper& st, const StampContext& ctx) const override;

 private:
  NodeId a_, b_;
  std::unique_ptr<Stimulus> stim_;
};

/// Independent voltage source between pos and neg, adds one branch
/// current unknown.
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId pos, NodeId neg,
                std::unique_ptr<Stimulus> stim);
  [[nodiscard]] int branch_count() const noexcept override { return 1; }
  void stamp(Stamper& st, const StampContext& ctx) const override;

  /// Replaces the stimulus (used by the characterization sweeps so one
  /// circuit can be re-simulated with many input ramps).
  void set_stimulus(std::unique_ptr<Stimulus> stim);

  [[nodiscard]] double value_at(double t) const noexcept {
    return stim_->at(t);
  }

 private:
  NodeId pos_, neg_;
  std::unique_ptr<Stimulus> stim_;
};

/// α-power-law MOSFET model card (Sakurai–Newton).  All current
/// parameters are per metre of channel width; gate/junction capacitances
/// are handled separately by cell builders (explicit Capacitor devices)
/// to keep the conduction model purely resistive.
struct MosfetModel {
  std::string name = "nmos";
  bool pmos = false;
  double vth = 0.35;        ///< threshold voltage [V] (positive for both)
  double alpha = 1.3;       ///< velocity-saturation index
  double kc = 6.0e2;        ///< saturation current factor [A/m / V^alpha]
  double kv = 0.9;          ///< saturation voltage factor [V^(1-alpha/2)]
  double lambda = 0.05;     ///< channel-length modulation [1/V]
  double cgs_per_w = 0.7e-9;  ///< gate-source capacitance [F/m]
  double cgd_per_w = 0.25e-9; ///< gate-drain (Miller) capacitance [F/m]
  double cdb_per_w = 0.5e-9;  ///< drain junction capacitance [F/m]

  /// Saturation drain current at gate overdrive `vov` for width w [m].
  [[nodiscard]] double idsat(double vov, double w) const noexcept;
  /// Saturation drain-source voltage at overdrive `vov`.
  [[nodiscard]] double vdsat(double vov) const noexcept;
};

/// Four-terminal MOSFET (drain, gate, source, bulk).  The bulk terminal
/// only anchors junction capacitance added externally; conduction uses
/// d/g/s.  PMOS is handled by sign reflection of all terminal voltages.
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         MosfetModel model, double width);

  void stamp(Stamper& st, const StampContext& ctx) const override;
  [[nodiscard]] bool nonlinear() const noexcept override { return true; }

  [[nodiscard]] const MosfetModel& model() const noexcept { return model_; }
  [[nodiscard]] double width() const noexcept { return width_; }

  /// Large-signal drain current (terminal voltages in circuit frame);
  /// exposed for model unit tests.
  struct Operating {
    double id = 0.0;   ///< drain->source current in circuit frame
    double gm = 0.0;   ///< ∂id/∂vgs
    double gds = 0.0;  ///< ∂id/∂vds
  };
  [[nodiscard]] Operating evaluate(double vd, double vg,
                                   double vs) const noexcept;

 private:
  NodeId d_, g_, s_, b_;
  MosfetModel model_;
  double width_;
};

}  // namespace waveletic::spice
