#include "spice/devices.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::spice {
namespace {

/// Voltage of node `n` inside the unknown vector (ground = 0 V).
double node_v(std::span<const double> x, NodeId n) noexcept {
  return n == kGround ? 0.0 : x[static_cast<size_t>(n - 1)];
}

}  // namespace

// ---------------------------------------------------------------------------
// Resistor
// ---------------------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  util::require(ohms > 0.0, "resistor ", Device::name(),
                ": non-positive resistance ", ohms);
}

void Resistor::stamp(Stamper& st, const StampContext&) const {
  st.conductance(a_, b_, 1.0 / ohms_);
}

// ---------------------------------------------------------------------------
// Capacitor
// ---------------------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads) {
  util::require(farads > 0.0, "capacitor ", Device::name(),
                ": non-positive capacitance ", farads);
}

double Capacitor::voltage_of(std::span<const double> x) const noexcept {
  return node_v(x, a_) - node_v(x, b_);
}

void Capacitor::stamp(Stamper& st, const StampContext& ctx) const {
  if (ctx.dc || ctx.dt <= 0.0) return;  // open circuit at DC
  double g = 0.0;
  double ieq = 0.0;  // constant part of companion current a -> b
  if (ctx.method == Integration::kBackwardEuler) {
    g = farads_ / ctx.dt;
    ieq = -g * v_prev_;
  } else {
    g = 2.0 * farads_ / ctx.dt;
    ieq = -g * v_prev_ - i_prev_;
  }
  st.conductance(a_, b_, g);
  st.current(a_, b_, ieq);
}

void Capacitor::commit(std::span<const double> x, double dt,
                       Integration method) {
  const double v_now = voltage_of(x);
  if (dt > 0.0) {
    if (method == Integration::kBackwardEuler) {
      i_prev_ = farads_ / dt * (v_now - v_prev_);
    } else {
      i_prev_ = 2.0 * farads_ / dt * (v_now - v_prev_) - i_prev_;
    }
  } else {
    i_prev_ = 0.0;  // DC: steady state, no displacement current
  }
  v_prev_ = v_now;
}

void Capacitor::reset_state() {
  v_prev_ = 0.0;
  i_prev_ = 0.0;
}

// ---------------------------------------------------------------------------
// CurrentSource
// ---------------------------------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b,
                             std::unique_ptr<Stimulus> stim)
    : Device(std::move(name)), a_(a), b_(b), stim_(std::move(stim)) {
  util::require(stim_ != nullptr, "current source without stimulus");
}

void CurrentSource::stamp(Stamper& st, const StampContext& ctx) const {
  st.current(a_, b_, ctx.source_scale * stim_->at(ctx.time));
}

// ---------------------------------------------------------------------------
// VoltageSource
// ---------------------------------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId pos, NodeId neg,
                             std::unique_ptr<Stimulus> stim)
    : Device(std::move(name)), pos_(pos), neg_(neg), stim_(std::move(stim)) {
  util::require(stim_ != nullptr, "voltage source without stimulus");
}

void VoltageSource::set_stimulus(std::unique_ptr<Stimulus> stim) {
  util::require(stim != nullptr, "voltage source without stimulus");
  stim_ = std::move(stim);
}

void VoltageSource::stamp(Stamper& st, const StampContext& ctx) const {
  st.branch_voltage(branch_index(), pos_, neg_,
                    ctx.source_scale * stim_->at(ctx.time));
}

// ---------------------------------------------------------------------------
// Mosfet (α-power law, Sakurai–Newton)
// ---------------------------------------------------------------------------

double MosfetModel::idsat(double vov, double w) const noexcept {
  if (vov <= 0.0) return 0.0;
  return kc * w * std::pow(vov, alpha);
}

double MosfetModel::vdsat(double vov) const noexcept {
  if (vov <= 0.0) return 0.0;
  return kv * std::pow(vov, 0.5 * alpha);
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               MosfetModel model, double width)
    : Device(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      model_(std::move(model)),
      width_(width) {
  util::require(width > 0.0, "mosfet ", Device::name(),
                ": non-positive width");
  (void)b_;  // bulk anchors external junction caps only
}

namespace {

/// α-power-law current and partials for an NMOS-frame device with
/// vds ≥ 0.  Returns {id, ∂id/∂vgs, ∂id/∂vds}.
struct NmosEval {
  double id, gm, gds;
};

NmosEval eval_nmos_frame(const MosfetModel& m, double w, double vgs,
                         double vds) noexcept {
  const double vov = vgs - m.vth;
  if (vov <= 0.0) {
    // Sub-threshold: treat as off (leakage folded into engine gmin).
    return {0.0, 0.0, 0.0};
  }
  const double idsat = m.idsat(vov, w);
  const double vdsat = m.vdsat(vov);
  const double clm = 1.0 + m.lambda * vds;
  const double didsat_dvgs = m.alpha * idsat / vov;
  if (vds >= vdsat) {
    return {idsat * clm, didsat_dvgs * clm, idsat * m.lambda};
  }
  const double u = vds / vdsat;
  const double f = (2.0 - u) * u;
  const double df_dvds = (2.0 - 2.0 * u) / vdsat;
  const double dvdsat_dvgs = 0.5 * m.alpha * vdsat / vov;
  // f depends on vgs through vdsat: ∂f/∂vgs = f'(u)·(−u/vdsat)·∂vdsat/∂vgs
  const double df_dvgs = (2.0 - 2.0 * u) * (-u / vdsat) * dvdsat_dvgs;
  NmosEval e;
  e.id = idsat * f * clm;
  e.gm = (didsat_dvgs * f + idsat * df_dvgs) * clm;
  e.gds = idsat * (df_dvds * clm + f * m.lambda);
  return e;
}

}  // namespace

Mosfet::Operating Mosfet::evaluate(double vd, double vg,
                                   double vs) const noexcept {
  // PMOS: reflect every terminal voltage, evaluate as NMOS, and reflect
  // the current back.  Partials are invariant under the reflection
  // (current and controlling voltage deltas flip sign together).
  const double sign = model_.pmos ? -1.0 : 1.0;
  const double vds = sign * (vd - vs);
  const double vgs = sign * (vg - vs);

  Operating op;
  if (vds >= 0.0) {
    const NmosEval e = eval_nmos_frame(model_, width_, vgs, vds);
    op.id = e.id;
    op.gm = e.gm;
    op.gds = e.gds;
  } else {
    // Symmetric conduction with drain/source roles exchanged:
    //   vgs' = vgs − vds,  vds' = −vds,  id = −id'(vgs', vds')
    // Chain rule back to the (vgs, vds) frame:
    //   ∂id/∂vgs = −gm'
    //   ∂id/∂vds = gm' + gds'
    const NmosEval e = eval_nmos_frame(model_, width_, vgs - vds, -vds);
    op.id = -e.id;
    op.gm = -e.gm;
    op.gds = e.gm + e.gds;
  }
  op.id *= sign;
  return op;
}

void Mosfet::stamp(Stamper& st, const StampContext& ctx) const {
  const double vd = node_v(ctx.x, d_);
  const double vg = node_v(ctx.x, g_);
  const double vs = node_v(ctx.x, s_);
  const Operating op = evaluate(vd, vg, vs);

  // Linearized drain current about the iterate:
  //   id(v) ≈ id* + gm·(vgs − vgs*) + gds·(vds − vds*)
  // For PMOS the partials returned by evaluate() are in the reflected
  // frame, but both the current and the controlling deltas reflect, so
  // stamping in the circuit frame uses them unchanged.
  const double vgs = vg - vs;
  const double vds = vd - vs;
  const double i0 = op.id - op.gm * vgs - op.gds * vds;

  st.vccs(d_, s_, g_, s_, op.gm);
  st.conductance(d_, s_, op.gds);
  // conductance() stamps a symmetric gds term; the VCCS handles gm.  The
  // remaining constant flows d -> s.
  st.current(d_, s_, i0);
}

}  // namespace waveletic::spice
