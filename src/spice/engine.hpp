#pragma once

/// \file engine.hpp
/// DC operating point and fixed-step transient analysis on a Circuit.
///
/// The engine is the golden reference of the whole reproduction: it
/// plays the role Hspice plays in the paper.  Accuracy knobs (step size,
/// integration method) are explicit so the ablation benches can study
/// their effect.

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "wave/waveform.hpp"

namespace waveletic::spice {

struct NewtonOptions {
  int max_iterations = 60;
  /// Convergence: max |Δv| below vtol AND max |Δi_branch| below itol.
  double vtol = 1e-6;
  double itol = 1e-9;
  /// Per-iteration clamp on node-voltage updates [V]; damps overshoot.
  double max_update = 0.4;
  /// Conductance to ground added at every node.
  double gmin = 1e-12;
};

struct TransientSpec {
  double t_stop = 1e-9;
  double dt = 1e-12;
  Integration method = Integration::kTrapezoidal;
  NewtonOptions newton;
  /// Record every node when empty, otherwise only the named ones.
  std::vector<std::string> probes;
};

/// Result of a transient run: per-probe sampled waveforms.
class TransientResult {
 public:
  TransientResult(std::vector<std::string> names,
                  std::vector<double> time,
                  std::vector<std::vector<double>> samples);

  [[nodiscard]] const wave::Waveform& waveform(const std::string& node) const;
  [[nodiscard]] bool has(const std::string& node) const noexcept;
  [[nodiscard]] std::vector<std::string> probe_names() const;
  [[nodiscard]] size_t steps() const noexcept { return time_.size(); }

 private:
  std::vector<double> time_;
  std::unordered_map<std::string, wave::Waveform> waves_;
};

/// Solves the DC operating point; returns the full unknown vector
/// (layout: node voltages 1..n-1, then branch currents).  Uses plain
/// Newton first and falls back to source stepping.  Throws util::Error
/// on non-convergence.
[[nodiscard]] la::Vector dc_operating_point(Circuit& circuit,
                                            const NewtonOptions& opt = {});

/// Fixed-step transient from the DC operating point at t = 0.
[[nodiscard]] TransientResult transient(Circuit& circuit,
                                        const TransientSpec& spec);

}  // namespace waveletic::spice
