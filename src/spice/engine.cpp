#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>

#include "la/lu.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace waveletic::spice {
namespace {

/// Unknown-vector layout manager: assigns branch indices and remembers
/// the split between node and branch unknowns.
struct SystemLayout {
  size_t n_nodes = 0;     // including ground
  size_t n_node_vars = 0; // n_nodes - 1
  size_t n_branches = 0;
  size_t unknowns = 0;

  explicit SystemLayout(Circuit& circuit) {
    n_nodes = circuit.node_count();
    n_node_vars = n_nodes - 1;
    int next = static_cast<int>(n_node_vars);
    for (const auto& dev : circuit.devices()) {
      const int count = dev->branch_count();
      if (count > 0) {
        dev->assign_branches(next);
        next += count;
      }
    }
    n_branches = static_cast<size_t>(next) - n_node_vars;
    unknowns = n_node_vars + n_branches;
  }
};

/// Assembles A·x = z for the given iterate and context.
void assemble(Circuit& circuit, const StampContext& ctx, la::Matrix& a,
              la::Vector& z, size_t n_nodes) {
  a.set_zero();
  std::fill(z.begin(), z.end(), 0.0);
  Stamper st(a, z, n_nodes);
  // gmin to ground on every node keeps floating subnets solvable.
  for (NodeId n = 1; n < static_cast<NodeId>(n_nodes); ++n) {
    st.conductance(n, kGround, ctx.gmin);
  }
  for (const auto& dev : circuit.devices()) {
    dev->stamp(st, ctx);
  }
}

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
};

/// Newton-Raphson on the linearized companion system.  `x` holds the
/// initial guess and receives the solution.
NewtonOutcome newton_solve(Circuit& circuit, StampContext ctx,
                           const NewtonOptions& opt, const SystemLayout& lay,
                           la::Vector& x) {
  la::Matrix a(lay.unknowns, lay.unknowns);
  la::Vector z(lay.unknowns, 0.0);
  la::Vector x_new(lay.unknowns, 0.0);
  la::LuFactorization lu;

  NewtonOutcome out;
  for (int it = 0; it < opt.max_iterations; ++it) {
    out.iterations = it + 1;
    ctx.x = x;
    assemble(circuit, ctx, a, z, lay.n_nodes);
    lu.factor(a);
    lu.solve(z, x_new);

    // Damped update with per-node clamp.
    double max_dv = 0.0;
    double max_di = 0.0;
    for (size_t i = 0; i < lay.unknowns; ++i) {
      double delta = x_new[i] - x[i];
      if (i < lay.n_node_vars) {
        delta = std::clamp(delta, -opt.max_update, opt.max_update);
        max_dv = std::max(max_dv, std::fabs(delta));
      } else {
        max_di = std::max(max_di, std::fabs(delta));
      }
      x[i] += delta;
    }
    if (max_dv < opt.vtol && max_di < opt.itol) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace

TransientResult::TransientResult(std::vector<std::string> names,
                                 std::vector<double> time,
                                 std::vector<std::vector<double>> samples) {
  util::require(names.size() == samples.size(),
                "TransientResult: probe count mismatch");
  for (size_t i = 0; i < names.size(); ++i) {
    waves_.emplace(names[i], wave::Waveform(time, std::move(samples[i])));
  }
  time_ = std::move(time);
}

const wave::Waveform& TransientResult::waveform(
    const std::string& node) const {
  const auto it = waves_.find(node);
  util::require(it != waves_.end(), "no probe recorded for node '", node,
                "'");
  return it->second;
}

bool TransientResult::has(const std::string& node) const noexcept {
  return waves_.count(node) > 0;
}

std::vector<std::string> TransientResult::probe_names() const {
  std::vector<std::string> out;
  out.reserve(waves_.size());
  for (const auto& [name, wave] : waves_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

la::Vector dc_operating_point(Circuit& circuit, const NewtonOptions& opt) {
  const SystemLayout lay(circuit);
  la::Vector x(lay.unknowns, 0.0);

  StampContext ctx;
  ctx.dc = true;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.gmin = opt.gmin;

  // Plain Newton from the zero vector first.
  {
    la::Vector trial = x;
    ctx.source_scale = 1.0;
    const auto outcome = newton_solve(circuit, ctx, opt, lay, trial);
    if (outcome.converged) return trial;
    util::log_debug("dcop: plain newton failed, falling back to stepping");
  }

  // Source stepping homotopy: ramp all independent sources.
  la::Vector trial(lay.unknowns, 0.0);
  for (int step = 1; step <= 10; ++step) {
    ctx.source_scale = 0.1 * step;
    const auto outcome = newton_solve(circuit, ctx, opt, lay, trial);
    util::require(outcome.converged,
                  "DC operating point: source stepping diverged at scale ",
                  ctx.source_scale);
  }
  return trial;
}

TransientResult transient(Circuit& circuit, const TransientSpec& spec) {
  util::require(spec.dt > 0.0, "transient: non-positive dt");
  util::require(spec.t_stop > spec.dt, "transient: t_stop <= dt");

  const SystemLayout lay(circuit);

  // Fresh device state, then DC operating point as the initial condition.
  for (const auto& dev : circuit.devices()) dev->reset_state();
  la::Vector x = dc_operating_point(circuit, spec.newton);
  for (const auto& dev : circuit.devices()) {
    dev->commit(x, 0.0, spec.method);
  }

  // Probe set: indices of the recorded nodes.
  std::vector<std::string> names;
  std::vector<NodeId> ids;
  if (spec.probes.empty()) {
    for (NodeId n = 1; n < static_cast<NodeId>(lay.n_nodes); ++n) {
      names.push_back(circuit.node_name(n));
      ids.push_back(n);
    }
  } else {
    for (const auto& p : spec.probes) {
      ids.push_back(circuit.find_node(p));
      names.push_back(p);
    }
  }

  const size_t steps = static_cast<size_t>(std::ceil(spec.t_stop / spec.dt));
  std::vector<double> time;
  time.reserve(steps + 1);
  std::vector<std::vector<double>> samples(ids.size());
  for (auto& s : samples) s.reserve(steps + 1);

  const auto record = [&](double t) {
    time.push_back(t);
    for (size_t i = 0; i < ids.size(); ++i) {
      const NodeId n = ids[i];
      samples[i].push_back(n == kGround ? 0.0
                                        : x[static_cast<size_t>(n - 1)]);
    }
  };
  record(0.0);

  StampContext ctx;
  ctx.dc = false;
  ctx.method = spec.method;
  ctx.gmin = spec.newton.gmin;
  ctx.source_scale = 1.0;

  la::Vector x_prev = x;
  for (size_t k = 1; k <= steps; ++k) {
    const double t = std::min(spec.t_stop, static_cast<double>(k) * spec.dt);
    ctx.time = t;
    ctx.dt = t - time.back();
    if (ctx.dt <= 0.0) break;
    ctx.x_prev = x_prev;

    const auto outcome = newton_solve(circuit, ctx, spec.newton, lay, x);
    util::require(outcome.converged, "transient: Newton diverged at t = ", t,
                  " (", outcome.iterations, " iterations)");

    for (const auto& dev : circuit.devices()) {
      dev->commit(x, ctx.dt, spec.method);
    }
    x_prev = x;
    record(t);
  }

  return TransientResult(std::move(names), std::move(time),
                         std::move(samples));
}

}  // namespace waveletic::spice
