#pragma once

/// \file sources.hpp
/// Time-domain stimulus descriptions for independent sources: DC, PWL,
/// PULSE (SPICE semantics), saturated ramps, and arbitrary sampled
/// waveforms (used to replay noisy victim waveforms into a receiver).

#include <memory>
#include <vector>

#include "wave/ramp.hpp"
#include "wave/waveform.hpp"

namespace waveletic::spice {

/// Value-semantics stimulus: v(t) for any t ≥ 0.
class Stimulus {
 public:
  virtual ~Stimulus() = default;
  [[nodiscard]] virtual double at(double t) const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<Stimulus> clone() const = 0;
};

class DcStimulus final : public Stimulus {
 public:
  explicit DcStimulus(double value) noexcept : value_(value) {}
  [[nodiscard]] double at(double) const noexcept override { return value_; }
  [[nodiscard]] std::unique_ptr<Stimulus> clone() const override {
    return std::make_unique<DcStimulus>(value_);
  }

 private:
  double value_;
};

/// Piecewise-linear stimulus; flat extension outside the point list.
class PwlStimulus final : public Stimulus {
 public:
  struct Point {
    double t;
    double v;
  };
  /// Points must be strictly increasing in time (≥ 1 point).
  explicit PwlStimulus(std::vector<Point> points);
  [[nodiscard]] double at(double t) const noexcept override;
  [[nodiscard]] std::unique_ptr<Stimulus> clone() const override {
    return std::make_unique<PwlStimulus>(*this);
  }

 private:
  std::vector<Point> points_;
};

/// SPICE PULSE(v0 v1 td tr tf pw per); period 0 = single pulse.
class PulseStimulus final : public Stimulus {
 public:
  PulseStimulus(double v0, double v1, double delay, double rise, double fall,
                double width, double period);
  [[nodiscard]] double at(double t) const noexcept override;
  [[nodiscard]] std::unique_ptr<Stimulus> clone() const override {
    return std::make_unique<PulseStimulus>(*this);
  }

 private:
  double v0_, v1_, delay_, rise_, fall_, width_, period_;
};

/// Saturated linear ramp from v_lo to v_hi (or the reverse when
/// `rising` is false) crossing midpoint at t_mid with 0-100% transition
/// time t_transition.
class RampStimulus final : public Stimulus {
 public:
  RampStimulus(double t_mid, double t_transition, double v_lo, double v_hi,
               bool rising);
  [[nodiscard]] double at(double t) const noexcept override;
  [[nodiscard]] std::unique_ptr<Stimulus> clone() const override {
    return std::make_unique<RampStimulus>(*this);
  }

 private:
  double t_mid_, t_transition_, v_lo_, v_hi_;
  bool rising_;
};

/// Replays an arbitrary sampled waveform (clamped outside its grid).
class WaveformStimulus final : public Stimulus {
 public:
  explicit WaveformStimulus(wave::Waveform w) : wave_(std::move(w)) {}
  [[nodiscard]] double at(double t) const noexcept override {
    return wave_.at(t);
  }
  [[nodiscard]] std::unique_ptr<Stimulus> clone() const override {
    return std::make_unique<WaveformStimulus>(*this);
  }

 private:
  wave::Waveform wave_;
};

}  // namespace waveletic::spice
