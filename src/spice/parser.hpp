#pragma once

/// \file parser.hpp
/// SPICE-deck parser covering the subset the reproduction needs:
///
///   R/C/V/I/M element cards, X subcircuit instances,
///   .model (nmos/pmos, α-power parameters), .subckt/.ends,
///   .tran, .probe, .end, '*'/';' comments, '+' continuations.
///
/// Numbers accept engineering suffixes ("4.8f", "150ps", "2meg").
/// Subcircuits are flattened at parse time with hierarchical node names
/// ("x1.mid").  Parsing is case-insensitive.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/engine.hpp"

namespace waveletic::spice {

struct ParsedDeck {
  Circuit circuit;
  /// Present when the deck contains a .tran card.
  std::optional<TransientSpec> tran;
};

/// Parses a deck from text.  Throws util::Error with a line number on
/// malformed input.
[[nodiscard]] ParsedDeck parse_deck(std::string_view text);

/// Parses a deck from a file.
[[nodiscard]] ParsedDeck parse_deck_file(const std::string& path);

}  // namespace waveletic::spice
