#pragma once

/// \file circuit.hpp
/// Circuit data model and the MNA stamping interface.
///
/// The circuit is a flat bag of named nodes and devices.  Analysis code
/// (engine.hpp) builds a Modified Nodal Analysis system
///   A·x = z,  x = [node voltages (ground elided) | branch currents]
/// by asking every device to stamp its linearized companion model for
/// the current Newton iterate.  This is the standard SPICE formulation;
/// devices never see the matrix layout, only the Stamper.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"

namespace waveletic::spice {

/// Node handle; 0 is always ground ("0" / "gnd").
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class Integration { kBackwardEuler, kTrapezoidal };

[[nodiscard]] const char* to_string(Integration m) noexcept;

/// Everything a device needs to stamp itself for one Newton iteration.
struct StampContext {
  /// Current Newton iterate (full unknown vector, see engine layout).
  std::span<const double> x;
  /// Converged solution of the previous timepoint (empty during DC).
  std::span<const double> x_prev;
  double time = 0.0;  ///< t_{n+1} being solved for
  double dt = 0.0;    ///< step size; 0 during DC analysis
  Integration method = Integration::kTrapezoidal;
  bool dc = false;          ///< DC operating point: capacitors stamp open
  double source_scale = 1.0;  ///< source-stepping homotopy factor (DC)
  double gmin = 1e-12;      ///< convergence aid conductance
};

class Stamper;

/// Base class for circuit elements.  Devices own their per-timepoint
/// state (e.g. capacitor charge current) and update it in commit().
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of extra unknowns (branch currents) this device needs.
  [[nodiscard]] virtual int branch_count() const noexcept { return 0; }

  /// Called once before analysis with the index of this device's first
  /// branch unknown inside x.
  virtual void assign_branches(int first_index) noexcept {
    branch_index_ = first_index;
  }

  /// Adds the device's linearized contribution for the iterate ctx.x.
  virtual void stamp(Stamper& st, const StampContext& ctx) const = 0;

  /// Accepts the converged solution of a timepoint: update companion
  /// state (capacitor voltage/current history).  `x` is the converged
  /// unknown vector, `dt` the step that produced it (0 after DC).
  virtual void commit(std::span<const double> x, double dt,
                      Integration method) {
    (void)x;
    (void)dt;
    (void)method;
  }

  /// Resets history state before a new analysis.
  virtual void reset_state() {}

  [[nodiscard]] virtual bool nonlinear() const noexcept { return false; }

 protected:
  [[nodiscard]] int branch_index() const noexcept { return branch_index_; }

 private:
  std::string name_;
  int branch_index_ = -1;
};

/// Named-node registry plus device container.
class Circuit {
 public:
  Circuit();

  /// Returns the node id for `name`, creating it on first use.
  /// "0" and "gnd" (any case) alias ground.
  NodeId node(std::string_view name);

  /// Lookup without creation; throws util::Error when missing.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  [[nodiscard]] bool has_node(std::string_view name) const noexcept;

  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Total node count including ground.
  [[nodiscard]] size_t node_count() const noexcept { return names_.size(); }

  /// Adds a device constructed in place and returns a reference to it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  [[nodiscard]] std::span<const std::unique_ptr<Device>> devices()
      const noexcept {
    return devices_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<Device>> devices() noexcept {
    return devices_;
  }

  /// Device lookup by name; nullptr when absent.
  [[nodiscard]] Device* find_device(std::string_view name) noexcept;

  /// Human-readable netlist summary (node + device counts, one line per
  /// device), used by the Figure 1 bench to print the testbench.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// MNA assembly helper.  Rows/columns are addressed by NodeId (ground
/// contributions are discarded) or by absolute unknown index for branch
/// variables.
class Stamper {
 public:
  /// `n_nodes` includes ground; unknown vector length is
  /// (n_nodes - 1) + n_branches.
  Stamper(la::Matrix& a, la::Vector& z, size_t n_nodes);

  /// Conductance g between nodes a and b.
  void conductance(NodeId a, NodeId b, double g) noexcept;

  /// Constant current i0 flowing from node a to node b.
  void current(NodeId a, NodeId b, double i0) noexcept;

  /// Transconductance: current i = g·(v_c+ − v_c−) flowing out of node
  /// `out_pos` into `out_neg` (VCCS linearization term).
  void vccs(NodeId out_pos, NodeId out_neg, NodeId ctrl_pos, NodeId ctrl_neg,
            double g) noexcept;

  /// Branch-variable stamps for voltage-defined elements.  `branch` is
  /// the absolute unknown index from Device::assign_branches.
  void branch_voltage(int branch, NodeId pos, NodeId neg,
                      double voltage) noexcept;

  [[nodiscard]] size_t unknowns() const noexcept { return a_->rows(); }

 private:
  /// Maps NodeId to matrix row/col; -1 for ground.
  [[nodiscard]] int idx(NodeId n) const noexcept { return n - 1; }

  void add(int r, int c, double v) noexcept;
  void add_rhs(int r, double v) noexcept;

  la::Matrix* a_;
  la::Vector* z_;
};

}  // namespace waveletic::spice
