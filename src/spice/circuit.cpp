#include "spice/circuit.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace waveletic::spice {

const char* to_string(Integration m) noexcept {
  switch (m) {
    case Integration::kBackwardEuler:
      return "backward-euler";
    case Integration::kTrapezoidal:
      return "trapezoidal";
  }
  return "?";
}

namespace {
bool is_ground_name(std::string_view name) noexcept {
  return name == "0" || util::iequals(name, "gnd");
}
}  // namespace

Circuit::Circuit() {
  names_.push_back("0");
  index_.emplace("0", kGround);
}

NodeId Circuit::node(std::string_view name) {
  util::require(!name.empty(), "empty node name");
  if (is_ground_name(name)) return kGround;
  const std::string key = util::to_lower(name);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(key, id);
  return id;
}

NodeId Circuit::find_node(std::string_view name) const {
  if (is_ground_name(name)) return kGround;
  const auto it = index_.find(util::to_lower(name));
  util::require(it != index_.end(), "unknown node: ", name);
  return it->second;
}

bool Circuit::has_node(std::string_view name) const noexcept {
  if (is_ground_name(name)) return true;
  return index_.count(util::to_lower(name)) > 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  util::require(id >= 0 && static_cast<size_t>(id) < names_.size(),
                "node id out of range: ", id);
  return names_[static_cast<size_t>(id)];
}

Device* Circuit::find_device(std::string_view name) noexcept {
  for (const auto& dev : devices_) {
    if (util::iequals(dev->name(), name)) return dev.get();
  }
  return nullptr;
}

std::string Circuit::describe() const {
  std::ostringstream os;
  os << "circuit: " << node_count() << " nodes, " << devices_.size()
     << " devices\n";
  for (const auto& dev : devices_) {
    os << "  " << dev->name() << '\n';
  }
  return os.str();
}

Stamper::Stamper(la::Matrix& a, la::Vector& z, size_t n_nodes)
    : a_(&a), z_(&z) {
  util::require(a.rows() == a.cols() && a.rows() == z.size(),
                "Stamper: inconsistent system dimensions");
  util::require(a.rows() >= n_nodes - 1, "Stamper: matrix smaller than nodes");
}

void Stamper::add(int r, int c, double v) noexcept {
  if (r < 0 || c < 0) return;
  (*a_)(static_cast<size_t>(r), static_cast<size_t>(c)) += v;
}

void Stamper::add_rhs(int r, double v) noexcept {
  if (r < 0) return;
  (*z_)[static_cast<size_t>(r)] += v;
}

void Stamper::conductance(NodeId a, NodeId b, double g) noexcept {
  const int ia = idx(a);
  const int ib = idx(b);
  add(ia, ia, g);
  add(ib, ib, g);
  add(ia, ib, -g);
  add(ib, ia, -g);
}

void Stamper::current(NodeId a, NodeId b, double i0) noexcept {
  // KCL rows are "sum of currents leaving = 0"; a constant current i0
  // flowing a -> b moves to the RHS with opposite sign at a.
  add_rhs(idx(a), -i0);
  add_rhs(idx(b), i0);
}

void Stamper::vccs(NodeId out_pos, NodeId out_neg, NodeId ctrl_pos,
                   NodeId ctrl_neg, double g) noexcept {
  const int op = idx(out_pos);
  const int on = idx(out_neg);
  const int cp = idx(ctrl_pos);
  const int cn = idx(ctrl_neg);
  add(op, cp, g);
  add(op, cn, -g);
  add(on, cp, -g);
  add(on, cn, g);
}

void Stamper::branch_voltage(int branch, NodeId pos, NodeId neg,
                             double voltage) noexcept {
  const int ip = idx(pos);
  const int in = idx(neg);
  // Branch current flows pos -> neg through the source.
  add(ip, branch, 1.0);
  add(in, branch, -1.0);
  add(branch, ip, 1.0);
  add(branch, in, -1.0);
  add_rhs(branch, voltage);
}

}  // namespace waveletic::spice
