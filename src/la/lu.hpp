#pragma once

/// \file lu.hpp
/// LU factorization with partial pivoting.  This is the linear kernel of
/// the MNA transient engine: the Jacobian is refactored every Newton
/// iteration, so the factorization supports in-place reuse of its
/// storage across solves.

#include <span>

#include "la/matrix.hpp"

namespace waveletic::la {

/// PA = LU factorization with row partial pivoting.
class LuFactorization {
 public:
  LuFactorization() = default;

  /// Factors `a` (consumed by copy).  Throws util::Error when the matrix
  /// is not square or is numerically singular (pivot below `pivot_tol`).
  void factor(const Matrix& a, double pivot_tol = 1e-14);

  /// Solves A x = b into `x` (b untouched).  factor() must have run.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Convenience allocating overload.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  [[nodiscard]] bool factored() const noexcept { return n_ > 0; }
  [[nodiscard]] size_t size() const noexcept { return n_; }

  /// |det A|, available after factor().  Used by tests.
  [[nodiscard]] double abs_determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<size_t> perm_;
  size_t n_ = 0;
};

/// One-shot convenience: solve A x = b.
[[nodiscard]] Vector lu_solve(const Matrix& a, std::span<const double> b);

/// Allocation-free one-shot solve for small systems (n ≤ 64): factors
/// `a` IN PLACE (destroying it) with the same partial-pivot arithmetic
/// as LuFactorization and writes the solution into `x`.  Bitwise
/// identical to lu_solve on the same inputs.  Throws util::Error on
/// singular/oversized systems.
void lu_solve_in_place(MatrixRef a, std::span<const double> b,
                       std::span<double> x, double pivot_tol = 1e-14);

}  // namespace waveletic::la
