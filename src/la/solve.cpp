#include "la/solve.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "util/error.hpp"

namespace waveletic::la {

Vector least_squares(const Matrix& a, std::span<const double> b) {
  Vector w;  // empty = uniform
  return weighted_least_squares(a, b, w);
}

Vector weighted_least_squares(const Matrix& a, std::span<const double> b,
                              std::span<const double> w) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  util::require(b.size() == n, "least_squares: rhs rows ", b.size(), " != ",
                n);
  util::require(w.empty() || w.size() == n,
                "least_squares: weight rows ", w.size(), " != ", n);
  util::require(n >= m, "least_squares: underdetermined (", n, " rows, ", m,
                " cols)");

  Matrix normal(m, m);
  Vector rhs(m, 0.0);
  for (size_t k = 0; k < n; ++k) {
    const double wk = w.empty() ? 1.0 : w[k];
    if (wk == 0.0) continue;
    const auto row = a.row(k);
    for (size_t i = 0; i < m; ++i) {
      const double wi = wk * row[i];
      rhs[i] += wi * b[k];
      for (size_t j = i; j < m; ++j) normal(i, j) += wi * row[j];
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < i; ++j) normal(i, j) = normal(j, i);
  }
  return lu_solve(normal, rhs);
}

LineFit fit_line(std::span<const double> t, std::span<const double> v,
                 std::span<const double> w) {
  const size_t n = t.size();
  util::require(v.size() == n, "fit_line: length mismatch");
  util::require(w.empty() || w.size() == n, "fit_line: weight length");

  // Closed-form 2x2 weighted normal equations, centered for stability
  // (t values are absolute circuit times ~1e-9; centering avoids
  // catastrophic cancellation in sum(t²)).  The weighted/unweighted
  // split hoists the per-sample weight check out of the accumulation
  // loops; 1.0·x is bitwise x, so both variants fold identically to the
  // historical single loop.
  double sw = 0.0, st = 0.0, sv = 0.0;
  if (w.empty()) {
    for (size_t k = 0; k < n; ++k) {
      sw += 1.0;
      st += t[k];
      sv += v[k];
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      sw += w[k];
      st += w[k] * t[k];
      sv += w[k] * v[k];
    }
  }
  util::require(sw > 0.0, "fit_line: all weights are zero");
  const double tbar = st / sw;
  const double vbar = sv / sw;
  double stt = 0.0, stv = 0.0;
  if (w.empty()) {
    for (size_t k = 0; k < n; ++k) {
      const double dt = t[k] - tbar;
      stt += dt * dt;
      stv += dt * (v[k] - vbar);
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      const double dt = t[k] - tbar;
      stt += w[k] * dt * dt;
      stv += w[k] * dt * (v[k] - vbar);
    }
  }
  util::require(stt > 0.0, "fit_line: degenerate abscissae (all t equal)");
  LineFit fit;
  fit.slope = stv / stt;
  fit.intercept = vbar - fit.slope * tbar;
  return fit;
}

}  // namespace waveletic::la
