#pragma once

/// \file matrix.hpp
/// Dense row-major matrix and vector types sized for circuit simulation
/// (MNA systems of a few dozen unknowns) and small least-squares fits.
/// No external dependencies; everything the simulator and the fitting
/// code need lives here.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace waveletic::la {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a nested initializer list; rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] size_t rows() const noexcept { return rows_; }
  [[nodiscard]] size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(size_t r, size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(size_t r, size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Zeroes all entries without reallocating (hot path: MNA restamping).
  void set_zero() noexcept;

  /// Resizes and zeroes.
  void resize(size_t rows, size_t cols);

  [[nodiscard]] Matrix transposed() const;

  /// y = A * x.  Throws util::Error on dimension mismatch.
  [[nodiscard]] Vector mul(std::span<const double> x) const;

  /// C = A * B.
  [[nodiscard]] Matrix mul(const Matrix& other) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  [[nodiscard]] static Matrix identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning row-major matrix view over caller storage (e.g. a
/// util::Workspace span) — the allocation-free twin of Matrix for the
/// hot fitting paths.
struct MatrixRef {
  double* data = nullptr;
  size_t rows = 0;
  size_t cols = 0;

  MatrixRef() = default;
  MatrixRef(double* d, size_t r, size_t c) noexcept
      : data(d), rows(r), cols(c) {}
  /*implicit*/ MatrixRef(Matrix& m) noexcept
      : data(&m(0, 0)), rows(m.rows()), cols(m.cols()) {}

  [[nodiscard]] double& operator()(size_t r, size_t c) const noexcept {
    return data[r * cols + c];
  }
  [[nodiscard]] std::span<double> row(size_t r) const noexcept {
    return {data + r * cols, cols};
  }
  [[nodiscard]] std::span<double> flat() const noexcept {
    return {data, rows * cols};
  }
};

/// Euclidean norm of a vector.
[[nodiscard]] double norm2(std::span<const double> v) noexcept;

/// Infinity norm.
[[nodiscard]] double norm_inf(std::span<const double> v) noexcept;

/// Dot product.
[[nodiscard]] double dot(std::span<const double> a,
                         std::span<const double> b) noexcept;

}  // namespace waveletic::la
