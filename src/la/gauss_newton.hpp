#pragma once

/// \file gauss_newton.hpp
/// Small dense Gauss–Newton driver for nonlinear least squares
/// min Σ r_k(x)².  SGDP's second-order objective (Eq. 3 of the paper) is
/// nonlinear in the ramp coefficients, so its fit runs through here.

#include <functional>
#include <span>
#include <type_traits>

#include "la/matrix.hpp"
#include "util/workspace.hpp"

namespace waveletic::la {

struct GaussNewtonOptions {
  int max_iterations = 8;
  /// Stop when the step's infinity norm, scaled by parameter magnitude,
  /// falls below this.
  double step_tolerance = 1e-10;
  /// Levenberg damping added to the normal matrix diagonal (relative to
  /// its trace); keeps near-degenerate fits stable.
  double damping = 1e-9;
};

struct GaussNewtonResult {
  Vector x;
  double objective = 0.0;  ///< Σ r² at the final iterate.
  int iterations = 0;
  bool converged = false;
};

/// Residual callback: fills r (size n) and optionally the Jacobian
/// J (n×m, row k = ∂r_k/∂x) for the current x.
using ResidualFn =
    std::function<void(std::span<const double> x, Vector& r, Matrix& jac)>;

/// Non-owning residual callback for the allocation-free driver below —
/// a function_ref: no heap, no copy, the referenced callable must
/// outlive the call.  Fills r (size n) and the row-major Jacobian
/// (n×m) for the current x.
class ResidualRef {
 public:
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>,
                                                     ResidualRef>>>
  /*implicit*/ ResidualRef(F& f) noexcept
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* c, std::span<const double> x, std::span<double> r,
               MatrixRef jac) { (*static_cast<F*>(c))(x, r, jac); }) {}

  void operator()(std::span<const double> x, std::span<double> r,
                  MatrixRef jac) const {
    fn_(ctx_, x, r, jac);
  }

 private:
  using Raw = void (*)(void*, std::span<const double>, std::span<double>,
                       MatrixRef);
  void* ctx_;
  Raw fn_;
};

/// Scalar outcome of the allocation-free driver (the solution lands in
/// the caller's x buffer).
struct GaussNewtonStats {
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes Σ r_k(x)² starting from x0.  Accepts a step only when it
/// does not increase the objective (backtracking halving, 6 attempts).
[[nodiscard]] GaussNewtonResult gauss_newton(const ResidualFn& fn, Vector x0,
                                             size_t residuals,
                                             const GaussNewtonOptions& opt = {});

/// Allocation-free variant: `x` holds x0 on entry and the solution on
/// exit; every scratch buffer (residuals, Jacobians, normal equations,
/// line-search trials) comes from `ws`, and the inner linear solve runs
/// in place — a warmed workspace makes the whole refinement heap-free.
/// Same algorithm and same per-element arithmetic as gauss_newton()
/// (which is implemented on top of this), so results are bitwise
/// identical.
GaussNewtonStats gauss_newton_into(ResidualRef fn, std::span<double> x,
                                   size_t residuals,
                                   const GaussNewtonOptions& opt,
                                   util::Workspace& ws);

}  // namespace waveletic::la
