#pragma once

/// \file gauss_newton.hpp
/// Small dense Gauss–Newton driver for nonlinear least squares
/// min Σ r_k(x)².  SGDP's second-order objective (Eq. 3 of the paper) is
/// nonlinear in the ramp coefficients, so its fit runs through here.

#include <functional>
#include <span>

#include "la/matrix.hpp"

namespace waveletic::la {

struct GaussNewtonOptions {
  int max_iterations = 8;
  /// Stop when the step's infinity norm, scaled by parameter magnitude,
  /// falls below this.
  double step_tolerance = 1e-10;
  /// Levenberg damping added to the normal matrix diagonal (relative to
  /// its trace); keeps near-degenerate fits stable.
  double damping = 1e-9;
};

struct GaussNewtonResult {
  Vector x;
  double objective = 0.0;  ///< Σ r² at the final iterate.
  int iterations = 0;
  bool converged = false;
};

/// Residual callback: fills r (size n) and optionally the Jacobian
/// J (n×m, row k = ∂r_k/∂x) for the current x.
using ResidualFn =
    std::function<void(std::span<const double> x, Vector& r, Matrix& jac)>;

/// Minimizes Σ r_k(x)² starting from x0.  Accepts a step only when it
/// does not increase the objective (backtracking halving, 6 attempts).
[[nodiscard]] GaussNewtonResult gauss_newton(const ResidualFn& fn, Vector x0,
                                             size_t residuals,
                                             const GaussNewtonOptions& opt = {});

}  // namespace waveletic::la
