#include "la/gauss_newton.hpp"

#include <algorithm>
#include <cmath>

#include "la/lu.hpp"
#include "util/error.hpp"

namespace waveletic::la {
namespace {

double objective_of(std::span<const double> r) noexcept {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return acc;
}

}  // namespace

GaussNewtonStats gauss_newton_into(ResidualRef fn, std::span<double> x,
                                   size_t residuals,
                                   const GaussNewtonOptions& opt,
                                   util::Workspace& ws) {
  const size_t m = x.size();
  util::require(m > 0, "gauss_newton: empty parameter vector");
  util::require(residuals >= m, "gauss_newton: fewer residuals (", residuals,
                ") than parameters (", m, ")");

  const auto scope = ws.scope();
  const auto r = ws.alloc(residuals);
  const auto jac_buf = ws.alloc(residuals * m);
  const MatrixRef jac(jac_buf.data(), residuals, m);
  std::fill(r.begin(), r.end(), 0.0);
  std::fill(jac_buf.begin(), jac_buf.end(), 0.0);

  GaussNewtonStats stats;
  fn(x, r, jac);
  stats.objective = objective_of(r);

  const auto normal_buf = ws.alloc(m * m);
  const MatrixRef normal(normal_buf.data(), m, m);
  const auto rhs = ws.alloc(m);
  const auto dx = ws.alloc(m);
  const auto trial = ws.alloc(m);
  const auto r_trial = ws.alloc(residuals);
  const auto jac_trial_buf = ws.alloc(residuals * m);
  const MatrixRef jac_trial(jac_trial_buf.data(), residuals, m);
  std::fill(trial.begin(), trial.end(), 0.0);
  std::fill(r_trial.begin(), r_trial.end(), 0.0);
  std::fill(jac_trial_buf.begin(), jac_trial_buf.end(), 0.0);

  for (int it = 0; it < opt.max_iterations; ++it) {
    stats.iterations = it + 1;

    // Normal equations Jᵀ J dx = -Jᵀ r with Levenberg damping.
    std::fill(normal_buf.begin(), normal_buf.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (size_t k = 0; k < residuals; ++k) {
      const auto row = jac.row(k);
      for (size_t i = 0; i < m; ++i) {
        rhs[i] -= row[i] * r[k];
        for (size_t j = i; j < m; ++j) normal(i, j) += row[i] * row[j];
      }
    }
    double trace = 0.0;
    for (size_t i = 0; i < m; ++i) trace += normal(i, i);
    const double damp = opt.damping * (trace > 0 ? trace / double(m) : 1.0);
    for (size_t i = 0; i < m; ++i) {
      normal(i, i) += damp;
      for (size_t j = 0; j < i; ++j) normal(i, j) = normal(j, i);
    }

    try {
      lu_solve_in_place(normal, rhs, dx);
    } catch (const util::Error&) {
      break;  // singular normal matrix: keep best iterate found so far
    }

    // Backtracking line search: accept first step that does not worsen
    // the objective.
    double step = 1.0;
    bool accepted = false;
    for (int attempt = 0; attempt < 6; ++attempt, step *= 0.5) {
      for (size_t i = 0; i < m; ++i) trial[i] = x[i] + step * dx[i];
      fn(trial, r_trial, jac_trial);
      const double obj = objective_of(r_trial);
      if (obj <= stats.objective) {
        std::copy(trial.begin(), trial.end(), x.begin());
        stats.objective = obj;
        std::copy(r_trial.begin(), r_trial.end(), r.begin());
        std::copy(jac_trial_buf.begin(), jac_trial_buf.end(),
                  jac_buf.begin());
        accepted = true;
        break;
      }
    }
    if (!accepted) break;

    double scale = norm_inf(x);
    if (scale == 0.0) scale = 1.0;
    if (norm_inf(dx) * step <= opt.step_tolerance * scale) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

GaussNewtonResult gauss_newton(const ResidualFn& fn, Vector x0,
                               size_t residuals,
                               const GaussNewtonOptions& opt) {
  const size_t m = x0.size();
  util::require(m > 0, "gauss_newton: empty parameter vector");
  util::require(residuals >= m, "gauss_newton: fewer residuals (", residuals,
                ") than parameters (", m, ")");

  // Adapter over the span core: the legacy callback writes Vector /
  // Matrix buffers which are copied into the core's spans — identical
  // values, one shared algorithm.
  Vector r_vec(residuals, 0.0);
  Matrix jac_mat(residuals, m);
  auto adapter = [&](std::span<const double> x, std::span<double> r,
                     MatrixRef jac) {
    fn(x, r_vec, jac_mat);
    std::copy(r_vec.begin(), r_vec.end(), r.begin());
    const auto flat = jac_mat.row(0);
    std::copy(flat.data(), flat.data() + residuals * m, jac.data);
  };

  GaussNewtonResult result;
  result.x = std::move(x0);
  util::Workspace ws;
  const auto stats =
      gauss_newton_into(ResidualRef(adapter), result.x, residuals, opt, ws);
  result.objective = stats.objective;
  result.iterations = stats.iterations;
  result.converged = stats.converged;
  return result;
}

}  // namespace waveletic::la
