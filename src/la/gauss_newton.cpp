#include "la/gauss_newton.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "util/error.hpp"

namespace waveletic::la {
namespace {

double objective_of(const Vector& r) noexcept {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return acc;
}

}  // namespace

GaussNewtonResult gauss_newton(const ResidualFn& fn, Vector x0,
                               size_t residuals,
                               const GaussNewtonOptions& opt) {
  const size_t m = x0.size();
  util::require(m > 0, "gauss_newton: empty parameter vector");
  util::require(residuals >= m, "gauss_newton: fewer residuals (", residuals,
                ") than parameters (", m, ")");

  GaussNewtonResult result;
  result.x = std::move(x0);

  Vector r(residuals, 0.0);
  Matrix jac(residuals, m);
  fn(result.x, r, jac);
  result.objective = objective_of(r);

  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;

    // Normal equations Jᵀ J dx = -Jᵀ r with Levenberg damping.
    Matrix normal(m, m);
    Vector rhs(m, 0.0);
    for (size_t k = 0; k < residuals; ++k) {
      const auto row = jac.row(k);
      for (size_t i = 0; i < m; ++i) {
        rhs[i] -= row[i] * r[k];
        for (size_t j = i; j < m; ++j) normal(i, j) += row[i] * row[j];
      }
    }
    double trace = 0.0;
    for (size_t i = 0; i < m; ++i) trace += normal(i, i);
    const double damp = opt.damping * (trace > 0 ? trace / double(m) : 1.0);
    for (size_t i = 0; i < m; ++i) {
      normal(i, i) += damp;
      for (size_t j = 0; j < i; ++j) normal(i, j) = normal(j, i);
    }

    Vector dx;
    try {
      dx = lu_solve(normal, rhs);
    } catch (const util::Error&) {
      break;  // singular normal matrix: keep best iterate found so far
    }

    // Backtracking line search: accept first step that does not worsen
    // the objective.
    double step = 1.0;
    bool accepted = false;
    Vector trial(m, 0.0);
    Vector r_trial(residuals, 0.0);
    Matrix jac_trial(residuals, m);
    for (int attempt = 0; attempt < 6; ++attempt, step *= 0.5) {
      for (size_t i = 0; i < m; ++i) trial[i] = result.x[i] + step * dx[i];
      fn(trial, r_trial, jac_trial);
      const double obj = objective_of(r_trial);
      if (obj <= result.objective) {
        result.x = trial;
        result.objective = obj;
        r = r_trial;
        jac = jac_trial;
        accepted = true;
        break;
      }
    }
    if (!accepted) break;

    double scale = norm_inf(result.x);
    if (scale == 0.0) scale = 1.0;
    if (norm_inf(dx) * step <= opt.step_tolerance * scale) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace waveletic::la
