#include "la/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace waveletic::la {
namespace {

/// The one partial-pivot factorization, shared by the owning and the
/// in-place paths so both are bitwise identical by construction.
/// `lu` is destroyed (L below / U on+above the diagonal).
void factor_in_place(MatrixRef lu, size_t* perm, double pivot_tol) {
  const size_t n = lu.rows;
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    size_t pivot_row = k;
    double pivot_mag = std::fabs(lu(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    util::require(pivot_mag > pivot_tol,
                  "LU: singular matrix (pivot ", pivot_mag, " at column ", k,
                  ")");
    if (pivot_row != k) {
      std::swap(perm[k], perm[pivot_row]);
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu(k, c), lu(pivot_row, c));
      }
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu(r, k) * inv_pivot;
      lu(r, k) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(k, c);
      }
    }
  }
}

/// Forward/back substitution on a factored matrix.
void solve_factored(const double* lu, size_t n, const size_t* perm,
                    std::span<const double> b, std::span<double> x) {
  // Forward substitution with the permutation applied on the fly.
  for (size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    for (size_t j = 0; j < i; ++j) acc -= lu[i * n + j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (size_t j = i + 1; j < n; ++j) acc -= lu[i * n + j] * x[j];
    x[i] = acc / lu[i * n + i];
  }
}

}  // namespace

void LuFactorization::factor(const Matrix& a, double pivot_tol) {
  util::require(a.rows() == a.cols(), "LU needs a square matrix, got ",
                a.rows(), "x", a.cols());
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  factor_in_place(MatrixRef(lu_), perm_.data(), pivot_tol);
}

void LuFactorization::solve(std::span<const double> b,
                            std::span<double> x) const {
  util::require(factored(), "LU: solve before factor");
  util::require(b.size() == n_ && x.size() == n_,
                "LU: rhs size mismatch (n=", n_, ")");
  solve_factored(lu_.row(0).data(), n_, perm_.data(), b, x);
}

Vector LuFactorization::solve(std::span<const double> b) const {
  Vector x(n_, 0.0);
  solve(b, x);
  return x;
}

double LuFactorization::abs_determinant() const noexcept {
  double det = 1.0;
  for (size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return std::fabs(det);
}

Vector lu_solve(const Matrix& a, std::span<const double> b) {
  LuFactorization lu;
  lu.factor(a);
  return lu.solve(b);
}

void lu_solve_in_place(MatrixRef a, std::span<const double> b,
                       std::span<double> x, double pivot_tol) {
  constexpr size_t kMaxN = 64;
  const size_t n = a.rows;
  util::require(a.cols == n, "LU: needs a square matrix, got ", a.rows, "x",
                a.cols);
  util::require(n <= kMaxN, "lu_solve_in_place: system too large (", n, ")");
  util::require(b.size() == n && x.size() == n,
                "LU: rhs size mismatch (n=", n, ")");
  size_t perm[kMaxN];
  factor_in_place(a, perm, pivot_tol);
  solve_factored(a.data, n, perm, b, x);
}

}  // namespace waveletic::la
