#include "la/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace waveletic::la {

void LuFactorization::factor(const Matrix& a, double pivot_tol) {
  util::require(a.rows() == a.cols(), "LU needs a square matrix, got ",
                a.rows(), "x", a.cols());
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_(k, k));
    for (size_t r = k + 1; r < n_; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    util::require(pivot_mag > pivot_tol,
                  "LU: singular matrix (pivot ", pivot_mag, " at column ", k,
                  ")");
    if (pivot_row != k) {
      std::swap(perm_[k], perm_[pivot_row]);
      for (size_t c = 0; c < n_; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (size_t r = k + 1; r < n_; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n_; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

void LuFactorization::solve(std::span<const double> b,
                            std::span<double> x) const {
  util::require(factored(), "LU: solve before factor");
  util::require(b.size() == n_ && x.size() == n_,
                "LU: rhs size mismatch (n=", n_, ")");
  // Forward substitution with the permutation applied on the fly.
  for (size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (size_t i = n_; i-- > 0;) {
    double acc = x[i];
    for (size_t j = i + 1; j < n_; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
}

Vector LuFactorization::solve(std::span<const double> b) const {
  Vector x(n_, 0.0);
  solve(b, x);
  return x;
}

double LuFactorization::abs_determinant() const noexcept {
  double det = 1.0;
  for (size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return std::fabs(det);
}

Vector lu_solve(const Matrix& a, std::span<const double> b) {
  LuFactorization lu;
  lu.factor(a);
  return lu.solve(b);
}

}  // namespace waveletic::la
