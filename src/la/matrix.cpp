#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace waveletic::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    util::require(row.size() == cols_, "ragged initializer list for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::set_zero() noexcept {
  std::fill(data_.begin(), data_.end(), 0.0);
}

void Matrix::resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::mul(std::span<const double> x) const {
  util::require(x.size() == cols_, "Matrix::mul: expected ", cols_,
                " entries, got ", x.size());
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::mul(const Matrix& other) const {
  util::require(cols_ == other.rows_, "Matrix::mul: inner dims ", cols_,
                " vs ", other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double norm2(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc = std::max(acc, std::fabs(x));
  return acc;
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  double acc = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace waveletic::la
