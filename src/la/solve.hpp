#pragma once

/// \file solve.hpp
/// Linear and weighted linear least squares.  The equivalent-waveform
/// techniques (LSF3, WLS5, the SGDP initialization) are all 2-parameter
/// fits v ≈ a·t + b; the general m-parameter path is exercised by tests
/// and by the interconnect moment fitting.

#include <span>

#include "la/matrix.hpp"

namespace waveletic::la {

/// Solves min ||A x − b||₂ via the normal equations (A is tall, full
/// column rank; m is tiny here so the squared condition number is fine).
/// Throws util::Error if the normal matrix is singular.
[[nodiscard]] Vector least_squares(const Matrix& a, std::span<const double> b);

/// Weighted variant: min Σ w_k (A_k·x − b_k)², weights w_k ≥ 0.
[[nodiscard]] Vector weighted_least_squares(const Matrix& a,
                                            std::span<const double> b,
                                            std::span<const double> w);

/// Fits a line v = a·t + b to samples; returns {a, b}.
/// Weighted with w (pass empty for uniform).  At least two distinct
/// abscissae with nonzero weight are required.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
};
[[nodiscard]] LineFit fit_line(std::span<const double> t,
                               std::span<const double> v,
                               std::span<const double> w = {});

}  // namespace waveletic::la
