#include "util/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace waveletic::util {
namespace {

struct Suffix {
  std::string_view text;
  double scale;
};

// Longest-match order: "meg"/"mil" must be tested before "m".
constexpr std::array<Suffix, 12> suffixes{{
    {"meg", 1e6},
    {"mil", 25.4e-6},
    {"t", 1e12},
    {"g", 1e9},
    {"k", 1e3},
    {"m", 1e-3},
    {"u", 1e-6},
    {"n", 1e-9},
    {"p", 1e-12},
    {"f", 1e-15},
    {"a", 1e-18},
    {"z", 1e-21},
}};

bool iequal_prefix(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) != prefix[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool try_parse_eng(std::string_view text, double& out) noexcept {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return false;

  // Numeric prefix (std::from_chars handles "1e-9" style exponents).
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return false;

  std::string_view rest(ptr, static_cast<size_t>(end - ptr));
  double scale = 1.0;
  if (!rest.empty()) {
    for (const auto& s : suffixes) {
      if (iequal_prefix(rest, s.text)) {
        scale = s.scale;
        rest.remove_prefix(s.text.size());
        break;
      }
    }
    // Remaining characters must be a plain unit name (letters only),
    // e.g. the "F" of "100fF" or "s" of "150ps"; "Ohm" etc.
    for (char c : rest) {
      if (!std::isalpha(static_cast<unsigned char>(c))) return false;
    }
  }
  out = value * scale;
  return true;
}

double parse_eng(std::string_view text) {
  double out = 0.0;
  require(try_parse_eng(text, out), "malformed engineering number: '", text,
          "'");
  return out;
}

std::string format_eng(double value, std::string_view unit, int digits) {
  if (value == 0.0 || !std::isfinite(value)) {
    std::ostringstream os;
    os << value;
    if (!unit.empty()) os << unit;
    return os.str();
  }
  struct Band {
    double scale;
    std::string_view suffix;
  };
  static constexpr std::array<Band, 9> bands{{
      {1e12, "T"},
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "k"},
      {1.0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
      {1e-12, "p"},
  }};
  const double mag = std::fabs(value);
  double scale = 1e-15;
  std::string_view suffix = "f";
  for (const auto& b : bands) {
    if (mag >= b.scale * 0.9999999) {
      scale = b.scale;
      suffix = b.suffix;
      break;
    }
  }
  std::ostringstream os;
  os.precision(digits);
  os << value / scale << suffix << unit;
  return os.str();
}

std::string format_ps(double seconds, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << seconds / 1e-12;
  return os.str();
}

}  // namespace waveletic::util
