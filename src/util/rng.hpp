#pragma once

/// \file rng.hpp
/// Deterministic, seedable RNG (xoshiro256**) so tests and experiment
/// sweeps are reproducible across platforms independent of libstdc++'s
/// distribution implementations.

#include <cstdint>

namespace waveletic::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 seeding of the four lanes.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  [[nodiscard]] uint64_t next() noexcept {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] uint64_t below(uint64_t n) noexcept { return next() % n; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace waveletic::util
