#pragma once

/// \file strings.hpp
/// Small string helpers shared by the parsers (SPICE decks, Liberty,
/// structural Verilog) and the report writers.

#include <string>
#include <string_view>
#include <vector>

namespace waveletic::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on any character in `delims`, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  std::string_view delims);

/// Splits on `delims` keeping empty fields (CSV-style).
[[nodiscard]] std::vector<std::string_view> split_keep_empty(
    std::string_view s, char delim);

/// ASCII lower-casing (parsers are case-insensitive where the source
/// format is, e.g. SPICE element cards).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Case-insensitive equality on ASCII.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s,
                             std::string_view suffix) noexcept;

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace waveletic::util
