#include "util/table.hpp"

#include <algorithm>
#include <iomanip>

#include "util/error.hpp"

namespace waveletic::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "table row arity ", cells.size(),
          " != header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::ostream& Table::print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto rule = [&]() {
    os << '+';
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << cells[c] << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os;
}

}  // namespace waveletic::util
