#include "util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace waveletic::util {

void CsvWriter::add_column(std::string header, std::vector<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(9);
    os << v;
    cells.push_back(os.str());
  }
  headers_.push_back(std::move(header));
  cells_.push_back(std::move(cells));
}

void CsvWriter::add_text_column(std::string header,
                                std::vector<std::string> values) {
  headers_.push_back(std::move(header));
  cells_.push_back(std::move(values));
}

size_t CsvWriter::rows() const noexcept {
  size_t n = 0;
  for (const auto& col : cells_) n = std::max(n, col.size());
  return n;
}

std::ostream& CsvWriter::write(std::ostream& os) const {
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << headers_[c];
  }
  os << '\n';
  const size_t n = rows();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < cells_.size(); ++c) {
      if (c > 0) os << ',';
      if (r < cells_[c].size()) os << cells_[c][r];
    }
    os << '\n';
  }
  return os;
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  require(file.good(), "cannot open CSV output file: ", path);
  write(file);
}

}  // namespace waveletic::util
