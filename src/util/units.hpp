#pragma once

/// \file units.hpp
/// Engineering-notation parsing/formatting and the unit conventions used
/// throughout the library.
///
/// Internal convention: strict SI — seconds, volts, amperes, ohms,
/// farads.  Anything leaving the library for a human (tables, logs,
/// Liberty files) goes through the formatters here or the Liberty
/// writer's unit scaling.

#include <string>
#include <string_view>

namespace waveletic::util {

/// Parses a SPICE/engineering-notation number such as "8.5", "4.8f",
/// "100fF", "1k", "2.2meg", "150ps", "0.5n".  Suffix matching is
/// case-insensitive; a trailing unit name (F, s, V, Ohm, Hz, A, m) after
/// the scale suffix is ignored.  Throws util::Error on malformed input.
[[nodiscard]] double parse_eng(std::string_view text);

/// Returns true and sets `out` instead of throwing.
[[nodiscard]] bool try_parse_eng(std::string_view text, double& out) noexcept;

/// Formats a value with an engineering suffix and the given unit, e.g.
/// format_eng(4.8e-15, "F") == "4.8fF".  `digits` is significant digits.
[[nodiscard]] std::string format_eng(double value, std::string_view unit = "",
                                     int digits = 4);

/// Convenience: format seconds as picoseconds with fixed decimals, e.g.
/// format_ps(1.5e-10) == "150.0".  Used by the paper-style tables that
/// report delays in ps.
[[nodiscard]] std::string format_ps(double seconds, int decimals = 1);

// Scale factors (multiply to convert into SI).
inline constexpr double femto = 1e-15;
inline constexpr double pico = 1e-12;
inline constexpr double nano = 1e-9;
inline constexpr double micro = 1e-6;
inline constexpr double milli = 1e-3;
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

}  // namespace waveletic::util
