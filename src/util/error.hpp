#pragma once

/// \file error.hpp
/// Error type used across the library.  All recoverable failures (parse
/// errors, numerical non-convergence, bad lookups) are reported by
/// throwing util::Error with a human-readable context string.

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace waveletic::util {

/// Library-wide exception type.  Carries a message assembled from the
/// variadic constructor arguments via operator<<.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}

  /// Builds the message by streaming every argument, e.g.
  ///   throw Error::fmt("node ", name, " not found (", n, " nodes)");
  template <typename... Args>
  [[nodiscard]] static Error fmt(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return Error(os.str());
  }
};

/// Throws util::Error with the given streamed message when `cond` is
/// false.  Used for precondition checks on public API boundaries.
template <typename... Args>
void require(bool cond, Args&&... args) {
  if (!cond) throw Error::fmt(std::forward<Args>(args)...);
}

}  // namespace waveletic::util
