#include "util/workspace.hpp"

#include <algorithm>

namespace waveletic::util {

std::span<double> Workspace::alloc(size_t n) {
  stats_.alloc_calls += 1;
  stats_.doubles_served += n;
  if (n == 0) return {};
  // Advance through retained slabs until one fits the request.
  while (slab_ < slabs_.size() && slabs_[slab_].capacity - used_ < n) {
    ++slab_;
    used_ = 0;
  }
  if (slab_ == slabs_.size()) {
    const size_t prev = slabs_.empty() ? 0 : slabs_.back().capacity;
    const size_t cap = std::max({n, kMinSlabDoubles, prev * 2});
    // for_overwrite: scratch is documented uninitialized — a
    // value-initializing new[] would memset every slab.
    slabs_.push_back({std::make_unique_for_overwrite<double[]>(cap), cap});
    stats_.slab_allocations += 1;
    stats_.slab_doubles += cap;
    used_ = 0;
  }
  double* base = slabs_[slab_].data.get() + used_;
  used_ += n;
  return {base, n};
}

}  // namespace waveletic::util
