#pragma once

/// \file thread_pool.hpp
/// Small fixed-size thread pool with a blocking parallel_for and a
/// dependency-ordered run_graph for unbalanced task DAGs.
///
/// parallel_for is deliberately work-stealing-free: it splits [0, n)
/// into `size()` contiguous chunks, one per worker, and blocks until
/// every chunk has run.  The static partition keeps the execution
/// schedule independent of runtime timing, which is what lets the
/// levelized STA propagation produce bitwise-identical results at any
/// thread count (tasks write disjoint state; ordering within a task is
/// fixed).
///
/// run_graph executes a task DAG (tasks become ready when their
/// dependencies complete; every worker pulls from one shared ready
/// stack).  The *schedule* here is timing-dependent — which is fine for
/// callers whose tasks write disjoint state and read only completed
/// dependencies: every task sees the same inputs regardless of
/// interleaving, so results stay bitwise-deterministic even though the
/// execution order is not.  This is what the partition-sharded STA
/// sweep uses for its unbalanced (point × partition) shards.
///
/// A pool of size 1 runs everything inline on the calling thread and
/// spawns no workers at all.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace waveletic::util {

class ThreadPool {
 public:
  /// `threads` ≤ 0 selects hardware_threads().  Size is clamped to ≥ 1.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t size() const noexcept { return size_; }

  /// Runs body(i) for every i in [0, n); returns when all calls have
  /// finished.  The first exception thrown by any body is rethrown on
  /// the calling thread (remaining chunks still run to completion).
  /// Reentrant calls from inside a body are not supported.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// Worker-indexed variant: body(worker, i) where `worker` identifies
  /// the chunk owner (0 ≤ worker < size(), worker 0 = calling thread).
  /// Because the partition is static, the (worker, i) pairing is a pure
  /// function of (n, size()) — callers use it to hand each worker its
  /// own scratch arena (e.g. wave::Workspace) without synchronization.
  void parallel_for(size_t n,
                    const std::function<void(size_t, size_t)>& body);

  /// A task DAG: `tiles` independent copies of one dependency
  /// structure.  Task ids are tile * tile_size + local; dependencies
  /// never cross tiles.  The spans must outlive the run_graph call.
  struct TaskGraph {
    /// Per local task: number of unfinished dependencies at start.
    std::span<const uint32_t> indegree;
    /// Per local task: local ids unlocked when it completes.
    std::span<const std::vector<uint32_t>> successors;
    /// Number of independent copies (e.g. sweep points).
    size_t tiles = 1;

    [[nodiscard]] size_t tile_size() const noexcept {
      return indegree.size();
    }
    [[nodiscard]] size_t total() const noexcept {
      return indegree.size() * tiles;
    }
  };

  /// Runs body(worker, task) for every task of `graph`, each after all
  /// of its dependencies have completed; returns when all tasks have
  /// run.  Workers (the caller is worker 0) pull ready tasks from a
  /// shared stack, so unbalanced shards keep every thread busy.  The
  /// first exception cancels the not-yet-started remainder (their
  /// bodies are skipped) and is rethrown on the calling thread.
  /// Throws if the graph never drains (a dependency cycle).
  /// Reentrant calls from inside a body are not supported.
  void run_graph(const TaskGraph& graph,
                 const std::function<void(size_t, size_t)>& body);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static size_t hardware_threads() noexcept;

 private:
  /// Shared state of one run_graph execution.
  struct GraphRun {
    const TaskGraph* graph = nullptr;
    const std::function<void(size_t, size_t)>* body = nullptr;
    std::vector<uint32_t> pending;  ///< remaining deps per task
    std::vector<uint32_t> ready;    ///< LIFO stack of runnable tasks
    size_t completed = 0;
    size_t in_flight = 0;           ///< tasks popped but not completed
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable cv;
  };

  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    const std::function<void(size_t, size_t)>* body_worker = nullptr;
    size_t n = 0;
    GraphRun* graph_run = nullptr;
  };

  void worker_loop(size_t worker_index);
  void run_chunk(size_t worker_index, const Job& job) noexcept;
  void graph_worker(size_t worker_index, GraphRun& run) noexcept;
  void dispatch(const Job& job);

  size_t size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  uint64_t generation_ = 0;   ///< bumped per parallel_for to wake workers
  size_t pending_ = 0;        ///< chunks not yet finished
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace waveletic::util
