#pragma once

/// \file thread_pool.hpp
/// Small fixed-size thread pool with a blocking parallel_for.
///
/// Deliberately work-stealing-free: parallel_for splits [0, n) into
/// `size()` contiguous chunks, one per worker, and blocks until every
/// chunk has run.  The static partition keeps the execution schedule
/// independent of runtime timing, which is what lets the levelized STA
/// propagation produce bitwise-identical results at any thread count
/// (tasks write disjoint state; ordering within a task is fixed).
///
/// A pool of size 1 runs everything inline on the calling thread and
/// spawns no workers at all.

#include <cstddef>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace waveletic::util {

class ThreadPool {
 public:
  /// `threads` ≤ 0 selects hardware_threads().  Size is clamped to ≥ 1.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t size() const noexcept { return size_; }

  /// Runs body(i) for every i in [0, n); returns when all calls have
  /// finished.  The first exception thrown by any body is rethrown on
  /// the calling thread (remaining chunks still run to completion).
  /// Reentrant calls from inside a body are not supported.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// Worker-indexed variant: body(worker, i) where `worker` identifies
  /// the chunk owner (0 ≤ worker < size(), worker 0 = calling thread).
  /// Because the partition is static, the (worker, i) pairing is a pure
  /// function of (n, size()) — callers use it to hand each worker its
  /// own scratch arena (e.g. wave::Workspace) without synchronization.
  void parallel_for(size_t n,
                    const std::function<void(size_t, size_t)>& body);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  [[nodiscard]] static size_t hardware_threads() noexcept;

 private:
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    const std::function<void(size_t, size_t)>* body_worker = nullptr;
    size_t n = 0;
  };

  void worker_loop(size_t worker_index);
  void run_chunk(size_t worker_index, const Job& job) noexcept;
  void dispatch(const Job& job);

  size_t size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  uint64_t generation_ = 0;   ///< bumped per parallel_for to wake workers
  size_t pending_ = 0;        ///< chunks not yet finished
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace waveletic::util
