#pragma once

/// \file log.hpp
/// Minimal leveled logger.  Output goes to stderr so benches can pipe
/// stdout (tables, CSV) cleanly.  The level is a process-wide setting
/// owned by main(); library code only ever emits.

#include <sstream>
#include <string>
#include <string_view>

namespace waveletic::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line ("[level] message\n") if `level` passes the threshold.
void log_line(LogLevel level, std::string_view message);

/// Streamed convenience wrappers.
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_line(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_line(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_line(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  log_line(LogLevel::kError, os.str());
}

}  // namespace waveletic::util
